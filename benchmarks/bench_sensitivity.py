"""Sensitivity analysis: the paper's qualitative conclusions must hold
when the calibrated model constants move.

Sweeps each fitted constant by +/-50% and checks that the evaluation's
*orderings and crossovers* (who wins, where) survive — the claims the
reproduction is accountable for, as opposed to point values.
"""

import dataclasses

import pytest

from _util import emit
from repro.eval import format_table
from repro.eval.calibration import GIB, HardwareFamilyCalibration
from repro.ndp import HardwarePerformanceModel, HardwareSystem, WorkloadPoint

SCALES = (0.5, 1.0, 1.5)


def model_with(**overrides) -> HardwarePerformanceModel:
    cal = dataclasses.replace(HardwareFamilyCalibration(), **overrides)
    return HardwarePerformanceModel(cal)


def conclusions(model: HardwarePerformanceModel) -> dict:
    small_q = WorkloadPoint(128 * GIB, 16)
    large_q = WorkloadPoint(128 * GIB, 256)
    small_db = WorkloadPoint(8 * GIB, 16, num_queries=1000)
    large_db = WorkloadPoint(128 * GIB, 16, num_queries=1000)
    s_small = model.speedups_over_sw(small_q)
    s_large_db = model.speedups_over_sw(large_db)
    s_small_db = model.speedups_over_sw(small_db)
    return {
        "ifp_wins_small_queries": (
            s_small[HardwareSystem.CM_IFP] > s_small[HardwareSystem.CM_PUM]
        ),
        "ifp_beats_pum_ssd": (
            s_small[HardwareSystem.CM_IFP] > s_small[HardwareSystem.CM_PUM_SSD]
        ),
        "ifp_wins_beyond_dram": (
            s_large_db[HardwareSystem.CM_IFP] > s_large_db[HardwareSystem.CM_PUM]
        ),
        "pum_competitive_below_dram": (
            s_small_db[HardwareSystem.CM_PUM]
            > 0.5 * s_small_db[HardwareSystem.CM_IFP]
        ),
        "ifp_speedup_decreases_with_y": (
            model.speedups_over_sw(large_q)[HardwareSystem.CM_IFP]
            < s_small[HardwareSystem.CM_IFP]
        ),
    }


SWEPT_CONSTANTS = ("c_sw", "sw_scan_bytes_per_s", "c_pum", "c_pum_ssd")


@pytest.mark.parametrize("constant", SWEPT_CONSTANTS)
@pytest.mark.parametrize("scale", SCALES)
def test_conclusions_stable(benchmark, constant, scale):
    base_value = getattr(HardwareFamilyCalibration(), constant)
    model = model_with(**{constant: base_value * scale})
    result = benchmark.pedantic(conclusions, args=(model,), rounds=1, iterations=1)
    assert result["ifp_wins_small_queries"], (constant, scale)
    assert result["ifp_beats_pum_ssd"], (constant, scale)
    assert result["ifp_wins_beyond_dram"], (constant, scale)


def test_emit_sensitivity_table(benchmark):
    rows = []
    for constant in SWEPT_CONSTANTS:
        base = getattr(HardwareFamilyCalibration(), constant)
        for scale in SCALES:
            c = conclusions(model_with(**{constant: base * scale}))
            rows.append(
                [
                    constant,
                    f"x{scale}",
                    "yes" if c["ifp_wins_small_queries"] else "NO",
                    "yes" if c["ifp_wins_beyond_dram"] else "NO",
                    "yes" if c["ifp_speedup_decreases_with_y"] else "NO",
                ]
            )
    table = format_table(
        "Sensitivity: paper conclusions under +/-50% calibration shifts",
        ["constant", "scale", "IFP wins @16b", "IFP wins >32GB", "IFP dec. in y"],
        rows,
        paper_note="fitted constants perturbed; orderings/crossovers must hold",
    )
    emit("sensitivity", table)
    benchmark(lambda: None)
