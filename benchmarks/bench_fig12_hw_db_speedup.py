"""Figure 12: hardware-system speedup over CM-SW vs encrypted database
size (16-bit queries, 1000-query batch)."""

from _util import emit
from repro.eval.calibration import DATABASE_SIZES
from repro.eval.experiments import figure12
from repro.ndp import HardwarePerformanceModel


def test_emit_figure12(benchmark):
    emit("figure12", figure12())
    model = HardwarePerformanceModel()
    benchmark(model.figure12, list(DATABASE_SIZES))
