"""Sections 6.3 & 7: CM-IFP overhead analysis (storage, area,
transposition unit, AES index encryption)."""

from _util import emit
from repro.eval.experiments import overheads
from repro.ndp import OverheadReport


def test_emit_overheads(benchmark):
    emit("overheads", overheads())
    rep = OverheadReport()
    benchmark(rep.result_buffer_bytes)
