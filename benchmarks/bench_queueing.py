"""Queueing cross-check: the event-driven SSD simulator versus the
CM-IFP closed-form makespan.

The closed form behind Figures 10/12 assumes perfect overlap of
``bop_add`` across dies with negligible bus time; the discrete-event
simulation reproduces that number within a few percent for wave-aligned
workloads and quantifies the queueing penalty for skewed ones.
"""

from _util import emit

from repro.eval.tables import format_table
from repro.flash.cell_array import FlashGeometry
from repro.flash.timing import FlashTimings
from repro.ssd.queueing import simulate_cm_search


def _table() -> str:
    geometry = FlashGeometry()  # Table 3: 8 channels x 8 dies x 2 planes
    timings = FlashTimings()
    pairs = geometry.channels * geometry.dies_per_channel
    closed_one_wave = 32 * timings.t_bop_add + 2 * timings.page_transfer_time()
    rows = []
    for slots in (1, pairs // 2, pairs, 2 * pairs, 4 * pairs):
        result = simulate_cm_search(slots, geometry, timings)
        waves = -(-slots // pairs)
        closed = waves * closed_one_wave
        rows.append(
            [
                slots,
                f"{result.makespan * 1e3:.3f}",
                f"{closed * 1e3:.3f}",
                f"{result.makespan / closed:.3f}",
                f"{result.die_utilization(0, 0) * 100:.0f}%",
            ]
        )
    return format_table(
        "Queueing simulation vs closed-form CM-IFP makespan",
        ["slots", "sim ms", "closed-form ms", "ratio", "die0 util"],
        rows,
        paper_note="per-wave Tbop_add from Eqn 10; sim adds channel contention",
    )


def test_emit_queueing(benchmark):
    emit("queueing_crosscheck", _table())
    benchmark.pedantic(_table, rounds=1, iterations=1)
