"""Benchmark fixtures: paper-parameter HE contexts and keys, built once."""

from __future__ import annotations

import numpy as np
import pytest

from repro.he import BFVContext, BFVParams, KeyGenerator


@pytest.fixture(scope="session")
def paper_params():
    return BFVParams.paper()


@pytest.fixture(scope="session")
def paper_ctx(paper_params):
    return BFVContext(paper_params, seed=1)


@pytest.fixture(scope="session")
def paper_keys(paper_params):
    gen = KeyGenerator(paper_params, seed=1)
    sk = gen.secret_key()
    return sk, gen.public_key(sk)


@pytest.fixture(scope="session")
def paper_ciphertexts(paper_ctx, paper_keys):
    _, pk = paper_keys
    rng = np.random.default_rng(2)
    n, t = paper_ctx.params.n, paper_ctx.params.t
    m1 = rng.integers(0, t, n, dtype=np.int64)
    m2 = rng.integers(0, t, n, dtype=np.int64)
    return (
        paper_ctx.encrypt(paper_ctx.plaintext(m1), pk),
        paper_ctx.encrypt(paper_ctx.plaintext(m2), pk),
    )
