"""Open-loop load SLO benchmark over the trace-driven harness.

Boots a loopback :class:`repro.net.ServiceThread` around a 2-shard
``bfv-sharded`` engine on the **process** executor with a small
per-connection admission bound, then drives the ``database`` scenario
(32-bit exact key lookups from :mod:`repro.load`) through the client
SDK two ways:

* **half rate** — a seeded Poisson trace at ~0.4x the closed-loop
  sustainable rate.  Nothing may shed.
* **overload** — the same scenario at ~5x sustainable.  The admission
  controller must shed, and the accounting must balance *exactly*:
  ``offered == completed + shed`` with zero failures.

The overload trace is saved to disk, reloaded, and re-generated from
the same seed; all three must describe the identical request sequence
(the record/replay guarantee the CI ``load-smoke`` job relies on).

The table reports per-lane offered vs achieved q/s, shed rate and
p50/p95/p99 latency; the same report is written machine-readable to
``benchmarks/out/load_slo.json`` via ``LoadReport.to_json``.  Runs
standalone (``python benchmarks/bench_load.py``) or under pytest.
``--quick`` shrinks the request counts and **exits non-zero if any
gate fails** — the CI bench-smoke gate.

All RNG seeds are pinned (--seed, default 11) so the CI gate replays
the exact same workload on every run.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import sys
import time

from _util import OUT_DIR, emit

from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.he import BFVParams
from repro.load import (
    SCENARIO_REGISTRY,
    BurstyArrivals,
    LoadReport,
    LoadTrace,
    PoissonArrivals,
    RemoteTarget,
    ScenarioSlo,
    generate_trace,
    run_trace,
)
from repro.net import Client, ServiceThread
from repro.serve import AdmissionController

NUM_SHARDS = 2
MAX_IN_FLIGHT = 16
OVERLOAD_FACTOR = 5.0
HALF_FACTOR = 0.4
#: p99 budget for the resilience lanes: generous against the probed
#: closed-loop latency, floored so scheduler jitter can't fail CI
BUDGET_FACTOR = 25.0
BUDGET_FLOOR_S = 1.0
#: shed + admit-rejected fraction the MMPP burst lane may not exceed
REJECT_RATE_CAP = 0.30


def _trace_signature(trace: LoadTrace):
    """The replay-relevant content of a trace, comparable across copies."""
    from repro.load.trace import request_to_json

    return [
        (ev.index, ev.at, request_to_json(ev.request), ev.expected)
        for ev in trace.events
    ]


def resilience_lanes(
    scenario_key: str,
    seed: int,
    quick: bool,
    sustainable: float,
    mean_latency: float,
    failures: list,
):
    """The two resilience lanes behind ``benchmarks/out/chaos_slo.*``.

    * **mmpp-burst** — admission-enabled service under a 2-state MMPP
      (4x bursts) at nominal sustainable rate, retrying client.  Gates:
      exact 4-term accounting, zero failures/mismatches, p99 of the
      requests that completed within the admission budget, and a
      combined shed + admit-rejected rate under ``REJECT_RATE_CAP``.
    * **chaos-replay** — a fixed fault schedule (worker crash on shard 1,
      a server shed storm, a client-side connection drop) replayed over
      a Poisson trace.  Every scheduled fault must actually fire, and
      the retrying client must still finish with zero failures and zero
      oracle mismatches.
    """
    n_burst = 40 if quick else 120
    n_chaos = 40 if quick else 100
    budget = max(BUDGET_FLOOR_S, BUDGET_FACTOR * mean_latency)
    retry = RetryPolicy(max_attempts=4, seed=seed)

    # -- mmpp-burst lane --------------------------------------------------
    scenario = SCENARIO_REGISTRY.create(scenario_key, seed=seed)
    with ServiceThread(
        "bfv-sharded",
        params=BFVParams.test_small(64),
        num_shards=NUM_SHARDS,
        key_seed=seed,
        executor="process",
        max_in_flight=MAX_IN_FLIGHT,
        admission=AdmissionController(budget),
    ) as service:
        client = Client(service.address, pool_size=1)
        target = RemoteTarget(client, owns_client=True, retry=retry)
        try:
            scenario.check(target.capabilities, target.describe())
            target.outsource(scenario.db_bits())
            target.submit(
                generate_trace(
                    scenario, PoissonArrivals(), 50.0, max_requests=1
                ).events[0].request,
                None,
            ).result()  # warm the worker pool
            trace_burst = generate_trace(
                scenario, BurstyArrivals(), sustainable, max_requests=n_burst
            )
            slo_burst = ScenarioSlo.from_run(
                trace_burst, run_trace(trace_burst, target)
            )
        finally:
            target.close()

    if not slo_burst.balanced:
        failures.append(
            f"mmpp-burst: offered {slo_burst.offered} != completed "
            f"{slo_burst.completed} + shed {slo_burst.shed} + admit_rejected "
            f"{slo_burst.admit_rejected} + failed {slo_burst.failed}"
        )
    if slo_burst.failed:
        failures.append(f"mmpp-burst: {slo_burst.failed} request(s) failed")
    if slo_burst.mismatches:
        failures.append(
            f"mmpp-burst: {slo_burst.mismatches} oracle mismatch(es)"
        )
    if slo_burst.p99_ms > budget * 1e3:
        failures.append(
            f"mmpp-burst: p99 {slo_burst.p99_ms:.0f} ms over the "
            f"{budget * 1e3:.0f} ms admission budget"
        )
    if slo_burst.reject_rate >= REJECT_RATE_CAP:
        failures.append(
            f"mmpp-burst: shed+admit-reject rate {slo_burst.reject_rate:.0%} "
            f">= {REJECT_RATE_CAP:.0%} cap"
        )

    # -- chaos-replay lane ------------------------------------------------
    scenario = SCENARIO_REGISTRY.create(scenario_key, seed=seed)
    chaos_plan = (
        FaultPlan()
        .worker_crash(2, shard=1)
        .shed_storm(n_chaos // 3, count=3)
        .connection_drop(n_chaos // 2, side="client")
    )
    client_injector = FaultInjector(chaos_plan)
    with ServiceThread(
        "bfv-sharded",
        params=BFVParams.test_small(64),
        num_shards=NUM_SHARDS,
        key_seed=seed,
        executor="process",
        max_in_flight=MAX_IN_FLIGHT,
        admission=AdmissionController(budget),
        fault_plan=chaos_plan,
    ) as service:
        client = Client(service.address, pool_size=1)
        target = RemoteTarget(client, owns_client=True, retry=retry)
        try:
            target.outsource(scenario.db_bits())
            trace_chaos = generate_trace(
                scenario, PoissonArrivals(), sustainable, max_requests=n_chaos
            )
            slo_chaos = ScenarioSlo.from_run(
                trace_chaos,
                run_trace(trace_chaos, target, injector=client_injector),
            )
            server_fired = service.service.fault_injector.summary()
            stats = target.stats()
        finally:
            target.close()

    if not slo_chaos.balanced:
        failures.append(
            f"chaos-replay: offered {slo_chaos.offered} != completed "
            f"{slo_chaos.completed} + shed {slo_chaos.shed} + admit_rejected "
            f"{slo_chaos.admit_rejected} + failed {slo_chaos.failed}"
        )
    if slo_chaos.failed:
        failures.append(f"chaos-replay: {slo_chaos.failed} request(s) failed")
    if slo_chaos.mismatches:
        failures.append(
            f"chaos-replay: {slo_chaos.mismatches} oracle mismatch(es) "
            f"(faults corrupted a served result)"
        )
    fired = dict(server_fired)
    for fault in client_injector.fired:
        fired[fault.event.kind] = fired.get(fault.event.kind, 0) + 1
    for kind in ("worker_crash", "shed_storm", "conn_drop"):
        if not fired.get(kind):
            failures.append(
                f"chaos-replay: scheduled {kind} never fired "
                f"(fired: {fired or 'nothing'})"
            )

    return slo_burst, slo_chaos, stats, budget, fired


def run(quick: bool, seed: int) -> int:
    n_probe = 4 if quick else 8
    n_half = 30 if quick else 80
    n_over = 60 if quick else 150

    scenario = SCENARIO_REGISTRY.create("database", seed=seed)
    failures = []

    with ServiceThread(
        "bfv-sharded",
        params=BFVParams.test_small(64),
        num_shards=NUM_SHARDS,
        key_seed=seed,
        executor="process",
        max_in_flight=MAX_IN_FLIGHT,
    ) as service:
        # shedding is per-connection: one socket so the in-flight bound
        # applies to the whole open-loop stream
        client = Client(service.address, pool_size=1)
        target = RemoteTarget(client, owns_client=True)
        try:
            target_desc = target.describe()
            scenario.check(target.capabilities, target_desc)
            target.outsource(scenario.db_bits())

            # -- closed-loop probe: sustainable per-request latency ------
            probe = [
                ev.request
                for ev in generate_trace(
                    scenario, PoissonArrivals(), 100.0, max_requests=n_probe + 1
                ).events
            ]
            target.submit(probe[0], None).result()  # warm the worker pool
            t0 = time.perf_counter()
            for request in probe[1:]:
                target.submit(request, None).result()
            mean_latency = (time.perf_counter() - t0) / n_probe
            sustainable = 1.0 / mean_latency

            # -- half-rate lane: nothing may shed ------------------------
            rate_lo = HALF_FACTOR * sustainable
            trace_lo = generate_trace(
                scenario, PoissonArrivals(), rate_lo, max_requests=n_half
            )
            slo_lo = ScenarioSlo.from_run(trace_lo, run_trace(trace_lo, target))

            # -- overload lane: admission control must shed --------------
            rate_hi = OVERLOAD_FACTOR * sustainable
            trace_hi = generate_trace(
                scenario, PoissonArrivals(), rate_hi, max_requests=n_over
            )
            slo_hi = ScenarioSlo.from_run(trace_hi, run_trace(trace_hi, target))

            stats = target.stats()
        finally:
            target.close()

    # -- record/replay: disk copy and fresh generation must be identical --
    OUT_DIR.mkdir(exist_ok=True)
    trace_path = OUT_DIR / "load_overload_trace.jsonl"
    trace_hi.save(trace_path)
    reloaded = LoadTrace.load(trace_path)
    regenerated = generate_trace(
        SCENARIO_REGISTRY.create("database", seed=seed),
        PoissonArrivals(),
        rate_hi,
        max_requests=n_over,
    )
    if _trace_signature(reloaded) != _trace_signature(trace_hi):
        failures.append("reloaded trace diverged from the recorded one")
    if _trace_signature(regenerated) != _trace_signature(trace_hi):
        failures.append("re-generated trace diverged (seeding is broken)")

    # -- gates ------------------------------------------------------------
    for lane, slo in (("half-rate", slo_lo), ("overload", slo_hi)):
        if not slo.balanced:
            failures.append(
                f"{lane}: offered {slo.offered} != completed {slo.completed}"
                f" + shed {slo.shed} + admit_rejected {slo.admit_rejected}"
                f" + failed {slo.failed}"
            )
        if slo.failed:
            failures.append(f"{lane}: {slo.failed} request(s) failed")
        if slo.mismatches:
            failures.append(
                f"{lane}: {slo.mismatches} result(s) diverged from the "
                f"plaintext oracle"
            )
        if not math.isfinite(slo.p99_ms):
            failures.append(f"{lane}: p99 is not finite")
    if slo_lo.shed:
        failures.append(
            f"half-rate: shed {slo_lo.shed} request(s) at "
            f"{HALF_FACTOR:.1f}x sustainable (admission bound too tight?)"
        )
    if not slo_hi.shed:
        failures.append(
            f"overload: no sheds at {OVERLOAD_FACTOR:.1f}x sustainable "
            f"(admission control never engaged)"
        )

    report = LoadReport(
        target=target_desc,
        arrival="poisson",
        rate=rate_hi,
        seed=seed,
        scenarios=[
            dataclasses.replace(slo_lo, scenario="database @0.4x"),
            dataclasses.replace(slo_hi, scenario="database @5x"),
        ],
        executor=str(stats.get("executor", "")),
        worker_restarts=int(stats.get("worker_restarts", 0) or 0),
        scheduler_sheds=int(stats.get("scheduler_sheds", 0) or 0),
    )
    emit("load_slo", report.table())
    (OUT_DIR / "load_slo.json").write_text(report.to_json() + "\n")

    # -- resilience lanes: MMPP burst + seeded chaos replay ---------------
    slo_burst, slo_chaos, chaos_stats, budget, fired = resilience_lanes(
        "database", seed, quick, sustainable, mean_latency, failures
    )
    chaos_report = LoadReport(
        target=target_desc,
        arrival="bursty+poisson",
        rate=sustainable,
        seed=seed,
        scenarios=[
            dataclasses.replace(slo_burst, scenario="database mmpp-burst"),
            dataclasses.replace(slo_chaos, scenario="database chaos-replay"),
        ],
        executor=str(chaos_stats.get("executor", "")),
        worker_restarts=int(chaos_stats.get("worker_restarts", 0) or 0),
        scheduler_sheds=int(chaos_stats.get("scheduler_sheds", 0) or 0),
    )
    emit("chaos_slo", chaos_report.table())
    chaos_json = chaos_report.to_dict()
    chaos_json["p99_budget_seconds"] = budget
    chaos_json["faults_fired"] = fired
    (OUT_DIR / "chaos_slo.json").write_text(
        json.dumps(chaos_json, indent=2) + "\n"
    )

    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print(
        f"load gate OK: sustainable ~{sustainable:.0f} q/s; half-rate "
        f"{slo_lo.completed}/{slo_lo.offered} completed with 0 sheds; "
        f"overload shed {slo_hi.shed}/{slo_hi.offered} "
        f"({slo_hi.shed_rate:.0%}) with exact accounting; trace "
        f"record/replay identical; mmpp-burst p99 {slo_burst.p99_ms:.0f} ms "
        f"within {budget * 1e3:.0f} ms budget at "
        f"{slo_burst.reject_rate:.0%} reject rate; chaos replay fired "
        f"{sum(fired.values())} fault(s) with 0 failures"
    )
    return 0


def test_emit_load_slo(benchmark):
    """Pytest entry point (same artifact, quick shape)."""
    benchmark(lambda: None)
    assert run(quick=True, seed=11) == 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small trace; non-zero exit if shed accounting breaks, the "
        "overload lane never sheds, or the half-rate lane sheds (CI gate)",
    )
    parser.add_argument(
        "--seed", type=int, default=11,
        help="scenario + arrival + key seed (default: 11, pinned so CI "
        "runs are reproducible)",
    )
    args = parser.parse_args()
    return run(quick=args.quick, seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
