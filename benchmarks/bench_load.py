"""Open-loop load SLO benchmark over the trace-driven harness.

Boots a loopback :class:`repro.net.ServiceThread` around a 2-shard
``bfv-sharded`` engine on the **process** executor with a small
per-connection admission bound, then drives the ``database`` scenario
(32-bit exact key lookups from :mod:`repro.load`) through the client
SDK two ways:

* **half rate** — a seeded Poisson trace at ~0.4x the closed-loop
  sustainable rate.  Nothing may shed.
* **overload** — the same scenario at ~5x sustainable.  The admission
  controller must shed, and the accounting must balance *exactly*:
  ``offered == completed + shed`` with zero failures.

The overload trace is saved to disk, reloaded, and re-generated from
the same seed; all three must describe the identical request sequence
(the record/replay guarantee the CI ``load-smoke`` job relies on).

The table reports per-lane offered vs achieved q/s, shed rate and
p50/p95/p99 latency; the same report is written machine-readable to
``benchmarks/out/load_slo.json`` via ``LoadReport.to_json``.  Runs
standalone (``python benchmarks/bench_load.py``) or under pytest.
``--quick`` shrinks the request counts and **exits non-zero if any
gate fails** — the CI bench-smoke gate.

``--tenant-lane`` runs the multi-tenant fair-share lane instead: four
tenants (distinct keypairs/databases/caches) share one service, one
driven hot through a 2-state MMPP burst while three cold tenants
trickle Poisson traffic; each cold tenant's combined p99 must stay
within ``TENANT_P99_RATIO``x its solo (uncontended) baseline, and the
per-tenant STATS rows must partition the global counters.  Artifacts:
``benchmarks/out/tenant_slo.{txt,json}``.

All RNG seeds are pinned (--seed, default 11) so the CI gate replays
the exact same workload on every run.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import sys
import time

from _util import OUT_DIR, emit

from repro.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.he import BFVParams
from repro.load import (
    SCENARIO_REGISTRY,
    BurstyArrivals,
    LoadReport,
    LoadTrace,
    PoissonArrivals,
    RemoteTarget,
    ScenarioSlo,
    generate_trace,
    run_trace,
)
from repro.net import Client, ServiceThread
from repro.serve import AdmissionController

NUM_SHARDS = 2
MAX_IN_FLIGHT = 16
OVERLOAD_FACTOR = 5.0
HALF_FACTOR = 0.4
#: p99 budget for the resilience lanes: generous against the probed
#: closed-loop latency, floored so scheduler jitter can't fail CI
BUDGET_FACTOR = 25.0
BUDGET_FLOOR_S = 1.0
#: shed + admit-rejected fraction the MMPP burst lane may not exceed
REJECT_RATE_CAP = 0.30
#: multi-tenant lane: cold tenants trickle at this fraction of the
#: sustainable rate while the hot tenant bursts at 1x through an MMPP
TENANT_COLD_FACTOR = 0.3
#: a cold tenant's combined p99 may not exceed this multiple of its
#: solo (uncontended) p99 ...
TENANT_P99_RATIO = 2.0
#: ... floored so scheduler jitter at quick-lane request counts cannot
#: flake CI when the solo baseline is a handful of milliseconds
TENANT_P99_FLOOR_MS = 500.0
#: the hot tenant's private p99 admission budget (seconds): generous
#: against the ~tens-of-ms closed-loop latency, tight enough that a
#: sustained 4x MMPP burst sheds fail-fast instead of queueing into
#: every tenant's tail (admit-rejects stay in the hot lane's 4-term
#: accounting; there is no shed-count gate so CI stays deterministic)
TENANT_HOT_P99_BUDGET_S = 0.25


def _trace_signature(trace: LoadTrace):
    """The replay-relevant content of a trace, comparable across copies."""
    from repro.load.trace import request_to_json

    return [
        (ev.index, ev.at, request_to_json(ev.request), ev.expected)
        for ev in trace.events
    ]


def resilience_lanes(
    scenario_key: str,
    seed: int,
    quick: bool,
    sustainable: float,
    mean_latency: float,
    failures: list,
):
    """The two resilience lanes behind ``benchmarks/out/chaos_slo.*``.

    * **mmpp-burst** — admission-enabled service under a 2-state MMPP
      (4x bursts) at nominal sustainable rate, retrying client.  Gates:
      exact 4-term accounting, zero failures/mismatches, p99 of the
      requests that completed within the admission budget, and a
      combined shed + admit-rejected rate under ``REJECT_RATE_CAP``.
    * **chaos-replay** — a fixed fault schedule (worker crash on shard 1,
      a server shed storm, a client-side connection drop) replayed over
      a Poisson trace.  Every scheduled fault must actually fire, and
      the retrying client must still finish with zero failures and zero
      oracle mismatches.
    """
    n_burst = 40 if quick else 120
    n_chaos = 40 if quick else 100
    budget = max(BUDGET_FLOOR_S, BUDGET_FACTOR * mean_latency)
    retry = RetryPolicy(max_attempts=4, seed=seed)

    # -- mmpp-burst lane --------------------------------------------------
    scenario = SCENARIO_REGISTRY.create(scenario_key, seed=seed)
    with ServiceThread(
        "bfv-sharded",
        params=BFVParams.test_small(64),
        num_shards=NUM_SHARDS,
        key_seed=seed,
        executor="process",
        max_in_flight=MAX_IN_FLIGHT,
        admission=AdmissionController(budget),
    ) as service:
        client = Client(service.address, pool_size=1)
        target = RemoteTarget(client, owns_client=True, retry=retry)
        try:
            scenario.check(target.capabilities, target.describe())
            target.outsource(scenario.db_bits())
            target.submit(
                generate_trace(
                    scenario, PoissonArrivals(), 50.0, max_requests=1
                ).events[0].request,
                None,
            ).result()  # warm the worker pool
            trace_burst = generate_trace(
                scenario, BurstyArrivals(), sustainable, max_requests=n_burst
            )
            slo_burst = ScenarioSlo.from_run(
                trace_burst, run_trace(trace_burst, target)
            )
        finally:
            target.close()

    if not slo_burst.balanced:
        failures.append(
            f"mmpp-burst: offered {slo_burst.offered} != completed "
            f"{slo_burst.completed} + shed {slo_burst.shed} + admit_rejected "
            f"{slo_burst.admit_rejected} + failed {slo_burst.failed}"
        )
    if slo_burst.failed:
        failures.append(f"mmpp-burst: {slo_burst.failed} request(s) failed")
    if slo_burst.mismatches:
        failures.append(
            f"mmpp-burst: {slo_burst.mismatches} oracle mismatch(es)"
        )
    if slo_burst.p99_ms > budget * 1e3:
        failures.append(
            f"mmpp-burst: p99 {slo_burst.p99_ms:.0f} ms over the "
            f"{budget * 1e3:.0f} ms admission budget"
        )
    if slo_burst.reject_rate >= REJECT_RATE_CAP:
        failures.append(
            f"mmpp-burst: shed+admit-reject rate {slo_burst.reject_rate:.0%} "
            f">= {REJECT_RATE_CAP:.0%} cap"
        )

    # -- chaos-replay lane ------------------------------------------------
    scenario = SCENARIO_REGISTRY.create(scenario_key, seed=seed)
    chaos_plan = (
        FaultPlan()
        .worker_crash(2, shard=1)
        .shed_storm(n_chaos // 3, count=3)
        .connection_drop(n_chaos // 2, side="client")
    )
    client_injector = FaultInjector(chaos_plan)
    with ServiceThread(
        "bfv-sharded",
        params=BFVParams.test_small(64),
        num_shards=NUM_SHARDS,
        key_seed=seed,
        executor="process",
        max_in_flight=MAX_IN_FLIGHT,
        admission=AdmissionController(budget),
        fault_plan=chaos_plan,
    ) as service:
        client = Client(service.address, pool_size=1)
        target = RemoteTarget(client, owns_client=True, retry=retry)
        try:
            target.outsource(scenario.db_bits())
            trace_chaos = generate_trace(
                scenario, PoissonArrivals(), sustainable, max_requests=n_chaos
            )
            slo_chaos = ScenarioSlo.from_run(
                trace_chaos,
                run_trace(trace_chaos, target, injector=client_injector),
            )
            server_fired = service.service.fault_injector.summary()
            stats = target.stats()
        finally:
            target.close()

    if not slo_chaos.balanced:
        failures.append(
            f"chaos-replay: offered {slo_chaos.offered} != completed "
            f"{slo_chaos.completed} + shed {slo_chaos.shed} + admit_rejected "
            f"{slo_chaos.admit_rejected} + failed {slo_chaos.failed}"
        )
    if slo_chaos.failed:
        failures.append(f"chaos-replay: {slo_chaos.failed} request(s) failed")
    if slo_chaos.mismatches:
        failures.append(
            f"chaos-replay: {slo_chaos.mismatches} oracle mismatch(es) "
            f"(faults corrupted a served result)"
        )
    fired = dict(server_fired)
    for fault in client_injector.fired:
        fired[fault.event.kind] = fired.get(fault.event.kind, 0) + 1
    for kind in ("worker_crash", "shed_storm", "conn_drop"):
        if not fired.get(kind):
            failures.append(
                f"chaos-replay: scheduled {kind} never fired "
                f"(fired: {fired or 'nothing'})"
            )

    return slo_burst, slo_chaos, stats, budget, fired


def tenant_lanes(scenario_key: str, seed: int, quick: bool, failures: list):
    """The fair-share lane behind ``benchmarks/out/tenant_slo.*``.

    Four tenants share one multi-tenant service (distinct keypairs,
    databases and caches): three cold tenants trickle Poisson traffic
    at ``TENANT_COLD_FACTOR``x sustainable while the hot tenant bursts
    at 1x through a 2-state MMPP.  Each cold tenant first replays its
    trace *alone* to establish a solo baseline.  Gates: exact per-lane
    accounting with zero failures / oracle mismatches, per-tenant STATS
    rows that partition the global counters, and every cold tenant's
    combined p99 within ``TENANT_P99_RATIO``x its solo p99 (floored at
    ``TENANT_P99_FLOOR_MS``) — the fairness-isolation contract.
    """
    import threading

    from repro.tenancy import TenantQuota, TenantRegistry, TenantSpec

    n_probe = 4 if quick else 8
    n_cold = 16 if quick else 50
    n_hot = 48 if quick else 150
    cold_ids = ("cold-a", "cold-b", "cold-c")
    tenant_ids = ("hot",) + cold_ids

    # the hot tenant runs under its own p99 admission budget, so its
    # bursts shed fail-fast instead of queueing into everyone's tail;
    # cold tenants carry no budget (their trickle never needs one)
    specs = [
        TenantSpec(
            tenant_id="hot",
            key_seed=41,
            quota=TenantQuota(p99_budget=TENANT_HOT_P99_BUDGET_S),
        )
    ] + [TenantSpec.parse(f"{t}:{42 + i}") for i, t in enumerate(cold_ids)]
    registry = TenantRegistry(
        specs,
        params=BFVParams.test_small(64),
        num_shards=NUM_SHARDS,
        executor="process",
        global_cache_bytes=8 << 20,
    )
    scenarios = {
        t: SCENARIO_REGISTRY.create(scenario_key, seed=seed + i)
        for i, t in enumerate(tenant_ids)
    }
    solo_p99 = {}
    lanes = {}
    drive_errors = []
    try:
        with ServiceThread(tenants=registry) as service:
            targets = {
                t: RemoteTarget(
                    Client(service.address, pool_size=1, tenant=t),
                    owns_client=True,
                )
                for t in tenant_ids
            }
            try:
                target_desc = targets["hot"].describe()
                for t, target in targets.items():
                    target.outsource(scenarios[t].db_bits())

                # closed-loop probe on the hot tenant: sustainable rate
                probe = [
                    ev.request
                    for ev in generate_trace(
                        scenarios["hot"],
                        PoissonArrivals(),
                        100.0,
                        max_requests=n_probe + 1,
                    ).events
                ]
                hot = targets["hot"]
                hot.submit(probe[0], None).result()  # warm the worker pool
                t0 = time.perf_counter()
                for request in probe[1:]:
                    hot.submit(request, None).result()
                sustainable = n_probe / (time.perf_counter() - t0)

                traces = {
                    t: generate_trace(
                        scenarios[t],
                        PoissonArrivals(),
                        TENANT_COLD_FACTOR * sustainable,
                        max_requests=n_cold,
                    )
                    for t in cold_ids
                }
                traces["hot"] = generate_trace(
                    scenarios["hot"],
                    BurstyArrivals(),
                    sustainable,
                    max_requests=n_hot,
                )

                # solo baselines: each cold tenant alone on the service
                for t in cold_ids:
                    slo = ScenarioSlo.from_run(
                        traces[t], run_trace(traces[t], targets[t])
                    )
                    solo_p99[t] = slo.p99_ms

                # combined: the hot tenant bursts while every cold
                # tenant replays the trace it just ran uncontended
                def drive(t):
                    try:
                        lanes[t] = ScenarioSlo.from_run(
                            traces[t], run_trace(traces[t], targets[t])
                        )
                    except BaseException as exc:  # noqa: BLE001
                        drive_errors.append((t, repr(exc)))

                threads = [
                    threading.Thread(target=drive, args=(t,))
                    for t in tenant_ids
                ]
                for th in threads:
                    th.start()
                for th in threads:
                    th.join()
                stats = targets["hot"].stats()
            finally:
                for target in targets.values():
                    target.close()
    finally:
        registry.close_all()

    for t, err in drive_errors:
        failures.append(f"tenant-lane {t}: combined run died: {err}")
    for t in tenant_ids:
        slo = lanes.get(t)
        if slo is None:
            continue  # already reported via drive_errors
        if not slo.balanced:
            failures.append(
                f"tenant-lane {t}: offered {slo.offered} != completed "
                f"{slo.completed} + shed {slo.shed} + admit_rejected "
                f"{slo.admit_rejected} + failed {slo.failed}"
            )
        if slo.failed:
            failures.append(f"tenant-lane {t}: {slo.failed} request(s) failed")
        if slo.mismatches:
            failures.append(
                f"tenant-lane {t}: {slo.mismatches} oracle mismatch(es) "
                f"(cross-tenant result leakage?)"
            )
    rows = dict(stats.get("tenants", {}) or {})
    if set(rows) >= set(tenant_ids):
        if sum(r["completed"] for r in rows.values()) != int(
            stats.get("service_completed", -1) or 0
        ):
            failures.append(
                "tenant-lane: per-tenant STATS rows do not partition the "
                "global completed counter"
            )
    else:
        failures.append(
            f"tenant-lane: STATS missing tenant rows (got {sorted(rows)})"
        )
    for t in cold_ids:
        if t not in lanes or t not in solo_p99:
            continue
        cap = max(TENANT_P99_RATIO * solo_p99[t], TENANT_P99_FLOOR_MS)
        if lanes[t].p99_ms > cap:
            failures.append(
                f"tenant-lane {t}: combined p99 {lanes[t].p99_ms:.0f} ms "
                f"> {cap:.0f} ms cap (solo {solo_p99[t]:.0f} ms x "
                f"{TENANT_P99_RATIO:g}, floor {TENANT_P99_FLOOR_MS:.0f} ms)"
            )
    return lanes, solo_p99, rows, stats, sustainable, target_desc, tenant_ids


def run_tenant(quick: bool, seed: int) -> int:
    """Multi-tenant fair-share gate (``--tenant-lane``)."""
    failures = []
    lanes, solo_p99, rows, stats, sustainable, target_desc, tenant_ids = (
        tenant_lanes("database", seed, quick, failures)
    )
    report = LoadReport(
        target=f"{target_desc} x{len(tenant_ids)} tenants",
        arrival="mmpp(hot)+poisson(cold)",
        rate=sustainable,
        seed=seed,
        scenarios=[
            dataclasses.replace(
                lanes[t],
                scenario=(
                    "hot mmpp@1.0x"
                    if t == "hot"
                    else f"{t} poisson@{TENANT_COLD_FACTOR:.1f}x"
                ),
            )
            for t in tenant_ids
            if t in lanes
        ],
        executor=str(stats.get("executor", "")),
        worker_restarts=int(stats.get("worker_restarts", 0) or 0),
        scheduler_sheds=int(stats.get("scheduler_sheds", 0) or 0),
        tenants=rows,
    )
    emit("tenant_slo", report.table())
    payload = report.to_dict()
    payload["solo_p99_ms"] = solo_p99
    payload["p99_ratio_cap"] = TENANT_P99_RATIO
    payload["p99_floor_ms"] = TENANT_P99_FLOOR_MS
    (OUT_DIR / "tenant_slo.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    cold = [t for t in tenant_ids if t != "hot"]
    print(
        f"tenant gate OK: sustainable ~{sustainable:.0f} q/s; hot completed "
        f"{lanes['hot'].completed}/{lanes['hot'].offered} under MMPP burst "
        f"({lanes['hot'].shed + lanes['hot'].admit_rejected} shed/admit-"
        f"rejected by its private budget); "
        + "; ".join(
            f"{t} p99 {lanes[t].p99_ms:.0f} ms (solo {solo_p99[t]:.0f} ms)"
            for t in cold
        )
        + f"; per-tenant accounting partitions "
        f"{int(stats['service_completed'])} completed"
    )
    return 0


def run(quick: bool, seed: int) -> int:
    n_probe = 4 if quick else 8
    n_half = 30 if quick else 80
    n_over = 60 if quick else 150

    scenario = SCENARIO_REGISTRY.create("database", seed=seed)
    failures = []

    with ServiceThread(
        "bfv-sharded",
        params=BFVParams.test_small(64),
        num_shards=NUM_SHARDS,
        key_seed=seed,
        executor="process",
        max_in_flight=MAX_IN_FLIGHT,
    ) as service:
        # shedding is per-connection: one socket so the in-flight bound
        # applies to the whole open-loop stream
        client = Client(service.address, pool_size=1)
        target = RemoteTarget(client, owns_client=True)
        try:
            target_desc = target.describe()
            scenario.check(target.capabilities, target_desc)
            target.outsource(scenario.db_bits())

            # -- closed-loop probe: sustainable per-request latency ------
            probe = [
                ev.request
                for ev in generate_trace(
                    scenario, PoissonArrivals(), 100.0, max_requests=n_probe + 1
                ).events
            ]
            target.submit(probe[0], None).result()  # warm the worker pool
            t0 = time.perf_counter()
            for request in probe[1:]:
                target.submit(request, None).result()
            mean_latency = (time.perf_counter() - t0) / n_probe
            sustainable = 1.0 / mean_latency

            # -- half-rate lane: nothing may shed ------------------------
            rate_lo = HALF_FACTOR * sustainable
            trace_lo = generate_trace(
                scenario, PoissonArrivals(), rate_lo, max_requests=n_half
            )
            slo_lo = ScenarioSlo.from_run(trace_lo, run_trace(trace_lo, target))

            # -- overload lane: admission control must shed --------------
            rate_hi = OVERLOAD_FACTOR * sustainable
            trace_hi = generate_trace(
                scenario, PoissonArrivals(), rate_hi, max_requests=n_over
            )
            slo_hi = ScenarioSlo.from_run(trace_hi, run_trace(trace_hi, target))

            stats = target.stats()
        finally:
            target.close()

    # -- record/replay: disk copy and fresh generation must be identical --
    OUT_DIR.mkdir(exist_ok=True)
    trace_path = OUT_DIR / "load_overload_trace.jsonl"
    trace_hi.save(trace_path)
    reloaded = LoadTrace.load(trace_path)
    regenerated = generate_trace(
        SCENARIO_REGISTRY.create("database", seed=seed),
        PoissonArrivals(),
        rate_hi,
        max_requests=n_over,
    )
    if _trace_signature(reloaded) != _trace_signature(trace_hi):
        failures.append("reloaded trace diverged from the recorded one")
    if _trace_signature(regenerated) != _trace_signature(trace_hi):
        failures.append("re-generated trace diverged (seeding is broken)")

    # -- gates ------------------------------------------------------------
    for lane, slo in (("half-rate", slo_lo), ("overload", slo_hi)):
        if not slo.balanced:
            failures.append(
                f"{lane}: offered {slo.offered} != completed {slo.completed}"
                f" + shed {slo.shed} + admit_rejected {slo.admit_rejected}"
                f" + failed {slo.failed}"
            )
        if slo.failed:
            failures.append(f"{lane}: {slo.failed} request(s) failed")
        if slo.mismatches:
            failures.append(
                f"{lane}: {slo.mismatches} result(s) diverged from the "
                f"plaintext oracle"
            )
        if not math.isfinite(slo.p99_ms):
            failures.append(f"{lane}: p99 is not finite")
    if slo_lo.shed:
        failures.append(
            f"half-rate: shed {slo_lo.shed} request(s) at "
            f"{HALF_FACTOR:.1f}x sustainable (admission bound too tight?)"
        )
    if not slo_hi.shed:
        failures.append(
            f"overload: no sheds at {OVERLOAD_FACTOR:.1f}x sustainable "
            f"(admission control never engaged)"
        )

    report = LoadReport(
        target=target_desc,
        arrival="poisson",
        rate=rate_hi,
        seed=seed,
        scenarios=[
            dataclasses.replace(slo_lo, scenario="database @0.4x"),
            dataclasses.replace(slo_hi, scenario="database @5x"),
        ],
        executor=str(stats.get("executor", "")),
        worker_restarts=int(stats.get("worker_restarts", 0) or 0),
        scheduler_sheds=int(stats.get("scheduler_sheds", 0) or 0),
    )
    emit("load_slo", report.table())
    (OUT_DIR / "load_slo.json").write_text(report.to_json() + "\n")

    # -- resilience lanes: MMPP burst + seeded chaos replay ---------------
    slo_burst, slo_chaos, chaos_stats, budget, fired = resilience_lanes(
        "database", seed, quick, sustainable, mean_latency, failures
    )
    chaos_report = LoadReport(
        target=target_desc,
        arrival="bursty+poisson",
        rate=sustainable,
        seed=seed,
        scenarios=[
            dataclasses.replace(slo_burst, scenario="database mmpp-burst"),
            dataclasses.replace(slo_chaos, scenario="database chaos-replay"),
        ],
        executor=str(chaos_stats.get("executor", "")),
        worker_restarts=int(chaos_stats.get("worker_restarts", 0) or 0),
        scheduler_sheds=int(chaos_stats.get("scheduler_sheds", 0) or 0),
    )
    emit("chaos_slo", chaos_report.table())
    chaos_json = chaos_report.to_dict()
    chaos_json["p99_budget_seconds"] = budget
    chaos_json["faults_fired"] = fired
    (OUT_DIR / "chaos_slo.json").write_text(
        json.dumps(chaos_json, indent=2) + "\n"
    )

    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print(
        f"load gate OK: sustainable ~{sustainable:.0f} q/s; half-rate "
        f"{slo_lo.completed}/{slo_lo.offered} completed with 0 sheds; "
        f"overload shed {slo_hi.shed}/{slo_hi.offered} "
        f"({slo_hi.shed_rate:.0%}) with exact accounting; trace "
        f"record/replay identical; mmpp-burst p99 {slo_burst.p99_ms:.0f} ms "
        f"within {budget * 1e3:.0f} ms budget at "
        f"{slo_burst.reject_rate:.0%} reject rate; chaos replay fired "
        f"{sum(fired.values())} fault(s) with 0 failures"
    )
    return 0


def test_emit_load_slo(benchmark):
    """Pytest entry point (same artifact, quick shape)."""
    benchmark(lambda: None)
    assert run(quick=True, seed=11) == 0


def test_emit_tenant_slo(benchmark):
    """Pytest entry point for the multi-tenant fair-share lane."""
    benchmark(lambda: None)
    assert run_tenant(quick=True, seed=11) == 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small trace; non-zero exit if shed accounting breaks, the "
        "overload lane never sheds, or the half-rate lane sheds (CI gate)",
    )
    parser.add_argument(
        "--seed", type=int, default=11,
        help="scenario + arrival + key seed (default: 11, pinned so CI "
        "runs are reproducible)",
    )
    parser.add_argument(
        "--tenant-lane", action="store_true",
        help="run only the multi-tenant fair-share lane: 4 tenants on one "
        "service, one hot MMPP burster; writes benchmarks/out/"
        "tenant_slo.{txt,json} and exits non-zero if any cold tenant's "
        f"combined p99 exceeds {TENANT_P99_RATIO:g}x its solo baseline",
    )
    args = parser.parse_args()
    if args.tenant_lane:
        return run_tenant(quick=args.quick, seed=args.seed)
    return run(quick=args.quick, seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
