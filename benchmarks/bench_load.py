"""Open-loop load SLO benchmark over the trace-driven harness.

Boots a loopback :class:`repro.net.ServiceThread` around a 2-shard
``bfv-sharded`` engine on the **process** executor with a small
per-connection admission bound, then drives the ``database`` scenario
(32-bit exact key lookups from :mod:`repro.load`) through the client
SDK two ways:

* **half rate** — a seeded Poisson trace at ~0.4x the closed-loop
  sustainable rate.  Nothing may shed.
* **overload** — the same scenario at ~5x sustainable.  The admission
  controller must shed, and the accounting must balance *exactly*:
  ``offered == completed + shed`` with zero failures.

The overload trace is saved to disk, reloaded, and re-generated from
the same seed; all three must describe the identical request sequence
(the record/replay guarantee the CI ``load-smoke`` job relies on).

The table reports per-lane offered vs achieved q/s, shed rate and
p50/p95/p99 latency; the same report is written machine-readable to
``benchmarks/out/load_slo.json`` via ``LoadReport.to_json``.  Runs
standalone (``python benchmarks/bench_load.py``) or under pytest.
``--quick`` shrinks the request counts and **exits non-zero if any
gate fails** — the CI bench-smoke gate.

All RNG seeds are pinned (--seed, default 11) so the CI gate replays
the exact same workload on every run.
"""

from __future__ import annotations

import argparse
import dataclasses
import math
import sys
import time

from _util import OUT_DIR, emit

from repro.he import BFVParams
from repro.load import (
    SCENARIO_REGISTRY,
    LoadReport,
    LoadTrace,
    PoissonArrivals,
    RemoteTarget,
    ScenarioSlo,
    generate_trace,
    run_trace,
)
from repro.net import Client, ServiceThread

NUM_SHARDS = 2
MAX_IN_FLIGHT = 16
OVERLOAD_FACTOR = 5.0
HALF_FACTOR = 0.4


def _trace_signature(trace: LoadTrace):
    """The replay-relevant content of a trace, comparable across copies."""
    from repro.load.trace import request_to_json

    return [
        (ev.index, ev.at, request_to_json(ev.request), ev.expected)
        for ev in trace.events
    ]


def run(quick: bool, seed: int) -> int:
    n_probe = 4 if quick else 8
    n_half = 30 if quick else 80
    n_over = 60 if quick else 150

    scenario = SCENARIO_REGISTRY.create("database", seed=seed)
    failures = []

    with ServiceThread(
        "bfv-sharded",
        params=BFVParams.test_small(64),
        num_shards=NUM_SHARDS,
        key_seed=seed,
        executor="process",
        max_in_flight=MAX_IN_FLIGHT,
    ) as service:
        # shedding is per-connection: one socket so the in-flight bound
        # applies to the whole open-loop stream
        client = Client(service.address, pool_size=1)
        target = RemoteTarget(client, owns_client=True)
        try:
            target_desc = target.describe()
            scenario.check(target.capabilities, target_desc)
            target.outsource(scenario.db_bits())

            # -- closed-loop probe: sustainable per-request latency ------
            probe = [
                ev.request
                for ev in generate_trace(
                    scenario, PoissonArrivals(), 100.0, max_requests=n_probe + 1
                ).events
            ]
            target.submit(probe[0], None).result()  # warm the worker pool
            t0 = time.perf_counter()
            for request in probe[1:]:
                target.submit(request, None).result()
            mean_latency = (time.perf_counter() - t0) / n_probe
            sustainable = 1.0 / mean_latency

            # -- half-rate lane: nothing may shed ------------------------
            rate_lo = HALF_FACTOR * sustainable
            trace_lo = generate_trace(
                scenario, PoissonArrivals(), rate_lo, max_requests=n_half
            )
            slo_lo = ScenarioSlo.from_run(trace_lo, run_trace(trace_lo, target))

            # -- overload lane: admission control must shed --------------
            rate_hi = OVERLOAD_FACTOR * sustainable
            trace_hi = generate_trace(
                scenario, PoissonArrivals(), rate_hi, max_requests=n_over
            )
            slo_hi = ScenarioSlo.from_run(trace_hi, run_trace(trace_hi, target))

            stats = target.stats()
        finally:
            target.close()

    # -- record/replay: disk copy and fresh generation must be identical --
    OUT_DIR.mkdir(exist_ok=True)
    trace_path = OUT_DIR / "load_overload_trace.jsonl"
    trace_hi.save(trace_path)
    reloaded = LoadTrace.load(trace_path)
    regenerated = generate_trace(
        SCENARIO_REGISTRY.create("database", seed=seed),
        PoissonArrivals(),
        rate_hi,
        max_requests=n_over,
    )
    if _trace_signature(reloaded) != _trace_signature(trace_hi):
        failures.append("reloaded trace diverged from the recorded one")
    if _trace_signature(regenerated) != _trace_signature(trace_hi):
        failures.append("re-generated trace diverged (seeding is broken)")

    # -- gates ------------------------------------------------------------
    for lane, slo in (("half-rate", slo_lo), ("overload", slo_hi)):
        if not slo.balanced:
            failures.append(
                f"{lane}: offered {slo.offered} != completed {slo.completed}"
                f" + shed {slo.shed} + failed {slo.failed}"
            )
        if slo.failed:
            failures.append(f"{lane}: {slo.failed} request(s) failed")
        if slo.mismatches:
            failures.append(
                f"{lane}: {slo.mismatches} result(s) diverged from the "
                f"plaintext oracle"
            )
        if not math.isfinite(slo.p99_ms):
            failures.append(f"{lane}: p99 is not finite")
    if slo_lo.shed:
        failures.append(
            f"half-rate: shed {slo_lo.shed} request(s) at "
            f"{HALF_FACTOR:.1f}x sustainable (admission bound too tight?)"
        )
    if not slo_hi.shed:
        failures.append(
            f"overload: no sheds at {OVERLOAD_FACTOR:.1f}x sustainable "
            f"(admission control never engaged)"
        )

    report = LoadReport(
        target=target_desc,
        arrival="poisson",
        rate=rate_hi,
        seed=seed,
        scenarios=[
            dataclasses.replace(slo_lo, scenario="database @0.4x"),
            dataclasses.replace(slo_hi, scenario="database @5x"),
        ],
        executor=str(stats.get("executor", "")),
        worker_restarts=int(stats.get("worker_restarts", 0) or 0),
        scheduler_sheds=int(stats.get("scheduler_sheds", 0) or 0),
    )
    emit("load_slo", report.table())
    (OUT_DIR / "load_slo.json").write_text(report.to_json() + "\n")

    if failures:
        for line in failures:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print(
        f"load gate OK: sustainable ~{sustainable:.0f} q/s; half-rate "
        f"{slo_lo.completed}/{slo_lo.offered} completed with 0 sheds; "
        f"overload shed {slo_hi.shed}/{slo_hi.offered} "
        f"({slo_hi.shed_rate:.0%}) with exact accounting; trace "
        f"record/replay identical"
    )
    return 0


def test_emit_load_slo(benchmark):
    """Pytest entry point (same artifact, quick shape)."""
    benchmark(lambda: None)
    assert run(quick=True, seed=11) == 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small trace; non-zero exit if shed accounting breaks, the "
        "overload lane never sheds, or the half-rate lane sheds (CI gate)",
    )
    parser.add_argument(
        "--seed", type=int, default=11,
        help="scenario + arrival + key seed (default: 11, pinned so CI "
        "runs are reproducible)",
    )
    args = parser.parse_args()
    return run(quick=args.quick, seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
