"""Figure 7: CM-SW and arithmetic-baseline speedup over the Boolean
approach vs query size (128 GB encrypted DB, single query)."""

from _util import emit
from repro.eval.calibration import QUERY_SIZES
from repro.eval.experiments import figure7
from repro.eval.models import SoftwareCostModel


def test_emit_figure7(benchmark):
    emit("figure7", figure7())
    model = SoftwareCostModel()
    benchmark(model.figure7, list(QUERY_SIZES))
