"""Polynomial-backend speedup: reference vs vectorized RNS/NTT.

Three measurements:

* negacyclic multiply at the paper modulus (``q = 2**32``) across ring
  degrees — the operation behind every encrypt (``pk0 * u``) and every
  decrypt (``c1 * s``);
* the scalar-multiply and automorphism kernels at a 41-bit modulus,
  where the reference path falls back to Python-int arithmetic;
* end-to-end serving throughput of :class:`ShardedSearchEngine` under
  each backend (decode decrypts one result block per Hom-Add, so the
  vectorized multiply directly lifts queries/sec).

Runs standalone (``python benchmarks/bench_poly.py``) or under pytest.
``--quick`` restricts to the n=4096 multiply and **exits non-zero if the
vectorized backend is not faster than reference** — the CI bench-smoke
gate.  The acceptance target for this repo is >= 5x on the n=4096
multiply; the table records the measured ratio.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from _util import emit

from repro.core import ClientConfig
from repro.eval.tables import format_table
from repro.he.poly import RingContext, RingPoly
from repro.serve import ShardedSearchEngine
from repro.utils.bits import random_bits

PAPER_Q = 1 << 32
WIDE_Q = (1 << 40) + 123


def _time(fn, reps: int) -> float:
    """Best-of-reps seconds for one call of ``fn`` (robust to scheduler
    noise, the standard for microbenchmarks)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _fresh(ring: RingContext, coeffs: np.ndarray) -> RingPoly:
    """A poly wrapper with no cached NTT transform (cold-path timing)."""
    return ring.make(coeffs)


#: base RNG seed; every measurement derives its stream from this, so
#: the CI gate (--quick) replays the identical workload on every run
DEFAULT_SEED = 13


def bench_mul(n: int, q: int, reps: int, seed: int = DEFAULT_SEED) -> dict:
    rng = np.random.default_rng(seed)
    a = rng.integers(0, q, size=n, dtype=np.int64)
    b = rng.integers(0, q, size=n, dtype=np.int64)

    ref = RingContext(n, q, backend="reference")
    vec = RingContext(n, q, backend="vectorized")

    t_ref = _time(lambda: _fresh(ref, a) * _fresh(ref, b), reps)
    t_vec = _time(lambda: _fresh(vec, a) * _fresh(vec, b), reps)

    # Cached: the database operand keeps its forward transforms, the
    # query operand is fresh each time — the serving inner-loop shape.
    db_poly = vec.make(a)
    _ = db_poly * vec.make(b)  # warm the cache
    t_cached = _time(lambda: db_poly * _fresh(vec, b), reps)

    assert np.array_equal(
        (_fresh(ref, a) * _fresh(ref, b)).coeffs,
        (db_poly * _fresh(vec, b)).coeffs,
    ), "backends diverged — run tests/he/test_backend_parity.py"
    return {
        "n": n,
        "reference_ms": t_ref * 1e3,
        "vectorized_ms": t_vec * 1e3,
        "vectorized_cached_ms": t_cached * 1e3,
        "speedup": t_ref / t_vec,
        "speedup_cached": t_ref / t_cached,
    }


def bench_kernels(n: int, reps: int, seed: int = DEFAULT_SEED) -> list[dict]:
    rng = np.random.default_rng(seed + 1)
    coeffs = rng.integers(0, WIDE_Q, size=n, dtype=np.int64)
    scalar = WIDE_Q - 7
    rows = []
    for op, call in [
        ("scalar_mul (41-bit q)", lambda p: p.scalar_mul(scalar)),
        ("automorphism k=3", lambda p: p.automorphism(3)),
    ]:
        ref_p = RingContext(n, WIDE_Q, backend="reference").make(coeffs)
        vec_p = RingContext(n, WIDE_Q, backend="vectorized").make(coeffs)
        t_ref = _time(lambda: call(ref_p), reps)
        t_vec = _time(lambda: call(vec_p), reps)
        rows.append(
            {
                "op": op,
                "reference_ms": t_ref * 1e3,
                "vectorized_ms": t_vec * 1e3,
                "speedup": t_ref / t_vec,
            }
        )
    return rows


def bench_serving(reps: int, seed: int = DEFAULT_SEED) -> list[dict]:
    from repro.he import BFVParams

    rng = np.random.default_rng(seed + 2)
    params = BFVParams.test_small(64)
    db = random_bits(params.n * 16 * 8, rng)
    queries = []
    for k in range(6):
        q_bits = random_bits(32, rng)
        off = 16 * (13 + 83 * k)
        db[off : off + 32] = q_bits
        queries.append(q_bits)

    rows = []
    for backend in ("reference", "vectorized"):
        engine = ShardedSearchEngine(
            ClientConfig(params, key_seed=seed + 2),
            num_shards=2,
            poly_backend=backend,
        )
        engine.outsource(db)
        best = min(
            _time(lambda: engine.search_batch(queries), 1) for _ in range(reps)
        )
        rows.append(
            {
                "backend": backend,
                "batch_seconds": best,
                "queries_per_sec": len(queries) / best,
            }
        )
    rows[1]["speedup"] = rows[0]["batch_seconds"] / rows[1]["batch_seconds"]
    return rows


def run(quick: bool, seed: int = DEFAULT_SEED) -> int:
    reps = 7 if quick else 15
    mul_rows = [bench_mul(4096, PAPER_Q, reps, seed)]
    if not quick:
        mul_rows.insert(0, bench_mul(1024, PAPER_Q, reps, seed))
        mul_rows.append(bench_mul(8192, PAPER_Q, reps, seed))

    lines = [
        format_table(
            "Negacyclic multiply, paper modulus q=2**32 (best of %d)" % reps,
            ["n", "reference_ms", "vectorized_ms", "vectorized_cached_ms",
             "speedup", "speedup_cached"],
            [
                [r["n"], f"{r['reference_ms']:.2f}", f"{r['vectorized_ms']:.2f}",
                 f"{r['vectorized_cached_ms']:.2f}", f"{r['speedup']:.1f}x",
                 f"{r['speedup_cached']:.1f}x"]
                for r in mul_rows
            ],
        ),
    ]

    if not quick:
        kernel_rows = bench_kernels(4096, reps, seed)
        lines += [
            "",
            format_table(
                "Kernels at a 41-bit modulus (reference uses big-int fallback)",
                ["op", "reference_ms", "vectorized_ms", "speedup"],
                [
                    [r["op"], f"{r['reference_ms']:.3f}",
                     f"{r['vectorized_ms']:.3f}", f"{r['speedup']:.1f}x"]
                    for r in kernel_rows
                ],
            ),
        ]
        serve_rows = bench_serving(reps=2, seed=seed)
        lines += [
            "",
            format_table(
                "End-to-end serving (6-query batch, 2 shards, client decrypt)",
                ["backend", "batch_seconds", "queries_per_sec", "speedup"],
                [
                    [r["backend"], f"{r['batch_seconds']:.2f}",
                     f"{r['queries_per_sec']:.2f}",
                     f"{r.get('speedup', float('nan')):.1f}x" if "speedup" in r else "-"]
                    for r in serve_rows
                ],
            ),
        ]

    emit("bench_poly", "\n".join(lines))

    gate = mul_rows[-1] if quick else mul_rows[1]
    if gate["speedup"] <= 1.0:
        print(
            f"FAIL: vectorized backend slower than reference on n={gate['n']} "
            f"mul ({gate['speedup']:.2f}x)",
            file=sys.stderr,
        )
        return 1
    target = 5.0
    best = max(gate["speedup"], gate["speedup_cached"])
    status = "meets" if best >= target else "BELOW"
    print(
        f"n={gate['n']} mul speedup: {gate['speedup']:.1f}x cold, "
        f"{gate['speedup_cached']:.1f}x with cached db operand "
        f"({status} the {target}x target)"
    )
    return 0


def test_emit_poly_backend_speedup(benchmark):
    """Pytest entry point (same artifact, quick shape)."""
    benchmark(lambda: None)
    assert run(quick=True) == 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="n=4096 multiply only; non-zero exit if vectorized is slower "
        "than reference (CI gate)",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help=f"base RNG seed (default: {DEFAULT_SEED}, pinned so the CI "
        "gate replays the identical workload every run)",
    )
    args = parser.parse_args()
    return run(quick=args.quick, seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
