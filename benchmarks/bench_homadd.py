"""Fused vs object search-kernel speedup on the db x variant hot path.

Measures the three stages the arena kernels fuse, over a grid of
(ring degree n, database polynomials P, query variants V):

* **hom-add** — the raw db x variant ciphertext addition product:
  ``V * P`` ``ctx.add`` calls (object) vs one
  :meth:`~repro.he.arena.CiphertextArena.hom_add_broadcast` (fused);
* **query path** — the modeled CM-SW per-query serving cost: Hom-Add
  every pair, then index-generate (decrypt + all-ones flag) every
  result block.  The object path pays one ``c1 * s`` ring multiply per
  block; the fused path rides phase linearity — V batched multiplies
  for the query rows plus broadcast adds — against database phases that
  were computed once at outsourcing time (reported separately as the
  cold build).

Both kernels must produce bit-identical flag grids; the script asserts
it on every cell.  Runs standalone
(``python benchmarks/bench_homadd.py``) or under pytest.  ``--quick``
restricts to one small grid cell and **exits non-zero if the fused
kernel is not faster than the object kernel** — the CI bench-smoke
gate.  The acceptance target for this repo is >= 5x on the full query
path at n=4096 with >= 64 polynomials; the table records the measured
ratio.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import tracemalloc

import numpy as np

from _util import emit

from repro.eval.tables import format_table
from repro.he import BFVParams
from repro.he.arena import (
    CiphertextArena,
    add_mod_q,
    fused_decrypt_flags,
    mul_rows_by_poly,
    stack_ciphertext,
)
from repro.he.bfv import BFVContext
from repro.he.keys import generate_keys

PAPER_Q = 1 << 32
PAPER_T = 1 << 16
CHUNK_WIDTH = 16

#: (n, num_polys, num_variants) grid; the 4096/64/16 cell is the
#: acceptance configuration (paper chunk width w=16 => 16 variants).
FULL_GRID = [(1024, 16, 8), (4096, 64, 16), (4096, 128, 16)]
#: --quick covers both ends: the small cell (object path cheap enough
#: for tight timing) AND the large memory-bound cell, where the fused
#: advantage used to collapse to ~1.1x before the tiled add — the CI
#: gate demands >= 3x there so the regression can't silently return.
QUICK_GRID = [(1024, 16, 8), (4096, 128, 16)]

#: the memory-bound cell's Hom-Add gate (raw broadcast add vs V*P
#: ctx.add calls, steady-state output buffer)
LARGE_ADD_GATE = 3.0

#: fused peak allocation must stay within this factor of the object
#: path's high-water mark at the large cell (catches any return of the
#: double full-product materialization)
PEAK_RATIO_GATE = 1.5


def _time(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _peak_bytes(fn) -> int:
    """High-water allocation mark of one ``fn()`` call (tracemalloc
    sees NumPy buffers through the PyDataMem hooks)."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


#: RNG seed for keys, ciphertexts and payloads; pinned so the CI gate
#: (--quick) replays the identical workload on every run
DEFAULT_SEED = 17


def _setup(n: int, num_polys: int, num_variants: int, seed: int = DEFAULT_SEED):
    params = BFVParams(n=n, q=PAPER_Q, t=PAPER_T, name=f"bench-n{n}")
    ctx = BFVContext(params, seed=seed)
    sk, pk, _, _ = generate_keys(params, seed)
    rng = np.random.default_rng(seed)
    db_cts = [
        ctx.encrypt(
            ctx.plaintext(rng.integers(0, params.t, size=n, dtype=np.int64)), pk
        )
        for _ in range(num_polys)
    ]
    q_cts = [
        ctx.encrypt(
            ctx.plaintext(rng.integers(0, params.t, size=n, dtype=np.int64)), pk
        )
        for _ in range(num_variants)
    ]
    return params, ctx, sk, db_cts, q_cts


def bench_cell(
    n: int, num_polys: int, num_variants: int, reps: int,
    seed: int = DEFAULT_SEED,
) -> dict:
    params, ctx, sk, db_cts, q_cts = _setup(n, num_polys, num_variants, seed)
    q = params.q

    # ---- object kernel -------------------------------------------------
    def object_homadd():
        return [
            ctx.add(db_ct, q_ct) for q_ct in q_cts for db_ct in db_cts
        ]

    def object_query_path():
        flags = []
        for result in object_homadd():
            pt = ctx.decrypt(result, sk)
            flags.append(pt.poly.coeffs == (1 << CHUNK_WIDTH) - 1)
        return np.asarray(flags).reshape(num_variants, num_polys, n)

    # ---- fused kernel --------------------------------------------------
    arena = CiphertextArena.from_ciphertexts(ctx.ring, params, db_cts)
    q_stack = np.stack([stack_ciphertext(ct) for ct in q_cts])
    row_map = np.tile(
        np.arange(num_variants, dtype=np.intp)[:, None], (1, num_polys)
    )

    # Steady-state serving shape: the engine reuses its result buffer
    # across queries, so the timed kernel writes into a preallocated
    # grid — fresh-page faults would otherwise dominate the tiled add
    # at memory-bound sizes and measure the allocator, not the kernel.
    grid_out = np.empty((num_variants, num_polys, 2, n), dtype=np.int64)

    def fused_homadd():
        return arena.hom_add_broadcast(q_stack, out=grid_out)

    def fused_db_phases():
        # the once-per-outsourcing cost: c0 + c1 * s over all db rows
        return add_mod_q(
            arena.c0, mul_rows_by_poly(ctx.ring, arena.c1, sk.s), q
        )

    db_phases = fused_db_phases()

    def fused_query_path():
        # per-query steady state: V query-phase multiplies + broadcast
        # adds + scaling + flag compare over the whole grid
        q_phases = add_mod_q(
            q_stack[:, 0],
            mul_rows_by_poly(ctx.ring, q_stack[:, 1], sk.s),
            q,
        )
        return fused_decrypt_flags(
            db_phases, q_phases, row_map, params, CHUNK_WIDTH
        )

    # bit-for-bit parity before timing anything
    assert np.array_equal(object_query_path(), fused_query_path()), (
        "fused flags diverged from object flags — run tests/he/test_arena.py"
    )
    grid = fused_homadd()
    ref = object_homadd()
    for v in range(num_variants):
        for j in range(num_polys):
            block = ref[v * num_polys + j]
            assert np.array_equal(grid[v, j, 0], block.c0.coeffs)
            assert np.array_equal(grid[v, j, 1], block.c1.coeffs)

    t_obj_add = _time(object_homadd, reps)
    t_fused_add = _time(fused_homadd, reps)
    t_obj_query = _time(object_query_path, max(1, reps // 2))
    t_fused_query = _time(fused_query_path, reps)
    t_phase_build = _time(fused_db_phases, max(1, reps // 2))

    # High-water allocation of the full Hom-Add product, fused (cold,
    # fresh output) vs object (V*P result ciphertexts).  The tiled
    # kernel must never materialize more than the result itself.
    object_peak = _peak_bytes(object_homadd)
    fused_peak = _peak_bytes(lambda: arena.hom_add_broadcast(q_stack))

    pairs = num_variants * num_polys
    return {
        "n": n,
        "polys": num_polys,
        "variants": num_variants,
        "object_add_ms": t_obj_add * 1e3,
        "fused_add_ms": t_fused_add * 1e3,
        "add_speedup": t_obj_add / t_fused_add,
        "object_query_ms": t_obj_query * 1e3,
        "fused_query_ms": t_fused_query * 1e3,
        "query_speedup": t_obj_query / t_fused_query,
        "phase_build_ms": t_phase_build * 1e3,
        "object_pairs_per_sec": pairs / t_obj_query,
        "fused_pairs_per_sec": pairs / t_fused_query,
        "object_peak_mib": object_peak / 2**20,
        "fused_peak_mib": fused_peak / 2**20,
        "peak_ratio": fused_peak / max(1, object_peak),
    }


def run(quick: bool, seed: int = DEFAULT_SEED) -> int:
    reps = 5 if quick else 7
    grid = QUICK_GRID if quick else FULL_GRID
    rows = [bench_cell(*cell, reps=reps, seed=seed) for cell in grid]

    table = format_table(
        "Fused vs object search kernels, q=2**32 w=16 (best of %d)" % reps,
        [
            "n", "polys", "variants",
            "obj add ms", "fused add ms", "add x",
            "obj query ms", "fused query ms", "query x",
            "db-phase build ms", "peak MiB (obj/fused)",
        ],
        [
            [
                r["n"], r["polys"], r["variants"],
                f"{r['object_add_ms']:.2f}", f"{r['fused_add_ms']:.2f}",
                f"{r['add_speedup']:.1f}x",
                f"{r['object_query_ms']:.1f}", f"{r['fused_query_ms']:.1f}",
                f"{r['query_speedup']:.1f}x",
                f"{r['phase_build_ms']:.1f}",
                f"{r['object_peak_mib']:.0f}/{r['fused_peak_mib']:.0f}",
            ]
            for r in rows
        ],
        paper_note=(
            "query path = Hom-Add + decrypt + flag per (poly, variant) pair "
            "(the CM-SW serving inner loop); db phases amortize over the "
            "database lifetime; fused add reuses the steady-state result "
            f"buffer (tiled kernel); host cpus={os.cpu_count()}"
        ),
    )
    emit("bench_homadd", table)

    # CI gate: fused must beat object on every measured cell.
    worst = min(rows, key=lambda r: r["query_speedup"])
    if worst["query_speedup"] <= 1.0 or worst["add_speedup"] <= 1.0:
        print(
            f"FAIL: fused kernel not faster at n={worst['n']} "
            f"(add {worst['add_speedup']:.2f}x, "
            f"query {worst['query_speedup']:.2f}x)",
            file=sys.stderr,
        )
        return 1
    # Memory-bound-tail gates at the large cell: the tiled add must hold
    # >= 3x and must not allocate beyond ~the result grid itself.
    for r in rows:
        if not (r["n"] >= 4096 and r["polys"] >= 128):
            continue
        if r["add_speedup"] < LARGE_ADD_GATE:
            print(
                f"FAIL: fused add only {r['add_speedup']:.2f}x object at "
                f"n={r['n']} P={r['polys']} V={r['variants']} "
                f"(gate: {LARGE_ADD_GATE}x) — memory-bound tail regressed",
                file=sys.stderr,
            )
            return 1
        if r["peak_ratio"] > PEAK_RATIO_GATE:
            print(
                f"FAIL: fused add peak allocation "
                f"{r['fused_peak_mib']:.0f} MiB exceeds "
                f"{PEAK_RATIO_GATE}x object ({r['object_peak_mib']:.0f} MiB) "
                f"at n={r['n']} P={r['polys']} — full product "
                f"materialized more than once",
                file=sys.stderr,
            )
            return 1
    target = 5.0
    gate = next(
        (r for r in rows if r["n"] == 4096 and r["polys"] >= 64), rows[-1]
    )
    status = "meets" if gate["query_speedup"] >= target else "BELOW"
    print(
        f"n={gate['n']} P={gate['polys']} V={gate['variants']} query-path "
        f"speedup: {gate['query_speedup']:.1f}x "
        f"(Hom-Add alone {gate['add_speedup']:.1f}x; {status} the "
        f"{target}x target)"
    )
    return 0


def test_emit_homadd_kernel_speedup(benchmark):
    """Pytest entry point (same artifact, quick shape)."""
    benchmark(lambda: None)
    assert run(quick=True) == 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one small grid cell; non-zero exit if the fused kernel is "
        "slower than the object kernel (CI gate)",
    )
    parser.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help=f"RNG seed (default: {DEFAULT_SEED}, pinned so the CI gate "
        "replays the identical workload every run)",
    )
    args = parser.parse_args()
    return run(quick=args.quick, seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
