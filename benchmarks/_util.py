"""Shared helpers for the benchmark suite.

Every figure bench both *prints* its reproduction table and writes it to
``benchmarks/out/<name>.txt`` so the artifacts survive pytest's output
capture.  Run with ``pytest benchmarks/ --benchmark-only`` and inspect
``benchmarks/out/`` afterwards (or add ``-s`` to see tables inline).
"""

from __future__ import annotations

import pathlib

OUT_DIR = pathlib.Path(__file__).parent / "out"


def emit(name: str, table: str) -> None:
    """Print a reproduction table and persist it under benchmarks/out."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(table + "\n")
    print()
    print(table)
