"""Ablation: IFP design choices — geometry parallelism, SLC vs TLC
reads, and software vs hardware transposition (DESIGN.md bench list)."""

import numpy as np
import pytest

from _util import emit
from repro.eval import format_table
from repro.eval.calibration import GIB, HardwareFamilyCalibration
from repro.flash import (
    BitSerialAdder,
    FlashArray,
    FlashGeometry,
    FlashTimings,
)
from repro.ndp import HardwarePerformanceModel, WorkloadPoint
from repro.ssd import DataTranspositionUnit


def ifp_speedup_with_geometry(geometry: FlashGeometry) -> float:
    cal = HardwareFamilyCalibration(geometry=geometry)
    model = HardwarePerformanceModel(cal)
    w = WorkloadPoint(128 * GIB, 16)
    return model.time_cm_sw(w) / model.time_cm_ifp(w)


def test_emit_parallelism_sweep(benchmark):
    """CM-IFP speedup scales with channel/die/plane parallelism."""
    rows = []
    for channels, dies, planes in [(2, 2, 1), (4, 4, 2), (8, 8, 2), (16, 8, 4)]:
        geo = FlashGeometry(
            channels=channels, dies_per_channel=dies, planes_per_die=planes
        )
        rows.append(
            [
                f"{channels}ch x {dies}die x {planes}pl",
                geo.parallel_bitlines / 1e6,
                ifp_speedup_with_geometry(geo),
            ]
        )
    table = format_table(
        "Ablation: CM-IFP speedup over CM-SW vs flash parallelism (16b, 128GB)",
        ["geometry", "parallel bitlines (M)", "speedup"],
        rows,
        paper_note="Table 3 geometry = 8ch x 8die x 2pl; speedup saturates "
        "once compute stops being the bottleneck",
    )
    emit("ablation_ifp_parallelism", table)
    assert rows[-1][2] > rows[0][2]
    benchmark(lambda: None)


def test_emit_read_latency_ablation(benchmark):
    """SLC vs TLC vs Z-NAND read latency dominates T_bit_add (Eqn 9)."""
    rows = []
    for name, t_read in [("Z-NAND", 3e-6), ("SLC (ESP)", 22.5e-6), ("TLC", 61e-6)]:
        t = FlashTimings(t_read_slc=t_read)
        rows.append([name, t_read * 1e6, t.t_bit_add * 1e6, t.t_word_add(32) * 1e3])
    table = format_table(
        "Ablation: flash read latency vs bit-serial add cost",
        ["cell mode", "t_read us", "t_bit_add us", "t_32b_add ms"],
        rows,
        paper_note="read latency is >75% of Eqn 9; ESP SLC reads are the "
        "reliability/latency point CIPHERMATCH picks",
        float_format="{:.2f}",
    )
    emit("ablation_ifp_read", table)
    assert rows[0][2] < rows[1][2] < rows[2][2]
    benchmark(lambda: None)


def test_emit_transposition_ablation(benchmark):
    """Software vs hardware transposition: overlap with flash reads."""
    rows = []
    for hw in (False, True):
        unit = DataTranspositionUnit(hardware=hw)
        rows.append(
            [
                "hardware" if hw else "software",
                unit.latency_per_page * 1e6,
                "yes" if unit.costs.hidden_under_read(hw) else "no",
                (
                    "yes"
                    if unit.costs.hidden_under_read(
                        hw, unit.costs.znand_read_latency
                    )
                    else "no"
                ),
            ]
        )
    table = format_table(
        "Ablation: transposition unit (overlappable with reads?)",
        ["unit", "latency/page us", "hidden @22.5us read", "hidden @3us Z-NAND"],
        rows,
        paper_note="software 13.6us hides under SLC reads; Z-NAND needs the "
        "158ns hardware unit (§7.1)",
        float_format="{:.2f}",
    )
    emit("ablation_ifp_transposition", table)
    benchmark(lambda: None)


@pytest.mark.parametrize("bitlines", [512, 2048, 4096])
def test_functional_add_scales_with_bitlines(benchmark, bitlines):
    """Functional wall-clock of one bop_add wave vs plane width (the
    simulator itself is vectorized across bitlines)."""
    geo = FlashGeometry.functional(num_bitlines=bitlines, wordlines=64)
    adder = BitSerialAdder(FlashArray(geo).plane(0), 32)
    rng = np.random.default_rng(1)
    a = rng.integers(0, 1 << 32, bitlines).astype(np.int64)
    b = rng.integers(0, 1 << 32, bitlines).astype(np.int64)
    adder.store_words(0, a)
    result = benchmark(adder.add, 0, b)
    assert np.array_equal(result, (a + b) % (1 << 32))
