"""Serving-engine scaling: batch throughput vs shard count (1 -> 8)
across both shard executors, plus fused-vs-object search-kernel
end-to-end comparison.

The scaling table now carries an **executor** column: ``thread`` runs
the shards on a pool of worker threads inside one interpreter (wall
throughput GIL-bound on the functional simulator), ``process`` runs
each shard in a spawn-pinned worker process holding a zero-copy
shared-memory view of the encrypted database (``CiphertextArena
.share()``), so Hom-Add/decrypt work escapes the GIL entirely.  The
discrete-event queueing model of the executed task trace (each shard a
CM-IFP channel/die group) is the deployment claim either way; the
executor column is the *software* wall-clock claim.

Match sets must be byte-identical across every (shards, executor) cell
— asserted unconditionally.  The wall-clock speedup gate is
core-count-aware: process workers cannot beat threads on a single-CPU
host, so the required ratio is 1.5x with >= 4 CPUs, 1.05x with >= 2,
and waived (with a printed note) on 1 CPU.  Runs standalone
(``python benchmarks/bench_serving.py``) or under pytest; ``--quick``
restricts to the 4-shard gate cell for the CI bench-smoke lane.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from _util import emit

from repro.core import ClientConfig
from repro.core.client import CipherMatchClient
from repro.eval.tables import format_table
from repro.he import BFVParams
from repro.serve import ShardedSearchEngine
from repro.utils.bits import random_bits

SHARD_COUNTS = (1, 2, 4, 8)
EXECUTORS = ("thread", "process")
NUM_POLYS = 16
NUM_QUERIES = 12

#: 4-shard wall-clock gate: required process/thread q/s ratio by host
#: core count.  A single-CPU host cannot show a parallel speedup, so
#: the ratio gate is waived there (correctness parity never is).
GATE_SHARDS = 4


def _required_ratio(cpus: int):
    if cpus >= 4:
        return 1.5
    if cpus >= 2:
        return 1.05
    return None


def _workload():
    rng = np.random.default_rng(9)
    params = BFVParams.test_small(64)
    bits_per_poly = params.n * 16
    db = random_bits(NUM_POLYS * bits_per_poly, rng)
    queries = []
    for k in range(NUM_QUERIES):
        q = random_bits(32, rng)
        off = 16 * (11 + 61 * k)
        db[off : off + 32] = q
        queries.append(q)
    return params, db, queries


def _run_batch(params, db, queries, shards, executor, kernel="fused"):
    """One fresh engine, one outsource, one timed batch.

    Worker processes warm-start at outsourcing time, so the timed batch
    measures steady-state serving, not spawn cost.
    """
    engine = ShardedSearchEngine(
        ClientConfig(params, key_seed=9),
        num_shards=shards,
        cache_capacity=512,
        search_kernel=kernel,
        executor=executor,
    )
    try:
        engine.outsource(db)
        t0 = time.perf_counter()
        report = engine.search_batch(queries)
        seconds = time.perf_counter() - t0
    finally:
        engine.close()
    return report, seconds


def run_scaling(quick: bool) -> int:
    params, db, queries = _workload()
    cpus = os.cpu_count() or 1
    shard_counts = (1, GATE_SHARDS) if quick else SHARD_COUNTS
    rows = []
    reports = {}
    seconds = {}
    for shards in shard_counts:
        for executor in EXECUTORS:
            report, secs = _run_batch(params, db, queries, shards, executor)
            reports[shards, executor] = report
            seconds[shards, executor] = secs
            base = reports[shard_counts[0], executor]
            rows.append(
                [
                    shards,
                    executor,
                    f"{len(queries) / secs:.1f}",
                    f"{report.modeled_throughput_qps:.1f}",
                    f"{base.modeled_makespan / report.modeled_makespan:.2f}x",
                    f"{report.modeled_latency_percentile(99) * 1e3:.1f}",
                    f"{report.cache.hit_rate * 100:.0f}%",
                    report.worker_restarts,
                ]
            )

    emit(
        "serving_scaling",
        format_table(
            "serving throughput vs shard count and executor "
            f"({NUM_QUERIES}-query batch)",
            (
                "shards", "executor", "wall q/s", "modeled q/s",
                "modeled speedup", "p99 ms", "cache hit", "restarts",
            ),
            rows,
            paper_note=(
                "Fig. 9/12 batch workload on sharded CM-IFP backends; "
                "process executor = spawn workers over a shared-memory "
                f"arena; host has {cpus} CPU(s)"
            ),
        ),
    )

    # every (shards, executor) cell must produce identical match sets
    baseline = reports[shard_counts[0], "thread"].matches_per_query()
    for key, report in reports.items():
        assert report.matches_per_query() == baseline, (
            f"match divergence at shards={key[0]} executor={key[1]}"
        )

    if not quick:
        # modeled-throughput acceptance: >= 2x at 4 shards vs 1
        speedup_at_4 = (
            reports[1, "thread"].modeled_makespan
            / reports[4, "thread"].modeled_makespan
        )
        assert speedup_at_4 >= 2.0, (
            f"4-shard modeled speedup only {speedup_at_4:.2f}x"
        )

    # executor wall-clock gate at 4 shards (core-count-aware)
    ratio = (
        seconds[GATE_SHARDS, "thread"] / seconds[GATE_SHARDS, "process"]
    )
    required = _required_ratio(cpus)
    print(
        f"{GATE_SHARDS}-shard wall q/s — thread: "
        f"{len(queries) / seconds[GATE_SHARDS, 'thread']:.1f}, process: "
        f"{len(queries) / seconds[GATE_SHARDS, 'process']:.1f} "
        f"(process/thread ratio {ratio:.2f}x on {cpus} CPU(s))"
    )
    if required is None:
        print(
            "speedup gate WAIVED: single-CPU host cannot exhibit "
            "process-parallel speedup; match parity still enforced"
        )
    elif ratio < required:
        print(
            f"FAIL: process executor only {ratio:.2f}x thread at "
            f"{GATE_SHARDS} shards (need >= {required:.2f}x on "
            f"{cpus} CPUs)",
            file=sys.stderr,
        )
        return 1
    return 0


def run_kernels() -> int:
    """Fused vs object search kernel, end-to-end on the serve engine."""
    params, db, queries = _workload()
    rows = []
    best = {}
    matches = {}
    for kernel in ("object", "fused"):
        engine = ShardedSearchEngine(
            ClientConfig(params, key_seed=9),
            num_shards=4,
            cache_capacity=512,
            search_kernel=kernel,
        )
        try:
            engine.outsource(db)
            seconds = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                report = engine.search_batch(queries)
                seconds = min(seconds, time.perf_counter() - t0)
        finally:
            engine.close()
        best[kernel] = seconds
        matches[kernel] = report.matches_per_query()
        rows.append(
            [
                kernel,
                f"{seconds:.3f}",
                f"{len(queries) / seconds:.1f}",
                report.reports[0].hom_additions,
            ]
        )
    speedup = best["object"] / best["fused"]
    rows.append(["speedup", f"{speedup:.1f}x", "", ""])

    emit(
        "serving_kernels",
        format_table(
            "serving throughput: fused vs object search kernel "
            "(12-query batch, 4 shards)",
            ("kernel", "batch s", "wall q/s", "hom-adds/query"),
            rows,
            paper_note="same Fig. 9/12 batch; identical match sets enforced",
        ),
    )

    assert matches["object"] == matches["fused"]
    # acceptance: the fused kernel at least doubles end-to-end
    # wall-clock throughput vs the object path (PR-3 baseline)
    if speedup < 2.0:
        print(f"FAIL: fused kernel speedup only {speedup:.2f}x",
              file=sys.stderr)
        return 1
    return 0


#: first-query workload: paper parameters (n=1024, q=2**32) and enough
#: polynomials that the arena build (rows + RNS limbs + phases) is a
#: visible wall, not noise
FIRST_QUERY_POLYS = 48

#: lazy adopt must return in at most this fraction of the eager adopt
#: wall (the build no longer happens before serving starts)
ADOPT_RATIO_GATE = 0.5

#: ...without inflating adopt + first query beyond this factor of the
#: eager total (the build moves into the query, it is not duplicated)
TOTAL_RATIO_GATE = 1.25


def run_first_query(quick: bool) -> int:
    """Adopt-to-first-result latency: lazy vs eager arena build.

    Eager reproduces the old behavior — ``adopt_database`` pays the
    whole arena build (stack copy, RNS-limb transforms, phase rows)
    before the engine accepts a query.  Lazy returns from adopt
    immediately and materializes per build tile as the first query's
    shard tasks touch their rows.  Match results must be identical;
    the gate requires the lazy adopt wall to drop measurably without
    inflating the total time to the first result.
    """
    del quick  # one cell either way; the workload is already small
    rng = np.random.default_rng(5)
    params = BFVParams.paper()
    bits_per_poly = params.n * 16
    db_bits = random_bits(FIRST_QUERY_POLYS * bits_per_poly, rng)
    query = random_bits(32, rng)
    off = 16 * 7
    db_bits[off : off + 32] = query

    # Encrypt once, outside the timed region — the client-side cost is
    # identical either way.  Both engines adopt the same encrypted db;
    # invalidate_caches between modes drops the previous arena.
    client = CipherMatchClient(ClientConfig(params, key_seed=5))
    db = client.outsource(db_bits)

    rows = []
    timings = {}
    matches = {}
    for mode in ("eager", "lazy"):
        db.invalidate_caches()
        engine = ShardedSearchEngine(
            client=client,
            num_shards=4,
            cache_capacity=512,
            search_kernel="fused",
            arena_build=mode,
        )
        try:
            t0 = time.perf_counter()
            engine.adopt_database(db)
            adopt_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            first = engine.search_batch([query])
            first_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            second = engine.search_batch([query])
            second_s = time.perf_counter() - t0
        finally:
            engine.close()
        timings[mode] = (adopt_s, first_s, second_s)
        matches[mode] = (first.matches_per_query(), second.matches_per_query())
        rows.append(
            [
                mode,
                f"{adopt_s * 1e3:.1f}",
                f"{first_s * 1e3:.1f}",
                f"{(adopt_s + first_s) * 1e3:.1f}",
                f"{second_s * 1e3:.1f}",
            ]
        )

    emit(
        "serving_first_query",
        format_table(
            "adopt-to-first-result latency: lazy vs eager arena build "
            f"(n={params.n}, {FIRST_QUERY_POLYS} polys, 4 shards)",
            ("arena build", "adopt ms", "first query ms",
             "adopt+first ms", "second query ms"),
            rows,
            paper_note=(
                "lazy materializes arena tiles on first touch; eager "
                "rebuilds everything at adopt (the pre-fix behavior); "
                f"host cpus={os.cpu_count()}"
            ),
        ),
    )

    assert matches["eager"] == matches["lazy"], "lazy build changed matches"

    eager_adopt, eager_first, _ = timings["eager"]
    lazy_adopt, lazy_first, _ = timings["lazy"]
    adopt_ratio = lazy_adopt / eager_adopt
    total_ratio = (lazy_adopt + lazy_first) / (eager_adopt + eager_first)
    print(
        f"first-query latency after outsourcing — adopt wall: eager "
        f"{eager_adopt * 1e3:.1f} ms -> lazy {lazy_adopt * 1e3:.1f} ms "
        f"({adopt_ratio:.2f}x); adopt+first-result: "
        f"{(eager_adopt + eager_first) * 1e3:.1f} ms -> "
        f"{(lazy_adopt + lazy_first) * 1e3:.1f} ms ({total_ratio:.2f}x)"
    )
    if adopt_ratio > ADOPT_RATIO_GATE:
        print(
            f"FAIL: lazy adopt wall {adopt_ratio:.2f}x eager "
            f"(gate: <= {ADOPT_RATIO_GATE}x) — arena build still paid "
            "before the first query",
            file=sys.stderr,
        )
        return 1
    if total_ratio > TOTAL_RATIO_GATE:
        print(
            f"FAIL: lazy adopt+first-result {total_ratio:.2f}x eager "
            f"(gate: <= {TOTAL_RATIO_GATE}x) — lazy build duplicating "
            "work",
            file=sys.stderr,
        )
        return 1
    return 0


def run(quick: bool) -> int:
    rc = run_scaling(quick)
    rc = rc or run_first_query(quick)
    if not quick:
        rc = rc or run_kernels()
    return rc


def test_emit_serving_scaling(benchmark):
    """Pytest entry point (same artifact, quick shape)."""
    benchmark(lambda: None)
    assert run_scaling(quick=True) == 0


def test_emit_kernel_comparison(benchmark):
    benchmark(lambda: None)
    assert run_kernels() == 0


def test_emit_first_query_latency(benchmark):
    benchmark(lambda: None)
    assert run_first_query(quick=True) == 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="4-shard gate cell only; non-zero exit if the process "
        "executor misses the core-count-aware speedup ratio (CI gate)",
    )
    args = parser.parse_args()
    return run(quick=args.quick)


if __name__ == "__main__":
    sys.exit(main())
