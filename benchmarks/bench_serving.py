"""Serving-engine scaling: batch throughput vs shard count (1 -> 8),
plus fused-vs-object search-kernel end-to-end comparison.

Wall-clock throughput is reported for reference but is GIL-bound on the
functional simulator; the scaling claim is the discrete-event queueing
model of the same executed task trace (each shard a CM-IFP channel/die
group), which is the deployment the serving layer targets.  The kernel
comparison *is* a wall-clock claim: the fused arena kernels replace the
per-pair object churn and per-block decrypt multiplies that dominate
the software path, and must deliver >= 2x query throughput on the same
batch with bit-identical matches.
"""

import time

import numpy as np
from _util import emit

from repro.core import ClientConfig
from repro.eval.tables import format_table
from repro.he import BFVParams
from repro.serve import ShardedSearchEngine
from repro.utils.bits import random_bits

SHARD_COUNTS = (1, 2, 4, 8)
NUM_POLYS = 16
NUM_QUERIES = 12


def _workload():
    rng = np.random.default_rng(9)
    params = BFVParams.test_small(64)
    bits_per_poly = params.n * 16
    db = random_bits(NUM_POLYS * bits_per_poly, rng)
    queries = []
    for k in range(NUM_QUERIES):
        q = random_bits(32, rng)
        off = 16 * (11 + 61 * k)
        db[off : off + 32] = q
        queries.append(q)
    return params, db, queries


def test_emit_serving_scaling(benchmark):
    params, db, queries = _workload()
    rows = []
    results = {}
    engines = {}
    for shards in SHARD_COUNTS:
        engine = ShardedSearchEngine(
            ClientConfig(params, key_seed=9), num_shards=shards, cache_capacity=512
        )
        engine.outsource(db)
        report = engine.search_batch(queries)
        engines[shards] = engine
        results[shards] = report
        rows.append(
            [
                shards,
                f"{report.throughput_qps:.1f}",
                f"{report.modeled_throughput_qps:.1f}",
                f"{results[1].modeled_makespan / report.modeled_makespan:.2f}x",
                f"{report.modeled_latency_percentile(99) * 1e3:.1f}",
                f"{report.cache.hit_rate * 100:.0f}%",
            ]
        )

    emit(
        "serving_scaling",
        format_table(
            "serving throughput vs shard count (12-query batch)",
            ("shards", "wall q/s", "modeled q/s", "modeled speedup", "p99 ms", "cache hit"),
            rows,
            paper_note="Fig. 9/12 batch workload on sharded CM-IFP backends",
        ),
    )

    # every sharding must produce identical match sets
    baseline = results[1].matches_per_query()
    for shards in SHARD_COUNTS[1:]:
        assert results[shards].matches_per_query() == baseline

    # acceptance: >= 2x modeled batch throughput at 4 shards vs 1
    speedup_at_4 = results[1].modeled_makespan / results[4].modeled_makespan
    assert speedup_at_4 >= 2.0, f"4-shard modeled speedup only {speedup_at_4:.2f}x"

    benchmark(engines[8].search_batch, queries)


def test_emit_kernel_comparison(benchmark):
    """Fused vs object search kernel, end-to-end on the serve engine."""
    params, db, queries = _workload()
    rows = []
    best = {}
    matches = {}
    for kernel in ("object", "fused"):
        engine = ShardedSearchEngine(
            ClientConfig(params, key_seed=9),
            num_shards=4,
            cache_capacity=512,
            search_kernel=kernel,
        )
        engine.outsource(db)
        seconds = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            report = engine.search_batch(queries)
            seconds = min(seconds, time.perf_counter() - t0)
        best[kernel] = seconds
        matches[kernel] = report.matches_per_query()
        rows.append(
            [
                kernel,
                f"{seconds:.3f}",
                f"{len(queries) / seconds:.1f}",
                report.reports[0].hom_additions,
            ]
        )
    speedup = best["object"] / best["fused"]
    rows.append(["speedup", f"{speedup:.1f}x", "", ""])

    emit(
        "serving_kernels",
        format_table(
            "serving throughput: fused vs object search kernel "
            "(12-query batch, 4 shards)",
            ("kernel", "batch s", "wall q/s", "hom-adds/query"),
            rows,
            paper_note="same Fig. 9/12 batch; identical match sets enforced",
        ),
    )

    assert matches["object"] == matches["fused"]
    # acceptance: the fused kernel at least doubles end-to-end
    # wall-clock throughput vs the object path (PR-3 baseline)
    assert speedup >= 2.0, f"fused kernel speedup only {speedup:.2f}x"

    benchmark(lambda: None)
