"""Case-study application scaling: secure read mapping and biometric
authentication on top of the pipeline (the applications §5.3 motivates),
with measured Hom-Add counts — all additions, never multiplications.
"""

import numpy as np
from _util import emit

from repro.core import ClientConfig
from repro.eval.tables import format_table
from repro.he import BFVParams
from repro.workloads import (
    BiometricWorkloadGenerator,
    DnaWorkloadGenerator,
    SecureBiometricMatcher,
    SecureReadMapper,
)


def _readmapper_table() -> str:
    rows = []
    for read_bases in (16, 24, 32):
        workload = DnaWorkloadGenerator(seed=read_bases).generate(
            num_bases=320, read_length_bases=read_bases, num_reads=2
        )
        mapper = SecureReadMapper(
            workload.genome, ClientConfig(BFVParams.test_small(64)), seed_bases=8
        )
        result = mapper.map_read(workload.reads[0].sequence)
        verified = mapper.verify(result)
        rows.append(
            [
                read_bases,
                result.seeds_searched,
                result.hom_additions,
                "yes" if verified == workload.reads[0].position_bases else "NO",
            ]
        )
    return format_table(
        "Secure read mapping: seeds and Hom-Adds vs read length",
        ["read (bases)", "seeds", "Hom-Adds", "mapped correctly"],
        rows,
        paper_note="seeding case study (§5.3); query work scales with "
        "seed count, zero Hom-Mults throughout",
    )


def _biometric_table() -> str:
    rows = []
    for subjects in (4, 16, 64):
        gen = BiometricWorkloadGenerator(seed=subjects)
        gallery = gen.generate(num_subjects=subjects, template_bits=128)
        matcher = SecureBiometricMatcher(
            gallery, ClientConfig(BFVParams.test_small(64))
        )
        result = matcher.authenticate(gallery.enrollees[0].template)
        impostor = np.random.default_rng(1).integers(0, 2, 128).astype(np.uint8)
        rejected = not matcher.authenticate(impostor).accepted
        rows.append(
            [
                subjects,
                matcher.pipeline.db.serialized_bytes,
                result.hom_additions,
                "yes" if result.accepted else "NO",
                "yes" if rejected else "NO",
            ]
        )
    return format_table(
        "Secure biometric authentication vs gallery size",
        ["subjects", "encrypted bytes", "Hom-Adds/probe", "genuine accepted", "impostor rejected"],
        rows,
        paper_note="biometric matching application (§1); per-probe work "
        "scales with gallery polynomials",
    )


def test_emit_readmapper(benchmark):
    emit("casestudy_readmapper", _readmapper_table())
    benchmark.pedantic(_readmapper_table, rounds=1, iterations=1)


def test_emit_biometric(benchmark):
    emit("casestudy_biometric", _biometric_table())
    benchmark.pedantic(_biometric_table, rounds=1, iterations=1)
