"""Figure 8: CM-SW and arithmetic-baseline energy reduction over the
Boolean approach vs query size."""

from _util import emit
from repro.eval.calibration import QUERY_SIZES
from repro.eval.experiments import figure8
from repro.eval.models import SoftwareCostModel


def test_emit_figure8(benchmark):
    emit("figure8", figure8())
    model = SoftwareCostModel()
    benchmark(model.figure8, list(QUERY_SIZES))
