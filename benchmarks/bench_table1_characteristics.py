"""Table 1: qualitative comparison of prior approaches."""

from _util import emit
from repro.eval.experiments import table1


def test_emit_table1(benchmark):
    emit("table1", table1())
    benchmark(table1)


def test_emit_table1_functional(benchmark):
    from repro.eval.experiments import table1_functional

    emit("table1_functional", table1_functional())
    benchmark.pedantic(table1_functional, rounds=1, iterations=1)
