"""Figure 3: transfer latency to CPU / main memory / SSD controller."""

from _util import emit
from repro.eval.calibration import TRANSFER_SIZES
from repro.eval.experiments import figure3
from repro.ndp import TransferLatencyModel


def test_emit_figure3(benchmark):
    emit("figure3", figure3())
    model = TransferLatencyModel()
    benchmark(model.sweep, list(TRANSFER_SIZES))
