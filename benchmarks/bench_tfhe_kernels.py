"""TFHE kernel microbenchmarks at test dimensions.

Measures the primitive costs of the real TFHE implementation — external
product, CMux, blind rotation, full gate bootstrap — so the per-gate
constant in :class:`repro.he.boolean.GateCostModel` can be sanity-scaled
(cost grows ~linearly in ``lwe_n`` and ~N log N in the ring dimension;
the TFHE-lib production set is ~40x the test-small blind-rotation work).
"""

import numpy as np
import pytest

from repro.tfhe import TFHEContext, TFHEParams, cmux, external_product
from repro.tfhe.bootstrap import bootstrap
from repro.tfhe.lwe import MU_BIT, lwe_encrypt
from repro.tfhe.tgsw import tgsw_encrypt
from repro.tfhe.tlwe import TLweSample, tlwe_encrypt
from repro.tfhe.torus import to_torus


@pytest.fixture(scope="module")
def ctx():
    return TFHEContext(TFHEParams.test_small(), seed=31)


@pytest.fixture(scope="module")
def tgsw_bit(ctx):
    rng = np.random.default_rng(1)
    return tgsw_encrypt(1, ctx.tgsw_key, rng)


@pytest.fixture(scope="module")
def tlwe_message(ctx):
    rng = np.random.default_rng(2)
    mu = np.zeros(ctx.params.tlwe_n, dtype=np.int64)
    mu[0] = to_torus(1, 8)
    return tlwe_encrypt(mu, ctx.tgsw_key.tlwe_key, rng)


def test_external_product(benchmark, tgsw_bit, tlwe_message):
    benchmark(external_product, tgsw_bit, tlwe_message)


def test_cmux(benchmark, ctx, tgsw_bit, tlwe_message):
    zero = TLweSample.trivial(
        np.zeros(ctx.params.tlwe_n, dtype=np.int64), ctx.params
    )
    benchmark(cmux, tgsw_bit, tlwe_message, zero)


def test_gate_bootstrap(benchmark, ctx):
    rng = np.random.default_rng(3)
    sample = lwe_encrypt(to_torus(1, 8), ctx.lwe_key, rng)
    benchmark(bootstrap, sample, MU_BIT, ctx.bsk)


def test_nand_gate(benchmark, ctx):
    a, b = ctx.encrypt(1), ctx.encrypt(0)
    result = benchmark(ctx.nand, a, b)
    assert ctx.decrypt(result) == 1


def test_encrypt_bit(benchmark, ctx):
    benchmark(ctx.encrypt, 1)
