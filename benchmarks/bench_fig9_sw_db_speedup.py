"""Figure 9: software-family speedups vs encrypted database size
(16-bit queries, 1000-query batch)."""

from _util import emit
from repro.eval.calibration import DATABASE_SIZES
from repro.eval.experiments import figure9
from repro.eval.models import SoftwareCostModel


def test_emit_figure9(benchmark):
    emit("figure9", figure9())
    model = SoftwareCostModel()
    benchmark(model.figure9, list(DATABASE_SIZES))
