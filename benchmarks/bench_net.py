"""Networked vs in-process serving throughput over the fused engine.

Boots a loopback :class:`repro.net.ServiceThread` around a 4-shard
``bfv-sharded`` engine and drives the same deterministic query batch
two ways:

* **in-process** — ``Engine.execute(BatchSearch)`` straight into the
  serve pool (the PR-4 fast path);
* **networked** — :class:`repro.net.Client` ``search_batch`` through
  CMN1 frames over real TCP (encode, socket, decode, admission
  control), landing on an identical engine.

Both lanes must return identical matches; the table reports sustained
batch QPS per lane plus the per-query wire overhead so the network
cost is accounted explicitly, not hidden in a ratio.  Runs standalone
(``python benchmarks/bench_net.py``) or under pytest.  ``--quick``
shrinks the rep count and **exits non-zero if networked throughput
falls below 0.5x in-process** — the CI bench-smoke gate (acceptance:
networked >= 0.5x at 4 shards).

All RNG seeds are pinned (--seed, default 23) so the CI gate replays
the exact same workload on every run.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from _util import emit

from repro.api import BatchSearch, ShardedEngine
from repro.eval.tables import format_table
from repro.he import BFVParams
from repro.net import Client, ServiceThread
from repro.utils.bits import random_bits

NUM_SHARDS = 4
GATE_RATIO = 0.5


def _workload(seed: int, num_queries: int):
    rng = np.random.default_rng(seed)
    params = BFVParams.test_small(64)
    db = random_bits(params.n * 16 * 8, rng)
    queries = []
    for k in range(num_queries):
        q = random_bits(32, rng)
        off = 16 * (5 + 29 * k)  # fits k<=16 inside the 8192-bit db
        db[off : off + 32] = q
        queries.append(q)
    return params, db, queries


def _time_batches(run_batch, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        run_batch()
        best = min(best, time.perf_counter() - t0)
    return best


def run(quick: bool, seed: int) -> int:
    reps = 3 if quick else 6
    num_queries = 8 if quick else 16
    params, db, queries = _workload(seed, num_queries)
    batch = BatchSearch.from_bit_arrays(queries)

    # -- in-process lane -------------------------------------------------
    local = ShardedEngine(params=params, num_shards=NUM_SHARDS, key_seed=seed)
    local.outsource(db)
    local_result = local.execute(batch)
    t_local = _time_batches(lambda: local.execute(batch), reps)

    # -- networked lane (identical engine config behind a socket) --------
    with ServiceThread(
        "bfv-sharded", params=params, num_shards=NUM_SHARDS, key_seed=seed
    ) as service:
        client = Client(service.address, pool_size=2)
        client.outsource(db)
        net_result = client.search_batch(queries)
        assert net_result.matches_per_query() == (
            local_result.matches_per_query()
        ), "networked lane diverged from in-process — run tests/net/"
        t_net = _time_batches(lambda: client.search_batch(queries), reps)
        client.close()

    qps_local = num_queries / t_local
    qps_net = num_queries / t_net
    ratio = qps_net / qps_local
    overhead_ms = (t_net - t_local) / num_queries * 1e3

    table = format_table(
        "Networked vs in-process batch serving "
        f"({NUM_SHARDS} shards, {num_queries}-query batch, best of {reps})",
        ["lane", "batch ms", "queries/sec", "vs in-process",
         "wire overhead ms/query"],
        [
            ["in-process", f"{t_local * 1e3:.1f}", f"{qps_local:.1f}",
             "1.00x", "-"],
            ["networked (TCP)", f"{t_net * 1e3:.1f}", f"{qps_net:.1f}",
             f"{ratio:.2f}x", f"{overhead_ms:.2f}"],
        ],
        paper_note=(
            "same fused bfv-sharded engine both lanes; the networked lane "
            "adds CMN1 framing, TCP loopback and admission control "
            f"(acceptance: >= {GATE_RATIO}x in-process)"
        ),
    )
    emit("bench_net", table)

    if ratio < GATE_RATIO:
        print(
            f"FAIL: networked throughput {qps_net:.1f} q/s is "
            f"{ratio:.2f}x in-process ({qps_local:.1f} q/s); "
            f"gate requires >= {GATE_RATIO}x",
            file=sys.stderr,
        )
        return 1
    print(
        f"networked {qps_net:.1f} q/s vs in-process {qps_local:.1f} q/s "
        f"({ratio:.2f}x; wire overhead {overhead_ms:.2f} ms/query; "
        f"meets the {GATE_RATIO}x gate)"
    )
    return 0


def test_emit_net_throughput(benchmark):
    """Pytest entry point (same artifact, quick shape)."""
    benchmark(lambda: None)
    assert run(quick=True, seed=23) == 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small batch and rep count; non-zero exit if networked "
        f"throughput < {GATE_RATIO}x in-process (CI gate)",
    )
    parser.add_argument(
        "--seed", type=int, default=23,
        help="RNG seed for the workload and keys (default: 23, pinned "
        "so CI runs are reproducible)",
    )
    args = parser.parse_args()
    return run(quick=args.quick, seed=args.seed)


if __name__ == "__main__":
    sys.exit(main())
