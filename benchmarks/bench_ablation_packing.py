"""Ablation: packing chunk width (DESIGN.md design-choice bench).

Sweeps the bits-per-coefficient packing width from 1 (the arithmetic
baseline's density) to 16 (CIPHERMATCH) and reports the encrypted
footprint expansion and the number of Hom-Adds a 32-bit query costs —
the two quantities the paper's Key Insight (§4.2.1) trades off.
"""

import numpy as np
import pytest

from _util import emit
from repro.core import ClientConfig, SecureStringMatchPipeline
from repro.eval import format_table
from repro.he import BFVParams
from repro.utils.bits import random_bits

WIDTHS = (1, 2, 4, 8, 16)


def run_width(width: int):
    params = BFVParams.test_small(64)
    pipe = SecureStringMatchPipeline(
        ClientConfig(params, chunk_width=width, key_seed=width)
    )
    rng = np.random.default_rng(width)
    db = random_bits(2048, rng)
    q = random_bits(32, rng)
    off = width * 8 * ((64 // width) // 2)  # multiple of the chunk width
    off -= off % width
    db[off : off + 32] = q
    enc = pipe.outsource_database(db)
    report = pipe.search(q)
    assert off in report.matches, f"width {width}"
    raw_bytes = len(db) // 8
    return {
        "width": width,
        "expansion": enc.serialized_bytes / raw_bytes,
        "hom_adds": report.hom_additions,
        "variants": report.num_variants,
    }


@pytest.mark.parametrize("width", WIDTHS)
def test_search_correct_at_width(benchmark, width):
    benchmark.pedantic(run_width, args=(width,), rounds=1, iterations=1)


def test_emit_packing_ablation(benchmark):
    rows = [run_width(w) for w in WIDTHS]
    table = format_table(
        "Ablation: packing width vs footprint and Hom-Add count (32b query, 2Kb DB)",
        ["width", "expansion", "hom_adds", "variants"],
        [[r["width"], r["expansion"], r["hom_adds"], r["variants"]] for r in rows],
        paper_note="16-bit packing gives the 4x footprint (vs 64x at 1 bit) "
        "that Key Insight §4.2.1 claims",
        float_format="{:.1f}",
    )
    emit("ablation_packing", table)
    by_width = {r["width"]: r for r in rows}
    # denser packing -> smaller footprint
    assert by_width[16]["expansion"] < by_width[1]["expansion"]
    # the 16x footprint reduction of the paper
    assert by_width[1]["expansion"] / by_width[16]["expansion"] == pytest.approx(
        16.0, rel=0.05
    )
    benchmark(lambda: None)
