"""Protocol transcript sizes — the communication-complexity story of
§2.2 ("HE requires only two rounds ... minimal data transfer"),
measured on the wire with real serialized ciphertexts.
"""

import numpy as np
from _util import emit

from repro.core.client import ClientConfig
from repro.core.protocol import WireProtocolSession
from repro.eval.tables import format_bytes, format_table
from repro.he import BFVParams
from repro.utils.bits import random_bits


def _table() -> str:
    rows = []
    for db_bits, query_bits in ((640, 32), (2560, 32), (2560, 64)):
        session = WireProtocolSession(ClientConfig(BFVParams.test_small(64)))
        rng = np.random.default_rng(db_bits + query_bits)
        db = random_bits(db_bits, rng)
        session.outsource(db)
        query = db[:query_bits].copy()
        session.search(query)
        stats = session.stats
        rows.append(
            [
                f"{db_bits}b db / {query_bits}b q",
                format_bytes(stats.database_upload),
                format_bytes(stats.query_upload),
                format_bytes(stats.result_download),
                format_bytes(stats.online_bytes),
            ]
        )
    return format_table(
        "Wire protocol transcript sizes (2-round HE exchange)",
        ["workload", "db upload (offline)", "query up", "results down", "online total"],
        rows,
        paper_note="two rounds only; online traffic scales with query "
        "variants x database polynomials, never with raw database size",
    )


def test_emit_protocol(benchmark):
    emit("protocol_transcripts", _table())
    benchmark.pedantic(_table, rounds=1, iterations=1)
