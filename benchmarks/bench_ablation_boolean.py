"""Ablation: the Boolean substrate — real TFHE bootstrapping vs the BFV
stand-in, and homomorphic addition in TFHE gates vs in-flash latch ops.

This quantifies two DESIGN.md claims:

* the stand-in preserves the Boolean approach's *circuit* (identical
  gate counts) while real TFHE adds one bootstrap per binary gate;
* expressing one 32-bit Hom-Add as a Boolean circuit costs 160
  bootstrapped gates, versus 32 latch-pass bit positions in flash —
  the gap that motivates in-flash processing for HE arithmetic.
"""

import time

import numpy as np
from _util import emit

from repro.baselines import BooleanMatcher, TfheBooleanMatcher
from repro.eval.tables import format_table
from repro.flash.timing import FlashTimings
from repro.he.boolean import GateCostModel
from repro.he.keys import generate_keys
from repro.tfhe import TFHEContext, TFHEParams
from repro.tfhe.circuits import TfheArithmetic


def _gate_cost_table() -> str:
    ctx = TFHEContext(TFHEParams.test_small(), seed=4)
    reps = 10
    start = time.perf_counter()
    acc = ctx.encrypt(1)
    for _ in range(reps):
        acc = ctx.and_(acc, ctx.encrypt(1))
    measured_gate = (time.perf_counter() - start) / reps
    model = GateCostModel()
    timings = FlashTimings()

    rows = [
        [
            "real TFHE gate (test-small params)",
            f"{measured_gate * 1e3:.1f} ms",
            "measured, n=16/N=64",
        ],
        [
            "TFHE-rs gate (paper CPU)",
            f"{model.gate_latency_s * 1e3:.1f} ms",
            "GateCostModel (Fig 2b input)",
        ],
        [
            "32-bit add as Boolean circuit",
            f"{TfheArithmetic.gates_per_add(32)} gates",
            "5 gates x 32 bit positions",
        ],
        [
            "32-bit add in flash (bop_add)",
            f"{32 * timings.t_bop_add * 1e6:.0f} us",
            "Eqn 10 x 32 bit positions",
        ],
        [
            "Boolean-circuit add at model cost",
            f"{TfheArithmetic.gates_per_add(32) * model.gate_latency_s:.2f} s",
            f"{TfheArithmetic.gates_per_add(32) * model.gate_latency_s / (32 * timings.t_bop_add):,.0f}x slower than IFP",
        ],
    ]
    return format_table(
        "Ablation: Boolean substrate cost structure",
        ["quantity", "value", "note"],
        rows,
        paper_note="IFP executes Hom-Add ~2000x faster than a Boolean "
        "gate circuit evaluates the same addition",
    )


def _equivalence_table() -> str:
    rng = np.random.default_rng(8)
    db_bits = rng.integers(0, 2, 12).astype(np.uint8)
    query = np.array([1, 0], dtype=np.uint8)

    tfhe = TfheBooleanMatcher(TFHEParams.test_tiny(), seed=6)
    t_matches = tfhe.search(tfhe.encrypt_database(db_bits), query)

    standin = BooleanMatcher(seed=6)
    sk, pk, rlk, _ = generate_keys(standin.params, seed=6, relin=True)
    s_matches = standin.search(
        standin.encrypt_database(db_bits, pk), query, pk, sk, rlk
    )

    rows = [
        ["matches", str(t_matches), str(s_matches)],
        [
            "binary gates",
            str(tfhe.stats.total_gates),
            str(standin.stats.total_gates),
        ],
        ["bootstraps", str(tfhe.stats.bootstraps), "0 (levelled BFV)"],
        [
            "per-bit ct bytes",
            str(tfhe.params.lwe_ciphertext_bytes),
            str(2 * standin.params.n * ((standin.params.log_q + 7) // 8)),
        ],
    ]
    return format_table(
        "Ablation: real TFHE vs BFV stand-in (same circuit)",
        ["quantity", "real TFHE", "BFV stand-in"],
        rows,
        paper_note="identical match sets and gate counts; only the "
        "refresh mechanism differs",
    )


def test_emit_gate_costs(benchmark):
    emit("ablation_boolean_costs", _gate_cost_table())
    benchmark.pedantic(_gate_cost_table, rounds=1, iterations=1)


def test_emit_equivalence(benchmark):
    emit("ablation_boolean_equivalence", _equivalence_table())
    benchmark.pedantic(_equivalence_table, rounds=1, iterations=1)
