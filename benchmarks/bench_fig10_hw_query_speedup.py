"""Figure 10: CM-PuM / CM-PuM-SSD / CM-IFP speedup over CM-SW vs query
size (128 GB encrypted DB, single query)."""

from _util import emit
from repro.eval.calibration import QUERY_SIZES
from repro.eval.experiments import figure10
from repro.ndp import HardwarePerformanceModel


def test_emit_figure10(benchmark):
    emit("figure10", figure10())
    model = HardwarePerformanceModel()
    benchmark(model.figure10, list(QUERY_SIZES))
