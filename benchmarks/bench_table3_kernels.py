"""Table 2/3 kernel benchmarks: the primitive operations every model is
built from, measured for real on this machine's Python implementation
and compared against the Table-3 constants the paper's simulator uses.
"""

import numpy as np
import pytest

from _util import emit
from repro.eval import RealSystemConfig, format_table
from repro.flash import (
    BitSerialAdder,
    FlashArray,
    FlashEnergies,
    FlashGeometry,
    FlashTimings,
    PAPER_E_BIT_ADD,
    PAPER_T_BIT_ADD,
)
from repro.ssd import DataTranspositionUnit


def test_hom_add_paper_params(benchmark, paper_ctx, paper_ciphertexts):
    """BFV Hom-Add at n=1024 / q=2^32 — the only op CIPHERMATCH needs."""
    ct1, ct2 = paper_ciphertexts
    benchmark(paper_ctx.add, ct1, ct2)


def test_encrypt_paper_params(benchmark, paper_ctx, paper_keys):
    _, pk = paper_keys
    m = paper_ctx.plaintext(np.arange(1024) % paper_ctx.params.t)
    benchmark(paper_ctx.encrypt, m, pk)


def test_decrypt_paper_params(benchmark, paper_ctx, paper_keys, paper_ciphertexts):
    sk, _ = paper_keys
    ct, _ = paper_ciphertexts
    benchmark(paper_ctx.decrypt, ct, sk)


def test_flash_bop_add_functional(benchmark):
    """One full 32-bit bop_add wave on a functional plane (4096 words)."""
    geo = FlashGeometry.functional(num_bitlines=4096, wordlines=64)
    adder = BitSerialAdder(FlashArray(geo).plane(0), 32)
    rng = np.random.default_rng(0)
    a = rng.integers(0, 1 << 32, 4096).astype(np.int64)
    b = rng.integers(0, 1 << 32, 4096).astype(np.int64)
    adder.store_words(0, a)
    benchmark(adder.add, 0, b)


def test_transposition_4kb_page(benchmark):
    """Software data transposition of one 4 KiB page (32768 bits wide)."""
    unit = DataTranspositionUnit(word_bits=32)
    rng = np.random.default_rng(0)
    words = rng.integers(0, 1 << 32, 1024).astype(np.int64)
    benchmark(unit.to_vertical, words, 32768)


def test_emit_kernel_table(benchmark):
    """Print the Table 2/3 reproduction: configuration + derived kernel
    latencies/energies vs the paper's quoted values."""
    t = FlashTimings()
    e = FlashEnergies()
    cfg = RealSystemConfig()
    rows = [
        ["CPU (Table 2)", cfg.cpu],
        ["DRAM (Table 2)", cfg.dram],
        ["SSD (Table 2)", cfg.ssd],
        ["T_read SLC", f"{t.t_read_slc*1e6:.1f} us"],
        ["T_AND/OR", f"{t.t_and_or*1e9:.0f} ns"],
        ["T_latch", f"{t.t_latch_transfer*1e9:.0f} ns"],
        ["T_XOR", f"{t.t_xor*1e9:.0f} ns"],
        ["T_DMA", f"{t.t_dma*1e6:.1f} us"],
        [
            "T_bit_add (Eqn 9)",
            f"{t.t_bit_add*1e6:.2f} us (paper {PAPER_T_BIT_ADD*1e6:.2f} us)",
        ],
        [
            "E_bit_add (Eqn 11)",
            f"{e.e_bit_add*1e6:.2f} uJ (paper {PAPER_E_BIT_ADD*1e6:.2f} uJ)",
        ],
    ]
    table = format_table(
        "Tables 2-3: system configuration and kernel constants",
        ["parameter", "value"],
        rows,
        paper_note="Eqns 9-11 re-derived from Table-3 constants",
    )
    emit("table3_kernels", table)
    benchmark(lambda: FlashTimings().t_bit_add)
