"""Figure 11: hardware-system energy reduction over CM-SW vs query size."""

from _util import emit
from repro.eval.calibration import QUERY_SIZES
from repro.eval.experiments import figure11
from repro.ndp import HardwareEnergyModel


def test_emit_figure11(benchmark):
    emit("figure11", figure11())
    model = HardwareEnergyModel()
    benchmark(model.figure11, list(QUERY_SIZES))
