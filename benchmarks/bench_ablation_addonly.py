"""Ablation: add-only matching vs Hamming-distance (mult-based) matching.

Measures, on this machine's BFV implementation, the per-block cost of
CIPHERMATCH's Hom-Add search versus the arithmetic baseline's
2-mult/3-add circuit — the design decision behind Key Takeaway 1.
"""

import time

import numpy as np
import pytest

from _util import emit
from repro.baselines import YasudaMatcher
from repro.eval import format_table
from repro.he import BFVContext, BFVParams, generate_keys
from repro.utils.bits import random_bits

RNG = np.random.default_rng(3)


@pytest.fixture(scope="module")
def arith_setup():
    params = BFVParams.arithmetic_baseline(n=256, t=1024)
    matcher = YasudaMatcher(params, max_query_bits=32, seed=8)
    sk, pk, rlk, _ = generate_keys(params, seed=8, relin=True)
    db_ct = matcher.encrypt_database(random_bits(200, RNG), pk).ciphertexts[0]
    q_ct, mask_ct, y = matcher.encrypt_query(random_bits(32, RNG), pk)
    return matcher, db_ct, q_ct, mask_ct, y, rlk


@pytest.fixture(scope="module")
def add_setup():
    params = BFVParams.arithmetic_baseline(n=256, t=1024)
    ctx = BFVContext(params, seed=9)
    _, pk, _, _ = generate_keys(params, seed=9)
    m = np.arange(256) % params.t
    ct1 = ctx.encrypt(ctx.plaintext(m), pk)
    ct2 = ctx.encrypt(ctx.plaintext(m), pk)
    return ctx, ct1, ct2


def test_hamming_distance_circuit(benchmark, arith_setup):
    matcher, db_ct, q_ct, mask_ct, y, rlk = arith_setup
    benchmark(
        matcher.hamming_ciphertext, db_ct, q_ct, mask_ct, 16, y, rlk
    )


def test_hom_add_only(benchmark, add_setup):
    ctx, ct1, ct2 = add_setup
    benchmark(ctx.add, ct1, ct2)


def test_emit_addonly_ablation(benchmark, arith_setup, add_setup):
    matcher, db_ct, q_ct, mask_ct, y, rlk = arith_setup
    ctx, ct1, ct2 = add_setup

    t0 = time.perf_counter()
    for _ in range(3):
        matcher.hamming_ciphertext(db_ct, q_ct, mask_ct, 16, y, rlk)
    hd_time = (time.perf_counter() - t0) / 3

    t0 = time.perf_counter()
    for _ in range(100):
        ctx.add(ct1, ct2)
    add_time = (time.perf_counter() - t0) / 100

    # CIPHERMATCH needs 16 adds per block (one per shift variant) on
    # 16x fewer blocks; the HD circuit runs once per block.
    cm_per_block_equiv = 16 * add_time / 16.0
    ratio = hd_time / cm_per_block_equiv
    table = format_table(
        "Ablation: Hamming-distance circuit vs add-only matching (measured)",
        ["kernel", "per-block ms", "relative"],
        [
            ["2 Hom-Mult + 3 Hom-Add (HD)", hd_time * 1e3, ratio],
            ["16 Hom-Add / 16x denser packing", cm_per_block_equiv * 1e3, 1.0],
        ],
        paper_note="the mult-heavy circuit dominates (Fig 2c: 98.2% of "
        "latency is Hom-Mult); eliminating it is Key Takeaway 1",
        float_format="{:.3f}",
    )
    emit("ablation_addonly", table)
    assert hd_time > add_time * 10
    benchmark(lambda: None)
