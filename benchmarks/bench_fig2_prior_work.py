"""Figure 2 (+ the §3.1 quantitative comparison): prior-work footprint,
execution time and latency breakdown — functional measurements at small
scale plus the model's footprint table."""

import time

import numpy as np
import pytest

from _util import emit
from repro.baselines import BooleanMatcher, YasudaMatcher, find_all_matches
from repro.core import ClientConfig, SecureStringMatchPipeline
from repro.eval.experiments import figure2a, figure2c
from repro.eval import format_table
from repro.he import BFVParams, generate_keys
from repro.utils.bits import random_bits

RNG = np.random.default_rng(7)


def test_emit_fig2a_footprint(benchmark):
    emit("figure2a", figure2a())
    benchmark(figure2a)


def test_emit_fig2c_breakdown(benchmark):
    emit("figure2c", figure2c())
    benchmark(figure2c)


def test_boolean_matcher_small_db(benchmark, bool_setup=None):
    """Functional Boolean-approach search on a tiny database — the
    §3.1 observation that even 32 bytes take seconds under per-bit HE."""
    params = BFVParams.boolean_baseline(n=128)
    matcher = BooleanMatcher(params, seed=1)
    sk, pk, rlk, _ = generate_keys(params, seed=1, relin=True)
    db_bits = random_bits(24, RNG)
    q = db_bits[4:10].copy()
    enc = matcher.encrypt_database(db_bits, pk)
    result = benchmark(matcher.search, enc, q, pk, sk, rlk)
    assert result == find_all_matches(db_bits, q)


def test_arithmetic_matcher_small_db(benchmark):
    """Functional arithmetic-approach (2 Hom-Mult + 3 Hom-Add) search."""
    params = BFVParams.arithmetic_baseline(n=256, t=1024)
    matcher = YasudaMatcher(params, max_query_bits=32, seed=2)
    sk, pk, rlk, _ = generate_keys(params, seed=2, relin=True)
    db_bits = random_bits(256, RNG)
    q = db_bits[64:96].copy()
    enc = matcher.encrypt_database(db_bits, pk)
    result = benchmark(matcher.search, enc, q, pk, sk, rlk)
    assert result == find_all_matches(db_bits, q)


def test_ciphermatch_sw_small_db(benchmark):
    """Functional CM-SW (Hom-Add only) search on the same scale."""
    pipe = SecureStringMatchPipeline(
        ClientConfig(BFVParams.test_small(64), key_seed=3)
    )
    db_bits = random_bits(1024, RNG)
    q = db_bits[256:288].copy()
    pipe.outsource_database(db_bits)
    report = benchmark(pipe.search, q)
    assert 256 in report.matches


def test_emit_fig2b_measured_comparison(benchmark):
    """Measure the three matchers' execution time on equal work and
    print the §3.1-style comparison (the 600x-class Boolean/arithmetic
    gap emerges from the functional implementations)."""
    rows = []

    # Boolean: 24-bit db, 6-bit query (per-bit ciphertexts are costly)
    params_b = BFVParams.boolean_baseline(n=128)
    mb = BooleanMatcher(params_b, seed=4)
    skb, pkb, rlkb, _ = generate_keys(params_b, seed=4, relin=True)
    db_b = random_bits(24, RNG)
    enc_b = mb.encrypt_database(db_b, pkb)
    t0 = time.perf_counter()
    mb.search(enc_b, db_b[2:8].copy(), pkb, skb, rlkb)
    bool_time = time.perf_counter() - t0
    bool_per_bit = bool_time / 24

    # Arithmetic: 256-bit db
    params_a = BFVParams.arithmetic_baseline(n=256, t=1024)
    ma = YasudaMatcher(params_a, max_query_bits=32, seed=5)
    ska, pka, rlka, _ = generate_keys(params_a, seed=5, relin=True)
    db_a = random_bits(256, RNG)
    enc_a = ma.encrypt_database(db_a, pka)
    t0 = time.perf_counter()
    ma.search(enc_a, db_a[32:64].copy(), pka, ska, rlka)
    arith_time = time.perf_counter() - t0
    arith_per_bit = arith_time / 256

    # CM-SW: 1024-bit db
    pipe = SecureStringMatchPipeline(ClientConfig(BFVParams.test_small(64), key_seed=6))
    db_c = random_bits(1024, RNG)
    pipe.outsource_database(db_c)
    t0 = time.perf_counter()
    pipe.search(db_c[128:160].copy())
    cm_time = time.perf_counter() - t0
    cm_per_bit = cm_time / 1024

    rows = [
        ["Boolean [17]", f"{bool_time*1e3:.1f}", f"{bool_per_bit*1e6:.1f}"],
        ["Arithmetic [27]", f"{arith_time*1e3:.1f}", f"{arith_per_bit*1e6:.1f}"],
        ["CM-SW (ours)", f"{cm_time*1e3:.1f}", f"{cm_per_bit*1e6:.1f}"],
    ]
    table = format_table(
        "Figure 2b (functional, this machine): search time by approach",
        ["approach", "total ms", "us per db-bit"],
        rows,
        paper_note="Boolean >> arithmetic >> CM-SW per database bit; paper "
        "measures 600x Boolean/arithmetic gap on SEAL/TFHE-rs",
    )
    emit("figure2b_measured", table)
    assert bool_per_bit > arith_per_bit > cm_per_bit
    benchmark(lambda: None)
