"""Compatibility shim for legacy tooling; all metadata lives in
pyproject.toml (src layout, setuptools backend)."""

from setuptools import setup

setup()
