"""Unit tests for the match polynomial and index generation modes."""

import numpy as np
import pytest

from repro.core.match_polynomial import (
    DeterministicComparator,
    combine_flag_blocks,
    flag_matches_by_decryption,
    match_plaintext,
    match_value,
)
from repro.core.packing import DataPacker, derive_masking_poly
from repro.he import BFVContext, BFVParams, KeyGenerator
from repro.utils.bits import random_bits


@pytest.fixture(scope="module")
def setup():
    params = BFVParams.test_small(64)
    ctx = BFVContext(params, seed=9)
    gen = KeyGenerator(params, seed=9)
    sk = gen.secret_key()
    pk = gen.public_key(sk)
    return params, ctx, sk, pk


class TestMatchValue:
    def test_16bit(self):
        assert match_value(16) == 0xFFFF

    def test_8bit(self):
        assert match_value(8) == 0xFF

    def test_match_plaintext_all_ones(self, setup):
        _, ctx, _, _ = setup
        pt = match_plaintext(ctx, 16)
        assert all(int(c) == 0xFFFF for c in pt.poly.coeffs)


class TestDecryptionFlags:
    def test_flags_only_matching_coefficients(self, setup, rng):
        params, ctx, sk, pk = setup
        coeffs = rng.integers(0, 0xFFFF, params.n, dtype=np.int64)  # < 0xFFFF
        coeffs[7] = 0xFFFF
        coeffs[12] = 0xFFFF
        ct = ctx.encrypt(ctx.plaintext(coeffs), pk)
        flags = flag_matches_by_decryption(ctx, ct, sk, 16)
        assert set(np.nonzero(flags)[0]) == {7, 12}

    def test_homomorphic_sum_flags(self, setup, rng):
        # chunk + ~chunk at position k -> flagged after Hom-Add
        params, ctx, sk, pk = setup
        data = rng.integers(0, 1 << 16, params.n, dtype=np.int64)
        query = rng.integers(0, 1 << 16, params.n, dtype=np.int64)
        query[5] = 0xFFFF - data[5]  # plant exactly one complement pair
        # guard: avoid accidental complements elsewhere
        for i in range(params.n):
            if i != 5 and (data[i] + query[i]) % (1 << 16) == 0xFFFF:
                query[i] = (query[i] + 1) % (1 << 16)
        ct = ctx.add(
            ctx.encrypt(ctx.plaintext(data), pk), ctx.encrypt(ctx.plaintext(query), pk)
        )
        flags = flag_matches_by_decryption(ctx, ct, sk, 16)
        assert list(np.nonzero(flags)[0]) == [5]


class TestDeterministicComparator:
    def test_detects_match_without_secret_key(self, setup, rng):
        params, ctx, sk, pk = setup
        seed = 42
        packer = DataPacker(ctx)
        bits = random_bits(params.n * 16, rng)
        packed = packer.pack(bits)
        enc_db = packer.encrypt(packed, pk, deterministic_seed=seed)

        # query plaintext = complement of db chunks => every coefficient matches
        complement = np.array(
            [0xFFFF - packed.chunk(i) for i in range(params.n)], dtype=np.int64
        )
        u_q = derive_masking_poly(ctx, seed, "qv", 0)
        q_ct = ctx.encrypt(ctx.plaintext(complement), pk, noiseless=True, u=u_q)
        result = ctx.add(enc_db.ciphertexts[0], q_ct)

        comparator = DeterministicComparator(ctx, pk, seed, 16)
        flags = comparator.flag_matches(result, db_poly_index=0, variant_cache_key=0)
        assert flags.all()

    def test_no_false_positives(self, setup, rng):
        params, ctx, sk, pk = setup
        seed = 43
        packer = DataPacker(ctx)
        bits = random_bits(params.n * 16, rng)
        enc_db = packer.encrypt(packer.pack(bits), pk, deterministic_seed=seed)
        # random (non-complement) query
        coeffs = rng.integers(0, 1 << 16, params.n, dtype=np.int64)
        u_q = derive_masking_poly(ctx, seed, "qv", 0)
        q_ct = ctx.encrypt(ctx.plaintext(coeffs), pk, noiseless=True, u=u_q)
        result = ctx.add(enc_db.ciphertexts[0], q_ct)
        comparator = DeterministicComparator(ctx, pk, seed, 16)
        flags = comparator.flag_matches(result, 0, 0)
        packed = packer.pack(bits)
        expected = np.array(
            [
                (packed.chunk(i) + int(coeffs[i])) % (1 << 16) == 0xFFFF
                for i in range(params.n)
            ]
        )
        assert np.array_equal(flags, expected)

    def test_wrong_seed_finds_nothing(self, setup, rng):
        params, ctx, sk, pk = setup
        packer = DataPacker(ctx)
        bits = random_bits(params.n * 16, rng)
        packed = packer.pack(bits)
        enc_db = packer.encrypt(packed, pk, deterministic_seed=1)
        complement = np.array(
            [0xFFFF - packed.chunk(i) for i in range(params.n)], dtype=np.int64
        )
        u_q = derive_masking_poly(ctx, 1, "qv", 0)
        q_ct = ctx.encrypt(ctx.plaintext(complement), pk, noiseless=True, u=u_q)
        result = ctx.add(enc_db.ciphertexts[0], q_ct)
        comparator = DeterministicComparator(ctx, pk, seed=2, chunk_width=16)
        assert not comparator.flag_matches(result, 0, 0).any()


class TestCombineFlagBlocks:
    def test_concatenation(self):
        a = np.array([True, False])
        b = np.array([False, True])
        combined = combine_flag_blocks([a, b])
        assert list(combined) == [True, False, False, True]

    def test_empty(self):
        assert len(combine_flag_blocks([])) == 0
