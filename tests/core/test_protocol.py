"""Tests for the wire-level client-server protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import find_all_matches
from repro.core.client import CipherMatchClient, ClientConfig
from repro.core.match_polynomial import IndexMode
from repro.core.protocol import (
    WireProtocolSession,
    decode_database,
    decode_query_variants,
    decode_result_blocks,
    encode_database,
    encode_query_variants,
    encode_result_blocks,
)
from repro.he import BFVParams
from repro.utils.bits import random_bits


@pytest.fixture(scope="module")
def config():
    return ClientConfig(BFVParams.test_small(64))


@pytest.fixture(scope="module")
def session(config):
    s = WireProtocolSession(config)
    rng = np.random.default_rng(3)
    db = random_bits(640, rng)
    db[160:192] = random_bits(32, np.random.default_rng(4))
    s.outsource(db)
    s._db_bits = db  # stashed for oracle checks in tests
    return s


class TestDatabaseTransfer:
    def test_round_trip(self, config):
        client = CipherMatchClient(config)
        db = client.outsource(random_bits(320, np.random.default_rng(1)))
        wire = encode_database(db)
        restored = decode_database(wire, client.ctx)
        assert restored.bit_length == db.bit_length
        assert restored.chunk_width == db.chunk_width
        assert restored.n == db.n
        assert restored.num_polynomials == db.num_polynomials
        for orig, rest in zip(db.ciphertexts, restored.ciphertexts):
            assert orig == rest

    def test_deterministic_seed_survives(self):
        cfg = ClientConfig(
            BFVParams.test_small(64),
            index_mode=IndexMode.SERVER_DETERMINISTIC,
        )
        client = CipherMatchClient(cfg)
        db = client.outsource(random_bits(160, np.random.default_rng(2)))
        restored = decode_database(encode_database(db), client.ctx)
        assert restored.deterministic_seed == db.deterministic_seed

    def test_none_seed_survives(self, config):
        client = CipherMatchClient(config)
        db = client.outsource(random_bits(160, np.random.default_rng(2)))
        assert db.deterministic_seed is None
        restored = decode_database(encode_database(db), client.ctx)
        assert restored.deterministic_seed is None

    def test_trailing_garbage_rejected(self, config):
        client = CipherMatchClient(config)
        db = client.outsource(random_bits(160, np.random.default_rng(2)))
        wire = encode_database(db) + b"xx"
        with pytest.raises(ValueError, match="trailing"):
            decode_database(wire, client.ctx)


class TestQueryResultTransfer:
    def test_variant_round_trip(self, config):
        client = CipherMatchClient(config)
        client.outsource(random_bits(320, np.random.default_rng(5)))
        prepared = client.prepare_query(random_bits(16, np.random.default_rng(6)))
        wire = encode_query_variants(client, prepared, num_polynomials=1)
        variants = decode_query_variants(wire, client.ctx)
        assert len(variants) == prepared.num_variants
        assert all((v, 0) in variants for v in range(prepared.num_variants))

    def test_result_blocks_round_trip(self, config, session):
        from repro.core.matcher import ResultBlock

        client = session.client
        prepared = client.prepare_query(np.ones(16, dtype=np.uint8))
        ct = client.encrypt_variant(prepared, 0, 0)
        blocks = [ResultBlock(0, 0, 17, ct)]
        restored = decode_result_blocks(encode_result_blocks(blocks), client.ctx)
        assert restored[0].poly_index == 0
        assert restored[0].variant_index == 0
        assert restored[0].variant_cache_key == 17
        assert restored[0].ciphertext == ct


class TestEndToEnd:
    def test_search_over_wire_matches_oracle(self, session):
        db_bits = session._db_bits
        query = db_bits[160:176].copy()
        matches = session.search(query)
        assert matches == find_all_matches(db_bits, query)

    def test_transcript_stats_populated(self, session):
        session.search(session._db_bits[160:176].copy())
        assert session.stats.database_upload > 0
        assert session.stats.query_upload > 0
        assert session.stats.result_download > 0
        assert session.stats.online_bytes == (
            session.stats.query_upload + session.stats.result_download
        )

    def test_server_has_no_key_material(self, session):
        assert not hasattr(session.server, "sk")
        assert session.server.ctx is not session.client.ctx

    def test_two_rounds_only(self, session):
        """The online protocol is one upload + one download."""
        before = session.stats.database_upload
        session.search(session._db_bits[160:176].copy())
        assert session.stats.database_upload == before  # round 1 not repeated

    @given(st.integers(min_value=0, max_value=600))
    @settings(max_examples=5, deadline=None)
    def test_random_query_positions(self, offset):
        # 32-bit queries are exactly detected at every bit phase (each
        # occurrence covers at least one full 16-bit chunk).
        session = WireProtocolSession(ClientConfig(BFVParams.test_small(64)))
        rng = np.random.default_rng(offset)
        db = random_bits(640, rng)
        session.outsource(db)
        offset = min(offset, 640 - 32)
        query = db[offset : offset + 32].copy()
        assert session.search(query) == find_all_matches(db, query)
