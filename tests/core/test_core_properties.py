"""Property-based tests: the secure matcher agrees with the plaintext
oracle on randomized databases and queries."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import find_all_matches
from repro.core import ClientConfig, SecureStringMatchPipeline
from repro.core.query import guaranteed_phases
from repro.he import BFVParams

PARAMS = BFVParams.test_small(16)  # 16 coeffs x 16 bits = 256 bits/poly


def run_search(db_bits: np.ndarray, query_bits: np.ndarray):
    pipe = SecureStringMatchPipeline(ClientConfig(PARAMS, key_seed=99))
    pipe.outsource_database(db_bits)
    return pipe.search(query_bits).matches


@settings(max_examples=20, deadline=None)
@given(
    data=st.data(),
    db_len=st.integers(min_value=64, max_value=400),
    q_len=st.integers(min_value=16, max_value=48),
)
def test_matcher_agrees_with_oracle_on_planted_match(data, db_len, q_len):
    """Plant the query at a guaranteed-detectable offset: the pipeline
    must report exactly the oracle's match set."""
    db = np.array(
        data.draw(st.lists(st.integers(0, 1), min_size=db_len, max_size=db_len)),
        dtype=np.uint8,
    )
    query = np.array(
        data.draw(st.lists(st.integers(0, 1), min_size=q_len, max_size=q_len)),
        dtype=np.uint8,
    )
    phases = guaranteed_phases(q_len, 16)
    phase = data.draw(st.sampled_from(phases))
    max_chunk = (db_len - q_len - phase) // 16
    if max_chunk < 0:
        return
    chunk = data.draw(st.integers(0, max_chunk))
    offset = 16 * chunk + phase
    db[offset : offset + q_len] = query

    matches = run_search(db, query)
    oracle = find_all_matches(db, query)
    assert offset in matches
    # every verified match is a true match; every oracle match at a
    # guaranteed phase is found
    assert set(matches).issubset(set(oracle))
    for m in oracle:
        if m % 16 in phases:
            assert m in matches


@settings(max_examples=15, deadline=None)
@given(
    data=st.data(),
    db_len=st.integers(min_value=100, max_value=300),
)
def test_no_false_positives(data, db_len):
    """Whatever the database, reported (verified) matches are real."""
    db = np.array(
        data.draw(st.lists(st.integers(0, 1), min_size=db_len, max_size=db_len)),
        dtype=np.uint8,
    )
    query = np.array(
        data.draw(st.lists(st.integers(0, 1), min_size=24, max_size=24)),
        dtype=np.uint8,
    )
    matches = run_search(db, query)
    oracle = set(find_all_matches(db, query))
    assert set(matches).issubset(oracle)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=16, max_value=256))
def test_variant_count_formula(q_len):
    """#variants == 16 phases with span rotations: the op-count the
    performance model uses."""
    from repro.core.query import QueryPreparer
    from repro.he import BFVContext

    ctx = BFVContext(PARAMS, seed=1)
    prepared = QueryPreparer(ctx, 16).prepare(np.ones(q_len, dtype=np.uint8))
    expected = 0
    for s in range(16):
        o = (16 - s) % 16
        interior = (q_len - o) // 16 if q_len > o else 0
        expected += max(interior, 1)
    assert prepared.num_variants == expected
