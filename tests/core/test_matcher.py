"""Unit tests for the search engine and result decoder."""

import numpy as np
import pytest

from repro.core import (
    ClientConfig,
    CPUAdditionBackend,
    ResultDecoder,
    SecureSearchEngine,
    verify_candidates,
)
from repro.core.matcher import MatchCandidate
from repro.core.client import CipherMatchClient
from repro.he import BFVParams
from repro.utils.bits import random_bits


@pytest.fixture(scope="module")
def client():
    return CipherMatchClient(ClientConfig(BFVParams.test_small(64), key_seed=8))


class TestSecureSearchEngine:
    def test_one_add_per_poly_per_variant(self, client, rng):
        db_bits = random_bits(3 * client.packer.bits_per_polynomial, rng)
        db = client.outsource(db_bits)
        prepared = client.prepare_query(random_bits(16, rng))
        engine = SecureSearchEngine(CPUAdditionBackend(client.ctx))
        blocks = engine.search(
            db, prepared, lambda v, j: client.encrypt_variant(prepared, v, j)
        )
        assert engine.hom_add_count == 3 * 16
        assert len(blocks) == 3 * 16

    def test_blocks_metadata(self, client, rng):
        db = client.outsource(random_bits(100, rng))
        prepared = client.prepare_query(random_bits(16, rng))
        engine = SecureSearchEngine(CPUAdditionBackend(client.ctx))
        blocks = engine.search(
            db, prepared, lambda v, j: client.encrypt_variant(prepared, v, j)
        )
        assert {b.poly_index for b in blocks} == {0}
        assert {b.variant_index for b in blocks} == set(range(16))


class TestResultDecoder:
    def _decode_single(self, client, prepared, flags_by_block, db_bits_len, polys=1):
        decoder = ResultDecoder(16, client.ctx.params.n, db_bits_len)
        return decoder.decode(prepared, flags_by_block, polys)

    def test_phase0_offset_mapping(self, client, rng):
        prepared = client.prepare_query(random_bits(16, rng))
        v0 = next(
            i for i, v in enumerate(prepared.variants) if v.phase == 0
        )
        flags = {
            (v0, 0): np.eye(1, client.ctx.params.n, 5, dtype=bool)[0]
        }  # coefficient 5 flagged
        candidates = self._decode_single(client, prepared, flags, 2000)
        assert [c.offset for c in candidates] == [80]  # 5 * 16

    def test_nonzero_phase_offset_mapping(self, client, rng):
        prepared = client.prepare_query(random_bits(32, rng))
        idx, variant = next(
            (i, v) for i, v in enumerate(prepared.variants) if v.phase == 3
        )
        flags = {(idx, 0): np.eye(1, client.ctx.params.n, 4, dtype=bool)[0]}
        candidates = self._decode_single(client, prepared, flags, 2000)
        # offset = g*16 - (16 - 3) = 64 - 13 = 51
        assert [c.offset for c in candidates] == [51]

    def test_out_of_range_offsets_dropped(self, client, rng):
        prepared = client.prepare_query(random_bits(16, rng))
        v0 = next(i for i, v in enumerate(prepared.variants) if v.phase == 0)
        last = client.ctx.params.n - 1
        flags = {(v0, 0): np.eye(1, client.ctx.params.n, last, dtype=bool)[0]}
        # db only 100 bits long: offset 63*16 way out of range
        candidates = self._decode_single(client, prepared, flags, 100)
        assert candidates == []

    def test_run_detection_requires_full_span(self, client, rng):
        prepared = client.prepare_query(random_bits(64, rng))  # span 4 at phase 0
        idx = next(
            i
            for i, v in enumerate(prepared.variants)
            if v.phase == 0 and v.rotation == 0
        )
        n = client.ctx.params.n
        partial = np.zeros(n, dtype=bool)
        partial[8:11] = True  # only 3 of 4 consecutive
        candidates = self._decode_single(client, prepared, {(idx, 0): partial}, 5000)
        assert candidates == []
        full = np.zeros(n, dtype=bool)
        full[8:12] = True
        candidates = self._decode_single(client, prepared, {(idx, 0): full}, 5000)
        assert [c.offset for c in candidates] == [128]

    def test_rotation_filter(self, client, rng):
        prepared = client.prepare_query(random_bits(64, rng))
        idx = next(
            i
            for i, v in enumerate(prepared.variants)
            if v.phase == 0 and v.rotation == 1
        )
        n = client.ctx.params.n
        flags = np.zeros(n, dtype=bool)
        flags[8:12] = True  # run at g=8, but (8-1) % 4 != 0
        candidates = self._decode_single(client, prepared, {(idx, 0): flags}, 5000)
        assert candidates == []
        flags2 = np.zeros(n, dtype=bool)
        flags2[9:13] = True  # (9-1) % 4 == 0
        candidates = self._decode_single(client, prepared, {(idx, 0): flags2}, 5000)
        assert [c.offset for c in candidates] == [144]

    def test_multi_polynomial_flags_concatenate(self, client, rng):
        prepared = client.prepare_query(random_bits(16, rng))
        v0 = next(i for i, v in enumerate(prepared.variants) if v.phase == 0)
        n = client.ctx.params.n
        flags = {
            (v0, 0): np.zeros(n, dtype=bool),
            (v0, 1): np.eye(1, n, 2, dtype=bool)[0],
        }
        decoder = ResultDecoder(16, n, 16 * 3 * n)
        candidates = decoder.decode(prepared, flags, 2)
        assert [c.offset for c in candidates] == [(n + 2) * 16]


class TestVerifyCandidates:
    def test_filters(self):
        cands = [MatchCandidate(0, 0, 0), MatchCandidate(16, 0, 0)]
        verified = verify_candidates(cands, lambda off: off == 16)
        assert [c.offset for c in verified] == [16]
        assert cands[0].verified is False
        assert cands[1].verified is True

    def test_empty(self):
        assert verify_candidates([], lambda off: True) == []
