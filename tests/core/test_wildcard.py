"""Unit tests for wildcard pattern matching."""

import numpy as np
import pytest

from repro.core import ClientConfig, SecureStringMatchPipeline
from repro.core.wildcard import WildcardPattern, WildcardSearcher
from repro.he import BFVParams
from repro.utils.bits import bytes_to_bits, random_bits, text_to_bits

PARAMS = BFVParams.test_small(64)


class TestPatternParsing:
    def test_from_bits(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 1]
        mask = [1, 1, 0, 0, 1, 1, 1, 1]
        p = WildcardPattern.from_bits(bits, mask)
        assert p.num_segments == 2
        assert p.segments[0].bits == (1, 0)
        assert p.segments[0].offset_bits == 0
        assert p.segments[1].bits == (0, 0, 1, 1)
        assert p.segments[1].offset_bits == 4
        assert p.total_bits == 8
        assert p.wildcard_bits == 2

    def test_trailing_segment(self):
        p = WildcardPattern.from_bits([1, 1, 1], [0, 1, 1])
        assert p.num_segments == 1
        assert p.segments[0].offset_bits == 1

    def test_no_literals_rejected(self):
        with pytest.raises(ValueError):
            WildcardPattern.from_bits([0, 0], [0, 0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            WildcardPattern.from_bits([1], [1, 0])

    def test_empty_pattern(self):
        with pytest.raises(ValueError):
            WildcardPattern.from_bits([], [])

    def test_from_text(self):
        p = WildcardPattern.from_text("ab?d")
        assert p.total_bits == 32
        assert p.num_segments == 2
        assert p.segments[0].length == 16  # "ab"
        assert p.segments[1].offset_bits == 24  # "d" after the wild byte
        assert p.segments[1].bit_array().tolist() == list(
            bytes_to_bits(b"d")
        )


class TestWildcardSearch:
    def _searcher(self, db_bits, seed=70):
        pipe = SecureStringMatchPipeline(ClientConfig(PARAMS, key_seed=seed))
        pipe.outsource_database(db_bits)
        return WildcardSearcher(pipe)

    def test_text_wildcard_byte(self, rng):
        text = "xx hello world -- hellish words -- hellfire wow " * 2
        db = text_to_bits(text)
        searcher = self._searcher(db)
        pattern = WildcardPattern.from_text("hell? w")
        matches = searcher.search(pattern)
        import re

        expected = [
            8 * m.start() for m in re.finditer(r"hell. w", text)
        ]
        assert matches == expected

    def test_bit_level_gap(self, rng):
        db = random_bits(3000, rng)
        seg1 = random_bits(32, rng)
        seg2 = random_bits(32, rng)
        base = 16 * 40
        db[base : base + 32] = seg1
        db[base + 48 : base + 80] = seg2  # 16-bit wildcard gap
        bits = np.concatenate([seg1, np.zeros(16, dtype=np.uint8), seg2])
        mask = np.concatenate(
            [np.ones(32), np.zeros(16), np.ones(32)]
        ).astype(np.uint8)
        pattern = WildcardPattern.from_bits(bits, mask)
        searcher = self._searcher(db, seed=71)
        assert base in searcher.search(pattern)

    def test_segments_must_all_match(self, rng):
        db = random_bits(2000, rng)
        seg1 = random_bits(32, rng)
        db[320:352] = seg1  # only the first segment present
        seg2 = (1 - db[368:400]).astype(np.uint8)  # second segment absent there
        bits = np.concatenate([seg1, np.zeros(16, dtype=np.uint8), seg2])
        mask = np.concatenate(
            [np.ones(32), np.zeros(16), np.ones(32)]
        ).astype(np.uint8)
        searcher = self._searcher(db, seed=72)
        assert 320 not in searcher.search(WildcardPattern.from_bits(bits, mask))

    def test_pattern_must_fit_database(self, rng):
        db = random_bits(200, rng)
        seg = db[160:192].copy()
        bits = np.concatenate([seg, np.zeros(64, dtype=np.uint8)])
        mask = np.concatenate([np.ones(32), np.zeros(64)]).astype(np.uint8)
        # pattern spans past the database end from offset 160
        searcher = self._searcher(db, seed=73)
        assert 160 not in searcher.search(WildcardPattern.from_bits(bits, mask))

    def test_hom_add_prediction(self, rng):
        db = random_bits(1000, rng)
        searcher = self._searcher(db, seed=74)
        pattern = WildcardPattern.from_text("ab?cd")
        predicted = searcher.hom_additions_for(pattern)
        before = searcher.pipeline.server.hom_add_count
        searcher.search(pattern)
        executed = searcher.pipeline.server.hom_add_count - before
        assert executed == predicted

    def test_search_requires_database(self):
        pipe = SecureStringMatchPipeline(ClientConfig(PARAMS, key_seed=75))
        searcher = WildcardSearcher(pipe)
        with pytest.raises(RuntimeError):
            searcher.search(WildcardPattern.from_text("a?b"))
