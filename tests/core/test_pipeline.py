"""Integration tests of the full CIPHERMATCH pipeline (Algorithm 1 +
Figure 6) against the plaintext oracle."""

import numpy as np
import pytest

from repro.baselines import find_all_matches
from repro.core import ClientConfig, IndexMode, SecureStringMatchPipeline
from repro.he import BFVParams
from repro.utils.bits import random_bits

PARAMS = BFVParams.test_small(64)


def make_pipeline(seed=1, mode=IndexMode.CLIENT_DECRYPT):
    return SecureStringMatchPipeline(
        ClientConfig(PARAMS, key_seed=seed, index_mode=mode)
    )


class TestAlignedMatching:
    def test_single_aligned_match(self, rng):
        db = random_bits(2000, rng)
        q = random_bits(32, rng)
        db[480:512] = q
        pipe = make_pipeline()
        pipe.outsource_database(db)
        report = pipe.search(q)
        assert report.matches == find_all_matches(db, q)

    def test_match_at_database_start(self, rng):
        db = random_bits(1500, rng)
        q = random_bits(32, rng)
        db[0:32] = q
        pipe = make_pipeline(2)
        pipe.outsource_database(db)
        assert 0 in pipe.search(q).matches

    def test_match_at_database_end(self, rng):
        db = random_bits(1024, rng)
        q = random_bits(32, rng)
        db[-32:] = q
        pipe = make_pipeline(3)
        pipe.outsource_database(db)
        assert (len(db) - 32) in pipe.search(q).matches

    def test_multiple_matches(self, rng):
        db = random_bits(3000, rng)
        q = random_bits(48, rng)
        for off in (160, 960, 2400):
            db[off : off + 48] = q
        pipe = make_pipeline(4)
        pipe.outsource_database(db)
        assert pipe.search(q).matches == find_all_matches(db, q)

    def test_no_match(self, rng):
        db = np.zeros(1000, dtype=np.uint8)
        q = np.ones(32, dtype=np.uint8)
        pipe = make_pipeline(5)
        pipe.outsource_database(db)
        assert pipe.search(q).matches == []

    def test_all_zero_database_all_zero_query(self, rng):
        # pathological: every aligned offset matches
        db = np.zeros(320, dtype=np.uint8)
        q = np.zeros(32, dtype=np.uint8)
        pipe = make_pipeline(6)
        pipe.outsource_database(db)
        assert pipe.search(q).matches == find_all_matches(db, q)


class TestUnalignedMatching:
    @pytest.mark.parametrize("phase", [1, 5, 9, 15])
    def test_phases(self, phase, rng):
        db = random_bits(2000, rng)
        q = random_bits(40, rng)  # >= 31 bits: every phase guaranteed
        off = 32 * 16 + phase
        db[off : off + 40] = q
        pipe = make_pipeline(7 + phase)
        pipe.outsource_database(db)
        assert pipe.search(q).matches == find_all_matches(db, q)

    def test_cross_polynomial_match(self, rng):
        # a match spanning the boundary between two database polynomials
        per_poly = 64 * 16
        db = random_bits(2 * per_poly, rng)
        q = random_bits(64, rng)
        off = per_poly - 32  # half in poly 0, half in poly 1
        db[off : off + 64] = q
        pipe = make_pipeline(30)
        pipe.outsource_database(db)
        assert off in pipe.search(q).matches


class TestQuerySizes:
    @pytest.mark.parametrize("qbits", [16, 32, 64, 128, 256])
    def test_paper_query_sizes(self, qbits, rng):
        db = random_bits(4000, rng)
        q = random_bits(qbits, rng)
        off = 16 * 50
        db[off : off + qbits] = q
        pipe = make_pipeline(40 + qbits)
        pipe.outsource_database(db)
        report = pipe.search(q)
        assert off in report.matches
        assert set(report.matches) == set(find_all_matches(db, q))

    def test_query_not_multiple_of_chunk(self, rng):
        db = random_bits(2000, rng)
        q = random_bits(23, rng)
        off = 16 * 20
        db[off : off + 23] = q
        pipe = make_pipeline(60)
        pipe.outsource_database(db)
        assert off in pipe.search(q).matches


class TestDeterministicIndexMode:
    def test_matches_client_mode(self, rng):
        db = random_bits(2000, rng)
        q = random_bits(32, rng)
        db[320:352] = q
        db[777:809] = q
        expected = find_all_matches(db, q)
        for mode in (IndexMode.CLIENT_DECRYPT, IndexMode.SERVER_DETERMINISTIC):
            pipe = make_pipeline(70, mode)
            pipe.outsource_database(db)
            assert pipe.search(q).matches == expected, mode

    def test_server_generates_index_without_secret_key(self, rng):
        db = random_bits(1000, rng)
        q = random_bits(32, rng)
        db[160:192] = q
        pipe = make_pipeline(71, IndexMode.SERVER_DETERMINISTIC)
        pipe.outsource_database(db)
        # server has no sk attribute at all — index generation must work
        assert not hasattr(pipe.server, "sk")
        assert 160 in pipe.search(q).matches

    def test_client_mode_rejects_server_index(self, rng):
        pipe = make_pipeline(72, IndexMode.CLIENT_DECRYPT)
        pipe.outsource_database(random_bits(500, rng))
        with pytest.raises(RuntimeError):
            pipe.server.generate_index([])


class TestReports:
    def test_hom_add_count(self, rng):
        db = random_bits(1000, rng)  # one polynomial
        pipe = make_pipeline(80)
        pipe.outsource_database(db)
        report = pipe.search(random_bits(16, rng))
        assert report.hom_additions == 16  # 16 variants x 1 polynomial
        assert report.num_variants == 16

    def test_encrypted_db_bytes(self, rng):
        pipe = make_pipeline(81)
        pipe.outsource_database(random_bits(100, rng))
        report = pipe.search(random_bits(16, rng))
        assert report.encrypted_db_bytes == PARAMS.ciphertext_bytes

    def test_search_before_outsource_raises(self, rng):
        pipe = make_pipeline(82)
        with pytest.raises(RuntimeError):
            pipe.search(random_bits(16, rng))

    def test_verification_disabled_keeps_candidates(self, rng):
        db = random_bits(1500, rng)
        q = random_bits(16, rng)
        db[160:176] = q
        pipe = make_pipeline(83)
        pipe.outsource_database(db)
        unverified = pipe.search(q, verify=False)
        verified = pipe.search(q)
        assert set(verified.matches).issubset(set(unverified.matches))
        assert 160 in verified.matches
