"""Unit tests for query preparation (Algorithm 1, lines 4-9)."""

import numpy as np
import pytest

from repro.core.query import QueryPreparer, _periodic_window, guaranteed_phases
from repro.he import BFVContext, BFVParams, KeyGenerator
from repro.utils.bits import chunk_bits, negate_bits, random_bits


@pytest.fixture(scope="module")
def ctx():
    return BFVContext(BFVParams.test_small(64), seed=6)


@pytest.fixture(scope="module")
def preparer(ctx):
    return QueryPreparer(ctx, 16)


class TestVariantGeneration:
    def test_16bit_query_has_16_variants(self, preparer, rng):
        # the paper's headline case: w variants for a w-bit query
        prepared = preparer.prepare(random_bits(16, rng))
        assert prepared.num_variants == 16

    def test_32bit_query_variant_count(self, preparer, rng):
        # phase 0: span 2 -> 2 rotations; phases 1-15: span 1 each
        prepared = preparer.prepare(random_bits(32, rng))
        assert prepared.num_variants == 2 + 15

    def test_variant_phases_cover_chunk_width(self, preparer, rng):
        prepared = preparer.prepare(random_bits(64, rng))
        assert {v.phase for v in prepared.variants} == set(range(16))

    def test_phase0_pattern_is_negated_chunks(self, preparer, rng):
        q = random_bits(32, rng)
        prepared = preparer.prepare(q)
        v0 = next(v for v in prepared.variants if v.phase == 0 and v.rotation == 0)
        expected = chunk_bits(negate_bits(q), 16)
        assert np.array_equal(v0.pattern_chunks, expected)

    def test_phase0_full_chunks_not_flagged(self, preparer, rng):
        # 32-bit query at phase 0 covers whole chunks: exact detection
        prepared = preparer.prepare(random_bits(32, rng))
        v0 = next(v for v in prepared.variants if v.phase == 0)
        assert not v0.requires_verification

    def test_nonzero_phase_flagged_for_verification(self, preparer, rng):
        prepared = preparer.prepare(random_bits(32, rng))
        for v in prepared.variants:
            if v.phase != 0:
                assert v.requires_verification

    def test_interior_offset(self, preparer, rng):
        prepared = preparer.prepare(random_bits(48, rng))
        for v in prepared.variants:
            if v.phase == 0:
                assert v.query_bit_offset == 0
            else:
                assert v.query_bit_offset == 16 - v.phase

    def test_rotations_cover_span(self, preparer, rng):
        prepared = preparer.prepare(random_bits(64, rng))  # span 4 at phase 0
        phase0 = [v for v in prepared.variants if v.phase == 0]
        assert sorted(v.rotation for v in phase0) == [0, 1, 2, 3]

    def test_empty_query_raises(self, preparer):
        with pytest.raises(ValueError):
            preparer.prepare(np.zeros(0, dtype=np.uint8))

    def test_short_query_fallback_span_one(self, preparer, rng):
        prepared = preparer.prepare(random_bits(8, rng))
        for v in prepared.variants:
            assert v.span == 1
            assert v.requires_verification or v.phase == 0

    def test_coefficient_pattern_periodicity(self, preparer, rng):
        prepared = preparer.prepare(random_bits(64, rng))
        v = next(v for v in prepared.variants if v.span == 4 and v.rotation == 1)
        pattern = v.coefficient_pattern(64, poly_chunk_base=0)
        # coefficient i holds pattern chunk (i - rotation) mod span
        for i in range(64):
            assert pattern[i] == v.pattern_chunks[(i - 1) % 4]


class TestGuaranteedPhases:
    def test_16bit_only_phase0(self):
        assert guaranteed_phases(16, 16) == [0]

    def test_31bit_guarantees_all(self):
        assert guaranteed_phases(31, 16) == list(range(16))

    def test_monotone_in_query_size(self):
        shorter = set(guaranteed_phases(20, 16))
        longer = set(guaranteed_phases(40, 16))
        assert shorter.issubset(longer)


class TestVariantEncryption:
    @pytest.fixture(scope="class")
    def keys(self, ctx):
        gen = KeyGenerator(BFVParams.test_small(64), seed=6)
        sk = gen.secret_key()
        return sk, gen.public_key(sk)

    def test_encrypted_variant_decrypts_to_pattern(self, ctx, preparer, keys, rng):
        sk, pk = keys
        prepared = preparer.prepare(random_bits(32, rng))
        ct = preparer.encrypt_variant(prepared, 0, 0, pk)
        pt = ctx.decrypt(ct, sk)
        expected = preparer.variant_plaintext(prepared.variants[0], 0)
        assert np.array_equal(pt.poly.coeffs, expected.poly.coeffs)

    def test_cache_by_residue(self, preparer, keys, rng):
        _, pk = keys
        prepared = preparer.prepare(random_bits(16, rng))  # span 1 everywhere
        ct0 = preparer.encrypt_variant(prepared, 0, 0, pk)
        ct1 = preparer.encrypt_variant(prepared, 0, 5, pk)
        assert ct0 is ct1  # same residue class -> cached object

    def test_cache_distinguishes_variants(self, preparer, keys, rng):
        _, pk = keys
        prepared = preparer.prepare(random_bits(16, rng))
        ct0 = preparer.encrypt_variant(prepared, 0, 0, pk)
        ct1 = preparer.encrypt_variant(prepared, 1, 0, pk)
        assert ct0 is not ct1


class TestPeriodicWindow:
    def test_repeats_query(self):
        q = np.array([1, 0, 1], dtype=np.uint8)
        window = _periodic_window(q, 0, 7)
        assert list(window) == [1, 0, 1, 1, 0, 1, 1]

    def test_start_offset(self):
        q = np.array([1, 0, 0], dtype=np.uint8)
        window = _periodic_window(q, 1, 4)
        assert list(window) == [0, 0, 1, 0]
