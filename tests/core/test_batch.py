"""Unit tests for batched query execution."""

import numpy as np
import pytest

from repro.baselines import find_all_matches
from repro.core import BatchSearcher, ClientConfig, SecureStringMatchPipeline
from repro.he import BFVParams
from repro.utils.bits import random_bits

PARAMS = BFVParams.test_small(64)


@pytest.fixture()
def searcher():
    return BatchSearcher(
        SecureStringMatchPipeline(ClientConfig(PARAMS, key_seed=90))
    )


class TestBatchSearch:
    def test_batch_matches_individual_searches(self, searcher, rng):
        db = random_bits(2000, rng)
        queries = []
        for k in range(4):
            q = random_bits(32, rng)
            off = 16 * (5 + 20 * k)
            db[off : off + 32] = q
            queries.append(q)
        searcher.outsource(db)
        report = searcher.search_batch(queries)
        assert report.num_queries == 4
        for q, matches in zip(queries, report.matches_per_query()):
            assert matches == find_all_matches(db, q)

    def test_aggregate_counts(self, searcher, rng):
        db = random_bits(1000, rng)  # one polynomial
        searcher.outsource(db)
        queries = [random_bits(16, rng) for _ in range(3)]
        report = searcher.search_batch(queries)
        assert report.total_hom_additions == sum(
            report.hom_additions_per_query()
        )
        # 16 variants x 1 polynomial per distinct query
        assert report.hom_additions_per_query() == [16, 16, 16]

    def test_duplicate_queries_deduplicated(self, searcher, rng):
        db = random_bits(1000, rng)
        q = random_bits(16, rng)
        searcher.outsource(db)
        report = searcher.search_batch([q, q, q])
        assert report.num_queries == 3
        assert searcher.deduplicated_hits == 2
        # only one actual search ran
        assert report.reports[0] is report.reports[1]

    def test_queries_with_matches(self, searcher, rng):
        db = random_bits(1500, rng)
        hit = random_bits(32, rng)
        db[160:192] = hit
        miss = (1 - db[:32]).astype(np.uint8)  # guaranteed different at 0
        searcher.outsource(db)
        report = searcher.search_batch([hit, miss])
        assert report.queries_with_matches >= 1
        assert report.reports[0].num_matches >= 1

    def test_outsource_clears_memo(self, searcher, rng):
        db1 = random_bits(500, rng)
        q = random_bits(16, rng)
        searcher.outsource(db1)
        searcher.search_batch([q])
        db2 = random_bits(500, rng)
        searcher.outsource(db2)
        report = searcher.search_batch([q])
        # re-searched against the new database, not served from memo
        assert searcher.deduplicated_hits == 0
        assert report.matches_per_query()[0] == find_all_matches(db2, q)

    def test_case_study_key_stream(self, rng):
        """Database case study batch: repeated key lookups dedupe."""
        from repro.workloads import DatabaseWorkloadGenerator

        gen = DatabaseWorkloadGenerator(seed=42)
        db = gen.generate(num_records=10, key_bytes=8, value_bytes=8)
        mix = gen.query_mix(db, num_queries=15, hit_fraction=0.8)
        searcher = BatchSearcher(
            SecureStringMatchPipeline(ClientConfig(PARAMS, key_seed=91))
        )
        searcher.outsource(db.flatten_bits())
        report = searcher.search_batch([db.key_bits(k) for k in mix.keys])
        assert report.num_queries == 15
        distinct = len(set(mix.keys))
        assert searcher.deduplicated_hits == 15 - distinct
