"""Unit tests for the CIPHERMATCH data packing scheme (§4.2.1)."""

import numpy as np
import pytest

from repro.core.packing import (
    DataPacker,
    derive_masking_poly,
    pack_reference_chunks,
)
from repro.he import BFVContext, BFVParams, KeyGenerator
from repro.utils.bits import random_bits


@pytest.fixture(scope="module")
def ctx():
    return BFVContext(BFVParams.test_small(64), seed=5)


@pytest.fixture(scope="module")
def keys():
    gen = KeyGenerator(BFVParams.test_small(64), seed=5)
    sk = gen.secret_key()
    return sk, gen.public_key(sk)


@pytest.fixture(scope="module")
def packer(ctx):
    return DataPacker(ctx)


class TestPack:
    def test_chunk_values_match_reference(self, packer, rng):
        bits = random_bits(400, rng)
        packed = packer.pack(bits)
        ref = pack_reference_chunks(bits, 16)
        for i, expected in enumerate(ref):
            assert packed.chunk(i) == int(expected)

    def test_num_polynomials(self, packer, rng):
        per_poly = packer.bits_per_polynomial
        assert packer.pack(random_bits(per_poly, rng)).num_polynomials == 1
        assert packer.pack(random_bits(per_poly + 1, rng)).num_polynomials == 2

    def test_num_chunks(self, packer, rng):
        packed = packer.pack(random_bits(33, rng))
        assert packed.num_chunks == 3  # ceil(33/16)

    def test_bit_length_preserved(self, packer, rng):
        packed = packer.pack(random_bits(777, rng))
        assert packed.bit_length == 777


class TestEncrypt:
    def test_encrypted_database_decrypts_to_packed(self, ctx, packer, keys, rng):
        sk, pk = keys
        bits = random_bits(600, rng)
        packed = packer.pack(bits)
        enc = packer.encrypt(packed, pk)
        for pt, ct in zip(packed.plaintexts, enc.ciphertexts):
            decrypted = ctx.decrypt(ct, sk)
            assert np.array_equal(decrypted.poly.coeffs, pt.poly.coeffs)

    def test_metadata_carried(self, packer, keys, rng):
        _, pk = keys
        bits = random_bits(100, rng)
        enc = packer.encrypt(packer.pack(bits), pk)
        assert enc.bit_length == 100
        assert enc.chunk_width == 16
        assert enc.deterministic_seed is None

    def test_deterministic_encryption_reproducible(self, packer, keys, rng):
        _, pk = keys
        bits = random_bits(100, rng)
        packed = packer.pack(bits)
        enc1 = packer.encrypt(packed, pk, deterministic_seed=7)
        enc2 = packer.encrypt(packed, pk, deterministic_seed=7)
        for a, b in zip(enc1.ciphertexts, enc2.ciphertexts):
            assert a == b

    def test_different_seeds_differ(self, packer, keys, rng):
        _, pk = keys
        packed = packer.pack(random_bits(100, rng))
        enc1 = packer.encrypt(packed, pk, deterministic_seed=7)
        enc2 = packer.encrypt(packed, pk, deterministic_seed=8)
        assert enc1.ciphertexts[0] != enc2.ciphertexts[0]

    def test_serialized_bytes(self, ctx, packer, keys, rng):
        _, pk = keys
        enc = packer.encrypt(packer.pack(random_bits(10, rng)), pk)
        assert enc.serialized_bytes == ctx.params.ciphertext_bytes


class TestFootprint:
    def test_expansion_factor_is_4x(self, packer):
        # one full polynomial of data: 64 coeffs * 16 bits = 128 bytes
        report = packer.footprint(packer.bits_per_polynomial)
        assert report.expansion_factor == pytest.approx(4.0)

    def test_small_database_quantized(self, packer):
        # 1 byte still needs a whole ciphertext
        report = packer.footprint(8)
        assert report.encrypted_bytes == packer.ctx.params.ciphertext_bytes

    def test_scheme_name(self, packer):
        assert packer.footprint(100).scheme == "ciphermatch"


class TestMaskingPolyDerivation:
    def test_deterministic(self, ctx):
        a = derive_masking_poly(ctx, 1, "db", 0)
        b = derive_masking_poly(ctx, 1, "db", 0)
        assert a == b

    def test_distinct_by_index(self, ctx):
        assert derive_masking_poly(ctx, 1, "db", 0) != derive_masking_poly(
            ctx, 1, "db", 1
        )

    def test_distinct_by_label(self, ctx):
        assert derive_masking_poly(ctx, 1, "db", 0) != derive_masking_poly(
            ctx, 1, "qv", 0
        )

    def test_ternary(self, ctx):
        u = derive_masking_poly(ctx, 3, "db", 2)
        assert all(int(c) in (-1, 0, 1) for c in u.centered())
