"""Unit tests for the Boolean (per-bit XNOR/AND) baseline."""

import numpy as np
import pytest

from repro.baselines import BooleanMatcher, find_all_matches
from repro.he import BFVParams, GateCostModel, generate_keys
from repro.utils.bits import random_bits


@pytest.fixture(scope="module")
def setup(bool_params):
    matcher = BooleanMatcher(bool_params, seed=33)
    sk, pk, rlk, _ = generate_keys(bool_params, seed=33, relin=True)
    return matcher, sk, pk, rlk


class TestEncryption:
    def test_one_ciphertext_per_bit(self, setup, rng):
        matcher, _, pk, _ = setup
        db = matcher.encrypt_database(random_bits(10, rng), pk)
        assert db.bit_length == 10

    def test_footprint_blowup(self, setup):
        matcher, _, _, _ = setup
        # >200x expansion over raw bytes
        raw = 8  # bytes
        assert matcher.footprint_bytes(raw * 8) / raw > 200

    def test_modelled_footprint(self):
        model = GateCostModel()
        assert BooleanMatcher.modelled_footprint_bytes(64, model) == 64 * 2048


class TestSearch:
    def test_finds_match_any_alignment(self, setup, rng):
        matcher, sk, pk, rlk = setup
        db_bits = random_bits(20, rng)
        q = db_bits[7:12].copy()
        db = matcher.encrypt_database(db_bits, pk)
        got = matcher.search(db, q, pk, sk, rlk)
        assert got == find_all_matches(db_bits, q)

    def test_no_match(self, setup, rng):
        matcher, sk, pk, rlk = setup
        db_bits = np.zeros(12, dtype=np.uint8)
        q = np.ones(4, dtype=np.uint8)
        db = matcher.encrypt_database(db_bits, pk)
        assert matcher.search(db, q, pk, sk, rlk) == []

    def test_single_bit_query(self, setup, rng):
        matcher, sk, pk, rlk = setup
        db_bits = np.array([0, 1, 0, 1], dtype=np.uint8)
        db = matcher.encrypt_database(db_bits, pk)
        got = matcher.search(db, np.array([1], dtype=np.uint8), pk, sk, rlk)
        assert got == [1, 3]


class TestGateAccounting:
    def test_gate_formula(self):
        # alignments * (2y - 1)
        assert BooleanMatcher.gates_for(db_bits=100, query_bits=8) == 93 * 15

    def test_gate_formula_no_alignments(self):
        assert BooleanMatcher.gates_for(db_bits=4, query_bits=8) == 0

    def test_stats_track_search(self, bool_params, rng):
        matcher = BooleanMatcher(bool_params, seed=34)
        sk, pk, rlk, _ = generate_keys(bool_params, seed=34, relin=True)
        db_bits = random_bits(10, rng)
        db = matcher.encrypt_database(db_bits, pk)
        matcher.search(db, random_bits(4, rng), pk, sk, rlk)
        alignments = 10 - 4 + 1
        assert matcher.stats.xnor_gates == alignments * 4
        assert matcher.stats.and_gates == alignments * 3
        assert matcher.stats.total_gates == alignments * 7
