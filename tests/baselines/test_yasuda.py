"""Unit tests for the arithmetic (Yasuda et al.) baseline."""

import numpy as np
import pytest

from repro.baselines import YasudaMatcher, find_all_matches
from repro.he import BFVParams, generate_keys
from repro.utils.bits import random_bits


@pytest.fixture(scope="module")
def setup():
    params = BFVParams.arithmetic_baseline(n=128, t=512)
    matcher = YasudaMatcher(params, max_query_bits=32, seed=21)
    sk, pk, rlk, _ = generate_keys(params, seed=21, relin=True)
    return matcher, sk, pk, rlk


class TestDatabaseEncryption:
    def test_block_overlap_covers_boundaries(self, setup, rng):
        matcher, sk, pk, rlk = setup
        db = random_bits(300, rng)
        enc = matcher.encrypt_database(db, pk)
        stride = matcher.params.n - (matcher.max_query_bits - 1)
        assert enc.block_starts == [0, stride, 2 * stride]

    def test_single_block_for_small_db(self, setup, rng):
        matcher, _, pk, _ = setup
        enc = matcher.encrypt_database(random_bits(50, rng), pk)
        assert len(enc.ciphertexts) == 1

    def test_footprint_is_1_bit_per_coefficient(self, setup, rng):
        matcher, _, pk, _ = setup
        enc = matcher.encrypt_database(random_bits(128, rng), pk)
        assert enc.serialized_bytes == matcher.footprint_bytes(128)


class TestQueryEncoding:
    def test_weight_and_reversal(self, setup):
        matcher, _, _, _ = setup
        q = np.array([1, 0, 1], dtype=np.uint8)
        q_pt, mask_pt, y = matcher.encode_query(q)
        assert y == 3
        n, t = matcher.params.n, matcher.params.t
        assert int(q_pt.poly.coeffs[0]) == 1
        assert int(q_pt.poly.coeffs[n - 2]) == t - 1  # -q2
        assert int(mask_pt.poly.coeffs[n - 1]) == t - 1  # -1 for position 1

    def test_rejects_oversized_query(self, setup, rng):
        matcher, _, _, _ = setup
        with pytest.raises(ValueError):
            matcher.encode_query(random_bits(33, rng))

    def test_params_must_bound_hd_values(self):
        with pytest.raises(ValueError):
            YasudaMatcher(
                BFVParams.arithmetic_baseline(n=128, t=64), max_query_bits=64
            )


class TestSearch:
    def test_finds_planted_match(self, setup, rng):
        matcher, sk, pk, rlk = setup
        db = random_bits(250, rng)
        q = random_bits(20, rng)
        db[37:57] = q  # arbitrary (non-aligned!) offset
        enc = matcher.encrypt_database(db, pk)
        assert matcher.search(enc, q, pk, sk, rlk) == find_all_matches(db, q)

    def test_finds_match_across_block_boundary(self, setup, rng):
        matcher, sk, pk, rlk = setup
        db = random_bits(240, rng)
        q = random_bits(24, rng)
        off = matcher.params.n - 10  # spans blocks 0 and 1
        db[off : off + 24] = q
        enc = matcher.encrypt_database(db, pk)
        assert off in matcher.search(enc, q, pk, sk, rlk)

    def test_no_match(self, setup, rng):
        matcher, sk, pk, rlk = setup
        db = np.zeros(200, dtype=np.uint8)
        q = np.ones(16, dtype=np.uint8)
        enc = matcher.encrypt_database(db, pk)
        assert matcher.search(enc, q, pk, sk, rlk) == []

    def test_multiple_matches(self, setup, rng):
        matcher, sk, pk, rlk = setup
        db = random_bits(220, rng)
        q = random_bits(16, rng)
        db[10:26] = q
        db[100:116] = q
        enc = matcher.encrypt_database(db, pk)
        assert matcher.search(enc, q, pk, sk, rlk) == find_all_matches(db, q)


class TestOpCounts:
    def test_two_mults_three_adds_per_block(self, setup):
        assert YasudaMatcher.ops_per_block() == (2, 3)

    def test_op_counter_tracks_search(self, rng):
        params = BFVParams.arithmetic_baseline(n=128, t=512)
        matcher = YasudaMatcher(params, max_query_bits=32, seed=22)
        from repro.he import generate_keys

        sk, pk, rlk, _ = generate_keys(params, seed=22, relin=True)
        db = random_bits(100, rng)
        enc = matcher.encrypt_database(db, pk)
        matcher.search(enc, random_bits(16, rng), pk, sk, rlk)
        assert matcher.ops.multiplications == 2  # one block
        assert matcher.ops.additions == 3
