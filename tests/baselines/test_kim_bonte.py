"""Tests for the Kim HomEQ [34] and Bonte & Iliashenko [29] baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bonte import BonteMatcher, bonte_params
from repro.baselines.kim_homeq import KimHomEQMatcher, homeq_params
from repro.baselines.plaintext import find_all_matches


@pytest.fixture(scope="module")
def kim():
    return KimHomEQMatcher(seed=3)


@pytest.fixture(scope="module")
def bonte():
    return BonteMatcher(seed=3)


class TestKimHomEQ:
    def test_single_match(self, kim):
        db = kim.encrypt_database([0, 1, 2, 3, 0, 1])
        assert kim.search(db, [2, 3]) == [2]

    def test_multiple_matches(self, kim):
        db = kim.encrypt_database([1, 2, 1, 2, 1])
        assert kim.search(db, [1, 2]) == [0, 2]

    def test_no_match(self, kim):
        db = kim.encrypt_database([0, 0, 0, 0])
        assert kim.search(db, [1, 2]) == []

    def test_overlapping_matches(self, kim):
        db = kim.encrypt_database([1, 1, 1, 1])
        assert kim.search(db, [1, 1]) == [0, 1, 2]

    def test_whole_database_query(self, kim):
        db = kim.encrypt_database([3, 1, 4, 1])
        assert kim.search(db, [3, 1, 4, 1]) == [0]

    def test_query_length_capped_below_t(self, kim):
        db = kim.encrypt_database([0, 1, 2, 3, 4, 0])
        with pytest.raises(ValueError, match="below t"):
            kim.encrypt_query([0, 1, 2, 3, 4])  # length 5 = t

    def test_character_outside_alphabet_rejected(self, kim):
        with pytest.raises(ValueError, match="alphabet"):
            kim.encrypt_database([0, 5])

    def test_compressed_result_is_single_ciphertext(self, kim):
        db = kim.encrypt_database([0, 1, 2, 3])
        compressed = kim.search_compressed(db, [1, 2])
        assert compressed.size == 2  # one ordinary (c0, c1) ciphertext

    def test_multiplication_count_model(self):
        # 2 squarings per x^4; per alignment: L chars + 1 final EQ.
        assert KimHomEQMatcher.multiplications_for(6, 2, t=5) == 5 * (2 * 2 + 2)

    def test_stats_accumulate(self):
        m = KimHomEQMatcher(seed=0)
        db = m.encrypt_database([0, 1, 2])
        m.search(db, [1])
        assert m.stats.multiplications > 0
        assert m.stats.plain_multiplications == 3

    def test_matches_plaintext_oracle_on_chars(self, kim):
        chars = [0, 2, 1, 2, 1, 2]
        query = [1, 2]
        db = kim.encrypt_database(chars)
        expected = [
            k
            for k in range(len(chars) - len(query) + 1)
            if chars[k : k + len(query)] == query
        ]
        assert kim.search(db, query) == expected

    def test_params_preset(self):
        p = homeq_params(n=32, t=5)
        assert p.n == 32 and p.t == 5 and p.q.bit_length() == 62


class TestBonte:
    def test_basic_search(self, bonte):
        db = bonte.encrypt_database([1, 0, 1, 1, 0, 1, 1, 0], window_bits=3)
        assert bonte.search(db, [1, 1, 0]) == [2, 5]

    def test_matches_plaintext_oracle(self, bonte):
        rng = np.random.default_rng(9)
        bits = rng.integers(0, 2, 20)
        query = [1, 0, 1]
        db = bonte.encrypt_database(bits, window_bits=3)
        assert bonte.search(db, query) == find_all_matches(bits, np.array(query))

    def test_multi_ciphertext_database(self, bonte):
        """More windows than slots forces batching across ciphertexts."""
        bits = [1, 0] * 8  # 16 bits -> 14 windows > n=8 slots
        db = bonte.encrypt_database(bits, window_bits=3)
        assert len(db.ciphertexts) == 2
        assert bonte.search(db, [0, 1, 0]) == find_all_matches(
            np.array(bits), np.array([0, 1, 0])
        )

    def test_window_capacity_enforced(self, bonte):
        with pytest.raises(ValueError, match="slot capacity"):
            bonte.encrypt_database([1] * 10, window_bits=5)

    def test_query_must_match_window_size(self, bonte):
        db = bonte.encrypt_database([1, 0, 1, 1], window_bits=3)
        with pytest.raises(ValueError, match="fixed size"):
            bonte.search(db, [1, 0])

    def test_count_matches(self, bonte):
        bits = [1, 1, 0, 1, 1, 0, 1, 1]
        db = bonte.encrypt_database(bits, window_bits=2)
        expected = len(find_all_matches(np.array(bits), np.array([1, 1])))
        assert bonte.count_matches(db, [1, 1]) == expected

    def test_count_matches_zero(self, bonte):
        db = bonte.encrypt_database([0, 0, 0, 0, 0], window_bits=2)
        assert bonte.count_matches(db, [1, 1]) == 0

    def test_constant_depth_property(self):
        """Multiplication count per batch is independent of query size."""
        m4 = BonteMatcher.multiplications_for(db_bits=100, query_bits=4)
        m2 = BonteMatcher.multiplications_for(db_bits=100, query_bits=2)
        batches4 = -(-(100 - 4 + 1) // 8)
        batches2 = -(-(100 - 2 + 1) // 8)
        assert m4 / batches4 == m2 / batches2  # same per-batch depth

    def test_max_window_bits(self, bonte):
        assert bonte.max_window_bits == 4  # log2(17) rounded down

    def test_params_preset(self):
        p = bonte_params()
        assert p.t == 17 and p.n == 8

    @given(st.integers(min_value=0, max_value=7))
    @settings(max_examples=8, deadline=None)
    def test_every_window_value_detectable(self, value):
        bonte = BonteMatcher(seed=1)
        query = [int(b) for b in format(value, "03b")]
        bits = [0, 0] + query + [1, 1]
        db = bonte.encrypt_database(bits, window_bits=3)
        assert 2 in bonte.search(db, query)
