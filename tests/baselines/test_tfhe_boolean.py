"""Tests for the Boolean baseline running on real TFHE gates."""

import numpy as np
import pytest

from repro.baselines.boolean_match import BooleanMatcher
from repro.baselines.plaintext import find_all_matches
from repro.baselines.tfhe_boolean import TfheBooleanMatcher
from repro.tfhe import TFHEParams


@pytest.fixture(scope="module")
def matcher():
    return TfheBooleanMatcher(TFHEParams.test_tiny(), seed=11)


class TestSearch:
    def test_single_match(self, matcher):
        db_bits = np.array([1, 0, 1, 1, 0, 0, 1], dtype=np.uint8)
        db = matcher.encrypt_database(db_bits)
        assert matcher.search(db, np.array([1, 1, 0])) == [2]

    def test_multiple_matches(self, matcher):
        db_bits = np.array([1, 0, 1, 0, 1], dtype=np.uint8)
        db = matcher.encrypt_database(db_bits)
        assert matcher.search(db, np.array([1, 0])) == [0, 2]

    def test_no_match(self, matcher):
        db_bits = np.zeros(6, dtype=np.uint8)
        db = matcher.encrypt_database(db_bits)
        assert matcher.search(db, np.array([1, 1])) == []

    def test_matches_oracle(self, matcher):
        rng = np.random.default_rng(4)
        db_bits = rng.integers(0, 2, 12).astype(np.uint8)
        query = np.array([1, 0, 1], dtype=np.uint8)
        db = matcher.encrypt_database(db_bits)
        assert matcher.search(db, query) == find_all_matches(db_bits, query)

    def test_single_bit_query(self, matcher):
        db_bits = np.array([0, 1, 0, 1], dtype=np.uint8)
        db = matcher.encrypt_database(db_bits)
        assert matcher.search(db, np.array([1])) == [1, 3]


class TestCostStructure:
    def test_gate_count_model_matches_bfv_standin(self):
        """Real TFHE and the BFV stand-in evaluate the same circuit."""
        assert TfheBooleanMatcher.gates_for(64, 8) == BooleanMatcher.gates_for(64, 8)

    def test_stats_track_gates(self):
        m = TfheBooleanMatcher(TFHEParams.test_tiny(), seed=2)
        db = m.encrypt_database(np.array([1, 0, 1, 1], dtype=np.uint8))
        m.search(db, np.array([1, 1]))
        # 3 alignments x (2 XNOR + 1 AND).
        assert m.stats.xnor_gates == 6
        assert m.stats.and_gates == 3
        assert m.stats.bootstraps == 9  # every binary gate bootstraps once

    def test_footprint_is_per_bit(self, matcher):
        db_bits = np.ones(16, dtype=np.uint8)
        db = matcher.encrypt_database(db_bits)
        assert db.serialized_bytes == 16 * matcher.params.lwe_ciphertext_bytes
        assert matcher.footprint_bytes(16) == db.serialized_bytes

    def test_expansion_factor_blowup(self, matcher):
        """Per-bit encryption blows the database up by orders of
        magnitude — the >200x effect of §3.1 (here 8 * (n+1) * 4)."""
        factor = matcher.expansion_factor(1024)
        assert factor == 8 * matcher.params.lwe_ciphertext_bytes

    def test_unlimited_depth_long_query(self):
        """A query longer than any levelled-BFV budget still matches:
        gate outputs are bootstrapped fresh (flexible query size)."""
        m = TfheBooleanMatcher(TFHEParams.test_tiny(), seed=8)
        db_bits = np.array([1, 0, 1, 1, 0, 1, 1, 1, 0, 1], dtype=np.uint8)
        db = m.encrypt_database(db_bits)
        query = db_bits[1:9]  # 8-bit query -> AND depth 3 + chains
        assert m.search(db, query) == [1]
