"""Unit tests for the plaintext reference matcher."""

import numpy as np
import pytest

from repro.baselines import (
    PlaintextMatcher,
    find_aligned_matches,
    find_all_matches,
    hamming_distance,
    matches_at,
)
from repro.utils.bits import random_bits


class TestFindAllMatches:
    def test_basic(self):
        db = np.array([0, 1, 0, 1, 1, 0, 1, 1], dtype=np.uint8)
        q = np.array([1, 1], dtype=np.uint8)
        assert find_all_matches(db, q) == [3, 6]

    def test_overlapping_matches(self):
        db = np.ones(6, dtype=np.uint8)
        q = np.ones(3, dtype=np.uint8)
        assert find_all_matches(db, q) == [0, 1, 2, 3]

    def test_no_match(self):
        db = np.zeros(10, dtype=np.uint8)
        q = np.ones(3, dtype=np.uint8)
        assert find_all_matches(db, q) == []

    def test_query_equals_db(self, rng):
        db = random_bits(50, rng)
        assert find_all_matches(db, db) == [0]

    def test_query_longer_than_db(self, rng):
        assert find_all_matches(random_bits(5, rng), random_bits(10, rng)) == []

    def test_empty_query(self, rng):
        assert find_all_matches(random_bits(5, rng), np.zeros(0, dtype=np.uint8)) == []

    def test_random_consistency_with_naive(self, rng):
        db = random_bits(200, rng)
        q = random_bits(7, rng)
        naive = [
            k
            for k in range(len(db) - 7 + 1)
            if np.array_equal(db[k : k + 7], q)
        ]
        assert find_all_matches(db, q) == naive


class TestAlignedMatches:
    def test_filters_to_multiples(self):
        db = np.ones(40, dtype=np.uint8)
        q = np.ones(8, dtype=np.uint8)
        aligned = find_aligned_matches(db, q, 16)
        assert aligned == [0, 16, 32]


class TestMatchesAt:
    def test_hit(self, rng):
        db = random_bits(100, rng)
        assert matches_at(db, db[20:30], 20)

    def test_miss(self):
        db = np.zeros(20, dtype=np.uint8)
        assert not matches_at(db, np.ones(5, dtype=np.uint8), 3)

    def test_out_of_bounds(self, rng):
        db = random_bits(20, rng)
        assert not matches_at(db, db[15:20], 16)
        assert not matches_at(db, db[:5], -1)


class TestHammingDistance:
    def test_zero_for_equal(self, rng):
        a = random_bits(32, rng)
        assert hamming_distance(a, a) == 0

    def test_counts_differences(self):
        a = np.array([0, 0, 1, 1], dtype=np.uint8)
        b = np.array([0, 1, 1, 0], dtype=np.uint8)
        assert hamming_distance(a, b) == 2

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance(np.zeros(3), np.zeros(4))


class TestPlaintextMatcher:
    def test_search(self, rng):
        db = random_bits(100, rng)
        q = db[32:48].copy()
        matcher = PlaintextMatcher(db)
        assert 32 in matcher.search(q)

    def test_oracle(self, rng):
        db = random_bits(100, rng)
        q = db[10:20].copy()
        oracle = PlaintextMatcher(db).oracle(q)
        assert oracle(10)
        assert not oracle(11) or np.array_equal(db[11:21], q)
