"""Cross-tenant cache pressure: global budget, inviolable floors,
coldest-first victim selection.

The property tests drive random insert schedules across several tenant
caches sharing one :class:`TenantCacheBroker` and check the broker's
three invariants after every insert:

* the fleet never sits over the global byte budget unless every
  remaining eviction candidate would violate its tenant's floor;
* a tenant that ever reached its floor never drops below it again
  (pressure evictions stop at the floor — floors win over the budget);
* when pressure does evict, the victim is the tenant holding the
  globally coldest (least-recently-touched) resident entry.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tenancy import TenantCacheBroker

WORD = 8  # np.int64 itemsize: entry sizes below are in 8-byte words


def _value(words: int) -> np.ndarray:
    return np.zeros(words, dtype=np.int64)


def _fill(cache, key, words):
    cache.get_or_create(key, lambda: _value(words))


# -- deterministic behavior ---------------------------------------------------


def test_shared_clock_orders_touches_across_caches():
    broker = TenantCacheBroker(None)
    a = broker.create_cache("a", capacity=8)
    b = broker.create_cache("b", capacity=8)
    _fill(a, "k0", 1)
    _fill(b, "k0", 1)
    _fill(a, "k1", 1)
    (tick_a, _) = a.oldest_entry()
    (tick_b, _) = b.oldest_entry()
    assert tick_a < tick_b  # a's oldest predates b's on the shared clock


def test_evicts_globally_coldest_tenant_first():
    broker = TenantCacheBroker(global_budget_bytes=6 * WORD)
    cold = broker.create_cache("cold", capacity=64)
    hot = broker.create_cache("hot", capacity=64)
    _fill(cold, "c0", 2)
    _fill(cold, "c1", 2)
    _fill(hot, "h0", 2)  # fleet at budget: 6 words
    assert broker.total_bytes() == 6 * WORD
    # the overflow insert lands on hot; the victim must be cold's
    # oldest entry, not anything of hot's
    _fill(hot, "h1", 2)
    assert broker.total_bytes() <= 6 * WORD
    assert broker.pressure_evictions["cold"] == 1
    assert broker.pressure_evictions["hot"] == 0
    assert len(cold) == 1 and len(hot) == 2
    # a re-touch rejuvenates: cold's survivor outlives hot's oldest,
    # so the next overflow evicts from hot instead
    cold.get_or_create("c1", lambda: _value(2))  # hit -> new tick
    _fill(cold, "c2", 2)
    assert broker.pressure_evictions["hot"] == 1
    assert len(cold) == 2 and len(hot) == 1


def test_floor_is_inviolable_even_over_budget():
    broker = TenantCacheBroker(global_budget_bytes=4 * WORD)
    floored = broker.create_cache("floored", capacity=64, floor_bytes=4 * WORD)
    other = broker.create_cache("other", capacity=64)
    _fill(floored, "f0", 2)
    _fill(floored, "f1", 2)  # exactly at floor
    _fill(other, "o0", 2)  # fleet over budget, but floored is untouchable
    assert floored.current_bytes == 4 * WORD
    assert broker.pressure_evictions["floored"] == 0
    # only "other" can yield; once it is empty the broker stops even
    # though the fleet still sits at floor bytes over... at the floor
    assert other.current_bytes == 0
    assert broker.total_bytes() == 4 * WORD


def test_budget_none_disables_pressure():
    broker = TenantCacheBroker(None)
    a = broker.create_cache("a", capacity=64)
    for k in range(32):
        _fill(a, k, 4)
    assert broker.rebalance() == 0
    assert len(a) == 32


def test_unregister_removes_tenant_from_pressure():
    broker = TenantCacheBroker(global_budget_bytes=2 * WORD)
    a = broker.create_cache("a", capacity=64)
    _fill(a, "a0", 2)
    broker.unregister("a")
    b = broker.create_cache("b", capacity=64)
    _fill(b, "b0", 2)
    # a's bytes no longer count toward the budget; b keeps its entry
    assert len(b) == 1
    assert broker.pressure_evictions["b"] == 0


# -- property tests -----------------------------------------------------------

_SCHEDULE = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # tenant index
        st.integers(min_value=1, max_value=8),  # entry size in words
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(
    schedule=_SCHEDULE,
    budget_words=st.integers(min_value=1, max_value=48),
    floors=st.tuples(
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=12),
    ),
)
def test_budget_and_floor_invariants(schedule, budget_words, floors):
    tenant_ids = ["t0", "t1", "t2"]
    broker = TenantCacheBroker(global_budget_bytes=budget_words * WORD)
    caches = {
        tid: broker.create_cache(
            tid, capacity=10_000, floor_bytes=floors[i] * WORD
        )
        for i, tid in enumerate(tenant_ids)
    }
    reached_floor = {tid: False for tid in tenant_ids}
    for step, (idx, words) in enumerate(schedule):
        tid = tenant_ids[idx]
        _fill(caches[tid], ("k", step), words)
        for i, other in enumerate(tenant_ids):
            cache, floor = caches[other], floors[i] * WORD
            if cache.current_bytes >= floor:
                reached_floor[other] = True
            # floors win forever: once at/above floor, never below it
            if reached_floor[other]:
                assert cache.current_bytes >= floor
        total = broker.total_bytes()
        if total > budget_words * WORD:
            # over budget only when no eviction is floor-legal
            for i, other in enumerate(tenant_ids):
                cache, floor = caches[other], floors[i] * WORD
                oldest = cache.oldest_entry()
                if oldest is not None:
                    _, nbytes = oldest
                    assert cache.current_bytes - nbytes < floor


@settings(max_examples=40, deadline=None)
@given(schedule=_SCHEDULE, budget_words=st.integers(min_value=4, max_value=64))
def test_zero_floors_always_respect_budget(schedule, budget_words):
    """With no floors, the budget holds unconditionally after every
    insert (a single oversized entry is evicted immediately)."""
    broker = TenantCacheBroker(global_budget_bytes=budget_words * WORD)
    caches = [
        broker.create_cache(f"t{i}", capacity=10_000) for i in range(3)
    ]
    for step, (idx, words) in enumerate(schedule):
        _fill(caches[idx], ("k", step), words)
        assert broker.total_bytes() <= budget_words * WORD


@settings(max_examples=40, deadline=None)
@given(schedule=_SCHEDULE)
def test_pressure_victims_are_globally_coldest(schedule):
    """Replay a schedule against a mirror model: every pressure
    eviction must remove the globally-coldest floor-legal entry."""
    budget = 16 * WORD
    broker = TenantCacheBroker(global_budget_bytes=budget)
    caches = [
        broker.create_cache(f"t{i}", capacity=10_000) for i in range(3)
    ]
    #: mirror of resident entries: {tenant: [(tick, nbytes)...]} oldest-first
    model = {i: [] for i in range(3)}
    tick = 0
    for step, (idx, words) in enumerate(schedule):
        tick += 1
        model[idx].append((tick, words * WORD))
        # replay the broker's eviction loop on the mirror
        while sum(nb for rows in model.values() for _, nb in rows) > budget:
            candidates = [
                (rows[0][0], i) for i, rows in model.items() if rows
            ]
            coldest_tick, coldest_tenant = min(candidates)
            model[coldest_tenant].pop(0)
        _fill(caches[idx], ("k", step), words)
        for i in range(3):
            assert len(caches[i]) == len(model[i]), (
                f"step {step}: tenant {i} resident-count diverged from "
                f"the coldest-first model"
            )
