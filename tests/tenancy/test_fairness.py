"""Weighted oldest-deadline fair queueing (start-time fair queueing).

Covers the dispatch guarantees the multi-tenant service builds on:
shares converge to weights over backlogged intervals, a 10:1 offered
load skew cannot starve the light tenant, items within a lane pop in
oldest-deadline order, and an idle lane banks no credit for a later
burst.  The property test checks the classic SFQ fairness bound on
random schedules.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tenancy import WeightedFairQueue


def _backlog(q, tenant, count, deadline=float("inf")):
    for k in range(count):
        q.push(tenant, (tenant, k), deadline=deadline)


def test_shares_converge_to_weights():
    q = WeightedFairQueue()
    q.add_tenant("heavy", 3.0)
    q.add_tenant("light", 1.0)
    _backlog(q, "heavy", 400)
    _backlog(q, "light", 400)
    for _ in range(200):
        assert q.pop() is not None
    heavy, light = q.dispatched("heavy"), q.dispatched("light")
    assert heavy + light == 200
    # 3:1 split within one-dispatch granularity
    assert abs(heavy - 150) <= 2
    assert abs(light - 50) <= 2


def test_no_starvation_under_ten_to_one_skew():
    """Hot tenant offers 10x the load; the cold tenant still gets its
    full fair share while backlogged."""
    q = WeightedFairQueue()
    q.add_tenant("hot", 1.0)
    q.add_tenant("cold", 1.0)
    _backlog(q, "hot", 1000)
    _backlog(q, "cold", 100)
    popped = [q.pop() for _ in range(200)]
    cold = sum(1 for tid, _ in popped if tid == "cold")
    # equal weights -> cold drains at ~1/2 of dispatches until empty
    assert cold >= 95
    # and no long hot-only run while cold is backlogged
    longest_hot_run = run = 0
    for tid, _ in popped:
        run = run + 1 if tid == "hot" else 0
        longest_hot_run = max(longest_hot_run, run)
    assert longest_hot_run <= 3


def test_oldest_deadline_first_within_a_lane():
    q = WeightedFairQueue()
    deadlines = [5.0, 1.0, 3.0, 0.5, 2.0]
    for k, d in enumerate(deadlines):
        q.push("t", ("item", k), deadline=d)
    order = []
    while True:
        entry = q.pop()
        if entry is None:
            break
        order.append(entry[1][1])
    assert order == [3, 1, 4, 2, 0]  # ascending deadline


def test_ties_pop_in_arrival_order():
    q = WeightedFairQueue()
    for k in range(5):
        q.push("t", k)  # all at the default (infinite) deadline
    assert [q.pop()[1] for _ in range(5)] == [0, 1, 2, 3, 4]


def test_idle_lane_banks_no_credit():
    """A lane idle while another runs must re-enter at the current
    epoch, not replay its missed share as a burst."""
    q = WeightedFairQueue()
    q.add_tenant("a", 1.0)
    q.add_tenant("b", 1.0)
    _backlog(q, "a", 500)
    for _ in range(300):
        q.pop()  # a's vtime races ahead while b idles
    _backlog(q, "b", 100)
    first_twenty = [q.pop()[0] for _ in range(20)]
    # fair interleave, not twenty consecutive b dispatches
    assert 8 <= first_twenty.count("b") <= 12


def test_cost_scales_virtual_time():
    """A tenant pushing 4x-cost batches gets 1/4 the dispatches of an
    equal-weight tenant pushing singletons (equal *work* shares)."""
    q = WeightedFairQueue()
    q.add_tenant("batchy", 1.0)
    q.add_tenant("single", 1.0)
    for k in range(100):
        q.push("batchy", ("batchy", 4))
        q.push("single", ("single", 1))
        q.push("single", ("single", 1))
        q.push("single", ("single", 1))
        q.push("single", ("single", 1))
    for _ in range(100):
        q.pop(cost=lambda item: item[1])
    batchy, single = q.dispatched("batchy"), q.dispatched("single")
    assert batchy + single == 100
    assert abs(batchy - 20) <= 2  # 20 batches x cost 4 == 80 singles


def test_auto_add_and_validation():
    q = WeightedFairQueue()
    q.push("new-tenant", "x")  # auto-added at weight 1.0
    assert q.backlog("new-tenant") == 1
    assert q.pop() == ("new-tenant", "x")
    with pytest.raises(ValueError):
        q.add_tenant("bad", 0.0)
    q.add_tenant("t", 2.0)
    with pytest.raises(ValueError):
        q.add_tenant("t", 1.0)


def test_drain_empties_in_fairness_order():
    q = WeightedFairQueue()
    _backlog(q, "a", 3)
    _backlog(q, "b", 3)
    drained = q.drain()
    assert len(drained) == 6 and len(q) == 0
    assert {tid for tid, _ in drained} == {"a", "b"}


@settings(max_examples=60, deadline=None)
@given(
    weights=st.tuples(
        st.floats(min_value=0.5, max_value=8.0),
        st.floats(min_value=0.5, max_value=8.0),
    ),
    pops=st.integers(min_value=10, max_value=300),
)
def test_sfq_fairness_bound(weights, pops):
    """While both lanes stay backlogged, normalized service
    (dispatched / weight) differs by at most one dispatch quantum —
    the SFQ fairness bound for unit-cost items."""
    wa, wb = weights
    q = WeightedFairQueue()
    q.add_tenant("a", wa)
    q.add_tenant("b", wb)
    _backlog(q, "a", pops + 1)
    _backlog(q, "b", pops + 1)
    for _ in range(pops):
        q.pop()
    norm_a = q.dispatched("a") / wa
    norm_b = q.dispatched("b") / wb
    assert abs(norm_a - norm_b) <= 1.0 / wa + 1.0 / wb
