"""Tenant registry: per-tenant sessions, keys, caches and accounting.

The cryptographic-isolation lane is the load-bearing one: two tenants
registered from different key seeds must hold different secret keys,
and decrypting tenant A's ciphertext with tenant B's key must NOT
recover the plaintext.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.he import BFVParams
from repro.tenancy import (
    TenantQuota,
    TenantRegistry,
    TenantSpec,
    UnknownTenantError,
)

PARAMS = BFVParams.test_small(64)


def _registry(**kwargs):
    kwargs.setdefault("params", PARAMS)
    kwargs.setdefault("num_shards", 2)
    return TenantRegistry(
        [TenantSpec.parse("alice:11"), TenantSpec.parse("bob:22:2.0")],
        **kwargs,
    )


# -- spec parsing -------------------------------------------------------------


def test_spec_parse_forms():
    spec = TenantSpec.parse("alice:11")
    assert (spec.tenant_id, spec.key_seed) == ("alice", 11)
    assert spec.quota.share_weight == 1.0
    weighted = TenantSpec.parse("bob:22:2.5")
    assert weighted.quota.share_weight == 2.5
    with pytest.raises(ValueError):
        TenantSpec.parse("no-seed")
    with pytest.raises(ValueError):
        TenantSpec.parse("a:1:2:3")
    with pytest.raises(ValueError):
        TenantSpec(tenant_id="has:colon", key_seed=1)
    with pytest.raises(ValueError):
        TenantSpec(tenant_id="", key_seed=1)


def test_quota_validation():
    with pytest.raises(ValueError):
        TenantQuota(cache_entries=0)
    with pytest.raises(ValueError):
        TenantQuota(share_weight=0.0)
    with pytest.raises(ValueError):
        TenantQuota(cache_floor_bytes=-1)


# -- registration -------------------------------------------------------------


def test_registry_builds_isolated_sessions():
    with _registry() as reg:
        assert len(reg) == 2
        assert set(reg.ids()) == {"alice", "bob"}
        assert "alice" in reg and "mallory" not in reg
        alice, bob = reg.get("alice"), reg.get("bob")
        assert alice.session is not bob.session
        assert alice.session.tenant == "alice"
        assert alice.weight == 1.0 and bob.weight == 2.0
        # per-tenant key seeds forced from the spec: different secrets
        sk_a = alice.session.engine.engine.client.sk.s.coeffs
        sk_b = bob.session.engine.engine.client.sk.s.coeffs
        assert not np.array_equal(sk_a, sk_b)


def test_cross_tenant_decrypt_is_garbage():
    """Tenant B's key cannot decrypt tenant A's ciphertext."""
    with _registry() as reg:
        ctx_a = reg.get("alice").session.engine.engine.client.ctx
        client_a = reg.get("alice").session.engine.engine.client
        client_b = reg.get("bob").session.engine.engine.client
        coeffs = np.arange(PARAMS.n, dtype=np.int64) % PARAMS.t
        ct = ctx_a.encrypt(ctx_a.plaintext(coeffs), client_a.pk)
        own = ctx_a.decrypt(ct, client_a.sk).poly.coeffs
        cross = ctx_a.decrypt(ct, client_b.sk).poly.coeffs
        assert np.array_equal(own, coeffs)
        assert not np.array_equal(cross, coeffs)


def test_cache_wired_into_shared_broker():
    with _registry(global_cache_bytes=1 << 20) as reg:
        assert reg.broker.global_budget_bytes == 1 << 20
        snap = reg.broker.snapshot()
        assert set(snap) == {"alice", "bob"}
        for tenant in reg.tenants():
            assert tenant.cache is not None
            # the engine serves from the broker-registered cache object
            assert tenant.session.engine.engine.cache is tenant.cache
            assert tenant.session.engine.engine.tenant == tenant.tenant_id


def test_duplicate_and_unknown_tenants():
    with _registry() as reg:
        with pytest.raises(ValueError, match="already registered"):
            reg.register(TenantSpec.parse("alice:99"))
        with pytest.raises(UnknownTenantError):
            reg.get("mallory")


def test_failed_register_unwinds_broker_registration():
    reg = TenantRegistry([], params=PARAMS)
    with pytest.raises(Exception):
        reg.register(
            TenantSpec(
                tenant_id="broken",
                key_seed=1,
                engine_kwargs={"num_shards": -4},
            )
        )
    assert "broken" not in reg.broker.snapshot()
    # the id is reusable after the failure
    reg.register(
        TenantSpec(
            tenant_id="broken", key_seed=1, engine_kwargs={"num_shards": 1}
        )
    )
    reg.close_all()


def test_outsource_and_search_per_tenant():
    rng = np.random.default_rng(3)
    with _registry() as reg:
        dbs = {}
        for tenant_id in reg.ids():
            db = rng.integers(0, 2, 2048).astype(np.uint8)
            q = rng.integers(0, 2, 32).astype(np.uint8)
            off = 320 if tenant_id == "alice" else 640
            db[off : off + 32] = q
            reg.outsource(tenant_id, db)
            dbs[tenant_id] = (q, off)
        for tenant_id, (q, off) in dbs.items():
            result = reg.get(tenant_id).session.search(q)
            assert off in result.matches


def test_close_all_idempotent_and_context_manager():
    reg = _registry()
    reg.close_all()
    reg.close_all()  # second call is a no-op
    with pytest.raises(RuntimeError, match="closed"):
        reg.register(TenantSpec.parse("late:7"))


def test_from_spec_and_accounting_snapshot():
    with TenantRegistry.from_spec(
        "a:1,b:2:3.0", params=PARAMS, num_shards=1
    ) as reg:
        assert set(reg.ids()) == {"a", "b"}
        reg.get("a").accounting.record_accepted()
        reg.get("a").accounting.record_completed(0.010)
        rows = reg.accounting_snapshot()
        assert rows["a"]["accepted"] == 1
        assert rows["a"]["completed"] == 1
        assert rows["b"]["weight"] == 3.0
        for row in rows.values():
            assert {"cache_bytes", "cache_floor_bytes",
                    "pressure_evictions"} <= set(row)
    with pytest.raises(ValueError):
        TenantRegistry.from_spec("  ,  ", params=PARAMS)
