"""Unit tests for the Boolean-mode HE context (TFHE stand-in)."""

import numpy as np
import pytest

from repro.he import BFVParams, BooleanContext, GateCostModel, KeyGenerator


@pytest.fixture(scope="module")
def bool_setup(bool_params):
    bctx = BooleanContext(bool_params, seed=31)
    gen = KeyGenerator(bool_params, seed=31)
    sk = gen.secret_key()
    pk = gen.public_key(sk)
    rlk = gen.relin_key(sk)
    return bctx, sk, pk, rlk


class TestBitEncryption:
    def test_roundtrip(self, bool_setup):
        bctx, sk, pk, _ = bool_setup
        for bit in (0, 1):
            ct = bctx.encrypt_bit(bit, pk)
            assert bctx.decrypt_bit(ct, sk) == bit

    def test_vector_roundtrip(self, bool_setup):
        bctx, sk, pk, _ = bool_setup
        bits = [1, 0, 1, 1, 0]
        cts = bctx.encrypt_bits(bits, pk)
        assert list(bctx.decrypt_bits(cts, sk)) == bits

    def test_rejects_non_boolean_params(self):
        with pytest.raises(ValueError):
            BooleanContext(BFVParams.test_small(64))


class TestGates:
    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_xor(self, bool_setup, a, b):
        bctx, sk, pk, _ = bool_setup
        out = bctx.xor(bctx.encrypt_bit(a, pk), bctx.encrypt_bit(b, pk))
        assert bctx.decrypt_bit(out, sk) == a ^ b

    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_xnor(self, bool_setup, a, b):
        bctx, sk, pk, _ = bool_setup
        out = bctx.xnor(bctx.encrypt_bit(a, pk), bctx.encrypt_bit(b, pk))
        assert bctx.decrypt_bit(out, sk) == (1 - (a ^ b))

    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_and(self, bool_setup, a, b):
        bctx, sk, pk, rlk = bool_setup
        out = bctx.and_(bctx.encrypt_bit(a, pk), bctx.encrypt_bit(b, pk), rlk)
        assert bctx.decrypt_bit(out, sk) == (a & b)

    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_or(self, bool_setup, a, b):
        bctx, sk, pk, rlk = bool_setup
        out = bctx.or_(bctx.encrypt_bit(a, pk), bctx.encrypt_bit(b, pk), rlk)
        assert bctx.decrypt_bit(out, sk) == (a | b)

    def test_not(self, bool_setup):
        bctx, sk, pk, _ = bool_setup
        for a in (0, 1):
            out = bctx.not_(bctx.encrypt_bit(a, pk))
            assert bctx.decrypt_bit(out, sk) == 1 - a

    def test_and_reduce_all_ones(self, bool_setup):
        bctx, sk, pk, rlk = bool_setup
        cts = bctx.encrypt_bits([1] * 8, pk)
        assert bctx.decrypt_bit(bctx.and_reduce(cts, rlk), sk) == 1

    def test_and_reduce_with_zero(self, bool_setup):
        bctx, sk, pk, rlk = bool_setup
        cts = bctx.encrypt_bits([1, 1, 1, 0, 1, 1, 1, 1], pk)
        assert bctx.decrypt_bit(bctx.and_reduce(cts, rlk), sk) == 0

    def test_and_reduce_odd_length(self, bool_setup):
        bctx, sk, pk, rlk = bool_setup
        cts = bctx.encrypt_bits([1, 1, 1, 1, 1], pk)
        assert bctx.decrypt_bit(bctx.and_reduce(cts, rlk), sk) == 1

    def test_and_reduce_single(self, bool_setup):
        bctx, sk, pk, rlk = bool_setup
        ct = bctx.encrypt_bits([1], pk)
        assert bctx.decrypt_bit(bctx.and_reduce(ct, rlk), sk) == 1

    def test_and_reduce_empty_raises(self, bool_setup):
        bctx, _, _, rlk = bool_setup
        with pytest.raises(ValueError):
            bctx.and_reduce([], rlk)


class TestGateAccounting:
    def test_counts(self, bool_params):
        bctx = BooleanContext(bool_params, seed=1)
        gen = KeyGenerator(bool_params, seed=1)
        sk = gen.secret_key()
        pk = gen.public_key(sk)
        rlk = gen.relin_key(sk)
        a, b = bctx.encrypt_bit(1, pk), bctx.encrypt_bit(0, pk)
        bctx.xnor(a, b)
        bctx.and_(a, b, rlk)
        bctx.not_(a)
        assert bctx.gate_counts["xnor"] == 1
        assert bctx.gate_counts["and"] == 1
        assert bctx.gate_counts["not"] == 1
        assert bctx.total_gates() == 3
        bctx.reset_gate_counts()
        assert bctx.total_gates() == 0


class TestGateCostModel:
    def test_time_scales_with_gates(self):
        m = GateCostModel()
        assert m.time_for_gates(100) == pytest.approx(100 * m.gate_latency_s)

    def test_batching_divides(self):
        m = GateCostModel()
        assert m.time_for_gates(100, batching=4) == pytest.approx(
            25 * m.gate_latency_s
        )

    def test_batching_floor(self):
        m = GateCostModel()
        assert m.time_for_gates(100, batching=0.5) == m.time_for_gates(100)

    def test_energy(self):
        m = GateCostModel()
        assert m.energy_for_gates(10) == pytest.approx(10 * m.gate_energy_j)
