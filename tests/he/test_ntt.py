"""Unit tests for the NTT engine and the exact-convolution path."""

import numpy as np
import pytest

from repro.he.ntt import (
    NttPlan,
    _schoolbook_negacyclic,
    exact_negacyclic_convolution,
    get_plan,
)
from repro.he.primes import find_ntt_prime


def schoolbook_mod(a, b, n, p):
    exact = _schoolbook_negacyclic(
        np.asarray(a).astype(object), np.asarray(b).astype(object)
    )
    return np.array([int(c) % p for c in exact], dtype=np.int64)


class TestNttPlan:
    @pytest.fixture(scope="class")
    def plan(self):
        n = 16
        p = find_ntt_prime(25, n)
        return NttPlan(n, p)

    def test_forward_inverse_roundtrip(self, plan, rng):
        a = rng.integers(0, plan.p, plan.n, dtype=np.int64)
        assert np.array_equal(plan.inverse(plan.forward(a)), a)

    def test_forward_is_linear(self, plan, rng):
        a = rng.integers(0, plan.p, plan.n, dtype=np.int64)
        b = rng.integers(0, plan.p, plan.n, dtype=np.int64)
        fa, fb = plan.forward(a), plan.forward(b)
        fab = plan.forward((a + b) % plan.p)
        assert np.array_equal(fab, (fa + fb) % plan.p)

    @pytest.mark.parametrize("trial", range(5))
    def test_multiply_matches_schoolbook(self, plan, trial):
        rng = np.random.default_rng(trial)
        a = rng.integers(0, plan.p, plan.n, dtype=np.int64)
        b = rng.integers(0, plan.p, plan.n, dtype=np.int64)
        assert np.array_equal(
            plan.multiply(a, b), schoolbook_mod(a, b, plan.n, plan.p)
        )

    def test_multiply_by_one(self, plan, rng):
        a = rng.integers(0, plan.p, plan.n, dtype=np.int64)
        one = np.zeros(plan.n, dtype=np.int64)
        one[0] = 1
        assert np.array_equal(plan.multiply(a, one), a)

    def test_multiply_by_x_wraps_negacyclically(self, plan):
        # x^(n-1) * x = x^n = -1
        a = np.zeros(plan.n, dtype=np.int64)
        a[plan.n - 1] = 1
        x = np.zeros(plan.n, dtype=np.int64)
        x[1] = 1
        result = plan.multiply(a, x)
        expected = np.zeros(plan.n, dtype=np.int64)
        expected[0] = plan.p - 1  # -1 mod p
        assert np.array_equal(result, expected)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            NttPlan(12, find_ntt_prime(25, 16))

    def test_rejects_unfriendly_prime(self):
        with pytest.raises(ValueError):
            NttPlan(16, 89)  # 89 != 1 mod 32

    def test_rejects_oversized_prime(self):
        with pytest.raises(ValueError):
            NttPlan(16, (1 << 33) + 1)

    def test_plan_cache(self):
        n = 16
        p = find_ntt_prime(25, n)
        assert get_plan(n, p) is get_plan(n, p)


class TestExactConvolution:
    @pytest.mark.parametrize("n", [8, 32, 128])
    def test_matches_schoolbook_unsigned(self, n):
        rng = np.random.default_rng(n)
        a = rng.integers(0, 1 << 32, n).astype(np.int64)
        b = rng.integers(0, 1 << 32, n).astype(np.int64)
        got = exact_negacyclic_convolution(a, b)
        exp = _schoolbook_negacyclic(a.astype(object), b.astype(object))
        assert all(int(x) == int(y) for x, y in zip(got, exp))

    def test_matches_schoolbook_signed(self):
        rng = np.random.default_rng(7)
        n = 16
        a = rng.integers(-(1 << 31), 1 << 31, n).astype(np.int64)
        b = rng.integers(-(1 << 31), 1 << 31, n).astype(np.int64)
        got = exact_negacyclic_convolution(a, b)
        exp = _schoolbook_negacyclic(a.astype(object), b.astype(object))
        assert all(int(x) == int(y) for x, y in zip(got, exp))

    def test_result_is_exact_integer(self):
        n = 8
        a = np.full(n, (1 << 32) - 1, dtype=np.int64)
        got = exact_negacyclic_convolution(a, a)
        # peak positive coefficient: alternating sum bounded by n * max^2
        assert all(abs(int(c)) < n * (1 << 64) for c in got)

    def test_zero_operand(self):
        n = 8
        a = np.arange(n, dtype=np.int64)
        z = np.zeros(n, dtype=np.int64)
        assert all(int(c) == 0 for c in exact_negacyclic_convolution(a, z))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            exact_negacyclic_convolution(np.zeros(8), np.zeros(16))

    def test_oversized_falls_back_to_schoolbook(self):
        # magnitudes beyond the CRT bound must still be exact
        n = 8
        a = np.array([1 << 62] * n, dtype=object)
        b = np.array([1 << 62] * n, dtype=object)
        got = exact_negacyclic_convolution(a, b)
        exp = _schoolbook_negacyclic(a, b)
        assert all(int(x) == int(y) for x, y in zip(got, exp))


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
