"""Unit tests for BFV parameter sets."""

import pytest

from repro.he.params import HE_STANDARD_MAX_LOGQ_128, BFVParams, SecurityReport


class TestPaperParams:
    def test_paper_values(self):
        p = BFVParams.paper()
        assert p.n == 1024
        assert p.q == 1 << 32
        assert p.t == 1 << 16

    def test_delta_exact(self):
        p = BFVParams.paper()
        assert p.delta == 1 << 16
        assert p.delta * p.t == p.q

    def test_packs_16_bits_per_coeff(self):
        assert BFVParams.paper().plaintext_bits_per_coeff == 16

    def test_expansion_factor_is_4x(self):
        # the paper's headline: encrypted data is 4x the packed plaintext
        assert BFVParams.paper().expansion_factor == pytest.approx(4.0)

    def test_ciphertext_bytes(self):
        p = BFVParams.paper()
        # 2 polynomials x 1024 coefficients x 33-bit -> 5 bytes each
        assert p.ciphertext_bytes == 2 * 1024 * ((p.log_q + 7) // 8)

    def test_paper_set_trades_security_for_presentation(self):
        # n=1024 allows log q <= 27 at 128 bits; the paper set uses 33
        assert not BFVParams.paper().meets_128_bit_security()

    def test_secure_preset_meets_standard(self):
        assert BFVParams.paper_secure().meets_128_bit_security()


class TestValidation:
    def test_rejects_non_power_of_two_n(self):
        with pytest.raises(ValueError):
            BFVParams(n=100, q=1 << 32, t=1 << 16)

    def test_rejects_tiny_t(self):
        with pytest.raises(ValueError):
            BFVParams(n=64, q=1 << 32, t=1)

    def test_rejects_q_below_t(self):
        with pytest.raises(ValueError):
            BFVParams(n=64, q=256, t=1024)


class TestPresets:
    def test_test_small_shares_packing(self):
        p = BFVParams.test_small(64)
        assert p.n == 64
        assert p.plaintext_bits_per_coeff == 16
        assert p.expansion_factor == pytest.approx(4.0)

    def test_arithmetic_baseline_has_mult_headroom(self):
        p = BFVParams.arithmetic_baseline(n=256, t=1024)
        assert p.q > p.t * (1 << 20)  # plenty of noise budget

    def test_boolean_baseline_t2(self):
        assert BFVParams.boolean_baseline(n=128).t == 2

    def test_frozen(self):
        p = BFVParams.paper()
        with pytest.raises(AttributeError):
            p.n = 2048


class TestSecurityReport:
    def test_within_standard(self):
        rep = SecurityReport(BFVParams.paper_secure())
        assert rep.within_standard
        assert "within" in rep.describe()

    def test_exceeds_standard(self):
        rep = SecurityReport(BFVParams.paper())
        assert not rep.within_standard
        assert "EXCEEDS" in rep.describe()

    def test_unknown_ring_dimension(self):
        rep = SecurityReport(BFVParams(n=64, q=1 << 32, t=1 << 16))
        assert not rep.within_standard
        assert "not in" in rep.describe()

    def test_table_covers_standard_dimensions(self):
        assert set(HE_STANDARD_MAX_LOGQ_128) == {1024, 2048, 4096, 8192, 16384, 32768}
