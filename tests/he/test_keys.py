"""Unit tests for key generation and key-switching material."""

import numpy as np
import pytest

from repro.he import BFVContext, BFVParams, KeyGenerator, generate_keys


class TestKeyGenerator:
    def test_secret_key_is_ternary(self, small_params):
        sk = KeyGenerator(small_params, seed=1).secret_key()
        assert all(int(c) in (-1, 0, 1) for c in sk.s.centered())

    def test_public_key_relation(self, small_params):
        # pk0 + pk1*s = -e (small)
        gen = KeyGenerator(small_params, seed=2)
        sk = gen.secret_key()
        pk = gen.public_key(sk)
        residual = pk.pk0 + pk.pk1 * sk.s
        assert residual.infinity_norm() < 10 * small_params.sigma

    def test_seeded_generation_reproducible(self, small_params):
        sk1 = KeyGenerator(small_params, seed=3).secret_key()
        sk2 = KeyGenerator(small_params, seed=3).secret_key()
        assert sk1.s == sk2.s

    def test_different_seeds_differ(self, small_params):
        sk1 = KeyGenerator(small_params, seed=4).secret_key()
        sk2 = KeyGenerator(small_params, seed=5).secret_key()
        assert sk1.s != sk2.s

    def test_relin_key_digit_count(self, mult_params):
        gen = KeyGenerator(mult_params, seed=6)
        rlk = gen.relin_key(gen.secret_key(), base_bits=16)
        expected = (mult_params.q.bit_length() + 15) // 16
        assert rlk.num_digits == expected

    def test_relin_key_components_decrypt_to_powers_of_s_squared(self, mult_params):
        gen = KeyGenerator(mult_params, seed=7)
        sk = gen.secret_key()
        rlk = gen.relin_key(sk, base_bits=16)
        s2 = sk.s * sk.s
        for i, (body, a) in enumerate(rlk.components):
            power = pow(1 << 16, i, mult_params.q)
            residual = body + a * sk.s - s2.scalar_mul(power)
            assert residual.infinity_norm() < 10 * mult_params.sigma, f"digit {i}"

    def test_galois_key_exponents(self, mult_params):
        gen = KeyGenerator(mult_params, seed=8)
        glk = gen.galois_key(gen.secret_key(), [3, 5])
        assert glk.supports(3) and glk.supports(5)
        assert not glk.supports(7)

    def test_galois_key_rejects_even_exponent(self, mult_params):
        gen = KeyGenerator(mult_params, seed=9)
        with pytest.raises(ValueError):
            gen.galois_key(gen.secret_key(), [2])


class TestGaloisOperation:
    @pytest.fixture(scope="class")
    def setup(self):
        params = BFVParams.arithmetic_baseline(n=64, t=256)
        ctx = BFVContext(params, seed=10)
        gen = KeyGenerator(params, seed=10)
        sk = gen.secret_key()
        pk = gen.public_key(sk)
        glk = gen.galois_key(sk, [3, 2 * 64 - 1])
        return params, ctx, sk, pk, glk

    def test_automorphism_matches_plaintext(self, setup):
        params, ctx, sk, pk, glk = setup
        m = np.arange(params.n) % params.t
        ct = ctx.encrypt(ctx.plaintext(m), pk)
        out = ctx.decrypt(ctx.apply_galois(ct, 3, glk), sk)
        expected = ctx.plain_ring.make(m).automorphism(3)
        assert np.array_equal(out.poly.coeffs, expected.coeffs)

    def test_conjugation_exponent(self, setup):
        params, ctx, sk, pk, glk = setup
        k = 2 * params.n - 1  # the "complex conjugation" automorphism
        m = np.arange(params.n) % params.t
        ct = ctx.encrypt(ctx.plaintext(m), pk)
        out = ctx.decrypt(ctx.apply_galois(ct, k, glk), sk)
        expected = ctx.plain_ring.make(m).automorphism(k)
        assert np.array_equal(out.poly.coeffs, expected.coeffs)

    def test_missing_key_raises(self, setup):
        _, ctx, _, pk, glk = setup
        ct = ctx.encrypt(ctx.plaintext(np.zeros(64, dtype=np.int64)), pk)
        with pytest.raises(ValueError):
            ctx.apply_galois(ct, 5, glk)


class TestGenerateKeysHelper:
    def test_minimal(self, small_params):
        sk, pk, rlk, glk = generate_keys(small_params, seed=1)
        assert sk is not None and pk is not None
        assert rlk is None and glk is None

    def test_with_relin_and_galois(self, mult_params):
        sk, pk, rlk, glk = generate_keys(
            mult_params, seed=1, relin=True, galois_exponents=[3]
        )
        assert rlk is not None
        assert glk is not None and glk.supports(3)
