"""Property-based cross-backend parity for the polynomial ring.

The vectorized RNS/NTT backend must be *bit-for-bit* equal to the
reference big-int backend on every ring operation, for every supported
modulus shape: tiny moduli, the paper's power-of-two ``q = 2**32``,
native NTT primes, odd composite moduli, and moduli near the 2**62
support cap where the RNS limb count is largest (5 limbs) and the
int64-safe scalar kernels are exercised hardest.

Deterministic seeds + a hypothesis layer: the parametrized grid pins the
regimes we know are structurally different; hypothesis explores the gaps.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he.backend import (
    ReferenceBackend,
    VectorizedBackend,
    get_rns_basis,
    mulmod_scalar,
    resolve_backend,
    set_default_backend,
)
from repro.he.poly import RingContext
from repro.he.primes import find_ntt_prime

# Moduli chosen to hit every backend regime:
#   2                — minimal ring, single limb
#   97               — small prime, but NOT NTT-friendly for these n
#   12289            — native NTT prime (single native limb, no Garner)
#   2**32            — the paper's modulus (3 limbs, direct fold)
#   2**40 + 123      — odd composite above the direct-fold threshold
#   2**62 - 57       — near the support cap: 5 limbs, ladder/float kernels
MODULI = [
    2,
    97,
    12289,
    1 << 32,
    (1 << 40) + 123,
    (1 << 62) - 57,
]
DEGREES = [8, 64]


def _rings(n: int, q: int) -> tuple[RingContext, RingContext]:
    return (
        RingContext(n, q, backend="reference"),
        RingContext(n, q, backend="vectorized"),
    )


def _random_pair(ref, vec, rng):
    coeffs = rng.integers(0, ref.q, size=ref.n, dtype=np.int64)
    return ref.make(coeffs), vec.make(coeffs)


@pytest.mark.parametrize("n", DEGREES)
@pytest.mark.parametrize("q", MODULI)
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestBackendParity:
    def test_mul(self, n, q, seed):
        ref, vec = _rings(n, q)
        rng = np.random.default_rng(seed)
        ra, va = _random_pair(ref, vec, rng)
        rb, vb = _random_pair(ref, vec, rng)
        expected = (ra * rb).coeffs
        got = (va * vb).coeffs
        assert got.dtype == np.int64
        assert np.array_equal(expected, got)
        # Second product hits the cached NTT transforms; it must be
        # identical to the uncached one.
        assert np.array_equal(expected, (va * vb).coeffs)

    def test_add_sub_neg(self, n, q, seed):
        ref, vec = _rings(n, q)
        rng = np.random.default_rng(seed)
        ra, va = _random_pair(ref, vec, rng)
        rb, vb = _random_pair(ref, vec, rng)
        assert np.array_equal((ra + rb).coeffs, (va + vb).coeffs)
        assert np.array_equal((ra - rb).coeffs, (va - vb).coeffs)
        assert np.array_equal((-ra).coeffs, (-va).coeffs)

    def test_scalar_mul(self, n, q, seed):
        ref, vec = _rings(n, q)
        rng = np.random.default_rng(seed)
        ra, va = _random_pair(ref, vec, rng)
        for scalar in (0, 1, q - 1, int(rng.integers(0, q)), q + 7, -3):
            assert np.array_equal(
                ra.scalar_mul(scalar).coeffs, va.scalar_mul(scalar).coeffs
            ), f"scalar={scalar}"

    def test_shift(self, n, q, seed):
        ref, vec = _rings(n, q)
        rng = np.random.default_rng(seed)
        ra, va = _random_pair(ref, vec, rng)
        for degree in (0, 1, n - 1, n, 2 * n - 1, -1, 3 * n + 2):
            assert np.array_equal(
                ra.shift(degree).coeffs, va.shift(degree).coeffs
            ), f"degree={degree}"

    def test_automorphism(self, n, q, seed):
        ref, vec = _rings(n, q)
        rng = np.random.default_rng(seed)
        ra, va = _random_pair(ref, vec, rng)
        for k in (1, 3, 5, n + 1, 2 * n - 1, 4 * n + 3):
            assert np.array_equal(
                ra.automorphism(k).coeffs, va.automorphism(k).coeffs
            ), f"k={k}"

    def test_centered_and_lift(self, n, q, seed):
        ref, vec = _rings(n, q)
        rng = np.random.default_rng(seed)
        ra, va = _random_pair(ref, vec, rng)
        assert np.array_equal(ra.centered(), va.centered())
        for m in (2, 17, 1 << 16):
            assert np.array_equal(ra.lift_mod(m), va.lift_mod(m))

    def test_make_object_dtype(self, n, q, seed):
        ref, vec = _rings(n, q)
        rng = np.random.default_rng(seed)
        big = [(int(x) << 70) + int(y) for x, y in zip(
            rng.integers(0, 1 << 30, size=n), rng.integers(0, 1 << 30, size=n)
        )]
        obj = np.array(big, dtype=object)
        rp, vp = ref.make(obj), vec.make(obj)
        assert rp.coeffs.dtype == np.int64
        assert np.array_equal(rp.coeffs, vp.coeffs)
        assert np.array_equal(rp.coeffs, np.array([b % q for b in big]))


#: Rings large enough to take the four-step (BLAS matmul) transform, plus
#: the regimes at its boundary: a native prime in [2**30, 2**31) must
#: route to the stacked butterflies (the float64 exactness bound needs
#: limbs < 2**30), while a sub-2**30 native prime rides the four-step.
LARGE_RING_CASES = [
    (4096, 1 << 32),  # paper modulus: 3-limb four-step
    (256, (1 << 62) - 57),  # 5-limb four-step near the support cap
    (4096, find_ntt_prime(31, 8192)),  # native >= 2**30: stacked
    (4096, find_ntt_prime(29, 8192)),  # native < 2**30: four-step
]


@pytest.mark.parametrize("n,q", LARGE_RING_CASES)
def test_large_ring_parity(n, q):
    ref, vec = _rings(n, q)
    rng = np.random.default_rng(9)
    # Top-biased operands maximize the transform partial sums — the
    # adversarial input for the float64 matmul exactness bound.
    coeffs_a = q - 1 - rng.integers(0, 1 << 16, size=n, dtype=np.int64)
    coeffs_b = q - 1 - rng.integers(0, 1 << 16, size=n, dtype=np.int64)
    ra, rb = ref.make(coeffs_a), ref.make(coeffs_b)
    va, vb = vec.make(coeffs_a), vec.make(coeffs_b)
    expected = (ra * rb).coeffs
    assert np.array_equal(expected, (va * vb).coeffs)
    assert np.array_equal(expected, (va * vb).coeffs)  # cached transforms
    rc = rng.integers(0, q, size=n, dtype=np.int64)
    ru, vu = ref.make(rc), vec.make(rc)
    assert np.array_equal((ra * ru).coeffs, (va * vu).coeffs)
    assert np.array_equal(
        ra.automorphism(2 * n - 1).coeffs, va.automorphism(2 * n - 1).coeffs
    )


class TestMulmodScalarKernel:
    """The int64-safe modular kernel under each of its three regimes."""

    @pytest.mark.parametrize(
        "q", [(1 << 32), (1 << 49) + 9, (1 << 62) - 57]
    )
    def test_matches_bigint(self, q):
        rng = np.random.default_rng(5)
        vec = rng.integers(0, q, size=257, dtype=np.int64)
        for scalar in (0, 1, 2, q - 1, q // 3, int(rng.integers(0, q))):
            got = mulmod_scalar(vec, scalar, q)
            expected = np.array(
                [int(v) * scalar % q for v in vec], dtype=np.int64
            )
            assert np.array_equal(got, expected), f"q={q} scalar={scalar}"

    def test_small_vector_values_hint(self):
        q = (1 << 62) - 57
        rng = np.random.default_rng(6)
        vec = rng.integers(0, 1 << 30, size=64, dtype=np.int64)
        scalar = q - 12345
        got = mulmod_scalar(vec, scalar, q, vec_bits=30)
        expected = np.array([int(v) * scalar % q for v in vec], dtype=np.int64)
        assert np.array_equal(got, expected)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.sampled_from([8, 16, 32]),
    q=st.one_of(
        st.integers(2, 1 << 20),
        st.integers((1 << 31) - 64, (1 << 31) + 64),
        st.integers((1 << 62) - 4096, (1 << 62) - 1),
    ),
)
def test_backend_parity_fuzz(seed, n, q):
    """Hypothesis sweep: random moduli (including just around the int64
    safety boundaries) with random operands; mul/scalar_mul/automorphism
    must agree bit-for-bit."""
    ref, vec = _rings(n, q)
    rng = np.random.default_rng(seed)
    ra, va = _random_pair(ref, vec, rng)
    rb, vb = _random_pair(ref, vec, rng)
    assert np.array_equal((ra * rb).coeffs, (va * vb).coeffs)
    scalar = int(rng.integers(0, q))
    assert np.array_equal(ra.scalar_mul(scalar).coeffs, va.scalar_mul(scalar).coeffs)
    k = 2 * int(rng.integers(0, 2 * n)) + 1
    assert np.array_equal(ra.automorphism(k).coeffs, va.automorphism(k).coeffs)


class TestBackendSelection:
    def test_default_is_vectorized(self, monkeypatch):
        monkeypatch.delenv("REPRO_POLY_BACKEND", raising=False)
        ring = RingContext(16, 1 << 32)
        assert ring.backend_name == "vectorized"

    def test_explicit_instance(self):
        backend = ReferenceBackend(16, 257)
        ring = RingContext(16, 257, backend=backend)
        assert ring.backend is backend

    def test_instance_shape_mismatch_rejected(self):
        backend = VectorizedBackend(16, 257)
        with pytest.raises(ValueError, match="bound to"):
            RingContext(32, 257, backend=backend)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown poly backend"):
            RingContext(16, 257, backend="simd")

    def test_set_default_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_POLY_BACKEND", raising=False)
        try:
            set_default_backend("reference")
            assert RingContext(16, 257).backend_name == "reference"
        finally:
            set_default_backend(None)
        assert RingContext(16, 257).backend_name == "vectorized"

    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_POLY_BACKEND", "reference")
        assert RingContext(16, 257).backend_name == "reference"
        monkeypatch.setenv("REPRO_POLY_BACKEND", "bogus")
        with pytest.raises(ValueError, match="REPRO_POLY_BACKEND"):
            RingContext(16, 257)

    def test_resolve_backend_roundtrip(self):
        backend = resolve_backend("vectorized", 8, 17)
        assert resolve_backend(backend, 8, 17) is backend


class TestNttCaching:
    def test_cache_populated_and_reused(self):
        ring = RingContext(64, 1 << 32, backend="vectorized")
        rng = np.random.default_rng(3)
        a = ring.random_uniform(rng)
        b = ring.random_uniform(rng)
        assert a._ntt is None
        first = a * b
        assert a._ntt is not None and b._ntt is not None
        cached = a._ntt
        second = a * b
        assert a._ntt is cached  # reused, not recomputed
        assert first == second

    def test_cache_shared_across_equal_rings(self):
        # Bases are lru-cached per (n, q), so a poly transformed in one
        # context reuses its cache in another equal context.
        r1 = RingContext(64, 1 << 32, backend="vectorized")
        r2 = RingContext(64, 1 << 32, backend="vectorized")
        assert get_rns_basis(64, 1 << 32) is get_rns_basis(64, 1 << 32)
        rng = np.random.default_rng(4)
        a = r1.random_uniform(rng)
        b = r1.random_uniform(rng)
        _ = a * b
        cached = a._ntt
        _ = r2.backend.mul_poly(a, b)
        assert a._ntt is cached

    def test_copy_does_not_share_cache(self):
        ring = RingContext(64, 1 << 32, backend="vectorized")
        rng = np.random.default_rng(5)
        a = ring.random_uniform(rng)
        b = ring.random_uniform(rng)
        _ = a * b
        assert a.copy()._ntt is None
