"""Unit tests for the three packing encoders."""

import numpy as np
import pytest

from repro.he import (
    BFVContext,
    BFVParams,
    BitPackEncoder,
    ChunkPackEncoder,
    SingleBitEncoder,
)
from repro.utils.bits import random_bits


@pytest.fixture(scope="module")
def ctx():
    return BFVContext(BFVParams.test_small(64), seed=1)


class TestChunkPackEncoder:
    def test_roundtrip(self, ctx, rng):
        enc = ChunkPackEncoder(ctx)
        bits = random_bits(500, rng)
        assert np.array_equal(enc.decode(enc.encode(bits)), bits)

    def test_roundtrip_multiple_polynomials(self, ctx, rng):
        enc = ChunkPackEncoder(ctx)
        bits = random_bits(3 * enc.bits_per_polynomial + 17, rng)
        msg = enc.encode(bits)
        assert msg.num_polynomials == 4
        assert np.array_equal(enc.decode(msg), bits)

    def test_default_width_is_16(self, ctx):
        assert ChunkPackEncoder(ctx).chunk_width == 16

    def test_custom_width(self, ctx, rng):
        enc = ChunkPackEncoder(ctx, chunk_width=8)
        bits = random_bits(100, rng)
        assert np.array_equal(enc.decode(enc.encode(bits)), bits)

    def test_width_bounds(self, ctx):
        with pytest.raises(ValueError):
            ChunkPackEncoder(ctx, chunk_width=17)
        with pytest.raises(ValueError):
            ChunkPackEncoder(ctx, chunk_width=0)

    def test_packing_layout(self, ctx):
        # the first 16 bits become coefficient 0, MSB first (paper Eq. 5)
        enc = ChunkPackEncoder(ctx)
        bits = np.zeros(32, dtype=np.uint8)
        bits[0] = 1  # MSB of chunk 0 -> 0x8000
        bits[31] = 1  # LSB of chunk 1 -> 0x0001
        msg = enc.encode(bits)
        coeffs = msg.plaintexts[0].poly.coeffs
        assert int(coeffs[0]) == 0x8000
        assert int(coeffs[1]) == 0x0001

    def test_empty_input(self, ctx):
        enc = ChunkPackEncoder(ctx)
        msg = enc.encode(np.zeros(0, dtype=np.uint8))
        assert msg.num_polynomials == 1
        assert len(enc.decode(msg)) == 0

    def test_encoded_bytes_accounting(self, ctx):
        enc = ChunkPackEncoder(ctx)
        one_poly_bits = enc.bits_per_polynomial
        assert enc.encoded_bytes(one_poly_bits) == ctx.params.plaintext_bytes
        assert enc.encoded_bytes(one_poly_bits + 1) == 2 * ctx.params.plaintext_bytes

    def test_bits_per_polynomial(self, ctx):
        assert ChunkPackEncoder(ctx).bits_per_polynomial == 64 * 16


class TestBitPackEncoder:
    def test_roundtrip(self, ctx, rng):
        enc = BitPackEncoder(ctx)
        bits = random_bits(200, rng)
        assert np.array_equal(enc.decode(enc.encode(bits)), bits)

    def test_one_bit_per_coefficient(self, ctx):
        enc = BitPackEncoder(ctx)
        bits = np.array([1, 0, 1, 1], dtype=np.uint8)
        msg = enc.encode(bits)
        assert list(msg.plaintexts[0].poly.coeffs[:4]) == [1, 0, 1, 1]

    def test_16x_denser_than_chunked(self, ctx):
        assert (
            ChunkPackEncoder(ctx).bits_per_polynomial
            == 16 * BitPackEncoder(ctx).bits_per_polynomial
        )

    def test_reversed_encoding_structure(self, ctx):
        enc = BitPackEncoder(ctx)
        bits = np.array([1, 0, 1], dtype=np.uint8)
        pt = enc.encode_reversed(bits)
        n, t = ctx.params.n, ctx.params.t
        assert int(pt.poly.coeffs[0]) == 1  # b0 at x^0
        assert int(pt.poly.coeffs[n - 2]) == (t - 1) % t  # -b2 at x^(n-2)
        assert int(pt.poly.coeffs[n - 1]) == 0  # b1 = 0

    def test_reversed_encoding_rejects_long_query(self, ctx):
        enc = BitPackEncoder(ctx)
        with pytest.raises(ValueError):
            enc.encode_reversed(np.ones(ctx.params.n + 1, dtype=np.uint8))

    def test_reversed_correlation_property(self, ctx, rng):
        # d(x) * qrev(x) coefficient k == correlation at alignment k
        enc = BitPackEncoder(ctx)
        n = ctx.params.n
        d_bits = random_bits(n, rng)
        q_bits = random_bits(5, rng)
        d_poly = ctx.plain_ring.make(d_bits.astype(np.int64))
        q_poly = enc.encode_reversed(q_bits).poly
        product = d_poly * q_poly
        for k in range(0, n - 5):
            expected = int(np.dot(d_bits[k : k + 5], q_bits))
            assert int(product.coeffs[k]) == expected % ctx.params.t


class TestSingleBitEncoder:
    @pytest.fixture(scope="class")
    def bctx(self, bool_params):
        return BFVContext(bool_params, seed=2)

    def test_requires_t2(self, ctx):
        with pytest.raises(ValueError):
            SingleBitEncoder(ctx)

    def test_roundtrip(self, bctx, rng):
        enc = SingleBitEncoder(bctx)
        bits = random_bits(20, rng)
        assert np.array_equal(enc.decode(enc.encode(bits)), bits)

    def test_one_plaintext_per_bit(self, bctx):
        enc = SingleBitEncoder(bctx)
        assert len(enc.encode(np.array([1, 0, 1], dtype=np.uint8))) == 3
