"""Unit tests for the wire-format serialization."""

import numpy as np
import pytest

from repro.he import (
    BFVContext,
    BFVParams,
    KeyGenerator,
    deserialize_ciphertext,
    deserialize_plaintext,
    deserialize_public_key,
    deserialize_secret_key,
    serialize_ciphertext,
    serialize_plaintext,
    serialize_public_key,
    serialize_secret_key,
)


@pytest.fixture(scope="module")
def setup():
    params = BFVParams.test_small(64)
    ctx = BFVContext(params, seed=61)
    gen = KeyGenerator(params, seed=61)
    sk = gen.secret_key()
    pk = gen.public_key(sk)
    return params, ctx, sk, pk


class TestCiphertextSerialization:
    def test_roundtrip(self, setup, rng):
        params, ctx, sk, pk = setup
        m = rng.integers(0, params.t, params.n, dtype=np.int64)
        ct = ctx.encrypt(ctx.plaintext(m), pk)
        restored = deserialize_ciphertext(serialize_ciphertext(ct), ctx)
        assert restored == ct
        assert np.array_equal(ctx.decrypt(restored, sk).poly.coeffs, m)

    def test_serialized_size_matches_accounting(self, setup, rng):
        params, ctx, _, pk = setup
        m = rng.integers(0, params.t, params.n, dtype=np.int64)
        ct = ctx.encrypt(ctx.plaintext(m), pk)
        blob = serialize_ciphertext(ct)
        header = 26  # magic(4) + kind(1) + n(4) + q(8) + t(8) + count(1)
        assert len(blob) == header + params.ciphertext_bytes

    def test_size3_ciphertext(self, setup):
        # serialize an (artificially) size-3 ciphertext
        params, ctx, _, pk = setup
        m = np.zeros(params.n, dtype=np.int64)
        ct = ctx.encrypt(ctx.plaintext(m), pk)
        from repro.he.bfv import Ciphertext

        big = Ciphertext(params, ct.c0, ct.c1, ct.c1.copy())
        restored = deserialize_ciphertext(serialize_ciphertext(big), ctx)
        assert restored.size == 3
        assert restored.c2 == big.c2

    def test_homomorphic_add_after_roundtrip(self, setup, rng):
        """The protocol use case: server deserializes and computes."""
        params, ctx, sk, pk = setup
        m1 = rng.integers(0, params.t, params.n, dtype=np.int64)
        m2 = rng.integers(0, params.t, params.n, dtype=np.int64)
        blob1 = serialize_ciphertext(ctx.encrypt(ctx.plaintext(m1), pk))
        blob2 = serialize_ciphertext(ctx.encrypt(ctx.plaintext(m2), pk))
        result = ctx.add(
            deserialize_ciphertext(blob1, ctx), deserialize_ciphertext(blob2, ctx)
        )
        assert np.array_equal(
            ctx.decrypt(result, sk).poly.coeffs, (m1 + m2) % params.t
        )

    def test_rejects_wrong_kind(self, setup):
        params, ctx, sk, _ = setup
        blob = serialize_secret_key(sk)
        with pytest.raises(ValueError):
            deserialize_ciphertext(blob, ctx)

    def test_rejects_bad_magic(self, setup):
        _, ctx, _, _ = setup
        with pytest.raises(ValueError):
            deserialize_ciphertext(b"XXXX" + bytes(40), ctx)

    def test_rejects_truncation(self, setup, rng):
        params, ctx, _, pk = setup
        m = rng.integers(0, params.t, params.n, dtype=np.int64)
        blob = serialize_ciphertext(ctx.encrypt(ctx.plaintext(m), pk))
        with pytest.raises(ValueError):
            deserialize_ciphertext(blob[:-3], ctx)

    def test_rejects_parameter_mismatch(self, setup, rng):
        params, ctx, _, pk = setup
        m = rng.integers(0, params.t, params.n, dtype=np.int64)
        blob = serialize_ciphertext(ctx.encrypt(ctx.plaintext(m), pk))
        other_ctx = BFVContext(BFVParams.test_small(128), seed=1)
        with pytest.raises(ValueError):
            deserialize_ciphertext(blob, other_ctx)


class TestPlaintextSerialization:
    def test_roundtrip(self, setup, rng):
        params, ctx, _, _ = setup
        pt = ctx.plaintext(rng.integers(0, params.t, params.n, dtype=np.int64))
        restored = deserialize_plaintext(serialize_plaintext(pt), ctx)
        assert np.array_equal(restored.poly.coeffs, pt.poly.coeffs)

    def test_compact_coefficients(self, setup):
        params, ctx, _, _ = setup
        pt = ctx.plaintext(np.zeros(params.n, dtype=np.int64))
        blob = serialize_plaintext(pt)
        # plaintext coefficients are 16-bit: 2 bytes each
        assert len(blob) == 26 + params.n * 2


class TestKeySerialization:
    def test_secret_key_roundtrip(self, setup):
        _, ctx, sk, _ = setup
        restored = deserialize_secret_key(serialize_secret_key(sk), ctx)
        assert restored.s == sk.s

    def test_public_key_roundtrip_and_usability(self, setup, rng):
        params, ctx, sk, pk = setup
        restored = deserialize_public_key(serialize_public_key(pk), ctx)
        m = rng.integers(0, params.t, params.n, dtype=np.int64)
        ct = ctx.encrypt(ctx.plaintext(m), restored)
        assert np.array_equal(ctx.decrypt(ct, sk).poly.coeffs, m)

    def test_kind_confusion_rejected(self, setup):
        _, ctx, sk, pk = setup
        with pytest.raises(ValueError):
            deserialize_public_key(serialize_secret_key(sk), ctx)
        with pytest.raises(ValueError):
            deserialize_secret_key(serialize_public_key(pk), ctx)
