"""Unit tests for the number-theory helpers."""

import pytest

from repro.he.primes import (
    find_ntt_prime,
    find_ntt_primes,
    is_prime,
    mod_inverse,
    primitive_root,
    root_of_unity,
)


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 7919):
            assert is_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 6, 9, 15, 91, 7917):
            assert not is_prime(n)

    def test_negative(self):
        assert not is_prime(-7)

    def test_carmichael_numbers(self):
        # classic Fermat pseudoprimes must be rejected
        for n in (561, 1105, 1729, 2465, 6601):
            assert not is_prime(n)

    def test_large_prime(self):
        assert is_prime(2**31 - 1)  # Mersenne prime

    def test_large_composite(self):
        assert not is_prime((2**31 - 1) * 3)

    def test_witness_values_are_prime(self):
        # the witnesses themselves go through the early-exit path
        for w in (2, 3, 5, 37):
            assert is_prime(w)


class TestFindNttPrime:
    @pytest.mark.parametrize("n", [64, 256, 1024, 2048])
    def test_congruence(self, n):
        p = find_ntt_prime(30, n)
        assert is_prime(p)
        assert p % (2 * n) == 1
        assert p < 1 << 30

    def test_below_cap(self):
        p1 = find_ntt_prime(30, 64)
        p2 = find_ntt_prime(30, 64, below=p1)
        assert p2 < p1
        assert is_prime(p2)
        assert p2 % 128 == 1

    def test_distinct_primes(self):
        primes = find_ntt_primes(30, 128, 3)
        assert len(set(primes)) == 3
        for p in primes:
            assert is_prime(p)
            assert p % 256 == 1

    def test_impossible_raises(self):
        with pytest.raises(ValueError):
            find_ntt_prime(4, 1024)  # no 4-bit prime = 1 mod 2048


class TestRoots:
    def test_primitive_root_order(self):
        p = 97
        g = primitive_root(p)
        seen = {pow(g, k, p) for k in range(p - 1)}
        assert len(seen) == p - 1

    def test_primitive_root_requires_prime(self):
        with pytest.raises(ValueError):
            primitive_root(100)

    @pytest.mark.parametrize("order", [2, 4, 8, 16])
    def test_root_of_unity_order(self, order):
        p = find_ntt_prime(20, order)  # p = 1 mod 2*order
        w = root_of_unity(order, p)
        assert pow(w, order, p) == 1
        assert pow(w, order // 2, p) != 1

    def test_root_of_unity_divisibility_check(self):
        with pytest.raises(ValueError):
            root_of_unity(7, 17)  # 7 does not divide 16


class TestModInverse:
    @pytest.mark.parametrize("a,m", [(3, 7), (10, 17), (12345, 2**31 - 1)])
    def test_inverse(self, a, m):
        inv = mod_inverse(a, m)
        assert a * inv % m == 1

    def test_non_invertible(self):
        with pytest.raises(ValueError):
            mod_inverse(6, 9)

    def test_inverse_of_one(self):
        assert mod_inverse(1, 97) == 1
