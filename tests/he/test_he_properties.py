"""Property-based tests (hypothesis) for the HE substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he import BFVContext, BFVParams, ChunkPackEncoder, KeyGenerator
from repro.he.poly import RingContext
from repro.utils.bits import bits_to_int, chunk_bits, int_to_bits, unchunk_bits

PARAMS = BFVParams.test_small(16)
CTX = BFVContext(PARAMS, seed=1)
GEN = KeyGenerator(PARAMS, seed=1)
SK = GEN.secret_key()
PK = GEN.public_key(SK)
RING = RingContext(16, (1 << 32))

coeff_vectors = st.lists(
    st.integers(min_value=0, max_value=PARAMS.t - 1),
    min_size=PARAMS.n,
    max_size=PARAMS.n,
)

ring_vectors = st.lists(
    st.integers(min_value=0, max_value=RING.q - 1), min_size=16, max_size=16
)


@settings(max_examples=25, deadline=None)
@given(coeff_vectors)
def test_encrypt_decrypt_roundtrip(coeffs):
    ct = CTX.encrypt(CTX.plaintext(coeffs), PK)
    assert np.array_equal(CTX.decrypt(ct, SK).poly.coeffs, np.array(coeffs))


@settings(max_examples=25, deadline=None)
@given(coeff_vectors, coeff_vectors)
def test_homomorphic_addition_property(m1, m2):
    """decrypt(E(m1) + E(m2)) == m1 + m2 mod t — the algebraic law the
    whole CIPHERMATCH algorithm rests on."""
    ct = CTX.add(CTX.encrypt(CTX.plaintext(m1), PK), CTX.encrypt(CTX.plaintext(m2), PK))
    expected = (np.array(m1) + np.array(m2)) % PARAMS.t
    assert np.array_equal(CTX.decrypt(ct, SK).poly.coeffs, expected)


@settings(max_examples=25, deadline=None)
@given(ring_vectors, ring_vectors, ring_vectors)
def test_ring_add_associative(a, b, c):
    pa, pb, pc = RING.make(a), RING.make(b), RING.make(c)
    assert (pa + pb) + pc == pa + (pb + pc)


@settings(max_examples=15, deadline=None)
@given(ring_vectors, ring_vectors, ring_vectors)
def test_ring_mul_distributes_over_add(a, b, c):
    pa, pb, pc = RING.make(a), RING.make(b), RING.make(c)
    assert pa * (pb + pc) == pa * pb + pa * pc

@settings(max_examples=15, deadline=None)
@given(ring_vectors, ring_vectors)
def test_ring_mul_commutative(a, b):
    pa, pb = RING.make(a), RING.make(b)
    assert pa * pb == pb * pa


@settings(max_examples=25, deadline=None)
@given(ring_vectors, st.integers(min_value=0, max_value=63))
def test_shift_adds_up(a, k):
    pa = RING.make(a)
    assert pa.shift(k).shift(64 - k) == pa.shift(64)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=600))
def test_chunk_pack_roundtrip(bits):
    bits = np.array(bits, dtype=np.uint8)
    chunks = chunk_bits(bits, 16)
    recovered = unchunk_bits(chunks, 16)[: len(bits)]
    assert np.array_equal(recovered, bits)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=500))
def test_encoder_roundtrip(bits):
    enc = ChunkPackEncoder(CTX)
    bits = np.array(bits, dtype=np.uint8)
    assert np.array_equal(enc.decode(enc.encode(bits)), bits)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=(1 << 16) - 1))
def test_int_bits_roundtrip(value):
    assert bits_to_int(int_to_bits(value, 16)) == value


@settings(max_examples=25, deadline=None)
@given(coeff_vectors)
def test_negation_completes_to_all_ones(coeffs):
    """~x + x == all-ones for 16-bit chunks — the CIPHERMATCH match
    identity, at plaintext level."""
    x = np.array(coeffs)
    negated = (PARAMS.t - 1) - x
    assert np.all((negated + x) % PARAMS.t == PARAMS.t - 1)
