"""Unit tests for the BFV scheme: encryption, decryption, and every
homomorphic operation."""

import numpy as np
import pytest

from repro.he import BFVContext, BFVParams, KeyGenerator
from repro.he.bfv import Ciphertext


@pytest.fixture(scope="module")
def ctx(small_params):
    return BFVContext(small_params, seed=77)


@pytest.fixture(scope="module")
def keys(small_params):
    gen = KeyGenerator(small_params, seed=77)
    sk = gen.secret_key()
    return sk, gen.public_key(sk)


def random_message(ctx, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, ctx.params.t, ctx.params.n, dtype=np.int64)


class TestEncryptDecrypt:
    def test_roundtrip(self, ctx, keys):
        sk, pk = keys
        m = random_message(ctx, 1)
        ct = ctx.encrypt(ctx.plaintext(m), pk)
        assert np.array_equal(ctx.decrypt(ct, sk).poly.coeffs, m)

    def test_roundtrip_extremes(self, ctx, keys):
        sk, pk = keys
        m = np.zeros(ctx.params.n, dtype=np.int64)
        m[0] = ctx.params.t - 1  # max plaintext value
        ct = ctx.encrypt(ctx.plaintext(m), pk)
        assert np.array_equal(ctx.decrypt(ct, sk).poly.coeffs, m)

    def test_ciphertexts_are_randomized(self, ctx, keys):
        _, pk = keys
        m = ctx.plaintext(random_message(ctx, 2))
        assert ctx.encrypt(m, pk) != ctx.encrypt(m, pk)

    def test_noiseless_with_fixed_u_is_deterministic(self, ctx, keys):
        _, pk = keys
        m = ctx.plaintext(random_message(ctx, 3))
        u = ctx.ring.random_ternary(np.random.default_rng(9))
        ct1 = ctx.encrypt(m, pk, noiseless=True, u=u)
        ct2 = ctx.encrypt(m, pk, noiseless=True, u=u)
        assert ct1 == ct2

    def test_noiseless_noise_is_only_pk_error(self, ctx, keys):
        # noiseless mode drops e0/e1; the residual -e_pk * u from the
        # public key remains, small and deterministic given u.
        sk, pk = keys
        m = ctx.plaintext(random_message(ctx, 4))
        u = ctx.ring.random_ternary(np.random.default_rng(4))
        ct = ctx.encrypt(m, pk, noiseless=True, u=u)
        residual = ctx.noise_residual(ct, sk)
        assert residual < 20 * ctx.params.n * ctx.params.sigma
        ct2 = ctx.encrypt(m, pk, noiseless=True, u=u)
        assert ctx.noise_residual(ct2, sk) == residual

    def test_symmetric_encryption(self, ctx, keys):
        sk, _ = keys
        m = random_message(ctx, 5)
        ct = ctx.encrypt_symmetric(ctx.plaintext(m), sk)
        assert np.array_equal(ctx.decrypt(ct, sk).poly.coeffs, m)

    def test_fresh_noise_budget_positive(self, ctx, keys):
        sk, pk = keys
        ct = ctx.encrypt(ctx.plaintext(random_message(ctx, 6)), pk)
        assert ctx.noise_budget_bits(ct, sk) > 2

    def test_ciphertext_serialized_bytes(self, ctx, keys):
        _, pk = keys
        ct = ctx.encrypt(ctx.plaintext(random_message(ctx, 7)), pk)
        assert ct.serialized_bytes == ctx.params.ciphertext_bytes

    def test_wrong_key_garbles(self, ctx, keys):
        _, pk = keys
        other = KeyGenerator(ctx.params, seed=999).secret_key()
        m = random_message(ctx, 8)
        ct = ctx.encrypt(ctx.plaintext(m), pk)
        assert not np.array_equal(ctx.decrypt(ct, other).poly.coeffs, m)


class TestHomomorphicAddition:
    def test_add(self, ctx, keys):
        sk, pk = keys
        m1, m2 = random_message(ctx, 10), random_message(ctx, 11)
        ct = ctx.add(
            ctx.encrypt(ctx.plaintext(m1), pk), ctx.encrypt(ctx.plaintext(m2), pk)
        )
        assert np.array_equal(
            ctx.decrypt(ct, sk).poly.coeffs, (m1 + m2) % ctx.params.t
        )

    def test_add_wraps_mod_t(self, ctx, keys):
        sk, pk = keys
        m = np.full(ctx.params.n, ctx.params.t - 1, dtype=np.int64)
        ct = ctx.encrypt(ctx.plaintext(m), pk)
        result = ctx.decrypt(ctx.add(ct, ct), sk).poly.coeffs
        assert np.array_equal(result, np.full(ctx.params.n, ctx.params.t - 2))

    def test_sub(self, ctx, keys):
        sk, pk = keys
        m1, m2 = random_message(ctx, 12), random_message(ctx, 13)
        ct = ctx.sub(
            ctx.encrypt(ctx.plaintext(m1), pk), ctx.encrypt(ctx.plaintext(m2), pk)
        )
        assert np.array_equal(
            ctx.decrypt(ct, sk).poly.coeffs, (m1 - m2) % ctx.params.t
        )

    def test_negate(self, ctx, keys):
        sk, pk = keys
        m = random_message(ctx, 14)
        ct = ctx.negate(ctx.encrypt(ctx.plaintext(m), pk))
        assert np.array_equal(ctx.decrypt(ct, sk).poly.coeffs, (-m) % ctx.params.t)

    def test_add_plain(self, ctx, keys):
        sk, pk = keys
        m1, m2 = random_message(ctx, 15), random_message(ctx, 16)
        ct = ctx.add_plain(ctx.encrypt(ctx.plaintext(m1), pk), ctx.plaintext(m2))
        assert np.array_equal(
            ctx.decrypt(ct, sk).poly.coeffs, (m1 + m2) % ctx.params.t
        )

    def test_add_noise_grows_slowly(self, ctx, keys):
        sk, pk = keys
        ct = ctx.encrypt(ctx.plaintext(random_message(ctx, 17)), pk)
        acc = ct
        for _ in range(20):
            acc = ctx.add(acc, ct)
        # 21 summed fresh ciphertexts still decrypt fine
        assert ctx.noise_budget_bits(acc, sk) > 0

    def test_add_chain_correctness(self, ctx, keys):
        sk, pk = keys
        m = random_message(ctx, 18)
        ct = ctx.encrypt(ctx.plaintext(m), pk)
        acc = ct
        for _ in range(4):
            acc = ctx.add(acc, ct)
        assert np.array_equal(ctx.decrypt(acc, sk).poly.coeffs, (5 * m) % ctx.params.t)

    def test_add_rejects_size3(self, ctx, keys):
        _, pk = keys
        ct = ctx.encrypt(ctx.plaintext(random_message(ctx, 19)), pk)
        fake = Ciphertext(ctx.params, ct.c0, ct.c1, ct.c1)
        with pytest.raises(ValueError):
            ctx.add(fake, ct)


class TestHomomorphicMultiplication:
    @pytest.fixture(scope="class")
    def mctx(self, mult_params):
        return BFVContext(mult_params, seed=55)

    @pytest.fixture(scope="class")
    def mkeys(self, mult_params):
        gen = KeyGenerator(mult_params, seed=55)
        sk = gen.secret_key()
        return sk, gen.public_key(sk), gen.relin_key(sk)

    def _enc(self, mctx, pk, coeffs):
        full = np.zeros(mctx.params.n, dtype=np.int64)
        full[: len(coeffs)] = coeffs
        return mctx.encrypt(mctx.plaintext(full), pk)

    def test_constant_product(self, mctx, mkeys):
        sk, pk, rlk = mkeys
        ct = mctx.multiply(self._enc(mctx, pk, [3]), self._enc(mctx, pk, [5]), rlk)
        assert int(mctx.decrypt(ct, sk).poly.coeffs[0]) == 15

    def test_polynomial_product(self, mctx, mkeys):
        sk, pk, rlk = mkeys
        # (1 + 2x)(3 + x) = 3 + 7x + 2x^2
        ct = mctx.multiply(self._enc(mctx, pk, [1, 2]), self._enc(mctx, pk, [3, 1]), rlk)
        out = mctx.decrypt(ct, sk).poly.coeffs
        assert list(out[:3]) == [3, 7, 2]

    def test_unrelinearized_decrypts_with_s_squared(self, mctx, mkeys):
        sk, pk, _ = mkeys
        ct = mctx.multiply(self._enc(mctx, pk, [2]), self._enc(mctx, pk, [7]))
        assert ct.size == 3
        assert int(mctx.decrypt(ct, sk).poly.coeffs[0]) == 14

    def test_relinearize_reduces_size(self, mctx, mkeys):
        sk, pk, rlk = mkeys
        ct = mctx.multiply(self._enc(mctx, pk, [2]), self._enc(mctx, pk, [7]))
        ct2 = mctx.relinearize(ct, rlk)
        assert ct2.size == 2
        assert int(mctx.decrypt(ct2, sk).poly.coeffs[0]) == 14

    def test_relinearize_noop_on_size2(self, mctx, mkeys):
        _, pk, rlk = mkeys
        ct = self._enc(mctx, pk, [1])
        assert mctx.relinearize(ct, rlk) is ct

    def test_mult_add_mix(self, mctx, mkeys):
        sk, pk, rlk = mkeys
        # 3*5 + 4 = 19
        prod = mctx.multiply(self._enc(mctx, pk, [3]), self._enc(mctx, pk, [5]), rlk)
        result = mctx.add(prod, self._enc(mctx, pk, [4]))
        assert int(mctx.decrypt(result, sk).poly.coeffs[0]) == 19

    def test_multiply_plain(self, mctx, mkeys):
        sk, pk, _ = mkeys
        ct = self._enc(mctx, pk, [2, 1])
        pt = np.zeros(mctx.params.n, dtype=np.int64)
        pt[0] = 3
        out = mctx.multiply_plain(ct, mctx.plaintext(pt))
        assert list(mctx.decrypt(out, sk).poly.coeffs[:2]) == [6, 3]

    def test_negacyclic_wraparound_in_product(self, mctx, mkeys):
        sk, pk, rlk = mkeys
        n, t = mctx.params.n, mctx.params.t
        # x^(n-1) * x = -1 mod (x^n + 1)
        a = np.zeros(n, dtype=np.int64)
        a[n - 1] = 1
        b = np.zeros(n, dtype=np.int64)
        b[1] = 1
        ct = mctx.multiply(
            mctx.encrypt(mctx.plaintext(a), pk), mctx.encrypt(mctx.plaintext(b), pk), rlk
        )
        out = mctx.decrypt(ct, sk).poly.coeffs
        assert int(out[0]) == t - 1

    def test_mult_rejects_size3_input(self, mctx, mkeys):
        _, pk, rlk = mkeys
        ct = self._enc(mctx, pk, [1])
        big = mctx.multiply(ct, ct)
        with pytest.raises(ValueError):
            mctx.multiply(big, ct, rlk)


class TestOperationCounter:
    def test_counts(self, small_params):
        ctx = BFVContext(small_params, seed=1)
        gen = KeyGenerator(small_params, seed=1)
        sk = gen.secret_key()
        pk = gen.public_key(sk)
        m = ctx.plaintext(np.zeros(small_params.n, dtype=np.int64))
        ct = ctx.encrypt(m, pk)
        ctx.add(ct, ct)
        ctx.add_plain(ct, m)
        ctx.decrypt(ct, sk)
        snap = ctx.counter.snapshot()
        assert snap["encryptions"] == 1
        assert snap["additions"] == 1
        assert snap["plain_additions"] == 1
        assert snap["decryptions"] == 1

    def test_reset(self, small_params):
        ctx = BFVContext(small_params, seed=1)
        ctx.counter.additions = 5
        ctx.counter.reset()
        assert ctx.counter.additions == 0
