"""Tests for the BFV noise-analysis module: the bounds must bound the
measured noise, and the budgets must match the paper's depth story."""

import numpy as np
import pytest

from repro.he.bfv import BFVContext
from repro.he.keys import generate_keys
from repro.he.noise import NoiseBounds, NoiseBudgetEstimator, NoiseTracker
from repro.he.params import BFVParams


@pytest.fixture(scope="module")
def setup():
    params = BFVParams.test_small(64)
    ctx = BFVContext(params, seed=17)
    sk, pk, rlk, _ = generate_keys(params, seed=17, relin=True)
    return params, ctx, sk, pk, rlk


class TestBounds:
    def test_fresh_bound_holds(self, setup):
        params, ctx, sk, pk, _ = setup
        bounds = NoiseBounds(params)
        for seed in range(5):
            rng = np.random.default_rng(seed)
            pt = ctx.plaintext(rng.integers(0, params.t, params.n))
            ct = ctx.encrypt(pt, pk)
            assert ctx.noise_residual(ct, sk) <= bounds.fresh

    def test_addition_bound_holds(self, setup):
        params, ctx, sk, pk, _ = setup
        bounds = NoiseBounds(params)
        rng = np.random.default_rng(1)
        acc = ctx.encrypt(ctx.plaintext(rng.integers(0, params.t, params.n)), pk)
        for count in range(1, 20):
            fresh = ctx.encrypt(
                ctx.plaintext(rng.integers(0, params.t, params.n)), pk
            )
            acc = ctx.add(acc, fresh)
            assert ctx.noise_residual(acc, sk) <= bounds.after_adds(count)

    def test_mult_bound_holds(self):
        params = BFVParams.arithmetic_baseline(n=64)
        ctx = BFVContext(params, seed=3)
        sk, pk, rlk, _ = generate_keys(params, seed=3, relin=True)
        bounds = NoiseBounds(params)
        rng = np.random.default_rng(3)
        a = ctx.encrypt(ctx.plaintext(rng.integers(0, 4, params.n)), pk)
        b = ctx.encrypt(ctx.plaintext(rng.integers(0, 4, params.n)), pk)
        na = ctx.noise_residual(a, sk)
        nb = ctx.noise_residual(b, sk)
        product = ctx.multiply(a, b, rlk)
        # Relinearization adds key-switch noise not in the textbook
        # tensor bound; allow a 4x envelope.
        assert ctx.noise_residual(product, sk) <= 4 * bounds.after_mult(
            max(na, 1), max(nb, 1)
        ) + 1e6

    def test_failure_threshold_is_half_delta(self, setup):
        params = setup[0]
        assert NoiseBounds(params).failure_threshold == params.delta / 2


class TestBudgets:
    def test_adds_vastly_cheaper_than_mults(self):
        """Key Takeaway 1, quantified: one Hom-Mult costs the budget of
        thousands of Hom-Adds."""
        est = NoiseBudgetEstimator(BFVParams.paper())
        assert est.addition_cost_of_one_mult() > 1000

    def test_paper_params_support_many_additions(self):
        est = NoiseBudgetEstimator(BFVParams.paper())
        assert est.max_sequential_additions() > 20

    def test_paper_params_support_no_mult(self):
        """The paper's presentation set (q = 2**32, t = 2**16) has no
        multiplication budget at all — consistent with CIPHERMATCH
        using Hom-Add only."""
        est = NoiseBudgetEstimator(BFVParams.paper())
        assert est.max_multiplication_depth() == 0

    def test_arithmetic_baseline_supports_depth_one(self):
        """Yasuda-style parameters must afford the HD circuit's depth-1
        multiplication."""
        est = NoiseBudgetEstimator(BFVParams.arithmetic_baseline())
        assert est.max_multiplication_depth() >= 1

    def test_budget_bits_positive(self):
        est = NoiseBudgetEstimator(BFVParams.paper())
        assert est.fresh_budget_bits() > 0

    def test_additions_budget_matches_measurement(self):
        """Actually run more additions than half the estimated budget
        and verify decryption stays correct."""
        params = BFVParams.test_small(64)
        ctx = BFVContext(params, seed=9)
        sk, pk, _, _ = generate_keys(params, seed=9)
        est = NoiseBudgetEstimator(params)
        runs = min(est.max_sequential_additions() // 2, 50)
        rng = np.random.default_rng(5)
        values = rng.integers(0, 4, (runs + 1, params.n))
        acc = ctx.encrypt(ctx.plaintext(values[0]), pk)
        for i in range(1, runs + 1):
            acc = ctx.add(acc, ctx.encrypt(ctx.plaintext(values[i]), pk))
        decrypted = ctx.decrypt(acc, sk).coefficients()
        assert np.array_equal(decrypted, values.sum(axis=0) % params.t)


class TestTracker:
    def test_tracks_history(self, setup):
        params, ctx, sk, pk, rlk = setup
        tracker = NoiseTracker(ctx, sk)
        rng = np.random.default_rng(2)
        a = ctx.encrypt(ctx.plaintext(rng.integers(0, params.t, params.n)), pk)
        b = ctx.encrypt(ctx.plaintext(rng.integers(0, params.t, params.n)), pk)
        tracker.add(a, b)
        assert len(tracker.history) == 1
        assert tracker.history[0][0] == "add"
        assert tracker.healthy()

    def test_peak_monotone(self, setup):
        params, ctx, sk, pk, _ = setup
        tracker = NoiseTracker(ctx, sk)
        rng = np.random.default_rng(4)
        acc = ctx.encrypt(ctx.plaintext(rng.integers(0, params.t, params.n)), pk)
        peaks = []
        for _ in range(5):
            acc = tracker.add(
                acc, ctx.encrypt(ctx.plaintext(rng.integers(0, params.t, params.n)), pk)
            )
            peaks.append(tracker.peak)
        assert peaks == sorted(peaks)

    def test_summary_renders(self, setup):
        params, ctx, sk, pk, _ = setup
        tracker = NoiseTracker(ctx, sk)
        rng = np.random.default_rng(6)
        a = ctx.encrypt(ctx.plaintext(rng.integers(0, params.t, params.n)), pk)
        tracker.add(a, a)
        assert "add" in tracker.summary()
        assert "budget" in tracker.summary()
