"""Unit tests for the polynomial ring."""

import numpy as np
import pytest

from repro.he.poly import RingContext, RingPoly, poly_from_chunks
from repro.he.primes import find_ntt_prime


@pytest.fixture(scope="module")
def ring():
    return RingContext(16, 1 << 32)  # exact-convolution path


@pytest.fixture(scope="module")
def ntt_ring():
    n = 16
    return RingContext(n, find_ntt_prime(25, n))  # NTT fast path


class TestRingContext:
    def test_power_of_two_modulus_skips_ntt(self, ring):
        assert not ring.uses_ntt

    def test_ntt_prime_uses_ntt(self, ntt_ring):
        assert ntt_ring.uses_ntt

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            RingContext(12, 97)

    def test_rejects_huge_modulus(self):
        with pytest.raises(ValueError):
            RingContext(16, 1 << 63)

    def test_make_validates_shape(self, ring):
        with pytest.raises(ValueError):
            ring.make(np.zeros(8))

    def test_make_reduces_mod_q(self, ring):
        p = ring.make(np.full(16, ring.q + 5))
        assert all(int(c) == 5 for c in p.coeffs)

    def test_equality_and_hash(self):
        a = RingContext(16, 97)
        b = RingContext(16, 97)
        assert a == b and hash(a) == hash(b)
        assert a != RingContext(32, 97)

    def test_constant_and_monomial(self, ring):
        c = ring.constant(7)
        assert int(c.coeffs[0]) == 7 and not c.coeffs[1:].any()
        m = ring.monomial(3, 2)
        assert int(m.coeffs[3]) == 2

    def test_monomial_wraps_with_sign(self, ring):
        m = ring.monomial(ring.n, 1)  # x^n = -1
        assert int(m.coeffs[0]) == ring.q - 1

    def test_random_ternary_range(self, ring):
        rng = np.random.default_rng(0)
        p = ring.random_ternary(rng)
        centered = p.centered()
        assert all(int(c) in (-1, 0, 1) for c in centered)

    def test_random_error_magnitude(self, ring):
        rng = np.random.default_rng(0)
        p = ring.random_error(rng, 3.2)
        assert p.infinity_norm() < 30  # ~9 sigma


class TestRingPolyArithmetic:
    def test_add_sub_roundtrip(self, ring):
        rng = np.random.default_rng(1)
        a = ring.random_uniform(rng)
        b = ring.random_uniform(rng)
        assert (a + b) - b == a

    def test_add_commutative(self, ring):
        rng = np.random.default_rng(2)
        a, b = ring.random_uniform(rng), ring.random_uniform(rng)
        assert a + b == b + a

    def test_neg(self, ring):
        rng = np.random.default_rng(3)
        a = ring.random_uniform(rng)
        assert (a + (-a)).is_zero()

    def test_ring_mismatch_raises(self, ring, ntt_ring):
        with pytest.raises(ValueError):
            ring.zero() + ntt_ring.zero()

    def test_mul_identity(self, ring):
        rng = np.random.default_rng(4)
        a = ring.random_uniform(rng)
        assert a * ring.constant(1) == a

    def test_mul_matches_on_both_paths(self, ring, ntt_ring):
        # same operands multiplied in both rings, compared mod min modulus
        rng = np.random.default_rng(5)
        small = min(ring.q, ntt_ring.q)
        # support only in the lower half so no negacyclic wrap occurs and
        # the exact product coefficients stay small and non-negative
        a_co = np.zeros(ring.n, dtype=np.int64)
        b_co = np.zeros(ring.n, dtype=np.int64)
        a_co[: ring.n // 2] = rng.integers(0, 100, ring.n // 2)
        b_co[: ring.n // 2] = rng.integers(0, 100, ring.n // 2)
        r1 = (ring.make(a_co) * ring.make(b_co)).coeffs % small
        r2 = (ntt_ring.make(a_co) * ntt_ring.make(b_co)).coeffs % small
        assert np.array_equal(r1, r2)

    def test_scalar_mul_small(self, ring):
        a = ring.make(np.arange(16))
        assert np.array_equal(a.scalar_mul(3).coeffs, (np.arange(16) * 3) % ring.q)

    def test_scalar_mul_large_scalar(self, ring):
        # scalar large enough to overflow int64 products
        a = ring.make(np.full(16, ring.q - 1))
        big = ring.q - 1
        result = a.scalar_mul(big)
        expected = (ring.q - 1) * (ring.q - 1) % ring.q
        assert all(int(c) == expected for c in result.coeffs)

    def test_mul_by_int_dispatch(self, ring):
        a = ring.make(np.arange(16))
        assert a * 3 == a.scalar_mul(3)
        assert 3 * a == a.scalar_mul(3)


class TestShiftAndAutomorphism:
    def test_shift_zero(self, ring):
        rng = np.random.default_rng(6)
        a = ring.random_uniform(rng)
        assert a.shift(0) == a

    def test_shift_matches_monomial_multiply(self, ring):
        rng = np.random.default_rng(7)
        a = ring.random_uniform(rng)
        for k in (1, 5, ring.n - 1, ring.n, 2 * ring.n - 1):
            assert a.shift(k) == a * ring.monomial(k), f"shift {k}"

    def test_shift_full_cycle(self, ring):
        rng = np.random.default_rng(8)
        a = ring.random_uniform(rng)
        assert a.shift(2 * ring.n) == a
        assert a.shift(ring.n) == -a

    def test_automorphism_identity(self, ring):
        rng = np.random.default_rng(9)
        a = ring.random_uniform(rng)
        assert a.automorphism(1) == a

    def test_automorphism_composition(self, ring):
        rng = np.random.default_rng(10)
        a = ring.random_uniform(rng)
        n2 = 2 * ring.n
        assert a.automorphism(3).automorphism(5) == a.automorphism(15 % n2)

    def test_automorphism_rejects_even(self, ring):
        with pytest.raises(ValueError):
            ring.zero().automorphism(2)

    def test_automorphism_is_ring_homomorphism(self, ring):
        rng = np.random.default_rng(11)
        a, b = ring.random_uniform(rng), ring.random_uniform(rng)
        k = 3
        assert (a + b).automorphism(k) == a.automorphism(k) + b.automorphism(k)
        assert (a * b).automorphism(k) == a.automorphism(k) * b.automorphism(k)


class TestRepresentation:
    def test_centered_range(self, ring):
        rng = np.random.default_rng(12)
        a = ring.random_uniform(rng)
        half = ring.q // 2
        assert all(-half <= int(c) <= half for c in a.centered())

    def test_centered_roundtrip(self, ring):
        rng = np.random.default_rng(13)
        a = ring.random_uniform(rng)
        assert ring.make(a.centered()) == a

    def test_lift_mod(self, ring):
        a = ring.make([1, ring.q - 1] + [0] * 14)  # 1 and -1
        lifted = a.lift_mod(7)
        assert lifted[0] == 1 and lifted[1] == 6  # -1 mod 7

    def test_infinity_norm(self, ring):
        a = ring.make([5, ring.q - 3] + [0] * 14)
        assert a.infinity_norm() == 5

    def test_poly_from_chunks(self, ring):
        p = poly_from_chunks(ring, [1, 2, 3])
        assert list(p.coeffs[:4]) == [1, 2, 3, 0]

    def test_poly_from_chunks_overflow(self, ring):
        with pytest.raises(ValueError):
            poly_from_chunks(ring, range(17))

    def test_copy_is_independent(self, ring):
        a = ring.make(np.arange(16))
        b = a.copy()
        b.coeffs[0] = 99
        assert int(a.coeffs[0]) == 0


class TestWideModulusVectorization:
    """Pin the exact semantics of scalar_mul / make above the int64-safe
    product threshold (q > 2**32): both the reference object-dtype path
    and the vectorized int64 kernels must equal plain Python-int math."""

    WIDE_Q = (1 << 40) + 123

    @pytest.fixture(scope="class", params=["reference", "vectorized"])
    def wide_ring(self, request):
        return RingContext(16, self.WIDE_Q, backend=request.param)

    def test_scalar_mul_wide_scalar(self, wide_ring):
        q = wide_ring.q
        values = [q - 1, q // 2, 1, 0, 123456789] + list(range(11))
        poly = wide_ring.make(values)
        scalar = q - 7  # 41-bit scalar x 41-bit coefficients: > 2**63
        got = poly.scalar_mul(scalar)
        expected = [v % q * scalar % q for v in values]
        assert got.coeffs.dtype == np.int64
        assert [int(c) for c in got.coeffs] == expected

    def test_scalar_mul_small_scalar_stays_direct(self, wide_ring):
        poly = wide_ring.make(list(range(16)))
        got = poly.scalar_mul(3)
        assert [int(c) for c in got.coeffs] == [3 * v for v in range(16)]

    def test_make_object_input(self, wide_ring):
        q = wide_ring.q
        big = [(1 << 90) + i for i in range(16)]
        poly = wide_ring.make(np.array(big, dtype=object))
        assert poly.coeffs.dtype == np.int64
        assert [int(c) for c in poly.coeffs] == [b % q for b in big]

    def test_make_negative_input(self, wide_ring):
        poly = wide_ring.make([-1] * 16)
        assert all(int(c) == wide_ring.q - 1 for c in poly.coeffs)

    def test_centered_is_int64_and_exact(self, wide_ring):
        q = wide_ring.q
        poly = wide_ring.make([0, 1, q - 1, q // 2, q // 2 + 1] + [0] * 11)
        centered = poly.centered()
        assert centered.dtype == np.int64
        assert int(centered[2]) == -1
        assert int(centered[3]) == q // 2  # boundary stays positive
        assert int(centered[4]) == q // 2 + 1 - q
