"""Parity of the ciphertext-arena fused kernels against the scalar path.

Every fused kernel (broadcast Hom-Add, batched NTT multiply, batch
decryption, flag extraction, phase linearity) must be *bit-for-bit*
equal to the corresponding per-object operations on both polynomial
backends.  The grid pins the structurally distinct modulus regimes;
hypothesis explores random coefficient patterns in between.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he.arena import (
    KERNEL_ENV_VAR,
    CiphertextArena,
    QueryArena,
    add_mod_q,
    decrypt_batch,
    flags_batch,
    fused_decrypt_flags,
    get_default_search_kernel,
    mul_rows_by_poly,
    resolve_search_kernel,
    scale_rows_to_plaintext,
    set_default_search_kernel,
    stack_ciphertext,
)
from repro.he.backend import get_rns_basis
from repro.he.bfv import BFVContext
from repro.he.keys import generate_keys
from repro.he.params import BFVParams
from repro.he.poly import RingContext

#: modulus regimes: power-of-two (paper), native NTT prime, odd
#: composite with RNS limbs, near the 2**62 cap
MODULI = [1 << 32, 12289, (1 << 40) + 123, (1 << 62) - 57]


# ---------------------------------------------------------------------------
# Low-level kernels
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("q", MODULI)
@pytest.mark.parametrize("n", [8, 64, 256])
def test_add_mod_q_matches_numpy_mod(n, q):
    rng = np.random.default_rng(n)
    a = rng.integers(0, q, size=(5, n), dtype=np.int64)
    b = rng.integers(0, q, size=(5, n), dtype=np.int64)
    assert np.array_equal(add_mod_q(a, b, q), (a + b) % q)
    # broadcast shape
    assert np.array_equal(add_mod_q(a[None], b[:, None], q), (a[None] + b[:, None]) % q)


@pytest.mark.parametrize("q", MODULI)
@pytest.mark.parametrize("backend", ["vectorized", "reference"])
@pytest.mark.parametrize("n", [64, 256])
def test_mul_rows_by_poly_matches_scalar_products(n, q, backend):
    ring = RingContext(n, q, backend=backend)
    rng = np.random.default_rng(q % 9973 + n)
    rows = rng.integers(0, q, size=(6, n), dtype=np.int64)
    poly = ring.make(rng.integers(0, q, size=n, dtype=np.int64))
    got = mul_rows_by_poly(ring, rows, poly)
    want = np.stack([(ring.make(r) * poly).coeffs for r in rows])
    assert np.array_equal(got, want)


def test_mul_rows_by_poly_empty():
    ring = RingContext(64, 1 << 32)
    poly = ring.make(np.arange(64))
    out = mul_rows_by_poly(ring, np.empty((0, 64), dtype=np.int64), poly)
    assert out.shape == (0, 64)


@pytest.mark.parametrize("n", [32, 128, 512])
def test_forward_batch_matches_per_row_forward(n):
    q = 1 << 32
    basis = get_rns_basis(n, q)
    rng = np.random.default_rng(n)
    rows = rng.integers(-(q // 2), q // 2, size=(4, n), dtype=np.int64)
    batch = basis.forward_batch(rows)
    for i, row in enumerate(rows):
        assert np.array_equal(batch[i], basis.forward(row))


@given(st.integers(0, 2**62 - 58), st.integers(0, 2**62 - 58))
@settings(max_examples=30, deadline=None)
def test_scale_rows_matches_bfv_scaling(c0, c1):
    """The vectorized plaintext scaling equals BFVContext's on the
    centered phase, including the big-int fallback regime."""
    for q, t in [(1 << 32, 1 << 16), ((1 << 62) - 57, 1 << 16)]:
        phase = np.array([[c0 % q, c1 % q]], dtype=np.int64)
        half = q // 2
        centered = np.where(phase > half, phase - q, phase)
        got = scale_rows_to_plaintext(centered, q, t)
        want = [(t * int(c) + q // 2) // q % t for c in centered[0]]
        assert got.tolist() == [want]


# ---------------------------------------------------------------------------
# Arena vs object-path ciphertext operations
# ---------------------------------------------------------------------------


def _setup(n=64, seed=11, backend=None):
    params = BFVParams.test_small(n)
    ctx = BFVContext(params, seed=seed, backend=backend)
    sk, pk, _, _ = generate_keys(params, seed, backend=backend)
    rng = np.random.default_rng(seed)
    pts = [
        ctx.plaintext(rng.integers(0, params.t, size=n, dtype=np.int64))
        for _ in range(5)
    ]
    cts = [ctx.encrypt(pt, pk) for pt in pts]
    return params, ctx, sk, pk, cts


@pytest.mark.parametrize("backend", ["vectorized", "reference"])
def test_hom_add_broadcast_matches_ctx_add(backend):
    params, ctx, sk, pk, cts = _setup(backend=backend)
    arena = CiphertextArena.from_ciphertexts(ctx.ring, params, cts)
    rng = np.random.default_rng(3)
    q_cts = [
        ctx.encrypt(ctx.plaintext(rng.integers(0, params.t, size=64)), pk)
        for _ in range(3)
    ]
    stack = np.stack([stack_ciphertext(ct) for ct in q_cts])
    grid = arena.hom_add_broadcast(stack)
    assert grid.shape == (3, len(cts), 2, 64)
    for v, q_ct in enumerate(q_cts):
        for j, db_ct in enumerate(cts):
            expect = ctx.add(db_ct, q_ct)
            assert np.array_equal(grid[v, j, 0], expect.c0.coeffs)
            assert np.array_equal(grid[v, j, 1], expect.c1.coeffs)
    # single-row form
    one = arena.hom_add_broadcast(stack[0])
    assert np.array_equal(one, grid[0])


@pytest.mark.parametrize("backend", ["vectorized", "reference"])
def test_decrypt_batch_matches_ctx_decrypt(backend):
    params, ctx, sk, pk, cts = _setup(backend=backend)
    arena = CiphertextArena.from_ciphertexts(ctx.ring, params, cts)
    dec = decrypt_batch(ctx.ring, params, arena.c0, arena.c1, sk)
    for j, ct in enumerate(cts):
        assert np.array_equal(dec[j], ctx.decrypt(ct, sk).poly.coeffs)
    flags = flags_batch(dec, chunk_width=16)
    want = dec == (1 << 16) - 1
    assert np.array_equal(flags, want)


@pytest.mark.parametrize("backend", ["vectorized", "reference"])
def test_phase_linearity_equals_result_decryption(backend):
    """phase(db) + phase(query) mod q decrypts the Hom-Add result —
    the identity the fused decrypt kernel rides."""
    params, ctx, sk, pk, cts = _setup(backend=backend)
    arena = CiphertextArena.from_ciphertexts(ctx.ring, params, cts)
    rng = np.random.default_rng(4)
    q_ct = ctx.encrypt(ctx.plaintext(rng.integers(0, params.t, size=64)), pk)
    q_row = stack_ciphertext(q_ct)[None]
    q_phase = add_mod_q(
        q_row[:, 0], mul_rows_by_poly(ctx.ring, q_row[:, 1], sk.s), params.q
    )
    row_map = np.zeros((1, len(cts)), dtype=np.intp)
    flags = fused_decrypt_flags(
        arena.phases(sk), q_phase, row_map, params, chunk_width=16
    )
    for j, db_ct in enumerate(cts):
        result = ctx.add(db_ct, q_ct)
        want = ctx.decrypt(result, sk).poly.coeffs == (1 << 16) - 1
        assert np.array_equal(flags[0, j], want)


def test_arena_phase_cache_and_slice_views():
    params, ctx, sk, pk, cts = _setup()
    arena = CiphertextArena.from_ciphertexts(ctx.ring, params, cts)
    phases = arena.phases(sk)
    assert arena.phases(sk) is phases  # cached per sk
    part = arena.slice(1, 4)
    assert part.base_index == 1
    assert part.num_polys == 3
    # slices share memory with the parent stack and its phase cache
    assert part.stack.base is arena.stack
    assert np.array_equal(part.phases(sk), phases[1:4])
    ct = part.ciphertext(0)
    assert ct == cts[1]


def test_arena_rejects_bad_shapes():
    params, ctx, sk, pk, cts = _setup()
    with pytest.raises(ValueError):
        CiphertextArena(ctx.ring, params, np.zeros((2, 3, 64), dtype=np.int64))
    tensored = cts[0].copy()
    tensored.c2 = cts[1].c0
    with pytest.raises(ValueError):
        CiphertextArena.from_ciphertexts(ctx.ring, params, [tensored])
    with pytest.raises(ValueError):
        stack_ciphertext(tensored)


@given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
@settings(max_examples=25, deadline=None)
def test_hypothesis_roundtrip_add_decrypt_flags(m_db, m_q):
    """Random plaintext pair: fused add+decrypt flags the all-ones
    coefficient exactly when the chunk sum is all-ones."""
    params, ctx, sk, pk, _ = _setup(n=16)
    db_ct = ctx.encrypt(ctx.plaintext(np.full(16, m_db, dtype=np.int64)), pk)
    q_ct = ctx.encrypt(ctx.plaintext(np.full(16, m_q, dtype=np.int64)), pk)
    arena = CiphertextArena.from_ciphertexts(ctx.ring, params, [db_ct])
    grid = arena.hom_add_broadcast(stack_ciphertext(q_ct))
    dec = decrypt_batch(ctx.ring, params, grid[:, 0], grid[:, 1], sk)
    want = ctx.decrypt(ctx.add(db_ct, q_ct), sk).poly.coeffs
    assert np.array_equal(dec[0], want)
    flags = flags_batch(dec, chunk_width=16)
    assert bool(flags[0, 0]) == ((m_db + m_q) % (1 << 16) == (1 << 16) - 1)


# ---------------------------------------------------------------------------
# Tiled broadcast add, limb-major layout, lazy build
# ---------------------------------------------------------------------------


@given(
    num_polys=st.integers(1, 9),
    num_variants=st.integers(1, 5),
    tile_bytes=st.sampled_from([1, 700, 1 << 13]),
    q_idx=st.integers(0, len(MODULI) - 1),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=40, deadline=None)
def test_hypothesis_tiled_add_parity_at_tile_boundaries(
    num_polys, num_variants, tile_bytes, q_idx, seed
):
    """The tiled broadcast add is bit-identical to the one-shot mod-add
    for every (P, V) — including P/V that are not multiples of the tile
    shape — with and without a recycled output buffer."""
    n = 16
    q = MODULI[q_idx]
    params = BFVParams(n=n, q=q, t=4, name="tile-parity")
    ring = RingContext(n, q)
    rng = np.random.default_rng(seed)
    stack = rng.integers(0, q, size=(num_polys, 2, n), dtype=np.int64)
    q_stack = rng.integers(0, q, size=(num_variants, 2, n), dtype=np.int64)
    arena = CiphertextArena(ring, params, stack)
    want = (stack[None] + q_stack[:, None]) % q
    assert np.array_equal(
        arena.hom_add_broadcast(q_stack, tile_bytes=tile_bytes), want
    )
    out = np.empty((num_variants, num_polys, 2, n), dtype=np.int64)
    got = arena.hom_add_broadcast(q_stack, out=out, tile_bytes=tile_bytes)
    assert got is out and np.array_equal(out, want)
    row_out = np.empty((num_polys, 2, n), dtype=np.int64)
    one = arena.hom_add_broadcast(
        q_stack[0], out=row_out, tile_bytes=tile_bytes
    )
    assert one is row_out and np.array_equal(row_out, want[0])


def test_hom_add_broadcast_rejects_bad_out():
    params, ctx, sk, pk, cts = _setup()
    arena = CiphertextArena.from_ciphertexts(ctx.ring, params, cts)
    query = np.zeros((3, 2, 64), dtype=np.int64)
    with pytest.raises(ValueError):
        arena.hom_add_broadcast(
            query, out=np.zeros((2, len(cts), 2, 64), dtype=np.int64)
        )
    with pytest.raises(ValueError):
        arena.hom_add_broadcast(
            query, out=np.zeros((3, len(cts), 2, 64), dtype=np.float64)
        )
    with pytest.raises(ValueError):
        arena.hom_add_broadcast(query, tile_bytes=0)


@pytest.mark.parametrize("q", MODULI)
@pytest.mark.parametrize("n", [64, 256])
def test_forward_batch_limb_major_matches_batch_major(n, q):
    basis = get_rns_basis(n, q)
    k = len(basis.primes)
    rng = np.random.default_rng(n + q % 101)
    rows = rng.integers(-(q // 2), q // 2, size=(5, n), dtype=np.int64)
    batch_major = basis.forward_batch(rows)
    limb_major = basis.forward_batch(rows, limb_major=True)
    assert limb_major.shape == (k, 5, n)
    assert np.array_equal(limb_major, np.moveaxis(batch_major, 1, 0))
    empty = np.empty((0, n), dtype=np.int64)
    assert basis.forward_batch(empty).shape == (0, k, n)
    assert basis.forward_batch(empty, limb_major=True).shape == (k, 0, n)


def test_arena_c1_limbs_limb_major_layout_and_slices():
    params, ctx, sk, pk, cts = _setup()
    arena = CiphertextArena.from_ciphertexts(ctx.ring, params, cts)
    limbs = arena.c1_limbs()
    if limbs is None:
        pytest.skip("limb view requires the vectorized backend")
    basis = get_rns_basis(params.n, params.q)
    assert limbs.shape == (len(basis.primes), len(cts), 64)
    # slices take the row range on the middle (poly) axis, zero-copy
    part = arena.slice(1, 4)
    assert np.shares_memory(part.c1_limbs(), limbs)
    assert np.array_equal(part.c1_limbs(), limbs[:, 1:4])


@pytest.mark.parametrize("q", MODULI)
def test_tiled_phase_build_matches_direct_computation(q):
    """Per-tile phase/limb construction (build_tile smaller than — and
    not dividing — the row count) equals the one-shot formula on every
    modulus regime."""
    n = 64
    params = BFVParams(n=n, q=q, t=4, name="phase-tiles")
    ring = RingContext(n, q)
    rng = np.random.default_rng(q % 9973)
    stack = rng.integers(0, q, size=(7, 2, n), dtype=np.int64)
    from repro.he.keys import SecretKey

    s = ring.make(rng.integers(-1, 2, size=n))
    sk = SecretKey(params, s)
    arena = CiphertextArena(ring, params, stack.copy(), build_tile=2)
    want = add_mod_q(stack[:, 0], mul_rows_by_poly(ring, stack[:, 1], s), q)
    got = arena.phases(sk)
    assert np.array_equal(got, want)
    assert arena.phases(sk) is got  # cached per sk, identity preserved
    assert np.array_equal(arena.slice(3, 6).phases(sk), want[3:6])


@pytest.mark.parametrize("backend", ["vectorized", "reference"])
def test_lazy_arena_matches_eager(backend):
    params, ctx, sk, pk, cts = _setup(backend=backend)
    eager = CiphertextArena.from_ciphertexts(ctx.ring, params, cts)
    lazy = CiphertextArena.from_ciphertexts(
        ctx.ring, params, cts, lazy=True, build_tile=2
    )
    assert not lazy.fully_built
    # touching a slice builds only the tiles covering its rows
    part = lazy.slice(1, 4)
    assert np.array_equal(part.phases(sk), eager.phases(sk)[1:4])
    assert part.fully_built
    assert not lazy.fully_built  # the last tile (row 4) is untouched
    assert lazy.ciphertext(4) == cts[4]
    lazy.ensure_built()
    assert lazy.fully_built
    assert lazy._source is None  # pending list dropped once built
    assert np.array_equal(lazy.stack, eager.stack)
    assert np.array_equal(lazy.phases(sk), eager.phases(sk))
    assert np.array_equal(
        lazy.hom_add_broadcast(stack_ciphertext(cts[0])),
        eager.hom_add_broadcast(stack_ciphertext(cts[0])),
    )


def test_lazy_arena_kernels_build_on_first_touch():
    params, ctx, sk, pk, cts = _setup()
    lazy = CiphertextArena.from_ciphertexts(
        ctx.ring, params, cts, lazy=True, build_tile=2
    )
    eager = CiphertextArena.from_ciphertexts(ctx.ring, params, cts)
    query = stack_ciphertext(cts[2])
    assert np.array_equal(
        lazy.hom_add_broadcast(query), eager.hom_add_broadcast(query)
    )
    assert np.array_equal(lazy.c0, eager.c0)  # property forces the build
    assert lazy.fully_built


# ---------------------------------------------------------------------------
# Build-mode / tile plumbing
# ---------------------------------------------------------------------------


def test_arena_build_and_tile_resolution(monkeypatch):
    from repro.he.arena import (
        ARENA_BUILD_ENV_VAR,
        TILE_ENV_VAR,
        _DEFAULT_TILE_BYTES,
        resolve_arena_build,
        resolve_tile_bytes,
    )

    monkeypatch.delenv(ARENA_BUILD_ENV_VAR, raising=False)
    monkeypatch.delenv(TILE_ENV_VAR, raising=False)
    assert resolve_arena_build(None) == "lazy"
    assert resolve_arena_build("eager") == "eager"
    monkeypatch.setenv(ARENA_BUILD_ENV_VAR, "eager")
    assert resolve_arena_build(None) == "eager"
    with pytest.raises(ValueError):
        resolve_arena_build("sometimes")
    assert resolve_tile_bytes(None) == _DEFAULT_TILE_BYTES
    monkeypatch.setenv(TILE_ENV_VAR, "4096")
    assert resolve_tile_bytes(None) == 4096
    assert resolve_tile_bytes(123) == 123  # explicit beats env
    with pytest.raises(ValueError):
        resolve_tile_bytes(-1)


# ---------------------------------------------------------------------------
# Query arena
# ---------------------------------------------------------------------------


def test_query_arena_rows_and_map_cover_residue_classes():
    params, ctx, sk, pk, cts = _setup()
    from repro.core.query import QueryPreparer

    preparer = QueryPreparer(ctx, 16)
    rng = np.random.default_rng(8)
    prepared = preparer.prepare(rng.integers(0, 2, 48).astype(np.uint8))
    calls = []

    def rows_for(v_idx, residue, j):
        calls.append((v_idx, residue))
        ct = preparer.encrypt_variant(prepared, v_idx, j, pk)
        return stack_ciphertext(ct)

    num_polys = 7
    qa = QueryArena(ctx.ring, params, prepared.variants, num_polys, rows_for)
    assert len(calls) == len(set(calls)) == qa.num_rows  # one row per class
    row_map = qa.row_map(np.arange(num_polys))
    assert row_map.shape == (prepared.num_variants, num_polys)
    n = ctx.params.n
    for v_idx, variant in enumerate(prepared.variants):
        for j in range(num_polys):
            row = row_map[v_idx, j]
            assert qa.row_variant[row] == v_idx
            assert qa.row_residue[row] == (j * n) % variant.span
    # phases cached per secret key
    assert qa.phases(sk) is qa.phases(sk)


# ---------------------------------------------------------------------------
# Kernel selection plumbing
# ---------------------------------------------------------------------------


def test_kernel_selection_default_and_env(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    set_default_search_kernel(None)
    assert get_default_search_kernel() == "fused"
    monkeypatch.setenv(KERNEL_ENV_VAR, "object")
    assert get_default_search_kernel() == "object"
    assert resolve_search_kernel(None) == "object"
    assert resolve_search_kernel("fused") == "fused"
    set_default_search_kernel("fused")
    assert get_default_search_kernel() == "fused"  # explicit beats env
    set_default_search_kernel(None)


def test_kernel_selection_rejects_unknown(monkeypatch):
    with pytest.raises(ValueError):
        set_default_search_kernel("simd")
    with pytest.raises(ValueError):
        resolve_search_kernel("simd")
    monkeypatch.setenv(KERNEL_ENV_VAR, "simd")
    set_default_search_kernel(None)
    with pytest.raises(ValueError):
        get_default_search_kernel()


# ---------------------------------------------------------------------------
# OS-shared backing lifecycle
# ---------------------------------------------------------------------------


def test_shared_block_release_claims_exactly_once():
    """_SharedBlock.release() is an atomic claim: exactly one caller
    runs the unlink, every later caller (including GC) is a no-op."""
    from repro.he.arena import _attach_block, _create_block

    block = _create_block((3, 2, 8), "auto")
    assert block.owned and not block.released
    assert block.release() is True
    assert block.released
    assert block.release() is False  # second release: already claimed
    # attached (non-owning) blocks never own cleanup
    other = _create_block((1, 2, 8), "auto")
    attached = _attach_block(other.kind, other.ref, (1, 2, 8))
    assert not attached.owned and not attached.released
    assert attached.release() is False
    other.release()


def test_release_shared_idempotent_and_unlinks_segment():
    import os

    from repro.he.bfv import BFVContext

    params = BFVParams.test_small(64)
    ctx = BFVContext(params, seed=5)
    stack = np.arange(4 * 2 * params.n, dtype=np.int64).reshape(
        4, 2, params.n
    )
    arena = CiphertextArena(ctx.ring, params, stack.copy())
    handle = arena.share()
    blocks = list(arena._blocks)
    if handle.kind == "shm":
        assert os.path.exists("/dev/shm/" + handle.stack_ref)
    arena.release_shared()
    assert all(b.released for b in blocks if b.owned)
    if handle.kind == "shm":
        assert not os.path.exists("/dev/shm/" + handle.stack_ref)
    arena.release_shared()  # idempotent: second call is a no-op
    assert all(b.release() is False for b in blocks)  # all claimed
    # local views keep working (pages stay mapped until unmapped) and
    # a re-share publishes a fresh segment
    assert np.array_equal(arena.stack, stack)
    handle2 = arena.share()
    assert handle2.stack_ref != handle.stack_ref
    arena.release_shared()
