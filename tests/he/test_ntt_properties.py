"""Algebraic laws of the negacyclic NTT engine and the RNS basis.

Four families of properties, each across several ``(n, p)`` pairs:

* forward/inverse roundtrip (the transform is a bijection);
* the negacyclic wraparound sign: ``X^n = -1`` in ``Z_p[X]/(X^n+1)``;
* the convolution theorem: NTT pointwise products equal the exact
  schoolbook negacyclic convolution (and :meth:`RingContext._mul_coeffs`
  agrees for both native-NTT and CRT moduli);
* linearity of the forward transform.

Plus the RNS-specific laws: the limb basis product bound and the Garner
recombination against big-int CRT.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.he.backend import get_rns_basis
from repro.he.ntt import (
    NttPlan,
    _schoolbook_negacyclic,
    exact_negacyclic_convolution,
    get_plan,
)
from repro.he.poly import RingContext
from repro.he.primes import find_ntt_prime

#: (n, p) pairs with p an NTT-friendly prime for degree n.
PLAN_SHAPES = [
    (8, 257),
    (16, find_ntt_prime(20, 16)),
    (64, 12289),
    (256, find_ntt_prime(30, 256)),
]


def _rand(n: int, p: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, p, size=n, dtype=np.int64)


@pytest.mark.parametrize("n,p", PLAN_SHAPES)
class TestNttLaws:
    def test_forward_inverse_roundtrip(self, n, p):
        plan = get_plan(n, p)
        a = _rand(n, p, 11)
        assert np.array_equal(plan.inverse(plan.forward(a)), a)

    def test_inverse_forward_roundtrip(self, n, p):
        plan = get_plan(n, p)
        a = _rand(n, p, 12)
        assert np.array_equal(plan.forward(plan.inverse(a)), a)

    def test_forward_linearity(self, n, p):
        plan = get_plan(n, p)
        a, b = _rand(n, p, 13), _rand(n, p, 14)
        lhs = plan.forward((a + b) % p)
        rhs = (plan.forward(a) + plan.forward(b)) % p
        assert np.array_equal(lhs, rhs)
        for scalar in (2, p - 1):
            assert np.array_equal(
                plan.forward(a * scalar % p), plan.forward(a) * scalar % p
            )

    def test_convolution_theorem_vs_schoolbook(self, n, p):
        plan = get_plan(n, p)
        a, b = _rand(n, p, 15), _rand(n, p, 16)
        exact = _schoolbook_negacyclic(a.astype(object), b.astype(object))
        assert np.array_equal(plan.multiply(a, b), (exact % p).astype(np.int64))

    def test_negacyclic_wraparound_sign(self, n, p):
        """Multiplying by X rotates and negates the wrapped coefficient:
        the defining relation ``X^n = -1``."""
        plan = get_plan(n, p)
        a = _rand(n, p, 17)
        x = np.zeros(n, dtype=np.int64)
        x[1] = 1
        shifted = plan.multiply(a, x)
        expected = np.roll(a, 1)
        expected[0] = (-expected[0]) % p
        assert np.array_equal(shifted, expected)

    def test_x_to_the_n_is_minus_one(self, n, p):
        """(X^{n-1}) * X = X^n = -1 exactly."""
        plan = get_plan(n, p)
        top = np.zeros(n, dtype=np.int64)
        top[n - 1] = 1
        x = np.zeros(n, dtype=np.int64)
        x[1] = 1
        product = plan.multiply(top, x)
        minus_one = np.zeros(n, dtype=np.int64)
        minus_one[0] = p - 1
        assert np.array_equal(product, minus_one)

    def test_unfriendly_prime_rejected(self, n, p):
        with pytest.raises(ValueError, match="NTT-friendly"):
            NttPlan(n, 97 if (97 - 1) % (2 * n) else 11)


@pytest.mark.parametrize("q", [1 << 32, 12289, (1 << 62) - 57])
def test_ring_mul_matches_schoolbook(q):
    """`RingContext._mul_coeffs` equals the O(n^2) oracle for native-NTT,
    CRT, and RNS-limb moduli alike, on both backends."""
    n = 16
    rng = np.random.default_rng(21)
    a = rng.integers(0, q, size=n, dtype=np.int64)
    b = rng.integers(0, q, size=n, dtype=np.int64)
    exact = _schoolbook_negacyclic(a.astype(object), b.astype(object))
    expected = (exact % q).astype(np.int64)
    for backend in ("reference", "vectorized"):
        ring = RingContext(n, q, backend=backend)
        assert np.array_equal(ring._mul_coeffs(a, b), expected), backend


def test_exact_convolution_signed_inputs():
    n = 32
    rng = np.random.default_rng(22)
    a = rng.integers(-(1 << 31), 1 << 31, size=n, dtype=np.int64)
    b = rng.integers(-(1 << 31), 1 << 31, size=n, dtype=np.int64)
    exact = exact_negacyclic_convolution(a, b)
    expected = _schoolbook_negacyclic(a.astype(object), b.astype(object))
    assert np.array_equal(exact, expected)


class TestRnsBasis:
    def test_limb_product_exceeds_bound(self):
        for n, q in [(64, 1 << 32), (8, (1 << 62) - 57), (256, (1 << 48) + 1)]:
            basis = get_rns_basis(n, q)
            assert basis.modulus > 2 * n * (q // 2) ** 2
            assert len(set(basis.primes)) == len(basis.primes)

    def test_native_modulus_single_limb(self):
        basis = get_rns_basis(64, 12289)
        assert basis.native and basis.primes == (12289,)

    def test_combine_matches_bigint_crt(self):
        n, q = 16, (1 << 62) - 57
        basis = get_rns_basis(n, q)
        rng = np.random.default_rng(23)
        # Random centered integers below M/2 in magnitude.
        half = basis.modulus // 2
        values = [int(rng.integers(-(1 << 62), 1 << 62)) for _ in range(n)]
        assert all(abs(v) < half for v in values)
        residues = [
            np.array([v % p for v in values], dtype=np.int64)
            for p in basis.primes
        ]
        combined = basis.combine_mod_q(residues)
        expected = np.array([v % q for v in values], dtype=np.int64)
        assert np.array_equal(combined, expected)

    def test_multiply_centered_inputs(self):
        n, q = 8, (1 << 40) + 123
        basis = get_rns_basis(n, q)
        rng = np.random.default_rng(24)
        a = rng.integers(-(q // 2), q // 2 + 1, size=n, dtype=np.int64)
        b = rng.integers(-(q // 2), q // 2 + 1, size=n, dtype=np.int64)
        exact = _schoolbook_negacyclic(a.astype(object), b.astype(object))
        assert np.array_equal(
            basis.multiply(a, b), (exact % q).astype(np.int64)
        )
