"""Tests for the SIMD slot (batching) encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.he.batch_encoder import BatchEncoder
from repro.he.bfv import BFVContext
from repro.he.keys import generate_keys
from repro.he.params import BFVParams


@pytest.fixture(scope="module")
def params():
    return BatchEncoder.batching_params(n=64, q_bits=60)


@pytest.fixture(scope="module")
def encoder(params):
    return BatchEncoder(params)


@pytest.fixture(scope="module")
def ctx(params):
    return BFVContext(params, seed=0)


@pytest.fixture(scope="module")
def keys(params, encoder):
    sk, pk, rlk, glk = generate_keys(
        params, seed=0, relin=True, galois_exponents=encoder.rotation_exponents()
    )
    return sk, pk, rlk, glk


class TestConstruction:
    def test_rejects_composite_t(self):
        with pytest.raises(ValueError):
            BatchEncoder(BFVParams(n=64, q=1 << 40, t=256))

    def test_rejects_non_splitting_prime(self):
        # 17 - 1 = 16 is not divisible by 2n = 128.
        with pytest.raises(ValueError):
            BatchEncoder(BFVParams(n=64, q=1 << 40, t=17))

    def test_preset_bounds(self):
        with pytest.raises(ValueError):
            BatchEncoder.batching_params(n=256)

    def test_slot_order_is_permutation(self, encoder):
        assert sorted(encoder._slot_to_pos) == list(range(encoder.n))
        assert np.array_equal(
            encoder._pos_to_slot[encoder._slot_to_pos], np.arange(encoder.n)
        )


class TestEncodeDecode:
    def test_round_trip_full(self, encoder, ctx):
        values = np.arange(64) % 257
        assert np.array_equal(encoder.decode(encoder.encode(values, ctx)), values)

    def test_round_trip_partial_pads_zero(self, encoder, ctx):
        values = np.array([5, 6, 7])
        decoded = encoder.decode(encoder.encode(values, ctx))
        assert list(decoded[:3]) == [5, 6, 7]
        assert not decoded[3:].any()

    def test_too_many_slots_raises(self, encoder, ctx):
        with pytest.raises(ValueError):
            encoder.encode(np.zeros(65), ctx)

    def test_values_reduced_mod_t(self, encoder, ctx):
        decoded = encoder.decode(encoder.encode([257 + 3], ctx))
        assert decoded[0] == 3

    @given(st.lists(st.integers(min_value=0, max_value=256), min_size=1, max_size=64))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_random(self, values):
        params = BatchEncoder.batching_params(n=64, q_bits=60)
        encoder = BatchEncoder(params)
        ctx = BFVContext(params, seed=1)
        decoded = encoder.decode(encoder.encode(values, ctx))
        assert list(decoded[: len(values)]) == values


class TestSlotSemantics:
    def test_addition_is_slotwise(self, encoder, ctx, keys):
        sk, pk, _, _ = keys
        a = np.arange(64)
        b = (np.arange(64) * 3 + 1) % 257
        ca = ctx.encrypt(encoder.encode(a, ctx), pk)
        cb = ctx.encrypt(encoder.encode(b, ctx), pk)
        decoded = encoder.decode(ctx.decrypt(ctx.add(ca, cb), sk))
        assert np.array_equal(decoded, (a + b) % 257)

    def test_multiplication_is_slotwise(self, encoder, ctx, keys):
        sk, pk, rlk, _ = keys
        a = np.arange(64)
        b = (np.arange(64) + 2) % 257
        ca = ctx.encrypt(encoder.encode(a, ctx), pk)
        cb = ctx.encrypt(encoder.encode(b, ctx), pk)
        decoded = encoder.decode(ctx.decrypt(ctx.multiply(ca, cb, rlk), sk))
        assert np.array_equal(decoded, (a * b) % 257)

    def test_plain_multiplication_is_slotwise(self, encoder, ctx, keys):
        sk, pk, _, _ = keys
        a = np.arange(64)
        b = np.full(64, 5)
        ca = ctx.encrypt(encoder.encode(a, ctx), pk)
        decoded = encoder.decode(
            ctx.decrypt(ctx.multiply_plain(ca, encoder.encode(b, ctx)), sk)
        )
        assert np.array_equal(decoded, (a * 5) % 257)


class TestRotations:
    def test_row_rotation(self, encoder, ctx, keys):
        sk, pk, _, glk = keys
        a = np.arange(64)
        ca = ctx.encrypt(encoder.encode(a, ctx), pk)
        rotated = ctx.apply_galois(ca, encoder.row_rotation_exponent(1), glk)
        decoded = encoder.decode(ctx.decrypt(rotated, sk))
        expected = np.concatenate([np.roll(a[:32], -1), np.roll(a[32:], -1)])
        assert np.array_equal(decoded, expected)

    def test_row_rotation_multiple_steps(self, encoder, ctx, keys):
        sk, pk, _, glk = keys
        a = np.arange(64)
        ca = ctx.encrypt(encoder.encode(a, ctx), pk)
        rotated = ctx.apply_galois(ca, encoder.row_rotation_exponent(5), glk)
        decoded = encoder.decode(ctx.decrypt(rotated, sk))
        expected = np.concatenate([np.roll(a[:32], -5), np.roll(a[32:], -5)])
        assert np.array_equal(decoded, expected)

    def test_column_swap(self, encoder, ctx, keys):
        sk, pk, _, glk = keys
        a = np.arange(64)
        ca = ctx.encrypt(encoder.encode(a, ctx), pk)
        swapped = ctx.apply_galois(ca, encoder.column_swap_exponent(), glk)
        decoded = encoder.decode(ctx.decrypt(swapped, sk))
        assert np.array_equal(decoded, np.concatenate([a[32:], a[:32]]))

    def test_rotation_exponent_wraps(self, encoder):
        assert encoder.row_rotation_exponent(32) == encoder.row_rotation_exponent(0)

    def test_rotation_exponents_cover_requested(self, encoder):
        exps = encoder.rotation_exponents(3)
        assert encoder.row_rotation_exponent(1) in exps
        assert encoder.row_rotation_exponent(3) in exps
        assert encoder.column_swap_exponent() in exps

    def test_total_sum_via_rotations(self, encoder, ctx, keys):
        """Classic all-slots sum: log2(n/2) rotations + column swap."""
        sk, pk, _, glk = keys
        a = np.arange(64)
        acc = ctx.encrypt(encoder.encode(a, ctx), pk)
        steps = 1
        while steps < 32:
            acc = ctx.add(
                acc, ctx.apply_galois(acc, encoder.row_rotation_exponent(steps), glk)
            )
            steps *= 2
        acc = ctx.add(
            acc, ctx.apply_galois(acc, encoder.column_swap_exponent(), glk)
        )
        decoded = encoder.decode(ctx.decrypt(acc, sk))
        assert decoded[0] == int(a.sum()) % 257
