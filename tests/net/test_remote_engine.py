"""RemoteEngine: the facade contract held over a real socket.

The acceptance bar of the networked layer: `repro.open_session("remote")`
returns byte-identical results to the in-process engine it fronts —
same matches, same homomorphic-op accounting, same shard breakdown —
under both search kernels and both poly backends.
"""

import numpy as np
import pytest

import repro
from repro.api import (
    BatchSearchResult,
    DEFAULT_REGISTRY,
    SearchResult,
    ShardedEngine,
    WildcardSearch,
)
from repro.baselines import find_all_matches
from repro.he import BFVParams
from repro.net import RemoteEngine


@pytest.fixture(scope="module")
def fixture_db():
    rng = np.random.default_rng(20260728)
    db = rng.integers(0, 2, 2048).astype(np.uint8)
    query = rng.integers(0, 2, 32).astype(np.uint8)
    db[8:40] = query
    db[1008:1040] = query  # straddles the 2-shard boundary at n=64
    return db, query


def test_remote_is_registered():
    assert "remote" in DEFAULT_REGISTRY
    spec = DEFAULT_REGISTRY.spec("remote")
    assert spec.capabilities.batching
    assert spec.capabilities.wildcard


def _engine_pair(params, db, **kwargs):
    """(in-process, remote-loopback) engines with identical config."""
    local = ShardedEngine(params=params, **kwargs)
    local.outsource(db)
    remote = RemoteEngine(engine="bfv-sharded", params=params, **kwargs)
    remote.outsource(db)
    return local, remote


def test_byte_identical_results_vs_in_process(fixture_db):
    """Same keys, same kernel: every result field the engine computes
    (matches, hom-op tally, variants, db footprint, shard breakdown)
    is identical across the socket boundary."""
    db, query = fixture_db
    params = BFVParams.test_small(64)
    local, remote = _engine_pair(
        params, db, num_shards=2, key_seed=31
    )
    try:
        local_result = local.execute(repro.api.ExactSearch.from_bits(query))
        remote_result = remote.execute(repro.api.ExactSearch.from_bits(query))
        assert remote_result.matches == local_result.matches
        assert remote_result.hom_ops == local_result.hom_ops
        assert remote_result.num_variants == local_result.num_variants
        assert (
            remote_result.encrypted_db_bytes
            == local_result.encrypted_db_bytes
        )
        assert remote_result.shards == local_result.shards
        assert remote_result.engine == "remote"
        assert local_result.engine == "bfv-sharded"
        assert remote_result.scheme == local_result.scheme == "bfv"
    finally:
        local.close()
        remote.close()


@pytest.mark.parametrize("search_kernel", ["fused", "object"])
def test_kernel_parity_over_socket(fixture_db, search_kernel):
    """Both search kernels return identical flags through the wire."""
    db, query = fixture_db
    params = BFVParams.test_small(64)
    local, remote = _engine_pair(
        params, db, num_shards=2, key_seed=33, search_kernel=search_kernel
    )
    try:
        expected = find_all_matches(db, query)
        local_result = local.execute(repro.api.ExactSearch.from_bits(query))
        remote_result = remote.execute(repro.api.ExactSearch.from_bits(query))
        assert list(remote_result.matches) == expected
        assert remote_result.matches == local_result.matches
        assert remote_result.hom_ops == local_result.hom_ops
    finally:
        local.close()
        remote.close()


def test_batch_parity_and_dedup_over_socket(fixture_db):
    db, query = fixture_db
    params = BFVParams.test_small(64)
    queries = [query, db[100:132].copy(), query]  # repeat exercises dedup
    local, remote = _engine_pair(params, db, num_shards=2, key_seed=35)
    try:
        batch = repro.api.BatchSearch.from_bit_arrays(queries)
        local_result = local.execute(batch)
        remote_result = remote.execute(batch)
        assert isinstance(remote_result, BatchSearchResult)
        assert (
            remote_result.matches_per_query()
            == local_result.matches_per_query()
        )
        assert remote_result.deduplicated_hits == (
            local_result.deduplicated_hits
        ) == 1
        assert all(r.engine == "remote" for r in remote_result.results)
    finally:
        local.close()
        remote.close()


def test_wildcard_executes_server_side(fixture_db):
    db, _ = fixture_db
    params = BFVParams.test_small(64)
    # literal-?-literal over real database content; both literal
    # segments are full 32-bit queries, so detection needs no
    # verification-filtered short-query candidates
    bits = db[8:80].copy()
    mask = np.ones(72, dtype=np.uint8)
    mask[32:40] = 0
    local, remote = _engine_pair(params, db, num_shards=2, key_seed=37)
    try:
        request = WildcardSearch(tuple(bits), tuple(mask))
        local_result = local.execute(request)
        remote_result = remote.execute(request)
        assert remote_result.matches == local_result.matches
        assert 8 in remote_result.matches
    finally:
        local.close()
        remote.close()


def test_open_session_remote_with_session_surface(fixture_db):
    """Sessions (sync search, submit futures, batch) work unchanged."""
    db, query = fixture_db
    expected = find_all_matches(db, query)
    with repro.open_session(
        "remote", key_seed=39, num_shards=2,
        params=BFVParams.test_small(64), db_bits=db,
    ) as session:
        result = session.search(query)
        assert list(result.matches) == expected
        futures = session.submit_batch([query, query])
        for future in futures:
            assert list(future.result(timeout=60).matches) == expected
        batch = session.search_batch([query, db[100:132]])
        assert batch.num_queries == 2
        assert isinstance(batch.results[0], SearchResult)


def test_negotiated_capabilities_enforced_client_side(fixture_db):
    """A capability-limited backing engine's limits are negotiated in
    the WELCOME handshake and enforced before any bytes move."""
    db, _ = fixture_db
    from repro.api import CapabilityError

    remote = RemoteEngine(engine="yasuda", seed=41)
    try:
        caps = remote.capabilities
        assert caps.scheme == "bfv-arith"
        assert caps.max_query_bits == 32
        assert not caps.wildcard
        remote.outsource(db[:256])
        with pytest.raises(CapabilityError, match="caps queries"):
            remote.execute(
                repro.api.ExactSearch.from_bits(np.ones(40, dtype=np.uint8))
            )
    finally:
        remote.close()


def test_capability_errors_cross_the_wire(fixture_db):
    """A raw client (no negotiated pre-check) still gets the typed
    CapabilityError back from the server's session layer."""
    db, _ = fixture_db
    from repro.api import CapabilityError
    from repro.net import Client, ServiceThread

    with ServiceThread("yasuda", seed=43) as service:
        with Client(service.address) as client:
            client.outsource(db[:256])
            with pytest.raises(CapabilityError, match="caps queries"):
                client.search(np.ones(40, dtype=np.uint8))


def test_close_is_graceful_and_idempotent(fixture_db):
    db, query = fixture_db
    remote = RemoteEngine(
        engine="bfv-sharded", params=BFVParams.test_small(64),
        num_shards=2, key_seed=43,
    )
    remote.outsource(db)
    remote.execute(repro.api.ExactSearch.from_bits(query))
    remote.close()
    remote.close()  # idempotent
