"""Framing + payload codec round-trips for the CMN1 wire protocol.

Property tests sweep frame sizes from empty through >64 KiB (the
serialized-ciphertext regime: one n=8192, q=2**32 ciphertext is 64 KiB
of coefficients before the header), both through the in-memory codec
and through a real socket pair with the sync reader.
"""

import socket
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.requests import (
    BatchSearch,
    BatchSearchResult,
    ExactSearch,
    HomOpTally,
    SearchResult,
    ShardBreakdown,
    WildcardSearch,
)
from repro.net import codec
from repro.net.framing import (
    HEADER_BYTES,
    Frame,
    FrameType,
    FramingError,
    decode_frame,
    encode_frame,
    read_frame_sync,
    write_frame_sync,
)
from repro.verify import VerifyPolicy

# -- frame layer -------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    ftype=st.sampled_from(list(FrameType)),
    request_id=st.integers(min_value=0, max_value=2**64 - 1),
    payload=st.binary(max_size=512),
)
def test_frame_roundtrip_small(ftype, request_id, payload):
    frame = Frame(ftype, request_id, payload)
    assert decode_frame(encode_frame(frame)) == frame


@settings(max_examples=8, deadline=None)
@given(
    size=st.one_of(
        st.integers(min_value=0, max_value=256),
        # the ciphertext regime: beyond one 64 KiB socket buffer
        st.integers(min_value=(1 << 16) + 1, max_value=(1 << 16) + 100_000),
    ),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_frame_roundtrip_over_socket(size, seed):
    """Exact-length reads survive payloads larger than one recv."""
    rng = np.random.default_rng(seed)
    payload = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
    frame = Frame(FrameType.RESULT, seed, payload)
    a, b = socket.socketpair()
    try:
        writer = threading.Thread(target=write_frame_sync, args=(a, frame))
        writer.start()
        got = read_frame_sync(b)
        writer.join()
        assert got == frame
    finally:
        a.close()
        b.close()


def test_frame_carries_serialized_ciphertext_over_64k():
    """A real he/serialize ciphertext blob >64 KiB rides one frame."""
    from repro.he import BFVContext, BFVParams, KeyGenerator
    from repro.he.serialize import deserialize_ciphertext, serialize_ciphertext

    params = BFVParams(n=8192, q=1 << 32, t=1 << 16, name="frame-64k")
    ctx = BFVContext(params, seed=3)
    keygen = KeyGenerator(params, seed=3)
    sk = keygen.secret_key()
    pk = keygen.public_key(sk)
    ct = ctx.encrypt(ctx.plaintext(np.arange(params.n) % params.t), pk)
    blob = serialize_ciphertext(ct)
    assert len(blob) > 1 << 16

    frame = decode_frame(encode_frame(Frame(FrameType.RESULT, 1, blob)))
    restored = deserialize_ciphertext(frame.payload, ctx)
    assert ctx.decrypt(restored, sk).poly.coeffs.tolist() == (
        ctx.decrypt(ct, sk).poly.coeffs.tolist()
    )


def test_clean_eof_returns_none():
    a, b = socket.socketpair()
    a.close()
    assert read_frame_sync(b) is None
    b.close()


def test_bad_magic_raises():
    blob = b"XXXX" + encode_frame(Frame(FrameType.PING, 0))[4:]
    with pytest.raises(FramingError, match="magic"):
        decode_frame(blob)


def test_truncated_payload_raises():
    blob = encode_frame(Frame(FrameType.RESULT, 9, b"abcdef"))
    with pytest.raises(FramingError, match="truncated"):
        decode_frame(blob[: HEADER_BYTES + 3])


def test_unknown_frame_type_raises():
    blob = bytearray(encode_frame(Frame(FrameType.PING, 0)))
    blob[4] = 250
    with pytest.raises(FramingError, match="unknown frame type"):
        decode_frame(bytes(blob))


def test_oversized_length_prefix_rejected():
    import struct

    header = struct.pack("<4sBQI", b"CMN1", 1, 0, (1 << 30) + 1)
    with pytest.raises(FramingError, match="exceeds bound"):
        decode_frame(header)


# -- request payloads --------------------------------------------------------

_POLICIES = st.sampled_from(list(VerifyPolicy))
_BITS = st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=96)


@settings(max_examples=50, deadline=None)
@given(bits=_BITS, policy=_POLICIES,
       deadline_s=st.one_of(st.none(), st.floats(0, 60)),
       tenant=st.sampled_from(["", "alice", "tenant-7"]))
def test_exact_request_roundtrip(bits, policy, deadline_s, tenant):
    request = ExactSearch.from_bits(bits, verify=policy)
    ftype, payload = codec.encode_request(request, deadline_s, tenant)
    assert ftype is FrameType.SEARCH
    decoded, got_deadline, got_tenant = codec.decode_request(ftype, payload)
    assert decoded == request
    assert got_deadline == deadline_s
    assert got_tenant == tenant


@settings(max_examples=50, deadline=None)
@given(data=st.data(), policy=_POLICIES)
def test_wildcard_request_roundtrip(data, policy):
    size = data.draw(st.integers(min_value=1, max_value=64))
    bits = data.draw(
        st.lists(st.integers(0, 1), min_size=size, max_size=size)
    )
    mask = data.draw(
        st.lists(st.integers(0, 1), min_size=size, max_size=size).filter(any)
    )
    request = WildcardSearch(tuple(bits), tuple(mask), verify=policy)
    ftype, payload = codec.encode_request(request, None)
    assert ftype is FrameType.WILDCARD
    decoded, _, tenant = codec.decode_request(ftype, payload)
    assert decoded == request
    assert tenant == ""


@settings(max_examples=30, deadline=None)
@given(
    queries=st.lists(_BITS, min_size=1, max_size=6),
    policies=st.lists(_POLICIES, min_size=6, max_size=6),
    batch_policy=_POLICIES,
)
def test_batch_request_roundtrip(queries, policies, batch_policy):
    request = BatchSearch(
        tuple(
            ExactSearch.from_bits(bits, verify=policy)
            for bits, policy in zip(queries, policies)
        ),
        verify=batch_policy,
    )
    ftype, payload = codec.encode_request(request, 2.5, "bob")
    assert ftype is FrameType.BATCH
    decoded, deadline_s, tenant = codec.decode_request(ftype, payload)
    assert decoded == request
    assert deadline_s == 2.5
    assert tenant == "bob"


# -- result payloads ---------------------------------------------------------

_RESULTS = st.builds(
    SearchResult,
    matches=st.lists(
        st.integers(min_value=0, max_value=2**40), max_size=16
    ).map(tuple),
    engine=st.sampled_from(["bfv", "bfv-sharded", "remote", "plaintext"]),
    scheme=st.sampled_from(["bfv", "none", "tfhe"]),
    hom_ops=st.builds(
        HomOpTally,
        additions=st.integers(0, 2**32),
        multiplications=st.integers(0, 1000),
        plain_multiplications=st.integers(0, 1000),
        automorphisms=st.integers(0, 1000),
        bootstraps=st.integers(0, 1000),
    ),
    elapsed_seconds=st.floats(0, 1e6),
    verified=st.booleans(),
    num_variants=st.integers(0, 64),
    encrypted_db_bytes=st.integers(0, 2**48),
    shards=st.lists(
        st.builds(
            ShardBreakdown,
            shard_id=st.integers(0, 64),
            num_polynomials=st.integers(0, 2**20),
            hom_adds=st.integers(0, 2**40),
            tasks_executed=st.integers(0, 2**20),
        ),
        max_size=4,
    ).map(tuple),
)


@settings(max_examples=50, deadline=None)
@given(result=_RESULTS)
def test_result_roundtrip(result):
    assert codec.decode_result(codec.encode_result(result)) == result


@settings(max_examples=20, deadline=None)
@given(
    results=st.lists(_RESULTS, min_size=1, max_size=5),
    elapsed=st.floats(0, 1e4),
    dedup=st.integers(0, 100),
)
def test_batch_result_roundtrip(results, elapsed, dedup):
    batch = BatchSearchResult(
        results=tuple(results),
        engine="remote",
        elapsed_seconds=elapsed,
        deduplicated_hits=dedup,
    )
    assert codec.decode_batch_result(codec.encode_batch_result(batch)) == batch


# -- handshake / stats / error payloads --------------------------------------


def test_welcome_roundtrip():
    welcome = codec.Welcome(
        protocol_version=1,
        engine="bfv-sharded",
        scheme="bfv",
        wildcard=True,
        batching=True,
        sharded=False,
        verify=True,
        max_query_bits=None,
        db_bit_length=4096,
        tenant="alice",
    )
    assert codec.decode_welcome(codec.encode_welcome(welcome)) == welcome
    capped = codec.Welcome(
        protocol_version=1, engine="bonte", scheme="bfv-arith",
        wildcard=False, batching=False, sharded=False, verify=False,
        max_query_bits=4, db_bit_length=None,
    )
    assert codec.decode_welcome(codec.encode_welcome(capped)) == capped


def test_outsource_roundtrip():
    rng = np.random.default_rng(5)
    bits = rng.integers(0, 2, 777).astype(np.uint8)
    assert np.array_equal(
        codec.decode_outsource(codec.encode_outsource(bits)), bits
    )
    assert codec.decode_outsource_ok(codec.encode_outsource_ok(777)) == 777


def test_error_roundtrip_and_exception_mapping():
    from repro.api.capabilities import CapabilityError

    payload = codec.encode_error(codec.ERR_CAPABILITY, "no wildcard path")
    code, message = codec.decode_error(payload)
    assert (code, message) == (codec.ERR_CAPABILITY, "no wildcard path")
    assert isinstance(
        codec.error_to_exception(code, message), CapabilityError
    )
    assert isinstance(
        codec.error_to_exception(codec.ERR_SHED, "x"), codec.RequestShedError
    )
    assert isinstance(
        codec.error_to_exception(codec.ERR_DRAINING, "x"),
        codec.ServiceDrainingError,
    )
    assert isinstance(
        codec.error_to_exception(codec.ERR_REMOTE, "x"), codec.RemoteError
    )


def test_stats_roundtrip():
    stats = codec.ServiceStats(
        active_connections=3,
        total_connections=11,
        accepted=100,
        completed=95,
        shed=4,
        failed=1,
        draining=True,
        scheduler_sheds=4,
        served_queries=95,
        wall_p50=0.011,
        wall_p95=0.045,
        wall_p99=0.101,
        throughput_qps=812.5,
        cache_hit_rate=0.75,
        executor="process",
        worker_restarts=2,
        dead_shard_degradations=1,
        report_text="== serving batch report ==\n...",
        report_json='{"version": 1, "sheds": 4}',
        admit_rejected=6,
        degraded_shards=1,
        tenants_json='{"alice": {"completed": 40}}',
    )
    assert codec.decode_stats(codec.encode_stats(stats)) == stats


def test_hello_roundtrip_and_v1_compat():
    assert codec.decode_hello(codec.encode_hello(2, "carol")) == (2, "carol")
    assert codec.decode_hello(codec.encode_hello(2)) == (2, "")
    # a protocol-v1 HELLO is the bare 2-byte version word
    import struct

    assert codec.decode_hello(struct.pack("<H", 1)) == (1, "")


def test_request_payload_trailing_bytes_rejected():
    ftype, payload = codec.encode_request(ExactSearch.from_bits([1, 0, 1]))
    with pytest.raises(FramingError, match="trailing"):
        codec.decode_request(ftype, payload + b"\x00")
