"""Multi-tenant TCP service: routing, isolation, fairness, accounting.

One AsyncSearchService fronts three tenants, each with its own keypair
and outsourced database.  The tests drive real clients with tenant
identities bound at HELLO and assert:

* every tenant's searches hit only its own database (result isolation),
  and tenant A's key cannot decrypt tenant B's ciphertexts (crypto
  isolation);
* unknown / unbound / mismatched tenant identities are rejected with
  the typed ERR_TENANT error;
* the STATS frame carries per-tenant accounting rows that partition
  the global counters.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.he import BFVParams
from repro.net import Client, ServiceThread
from repro.net.codec import TenantRejectedError
from repro.tenancy import TenantRegistry, TenantSpec

PARAMS = BFVParams.test_small(64)
TENANTS = ("alice", "bob", "carol")


def _planted_db(seed: int, bits: int = 32):
    rng = np.random.default_rng(seed)
    db = rng.integers(0, 2, 2048).astype(np.uint8)
    q = rng.integers(0, 2, bits).astype(np.uint8)
    off = 100 + 37 * seed
    db[off : off + bits] = q
    return db, q, off


@pytest.fixture(scope="module")
def tenant_service():
    registry = TenantRegistry(
        [
            TenantSpec.parse("alice:11"),
            TenantSpec.parse("bob:22:2.0"),
            TenantSpec.parse("carol:33"),
        ],
        params=PARAMS,
        num_shards=2,
        global_cache_bytes=4 << 20,
    )
    with ServiceThread(tenants=registry) as service:
        yield service


def test_each_tenant_sees_only_its_own_database(tenant_service):
    plants = {}
    for seed, tenant in enumerate(TENANTS, start=1):
        db, q, off = _planted_db(seed)
        plants[tenant] = (db, q, off)
        with Client(tenant_service.address, tenant=tenant) as client:
            assert client.welcome.tenant == tenant
            client.outsource(db)
    for tenant in TENANTS:
        _, own_q, own_off = plants[tenant]
        with Client(tenant_service.address, tenant=tenant) as client:
            assert own_off in client.search(own_q).matches
            # another tenant's planted needle is absent from this db
            other = TENANTS[(TENANTS.index(tenant) + 1) % 3]
            _, other_q, other_off = plants[other]
            assert other_off not in client.search(other_q).matches


def test_cross_tenant_key_cannot_decrypt(tenant_service):
    registry = tenant_service.service.tenants
    clients = {
        tid: registry.get(tid).session.engine.engine.client
        for tid in ("alice", "bob")
    }
    ctx = clients["alice"].ctx
    coeffs = np.arange(PARAMS.n, dtype=np.int64) % PARAMS.t
    ct = ctx.encrypt(ctx.plaintext(coeffs), clients["alice"].pk)
    assert np.array_equal(
        ctx.decrypt(ct, clients["alice"].sk).poly.coeffs, coeffs
    )
    assert not np.array_equal(
        ctx.decrypt(ct, clients["bob"].sk).poly.coeffs, coeffs
    )


def test_unknown_tenant_rejected_at_hello(tenant_service):
    with pytest.raises(TenantRejectedError):
        with Client(tenant_service.address, tenant="mallory") as client:
            client.search(np.ones(8, dtype=np.uint8))


def test_unbound_connection_rejected(tenant_service):
    """A multi-tenant service refuses connections with no tenant id."""
    with pytest.raises(TenantRejectedError):
        with Client(tenant_service.address) as client:
            client.search(np.ones(8, dtype=np.uint8))


def test_stats_partition_across_tenants(tenant_service):
    with ServiceThread(
        tenants=TenantRegistry(
            [TenantSpec.parse("a:1"), TenantSpec.parse("b:2")],
            params=PARAMS,
            num_shards=1,
        )
    ) as service:
        searches = {"a": 3, "b": 1}
        for tenant, count in searches.items():
            db, q, off = _planted_db(ord(tenant) % 7)
            with Client(service.address, tenant=tenant) as client:
                client.outsource(db)
                for _ in range(count):
                    assert off in client.search(q).matches
        with Client(service.address, tenant="a") as client:
            stats = client.stats()
        rows = json.loads(stats.tenants_json)
        assert set(rows) == {"a", "b"}
        for tenant, count in searches.items():
            assert rows[tenant]["completed"] == count
            assert rows[tenant]["accepted"] == count
        # per-tenant rows partition the global counters
        assert stats.completed == sum(r["completed"] for r in rows.values())
        assert stats.accepted == sum(r["accepted"] for r in rows.values())
        assert stats.shed == sum(r["shed"] for r in rows.values())
        assert rows["a"]["p99_ms"] >= 0.0
        assert rows["a"]["cache_bytes"] >= 0


def test_async_client_binds_tenant(tenant_service):
    import asyncio

    from repro.net import AsyncClient

    db, q, off = _planted_db(9)

    async def main():
        client = await AsyncClient.connect(
            tenant_service.address, tenant="carol"
        )
        try:
            assert client.welcome.tenant == "carol"
            await client.outsource(db)
            result = await (await client.submit(q))
            assert off in result.matches
        finally:
            await client.aclose()

    asyncio.run(main())


def test_remote_engine_and_session_thread_tenant(tenant_service):
    """repro.open_session('remote', tenant=...) routes by tenant."""
    import repro

    db, q, off = _planted_db(4)
    with repro.open_session(
        "remote",
        address=tenant_service.address,
        tenant="bob",
        db_bits=db,
    ) as session:
        assert off in session.search(q).matches
