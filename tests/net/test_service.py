"""Behavioral tests for the TCP service + client SDK.

Covers the tentpole's operational guarantees: concurrent-client
submission ordering, bounded-in-flight backpressure with
oldest-deadline shedding (fed into ServeScheduler accounting),
reconnect-and-resend, graceful drain, and the stats frame.

The crypto-heavy lanes use tiny BFV parameters; shedding/ordering
lanes use the plaintext oracle (optionally slowed) so timing-sensitive
assertions stay deterministic.
"""

import threading
import time

import numpy as np
import pytest

import repro
from repro.api import PlaintextEngine, Session
from repro.api.requests import ExactSearch
from repro.he import BFVParams
from repro.net import (
    AsyncClient,
    Client,
    RequestShedError,
    ServiceDrainingError,
    ServiceThread,
    parse_address,
)


class SlowPlaintextEngine(PlaintextEngine):
    """Plaintext oracle with a fixed per-search delay (test harness)."""

    key = "slow-plaintext"

    def __init__(self, delay: float):
        super().__init__()
        self.delay = delay

    def _exact(self, bits, verify):
        time.sleep(self.delay)
        return super()._exact(bits, verify)


def _planted_db(num_queries: int, bits: int = 24, seed: int = 7):
    """A database with one unique planted pattern per query."""
    rng = np.random.default_rng(seed)
    db = rng.integers(0, 2, 4096).astype(np.uint8)
    queries, offsets = [], []
    for k in range(num_queries):
        q = rng.integers(0, 2, bits).astype(np.uint8)
        off = 100 + 200 * k
        db[off : off + bits] = q
        queries.append(q)
        offsets.append(off)
    return db, queries, offsets


@pytest.fixture()
def plaintext_service():
    with ServiceThread(session=Session(PlaintextEngine())) as service:
        yield service


def test_parse_address():
    assert parse_address("127.0.0.1:9137") == ("127.0.0.1", 9137)
    assert parse_address(("::1", 80)) == ("::1", 80)
    with pytest.raises(ValueError):
        parse_address("no-port")


def test_welcome_reports_engine_and_db_state(plaintext_service):
    with Client(plaintext_service.address) as client:
        welcome = client.welcome
        assert welcome.engine == "plaintext"
        assert welcome.scheme == "none"
        assert welcome.db_bit_length is None
        client.outsource(np.zeros(128, dtype=np.uint8))
        # a fresh handshake sees the outsourced length
    with Client(plaintext_service.address) as client2:
        assert client2.welcome.db_bit_length == 128


def test_search_before_outsource_is_a_remote_error(plaintext_service):
    from repro.net import RemoteError

    with Client(plaintext_service.address) as client:
        with pytest.raises(RemoteError, match="outsource"):
            client.search(np.ones(8, dtype=np.uint8))


def test_concurrent_clients_get_their_own_results(plaintext_service):
    """N clients x K in-flight queries each: every future resolves with
    the matches of its own query, whatever coalescing happened."""
    db, queries, offsets = _planted_db(num_queries=12)
    with Client(plaintext_service.address) as seed_client:
        seed_client.outsource(db)

    results = {}
    errors = []

    def run_client(client_idx: int) -> None:
        try:
            with Client(plaintext_service.address, pool_size=1) as client:
                futures = [
                    (k, client.submit(queries[k]))
                    for k in range(client_idx, 12, 3)
                ]
                for k, future in futures:
                    results[(client_idx, k)] = future.result(timeout=30).matches
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)

    threads = [
        threading.Thread(target=run_client, args=(i,)) for i in range(3)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    for (_, k), matches in results.items():
        assert offsets[k] in matches, f"query {k} lost its own result"


def test_submission_order_per_connection(plaintext_service):
    """Futures of one client resolve with their own query's result in
    submission order (the Session guarantee, preserved over the wire)."""
    db, queries, offsets = _planted_db(num_queries=8)
    with Client(plaintext_service.address, pool_size=1) as client:
        client.outsource(db)
        futures = [client.submit(q) for q in queries]
        for k, future in enumerate(futures):
            assert offsets[k] in future.result(timeout=30).matches


def test_backpressure_sheds_oldest_deadline():
    """With the in-flight bound full, the request with the earliest
    deadline is the one shed — queued victims are cancelled, and an
    incoming request with the oldest deadline sheds itself."""
    engine = SlowPlaintextEngine(0.4)
    engine.outsource(np.zeros(64, dtype=np.uint8))
    with ServiceThread(
        session=Session(engine), max_in_flight=2
    ) as service:
        with Client(service.address, pool_size=1) as client:
            query = np.ones(8, dtype=np.uint8)
            # A starts executing; B queues behind it.
            fut_a = client.submit(query)
            time.sleep(0.15)  # let the dispatcher start A
            fut_b = client.submit(query, deadline=5.0)
            time.sleep(0.05)
            # C has the oldest deadline of the sheddable set -> C shed.
            fut_c = client.submit(query, deadline=0.05)
            with pytest.raises(RequestShedError):
                fut_c.result(timeout=30)
            # D out-deadlines queued B -> B (oldest deadline) cancelled.
            fut_d = client.submit(query, deadline=60.0)
            with pytest.raises(RequestShedError):
                fut_b.result(timeout=30)
            assert fut_a.result(timeout=30).matches == ()
            assert fut_d.result(timeout=30).matches == ()

            stats = client.stats()
            assert stats.shed == 2
            assert stats.completed >= 2


def test_sheds_feed_serve_scheduler_accounting():
    """Front-end sheds land in the backing engine's ServeScheduler."""
    from repro.api import ShardedEngine

    class SlowShardedEngine(ShardedEngine):
        # sleep *before* the crypto so the admission window is open
        # while the first request holds the dispatcher
        key = "slow-sharded"

        def _exact(self, bits, verify):
            time.sleep(0.4)
            return super()._exact(bits, verify)

    params = BFVParams.test_small(64)
    engine = SlowShardedEngine(params=params, num_shards=2, key_seed=5)
    with ServiceThread(
        session=Session(engine), max_in_flight=1
    ) as service:
        with Client(service.address, pool_size=1) as client:
            db, queries, offsets = _planted_db(num_queries=2, bits=32)
            client.outsource(db)
            fut_keep = client.submit(queries[0], deadline=30.0)
            time.sleep(0.1)  # first request is in flight (sleeping)
            fut_shed = client.submit(queries[1], deadline=0.01)
            with pytest.raises(RequestShedError):
                fut_shed.result(timeout=60)
            assert offsets[0] in fut_keep.result(timeout=60).matches
            stats = client.stats()
            assert stats.scheduler_sheds == stats.shed == 1
        scheduler = service.service.session.engine.engine.scheduler
        assert scheduler.sheds == 1


def test_reconnect_after_idle_drop(plaintext_service):
    """A connection dropped while idle is re-established on next use."""
    db, queries, offsets = _planted_db(num_queries=1)
    with Client(plaintext_service.address, pool_size=1) as client:
        client.outsource(db)
        assert offsets[0] in client.search(queries[0]).matches
        # Simulate the network dropping the socket under the client.
        conn = client._pool[0]
        conn._sock.shutdown(2)
        time.sleep(0.1)
        assert offsets[0] in client.search(queries[0]).matches


def test_reconnect_resends_in_flight_requests():
    """Requests outstanding on a dropped connection are replayed onto a
    fresh connection and still resolve."""
    engine = SlowPlaintextEngine(0.5)
    db, queries, offsets = _planted_db(num_queries=1)
    engine.outsource(db)
    with ServiceThread(session=Session(engine)) as service:
        with Client(service.address, pool_size=1) as client:
            future = client.submit(queries[0])
            time.sleep(0.1)  # request is on the wire / executing
            client._pool[0]._sock.shutdown(2)  # drop the connection
            # the reader notices, reconnects, resends; the resent
            # request executes again and resolves the same future
            assert offsets[0] in future.result(timeout=30).matches


def test_async_client(plaintext_service):
    import asyncio

    db, queries, offsets = _planted_db(num_queries=3)

    async def main():
        client = await AsyncClient.connect(plaintext_service.address)
        try:
            assert (await client.outsource(db)) == len(db)
            futures = [await client.submit(q) for q in queries]
            results = await asyncio.gather(*futures)
            for k, result in enumerate(results):
                assert offsets[k] in result.matches
            batch = await client.search_batch(queries)
            assert batch.num_queries == 3
            stats = await client.stats()
            assert stats.completed >= 4
        finally:
            await client.aclose()

    asyncio.run(main())


def test_stats_frame_includes_serve_report():
    params = BFVParams.test_small(64)
    with ServiceThread(
        "bfv-sharded", params=params, num_shards=2, key_seed=6
    ) as service:
        with Client(service.address) as client:
            db, queries, _ = _planted_db(num_queries=3, bits=32)
            client.outsource(db)
            client.search_batch(queries)
            stats = client.stats()
            assert stats.served_queries == 3
            assert stats.throughput_qps > 0
            assert "serving batch report" in stats.report_text
            assert stats.wall_p50 <= stats.wall_p95 <= stats.wall_p99


def test_drain_completes_in_flight_then_rejects():
    engine = SlowPlaintextEngine(0.3)
    db, queries, offsets = _planted_db(num_queries=1)
    engine.outsource(db)
    with ServiceThread(session=Session(engine)) as service:
        with Client(service.address, pool_size=2) as client:
            in_flight = client.submit(queries[0])
            time.sleep(0.05)
            drainer = threading.Thread(target=client.drain)
            drainer.start()
            # in-flight work completes during the drain
            assert offsets[0] in in_flight.result(timeout=30).matches
            drainer.join(timeout=30)
            assert not drainer.is_alive()
            stats_draining = True  # service refuses new work afterwards
            try:
                client.search(queries[0])
                stats_draining = False
            except (ServiceDrainingError, ConnectionError, OSError):
                pass
            assert stats_draining


def test_open_session_remote_roundtrip(plaintext_service):
    """repro.open_session('remote', address=...) talks to the service."""
    db, queries, offsets = _planted_db(num_queries=1)
    with repro.open_session(
        "remote", address=plaintext_service.address, db_bits=db
    ) as session:
        result = session.search(queries[0])
    assert offsets[0] in result.matches
    assert result.engine == "remote"
    assert result.scheme == "none"  # backing engine's scheme, negotiated
