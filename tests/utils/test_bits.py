"""Unit tests for the bit-vector helpers."""

import numpy as np
import pytest

from repro.utils.bits import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    chunk_bits,
    int_to_bits,
    negate_bits,
    random_bits,
    text_to_bits,
    unchunk_bits,
)


class TestByteConversion:
    def test_roundtrip(self):
        data = b"\x00\xff\xa5\x12"
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_msb_first(self):
        bits = bytes_to_bits(b"\x80")
        assert bits[0] == 1 and not bits[1:].any()

    def test_empty(self):
        assert len(bytes_to_bits(b"")) == 0

    def test_text(self):
        assert len(text_to_bits("abc")) == 24


class TestIntConversion:
    @pytest.mark.parametrize("value,width", [(0, 8), (255, 8), (0xABCD, 16), (1, 1)])
    def test_roundtrip(self, value, width):
        assert bits_to_int(int_to_bits(value, width)) == value

    def test_big_endian(self):
        bits = int_to_bits(0b100, 3)
        assert list(bits) == [1, 0, 0]

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(256, 8)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 8)


class TestChunking:
    def test_basic(self):
        bits = np.array([1, 0, 0, 0, 0, 0, 0, 1], dtype=np.uint8)
        chunks = chunk_bits(bits, 4)
        assert list(chunks) == [0b1000, 0b0001]

    def test_padding(self):
        bits = np.array([1, 1], dtype=np.uint8)
        chunks = chunk_bits(bits, 4)
        assert list(chunks) == [0b1100]  # zero-padded tail

    def test_roundtrip(self, rng):
        bits = random_bits(160, rng)
        assert np.array_equal(unchunk_bits(chunk_bits(bits, 16), 16), bits)

    def test_chunk_16_range(self, rng):
        chunks = chunk_bits(random_bits(320, rng), 16)
        assert all(0 <= int(c) < (1 << 16) for c in chunks)


class TestNegation:
    def test_negate(self):
        bits = np.array([0, 1, 1, 0], dtype=np.uint8)
        assert list(negate_bits(bits)) == [1, 0, 0, 1]

    def test_involution(self, rng):
        bits = random_bits(64, rng)
        assert np.array_equal(negate_bits(negate_bits(bits)), bits)

    def test_negated_chunk_is_complement(self, rng):
        # ~chunk + chunk == all-ones: the CIPHERMATCH identity
        bits = random_bits(16, rng)
        chunk = int(chunk_bits(bits, 16)[0])
        neg = int(chunk_bits(negate_bits(bits), 16)[0])
        assert chunk + neg == (1 << 16) - 1


class TestRandomBits:
    def test_length_and_range(self, rng):
        bits = random_bits(100, rng)
        assert len(bits) == 100
        assert set(np.unique(bits)).issubset({0, 1})
