"""FaultInjector stepping semantics, payload corruption, shared hooks."""

import pytest

from repro.faults import (
    SITE_CLIENT_REQUEST,
    SITE_FRAME_SEND,
    SITE_SHARD_TASK,
    WORKER_CRASH,
    FaultInjector,
    FaultPlan,
    corrupt_payload,
    crash_shard_worker,
    install_engine_injector,
)
from repro.net.framing import Frame


class TestStep:
    def test_fires_on_exact_ordinal(self):
        injector = FaultInjector(FaultPlan().worker_crash(2, shard=0))
        assert injector.step(SITE_SHARD_TASK, 0) == ()
        assert injector.step(SITE_SHARD_TASK, 0) == ()
        hits = injector.step(SITE_SHARD_TASK, 0)
        assert len(hits) == 1 and hits[0].kind == WORKER_CRASH

    def test_fires_exactly_once(self):
        injector = FaultInjector(FaultPlan().worker_crash(0, shard=0))
        assert injector.step(SITE_SHARD_TASK, 0)
        # counter wraps past the ordinal; spent events never re-fire
        for _ in range(5):
            assert injector.step(SITE_SHARD_TASK, 0) == ()
        assert len(injector.fired) == 1

    def test_counters_are_per_site_and_target(self):
        injector = FaultInjector(FaultPlan().worker_crash(1, shard=1))
        # shard 0 visits don't advance shard 1's counter
        assert injector.step(SITE_SHARD_TASK, 0) == ()
        assert injector.step(SITE_SHARD_TASK, 0) == ()
        assert injector.step(SITE_SHARD_TASK, 1) == ()
        assert injector.step(SITE_SHARD_TASK, 1)

    def test_unscoped_event_fires_on_any_target(self):
        injector = FaultInjector(FaultPlan().worker_crash(0))
        assert injector.step(SITE_SHARD_TASK, 7)
        assert injector.step(SITE_SHARD_TASK, 0) == ()

    def test_scoped_event_ignores_other_targets(self):
        injector = FaultInjector(FaultPlan().worker_crash(0, shard=2))
        assert injector.step(SITE_SHARD_TASK, 0) == ()
        assert injector.step(SITE_SHARD_TASK, 2)

    def test_wrong_site_never_fires(self):
        injector = FaultInjector(FaultPlan().worker_crash(0))
        assert injector.step(SITE_CLIENT_REQUEST) == ()
        assert injector.pending  # still scheduled

    def test_two_events_same_visit(self):
        plan = FaultPlan().worker_crash(1, shard=0).slow_shard(1, shard=0)
        injector = FaultInjector(plan)
        injector.step(SITE_SHARD_TASK, 0)
        assert len(injector.step(SITE_SHARD_TASK, 0)) == 2


class TestAccounting:
    def test_visits_pending_summary_fired(self):
        plan = FaultPlan().worker_crash(0, shard=0).connection_drop(5)
        injector = FaultInjector(plan)
        injector.step(SITE_SHARD_TASK, 0)
        assert injector.visits(SITE_SHARD_TASK, 0) == 1
        assert injector.visits(SITE_CLIENT_REQUEST) == 0
        assert [ev.kind for ev in injector.pending] == ["conn_drop"]
        assert injector.summary() == {WORKER_CRASH: 1}
        fired = injector.fired[0]
        assert (fired.site, fired.target, fired.ordinal) == (SITE_SHARD_TASK, 0, 0)
        assert fired.event.kind == WORKER_CRASH


class TestCorruptPayload:
    def test_deterministic_and_length_preserving(self):
        payload = bytes(range(256)) * 3
        a = corrupt_payload(payload, seed=5)
        b = corrupt_payload(payload, seed=5)
        assert a == b
        assert len(a) == len(payload)
        assert a != payload

    def test_different_seeds_differ(self):
        payload = bytes(range(256))
        assert corrupt_payload(payload, seed=1) != corrupt_payload(payload, seed=2)

    def test_empty_passthrough(self):
        assert corrupt_payload(b"") == b""

    def test_seed_zero_uses_default(self):
        payload = b"x" * 64
        assert corrupt_payload(payload, 0) == corrupt_payload(payload, 0)
        assert corrupt_payload(payload, 0) != payload


class TestFrameHook:
    def test_corrupts_scheduled_frame_only(self):
        injector = FaultInjector(FaultPlan().corrupt_frame(1, seed=3))
        hook = injector.frame_hook()
        f0 = Frame(1, 10, b"payload-zero")
        f1 = Frame(1, 11, b"payload-one!")
        out0 = hook(f0)
        out1 = hook(f1)
        assert out0.payload == f0.payload
        assert out1.payload != f1.payload
        assert len(out1.payload) == len(f1.payload)
        assert (out1.type, out1.request_id) == (f1.type, f1.request_id)
        assert injector.summary() == {"corrupt_frame": 1}

    def test_counts_every_outbound_frame(self):
        injector = FaultInjector(FaultPlan())
        hook = injector.frame_hook()
        for i in range(3):
            hook(Frame(1, i, b"x"))
        assert injector.visits(SITE_FRAME_SEND) == 3


class _FakeCrashable:
    def __init__(self):
        self.crashed = []

    def crash_worker(self, shard_id):
        self.crashed.append(shard_id)


class TestSharedHooks:
    def test_crash_shard_worker_duck_types(self):
        executor = _FakeCrashable()
        assert crash_shard_worker(executor, 1)
        assert executor.crashed == [1]
        assert not crash_shard_worker(object(), 0)  # thread executor: no-op

    def test_install_engine_injector_unwraps_facades(self):
        class Inner:
            fault_injector = None

        class Facade:
            def __init__(self, engine):
                self.engine = engine

        inner = Inner()
        injector = FaultInjector(FaultPlan())
        assert install_engine_injector(Facade(Facade(inner)), injector)
        assert inner.fault_injector is injector
        assert not install_engine_injector(object(), injector)


class TestEngineIntegration:
    def test_sharded_engine_exposes_injector_slot(self):
        import repro
        from repro.he import BFVParams

        with repro.open_session(
            "bfv-sharded", params=BFVParams.test_small(64), num_shards=2, key_seed=1
        ) as session:
            injector = FaultInjector(FaultPlan())
            assert install_engine_injector(session.engine, injector)
            inner = session.engine
            while not hasattr(inner, "fault_injector"):
                inner = inner.engine
            assert inner.fault_injector is injector
