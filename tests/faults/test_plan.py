"""FaultPlan: builders, spec/JSON round-trips, seeded determinism."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    CONN_DROP,
    FAULT_KINDS,
    SHED_STORM,
    SITE_CLIENT_REQUEST,
    SITE_FRAME_SEND,
    SITE_SERVER_REQUEST,
    SITE_SHARD_TASK,
    SLOW_SHARD,
    WORKER_CRASH,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
)


class TestBuilders:
    def test_chaining_accumulates_events(self):
        plan = (
            FaultPlan()
            .worker_crash(3, shard=1)
            .slow_shard(2, shard=0, delay=0.01)
            .connection_drop(10)
            .corrupt_frame(4, seed=9)
            .shed_storm(30, count=4)
        )
        assert len(plan) == 5
        assert [ev.kind for ev in plan] == [
            WORKER_CRASH, SLOW_SHARD, CONN_DROP, "corrupt_frame", SHED_STORM,
        ]

    def test_builders_return_new_plans(self):
        base = FaultPlan()
        grown = base.worker_crash(0)
        assert len(base) == 0 and len(grown) == 1

    def test_default_sites(self):
        plan = (
            FaultPlan()
            .worker_crash(0)
            .slow_shard(0)
            .connection_drop(0)
            .corrupt_frame(0)
            .shed_storm(0)
        )
        sites = [ev.site for ev in plan]
        assert sites == [
            SITE_SHARD_TASK,
            SITE_SHARD_TASK,
            SITE_CLIENT_REQUEST,
            SITE_FRAME_SEND,
            SITE_SERVER_REQUEST,
        ]

    def test_server_side_conn_drop(self):
        plan = FaultPlan().connection_drop(1, side="server")
        assert plan.events[0].site == SITE_SERVER_REQUEST

    def test_bad_side_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan().connection_drop(0, side="sideways")

    def test_event_validation(self):
        with pytest.raises(FaultPlanError):
            FaultEvent("nope", 0)
        with pytest.raises(FaultPlanError):
            FaultEvent(WORKER_CRASH, -1)
        with pytest.raises(FaultPlanError):
            FaultEvent(SHED_STORM, 0, count=0)
        with pytest.raises(FaultPlanError):
            FaultEvent(SLOW_SHARD, 0, delay=-0.1)
        with pytest.raises(FaultPlanError):
            FaultEvent(WORKER_CRASH, 0, site="nowhere")


class TestSpec:
    def test_parse_matches_builders(self):
        spec = "worker_crash@3:shard=1;conn_drop@10:side=client;shed_storm@30:count=4"
        assert FaultPlan.parse(spec) == (
            FaultPlan().worker_crash(3, shard=1).connection_drop(10).shed_storm(30, count=4)
        )

    def test_to_spec_round_trips(self):
        plan = (
            FaultPlan()
            .worker_crash(3, shard=1)
            .slow_shard(2, shard=0, delay=0.01)
            .connection_drop(10, side="server")
            .corrupt_frame(4, seed=9)
            .shed_storm(30, count=2)
        )
        assert FaultPlan.parse(plan.to_spec()) == plan

    def test_parse_rejects_garbage(self):
        for bad in ("worker_crash", "worker_crash@x", "worker_crash@1:shard",
                    "worker_crash@1:bogus=1", "martian@1"):
            with pytest.raises(FaultPlanError):
                FaultPlan.parse(bad)

    def test_empty_spec_is_empty_plan(self):
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse(" ; ")

    def test_load_file_reference(self, tmp_path):
        plan = FaultPlan().worker_crash(1, shard=0).shed_storm(5)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.load(f"@{path}") == plan
        assert FaultPlan.load("worker_crash@1:shard=0") == FaultPlan().worker_crash(1, shard=0)


class TestJson:
    def test_json_round_trip(self):
        plan = FaultPlan.seeded(11, requests=16, shards=4, faults=6)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_dict_rejects_bad_payload(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"events": "nope"})
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("{not json")


class TestSeeded:
    def test_same_seed_same_plan(self):
        assert FaultPlan.seeded(5) == FaultPlan.seeded(5)
        assert FaultPlan.seeded(5).to_json() == FaultPlan.seeded(5).to_json()

    def test_different_seeds_diverge(self):
        assert any(
            FaultPlan.seeded(a) != FaultPlan.seeded(a + 1) for a in range(5)
        )

    def test_kind_subset_respected(self):
        plan = FaultPlan.seeded(3, faults=8, kinds=(WORKER_CRASH, SLOW_SHARD))
        assert {ev.kind for ev in plan} <= {WORKER_CRASH, SLOW_SHARD}

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.seeded(0, kinds=("martian",))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), faults=st.integers(1, 8))
def test_seeded_plans_always_round_trip(seed, faults):
    """Property: every seeded plan survives JSON and (where expressible)
    spec round-trips with ordinals inside the request horizon."""
    plan = FaultPlan.seeded(seed, requests=12, shards=3, faults=faults)
    assert len(plan) == faults
    assert FaultPlan.from_json(plan.to_json()) == plan
    assert FaultPlan.parse(plan.to_spec()) == plan
    assert all(0 <= ev.at < 12 for ev in plan)
    assert all(ev.kind in FAULT_KINDS for ev in plan)


class TestPlumbing:
    def test_for_site_and_retarget(self):
        plan = FaultPlan().worker_crash(0).worker_crash(1, shard=2).connection_drop(3)
        assert len(plan.for_site(SITE_SHARD_TASK)) == 2
        pinned = plan.retarget(SITE_SHARD_TASK, 7)
        targets = [ev.target for ev in pinned.for_site(SITE_SHARD_TASK)]
        assert targets == [7, 2]  # unscoped pinned, scoped untouched
