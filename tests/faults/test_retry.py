"""RetryPolicy / BackoffState: coercion, jitter bounds, determinism."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import BackoffState, RetryPolicy, decorrelated_jitter


class TestCoerce:
    def test_none_and_small_ints_mean_no_retry(self):
        assert RetryPolicy.coerce(None) is None
        assert RetryPolicy.coerce(0) is None
        assert RetryPolicy.coerce(1) is None

    def test_int_becomes_attempt_count(self):
        policy = RetryPolicy.coerce(4)
        assert isinstance(policy, RetryPolicy)
        assert policy.max_attempts == 4

    def test_policy_passes_through(self):
        policy = RetryPolicy(max_attempts=2)
        assert RetryPolicy.coerce(policy) is policy

    def test_bool_and_garbage_rejected(self):
        with pytest.raises(TypeError):
            RetryPolicy.coerce(True)
        with pytest.raises(TypeError):
            RetryPolicy.coerce("3")


class TestValidation:
    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)


class TestBackoff:
    def test_delays_within_bounds_and_deterministic(self):
        policy = RetryPolicy(max_attempts=8, base_delay=0.05, max_delay=2.0, seed=7)
        a = [policy.begin().next_delay() for _ in range(1)]
        run1 = policy.begin()
        run2 = policy.begin()
        d1 = [run1.next_delay() for _ in range(7)]
        d2 = [run2.next_delay() for _ in range(7)]
        assert d1 == d2  # seeded policy replays bit-for-bit
        assert all(0.05 <= d <= 2.0 for d in d1 + a)

    def test_seed_override_diverges(self):
        policy = RetryPolicy(max_attempts=5, seed=7)
        d1 = [policy.begin(seed=1).next_delay() for _ in range(3)]
        d2 = [policy.begin(seed=2).next_delay() for _ in range(3)]
        assert d1 != d2

    def test_exhausted_counts_total_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        state = policy.begin()
        assert not state.exhausted  # attempt 1 of 3 in flight
        state.next_delay()
        assert not state.exhausted  # attempt 2 of 3
        state.next_delay()
        assert state.exhausted  # attempt 3 is the last

    def test_single_attempt_policy_starts_exhausted(self):
        assert RetryPolicy(max_attempts=1).begin().exhausted


class TestRetryable:
    def test_default_set_used_when_unset(self):
        policy = RetryPolicy()
        assert policy.is_retryable(ConnectionError(), (ConnectionError,))
        assert not policy.is_retryable(ValueError(), (ConnectionError,))
        assert not policy.is_retryable(ConnectionError(), ())

    def test_explicit_set_overrides_default(self):
        policy = RetryPolicy(retryable=(ValueError,))
        assert policy.is_retryable(ValueError(), (ConnectionError,))
        assert not policy.is_retryable(ConnectionError(), (ConnectionError,))


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    prev=st.floats(0.0, 10.0),
    base=st.floats(0.001, 1.0),
    cap=st.floats(1.0, 30.0),
)
def test_decorrelated_jitter_bounds(seed, prev, base, cap):
    """Property: every jitter sample lands in [min(base, cap), cap]."""
    delay = decorrelated_jitter(random.Random(seed), prev, base, cap)
    assert min(base, cap) <= delay <= cap


def test_backoff_delays_never_exceed_cap_over_long_runs():
    policy = RetryPolicy(max_attempts=64, base_delay=0.01, max_delay=0.5, seed=3)
    state = BackoffState(policy)
    for _ in range(63):
        assert 0.01 <= state.next_delay() <= 0.5
