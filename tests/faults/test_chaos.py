"""End-to-end chaos: fault plans replayed through the live stack.

Covers the degradation contract (partial results + circuit breaker),
the service-side fault hooks (shed storms, server connection drops,
fail-fast admission), client retry/backoff recovery, and the load
harness's four-term accounting invariant under seeded fault plans
across executor and target combinations.
"""

import time

import numpy as np
import pytest

import repro
from repro.faults import (
    CONN_DROP,
    SHED_STORM,
    SLOW_SHARD,
    WORKER_CRASH,
    FaultInjector,
    FaultPlan,
    install_engine_injector,
)
from repro.he import BFVParams
from repro.load import (
    ADMIT_REJECTED,
    COMPLETED,
    FAILED,
    SHED,
    SCENARIO_REGISTRY,
    ConstantArrivals,
    RemoteTarget,
    SessionTarget,
    generate_trace,
    run_trace,
)
from repro.net import Client, ServiceThread
from repro.net.codec import AdmissionRejectedError, RequestTimeoutError
from repro.serve import AdmissionController

PARAMS = BFVParams.test_small(64)
QUERY = np.ones(32, dtype=np.uint8)


def _db() -> np.ndarray:
    """4096-bit db with one match per shard when split across 2 shards."""
    db = np.zeros(4096, dtype=np.uint8)
    db[160:192] = 1
    db[3200:3232] = 1
    return db


def _session(**kwargs):
    return repro.open_session(
        "bfv-sharded", params=PARAMS, num_shards=2, key_seed=1, **kwargs
    )


def _service(**kwargs):
    return ServiceThread(
        "bfv-sharded", params=PARAMS, num_shards=2, key_seed=1, **kwargs
    )


class TestPartialResults:
    def test_thread_crash_degrades_then_breaker_recovers(self):
        with _session(
            executor="thread",
            degraded_mode="partial",
            breaker_threshold=1,
            breaker_cooldown=0.05,
            db_bits=_db(),
        ) as session:
            injector = FaultInjector(FaultPlan().worker_crash(0, shard=1))
            assert install_engine_injector(session.engine, injector)
            first = session.search(QUERY)
            assert first.degraded
            assert first.degraded_shards == (1,)
            assert first.matches == (160,)  # live shard's half only
            time.sleep(0.06)  # cooldown: half-open probe re-runs shard 1
            second = session.search(QUERY)
            assert not second.degraded
            assert second.degraded_shards == ()
            assert second.matches == (160, 3200)
            assert injector.summary() == {WORKER_CRASH: 1}

    def test_open_breaker_gates_shard_without_new_crash(self):
        with _session(
            executor="thread",
            degraded_mode="partial",
            breaker_threshold=1,
            breaker_cooldown=60.0,
            db_bits=_db(),
        ) as session:
            injector = FaultInjector(FaultPlan().worker_crash(0, shard=1))
            install_engine_injector(session.engine, injector)
            assert session.search(QUERY).degraded_shards == (1,)
            # one crash was injected; the open breaker keeps degrading
            again = session.search(QUERY)
            assert again.degraded_shards == (1,)
            assert again.matches == (160,)
            assert injector.summary() == {WORKER_CRASH: 1}

    def test_fail_mode_thread_crash_raises(self):
        with _session(executor="thread", db_bits=_db()) as session:
            install_engine_injector(
                session.engine,
                FaultInjector(FaultPlan().worker_crash(0, shard=1)),
            )
            with pytest.raises(Exception):
                session.search(QUERY)
            # the crash is single-fire: the next search is clean
            assert session.search(QUERY).matches == (160, 3200)

    def test_process_crash_survives_then_breaker_degrades(self):
        with _session(
            executor="process",
            degraded_mode="partial",
            breaker_threshold=1,
            breaker_cooldown=60.0,
            db_bits=_db(),
        ) as session:
            install_engine_injector(
                session.engine,
                FaultInjector(FaultPlan().worker_crash(0, shard=1)),
            )
            # the real kill is survivable: respawn + retry completes it,
            # but the breaker records the crash and opens
            first = session.search(QUERY)
            assert first.matches == (160, 3200)
            second = session.search(QUERY)
            assert second.degraded_shards == (1,)
            assert second.matches == (160,)


class TestServiceFaults:
    def test_shed_storm_sheds_then_retry_recovers(self):
        with _service(fault_plan="shed_storm@1:count=2") as service:
            client = Client(service.address, retry=6)
            try:
                client.outsource(_db())
                results = [client.search(QUERY) for _ in range(4)]
                stats = client.stats()
            finally:
                client.close()
            assert service.service.fault_injector.summary() == {SHED_STORM: 1}
        assert all(r.matches == (160, 3200) for r in results)
        assert stats.shed == 2  # the storm's victims, before their retries
        assert stats.completed == 4

    def test_server_conn_drop_recovered_by_replay(self):
        with _service(fault_plan="conn_drop@1:side=server") as service:
            client = Client(service.address, pool_size=1)
            try:
                client.outsource(_db())
                results = [client.search(QUERY) for _ in range(3)]
            finally:
                client.close()
            assert service.service.fault_injector.summary() == {CONN_DROP: 1}
        assert all(r.matches == (160, 3200) for r in results)

    def test_admission_fail_fast_then_retry_recovers(self):
        controller = AdmissionController(5.0, initial_target=1, min_target=1)
        with _service(admission=controller, max_in_flight=32) as service:
            client = Client(service.address, pool_size=4)
            try:
                client.outsource(_db())
                futures = [client.submit(QUERY) for _ in range(8)]
                rejected = completed = 0
                for future in futures:
                    try:
                        result = future.result(120)
                    except AdmissionRejectedError:
                        rejected += 1
                    else:
                        completed += 1
                        assert result.matches == (160, 3200)
                assert rejected + completed == 8
                assert rejected >= 1  # target 1 against an 8-wide burst
                stats = client.stats()
                assert stats.admit_rejected == rejected
                snapshot = controller.snapshot()["exact"]
                assert snapshot["rejected"] == rejected
                # bounded retry with backoff turns rejections into wins
                again = [client.submit(QUERY, retry=8) for _ in range(4)]
                assert all(
                    f.result(120).matches == (160, 3200) for f in again
                )
            finally:
                client.close()

    def test_request_timeout_bounds_the_caller(self):
        with _service() as service:
            client = Client(service.address)
            try:
                client.outsource(_db())
                with pytest.raises(RequestTimeoutError):
                    client.search(QUERY, timeout=1e-4)
                # the client survives a timed-out request
                assert client.search(QUERY).matches == (160, 3200)
            finally:
                client.close()

    def test_stats_surface_resilience_counters(self):
        with _service(admission=1.0) as service:
            client = Client(service.address)
            try:
                client.outsource(_db())
                client.search(QUERY)
                stats = client.stats()
            finally:
                client.close()
        assert stats.admit_rejected == 0
        assert stats.degraded_shards == 0
        assert stats.completed == 1


def _trace(n=8, rate=400.0, seed=3):
    scenario = SCENARIO_REGISTRY.create("database", seed=seed)
    return scenario, generate_trace(
        scenario, ConstantArrivals(), rate, max_requests=n
    )


# corrupt_frame is exercised deterministically above the framing layer
# (tests/faults/test_inject.py); the sweep here sticks to the kinds whose
# blast radius is a request outcome, so the oracle stays meaningful.
SWEEP_KINDS = (WORKER_CRASH, SLOW_SHARD, CONN_DROP, SHED_STORM)


class TestAccountingInvariant:
    """Satellite: offered == completed + shed + admit_rejected + failed
    for every fault-plan seed x executor x target combination."""

    @pytest.mark.parametrize("mode", ["session", "remote"])
    @pytest.mark.parametrize("executor", ["thread", "process"])
    @pytest.mark.parametrize("seed", [7, 23])
    def test_four_term_accounting_balances(self, seed, executor, mode):
        scenario, trace = _trace(n=8, rate=400.0)
        plan = FaultPlan.seeded(
            seed, requests=8, shards=2, faults=4, kinds=SWEEP_KINDS
        )
        client_injector = FaultInjector(plan)
        service = None
        if mode == "session":
            session = _session(executor=executor)
            target = SessionTarget(session, owns_session=True)
            install_engine_injector(session.engine, FaultInjector(plan))
        else:
            service = _service(
                executor=executor,
                fault_plan=plan,
                admission=AdmissionController(5.0, initial_target=2),
            )
            service.start()
            target = RemoteTarget(
                Client(service.address, pool_size=2), owns_client=True
            )
        try:
            scenario.check(target.capabilities, target.describe())
            target.outsource(scenario.db_bits())
            run = run_trace(trace, target, injector=client_injector)
        finally:
            target.close()
            if service is not None:
                service.stop()
        counts = {
            status: run.count(status)
            for status in (COMPLETED, SHED, ADMIT_REJECTED, FAILED)
        }
        assert run.offered == 8
        assert run.balanced, counts
        assert sum(counts.values()) == run.offered
        # completed requests are never silently wrong under faults
        assert sum(
            1 for o in run.outcomes if o.matched_expected is False
        ) == 0
