"""CircuitBreaker state machine, driven by a fake monotonic clock."""

import pytest

from repro.faults import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, ShardDegradedError


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, cooldown=5.0, clock=clock)


def test_starts_closed_and_allows(breaker):
    assert breaker.state == CLOSED
    assert breaker.allow()
    assert breaker.consecutive_failures == 0


def test_opens_at_threshold(breaker):
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED and breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow()
    assert breaker.open_count == 1


def test_success_resets_failure_streak(breaker):
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED


def test_cooldown_half_opens_with_single_probe(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(4.9)
    assert not breaker.allow()
    clock.advance(0.2)
    assert breaker.state == HALF_OPEN
    assert breaker.allow()  # the one probe
    assert not breaker.allow()  # concurrent callers stay blocked


def test_probe_success_closes(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.allow() and breaker.allow()
    assert breaker.open_count == 1


def test_probe_failure_reopens_immediately(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_failure()  # single failure while half-open, below threshold
    assert breaker.state == OPEN
    assert not breaker.allow()
    assert breaker.open_count == 2
    # a second cooldown earns a fresh probe
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CLOSED


def test_open_count_not_bumped_while_already_open(breaker, clock):
    for _ in range(4):
        breaker.record_failure()
    assert breaker.open_count == 1


def test_ctor_validation(clock):
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0, clock=clock)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown=-1.0, clock=clock)


def test_degraded_error_carries_shard_id():
    err = ShardDegradedError(3)
    assert err.shard_id == 3
    assert "shard 3" in str(err)
