"""The paper's two case studies (§5.3) run end-to-end at functional
scale: exact DNA string matching and encrypted database search."""

import numpy as np
import pytest

from repro.baselines import find_all_matches
from repro.core import ClientConfig, SecureStringMatchPipeline
from repro.he import BFVParams
from repro.workloads import (
    DatabaseWorkloadGenerator,
    DnaWorkloadGenerator,
    sequence_to_bits,
)

PARAMS = BFVParams.test_small(64)


class TestDnaCaseStudy:
    @pytest.fixture(scope="class")
    def workload(self):
        return DnaWorkloadGenerator(seed=20).generate(
            num_bases=2000, read_length_bases=16, num_reads=4
        )

    def test_all_planted_reads_found(self, workload):
        pipe = SecureStringMatchPipeline(ClientConfig(PARAMS, key_seed=21))
        genome_bits = workload.genome_bits
        pipe.outsource_database(genome_bits)
        for i, read in enumerate(workload.reads):
            matches = pipe.search(workload.read_bits(i)).matches
            assert read.position_bits in matches, f"read {i}"
            assert set(matches) == set(
                find_all_matches(genome_bits, workload.read_bits(i))
            )

    def test_absent_read_not_found(self, workload):
        pipe = SecureStringMatchPipeline(ClientConfig(PARAMS, key_seed=22))
        pipe.outsource_database(workload.genome_bits)
        # a read that differs from the genome everywhere it could align
        absent = sequence_to_bits("A" * 32)
        matches = pipe.search(absent).matches
        assert matches == find_all_matches(workload.genome_bits, absent)

    @pytest.mark.parametrize("read_bases", [8, 16, 32, 64])
    def test_paper_read_lengths(self, read_bases):
        """Query sizes 16-128 bits (8-64 bases) from the paper's range."""
        wl = DnaWorkloadGenerator(seed=23 + read_bases).generate(
            num_bases=1500, read_length_bases=read_bases, num_reads=2
        )
        pipe = SecureStringMatchPipeline(ClientConfig(PARAMS, key_seed=23))
        pipe.outsource_database(wl.genome_bits)
        for i, read in enumerate(wl.reads):
            assert read.position_bits in pipe.search(wl.read_bits(i)).matches


class TestEncryptedDatabaseSearch:
    @pytest.fixture(scope="class")
    def setup(self):
        gen = DatabaseWorkloadGenerator(seed=30)
        db = gen.generate(num_records=12, key_bytes=8, value_bytes=8)
        mix = gen.query_mix(db, num_queries=10, hit_fraction=0.6)
        pipe = SecureStringMatchPipeline(ClientConfig(PARAMS, key_seed=31))
        pipe.outsource_database(db.flatten_bits())
        return db, mix, pipe

    def test_key_lookups(self, setup):
        db, mix, pipe = setup
        for key, expected_idx in zip(mix.keys, mix.expected_record_indices):
            matches = pipe.search(db.key_bits(key)).matches
            if expected_idx is not None:
                assert db.key_offset_bits(expected_idx) in matches
            else:
                # a miss may still collide with value bytes; verify
                # against the oracle rather than asserting emptiness
                oracle = find_all_matches(db.flatten_bits(), db.key_bits(key))
                assert matches == oracle

    def test_every_hit_is_at_a_record_boundary(self, setup):
        db, mix, pipe = setup
        hits = [
            (k, i) for k, i in zip(mix.keys, mix.expected_record_indices) if i is not None
        ]
        key, idx = hits[0]
        matches = pipe.search(db.key_bits(key)).matches
        assert db.key_offset_bits(idx) % db.record_bits == 0
        assert db.key_offset_bits(idx) in matches
