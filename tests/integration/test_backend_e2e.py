"""Full-pipeline backend regression: outsource -> query -> match ->
decrypt must produce identical match offsets under the reference and
vectorized polynomial backends, in both index-generation modes and
through the sharded serving engine.

The deterministic-index mode is the strongest check here: it compares
*ciphertexts* coefficient-for-coefficient on the server, so any backend
divergence anywhere in the encrypt/multiply chain breaks matching
outright rather than merely perturbing noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClientConfig, SecureStringMatchPipeline
from repro.core.match_polynomial import IndexMode
from repro.he import BFVParams
from repro.serve import ShardedSearchEngine
from repro.utils.bits import random_bits

BACKENDS = ("reference", "vectorized")


def _workload():
    rng = np.random.default_rng(77)
    params = BFVParams.test_small(64)
    db = random_bits(params.n * 16 * 4, rng)
    query = random_bits(48, rng)
    planted = [16 * 5, 16 * 97, 16 * 200]  # within the 4096-bit database
    for off in planted:
        db[off : off + len(query)] = query
    return params, db, query


@pytest.mark.parametrize(
    "index_mode", [IndexMode.CLIENT_DECRYPT, IndexMode.SERVER_DETERMINISTIC]
)
def test_pipeline_matches_identical_across_backends(index_mode):
    params, db, query = _workload()
    results = {}
    for backend in BACKENDS:
        pipeline = SecureStringMatchPipeline(
            ClientConfig(
                params, index_mode=index_mode, key_seed=7, poly_backend=backend
            )
        )
        pipeline.outsource_database(db)
        report = pipeline.search(query)
        results[backend] = report.matches
        assert pipeline.client.ctx.poly_backend == backend
    assert results["reference"] == results["vectorized"]
    assert len(results["vectorized"]) >= 3  # the planted occurrences


def test_sharded_engine_matches_identical_across_backends():
    params, db, query = _workload()
    batches = {}
    for backend in BACKENDS:
        engine = ShardedSearchEngine(
            ClientConfig(params, key_seed=7),
            num_shards=3,
            poly_backend=backend,
        )
        engine.outsource(db)
        report = engine.search_batch([query, query[:32]])
        batches[backend] = [r.matches for r in report.reports]
    assert batches["reference"] == batches["vectorized"]
    assert all(batches["vectorized"])


def test_ciphertexts_bit_identical_under_deterministic_encryption():
    """With noiseless deterministic encryption the entire encrypted
    database must be byte-identical across backends."""
    params, db, _ = _workload()
    encrypted = {}
    for backend in BACKENDS:
        pipeline = SecureStringMatchPipeline(
            ClientConfig(
                params,
                index_mode=IndexMode.SERVER_DETERMINISTIC,
                key_seed=7,
                poly_backend=backend,
            )
        )
        encrypted[backend] = pipeline.outsource_database(db)
    ref, vec = encrypted["reference"], encrypted["vectorized"]
    assert len(ref.ciphertexts) == len(vec.ciphertexts)
    for ct_ref, ct_vec in zip(ref.ciphertexts, vec.ciphertexts):
        assert np.array_equal(ct_ref.c0.coeffs, ct_vec.c0.coeffs)
        assert np.array_equal(ct_ref.c1.coeffs, ct_vec.c1.coeffs)
