"""Full-stack failure injection: corrupt stored flash bits and check
how the error propagates through bop_add, Hom-Add, decryption and the
pipeline's verification step.

The reliability section (§4.3.1) argues ESP makes computation reads
error-free; these tests quantify what happens when that assumption is
violated — retention errors in the CIPHERMATCH region — and show that
the algorithm's client-side verification step contains the damage.
"""

import numpy as np
import pytest

from repro.baselines import find_all_matches
from repro.core import ClientConfig, SecureStringMatchPipeline
from repro.he import BFVParams
from repro.ssd import IFPAdditionBackend
from repro.utils.bits import random_bits


def _ifp_pipeline(seed: int = 0):
    params = BFVParams.test_small(64)
    pipe = SecureStringMatchPipeline(ClientConfig(params, key_seed=seed))
    backend = IFPAdditionBackend(pipe.client.ctx)
    pipe.server.engine.backend = backend
    return pipe, backend


def _flip_stored_bit(backend, wordline: int = 0, bitline: int = 0) -> bool:
    """Flip one programmed cell in the CIPHERMATCH region (a retention
    error).  Returns True when a programmed cell was found."""
    for plane in backend.ssd.controller.flash.planes():
        for block_index in range(backend.ssd.controller.flash.geometry.blocks_per_plane):
            block = plane.block(block_index)
            if block.programmed[wordline]:
                block.cells[wordline, bitline] ^= 1
                return True
    return False


class TestFaultPropagation:
    def test_clean_run_matches_oracle(self):
        pipe, _ = _ifp_pipeline()
        rng = np.random.default_rng(1)
        db = random_bits(640, rng)
        query = db[64:96].copy()
        pipe.outsource_database(db)
        assert pipe.search(query).matches == find_all_matches(db, query)

    def test_single_bit_fault_is_contained_by_verification(self):
        """A flipped stored bit corrupts one coefficient's sum; the
        decode layer's verification against the client's plaintext
        rejects any false candidate, so the match set stays a subset of
        the oracle's."""
        pipe, backend = _ifp_pipeline(seed=2)
        rng = np.random.default_rng(2)
        db = random_bits(640, rng)
        query = db[64:96].copy()
        pipe.outsource_database(db)
        pipe.search(query)  # places ciphertexts in the flash

        assert _flip_stored_bit(backend, wordline=5, bitline=3)
        report = pipe.search(query)
        oracle = find_all_matches(db, query)
        assert set(report.matches) <= set(oracle)

    def test_fault_changes_exactly_one_sum_word(self):
        """At the µ-program level: one flipped cell bit changes exactly
        one output word of the bit-serial add (no cross-bitline
        contamination — carries never leave their bitline)."""
        from repro.flash.cell_array import FlashGeometry, Plane
        from repro.flash.energy import EnergyLedger
        from repro.flash.microprogram import BitSerialAdder
        from repro.flash.timing import TimingLedger

        geometry = FlashGeometry.functional(num_bitlines=64, wordlines=64)
        plane = Plane(geometry, TimingLedger(), EnergyLedger())
        adder = BitSerialAdder(plane, word_bits=32)
        rng = np.random.default_rng(3)
        stored = rng.integers(0, 1 << 32, 16, dtype=np.int64)
        query = rng.integers(0, 1 << 32, 16, dtype=np.int64)
        adder.store_words(0, stored)
        clean = adder.add(0, query)

        plane.block(0).cells[7, 2] ^= 1  # bit 7 of the word on bitline 2
        faulty = adder.add(0, query)
        differs = np.nonzero(clean[:16] != faulty[:16])[0]
        assert list(differs) == [2]
        # and the corrupted word differs exactly by the flipped weight
        # propagated through the mod-2^32 add
        expected = (stored[2] ^ (1 << 7)) + query[2] & 0xFFFFFFFF
        assert faulty[2] == expected

    def test_stuck_at_fault_rate_model(self):
        """The closed-form adder error probability is monotone in RBER
        and matches the zero-error ESP expectation."""
        from repro.flash.reliability import adder_error_probability

        assert adder_error_probability(32, 1000, 0.0) == 0.0
        low = adder_error_probability(32, 1000, 1e-12)
        high = adder_error_probability(32, 1000, 1e-6)
        assert 0 < low < high < 1

    def test_wear_is_search_independent(self):
        """Repeated searches never erase/program the CM region — the
        §4.3.1 lifetime argument, observed on the functional simulator."""
        pipe, backend = _ifp_pipeline(seed=4)
        rng = np.random.default_rng(4)
        db = random_bits(320, rng)
        query = db[:32].copy()
        pipe.outsource_database(db)
        pipe.search(query)

        def erase_total():
            return sum(
                plane.block(b).erase_count
                for plane in backend.ssd.controller.flash.planes()
                for b in range(backend.ssd.controller.flash.geometry.blocks_per_plane)
            )

        before = erase_total()
        for _ in range(3):
            pipe.search(query)
        assert erase_total() == before
