"""Cross-module integration: the real-TFHE Boolean baseline against the
DNA workload, the plaintext oracle, and the CIPHERMATCH pipeline."""

import numpy as np
import pytest

from repro.baselines import TfheBooleanMatcher, find_all_matches
from repro.core import ClientConfig, SecureStringMatchPipeline
from repro.he import BFVParams
from repro.tfhe import TFHEParams
from repro.tfhe.serialize import (
    deserialize_lwe_samples,
    serialize_lwe_samples,
)
from repro.workloads import DnaWorkloadGenerator, sequence_to_bits


class TestTfheOnDna:
    def test_dna_seed_search(self):
        """A 4-base seed search over a small genome on real TFHE."""
        workload = DnaWorkloadGenerator(seed=1).generate(
            num_bases=12, read_length_bases=4, num_reads=1
        )
        genome_bits = workload.genome_bits
        seed_bits = workload.read_bits(0)
        matcher = TfheBooleanMatcher(TFHEParams.test_tiny(), seed=5)
        db = matcher.encrypt_database(genome_bits)
        matches = matcher.search(db, seed_bits)
        assert matches == find_all_matches(genome_bits, seed_bits)
        assert workload.reads[0].position_bits in matches

    def test_agrees_with_ciphermatch_pipeline(self):
        """Boolean TFHE and CIPHERMATCH find the same 16-bit matches."""
        rng = np.random.default_rng(2)
        db_bits = rng.integers(0, 2, 48).astype(np.uint8)
        query = db_bits[16:32].copy()

        tfhe = TfheBooleanMatcher(TFHEParams.test_tiny(), seed=3)
        tfhe_matches = tfhe.search(tfhe.encrypt_database(db_bits), query)

        pipe = SecureStringMatchPipeline(ClientConfig(BFVParams.test_small(64)))
        pipe.outsource_database(db_bits)
        cm_matches = pipe.search(query).matches

        oracle = find_all_matches(db_bits, query)
        assert tfhe_matches == oracle
        assert cm_matches == oracle


class TestWireFormatRoundTrip:
    def test_database_survives_serialization(self):
        """Encrypt -> serialize -> deserialize -> search still matches:
        the client-server boundary works for the Boolean protocol."""
        matcher = TfheBooleanMatcher(TFHEParams.test_tiny(), seed=9)
        db_bits = np.array([1, 0, 1, 1, 0, 1], dtype=np.uint8)
        db = matcher.encrypt_database(db_bits)
        wire = serialize_lwe_samples(db.bit_ciphertexts)
        restored = deserialize_lwe_samples(wire)
        from repro.baselines.tfhe_boolean import TfheEncryptedDatabase

        matches = matcher.search(
            TfheEncryptedDatabase(restored), np.array([1, 1], dtype=np.uint8)
        )
        assert matches == find_all_matches(db_bits, np.array([1, 1]))

    def test_wire_size_equals_footprint(self):
        matcher = TfheBooleanMatcher(TFHEParams.test_tiny(), seed=9)
        db = matcher.encrypt_database(np.ones(10, dtype=np.uint8))
        wire = serialize_lwe_samples(db.bit_ciphertexts)
        assert len(wire) == 13 + db.serialized_bytes


class TestReadMapperWithDnaText:
    def test_maps_read_from_real_sequence_string(self):
        from repro.workloads import SecureReadMapper

        reference = "ACGTTGCAACGTACGTGGCCAAGGTTTTACGT"
        mapper = SecureReadMapper(
            reference, ClientConfig(BFVParams.test_small(64)), seed_bases=8
        )
        read = reference[8:24]
        result = mapper.map_read(read)
        assert mapper.verify(result) == 8
        # the mapping used bits produced by the same encoding everywhere
        assert np.array_equal(
            sequence_to_bits(read), sequence_to_bits(reference)[16:48]
        )
