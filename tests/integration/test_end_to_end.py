"""Cross-module integration tests: all three secure matchers agree with
the plaintext oracle on the same workloads."""

import numpy as np
import pytest

from repro.baselines import (
    BooleanMatcher,
    YasudaMatcher,
    find_all_matches,
)
from repro.core import ClientConfig, IndexMode, SecureStringMatchPipeline
from repro.he import BFVParams, generate_keys
from repro.utils.bits import random_bits


class TestThreeWayAgreement:
    """CIPHERMATCH, the arithmetic baseline and the Boolean baseline all
    find the same (chunk-aligned) match."""

    def test_all_matchers_find_the_same_planted_key(self, rng):
        db = random_bits(96, rng)
        q = random_bits(16, rng)
        db[32:48] = q
        # guard against incidental occurrences for the small search space
        expected = find_all_matches(db, q)

        # CIPHERMATCH (aligned occurrences guaranteed for 16-bit queries)
        pipe = SecureStringMatchPipeline(
            ClientConfig(BFVParams.test_small(16), key_seed=1)
        )
        pipe.outsource_database(db)
        cm = pipe.search(q).matches
        assert 32 in cm
        assert set(cm).issubset(set(expected))

        # arithmetic baseline: all alignments
        params = BFVParams.arithmetic_baseline(n=128, t=512)
        yasuda = YasudaMatcher(params, max_query_bits=16, seed=2)
        sk, pk, rlk, _ = generate_keys(params, seed=2, relin=True)
        enc = yasuda.encrypt_database(db, pk)
        assert yasuda.search(enc, q, pk, sk, rlk) == expected

    def test_boolean_agrees_on_tiny_db(self, rng, bool_params):
        db = random_bits(20, rng)
        q = db[8:13].copy()
        expected = find_all_matches(db, q)
        matcher = BooleanMatcher(bool_params, seed=3)
        sk, pk, rlk, _ = generate_keys(bool_params, seed=3, relin=True)
        enc = matcher.encrypt_database(db, pk)
        assert matcher.search(enc, q, pk, sk, rlk) == expected


class TestOperationMixContrast:
    """The quantitative contrast of §3.1/Fig 2c: CIPHERMATCH uses *zero*
    homomorphic multiplications; the arithmetic baseline uses 2 per
    block; the Boolean baseline multiplies per bit pair."""

    def test_ciphermatch_is_addition_only(self, rng):
        pipe = SecureStringMatchPipeline(
            ClientConfig(BFVParams.test_small(16), key_seed=4)
        )
        pipe.outsource_database(random_bits(400, rng))
        pipe.search(random_bits(16, rng))
        counter = pipe.client.ctx.counter
        assert counter.multiplications == 0
        assert counter.additions > 0

    def test_arithmetic_baseline_multiplies(self, rng):
        params = BFVParams.arithmetic_baseline(n=128, t=512)
        matcher = YasudaMatcher(params, max_query_bits=16, seed=5)
        sk, pk, rlk, _ = generate_keys(params, seed=5, relin=True)
        enc = matcher.encrypt_database(random_bits(100, rng), pk)
        matcher.search(enc, random_bits(16, rng), pk, sk, rlk)
        assert matcher.ctx.counter.multiplications == 2

    def test_footprint_ordering(self, rng):
        """CIPHERMATCH encrypted footprint < arithmetic < Boolean for
        the same database."""
        db_bits = 16 * 1024  # 2 KB plaintext

        pipe = SecureStringMatchPipeline(
            ClientConfig(BFVParams.test_small(64), key_seed=6)
        )
        enc = pipe.outsource_database(random_bits(db_bits, rng))
        cm_bytes = enc.serialized_bytes

        params = BFVParams.arithmetic_baseline(n=1024, t=1024)
        yasuda = YasudaMatcher(params, max_query_bits=256, seed=6)
        arith_bytes = yasuda.footprint_bytes(db_bits)

        boolean = BooleanMatcher(BFVParams.boolean_baseline(n=128), seed=6)
        bool_bytes = boolean.footprint_bytes(db_bits)

        assert cm_bytes < arith_bytes < bool_bytes


class TestDeterministicVsClientModes:
    def test_identical_results_on_batch(self, rng):
        db = random_bits(3000, rng)
        queries = []
        for k in range(5):
            q = random_bits(32, rng)
            off = 16 * (10 + 20 * k)
            db[off : off + 32] = q
            queries.append(q)

        results = {}
        for mode in (IndexMode.CLIENT_DECRYPT, IndexMode.SERVER_DETERMINISTIC):
            pipe = SecureStringMatchPipeline(
                ClientConfig(BFVParams.test_small(64), key_seed=7, index_mode=mode)
            )
            pipe.outsource_database(db)
            results[mode] = [tuple(pipe.search(q).matches) for q in queries]
        assert results[IndexMode.CLIENT_DECRYPT] == results[
            IndexMode.SERVER_DETERMINISTIC
        ]


class TestScaleUp:
    def test_multi_polynomial_database(self, rng):
        """A database spanning 8 polynomials with matches in different
        polynomials."""
        params = BFVParams.test_small(64)
        per_poly = 64 * 16
        db = random_bits(8 * per_poly, rng)
        q = random_bits(64, rng)
        offsets = [0, 3 * per_poly + 160, 7 * per_poly + 512]
        for off in offsets:
            db[off : off + 64] = q
        pipe = SecureStringMatchPipeline(ClientConfig(params, key_seed=8))
        pipe.outsource_database(db)
        report = pipe.search(q)
        assert set(report.matches) == set(find_all_matches(db, q))
        assert set(offsets).issubset(set(report.matches))
