"""Hardware-software codesign integration: the secure search pipeline
running on the simulated in-flash backend."""

import numpy as np
import pytest

from repro.baselines import find_all_matches
from repro.core import ClientConfig, IndexMode, SecureStringMatchPipeline
from repro.he import BFVParams
from repro.ssd import IFPAdditionBackend
from repro.utils.bits import random_bits

PARAMS = BFVParams.test_small(64)


def ifp_pipeline(seed, mode=IndexMode.CLIENT_DECRYPT):
    pipe = SecureStringMatchPipeline(ClientConfig(PARAMS, key_seed=seed, index_mode=mode))
    backend = IFPAdditionBackend(pipe.client.ctx)
    pipe.server.engine.backend = backend
    return pipe, backend


class TestIFPSearchCorrectness:
    def test_matches_cpu_pipeline(self, rng):
        db = random_bits(2500, rng)
        q = random_bits(32, rng)
        db[480:512] = q
        db[1203:1235] = q  # phase 3

        cpu_pipe = SecureStringMatchPipeline(ClientConfig(PARAMS, key_seed=11))
        cpu_pipe.outsource_database(db)
        cpu_matches = cpu_pipe.search(q).matches

        flash_pipe, backend = ifp_pipeline(11)
        flash_pipe.outsource_database(db)
        flash_matches = flash_pipe.search(q).matches

        assert flash_matches == cpu_matches == find_all_matches(db, q)
        assert backend.hom_add_count > 0

    def test_deterministic_mode_in_flash(self, rng):
        db = random_bits(1500, rng)
        q = random_bits(32, rng)
        db[320:352] = q
        pipe, _ = ifp_pipeline(12, IndexMode.SERVER_DETERMINISTIC)
        pipe.outsource_database(db)
        assert 320 in pipe.search(q).matches

    def test_multiple_queries_reuse_flash_data(self, rng):
        db = random_bits(2000, rng)
        q1, q2 = random_bits(32, rng), random_bits(32, rng)
        db[160:192] = q1
        db[960:992] = q2
        pipe, backend = ifp_pipeline(13)
        pipe.outsource_database(db)
        from repro.flash import FlashOp

        pipe.search(q1)
        writes_after_q1 = backend.ssd.controller.log.count(FlashOp.PROGRAM_PAGE)
        r2 = pipe.search(q2)
        writes_after_q2 = backend.ssd.controller.log.count(FlashOp.PROGRAM_PAGE)
        assert 960 in r2.matches
        # the encrypted database stays resident: no new flash programs
        assert writes_after_q2 == writes_after_q1


class TestIFPCostAccounting:
    def test_simulated_time_scales_with_work(self, rng):
        db_small = random_bits(500, rng)
        db_large = random_bits(4000, rng)

        pipe1, b1 = ifp_pipeline(14)
        pipe1.outsource_database(db_small)
        pipe1.search(random_bits(16, rng))

        pipe2, b2 = ifp_pipeline(15)
        pipe2.outsource_database(db_large)
        pipe2.search(random_bits(16, rng))

        assert b2.ssd.simulated_seconds > b1.ssd.simulated_seconds

    def test_bop_add_commands_issued(self, rng):
        from repro.flash import FlashOp

        pipe, backend = ifp_pipeline(16)
        pipe.outsource_database(random_bits(900, rng))  # one polynomial
        pipe.search(random_bits(16, rng))
        # 16 variants x 1 polynomial x 1 slot
        assert backend.ssd.controller.log.count(FlashOp.BOP_ADD) == 16

    def test_energy_accrues(self, rng):
        pipe, backend = ifp_pipeline(17)
        pipe.outsource_database(random_bits(500, rng))
        pipe.search(random_bits(16, rng))
        assert backend.ssd.simulated_joules > 0
