"""Tests for the ASCII chart renderers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.plotting import (
    bar_chart,
    crossover_points,
    grouped_bar_chart,
    line_chart,
    sparkline,
)


class TestBarChart:
    def test_basic_render(self):
        out = bar_chart("test", ["a", "bb"], [1.0, 2.0])
        lines = out.splitlines()
        assert lines[0] == "== test =="
        assert "a" in lines[1] and "1.0" in lines[1]
        assert "2.0" in lines[2]

    def test_longest_bar_is_max_value(self):
        out = bar_chart("t", ["x", "y"], [10.0, 5.0], width=20)
        bars = [line.count("#") for line in out.splitlines()[1:]]
        assert bars[0] == 20 and bars[1] == 10

    def test_zero_value_gets_no_bar(self):
        out = bar_chart("t", ["x", "y"], [0.0, 5.0])
        assert out.splitlines()[1].count("#") == 0

    def test_log_scale_compresses(self):
        linear = bar_chart("t", ["a", "b"], [1.0, 1000.0], width=30)
        log = bar_chart("t", ["a", "b"], [1.0, 1000.0], width=30, log_scale=True)
        lin_bars = [line.count("#") for line in linear.splitlines()[1:3]]
        log_bars = [line.count("#") for line in log.splitlines()[1:3]]
        assert lin_bars[0] / lin_bars[1] < log_bars[0] / log_bars[1]
        assert "(log scale)" in log

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            bar_chart("t", ["a"], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bar_chart("t", [], [])

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bar_chart("t", ["a"], [-1.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_never_exceeds_width(self, values):
        labels = [str(i) for i in range(len(values))]
        out = bar_chart("t", labels, values, width=30)
        for line in out.splitlines()[1:]:
            assert line.count("#") <= 31  # rounding tolerance


class TestGroupedBarChart:
    def test_structure(self):
        out = grouped_bar_chart(
            "fig", ["16", "32"], {"CM-PuM": [1, 2], "CM-IFP": [3, 4]}
        )
        lines = out.splitlines()
        assert lines[0] == "== fig =="
        assert lines[1].strip() == "16:"
        assert "CM-PuM" in lines[2]
        assert "CM-IFP" in lines[3]

    def test_series_length_checked(self):
        with pytest.raises(ValueError):
            grouped_bar_chart("f", ["a"], {"s": [1, 2]})

    def test_no_series_raises(self):
        with pytest.raises(ValueError):
            grouped_bar_chart("f", ["a"], {})

    def test_log_scale_marker(self):
        out = grouped_bar_chart("f", ["a"], {"s": [10.0]}, log_scale=True)
        assert "(log scale)" in out


class TestLineChart:
    def test_contains_all_markers(self):
        out = line_chart(
            "lines", [1, 2, 3], {"up": [1, 2, 3], "down": [3, 2, 1]}
        )
        assert "*" in out and "o" in out
        assert "* up" in out and "o down" in out

    def test_log_y(self):
        out = line_chart("l", [1, 2], {"s": [1.0, 1000.0]}, log_y=True)
        assert "(log)" in out or "1e+03" in out or "1000" in out

    def test_log_y_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_chart("l", [1, 2], {"s": [0.0, 1.0]}, log_y=True)

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            line_chart("l", [1], {"s": [1.0]})

    def test_axis_labels(self):
        out = line_chart(
            "l", [1, 2], {"s": [1, 2]}, x_label="DB size", y_label="speedup"
        )
        assert "x: DB size" in out
        assert "y: speedup" in out

    def test_extremes_on_grid_edges(self):
        out = line_chart("l", [0, 10], {"s": [0.0, 5.0]}, height=5, width=20)
        rows = [line for line in out.splitlines() if "|" in line]
        assert "*" in rows[0]  # max value on top row
        assert "*" in rows[-1]  # min value on bottom row


class TestCrossover:
    def test_simple_crossing(self):
        xs = [0.0, 1.0, 2.0]
        a = [0.0, 1.0, 2.0]
        b = [2.0, 1.0, 0.0]
        points = crossover_points(xs, a, b)
        assert points == [1.0]

    def test_interpolated_crossing(self):
        xs = [0.0, 1.0]
        a = [0.0, 3.0]
        b = [1.0, 0.0]
        points = crossover_points(xs, a, b)
        assert points[0] == pytest.approx(0.25)

    def test_no_crossing(self):
        assert crossover_points([0, 1], [1, 2], [3, 4]) == []

    def test_touching_counts_once(self):
        xs = [0.0, 1.0, 2.0]
        a = [0.0, 1.0, 2.0]
        b = [1.0, 1.0, 1.0]
        points = crossover_points(xs, a, b)
        assert len(points) == 1

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            crossover_points([0, 1], [1], [2, 3])

    def test_figure12_style_crossover(self):
        """CM-PuM wins small DBs, CM-IFP wins big ones: one crossover."""
        db = [8, 16, 32, 64, 128]
        pum = [300.0, 300.0, 300.0, 40.0, 35.0]
        ifp = [250.0, 250.0, 250.0, 290.0, 295.0]
        points = crossover_points(db, pum, ifp)
        assert len(points) == 1
        assert 32 < points[0] < 64


class TestSparkline:
    def test_monotone(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] == "▁" and line[-1] == "█"

    def test_constant(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            sparkline([])
