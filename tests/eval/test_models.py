"""Tests for the software-family cost model (Figures 2, 7, 8, 9)."""

import pytest

from repro.eval import GIB, QUERY_SIZES, DATABASE_SIZES
from repro.eval.models import SoftwareCostModel, SoftwareSystem


@pytest.fixture(scope="module")
def model():
    return SoftwareCostModel()


class TestComputeUnits:
    def test_cm_sw_scales_with_chunks(self, model):
        assert model.compute_units(SoftwareSystem.CM_SW, 16) == 16
        assert model.compute_units(SoftwareSystem.CM_SW, 32) == 32
        assert model.compute_units(SoftwareSystem.CM_SW, 17) == 32  # ceil

    def test_arithmetic_superlinear(self, model):
        a16 = model.compute_units(SoftwareSystem.ARITHMETIC, 16)
        a256 = model.compute_units(SoftwareSystem.ARITHMETIC, 256)
        # grows faster than linearly (the per-segment + combining terms)
        assert a256 / a16 > 256 / 16

    def test_boolean_ratio(self, model):
        for y in QUERY_SIZES:
            ratio = model.compute_units(
                SoftwareSystem.BOOLEAN, y
            ) / model.compute_units(SoftwareSystem.ARITHMETIC, y)
            assert ratio == pytest.approx(model.cal.boolean_over_arith)


class TestExpansionFactors:
    def test_paper_expansions(self, model):
        assert model.expansion(SoftwareSystem.CM_SW) == 4.0
        assert model.expansion(SoftwareSystem.ARITHMETIC) == 64.0
        assert model.expansion(SoftwareSystem.BOOLEAN) == 256.0


class TestFigure7:
    def test_cm_speedup_over_arith_grows_with_query(self, model):
        rows = model.figure7(list(QUERY_SIZES))
        ratios = [r["cm_sw"] / r["arithmetic"] for r in rows]
        assert ratios == sorted(ratios)

    def test_endpoints_near_paper(self, model):
        """Paper: 20.7x at 16 bits, 62.2x at 256 bits."""
        rows = model.figure7(list(QUERY_SIZES))
        first = rows[0]["cm_sw"] / rows[0]["arithmetic"]
        last = rows[-1]["cm_sw"] / rows[-1]["arithmetic"]
        assert 15 < first < 28
        assert 50 < last < 75

    def test_arith_over_boolean_magnitude(self, model):
        """Paper annotation: ~9.9e3."""
        rows = model.figure7(list(QUERY_SIZES))
        for r in rows:
            assert 5e3 < r["arithmetic"] < 2e4

    def test_average_near_42_9(self, model):
        rows = model.figure7(list(QUERY_SIZES))
        avg = sum(r["cm_sw"] / r["arithmetic"] for r in rows) / len(rows)
        assert 28 < avg < 55  # paper: 42.9


class TestFigure8:
    def test_energy_ratios_slightly_below_time_ratios(self, model):
        """Fig 8 energy gains < Fig 7 time gains (CM-SW draws more power
        with busy SIMD units)."""
        t = model.figure7(list(QUERY_SIZES))
        e = model.figure8(list(QUERY_SIZES))
        for rt, re in zip(t, e):
            assert re["cm_sw"] / re["arithmetic"] < rt["cm_sw"] / rt["arithmetic"]

    def test_16bit_energy_near_paper(self, model):
        """Paper: 17.6x at 16 bits."""
        rows = model.figure8([16])
        ratio = rows[0]["cm_sw"] / rows[0]["arithmetic"]
        assert 12 < ratio < 24


class TestFigure9:
    def test_flat_below_dram_capacity(self, model):
        rows = model.figure9(list(DATABASE_SIZES))
        r8 = rows[0]["cm_sw"] / rows[0]["arithmetic"]
        r32 = rows[2]["cm_sw"] / rows[2]["arithmetic"]
        assert r8 == pytest.approx(r32, rel=0.05)

    def test_drop_beyond_dram_capacity(self, model):
        """Paper: CM-SW loses ~1.16x once its footprint exceeds DRAM."""
        rows = model.figure9(list(DATABASE_SIZES))
        r32 = rows[2]["cm_sw"] / rows[2]["arithmetic"]
        r64 = rows[3]["cm_sw"] / rows[3]["arithmetic"]
        assert 1.05 < r32 / r64 < 1.4

    def test_batched_ratio_higher_than_single_query(self, model):
        """Fig 9 (1000 queries) shows larger CM-SW/arith ratios than
        Fig 7 (1 query) at the same query size — the batching effect."""
        f7 = model.figure7([16])[0]
        f9 = model.figure9([128 * GIB])[0]
        assert (
            f9["cm_sw"] / f9["arithmetic"] > f7["cm_sw"] / f7["arithmetic"]
        )

    def test_cm_over_boolean_order_of_magnitude(self, model):
        """Paper: 7.6e4 - 8.8e4 over Boolean with 1000 queries."""
        rows = model.figure9(list(DATABASE_SIZES))
        for r in rows:
            assert 3e4 < r["cm_sw"] < 2e5


class TestFigure2:
    def test_footprint_floors_at_one_ciphertext(self, model):
        rows = model.figure2a_footprint([8, 32])
        assert rows[0]["arithmetic_bytes"] == 8192  # one ct
        assert rows[0]["ciphermatch_bytes"] == 8192

    def test_boolean_per_bit(self, model):
        rows = model.figure2a_footprint([8])
        assert rows[0]["boolean_bytes"] == 64 * 2048

    def test_cm_needs_16x_fewer_cts_than_arith(self, model):
        big = 64 * 1024  # 64 KB -> many polynomials
        row = model.figure2a_footprint([big])[0]
        assert row["arithmetic_bytes"] == 16 * row["ciphermatch_bytes"]

    def test_breakdown_98_2(self, model):
        b = model.figure2c_breakdown(81.9, 1.0)
        assert b["hom_mult_percent"] == pytest.approx(98.2, abs=0.1)
        assert b["hom_add_percent"] == pytest.approx(1.8, abs=0.1)
