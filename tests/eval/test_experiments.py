"""Tests for the experiment harness: every figure renders, the runner
works, and the headline numbers land in the paper's ballpark."""

import pytest

from repro.eval import ALL_EXPERIMENTS, headline_summary, run
from repro.eval.experiments import (
    figure2a,
    figure3,
    figure7,
    figure10,
    overheads,
    table1,
)


class TestExperimentRegistry:
    def test_covers_all_figures_and_tables(self):
        expected = {
            "table1",
            "table1_functional",
            "figure2a",
            "figure2c",
            "figure3",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "figure12",
            "overheads",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_table1_functional_all_rows_match_oracle(self):
        output = ALL_EXPERIMENTS["table1_functional"]()
        assert "False" not in output
        assert output.count("True") == 6

    @pytest.mark.parametrize("name", sorted(["table1", "figure2a", "figure2c",
        "figure3", "figure7", "figure8", "figure9", "figure10", "figure11",
        "figure12", "overheads"]))
    def test_each_experiment_renders(self, name):
        output = ALL_EXPERIMENTS[name]()
        assert isinstance(output, str)
        assert "paper:" in output
        assert len(output.splitlines()) >= 4


class TestRenderedContent:
    def test_table1_rows(self):
        out = table1()
        for work in ("Yasuda", "Aziz", "Pradel", "Kim", "Bonte", "this work"):
            assert work in out

    def test_figure2a_shows_expansion_ordering(self):
        out = figure2a([1024])
        assert "CIPHERMATCH" in out

    def test_figure3_columns(self):
        out = figure3()
        assert "storage" in out and "main_memory" in out

    def test_figure7_queries(self):
        out = figure7()
        for q in ("16", "32", "64", "128", "256"):
            assert q in out

    def test_figure10_systems(self):
        out = figure10()
        assert "cm_ifp" in out and "cm_pum" in out

    def test_overheads_values(self):
        out = overheads()
        assert "512KB" in out
        assert "0.6%" in out


class TestRunner:
    def test_run_single(self):
        assert "Figure 7" in run(["figure7"])

    def test_run_all_includes_headline(self):
        out = run()
        assert "Headline results" in out
        assert out.count("==") >= 20

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run(["figure99"])


class TestHeadlineSummary:
    @pytest.fixture(scope="class")
    def summary(self):
        return headline_summary()

    def test_keys_mention_paper_values(self, summary):
        assert any("42.9" in k for k in summary)
        assert any("136.9" in k for k in summary)
        assert any("256.4" in k for k in summary)

    def test_cm_sw_speedup_ballpark(self, summary):
        value = next(v for k, v in summary.items() if "42.9" in k)
        assert 25 < value < 60

    def test_ifp_speedup_ballpark(self, summary):
        value = next(v for k, v in summary.items() if "136.9" in k)
        assert 90 < value < 200

    def test_ifp_energy_ballpark(self, summary):
        value = next(v for k, v in summary.items() if "256.4" in k)
        assert 180 < value < 350
