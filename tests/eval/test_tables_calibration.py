"""Tests for the table formatter and calibration constants."""

import pytest

from repro.eval import (
    BandwidthConfig,
    HardwareFamilyCalibration,
    RealSystemConfig,
    SoftwareFamilyCalibration,
    format_bytes,
    format_table,
    geometric_mean,
    variants_for_query,
)
from repro.eval.tables import format_dict_rows


class TestFormatTable:
    def test_basic_layout(self):
        out = format_table("T", ["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = out.splitlines()
        assert lines[0] == "== T =="
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.5" in out and "3.2" in out

    def test_paper_note(self):
        out = format_table("T", ["x"], [[1]], paper_note="note here")
        assert "paper: note here" in out

    def test_empty_rows(self):
        out = format_table("T", ["col"], [])
        assert "col" in out

    def test_dict_rows(self):
        out = format_dict_rows("T", [{"a": 1, "b": 2.0}], ["a", "b"])
        assert "1" in out and "2.0" in out

    def test_float_format(self):
        out = format_table("T", ["x"], [[3.14159]], float_format="{:.3f}")
        assert "3.142" in out


class TestFormatBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (512, "512B"),
            (2048, "2KB"),
            (8 * 1024**2, "8MB"),
            (128 * 1024**3, "128GB"),
            (1536, "1.5KB"),
        ],
    )
    def test_cases(self, value, expected):
        assert format_bytes(value) == expected


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestVariantsForQuery:
    def test_paper_case(self):
        assert variants_for_query(16) == 16

    def test_scales_with_chunks(self):
        assert variants_for_query(256) == 256
        assert variants_for_query(48) == 48

    def test_short_queries_floor(self):
        assert variants_for_query(8) == 16


class TestCalibrationConstants:
    def test_real_system_matches_table2(self):
        cfg = RealSystemConfig()
        assert "5118" in cfg.cpu
        assert cfg.cores == 6
        assert cfg.dram_capacity_bytes == 32 * 1024**3

    def test_bandwidths_match_table3(self):
        bw = BandwidthConfig()
        assert bw.flash_internal_bytes_per_s == pytest.approx(9.6e9)
        assert bw.pcie_bytes_per_s == 7e9
        assert bw.dram_bytes_per_s == 19.2e9

    def test_hardware_c_ifp_derivation(self):
        cal = HardwareFamilyCalibration()
        # 32 x 29.34us over 128 planes x 32768 bitlines ~ 0.224 ns
        assert cal.c_ifp == pytest.approx(0.224e-9, rel=0.02)

    def test_engine_cost_ordering(self):
        # per-coefficient: PuM < IFP < PuM-SSD < SW
        cal = HardwareFamilyCalibration()
        assert cal.c_pum < cal.c_ifp < cal.c_pum_ssd < cal.c_sw

    def test_software_expansions(self):
        cal = SoftwareFamilyCalibration()
        assert cal.cm_expansion == 4.0
        assert cal.arith_expansion == 64.0
        assert cal.boolean_expansion >= 200.0
