"""Unit tests for the internal DRAM model and the index-generation unit."""

import numpy as np
import pytest

from repro.ssd import IndexGenerationUnit, InternalDram


class TestInternalDram:
    def test_allocate_and_read(self):
        dram = InternalDram(capacity_bytes=1024)
        arr = np.zeros(64, dtype=np.uint8)
        dram.allocate("buf", arr)
        assert dram.contains("buf")
        assert dram.read("buf") is arr
        assert dram.used_bytes == 64

    def test_capacity_enforced(self):
        dram = InternalDram(capacity_bytes=100)
        with pytest.raises(MemoryError):
            dram.allocate("big", np.zeros(200, dtype=np.uint8))

    def test_replace_frees_old(self):
        dram = InternalDram(capacity_bytes=100)
        dram.allocate("x", np.zeros(80, dtype=np.uint8))
        dram.allocate("x", np.zeros(60, dtype=np.uint8))  # replacement fits
        assert dram.used_bytes == 60

    def test_free(self):
        dram = InternalDram(capacity_bytes=100)
        dram.allocate("x", np.zeros(50, dtype=np.uint8))
        dram.free("x")
        assert dram.used_bytes == 0
        assert not dram.contains("x")

    def test_free_missing_is_noop(self):
        InternalDram().free("nothing")

    def test_transfer_time(self):
        dram = InternalDram(bandwidth_bytes_per_s=1e9)
        assert dram.transfer_time(1e9) == pytest.approx(1.0)

    def test_default_capacity_2gb(self):
        assert InternalDram().capacity_bytes == 2 * 1024**3


class TestIndexGenerationUnit:
    def test_flag_equal(self):
        unit = IndexGenerationUnit()
        flags = unit.flag_equal(np.array([1, 2, 3]), np.array([1, 9, 3]))
        assert list(flags) == [True, False, True]

    def test_flag_equal_shape_check(self):
        unit = IndexGenerationUnit()
        with pytest.raises(ValueError):
            unit.flag_equal(np.zeros(3), np.zeros(4))

    def test_flag_value(self):
        unit = IndexGenerationUnit()
        flags = unit.flag_value(np.array([7, 0, 7]), 7)
        assert list(flags) == [True, False, True]

    def test_indices_from_flags(self):
        unit = IndexGenerationUnit()
        assert unit.indices_from_flags(np.array([False, True, True])) == [1, 2]

    def test_cost_accounting(self):
        unit = IndexGenerationUnit()
        unit.flag_value(np.zeros(4), 1)
        unit.flag_value(np.zeros(4), 1)
        assert unit.pages_processed == 2
        assert unit.busy_seconds == pytest.approx(2 * 3.42e-6)
        assert unit.energy_joules == pytest.approx(2 * 0.18e-6)

    def test_latency_hidden_under_flash_read(self):
        # 3.42us < 22.5us (the paper's overlap argument)
        assert IndexGenerationUnit().costs.hidden_under_read

    def test_result_buffer_matches_paper(self):
        # 4KB x 8 channels x 8 dies x 2 planes = 0.5 MB (§6.3)
        unit = IndexGenerationUnit()
        assert unit.result_buffer_bytes(8, 8, 2, 4096) == 512 * 1024
