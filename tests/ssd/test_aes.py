"""Unit tests for the AES index-encryption unit (§7.2), including the
FIPS-197 appendix vectors."""

import pytest

from repro.ssd.aes import (
    AES,
    AES_UNIT_LATENCY_PER_BLOCK,
    SecureIndexChannel,
    aes_ctr,
)


class TestFips197Vectors:
    """Known-answer tests from FIPS-197 Appendix C."""

    PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")

    def test_aes128(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES(key).encrypt_block(self.PLAIN) == expected

    def test_aes192(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617")
        expected = bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191")
        assert AES(key).encrypt_block(self.PLAIN) == expected

    def test_aes256(self):
        key = bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f"
        )
        expected = bytes.fromhex("8ea2b7ca516745bfeafc49904b496089")
        assert AES(key).encrypt_block(self.PLAIN) == expected

    def test_fips197_appendix_b(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plain = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES(key).encrypt_block(plain) == expected


class TestBlockCipher:
    @pytest.mark.parametrize("key_len", [16, 24, 32])
    def test_decrypt_inverts_encrypt(self, key_len):
        key = bytes(range(key_len))
        cipher = AES(key)
        block = bytes(range(16, 32))
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_rejects_bad_key_size(self):
        with pytest.raises(ValueError):
            AES(b"short")

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            AES(bytes(16)).encrypt_block(b"tiny")

    def test_different_keys_differ(self):
        block = bytes(16)
        c1 = AES(bytes(16)).encrypt_block(block)
        c2 = AES(bytes([1] * 16)).encrypt_block(block)
        assert c1 != c2

    def test_round_counts(self):
        assert AES(bytes(16)).nr == 10
        assert AES(bytes(24)).nr == 12
        assert AES(bytes(32)).nr == 14


class TestCtrMode:
    def test_roundtrip(self):
        key = bytes(range(32))
        nonce = bytes(8)
        data = b"the matched index lives at offset 4096" * 3
        ct = aes_ctr(key, nonce, data)
        assert ct != data
        assert aes_ctr(key, nonce, ct) == data

    def test_partial_block(self):
        key = bytes(range(16))
        nonce = bytes(8)
        data = b"short"
        assert aes_ctr(key, nonce, aes_ctr(key, nonce, data)) == data
        assert len(aes_ctr(key, nonce, data)) == len(data)

    def test_nonce_matters(self):
        key = bytes(range(16))
        data = bytes(32)
        assert aes_ctr(key, bytes(8), data) != aes_ctr(key, b"\x01" * 8, data)

    def test_bad_nonce_length(self):
        with pytest.raises(ValueError):
            aes_ctr(bytes(16), bytes(4), b"data")


class TestSecureIndexChannel:
    def test_index_roundtrip(self):
        channel = SecureIndexChannel.establish(seed=5)
        indices = [0, 4096, 123456789, 2**40]
        nonce, ct = channel.encrypt_indices(indices)
        assert channel.decrypt_indices(nonce, ct) == indices

    def test_ciphertext_hides_indices(self):
        channel = SecureIndexChannel.establish(seed=6)
        nonce, ct = channel.encrypt_indices([4096])
        assert (4096).to_bytes(8, "big") not in ct

    def test_nonces_unique_per_batch(self):
        channel = SecureIndexChannel.establish(seed=7)
        n1, _ = channel.encrypt_indices([1])
        n2, _ = channel.encrypt_indices([1])
        assert n1 != n2

    def test_wrong_key_garbles(self):
        a = SecureIndexChannel.establish(seed=8)
        b = SecureIndexChannel.establish(seed=9)
        nonce, ct = a.encrypt_indices([42, 43])
        with pytest.raises(Exception):
            # either unpacking fails or values are wrong
            got = b.decrypt_indices(nonce, ct)
            assert got != [42, 43]
            raise ValueError

    def test_empty_batch(self):
        channel = SecureIndexChannel.establish(seed=10)
        nonce, ct = channel.encrypt_indices([])
        assert channel.decrypt_indices(nonce, ct) == []

    def test_hardware_latency_model(self):
        channel = SecureIndexChannel.establish(seed=11)
        # 4 + 8*10 = 84 bytes -> 6 blocks
        assert channel.hardware_latency(list(range(10))) == pytest.approx(
            6 * AES_UNIT_LATENCY_PER_BLOCK
        )

    def test_block_accounting(self):
        channel = SecureIndexChannel.establish(seed=12)
        channel.encrypt_indices([1, 2, 3])
        assert channel.blocks_encrypted == 2  # 28 bytes -> 2 blocks
