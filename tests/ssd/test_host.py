"""Unit tests for the host pager (§4.3.2 page-fault / writeback flow)."""

import numpy as np
import pytest

from repro.ssd import CipherMatchSSD, SSDConfig
from repro.ssd.host import HostPager, PagerConfig


@pytest.fixture()
def setup(rng):
    ssd = CipherMatchSSD(SSDConfig.functional(num_bitlines=128, word_bits=32))
    pager = HostPager(ssd.controller)
    words = rng.integers(0, 1 << 32, 40).astype(np.int64)
    ssd.controller.cm_write(0, words)
    return ssd, pager, words


class TestFaultPath:
    def test_fault_loads_cm_page(self, setup):
        _, pager, words = setup
        data = pager.access(0)
        assert np.array_equal(data[:40], words)
        assert pager.stats.faults == 1
        assert pager.stats.cm_region_faults == 1

    def test_resident_page_no_refault(self, setup):
        _, pager, _ = setup
        pager.access(0)
        pager.access(0)
        assert pager.stats.faults == 1

    def test_cm_fault_latency_is_wordbits_reads(self, setup):
        _, pager, _ = setup
        assert pager.fault_latency(0) == pytest.approx(32 * 22.5e-6)

    def test_fault_time_charged(self, setup):
        _, pager, _ = setup
        pager.access(0)
        assert pager.stats.simulated_fault_seconds == pytest.approx(32 * 22.5e-6)

    def test_timeout_retry_protocol(self, setup):
        ssd, _, _ = setup
        # timeout shorter than the fault latency forces retries
        pager = HostPager(
            ssd.controller,
            PagerConfig(fault_timeout_s=300e-6, max_retries=5),
        )
        pager.access(0)
        # 720us fault with 300us windows -> 2 retries
        assert pager.stats.retries == 2
        assert pager.stats.timeouts == 2

    def test_retry_exhaustion_raises(self, setup):
        ssd, _, _ = setup
        pager = HostPager(
            ssd.controller, PagerConfig(fault_timeout_s=50e-6, max_retries=2)
        )
        with pytest.raises(TimeoutError):
            pager.access(0)


class TestWritebackPath:
    def test_store_marks_dirty(self, setup):
        _, pager, words = setup
        pager.store(0, words)
        assert pager.is_dirty(0)

    def test_evict_clean_page_no_writeback(self, setup):
        _, pager, _ = setup
        pager.access(0)
        assert pager.evict(0) is False
        assert pager.stats.writebacks == 0

    def test_evict_dirty_page_writes_back(self, setup, rng):
        _, pager, _ = setup
        new_words = rng.integers(0, 1 << 32, 40).astype(np.int64)
        pager.store(0, new_words)
        assert pager.evict(0) is True
        assert pager.stats.writebacks == 1
        # the SSD now holds the new data (out-of-place rewrite)
        refetched = pager.access(0)
        assert np.array_equal(refetched[:40], new_words)

    def test_flush_writes_all_dirty(self, setup, rng):
        ssd, pager, _ = setup
        ssd.controller.cm_write(1, rng.integers(0, 1 << 32, 10).astype(np.int64))
        pager.store(0, rng.integers(0, 1 << 32, 40).astype(np.int64))
        pager.store(1, rng.integers(0, 1 << 32, 10).astype(np.int64))
        assert pager.flush() == 2
        assert pager.resident_pages == []

    def test_evict_unknown_page(self, setup):
        _, pager, _ = setup
        assert pager.evict(99) is False

    def test_writeback_is_async_cost(self, setup, rng):
        _, pager, _ = setup
        pager.store(0, rng.integers(0, 1 << 32, 40).astype(np.int64))
        pager.evict(0)
        # writeback cost charged to the background ledger only
        assert pager.stats.simulated_writeback_seconds > 0
        assert pager.stats.simulated_fault_seconds == 0
