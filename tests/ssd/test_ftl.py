"""Unit tests for the dual-region FTL (§4.3.2)."""

import pytest

from repro.flash import FlashGeometry
from repro.ssd import FlashTranslationLayer, Region


@pytest.fixture()
def ftl():
    return FlashTranslationLayer(
        FlashGeometry.functional(num_bitlines=64, wordlines=64),
        ciphermatch_fraction=0.5,
        word_bits=32,
    )


class TestRegions:
    def test_block_boundary(self, ftl):
        assert ftl.block_boundary == 2  # half of 4 blocks/plane

    def test_capacity_split(self, ftl):
        cm = ftl.region_capacity_bytes(Region.CIPHERMATCH)
        conv = ftl.region_capacity_bytes(Region.CONVENTIONAL)
        # conventional runs TLC (3 bits/cell), CM runs SLC (1 bit/cell)
        assert conv == 3 * cm

    def test_capacity_loss(self, ftl):
        # half the blocks drop from 3 bits to 1 bit: lose 1/3 of total
        assert ftl.capacity_loss_fraction() == pytest.approx(1 / 3)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            FlashTranslationLayer(FlashGeometry.functional(), ciphermatch_fraction=1.5)


class TestCiphermatchAllocation:
    def test_slots_per_block(self, ftl):
        assert ftl.slots_per_block() == 2  # 64 WLs / 32-bit words

    def test_total_slots(self, ftl):
        g = ftl.geometry
        assert ftl.total_ciphermatch_slots() == g.total_planes * 2 * 2

    def test_striping_across_planes(self, ftl):
        ppas = [ftl.allocate_ciphermatch_slot(i) for i in range(ftl.geometry.total_planes)]
        flat = {p.plane_index(ftl.geometry) for p in ppas}
        assert len(flat) == ftl.geometry.total_planes  # one slot per plane first

    def test_wordline_offsets_within_block(self, ftl):
        total_planes = ftl.geometry.total_planes
        first_round = [ftl.allocate_ciphermatch_slot(i) for i in range(total_planes)]
        second_round = [
            ftl.allocate_ciphermatch_slot(total_planes + i) for i in range(total_planes)
        ]
        assert all(p.wordline == 0 for p in first_round)
        assert all(p.wordline == 32 for p in second_round)

    def test_mapping_table_binding(self, ftl):
        ppa = ftl.allocate_ciphermatch_slot(42)
        assert ftl.lookup(Region.CIPHERMATCH, 42) == ppa
        assert ftl.lookup(Region.CONVENTIONAL, 42) is None

    def test_exhaustion(self, ftl):
        for i in range(ftl.total_ciphermatch_slots()):
            ftl.allocate_ciphermatch_slot(i)
        with pytest.raises(RuntimeError):
            ftl.allocate_ciphermatch_slot(9999)

    def test_blocks_stay_inside_region(self, ftl):
        for i in range(ftl.total_ciphermatch_slots()):
            ppa = ftl.allocate_ciphermatch_slot(i)
            assert ppa.block < ftl.block_boundary


class TestConventionalAllocation:
    def test_blocks_outside_cm_region(self, ftl):
        for i in range(20):
            ppa = ftl.allocate_conventional(i)
            assert ppa.block >= ftl.block_boundary

    def test_separate_tables(self, ftl):
        ftl.allocate_ciphermatch_slot(1)
        ftl.allocate_conventional(1)
        cm = ftl.lookup(Region.CIPHERMATCH, 1)
        conv = ftl.lookup(Region.CONVENTIONAL, 1)
        assert cm != conv


class TestFaultPathModel:
    def test_page_fault_latency_is_wordbits_reads(self, ftl):
        assert ftl.page_fault_read_latency(22.5e-6) == pytest.approx(32 * 22.5e-6)

    def test_mapping_overhead_is_0_1_percent(self, ftl):
        assert ftl.mapping_dram_overhead_bytes(2 * 1024**4) == 2 * 1024**4 // 1000
