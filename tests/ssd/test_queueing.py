"""Tests for the event-driven SSD queueing simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash.cell_array import FlashGeometry
from repro.flash.timing import FlashTimings
from repro.ssd.queueing import (
    IoRequest,
    RequestKind,
    SsdQueueingSimulator,
    cm_search_wave,
    simulate_cm_search,
)


@pytest.fixture
def geometry():
    return FlashGeometry(channels=2, dies_per_channel=2)


@pytest.fixture
def timings():
    return FlashTimings()


class TestSingleRequest:
    def test_read_latency(self, geometry, timings):
        sim = SsdQueueingSimulator(geometry, timings)
        sim.submit(IoRequest(RequestKind.READ, channel=0, die=0))
        result = sim.run()
        expected = timings.t_read_slc + timings.page_transfer_time()
        assert result.makespan == pytest.approx(expected)
        assert result.requests[0].latency == pytest.approx(expected)

    def test_program_latency(self, geometry, timings):
        sim = SsdQueueingSimulator(geometry, timings)
        sim.submit(IoRequest(RequestKind.PROGRAM, channel=0, die=0))
        result = sim.run()
        expected = timings.page_transfer_time() + timings.t_program_slc
        assert result.makespan == pytest.approx(expected)

    def test_cm_search_latency(self, geometry, timings):
        sim = SsdQueueingSimulator(geometry, timings, word_bits=32)
        sim.submit(IoRequest(RequestKind.CM_SEARCH, channel=0, die=0))
        result = sim.run()
        expected = 2 * timings.page_transfer_time() + 32 * timings.t_bop_add
        assert result.makespan == pytest.approx(expected)

    def test_multi_page_read(self, geometry, timings):
        sim = SsdQueueingSimulator(geometry, timings)
        sim.submit(IoRequest(RequestKind.READ, channel=0, die=0, pages=4))
        result = sim.run()
        expected = 4 * (timings.t_read_slc + timings.page_transfer_time())
        assert result.makespan == pytest.approx(expected)

    def test_out_of_range_channel_rejected(self, geometry):
        sim = SsdQueueingSimulator(geometry)
        with pytest.raises(ValueError):
            sim.submit(IoRequest(RequestKind.READ, channel=5, die=0))

    def test_out_of_range_die_rejected(self, geometry):
        sim = SsdQueueingSimulator(geometry)
        with pytest.raises(ValueError):
            sim.submit(IoRequest(RequestKind.READ, channel=0, die=9))


class TestContention:
    def test_same_die_serializes(self, geometry, timings):
        sim = SsdQueueingSimulator(geometry, timings)
        sim.submit(IoRequest(RequestKind.READ, channel=0, die=0))
        sim.submit(IoRequest(RequestKind.READ, channel=0, die=0))
        result = sim.run()
        single = timings.t_read_slc + timings.page_transfer_time()
        assert result.makespan >= timings.t_read_slc * 2
        assert result.makespan > single

    def test_different_dies_overlap_flash_time(self, geometry, timings):
        """Two reads on different dies of one channel: the tR portions
        overlap, only the bus transfers serialize."""
        sim = SsdQueueingSimulator(geometry, timings)
        sim.submit(IoRequest(RequestKind.READ, channel=0, die=0))
        sim.submit(IoRequest(RequestKind.READ, channel=0, die=1))
        result = sim.run()
        serial = 2 * (timings.t_read_slc + timings.page_transfer_time())
        expected = timings.t_read_slc + 2 * timings.page_transfer_time()
        assert result.makespan == pytest.approx(expected)
        assert result.makespan < serial

    def test_different_channels_fully_parallel(self, geometry, timings):
        sim = SsdQueueingSimulator(geometry, timings)
        sim.submit(IoRequest(RequestKind.READ, channel=0, die=0))
        sim.submit(IoRequest(RequestKind.READ, channel=1, die=0))
        result = sim.run()
        single = timings.t_read_slc + timings.page_transfer_time()
        assert result.makespan == pytest.approx(single)

    def test_arrival_offset_respected(self, geometry, timings):
        sim = SsdQueueingSimulator(geometry, timings)
        sim.submit(IoRequest(RequestKind.READ, channel=0, die=0, arrival=1.0))
        result = sim.run()
        assert result.requests[0].start >= 1.0
        assert result.makespan == pytest.approx(
            1.0 + timings.t_read_slc + timings.page_transfer_time()
        )

    def test_fcfs_order_on_die(self, geometry, timings):
        sim = SsdQueueingSimulator(geometry, timings)
        first = IoRequest(RequestKind.READ, channel=0, die=0, tag="first")
        second = IoRequest(RequestKind.READ, channel=0, die=0, tag="second")
        sim.submit(first)
        sim.submit(second)
        sim.run()
        assert first.finish <= second.start + timings.page_transfer_time()


class TestStatistics:
    def test_busy_accounting(self, geometry, timings):
        sim = SsdQueueingSimulator(geometry, timings)
        sim.submit(IoRequest(RequestKind.READ, channel=0, die=0))
        result = sim.run()
        assert result.die_busy[(0, 0)] == pytest.approx(timings.t_read_slc)
        assert result.channel_busy[0] == pytest.approx(timings.page_transfer_time())

    def test_utilization_bounds(self, geometry, timings):
        sim = SsdQueueingSimulator(geometry, timings)
        for i in range(8):
            sim.submit(IoRequest(RequestKind.READ, channel=0, die=i % 2))
        result = sim.run()
        assert 0.0 < result.die_utilization(0, 0) <= 1.0
        assert 0.0 < result.channel_utilization(0) <= 1.0
        assert result.channel_utilization(1) == 0.0

    def test_percentile_latency(self, geometry, timings):
        sim = SsdQueueingSimulator(geometry, timings)
        for _ in range(10):
            sim.submit(IoRequest(RequestKind.READ, channel=0, die=0))
        result = sim.run()
        assert result.percentile_latency(100) == pytest.approx(result.max_latency)
        assert result.percentile_latency(50) <= result.max_latency
        with pytest.raises(ValueError):
            result.percentile_latency(0)

    def test_empty_run(self, geometry):
        sim = SsdQueueingSimulator(geometry)
        result = sim.run()
        assert result.makespan == 0.0
        assert result.mean_latency == 0.0

    def test_run_drains_queue(self, geometry, timings):
        sim = SsdQueueingSimulator(geometry, timings)
        sim.submit(IoRequest(RequestKind.READ, channel=0, die=0))
        first = sim.run()
        second = sim.run()
        assert len(first.requests) == 1
        assert len(second.requests) == 0


class TestCmSearchWave:
    def test_wave_stripes_round_robin(self, geometry):
        requests = cm_search_wave(geometry, slots=4)
        pairs = {(r.channel, r.die) for r in requests}
        assert len(pairs) == 4  # 2 channels x 2 dies all used

    def test_wave_wraps_after_all_pairs(self, geometry):
        requests = cm_search_wave(geometry, slots=5)
        assert (requests[0].channel, requests[0].die) == (
            requests[4].channel,
            requests[4].die,
        )

    def test_single_slot_matches_closed_form(self, timings):
        geometry = FlashGeometry(channels=2, dies_per_channel=2)
        result = simulate_cm_search(1, geometry, timings)
        expected = 2 * timings.page_transfer_time() + 32 * timings.t_bop_add
        assert result.makespan == pytest.approx(expected)

    def test_one_wave_overlaps_across_dies(self, timings):
        """A full wave (one slot per die) costs barely more than one
        slot: bop_add runs concurrently on every die."""
        geometry = FlashGeometry(channels=2, dies_per_channel=2)
        one = simulate_cm_search(1, geometry, timings).makespan
        full = simulate_cm_search(4, geometry, timings).makespan
        assert full < 1.2 * one

    def test_two_waves_roughly_double(self, timings):
        geometry = FlashGeometry(channels=2, dies_per_channel=2)
        one_wave = simulate_cm_search(4, geometry, timings).makespan
        two_waves = simulate_cm_search(8, geometry, timings).makespan
        assert two_waves == pytest.approx(2 * one_wave, rel=0.1)

    def test_paper_geometry_wave(self):
        """The Table-3 geometry runs 64 concurrent slots per wave."""
        geometry = FlashGeometry()  # 8 channels x 8 dies
        result = simulate_cm_search(64, geometry)
        single = simulate_cm_search(1, geometry)
        assert result.makespan < 1.5 * single.makespan

    @given(st.integers(min_value=1, max_value=32))
    @settings(max_examples=15, deadline=None)
    def test_makespan_monotone_in_slots(self, slots):
        geometry = FlashGeometry(channels=2, dies_per_channel=2)
        smaller = simulate_cm_search(slots, geometry).makespan
        larger = simulate_cm_search(slots + 1, geometry).makespan
        assert larger >= smaller

    @given(st.integers(min_value=1, max_value=16))
    @settings(max_examples=10, deadline=None)
    def test_work_conservation(self, slots):
        """Total die busy time equals slots x per-slot bop time."""
        geometry = FlashGeometry(channels=2, dies_per_channel=2)
        timings = FlashTimings()
        result = simulate_cm_search(slots, geometry, timings)
        total_die = sum(result.die_busy.values())
        assert total_die == pytest.approx(slots * 32 * timings.t_bop_add)
