"""Unit tests for the data transposition unit (§4.3.2, §7.1)."""

import numpy as np
import pytest

from repro.ssd import DataTranspositionUnit, TranspositionCosts


class TestFunctional:
    def test_roundtrip(self, rng):
        unit = DataTranspositionUnit(word_bits=32)
        words = rng.integers(0, 1 << 32, 100).astype(np.int64)
        matrix = unit.to_vertical(words, 128)
        assert np.array_equal(unit.to_horizontal(matrix, 100), words)

    def test_vertical_shape(self, rng):
        unit = DataTranspositionUnit(word_bits=16)
        matrix = unit.to_vertical(rng.integers(0, 1 << 16, 10).astype(np.int64), 32)
        assert matrix.shape == (16, 32)


class TestCostAccounting:
    def test_software_latency(self):
        unit = DataTranspositionUnit()
        assert unit.latency_per_page == pytest.approx(13.6e-6)

    def test_hardware_latency(self):
        unit = DataTranspositionUnit(hardware=True)
        assert unit.latency_per_page == pytest.approx(158e-9)

    def test_busy_time_accumulates(self, rng):
        unit = DataTranspositionUnit()
        words = rng.integers(0, 1 << 32, 8).astype(np.int64)
        unit.to_vertical(words, 16)
        unit.to_horizontal(unit.to_vertical(words, 16), 8)
        assert unit.pages_transposed == 3
        assert unit.busy_seconds == pytest.approx(3 * 13.6e-6)


class TestOverlapAnalysis:
    def test_software_hidden_under_slc_read(self):
        # 13.6us < 22.5us: fully overlapped (the paper's argument for a
        # software unit)
        costs = TranspositionCosts()
        assert costs.hidden_under_read(hardware=False)

    def test_software_not_hidden_under_znand(self):
        # Z-NAND reads at 3us expose the software latency (§7.1)
        costs = TranspositionCosts()
        assert not costs.hidden_under_read(
            hardware=False, read_latency=costs.znand_read_latency
        )

    def test_hardware_hidden_under_znand(self):
        costs = TranspositionCosts()
        assert costs.hidden_under_read(
            hardware=True, read_latency=costs.znand_read_latency
        )

    def test_overlap_penalty(self):
        unit = DataTranspositionUnit()
        assert unit.overlap_penalty() == 0.0
        assert unit.overlap_penalty(read_latency=3e-6) == pytest.approx(
            13.6e-6 - 3e-6
        )

    def test_hw_area(self):
        assert TranspositionCosts().hardware_area_mm2 == 0.24
