"""Unit tests for garbage collection and wear leveling."""

import pytest

from repro.flash import WearTracker
from repro.ssd import GarbageCollector, SlotState


@pytest.fixture()
def gc():
    return GarbageCollector(slots_per_block=4, gc_threshold_free_fraction=0.25)


class TestBookkeeping:
    def test_write_marks_valid(self, gc):
        gc.note_write((0, 0), 0, lpn=10)
        counts = gc.counts((0, 0))
        assert counts[SlotState.VALID] == 1
        assert counts[SlotState.FREE] == 3

    def test_double_write_requires_invalidate(self, gc):
        gc.note_write((0, 0), 0, lpn=10)
        with pytest.raises(RuntimeError):
            gc.note_write((0, 0), 0, lpn=11)
        gc.note_invalidate((0, 0), 0)
        gc.note_write((0, 0), 0, lpn=11)

    def test_free_fraction(self, gc):
        gc.register_block((0, 0))
        gc.register_block((0, 1))
        gc.note_write((0, 0), 0, lpn=1)
        gc.note_write((0, 0), 1, lpn=2)
        assert gc.free_fraction() == pytest.approx(6 / 8)


class TestVictimSelection:
    def test_prefers_most_invalid(self, gc):
        gc.note_write((0, 0), 0, lpn=1)
        gc.note_invalidate((0, 0), 0)
        gc.note_write((0, 1), 0, lpn=2)
        gc.note_invalidate((0, 1), 0)
        gc.note_write((0, 1), 1, lpn=3)
        gc.note_invalidate((0, 1), 1)
        assert gc.select_victim() == (0, 1)

    def test_no_victim_without_invalid_slots(self, gc):
        gc.note_write((0, 0), 0, lpn=1)
        assert gc.select_victim() is None

    def test_wear_tiebreak(self):
        wear = WearTracker()
        gc = GarbageCollector(slots_per_block=2, wear=wear)
        for block in ((0, 0), (0, 1)):
            gc.note_write(block, 0, lpn=hash(block) % 100)
            gc.note_invalidate(block, 0)
        # pre-wear block (0, 0): victim should be the fresher (0, 1)
        wear.record_erase(hash((0, 0)))
        assert gc.select_victim() == (0, 1)


class TestCollection:
    def test_collect_returns_migration_plan(self, gc):
        gc.note_write((0, 0), 0, lpn=1)
        gc.note_write((0, 0), 1, lpn=2)
        gc.note_invalidate((0, 0), 0)
        migrations = gc.collect((0, 0))
        assert migrations == [(2, 1)]  # only the valid slot migrates
        counts = gc.counts((0, 0))
        assert counts[SlotState.FREE] == 4

    def test_collect_records_erase(self, gc):
        gc.note_write((0, 0), 0, lpn=1)
        gc.note_invalidate((0, 0), 0)
        gc.collect((0, 0))
        assert gc.wear.cycles(hash((0, 0))) == 1
        assert gc.stats.blocks_erased == 1
        assert gc.stats.collections == 1

    def test_run_if_needed_idle_when_space(self, gc):
        gc.register_block((0, 0))
        assert gc.run_if_needed() == []
        assert gc.stats.collections == 0

    def test_run_if_needed_triggers_below_threshold(self, gc):
        # fill 4 of 4 slots, invalidate two -> free fraction 0 < 0.25
        for i in range(4):
            gc.note_write((0, 0), i, lpn=i)
        gc.note_invalidate((0, 0), 0)
        gc.note_invalidate((0, 0), 1)
        migrations = gc.run_if_needed()
        assert sorted(m[0] for m in migrations) == [2, 3]
        assert gc.stats.slots_migrated == 2

    def test_wear_stays_levelled_over_many_cycles(self):
        """Greedy-with-wear-tiebreak keeps erase counts within ~2x."""
        gc = GarbageCollector(slots_per_block=2, gc_threshold_free_fraction=0.9)
        blocks = [(0, b) for b in range(8)]
        for block in blocks:
            gc.register_block(block)
        lpn = 0
        import random

        rnd = random.Random(1)
        for _ in range(300):
            block = rnd.choice(blocks)
            slot = rnd.randrange(2)
            state = gc._slots[block][slot].state
            if state is SlotState.VALID:
                gc.note_invalidate(block, slot)
            if gc._slots[block][slot].state is SlotState.FREE or state is SlotState.VALID:
                try:
                    gc.note_write(block, slot, lpn)
                except RuntimeError:
                    continue
                lpn += 1
            victim = gc.select_victim()
            if victim is not None and gc.needs_collection():
                gc.collect(victim)
        assert gc.wear.wear_imbalance() < 2.5
