"""Tests for parallel multi-slot CM-search and the CLI entry point."""

import numpy as np
import pytest

from repro.ssd import CipherMatchSSD, SSDConfig


@pytest.fixture()
def ssd():
    return CipherMatchSSD(SSDConfig.functional(num_bitlines=128, word_bits=32))


class TestParallelSearch:
    def _fill(self, ssd, rng, num_slots):
        data = []
        for lpn in range(num_slots):
            words = rng.integers(0, 1 << 32, 20).astype(np.int64)
            ssd.controller.cm_write(lpn, words)
            data.append(words)
        return data

    def test_sums_exact_across_slots(self, ssd, rng):
        data = self._fill(ssd, rng, 3)
        q = rng.integers(0, 1 << 32, 20).astype(np.int64)
        outcome = ssd.controller.cm_search_parallel([0, 1, 2], q)
        for words, slot_outcome in zip(data, outcome.outcomes):
            assert np.array_equal(slot_outcome.sums[:20], (words + q) % (1 << 32))

    def test_one_wave_when_slots_on_distinct_planes(self, ssd, rng):
        # the FTL stripes slots plane-first: the first total_planes lpns
        # land on distinct planes
        planes = ssd.flash.geometry.total_planes
        self._fill(ssd, rng, planes)
        q = rng.integers(0, 1 << 32, 20).astype(np.int64)
        outcome = ssd.controller.cm_search_parallel(list(range(planes)), q)
        assert outcome.waves == 1
        assert outcome.planes_used == planes

    def test_second_wave_when_planes_collide(self, ssd, rng):
        planes = ssd.flash.geometry.total_planes
        self._fill(ssd, rng, planes + 1)
        q = rng.integers(0, 1 << 32, 20).astype(np.int64)
        outcome = ssd.controller.cm_search_parallel(list(range(planes + 1)), q)
        assert outcome.waves == 2

    def test_makespan_scales_with_waves(self, ssd, rng):
        planes = ssd.flash.geometry.total_planes
        self._fill(ssd, rng, 2 * planes)
        q = rng.integers(0, 1 << 32, 20).astype(np.int64)
        one = ssd.controller.cm_search_parallel(list(range(planes)), q)
        two = ssd.controller.cm_search_parallel(list(range(2 * planes)), q)
        assert two.makespan_seconds == pytest.approx(2 * one.makespan_seconds)

    def test_unknown_lpn_raises(self, ssd, rng):
        q = rng.integers(0, 1 << 32, 4).astype(np.int64)
        with pytest.raises(KeyError):
            ssd.controller.cm_search_parallel([99], q)

    def test_all_sums_concatenate(self, ssd, rng):
        self._fill(ssd, rng, 2)
        q = rng.integers(0, 1 << 32, 20).astype(np.int64)
        outcome = ssd.controller.cm_search_parallel([0, 1], q)
        assert len(outcome.all_sums) == 2 * len(outcome.outcomes[0].sums)


class TestCli:
    def test_demo(self, capsys):
        from repro.__main__ import main

        assert main(["demo"]) == 0
        assert "Hom-Adds" in capsys.readouterr().out

    def test_selftest(self, capsys):
        from repro.__main__ import main

        assert main(["selftest"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_figures_single(self, capsys):
        from repro.__main__ import main

        assert main(["figures", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        from repro.__main__ import main

        assert main(["bogus"]) == 2

    def test_readmap(self, capsys):
        from repro.__main__ import main

        assert main(["readmap"]) == 0
        assert "mapped correctly" in capsys.readouterr().out

    def test_tfhe(self, capsys):
        from repro.__main__ import main

        assert main(["tfhe"]) == 0
        assert "bootstraps" in capsys.readouterr().out

    def test_queueing(self, capsys):
        from repro.__main__ import main

        assert main(["queueing"]) == 0
        assert "makespan" in capsys.readouterr().out
