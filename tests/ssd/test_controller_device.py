"""Unit + integration tests for the SSD controller, host interface and
the assembled CM-IFP device."""

import numpy as np
import pytest

from repro.flash import FlashOp
from repro.he import BFVContext, BFVParams, KeyGenerator
from repro.ssd import (
    CipherMatchSSD,
    HostCommand,
    HostCommandKind,
    IFPAdditionBackend,
    SSDConfig,
)


@pytest.fixture()
def ssd():
    return CipherMatchSSD(SSDConfig.functional(num_bitlines=128, word_bits=32))


class TestCmWriteRead:
    def test_roundtrip(self, ssd, rng):
        words = rng.integers(0, 1 << 32, 50).astype(np.int64)
        ssd.controller.cm_write(0, words)
        got = ssd.controller.cm_read(0)
        assert np.array_equal(got[:50], words)

    def test_oversized_write_rejected(self, ssd, rng):
        too_many = rng.integers(0, 1 << 32, ssd.controller.words_per_slot + 1)
        with pytest.raises(ValueError):
            ssd.controller.cm_write(0, too_many.astype(np.int64))

    def test_read_unmapped_raises(self, ssd):
        with pytest.raises(KeyError):
            ssd.controller.cm_read(123)

    def test_rewrite_goes_out_of_place(self, ssd, rng):
        w1 = rng.integers(0, 1 << 32, 10).astype(np.int64)
        w2 = rng.integers(0, 1 << 32, 10).astype(np.int64)
        ppa1 = ssd.controller.cm_write(5, w1)
        ppa2 = ssd.controller.cm_write(5, w2)
        assert ppa1 != ppa2
        assert np.array_equal(ssd.controller.cm_read(5)[:10], w2)

    def test_transposition_charged(self, ssd, rng):
        before = ssd.controller.transposer.pages_transposed
        ssd.controller.cm_write(0, rng.integers(0, 1 << 32, 10).astype(np.int64))
        assert ssd.controller.transposer.pages_transposed == before + 1

    def test_command_log(self, ssd, rng):
        ssd.controller.cm_write(0, rng.integers(0, 1 << 32, 10).astype(np.int64))
        ssd.controller.cm_read(0)
        assert ssd.controller.log.count(FlashOp.PROGRAM_PAGE) == 1
        assert ssd.controller.log.count(FlashOp.READ_PAGE) == 1


class TestCmSearch:
    def test_bop_add_result(self, ssd, rng):
        a = rng.integers(0, 1 << 32, 30).astype(np.int64)
        b = rng.integers(0, 1 << 32, 30).astype(np.int64)
        ssd.controller.cm_write(0, a)
        outcome = ssd.controller.cm_search(0, b)
        assert np.array_equal(outcome.sums[:30], (a + b) % (1 << 32))
        assert outcome.flags is None

    def test_index_generation_by_value(self, ssd):
        a = np.array([10, 20, 30], dtype=np.int64)
        b = np.array([5, 0, 5], dtype=np.int64)
        ssd.controller.cm_write(0, a)
        outcome = ssd.controller.cm_search(0, b, match_value=35)
        assert outcome.match_indices == [2]

    def test_index_generation_by_expected(self, ssd):
        a = np.array([1, 2], dtype=np.int64)
        b = np.array([3, 4], dtype=np.int64)
        ssd.controller.cm_write(0, a)
        expected = np.array([4, 99], dtype=np.int64)  # second wrong on purpose
        outcome = ssd.controller.cm_search(0, b, expected_words=expected)
        assert 0 in outcome.match_indices
        assert 1 not in outcome.match_indices

    def test_search_unmapped_raises(self, ssd, rng):
        with pytest.raises(KeyError):
            ssd.controller.cm_search(7, rng.integers(0, 2, 4).astype(np.int64))

    def test_index_gen_charged(self, ssd):
        ssd.controller.cm_write(0, np.array([1], dtype=np.int64))
        before = ssd.controller.index_gen.pages_processed
        ssd.controller.cm_search(0, np.array([1], dtype=np.int64), match_value=2)
        assert ssd.controller.index_gen.pages_processed == before + 1


class TestConventionalRegion:
    def test_write_read(self, ssd, rng):
        bits = rng.integers(0, 2, ssd.flash.geometry.bitlines_per_plane).astype(
            np.uint8
        )
        ssd.controller.conventional_write(0, bits)
        assert np.array_equal(ssd.controller.conventional_read(0), bits)

    def test_regions_do_not_collide(self, ssd, rng):
        words = rng.integers(0, 1 << 32, 10).astype(np.int64)
        bits = rng.integers(0, 2, ssd.flash.geometry.bitlines_per_plane).astype(
            np.uint8
        )
        ssd.controller.cm_write(0, words)
        ssd.controller.conventional_write(0, bits)
        assert np.array_equal(ssd.controller.cm_read(0)[:10], words)
        assert np.array_equal(ssd.controller.conventional_read(0), bits)


class TestHostInterface:
    def test_cm_write_read_commands(self, ssd, rng):
        words = rng.integers(0, 1 << 32, 20).astype(np.int64)
        ssd.host.submit(HostCommand(HostCommandKind.CM_WRITE, lpn=3, data=words))
        resp = ssd.host.submit(HostCommand(HostCommandKind.CM_READ, lpn=3))
        assert np.array_equal(resp.data[:20], words)

    def test_flagged_conventional_commands_route_to_cm(self, ssd, rng):
        words = rng.integers(0, 1 << 32, 20).astype(np.int64)
        ssd.host.submit(
            HostCommand(HostCommandKind.WRITE, lpn=4, cm_flag=True, data=words)
        )
        resp = ssd.host.submit(
            HostCommand(HostCommandKind.READ, lpn=4, cm_flag=True)
        )
        assert np.array_equal(resp.data[:20], words)

    def test_cm_search_command(self, ssd):
        a = np.array([7], dtype=np.int64)
        ssd.host.submit(HostCommand(HostCommandKind.CM_WRITE, lpn=5, data=a))
        resp = ssd.host.submit(
            HostCommand(
                HostCommandKind.CM_SEARCH,
                lpn=5,
                data=np.array([3], dtype=np.int64),
                match_value=10,
            )
        )
        assert resp.outcome.match_indices == [0]

    def test_write_requires_data(self, ssd):
        with pytest.raises(ValueError):
            ssd.host.submit(HostCommand(HostCommandKind.CM_WRITE, lpn=0))

    def test_history(self, ssd, rng):
        ssd.host.submit(
            HostCommand(
                HostCommandKind.CM_WRITE,
                lpn=0,
                data=rng.integers(0, 2, 4).astype(np.int64),
            )
        )
        assert ssd.host.history == [HostCommandKind.CM_WRITE]


class TestIFPAdditionBackend:
    @pytest.fixture()
    def backend_setup(self):
        params = BFVParams.test_small(64)
        ctx = BFVContext(params, seed=44)
        gen = KeyGenerator(params, seed=44)
        sk = gen.secret_key()
        pk = gen.public_key(sk)
        return ctx, sk, pk, IFPAdditionBackend(ctx)

    def test_hom_add_matches_cpu(self, backend_setup, rng):
        ctx, sk, pk, backend = backend_setup
        m1 = rng.integers(0, ctx.params.t, ctx.params.n, dtype=np.int64)
        m2 = rng.integers(0, ctx.params.t, ctx.params.n, dtype=np.int64)
        ct1 = ctx.encrypt(ctx.plaintext(m1), pk)
        ct2 = ctx.encrypt(ctx.plaintext(m2), pk)
        flash_sum = backend.hom_add(ct1, ct2)
        cpu_sum = ctx.add(ct1, ct2)
        assert flash_sum.c0 == cpu_sum.c0
        assert flash_sum.c1 == cpu_sum.c1
        assert np.array_equal(
            ctx.decrypt(flash_sum, sk).poly.coeffs, (m1 + m2) % ctx.params.t
        )

    def test_database_ciphertext_cached_in_flash(self, backend_setup, rng):
        ctx, _, pk, backend = backend_setup
        m = rng.integers(0, ctx.params.t, ctx.params.n, dtype=np.int64)
        stored = ctx.encrypt(ctx.plaintext(m), pk)
        q1 = ctx.encrypt(ctx.plaintext(m), pk)
        q2 = ctx.encrypt(ctx.plaintext(m), pk)
        backend.hom_add(stored, q1)
        writes_after_first = backend.ssd.controller.log.count(FlashOp.PROGRAM_PAGE)
        backend.hom_add(stored, q2)
        assert (
            backend.ssd.controller.log.count(FlashOp.PROGRAM_PAGE)
            == writes_after_first
        )

    def test_rejects_non_power_of_two_modulus(self):
        params = BFVParams.arithmetic_baseline(n=64, t=256)
        ctx = BFVContext(params, seed=1)
        with pytest.raises(ValueError):
            IFPAdditionBackend(ctx)

    def test_simulated_time_accrues(self, backend_setup, rng):
        ctx, _, pk, backend = backend_setup
        m = rng.integers(0, ctx.params.t, ctx.params.n, dtype=np.int64)
        ct = ctx.encrypt(ctx.plaintext(m), pk)
        before = backend.ssd.simulated_seconds
        backend.hom_add(ct, ct)
        assert backend.ssd.simulated_seconds > before
