"""Process-parallel shard executor: cross-executor match parity under
both search kernels, shared-memory arena re-attach, worker crash
recovery with single-shard restart, spawn-safety from a clean
interpreter, and the executor selection plumbing (explicit >
process default > env var > thread)."""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core import ClientConfig, CPUAdditionBackend, IndexMode
from repro.he import BFVParams
from repro.serve import (
    EXECUTOR_ENV_VAR,
    ShardedSearchEngine,
    get_default_serve_executor,
    resolve_serve_executor,
    set_default_serve_executor,
)
from repro.utils.bits import random_bits

SRC_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _workload(num_polys=6, num_queries=3, seed=23):
    rng = np.random.default_rng(seed)
    params = BFVParams.test_small(64)
    db = random_bits(num_polys * params.n * 16, rng)
    queries = []
    for k in range(num_queries):
        q = random_bits(32, rng)
        off = 16 * (7 + 53 * k)
        db[off : off + 32] = q
        queries.append(q)
    return params, db, queries


def _engine(params, *, executor, kernel="fused", num_shards=3, **cfg):
    return ShardedSearchEngine(
        ClientConfig(params, key_seed=23, **cfg),
        num_shards=num_shards,
        search_kernel=kernel,
        executor=executor,
    )


# -- selection plumbing ------------------------------------------------------


class TestExecutorSelection:
    def test_resolution_precedence(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        assert resolve_serve_executor(None) == "thread"
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "process")
        assert resolve_serve_executor(None) == "process"
        set_default_serve_executor("thread")
        try:
            assert get_default_serve_executor() == "thread"
            assert resolve_serve_executor(None) == "thread"
            assert resolve_serve_executor("process") == "process"
        finally:
            set_default_serve_executor(None)

    def test_bad_names_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_serve_executor("fork")
        with pytest.raises(ValueError):
            set_default_serve_executor("greenlet")
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "bogus")
        with pytest.raises(ValueError):
            resolve_serve_executor(None)

    def test_engine_rejects_unknown_executor(self):
        params, _, _ = _workload(num_polys=1, num_queries=1)
        with pytest.raises(ValueError):
            ShardedSearchEngine(
                ClientConfig(params, key_seed=1), executor="fork"
            )

    def test_env_var_reaches_engine(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "process")
        params, db, queries = _workload(num_polys=2, num_queries=1)
        with ShardedSearchEngine(
            ClientConfig(params, key_seed=23), num_shards=2
        ) as engine:
            engine.outsource(db)
            assert engine.executor_kind == "process"
            report = engine.search_batch(queries)
            assert report.executor == "process"

    def test_stateful_backend_falls_back_to_thread(self):
        class OwnAdder(CPUAdditionBackend):
            supports_fused = False

        params, db, queries = _workload(num_polys=2, num_queries=1)
        engine = ShardedSearchEngine(
            ClientConfig(params, key_seed=23),
            num_shards=2,
            executor="process",
            backend_factory=lambda ctx, shard_id: OwnAdder(ctx),
        )
        with engine:
            engine.outsource(db)
            assert engine.executor_kind == "thread"
            report = engine.search_batch(queries)
            assert report.executor == "thread"
            assert engine._process_executor is None


# -- cross-executor parity ---------------------------------------------------


@pytest.mark.parametrize("kernel", ["fused", "object"])
def test_process_matches_thread_byte_identical(kernel):
    params, db, queries = _workload()
    reports = {}
    for executor in ("thread", "process"):
        with _engine(params, executor=executor, kernel=kernel) as engine:
            engine.outsource(db)
            reports[executor] = engine.search_batch(queries + [queries[0]])
    t, p = reports["thread"], reports["process"]
    assert t.matches_per_query() == p.matches_per_query()
    assert [r.hom_additions for r in t.reports] == [
        r.hom_additions for r in p.reports
    ]
    assert t.deduplicated_hits == p.deduplicated_hits == 1
    assert sum(s.hom_adds for s in p.shards) == sum(
        s.hom_adds for s in t.shards
    )
    assert p.executor == "process" and t.executor == "thread"
    assert p.worker_restarts == 0
    assert all(s.alive for s in p.shards)


def test_process_deterministic_mode_matches_thread():
    params, db, queries = _workload()
    reports = {}
    for executor in ("thread", "process"):
        with _engine(
            params,
            executor=executor,
            index_mode=IndexMode.SERVER_DETERMINISTIC,
        ) as engine:
            engine.outsource(db)
            reports[executor] = engine.search_batch(queries)
    assert (
        reports["thread"].matches_per_query()
        == reports["process"].matches_per_query()
    )


# -- shared-memory lifecycle -------------------------------------------------


def test_workers_warm_start_at_outsourcing():
    params, db, _ = _workload(num_polys=2, num_queries=1)
    with _engine(params, executor="process", num_shards=2) as engine:
        engine.outsource(db)
        workers = engine._process_executor
        assert workers is not None
        assert all(workers.shard_alive(s.shard_id) for s in engine.shards)


def test_invalidate_caches_reattaches_workers():
    """In-place mutation + invalidate_caches() must re-share the arena
    and re-attach every worker instead of serving stale coefficients."""
    params, db, queries = _workload(num_polys=4)
    with _engine(params, executor="process", num_shards=2) as engine:
        engine.outsource(db)
        before = engine.search_batch(queries[:1]).reports[0].matches
        assert before
        zero_pt = engine.client.ctx.plaintext(
            np.zeros(params.n, dtype=np.int64)
        )
        engine.db.ciphertexts[0] = engine.client.ctx.encrypt(
            zero_pt, engine.client.pk
        )
        engine.db.invalidate_caches()
        after = engine.search_batch(queries[:1]).reports[0].matches
    with _engine(params, executor="thread", num_shards=2) as oracle:
        oracle.adopt_database(engine.db)
        expected = oracle.search_batch(queries[:1]).reports[0].matches
    assert after == expected
    assert before != after


def test_close_terminates_workers():
    params, db, _ = _workload(num_polys=2, num_queries=1)
    engine = _engine(params, executor="process", num_shards=2)
    engine.outsource(db)
    workers = engine._process_executor
    procs = [h.process for h in workers._handles.values()]
    engine.close()
    assert engine._process_executor is None
    assert all(not p.is_alive() for p in procs)
    engine.close()  # idempotent


def test_reshare_after_invalidate_unlinks_old_segments():
    """Re-sharing after invalidate_caches() must unlink the previous
    /dev/shm segments *eagerly* — not when GC happens to collect the
    old arena — or repeated adoption leaks kernel memory."""
    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm on this host")
    params, db, queries = _workload(num_polys=4)
    with _engine(params, executor="process", num_shards=2) as engine:
        engine.outsource(db)
        before = engine.search_batch(queries[:1]).matches_per_query()
        handle = engine._shared_handle
        assert handle is not None and handle.kind == "shm"
        old_refs = [handle.stack_ref]
        if handle.limbs_ref is not None:
            old_refs.append(handle.limbs_ref)
        listing = set(os.listdir("/dev/shm"))
        for ref in old_refs:
            assert ref in listing
        # Strong references to the shared blocks: if the segments
        # disappear anyway, it was the eager unlink, not refcount GC.
        old_blocks = list(engine.db._arena._blocks)
        assert old_blocks
        engine.db.invalidate_caches()
        listing = set(os.listdir("/dev/shm"))
        for ref in old_refs:
            assert ref not in listing, "stale shm segment leaked until GC"
        # the engine re-shares a fresh arena and keeps serving
        after = engine.search_batch(queries[:1]).matches_per_query()
        assert after == before
        new_handle = engine._shared_handle
        assert new_handle is not None and new_handle != handle
        listing = set(os.listdir("/dev/shm"))
        assert new_handle.stack_ref in listing
    # engine close tears the worker fleet down; the db still owns the
    # current arena — dropping it must clean the last segments too
    engine.db.invalidate_caches()
    listing = set(os.listdir("/dev/shm"))
    assert new_handle.stack_ref not in listing


# -- arena build modes -------------------------------------------------------


@pytest.mark.parametrize("executor", ["thread", "process"])
@pytest.mark.parametrize("mode", ["lazy", "eager"])
def test_arena_build_modes_match_across_executors(executor, mode):
    """Lazy and eager builds serve identical match sets under both
    executors (the build schedule must never be observable)."""
    params, db, queries = _workload()
    with _engine(params, executor="thread") as oracle:
        oracle.outsource(db)
        expected = oracle.search_batch(queries).matches_per_query()
    engine = ShardedSearchEngine(
        ClientConfig(params, key_seed=23),
        num_shards=3,
        search_kernel="fused",
        executor=executor,
        arena_build=mode,
    )
    with engine:
        engine.outsource(db)
        assert engine.search_batch(queries).matches_per_query() == expected


def test_lazy_adopt_defers_arena_build():
    """arena_build='lazy' returns from adopt with an unbuilt arena; the
    first query materializes it.  'eager' restores build-at-adopt."""
    params, db, queries = _workload()
    # thread executor: the process path's share() materializes the stack
    # at adopt regardless of build mode, which is exactly what we are
    # *not* probing here
    lazy = ShardedSearchEngine(
        ClientConfig(params, key_seed=23),
        num_shards=2,
        search_kernel="fused",
        executor="thread",
        arena_build="lazy",
    )
    with lazy:
        encrypted = lazy.outsource(db)
        assert encrypted._arena is None  # adopt paid nothing
        lazy.search_batch(queries[:1])
        arena = encrypted._arena
        assert arena is not None
        assert arena.fully_built  # the query touched every shard
    encrypted.invalidate_caches()
    eager = ShardedSearchEngine(
        ClientConfig(params, key_seed=23),
        num_shards=2,
        search_kernel="fused",
        executor="thread",
        arena_build="eager",
    )
    with eager:
        eager.adopt_database(encrypted)
        arena = encrypted._arena
        assert arena is not None and arena.fully_built
        assert arena._phase_rows is not None  # phases pre-warmed too


def test_engine_rejects_unknown_arena_build():
    params, _, _ = _workload(num_polys=1, num_queries=1)
    with pytest.raises(ValueError):
        ShardedSearchEngine(
            ClientConfig(params, key_seed=1), arena_build="never"
        )


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_fused_limb_major_decrypt_matches_object_kernel(executor):
    """The limb-major decrypt layout must stay bit-identical to the
    object kernel's per-block decryption, under both executors."""
    params, db, queries = _workload()
    results = {}
    for kernel in ("object", "fused"):
        with _engine(params, executor=executor, kernel=kernel) as engine:
            engine.outsource(db)
            results[kernel] = engine.search_batch(queries).matches_per_query()
    assert results["fused"] == results["object"]


# -- crash recovery ----------------------------------------------------------


def test_worker_crash_mid_batch_recovers_with_restart():
    """Killing one shard process must not lose the batch: the dead
    worker is detected at its next task, restarted once, the task
    retried, and the match set stays byte-identical.  Shed accounting
    is untouched — a crash is a restart, not an admission-control
    shed."""
    params, db, queries = _workload()
    with _engine(params, executor="thread") as oracle:
        oracle.outsource(db)
        expected = oracle.search_batch(queries).matches_per_query()

    with _engine(params, executor="process") as engine:
        engine.outsource(db)
        engine.search_batch(queries[:1])  # workers proven healthy
        victim = engine.shards[1].shard_id
        engine._process_executor.inject_crash(victim)
        assert not engine._process_executor.shard_alive(victim)
        report = engine.search_batch(queries)
        assert report.matches_per_query() == expected
        assert report.worker_restarts == 1
        assert engine.worker_restarts == 1
        assert engine.degraded_tasks >= 1
        by_id = {s.shard_id: s for s in report.shards}
        assert by_id[victim].restarts == 1
        assert by_id[victim].alive
        assert all(
            s.restarts == 0 for s in report.shards if s.shard_id != victim
        )
        assert engine.scheduler.sheds == 0
        # restarted worker keeps serving subsequent batches
        again = engine.search_batch(queries)
        assert again.matches_per_query() == expected
        assert again.worker_restarts == 0


# -- spawn safety ------------------------------------------------------------


def test_process_engine_constructible_from_clean_interpreter():
    """Regression: the spawn start method re-imports modules in the
    child, so building a process-executor engine from a fresh
    interpreter (no pytest, no pre-imported repro state) must work and
    must not fall into recursive process creation."""
    script = "\n".join(
        [
            "import numpy as np",
            "from repro.core import ClientConfig",
            "from repro.he import BFVParams",
            "from repro.serve import ShardedSearchEngine",
            "from repro.utils.bits import random_bits",
            "rng = np.random.default_rng(23)",
            "params = BFVParams.test_small(64)",
            "db = random_bits(2 * params.n * 16, rng)",
            "q = random_bits(32, rng)",
            "db[16 * 7 : 16 * 7 + 32] = q",
            "engine = ShardedSearchEngine(",
            "    ClientConfig(params, key_seed=23),",
            "    num_shards=2, executor='process')",
            "with engine:",
            "    engine.outsource(db)",
            "    report = engine.search_batch([q])",
            "assert report.reports[0].matches == [16 * 7], report.reports",
            "assert report.executor == 'process'",
            "print('spawn-ok')",
        ]
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC_DIR)
    env.pop(EXECUTOR_ENV_VAR, None)
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "spawn-ok" in proc.stdout


# -- shutdown idempotency -----------------------------------------------------


def test_shutdown_idempotent_across_paths():
    """Engine close, drain, and GC can all race to shut the process
    executor down; only the first claim runs the teardown, and repeated
    shutdowns never double-release worker pipes or re-join corpses."""
    params, db, queries = _workload(num_polys=2, num_queries=1)
    engine = _engine(params, executor="process", num_shards=2)
    with engine:
        engine.outsource(db)
        report = engine.search_batch(queries)
        assert report.reports[0].matches
        executor = engine._process_executor
        assert executor is not None
        executor.shutdown()
        assert executor._finalizer.detach() is None  # claimed exactly once
        executor.shutdown()  # second call: no-op
        executor.shutdown()
    engine.close()  # engine close after explicit shutdown: still a no-op
