"""Unit tests for the bounded LRU variant-ciphertext cache."""

import threading

import pytest

from repro.serve import VariantCipherCache


class TestLruSemantics:
    def test_eviction_respects_bound(self):
        cache = VariantCipherCache(4)
        for i in range(10):
            cache.get_or_create(i, lambda i=i: i * 100)
        stats = cache.stats()
        assert len(cache) == 4
        assert stats.size == 4
        assert stats.evictions == 6
        # the four most recently used keys survive
        assert cache.get_or_create(9, lambda: "rebuilt") == 900

    def test_least_recently_used_is_evicted_first(self):
        cache = VariantCipherCache(2)
        cache.get_or_create("a", lambda: 1)
        cache.get_or_create("b", lambda: 2)
        cache.get_or_create("a", lambda: "miss")  # refresh a
        cache.get_or_create("c", lambda: 3)  # evicts b, not a
        assert cache.get_or_create("a", lambda: "rebuilt") == 1
        assert cache.get_or_create("b", lambda: "rebuilt") == "rebuilt"

    def test_hit_rate_reported(self):
        cache = VariantCipherCache(8)
        cache.get_or_create("k", lambda: 0)
        cache.get_or_create("k", lambda: 0)
        cache.get_or_create("j", lambda: 0)
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.hit_rate == pytest.approx(1 / 3)

    def test_clear_keeps_counters(self):
        cache = VariantCipherCache(8)
        cache.get_or_create("k", lambda: 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().misses == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            VariantCipherCache(0)

    def test_factory_runs_once_per_residency(self):
        cache = VariantCipherCache(16)
        calls = []

        def worker():
            for _ in range(50):
                cache.get_or_create("shared", lambda: calls.append(1))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert cache.stats().hits == 199
