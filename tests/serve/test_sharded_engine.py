"""Sharded concurrent serving: equivalence with the sequential pipeline,
cross-shard offset correctness, cache bounding, and scheduler scaling."""

import numpy as np
import pytest

from repro.baselines import find_all_matches
from repro.core import (
    BatchSearcher,
    ClientConfig,
    IndexMode,
    SecureStringMatchPipeline,
)
from repro.he import BFVParams
from repro.serve import ShardedSearchEngine
from repro.utils.bits import random_bits

PARAMS = BFVParams.test_small(64)
BITS_PER_POLY = 64 * 16  # n coefficients x 16-bit chunks


def make_workload(rng, num_polys=8, num_queries=5):
    """Database + queries with planted hits, including one that straddles
    every internal boundary of a 4-shard split."""
    db = random_bits(num_polys * BITS_PER_POLY, rng)
    queries = []
    for k in range(num_queries):
        q = random_bits(32, rng)
        off = 16 * (7 + 31 * k)
        db[off : off + 32] = q
        queries.append(q)
    polys_per_shard = num_polys // 4
    for shard_edge in range(1, 4):
        q = random_bits(32, rng)
        boundary = shard_edge * polys_per_shard * BITS_PER_POLY
        db[boundary - 16 : boundary + 16] = q
        queries.append(q)
    return db, queries


class TestShardedEquivalence:
    @pytest.mark.parametrize("num_shards", [1, 3, 4])
    def test_matches_equal_sequential_pipeline(self, rng, num_shards):
        db, queries = make_workload(rng)
        pipe = SecureStringMatchPipeline(ClientConfig(PARAMS, key_seed=41))
        pipe.outsource_database(db)
        sequential = [pipe.search(q).matches for q in queries]

        engine = ShardedSearchEngine(
            ClientConfig(PARAMS, key_seed=41), num_shards=num_shards
        )
        engine.outsource(db)
        report = engine.search_batch(queries)

        assert report.matches_per_query() == sequential
        for q, matches in zip(queries, report.matches_per_query()):
            assert matches == find_all_matches(db, q)

    def test_cross_shard_boundary_offsets(self, rng):
        """Occurrences straddling shard boundaries are found at the exact
        global offset (merged blocks keep global polynomial indices)."""
        db, _ = make_workload(rng, num_queries=0)
        engine = ShardedSearchEngine(ClientConfig(PARAMS, key_seed=42), num_shards=4)
        engine.outsource(db)
        polys_per_shard = 2
        for shard_edge in range(1, 4):
            boundary = shard_edge * polys_per_shard * BITS_PER_POLY
            q = db[boundary - 16 : boundary + 16].copy()
            matches = engine.search(q).matches
            assert boundary - 16 in matches
            assert matches == find_all_matches(db, q)

    def test_hom_add_totals_match_sequential(self, rng):
        """Sharding redistributes but never duplicates Hom-Adds."""
        db, queries = make_workload(rng, num_queries=2)
        engine1 = ShardedSearchEngine(ClientConfig(PARAMS, key_seed=43), num_shards=1)
        engine4 = ShardedSearchEngine(ClientConfig(PARAMS, key_seed=43), num_shards=4)
        engine1.outsource(db)
        engine4.outsource(db)
        r1 = engine1.search_batch(queries)
        r4 = engine4.search_batch(queries)
        assert r1.total_hom_additions == r4.total_hom_additions
        assert [r.hom_additions for r in r1.reports] == [
            r.hom_additions for r in r4.reports
        ]

    def test_deterministic_index_mode(self, rng):
        db, queries = make_workload(rng, num_queries=2)
        config = ClientConfig(
            PARAMS, index_mode=IndexMode.SERVER_DETERMINISTIC, key_seed=44
        )
        engine = ShardedSearchEngine(config, num_shards=4)
        engine.outsource(db)
        report = engine.search_batch(queries)
        for q, matches in zip(queries, report.matches_per_query()):
            assert matches == find_all_matches(db, q)

    def test_shard_count_clamped_to_polynomials(self, rng):
        db = random_bits(BITS_PER_POLY, rng)  # exactly one polynomial
        engine = ShardedSearchEngine(ClientConfig(PARAMS, key_seed=45), num_shards=8)
        engine.outsource(db)
        assert len(engine.shards) == 1
        q = db[:32].copy()
        assert 0 in engine.search(q).matches

    def test_requires_database(self):
        engine = ShardedSearchEngine(ClientConfig(PARAMS, key_seed=46))
        with pytest.raises(RuntimeError):
            engine.search(np.ones(16, dtype=np.uint8))


class TestServeMetrics:
    def test_cache_bound_and_hit_rate(self, rng):
        db, queries = make_workload(rng, num_queries=3)
        engine = ShardedSearchEngine(
            ClientConfig(PARAMS, key_seed=47), num_shards=4, cache_capacity=8
        )
        engine.outsource(db)
        report = engine.search_batch(queries)
        assert report.cache.capacity == 8
        assert report.cache.size <= 8
        assert report.cache.evictions > 0
        assert 0.0 <= report.cache.hit_rate <= 1.0
        # tight cache must not change results
        for q, matches in zip(queries, report.matches_per_query()):
            assert matches == find_all_matches(db, q)

    def test_dedup_shares_report_objects(self, rng):
        db, queries = make_workload(rng, num_queries=2)
        engine = ShardedSearchEngine(ClientConfig(PARAMS, key_seed=48), num_shards=2)
        engine.outsource(db)
        report = engine.search_batch([queries[0], queries[1], queries[0]])
        assert report.deduplicated_hits == 1
        assert report.reports[0] is report.reports[2]
        assert report.num_queries == 3

    def test_report_tables_render(self, rng):
        db, queries = make_workload(rng, num_queries=2)
        engine = ShardedSearchEngine(ClientConfig(PARAMS, key_seed=49), num_shards=2)
        engine.outsource(db)
        report = engine.search_batch(queries)
        summary = report.summary_table()
        shards = report.shard_table()
        assert "throughput" in summary and "cache hit rate" in summary
        assert "modeled util" in shards
        assert report.latency_percentile(50) <= report.latency_percentile(99)
        assert report.queue_depth_max >= 0
        assert report.wall_seconds > 0

    def test_modeled_scaling_at_four_shards(self, rng):
        """The queueing-model makespan must improve >= 2x from 1 to 4
        shards (the shards land on distinct channels/dies)."""
        db, queries = make_workload(rng, num_queries=3)
        makespans = {}
        for shards in (1, 4):
            engine = ShardedSearchEngine(
                ClientConfig(PARAMS, key_seed=50), num_shards=shards
            )
            engine.outsource(db)
            makespans[shards] = engine.search_batch(queries).modeled_makespan
        assert makespans[1] / makespans[4] >= 2.0


class TestIfpBackendSharding:
    def test_per_shard_inflash_backends(self, rng):
        """Each shard drives its own simulated in-flash adder (CM-IFP)."""
        from repro.ssd import IFPAdditionBackend

        db = random_bits(2 * BITS_PER_POLY, rng)
        q = random_bits(32, rng)
        db[BITS_PER_POLY - 16 : BITS_PER_POLY + 16] = q  # straddles shards
        engine = ShardedSearchEngine(
            ClientConfig(PARAMS, key_seed=52),
            num_shards=2,
            backend_factory=lambda ctx, shard_id: IFPAdditionBackend(ctx),
        )
        engine.outsource(db)
        matches = engine.search(q).matches
        assert BITS_PER_POLY - 16 in matches
        assert matches == find_all_matches(db, q)
        backends = [shard.backend for shard in engine.shards]
        assert backends[0] is not backends[1]
        assert all(b.hom_add_count > 0 for b in backends)


class TestBatchSearcherFacade:
    def test_multi_shard_batch_searcher(self, rng):
        db, queries = make_workload(rng, num_queries=3)
        pipe = SecureStringMatchPipeline(ClientConfig(PARAMS, key_seed=51))
        searcher = BatchSearcher(pipe, num_shards=4)
        searcher.outsource(db)
        report = searcher.search_batch(queries)
        for q, matches in zip(queries, report.matches_per_query()):
            assert matches == find_all_matches(db, q)
        serve = searcher.last_serve_report
        assert serve is not None
        assert serve.num_shards == 4
        # the pipeline stays usable for sequential cross-checks
        assert pipe.search(queries[0]).matches == report.matches_per_query()[0]

    def test_adopts_directly_outsourced_pipeline(self, rng):
        """Legacy usage: outsource through the pipeline, then batch."""
        db, queries = make_workload(rng, num_queries=2)
        pipe = SecureStringMatchPipeline(ClientConfig(PARAMS, key_seed=53))
        pipe.outsource_database(db)
        searcher = BatchSearcher(pipe)
        report = searcher.search_batch(queries)
        for q, matches in zip(queries, report.matches_per_query()):
            assert matches == find_all_matches(db, q)
        # re-outsourcing through the pipeline is picked up too
        db2 = random_bits(2 * BITS_PER_POLY, rng)
        q2 = db2[:32].copy()
        pipe.outsource_database(db2)
        assert searcher.search_batch([q2]).matches_per_query()[0] == find_all_matches(
            db2, q2
        )
