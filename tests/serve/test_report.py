"""ServeReport rendering robustness, executor/worker-health surfacing,
and scheduler shed accounting."""

import numpy as np

from repro.serve.cache import CacheStats
from repro.serve.report import ServeReport, ShardStats
from repro.serve.scheduler import ServeScheduler
from repro.utils.stats import percentile


def _empty_report() -> ServeReport:
    """What a serving front end holds before any batch ran (or after
    every query was shed by admission control)."""
    return ServeReport(
        reports=[],
        num_shards=4,
        num_workers=4,
        wall_seconds=0.0,
        latencies=[],
        deduplicated_hits=0,
        cache=CacheStats(capacity=8, size=0, hits=0, misses=0, evictions=0),
    )


class TestEmptyLatencySample:
    def test_percentiles_are_zero_not_raising(self):
        report = _empty_report()
        for pct in (50, 95, 99, 100):
            assert report.latency_percentile(pct) == 0.0
            assert report.modeled_latency_percentile(pct) == 0.0

    def test_summary_table_renders(self):
        table = _empty_report().summary_table()
        assert "serving batch report" in table
        assert "0.00 / 0.00 / 0.00 ms" in table

    def test_shard_table_renders(self):
        assert "per-shard utilization" in _empty_report().shard_table()

    def test_throughput_zero_on_zero_wall(self):
        report = _empty_report()
        assert report.throughput_qps == 0.0
        assert report.modeled_throughput_qps == 0.0


def _shard(shard_id, *, restarts=0, alive=True) -> ShardStats:
    return ShardStats(
        shard_id=shard_id,
        channel=0,
        die=shard_id,
        num_polynomials=4,
        hom_adds=64,
        tasks_executed=2,
        busy_seconds=0.01,
        modeled_utilization=0.5,
        restarts=restarts,
        alive=alive,
    )


class TestWorkerHealthSurfacing:
    def test_defaults_are_thread_executor_and_healthy(self):
        report = _empty_report()
        assert report.executor == "thread"
        assert report.worker_restarts == 0
        assert report.dead_shards == 0
        stats = _shard(0)
        assert stats.restarts == 0 and stats.alive

    def test_summary_table_shows_executor_and_restarts(self):
        report = _empty_report()
        report.executor = "process"
        report.worker_restarts = 3
        table = report.summary_table()
        assert "executor" in table and "process" in table
        assert "worker restarts" in table

    def test_shard_table_shows_restarts_and_liveness(self):
        report = _empty_report()
        report.shards = [_shard(0), _shard(1, restarts=2, alive=False)]
        table = report.shard_table()
        assert "restarts" in table and "worker" in table
        assert "DOWN" in table and "up" in table

    def test_dead_shards_counts_down_workers(self):
        report = _empty_report()
        report.shards = [
            _shard(0),
            _shard(1, alive=False),
            _shard(2, restarts=1, alive=False),
        ]
        assert report.dead_shards == 2


class TestPercentileHelper:
    def test_empty_sequence(self):
        assert percentile([], 99) == 0.0

    def test_empty_numpy_array(self):
        assert percentile(np.array([]), 50) == 0.0

    def test_numpy_array_input(self):
        # `not array` raises on multi-element arrays; the helper must
        # accept the ndarray latency vectors benchmarks hand it
        assert percentile(np.array([3.0, 1.0, 2.0]), 50) == 2.0

    def test_nearest_rank_unchanged(self):
        values = [0.1, 0.2, 0.3, 0.4]
        assert percentile(values, 50) == 0.2
        assert percentile(values, 100) == 0.4


class TestSchedulerShedAccounting:
    def test_record_shed_accumulates(self):
        scheduler = ServeScheduler()
        assert scheduler.sheds == 0
        scheduler.record_shed()
        scheduler.record_shed(3)
        assert scheduler.sheds == 4

    def test_sheds_do_not_disturb_simulation(self):
        scheduler = ServeScheduler()
        scheduler.record_shed(5)
        result = scheduler.simulate([], ciphertext_bytes=0)
        assert result.makespan == 0.0
        assert scheduler.sheds == 5


class TestServeReportJsonRoundTrip:
    """The STATS frame's report_json field and bench artifacts rely on
    ServeReport.to_json/from_json preserving everything."""

    def _full_report(self) -> ServeReport:
        from repro.core.matcher import MatchCandidate
        from repro.core.pipeline import SearchReport

        return ServeReport(
            reports=[
                SearchReport(
                    matches=[160, 512],
                    candidates=[
                        MatchCandidate(
                            offset=160, phase=0, variant_index=0,
                            verified=True,
                        ),
                        MatchCandidate(
                            offset=512, phase=0, variant_index=3,
                            verified=None,
                        ),
                    ],
                    hom_additions=128,
                    num_variants=16,
                    encrypted_db_bytes=1 << 20,
                ),
                SearchReport(
                    matches=[],
                    candidates=[],
                    hom_additions=64,
                    num_variants=16,
                    encrypted_db_bytes=1 << 20,
                ),
            ],
            num_shards=2,
            num_workers=2,
            wall_seconds=0.125,
            latencies=[0.01, 0.02],
            deduplicated_hits=1,
            cache=CacheStats(capacity=8, size=3, hits=5, misses=3, evictions=1),
            shards=[_shard(0, restarts=2), _shard(1, alive=False)],
            queue_depth_max=4,
            queue_depth_mean=1.5,
            modeled_makespan=0.05,
            modeled_latencies={0: 0.01, 1: 0.04},
            encrypted_db_bytes=1 << 21,
            executor="process",
            worker_restarts=2,
            sheds=7,
        )

    def test_roundtrip_identity(self):
        report = self._full_report()
        got = ServeReport.from_json(report.to_json())
        assert got == report

    def test_operational_fields_survive(self):
        got = ServeReport.from_json(self._full_report().to_json())
        assert (got.executor, got.worker_restarts, got.sheds) == (
            "process", 2, 7,
        )
        assert got.shards[0].restarts == 2
        assert not got.shards[1].alive
        assert got.modeled_latencies == {0: 0.01, 1: 0.04}

    def test_json_is_plain_types(self):
        import json

        obj = json.loads(self._full_report().to_json())
        assert obj["version"] == 1
        assert obj["sheds"] == 7
        assert obj["reports"][0]["matches"] == [160, 512]

    def test_version_guard(self):
        import json

        obj = json.loads(self._full_report().to_json())
        obj["version"] = 9
        try:
            ServeReport.from_dict(obj)
        except ValueError as exc:
            assert "version 9" in str(exc)
        else:
            raise AssertionError("version guard did not fire")

    def test_live_engine_report_roundtrips(self):
        import numpy as np

        import repro
        from repro.he import BFVParams
        from repro.utils.bits import random_bits

        rng = np.random.default_rng(5)
        db = random_bits(4096, rng)
        q = random_bits(32, rng)
        db[320:352] = q
        with repro.open_session(
            "bfv-sharded",
            params=BFVParams.test_small(64),
            num_shards=2,
            key_seed=5,
            db_bits=db,
        ) as session:
            session.search_batch([q, q])
            report = session.engine.last_serve_report
        got = ServeReport.from_json(report.to_json())
        assert got.matches_per_query() == report.matches_per_query()
        assert got == report
