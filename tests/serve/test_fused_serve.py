"""Fused-kernel behavior specific to the sharded serving engine:
arena slices on shards, stacked variant rows in the LRU cache, fused
accounting in the serve report, and fallback to the object path for
backends that do their own addition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClientConfig, CPUAdditionBackend, IndexMode
from repro.he import BFVParams
from repro.serve import ShardedSearchEngine
from repro.utils.bits import random_bits


def _workload(num_polys=6, num_queries=4, seed=41):
    rng = np.random.default_rng(seed)
    params = BFVParams.test_small(64)
    db = random_bits(num_polys * params.n * 16, rng)
    queries = []
    for k in range(num_queries):
        q = random_bits(32, rng)
        off = 16 * (5 + 47 * k)
        db[off : off + 32] = q
        queries.append(q)
    return params, db, queries


def _engine(params, kernel, *, num_shards=3, executor=None, **kwargs):
    return ShardedSearchEngine(
        ClientConfig(params, key_seed=41, **kwargs),
        num_shards=num_shards,
        search_kernel=kernel,
        executor=executor,
    )


def test_fused_batch_matches_object_batch_and_report_fields():
    params, db, queries = _workload()
    reports = {}
    for kernel in ("object", "fused"):
        engine = _engine(params, kernel)
        engine.outsource(db)
        reports[kernel] = engine.search_batch(queries + [queries[0]])
    o, f = reports["object"], reports["fused"]
    assert o.matches_per_query() == f.matches_per_query()
    assert [r.hom_additions for r in o.reports] == [
        r.hom_additions for r in f.reports
    ]
    assert o.deduplicated_hits == f.deduplicated_hits == 1
    assert sum(s.hom_adds for s in f.shards) == sum(s.hom_adds for s in o.shards)
    assert all(s.tasks_executed > 0 for s in f.shards)


def test_shards_hold_zero_copy_arena_slices():
    # pinned to the thread executor: the process executor re-shares the
    # arena into shared memory, where slices view the shm buffer rather
    # than the parent ndarray
    params, db, queries = _workload()
    engine = _engine(params, "fused", executor="thread")
    engine.outsource(db)
    engine.search_batch(queries[:1])
    arena = engine.db.fused_arena(engine.client.ctx.ring, engine.client.ctx.params)
    base = 0
    for shard in engine.shards:
        assert shard.arena is not None
        assert shard.arena.base_index == shard.base_poly == base
        assert shard.arena.num_polys == shard.num_polynomials
        assert shard.arena.stack.base is arena.stack  # view, not copy
        base += shard.num_polynomials
    assert base == engine.db.num_polynomials


def test_variant_cache_stores_stacked_rows_under_fused():
    params, db, queries = _workload()
    engine = _engine(params, "fused")
    engine.outsource(db)
    engine.search_batch(queries[:2])
    stats = engine.cache.stats()
    assert stats.misses > 0
    rows = engine.cache.values()
    assert rows and all(isinstance(v, np.ndarray) for v in rows)
    assert all(v.shape == (2, params.n) for v in rows)
    # repeated batch: every variant row is a cache hit
    misses_before = engine.cache.stats().misses
    engine.search_batch(queries[:2])
    assert engine.cache.stats().misses == misses_before


def test_object_kernel_still_caches_ciphertext_objects():
    from repro.he import Ciphertext

    # thread executor only: process workers always take the stacked-row
    # cache path, since query rows cross the pipe as arrays
    params, db, queries = _workload()
    engine = _engine(params, "object", executor="thread")
    engine.outsource(db)
    engine.search_batch(queries[:1])
    values = engine.cache.values()
    assert values and all(isinstance(v, Ciphertext) for v in values)


def test_stateful_backend_forces_object_path():
    """A backend without ``supports_fused`` (e.g. the simulated IFP
    adder) must take the object path even when fused is requested."""

    class CountingBackend(CPUAdditionBackend):
        supports_fused = False

        def __init__(self, ctx):
            super().__init__(ctx)
            self.calls = 0

        def hom_add(self, a, b):
            self.calls += 1
            return super().hom_add(a, b)

    params, db, queries = _workload(num_polys=3)
    backends = []

    def factory(ctx, shard_id):
        backend = CountingBackend(ctx)
        backends.append(backend)
        return backend

    engine = ShardedSearchEngine(
        ClientConfig(params, key_seed=41),
        num_shards=2,
        search_kernel="fused",
        backend_factory=factory,
    )
    engine.outsource(db)
    assert not engine._fused_active()
    report = engine.search_batch(queries[:1])
    assert sum(b.calls for b in backends) == report.reports[0].hom_additions > 0


def test_fused_deterministic_mode_uses_comparator_batch():
    params, db, queries = _workload()
    reports = {}
    for kernel in ("object", "fused"):
        engine = _engine(
            params, kernel, index_mode=IndexMode.SERVER_DETERMINISTIC
        )
        engine.outsource(db)
        reports[kernel] = engine.search_batch(queries)
    assert (
        reports["object"].matches_per_query()
        == reports["fused"].matches_per_query()
    )


def test_rejects_unknown_kernel():
    params, _, _ = _workload(num_polys=1, num_queries=1)
    with pytest.raises(ValueError):
        ShardedSearchEngine(
            ClientConfig(params, key_seed=1), search_kernel="simd"
        )


def test_invalidate_caches_reslices_shard_arenas():
    """After in-place mutation + invalidate_caches(), fused shards must
    re-slice the rebuilt arena instead of serving stale coefficients."""
    params, db, queries = _workload(num_polys=4)
    engine = _engine(params, "fused", num_shards=2)
    engine.outsource(db)
    before = engine.search_batch(queries[:1]).reports[0].matches
    assert before
    # wipe the polynomial holding the planted match, the way an
    # in-place database update would
    zero_pt = engine.client.ctx.plaintext(np.zeros(params.n, dtype=np.int64))
    engine.db.ciphertexts[0] = engine.client.ctx.encrypt(
        zero_pt, engine.client.pk
    )
    engine.db.invalidate_caches()
    after_fused = engine.search_batch(queries[:1]).reports[0].matches
    object_engine = ShardedSearchEngine(
        client=engine.client, num_shards=2, search_kernel="object"
    )
    object_engine.adopt_database(engine.db)
    after_object = object_engine.search_batch(queries[:1]).reports[0].matches
    assert after_fused == after_object
    assert before != after_fused


def test_adopt_database_resets_arena_slices():
    # thread executor: the process executor warm-starts workers at adopt
    # time, which eagerly re-slices the shard arenas
    params, db, queries = _workload(num_polys=4)
    engine = _engine(params, "fused", executor="thread")
    engine.outsource(db)
    engine.search_batch(queries[:1])
    old_arenas = [s.arena for s in engine.shards]
    assert all(a is not None for a in old_arenas)
    db2 = engine.client.outsource(db)
    engine.adopt_database(db2)
    assert all(s.arena is None for s in engine.shards)
    report = engine.search_batch(queries[:1])
    assert report.reports[0].matches
