"""Trace JSONL schema: request codec round-trips and loud failures."""

import json

import pytest

from repro.api.requests import BatchSearch, ExactSearch, WildcardSearch
from repro.load import (
    SCENARIO_REGISTRY,
    LoadTrace,
    PoissonArrivals,
    TraceEvent,
    generate_trace,
)
from repro.load.trace import request_from_json, request_to_json
from repro.verify import VerifyPolicy


class TestRequestCodec:
    def test_exact_roundtrip(self):
        request = ExactSearch.from_bits([1, 0, 1, 1], verify=VerifyPolicy.SKIP)
        assert request_from_json(request_to_json(request)) == request

    def test_wildcard_roundtrip(self):
        request = WildcardSearch((1, 0, 1, 0), (1, 1, 0, 1))
        assert request_from_json(request_to_json(request)) == request

    def test_batch_roundtrip(self):
        request = BatchSearch(
            (ExactSearch.from_bits([1, 0]), ExactSearch.from_bits([0, 1, 1])),
            verify=VerifyPolicy.VERIFY,
        )
        assert request_from_json(request_to_json(request)) == request

    def test_bits_serialized_as_01_strings(self):
        obj = request_to_json(ExactSearch.from_bits([1, 0, 1]))
        assert obj["bits"] == "101"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown request kind"):
            request_from_json({"kind": "regex", "bits": "101"})

    def test_corrupt_bit_string_rejected(self):
        with pytest.raises(ValueError, match="non-binary"):
            request_from_json({"kind": "exact", "bits": "10x"})


class TestSaveLoad:
    def _trace(self, seed=7):
        scenario = SCENARIO_REGISTRY.create("readmapper", seed=seed)
        return generate_trace(
            scenario, PoissonArrivals(), 40.0, max_requests=8, deadline=0.5
        )

    def test_roundtrip_is_exact(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "t.jsonl"
        trace.save(path)
        got = LoadTrace.load(path)
        assert (got.scenario, got.seed, got.arrival, got.rate) == (
            trace.scenario, trace.seed, trace.arrival, trace.rate,
        )
        assert got.deadline == trace.deadline
        # JSON floats round-trip exactly; requests and oracles verbatim
        assert [(e.index, e.at, e.request, e.expected) for e in got.events] == [
            (e.index, e.at, e.request, e.expected) for e in trace.events
        ]

    def test_mixed_request_kinds_survive(self, tmp_path):
        trace = self._trace()
        kinds = {type(e.request).__name__ for e in trace.events}
        assert kinds == {"BatchSearch", "WildcardSearch"}
        path = tmp_path / "t.jsonl"
        trace.save(path)
        assert {
            type(e.request).__name__ for e in LoadTrace.load(path).events
        } == kinds

    def test_per_event_deadline_roundtrip(self, tmp_path):
        trace = LoadTrace(
            scenario="dna", seed=0, arrival="constant", rate=1.0,
            events=[
                TraceEvent(0, 0.25, ExactSearch.from_bits([1, 0]), (3,), 0.1)
            ],
        )
        path = tmp_path / "t.jsonl"
        trace.save(path)
        got = LoadTrace.load(path)
        assert got.events[0].deadline == 0.1
        assert got.events[0].expected == (3,)

    def test_offered_qps(self):
        trace = self._trace()
        assert trace.offered_qps == pytest.approx(
            trace.num_requests / trace.events[-1].at
        )


class TestLoudFailures:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            LoadTrace.load(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "request", "i": 0, "at": 0.0}\n')
        with pytest.raises(ValueError, match="header"):
            LoadTrace.load(path)

    def test_wrong_version(self, tmp_path):
        trace = LoadTrace(scenario="dna", seed=0, arrival="poisson", rate=1.0)
        path = tmp_path / "t.jsonl"
        trace.save(path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 99
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(ValueError, match="version 99"):
            LoadTrace.load(path)

    def test_truncated_trace_detected(self, tmp_path):
        trace = self._full_trace()
        path = tmp_path / "t.jsonl"
        trace.save(path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="declares"):
            LoadTrace.load(path)

    def _full_trace(self):
        scenario = SCENARIO_REGISTRY.create("database", seed=1)
        return generate_trace(
            scenario, PoissonArrivals(), 10.0, max_requests=4
        )
