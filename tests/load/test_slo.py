"""SLO condensation and the machine-readable report round-trip."""

import pytest

from repro.load import LoadReport, LoadRun, RequestOutcome, ScenarioSlo
from repro.load.harness import COMPLETED, FAILED, SHED
from repro.load.trace import LoadTrace, TraceEvent
from repro.api.requests import ExactSearch


def _synthetic_run():
    outcomes = [
        RequestOutcome(0, 0.00, COMPLETED, 0.010, 1, True),
        RequestOutcome(1, 0.05, COMPLETED, 0.030, 0, True),
        RequestOutcome(2, 0.10, SHED, 0.0),
        RequestOutcome(3, 0.15, COMPLETED, 0.020, 2, False),
        RequestOutcome(4, 0.20, FAILED, 0.0, error="RuntimeError: x"),
    ]
    return LoadRun(outcomes=outcomes, wall_seconds=0.5)


def _synthetic_trace():
    request = ExactSearch.from_bits([1, 0, 1])
    return LoadTrace(
        scenario="database", seed=9, arrival="poisson", rate=25.0,
        events=[TraceEvent(i, 0.05 * i, request) for i in range(5)],
    )


class TestScenarioSlo:
    def test_from_run_accounting(self):
        slo = ScenarioSlo.from_run(_synthetic_trace(), _synthetic_run())
        assert (slo.offered, slo.completed, slo.shed, slo.failed) == (5, 3, 1, 1)
        assert slo.mismatches == 1
        assert slo.balanced
        assert slo.shed_rate == pytest.approx(0.2)
        assert slo.achieved_qps == pytest.approx(3 / 0.5)

    def test_percentiles_from_completed_latencies_only(self):
        slo = ScenarioSlo.from_run(_synthetic_trace(), _synthetic_run())
        # nearest-rank over {10, 20, 30} ms: shed/failed contribute nothing
        assert slo.p50_ms == pytest.approx(20.0)
        assert slo.p99_ms == pytest.approx(30.0)

    def test_unbalanced_detected(self):
        slo = ScenarioSlo(
            scenario="x", offered=5, completed=3, shed=0, failed=1,
            mismatches=0, duration_seconds=1.0, wall_seconds=1.0,
            offered_qps=5.0, achieved_qps=3.0, p50_ms=1.0, p95_ms=1.0,
            p99_ms=1.0,
        )
        assert not slo.balanced


class TestLoadReport:
    def _report(self):
        slo = ScenarioSlo.from_run(_synthetic_trace(), _synthetic_run())
        return LoadReport(
            target="in-process:bfv-sharded",
            arrival="poisson",
            rate=25.0,
            seed=9,
            scenarios=[slo],
            executor="process",
            worker_restarts=1,
            scheduler_sheds=1,
        )

    def test_aggregates(self):
        report = self._report()
        assert (report.offered, report.completed, report.shed) == (5, 3, 1)
        assert report.failed == report.mismatches == 1
        assert report.balanced

    def test_table_renders_lanes_and_operational_note(self):
        table = self._report().table()
        assert "open-loop load SLO report" in table
        assert "database" in table
        assert "executor process" in table
        assert "shed rate" in table

    def test_json_roundtrip_identity(self):
        report = self._report()
        got = LoadReport.from_json(report.to_json())
        assert got == report

    def test_json_totals_block_for_ci(self):
        import json

        obj = json.loads(self._report().to_json())
        totals = obj["totals"]
        assert totals["offered"] == (
            totals["completed"] + totals["shed"] + totals["failed"]
        )
        assert totals["balanced"] is True
        assert obj["scenarios"][0]["shed_rate"] == pytest.approx(0.2)

    def test_version_guard(self):
        import json

        obj = json.loads(self._report().to_json())
        obj["version"] = 42
        with pytest.raises(ValueError, match="version 42"):
            LoadReport.from_dict(obj)
