"""Arrival-process determinism, rate accuracy, and bounding."""

import numpy as np
import pytest

from repro.load import (
    ARRIVAL_PROCESSES,
    BurstyArrivals,
    ConstantArrivals,
    PoissonArrivals,
    resolve_arrival,
)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(ARRIVAL_PROCESSES))
    def test_same_seed_same_timeline(self, name):
        a = resolve_arrival(name).times(50.0, max_requests=200, seed=7)
        b = resolve_arrival(name).times(50.0, max_requests=200, seed=7)
        assert a == b

    @pytest.mark.parametrize("name", ["poisson", "bursty"])
    def test_different_seeds_differ(self, name):
        a = resolve_arrival(name).times(50.0, max_requests=50, seed=1)
        b = resolve_arrival(name).times(50.0, max_requests=50, seed=2)
        assert a != b

    def test_tuple_seed_accepted(self):
        a = PoissonArrivals().times(10.0, max_requests=20, seed=(3, 0x5EED))
        b = PoissonArrivals().times(10.0, max_requests=20, seed=(3, 0x5EED))
        assert a == b


class TestRates:
    def test_constant_gaps_are_exact(self):
        times = ConstantArrivals().times(20.0, max_requests=10)
        assert times == pytest.approx([(k + 1) / 20.0 for k in range(10)])

    def test_poisson_long_run_rate(self):
        times = PoissonArrivals().times(100.0, max_requests=5000, seed=3)
        achieved = len(times) / times[-1]
        assert achieved == pytest.approx(100.0, rel=0.1)

    def test_bursty_long_run_rate_near_nominal(self):
        # calm 0.2x for 15 sojourns vs burst 4x for 4 averages to
        # exactly 1.0x nominal in the long run
        times = BurstyArrivals().times(100.0, max_requests=20000, seed=5)
        achieved = len(times) / times[-1]
        assert achieved == pytest.approx(100.0, rel=0.1)

    def test_bursty_actually_bursts(self):
        gaps = np.diff(BurstyArrivals().times(100.0, max_requests=5000, seed=9))
        # burst-state gaps cluster well below the calm-state mean
        assert np.percentile(gaps, 10) < 0.5 * float(np.mean(gaps))
        assert np.percentile(gaps, 90) > 2.0 * float(np.mean(gaps))


class TestBounds:
    def test_max_requests_bound(self):
        assert len(PoissonArrivals().times(10.0, max_requests=17)) == 17

    def test_duration_bound(self):
        times = ConstantArrivals().times(10.0, duration=1.0)
        assert len(times) == 10
        assert all(t <= 1.0 for t in times)

    def test_both_bounds_take_tighter(self):
        times = ConstantArrivals().times(10.0, duration=1.0, max_requests=3)
        assert len(times) == 3

    def test_unbounded_rejected(self):
        with pytest.raises(ValueError, match="bound"):
            PoissonArrivals().times(10.0)

    @pytest.mark.parametrize("rate", [0.0, -1.0])
    def test_nonpositive_rate_rejected(self, rate):
        with pytest.raises(ValueError, match="positive"):
            PoissonArrivals().times(rate, max_requests=1)

    def test_bursty_multipliers_validated(self):
        with pytest.raises(ValueError, match="positive"):
            BurstyArrivals(calm_multiplier=0.0)


class TestRegistry:
    def test_known_names(self):
        assert set(ARRIVAL_PROCESSES) == {"constant", "poisson", "bursty"}

    def test_resolve_returns_fresh_instances(self):
        assert resolve_arrival("poisson") is not resolve_arrival("poisson")

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="bursty"):
            resolve_arrival("pareto")
