"""Scenario streams: determinism, oracles, capability clamping."""

import itertools

import numpy as np
import pytest

from repro.api import DEFAULT_REGISTRY, BatchSearch, WildcardSearch
from repro.api.capabilities import CapabilityError
from repro.baselines import find_all_matches
from repro.load import SCENARIO_REGISTRY, UnknownScenarioError
from repro.load.scenarios import (
    _detectable_exact_matches,
    _detectable_wildcard_matches,
    _wildcard_matches,
)

ALL_KEYS = ("dna", "biometric", "database", "readmapper")


def _prefix(scenario, n):
    return list(itertools.islice(scenario.requests(), n))


class TestRegistry:
    def test_registered_keys(self):
        assert SCENARIO_REGISTRY.keys() == ALL_KEYS
        assert "dna" in SCENARIO_REGISTRY

    def test_unknown_key_lists_known(self):
        with pytest.raises(UnknownScenarioError, match="readmapper"):
            SCENARIO_REGISTRY.create("web")

    def test_matrix_renders_requirements(self):
        matrix = SCENARIO_REGISTRY.scenario_matrix()
        for key in ALL_KEYS:
            assert key in matrix
        assert "batching, wildcard" in matrix

    def test_create_forwards_kwargs(self):
        scenario = SCENARIO_REGISTRY.create("dna", seed=3, num_bases=256)
        assert len(scenario.db_bits()) == 512  # 2 bits per base


class TestDeterminism:
    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_db_and_stream_reproducible(self, key):
        a = SCENARIO_REGISTRY.create(key, seed=5)
        b = SCENARIO_REGISTRY.create(key, seed=5)
        assert np.array_equal(a.db_bits(), b.db_bits())
        assert [
            (r.index, r.request, r.expected) for r in _prefix(a, 5)
        ] == [(r.index, r.request, r.expected) for r in _prefix(b, 5)]

    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_seed_changes_db(self, key):
        a = SCENARIO_REGISTRY.create(key, seed=1)
        b = SCENARIO_REGISTRY.create(key, seed=2)
        assert not np.array_equal(a.db_bits(), b.db_bits())

    def test_stream_restart_is_identical(self):
        scenario = SCENARIO_REGISTRY.create("database", seed=4)
        first = [r.request for r in _prefix(scenario, 6)]
        again = [r.request for r in _prefix(scenario, 6)]
        assert first == again

    def test_stream_consumption_never_perturbs_db(self):
        scenario = SCENARIO_REGISTRY.create("dna", seed=8)
        before = scenario.db_bits().copy()
        _prefix(scenario, 10)
        assert np.array_equal(scenario.db_bits(), before)


class TestOracles:
    @pytest.mark.parametrize("key", ["dna", "biometric", "database"])
    def test_exact_expected_matches_plaintext_search(self, key):
        scenario = SCENARIO_REGISTRY.create(key, seed=6)
        db = scenario.db_bits()
        for item in _prefix(scenario, 8):
            assert item.expected == tuple(
                find_all_matches(db, item.request.bit_array())
            )

    def test_hit_fraction_yields_hits_and_misses(self):
        scenario = SCENARIO_REGISTRY.create("database", seed=0)
        outcomes = [bool(r.expected) for r in _prefix(scenario, 20)]
        assert any(outcomes) and not all(outcomes)

    def test_readmapper_mixes_batches_and_wildcards(self):
        scenario = SCENARIO_REGISTRY.create("readmapper", seed=2)
        items = _prefix(scenario, 8)
        # every 4th request is a wildcard read, the rest seed batches
        assert [isinstance(i.request, WildcardSearch) for i in items] == [
            False, False, False, True, False, False, False, True,
        ]
        batch = items[0]
        assert isinstance(batch.request, BatchSearch)
        db = scenario.db_bits()
        assert batch.expected == tuple(
            tuple(_detectable_exact_matches(db, q.bit_array()))
            for q in batch.request.queries
        )

    def test_wildcard_oracle_ignores_masked_bits(self):
        db = np.array([1, 0, 1, 1, 0, 1], dtype=np.uint8)
        bits = np.array([1, 1, 1], dtype=np.uint8)  # literal 1s
        mask = np.array([1, 0, 1], dtype=np.uint8)  # middle bit free
        assert _wildcard_matches(db, bits, mask) == (0, 3)

    def test_short_exact_oracle_clamps_to_guaranteed_phases(self):
        # a 16-bit needle planted at an off-phase offset is invisible
        # to the Hom-Add sweep; the oracle must agree with the engine
        rng = np.random.default_rng(0)
        db = rng.integers(0, 2, 512).astype(np.uint8)
        needle = db[73:89].copy()  # 73 % 16 != 0
        assert 73 in find_all_matches(db, needle)
        assert 73 not in _detectable_exact_matches(db, needle)
        db[160:176] = needle  # phase 0: detectable
        assert 160 in _detectable_exact_matches(db, needle)

    def test_wildcard_oracle_clamps_every_literal_run(self):
        rng = np.random.default_rng(1)
        db = rng.integers(0, 2, 512).astype(np.uint8)
        pat = rng.integers(0, 2, 48).astype(np.uint8)
        mask = np.ones(48, dtype=np.uint8)
        mask[16:32] = 0  # two 16-bit literal runs
        db[55:103] = pat  # off-phase plant
        db[320:368] = pat  # phase-0 plant
        got = _detectable_wildcard_matches(db, pat, mask)
        assert 320 in got and 55 not in got


class TestCapabilityClamp:
    def test_readmapper_refuses_unbatched_engine(self):
        caps = DEFAULT_REGISTRY.spec("bfv").capabilities
        assert not caps.batching
        scenario = SCENARIO_REGISTRY.create("readmapper")
        with pytest.raises(CapabilityError, match="batching"):
            scenario.check(caps, "bfv")

    def test_readmapper_refuses_query_bit_cap(self):
        caps = DEFAULT_REGISTRY.spec("yasuda").capabilities
        scenario = SCENARIO_REGISTRY.create("readmapper")
        with pytest.raises(CapabilityError):
            scenario.check(caps, "yasuda")

    @pytest.mark.parametrize("key", ["dna", "biometric", "database"])
    def test_exact_scenarios_run_everywhere_with_31plus_bits(self, key):
        # exact-only streams clear the capability gate on the plain
        # single-pipeline engine too
        caps = DEFAULT_REGISTRY.spec("bfv").capabilities
        SCENARIO_REGISTRY.create(key).check(caps, "bfv")

    def test_sharded_engine_serves_every_scenario(self):
        caps = DEFAULT_REGISTRY.spec("bfv-sharded").capabilities
        for key in ALL_KEYS:
            SCENARIO_REGISTRY.create(key).check(caps, "bfv-sharded")
