"""Open-loop runner: accounting invariants, targets, real shedding."""

from concurrent.futures import Future

import pytest

import repro
from repro.he import BFVParams
from repro.load import (
    COMPLETED,
    FAILED,
    SHED,
    SCENARIO_REGISTRY,
    ConstantArrivals,
    LoadTarget,
    PoissonArrivals,
    RemoteTarget,
    SessionTarget,
    generate_trace,
    replay_requests,
    run_trace,
)
from repro.net import Client, ServiceThread
from repro.net.codec import RequestShedError


def _trace(key="database", seed=3, n=6, rate=200.0, arrival=None):
    scenario = SCENARIO_REGISTRY.create(key, seed=seed)
    return scenario, generate_trace(
        scenario, arrival or ConstantArrivals(), rate, max_requests=n
    )


class TestGenerateTrace:
    def test_deterministic_across_calls(self):
        _, a = _trace(arrival=PoissonArrivals())
        _, b = _trace(arrival=PoissonArrivals())
        assert [(e.at, e.request, e.expected) for e in a.events] == [
            (e.at, e.request, e.expected) for e in b.events
        ]

    def test_arrival_seed_independent_of_request_stream(self):
        # same scenario seed, different arrival processes: identical
        # request payloads on different timelines
        _, a = _trace(arrival=ConstantArrivals())
        _, b = _trace(arrival=PoissonArrivals())
        assert [e.request for e in a.events] == [e.request for e in b.events]
        assert [e.at for e in a.events] != [e.at for e in b.events]

    def test_header_carries_scenario_identity(self):
        scenario, trace = _trace()
        assert (trace.scenario, trace.seed, trace.arrival) == (
            scenario.key, scenario.seed, "constant",
        )
        assert len(replay_requests(trace)) == trace.num_requests


class _StubTarget(LoadTarget):
    """Scripted outcomes, no engine: exercises classification paths."""

    def __init__(self, script):
        self.script = script  # index -> "ok" | "shed" | "fail" | "raise"
        self.submitted = 0

    @property
    def capabilities(self):
        raise NotImplementedError

    def describe(self):
        return "stub"

    def outsource(self, db_bits):
        pass

    def submit(self, request, deadline):
        action = self.script[self.submitted]
        self.submitted += 1
        if action == "raise":
            raise ConnectionResetError("socket gone")
        future = Future()
        if action == "ok":
            future.set_result(_FakeResult())
        elif action == "shed":
            future.set_exception(RequestShedError("admission control"))
        else:
            future.set_exception(RuntimeError("worker died"))
        return future


class _FakeResult:
    matches = (1, 2)
    num_matches = 2


class TestOutcomeClassification:
    def test_every_request_resolves_to_exactly_one_outcome(self):
        _, trace = _trace(n=4, rate=1000.0)
        target = _StubTarget(["ok", "shed", "fail", "raise"])
        run = run_trace(trace, target)
        assert [o.status for o in run.outcomes] == [
            COMPLETED, SHED, FAILED, FAILED,
        ]
        assert run.balanced
        assert run.offered == 4

    def test_submit_time_error_recorded(self):
        _, trace = _trace(n=2, rate=1000.0)
        run = run_trace(trace, _StubTarget(["raise", "ok"]))
        assert run.outcomes[0].status == FAILED
        assert "ConnectionResetError" in run.outcomes[0].error

    def test_oracle_mismatch_flagged_not_failed(self):
        _, trace = _trace(n=1, rate=1000.0)
        run = run_trace(trace, _StubTarget(["ok"]))
        # the stub returns matches (1, 2) which no oracle predicted
        assert run.outcomes[0].status == COMPLETED
        assert run.outcomes[0].matched_expected is False


class TestSessionTarget:
    def test_plaintext_run_completes_and_verifies(self):
        scenario, trace = _trace(key="dna", n=8, rate=500.0)
        session = repro.open_session("plaintext")
        target = SessionTarget(session, owns_session=True)
        try:
            scenario.check(target.capabilities, target.describe())
            target.outsource(scenario.db_bits())
            run = run_trace(trace, target)
        finally:
            target.close()
        assert run.balanced
        assert run.count(COMPLETED) == 8
        assert run.count(SHED) == run.count(FAILED) == 0
        assert all(o.matched_expected for o in run.outcomes)
        assert all(o.latency_seconds > 0 for o in run.outcomes)

    def test_stats_surface_executor_fields(self):
        session = repro.open_session("plaintext")
        target = SessionTarget(session, owns_session=True)
        try:
            stats = target.stats()
        finally:
            target.close()
        assert set(stats) >= {"executor", "worker_restarts", "scheduler_sheds"}


class TestRemoteTargetShedding:
    def test_overload_sheds_and_accounting_balances(self):
        # max_in_flight=1 on one connection: a 500 req/s burst against a
        # real bfv-sharded engine must shed, never fail, and balance
        scenario, trace = _trace(key="database", n=10, rate=500.0)
        with ServiceThread(
            "bfv-sharded",
            params=BFVParams.test_small(64),
            num_shards=2,
            key_seed=1,
            max_in_flight=1,
        ) as service:
            client = Client(service.address, pool_size=1)
            target = RemoteTarget(client, owns_client=True)
            try:
                scenario.check(target.capabilities, target.describe())
                target.outsource(scenario.db_bits())
                run = run_trace(trace, target)
                stats = target.stats()
            finally:
                target.close()
        assert run.balanced
        assert run.count(FAILED) == 0
        assert run.count(SHED) > 0
        assert run.count(COMPLETED) >= 1
        # the service counted the same sheds the client observed
        assert stats["scheduler_sheds"] == run.count(SHED)
        assert stats["service_completed"] == run.count(COMPLETED)
        completed = [o for o in run.outcomes if o.status == COMPLETED]
        assert all(o.matched_expected for o in completed)
