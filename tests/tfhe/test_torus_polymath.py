"""Unit tests for Torus32 helpers and negacyclic polynomial math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tfhe.params import TORUS_MOD
from repro.tfhe.polymath import (
    gadget_decompose,
    gadget_recompose,
    negacyclic_convolve_small,
    rotate_by_xai,
    rotate_by_xai_minus_one,
)
from repro.tfhe.torus import (
    from_torus,
    gaussian_torus,
    mod_switch,
    to_torus,
    torus_distance,
    uniform_torus,
)


class TestTorus:
    def test_to_torus_eighth(self):
        assert to_torus(1, 8) == TORUS_MOD // 8

    def test_to_torus_negative_wraps(self):
        assert to_torus(-1, 8) == TORUS_MOD - TORUS_MOD // 8

    def test_to_torus_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            to_torus(1, 0)

    def test_from_torus_positive(self):
        assert from_torus(TORUS_MOD // 4) == pytest.approx(0.25)

    def test_from_torus_negative_representative(self):
        assert from_torus(TORUS_MOD - TORUS_MOD // 4) == pytest.approx(-0.25)

    def test_round_trip_eighths(self):
        for num in range(-3, 4):
            assert from_torus(to_torus(num, 8)) == pytest.approx(num / 8)

    def test_torus_distance_wraps(self):
        assert torus_distance(5, TORUS_MOD - 5) == 10

    def test_torus_distance_symmetric(self):
        assert torus_distance(100, 40) == torus_distance(40, 100)

    def test_gaussian_zero_alpha_is_zero(self):
        rng = np.random.default_rng(0)
        assert not gaussian_torus(rng, 0.0, 16).any()

    def test_gaussian_scale(self):
        rng = np.random.default_rng(0)
        samples = gaussian_torus(rng, 2.0 ** -10, 4096)
        reals = np.array([from_torus(int(s)) for s in samples])
        assert abs(reals.std() - 2.0 ** -10) / 2.0 ** -10 < 0.15

    def test_uniform_range(self):
        rng = np.random.default_rng(0)
        samples = uniform_torus(rng, 128)
        assert samples.min() >= 0 and samples.max() < TORUS_MOD

    def test_mod_switch_half_circle(self):
        assert mod_switch(TORUS_MOD // 2, 64) == 32

    def test_mod_switch_rounds_to_nearest(self):
        # A value just below a grid point rounds up to it.
        interval = TORUS_MOD // 64
        assert mod_switch(interval - 1, 64) == 1

    def test_mod_switch_wraps(self):
        assert mod_switch(TORUS_MOD - 1, 64) == 0


class TestRotate:
    def test_rotate_zero_is_identity(self):
        poly = np.arange(8, dtype=np.int64)
        assert np.array_equal(rotate_by_xai(poly, 0), poly)

    def test_rotate_by_one_shifts_and_negates_wraparound(self):
        poly = np.array([1, 2, 3, 4], dtype=np.int64)
        out = rotate_by_xai(poly, 1)
        assert out[0] == (-4) % TORUS_MOD
        assert list(out[1:]) == [1, 2, 3]

    def test_rotate_by_n_negates(self):
        poly = np.arange(1, 9, dtype=np.int64)
        out = rotate_by_xai(poly, 8)
        assert np.array_equal(out, (-poly) % TORUS_MOD)

    def test_rotate_by_2n_is_identity(self):
        poly = np.arange(8, dtype=np.int64)
        assert np.array_equal(rotate_by_xai(poly, 16), poly)

    def test_rotate_negative_exponent(self):
        poly = np.arange(8, dtype=np.int64)
        assert np.array_equal(rotate_by_xai(poly, -3), rotate_by_xai(poly, 13))

    @given(st.integers(min_value=-64, max_value=64), st.integers(min_value=-64, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_rotate_composes(self, a, b):
        rng = np.random.default_rng(7)
        poly = rng.integers(0, TORUS_MOD, 16, dtype=np.int64)
        once = rotate_by_xai(rotate_by_xai(poly, a), b)
        combined = rotate_by_xai(poly, a + b)
        assert np.array_equal(once, combined)

    def test_rotate_minus_one_matches_definition(self):
        rng = np.random.default_rng(1)
        poly = rng.integers(0, TORUS_MOD, 16, dtype=np.int64)
        expected = (rotate_by_xai(poly, 5) - poly) % TORUS_MOD
        assert np.array_equal(rotate_by_xai_minus_one(poly, 5), expected)


class TestConvolve:
    def test_multiply_by_one(self):
        rng = np.random.default_rng(0)
        torus = rng.integers(0, TORUS_MOD, 8, dtype=np.int64)
        one = np.zeros(8, dtype=np.int64)
        one[0] = 1
        assert np.array_equal(negacyclic_convolve_small(one, torus), torus)

    def test_multiply_by_x_matches_rotate(self):
        rng = np.random.default_rng(0)
        torus = rng.integers(0, TORUS_MOD, 8, dtype=np.int64)
        x = np.zeros(8, dtype=np.int64)
        x[1] = 1
        assert np.array_equal(
            negacyclic_convolve_small(x, torus), rotate_by_xai(torus, 1)
        )

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            negacyclic_convolve_small(np.zeros(4, dtype=np.int64), np.zeros(8, dtype=np.int64))

    def test_matches_schoolbook(self):
        rng = np.random.default_rng(3)
        n = 16
        small = rng.integers(-128, 128, n, dtype=np.int64)
        torus = rng.integers(0, TORUS_MOD, n, dtype=np.int64)
        expected = np.zeros(n, dtype=object)
        for i in range(n):
            for j in range(n):
                k = i + j
                sign = 1
                if k >= n:
                    k -= n
                    sign = -1
                expected[k] += sign * int(small[i]) * int(torus[j])
        expected = np.array([int(v) % TORUS_MOD for v in expected], dtype=np.int64)
        assert np.array_equal(negacyclic_convolve_small(small, torus), expected)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_scalar_distributes(self, c):
        rng = np.random.default_rng(11)
        n = 8
        small = rng.integers(-100, 100, n, dtype=np.int64)
        torus = np.zeros(n, dtype=np.int64)
        torus[0] = c
        out = negacyclic_convolve_small(small, torus)
        expected = np.mod(small * c, TORUS_MOD)
        assert np.array_equal(out, expected)


class TestGadget:
    def test_digit_range(self):
        rng = np.random.default_rng(2)
        poly = rng.integers(0, TORUS_MOD, 32, dtype=np.int64)
        for digit in gadget_decompose(poly, bg_bit=8, levels=2):
            assert digit.min() >= -128 and digit.max() < 128

    def test_recompose_error_bound(self):
        rng = np.random.default_rng(2)
        poly = rng.integers(0, TORUS_MOD, 64, dtype=np.int64)
        bg_bit, levels = 8, 2
        approx = gadget_recompose(gadget_decompose(poly, bg_bit, levels), bg_bit)
        max_err = 1 << (32 - levels * bg_bit)
        for orig, rec in zip(poly, approx):
            assert torus_distance(int(orig), int(rec)) <= max_err

    def test_exact_when_levels_cover_torus(self):
        rng = np.random.default_rng(5)
        poly = rng.integers(0, TORUS_MOD, 16, dtype=np.int64)
        approx = gadget_recompose(gadget_decompose(poly, 8, 4), 8)
        assert np.array_equal(approx, poly)

    @given(st.integers(min_value=1, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_levels_monotone_precision(self, levels):
        rng = np.random.default_rng(9)
        poly = rng.integers(0, TORUS_MOD, 8, dtype=np.int64)
        approx = gadget_recompose(gadget_decompose(poly, 8, levels), 8)
        bound = 1 << (32 - levels * 8)
        for orig, rec in zip(poly, approx):
            assert torus_distance(int(orig), int(rec)) <= bound
