"""Hypothesis property tests for the TFHE substrate.

The central invariant: any circuit of bootstrapped gates, of any shape
and depth, decrypts to exactly what the plain Boolean circuit computes
— bootstrapping refreshes noise, so correctness never degrades.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tfhe import TFHEContext, TFHEParams
from repro.tfhe.lwe import MU_BIT, lwe_phase
from repro.tfhe.torus import from_torus

# One shared context: gates are stateless apart from counters, and key
# generation dominates test time otherwise.
_CTX = TFHEContext(TFHEParams.test_tiny(), seed=99)

_GATES = {
    "and": (lambda a, b: a & b, lambda ca, cb: _CTX.and_(ca, cb)),
    "or": (lambda a, b: a | b, lambda ca, cb: _CTX.or_(ca, cb)),
    "xor": (lambda a, b: a ^ b, lambda ca, cb: _CTX.xor(ca, cb)),
    "nand": (lambda a, b: 1 - (a & b), lambda ca, cb: _CTX.nand(ca, cb)),
    "nor": (lambda a, b: 1 - (a | b), lambda ca, cb: _CTX.nor(ca, cb)),
    "xnor": (lambda a, b: 1 - (a ^ b), lambda ca, cb: _CTX.xnor(ca, cb)),
}


@st.composite
def circuits(draw):
    """A random gate-list circuit over a small set of input wires."""
    num_inputs = draw(st.integers(min_value=2, max_value=4))
    inputs = draw(
        st.lists(
            st.integers(min_value=0, max_value=1),
            min_size=num_inputs,
            max_size=num_inputs,
        )
    )
    num_gates = draw(st.integers(min_value=1, max_value=6))
    gates = []
    wire_count = num_inputs
    for _ in range(num_gates):
        gate = draw(st.sampled_from(sorted(_GATES)))
        a = draw(st.integers(min_value=0, max_value=wire_count - 1))
        b = draw(st.integers(min_value=0, max_value=wire_count - 1))
        gates.append((gate, a, b))
        wire_count += 1
    return inputs, gates


class TestRandomCircuits:
    @given(circuits())
    @settings(max_examples=20, deadline=None)
    def test_circuit_matches_plain_evaluation(self, circuit):
        inputs, gates = circuit
        plain_wires = list(inputs)
        enc_wires = [_CTX.encrypt(b) for b in inputs]
        for gate, a, b in gates:
            plain_fn, enc_fn = _GATES[gate]
            plain_wires.append(plain_fn(plain_wires[a], plain_wires[b]))
            enc_wires.append(enc_fn(enc_wires[a], enc_wires[b]))
        for plain, enc in zip(plain_wires, enc_wires):
            assert _CTX.decrypt(enc) == plain

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=8))
    @settings(max_examples=15, deadline=None)
    def test_not_is_involutive(self, bits):
        for b in bits:
            ct = _CTX.encrypt(b)
            assert _CTX.decrypt(_CTX.not_(_CTX.not_(ct))) == b

    @given(
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=1),
    )
    @settings(max_examples=4, deadline=None)
    def test_de_morgan(self, a, b):
        ca, cb = _CTX.encrypt(a), _CTX.encrypt(b)
        lhs = _CTX.nand(ca, cb)
        rhs = _CTX.or_(_CTX.not_(ca), _CTX.not_(cb))
        assert _CTX.decrypt(lhs) == _CTX.decrypt(rhs) == 1 - (a & b)


class TestNoiseInvariants:
    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=8, deadline=None)
    def test_gate_output_noise_bounded_regardless_of_depth(self, depth):
        """Output noise after `depth` chained gates stays within the
        single-bootstrap envelope — never accumulating."""
        acc = _CTX.encrypt(1)
        for _ in range(depth):
            acc = _CTX.and_(acc, _CTX.encrypt(1))
        phase = lwe_phase(acc, _CTX.lwe_key)
        err = abs(from_torus(phase) - from_torus(MU_BIT))
        assert err < 1 / 16  # well inside the gate decision margin

    @given(st.integers(min_value=0, max_value=1))
    @settings(max_examples=4, deadline=None)
    def test_fresh_encryptions_differ_but_decrypt_equal(self, bit):
        a, b = _CTX.encrypt(bit), _CTX.encrypt(bit)
        assert not np.array_equal(a.a, b.a)  # semantic security: fresh mask
        assert _CTX.decrypt(a) == _CTX.decrypt(b) == bit
