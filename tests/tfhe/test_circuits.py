"""Tests for word-level homomorphic arithmetic over TFHE gates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tfhe import TFHEContext, TFHEParams
from repro.tfhe.circuits import TfheArithmetic, homomorphic_hom_add


@pytest.fixture(scope="module")
def arith():
    return TfheArithmetic(TFHEContext(TFHEParams.test_tiny(), seed=13))


class TestWordCodec:
    def test_round_trip(self, arith):
        word = arith.encrypt_word(0b1011, 4)
        assert arith.decrypt_word(word) == 0b1011

    def test_zero_and_max(self, arith):
        assert arith.decrypt_word(arith.encrypt_word(0, 4)) == 0
        assert arith.decrypt_word(arith.encrypt_word(15, 4)) == 15

    def test_out_of_range_rejected(self, arith):
        with pytest.raises(ValueError):
            arith.encrypt_word(16, 4)
        with pytest.raises(ValueError):
            arith.encrypt_word(-1, 4)

    def test_width_property(self, arith):
        assert arith.encrypt_word(3, 6).width == 6


class TestAdder:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (5, 3), (7, 7), (15, 1)])
    def test_add_mod_16(self, arith, a, b):
        wa, wb = arith.encrypt_word(a, 4), arith.encrypt_word(b, 4)
        assert arith.decrypt_word(arith.add(wa, wb)) == (a + b) % 16

    def test_carry_chain_propagates(self, arith):
        """0b0111 + 1 exercises a full carry ripple."""
        wa, wb = arith.encrypt_word(7, 4), arith.encrypt_word(1, 4)
        assert arith.decrypt_word(arith.add(wa, wb)) == 8

    def test_width_mismatch(self, arith):
        with pytest.raises(ValueError):
            arith.add(arith.encrypt_word(1, 4), arith.encrypt_word(1, 3))

    def test_gate_count_model(self, arith):
        ctx = arith.ctx
        ctx.reset_gate_counts()
        arith.add(arith.encrypt_word(5, 4), arith.encrypt_word(9, 4))
        assert ctx.total_gates() == TfheArithmetic.gates_per_add(4)

    @given(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7))
    @settings(max_examples=8, deadline=None)
    def test_add_matches_plain(self, a, b):
        arith = TfheArithmetic(TFHEContext(TFHEParams.test_tiny(), seed=a * 8 + b))
        wa, wb = arith.encrypt_word(a, 3), arith.encrypt_word(b, 3)
        assert arith.decrypt_word(arith.add(wa, wb)) == (a + b) % 8


class TestComparators:
    @pytest.mark.parametrize("a,b,eq", [(5, 5, 1), (5, 4, 0), (0, 0, 1), (15, 14, 0)])
    def test_equals(self, arith, a, b, eq):
        wa, wb = arith.encrypt_word(a, 4), arith.encrypt_word(b, 4)
        assert arith.ctx.decrypt(arith.equals(wa, wb)) == eq

    def test_equals_gate_count(self, arith):
        arith.ctx.reset_gate_counts()
        arith.equals(arith.encrypt_word(3, 4), arith.encrypt_word(3, 4))
        assert arith.ctx.total_gates() == TfheArithmetic.gates_per_equals(4)

    @pytest.mark.parametrize(
        "a,b,lt", [(3, 5, 1), (5, 3, 0), (4, 4, 0), (0, 1, 1), (15, 0, 0)]
    )
    def test_less_than(self, arith, a, b, lt):
        wa, wb = arith.encrypt_word(a, 4), arith.encrypt_word(b, 4)
        assert arith.ctx.decrypt(arith.less_than(wa, wb)) == lt

    def test_is_all_ones(self, arith):
        assert arith.ctx.decrypt(arith.is_all_ones(arith.encrypt_word(15, 4))) == 1
        assert arith.ctx.decrypt(arith.is_all_ones(arith.encrypt_word(14, 4))) == 0

    def test_mux_word(self, arith):
        one = arith.encrypt_word(9, 4)
        zero = arith.encrypt_word(6, 4)
        sel1 = arith.ctx.encrypt(1)
        sel0 = arith.ctx.encrypt(0)
        assert arith.decrypt_word(arith.mux_word(sel1, one, zero)) == 9
        assert arith.decrypt_word(arith.mux_word(sel0, one, zero)) == 6


class TestMatchPolynomialFlow:
    def test_homomorphic_hom_add_reference(self, arith):
        """The CIPHERMATCH Hom-Add step expressed purely in TFHE."""
        stored = [0b1010, 0b0011]
        query = [0b0101, 0b1100]  # negated stored -> sums to all-ones
        sums = homomorphic_hom_add(arith, stored, query, width=4)
        assert sums == [0b1111, 0b1111]

    def test_match_detection_without_decryption(self, arith):
        """all-ones test on the encrypted sum: the Boolean approach can
        do Algorithm 1's index generation under encryption."""
        a = arith.encrypt_word(0b1010, 4)
        b = arith.encrypt_word(0b0101, 4)
        total = arith.add(a, b)
        assert arith.ctx.decrypt(arith.is_all_ones(total)) == 1

    def test_mismatch_detected(self, arith):
        a = arith.encrypt_word(0b1010, 4)
        b = arith.encrypt_word(0b0100, 4)  # not the negation
        total = arith.add(a, b)
        assert arith.ctx.decrypt(arith.is_all_ones(total)) == 0

    def test_gate_cost_vs_latch_cost(self):
        """The trade the paper quantifies: a 32-bit homomorphic add is
        160 bootstrapped gates; in flash it is 32 latch passes."""
        from repro.flash.timing import FlashTimings

        gates = TfheArithmetic.gates_per_add(32)
        assert gates == 160
        t = FlashTimings()
        ifp_seconds = 32 * t.t_bop_add
        tfhe_seconds = gates * 10e-3  # ~10 ms/gate on the paper's CPU
        assert tfhe_seconds / ifp_seconds > 1000  # orders of magnitude
