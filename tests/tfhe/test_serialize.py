"""Tests for TFHE wire-format serialization."""

import numpy as np
import pytest

from repro.tfhe import TFHEContext, TFHEParams
from repro.tfhe.lwe import LweKey, LweSample, lwe_phase
from repro.tfhe.serialize import (
    deserialize_lwe_key,
    deserialize_lwe_sample,
    deserialize_lwe_samples,
    serialize_lwe_key,
    serialize_lwe_sample,
    serialize_lwe_samples,
)


@pytest.fixture(scope="module")
def ctx():
    return TFHEContext(TFHEParams.test_small(), seed=21)


class TestSample:
    def test_round_trip(self, ctx):
        ct = ctx.encrypt(1)
        restored = deserialize_lwe_sample(serialize_lwe_sample(ct))
        assert np.array_equal(restored.a, ct.a)
        assert restored.b == ct.b
        assert ctx.decrypt(restored) == 1

    def test_round_trip_preserves_phase(self, ctx):
        ct = ctx.encrypt(0)
        restored = deserialize_lwe_sample(serialize_lwe_sample(ct))
        assert lwe_phase(restored, ctx.lwe_key) == lwe_phase(ct, ctx.lwe_key)

    def test_wire_size_matches_footprint_accounting(self, ctx):
        ct = ctx.encrypt(1)
        wire = serialize_lwe_sample(ct)
        header = 13  # 4 magic + 1 kind + 4 n + 4 count
        assert len(wire) == header + ct.serialized_bytes

    def test_bad_magic_rejected(self, ctx):
        wire = bytearray(serialize_lwe_sample(ctx.encrypt(0)))
        wire[0] = ord("X")
        with pytest.raises(ValueError, match="magic"):
            deserialize_lwe_sample(bytes(wire))

    def test_truncated_rejected(self, ctx):
        wire = serialize_lwe_sample(ctx.encrypt(0))
        with pytest.raises(ValueError):
            deserialize_lwe_sample(wire[:-4])

    def test_kind_mismatch_rejected(self, ctx):
        wire = serialize_lwe_key(ctx.lwe_key)
        with pytest.raises(ValueError, match="kind"):
            deserialize_lwe_sample(wire)


class TestBatch:
    def test_round_trip(self, ctx):
        bits = [1, 0, 1, 1, 0]
        cts = ctx.encrypt_bits(bits)
        restored = deserialize_lwe_samples(serialize_lwe_samples(cts))
        assert list(ctx.decrypt_bits(restored)) == bits

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            serialize_lwe_samples([])

    def test_mixed_dimensions_rejected(self, ctx):
        a = ctx.encrypt(0)
        b = LweSample(np.zeros(3, dtype=np.int64), 0)
        with pytest.raises(ValueError, match="mixed"):
            serialize_lwe_samples([a, b])

    def test_batch_wire_size_is_per_bit_footprint(self, ctx):
        """The serialized batch is exactly bits x per-bit LWE bytes —
        the §3.1 Boolean blow-up, on the wire."""
        cts = ctx.encrypt_bits([1] * 8)
        wire = serialize_lwe_samples(cts)
        assert len(wire) == 13 + 8 * ctx.params.lwe_ciphertext_bytes


class TestKey:
    def test_round_trip(self, ctx):
        wire = serialize_lwe_key(ctx.lwe_key)
        restored = deserialize_lwe_key(wire, ctx.params)
        assert np.array_equal(restored.s, ctx.lwe_key.s)

    def test_restored_key_decrypts(self, ctx):
        ct = ctx.encrypt(1)
        restored = deserialize_lwe_key(serialize_lwe_key(ctx.lwe_key), ctx.params)
        from repro.tfhe.lwe import lwe_decrypt_bit

        assert lwe_decrypt_bit(ct, restored) == 1

    def test_dimension_mismatch_rejected(self, ctx):
        wire = serialize_lwe_key(ctx.lwe_key)
        with pytest.raises(ValueError, match="dimension"):
            deserialize_lwe_key(wire, TFHEParams.test_tiny())

    def test_corrupt_bits_rejected(self):
        params = TFHEParams.test_tiny()
        key = LweKey(params, np.array([0, 1, 1, 0], dtype=np.int64))
        wire = bytearray(serialize_lwe_key(key))
        wire[-1] = 7
        with pytest.raises(ValueError, match="0/1"):
            deserialize_lwe_key(bytes(wire), params)
