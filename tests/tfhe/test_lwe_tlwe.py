"""Unit tests for LWE and TLWE encryption layers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tfhe.lwe import (
    MU_BIT,
    LweKey,
    LweSample,
    encrypt_bit,
    lwe_decrypt_bit,
    lwe_encrypt,
    lwe_noise,
    lwe_phase,
)
from repro.tfhe.params import TORUS_MOD, TFHEParams
from repro.tfhe.tlwe import (
    TLweKey,
    TLweSample,
    tlwe_encrypt,
    tlwe_encrypt_zero,
    tlwe_phase,
)
from repro.tfhe.torus import to_torus, torus_distance


@pytest.fixture(scope="module")
def params():
    return TFHEParams.test_small()


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(42)


@pytest.fixture(scope="module")
def lwe_key(params, rng):
    return LweKey.generate(params, rng)


@pytest.fixture(scope="module")
def tlwe_key(params, rng):
    return TLweKey.generate(params, rng)


class TestLwe:
    def test_encrypt_decrypt_bits(self, lwe_key, rng):
        for bit in (0, 1):
            ct = encrypt_bit(bit, lwe_key, rng)
            assert lwe_decrypt_bit(ct, lwe_key) == bit

    def test_phase_close_to_message(self, lwe_key, rng):
        mu = to_torus(1, 8)
        ct = lwe_encrypt(mu, lwe_key, rng)
        assert torus_distance(lwe_phase(ct, lwe_key), mu) < TORUS_MOD // 64

    def test_noise_metric_small(self, lwe_key, rng):
        mu = to_torus(1, 8)
        ct = lwe_encrypt(mu, lwe_key, rng)
        assert lwe_noise(ct, lwe_key, mu) < 2.0 ** -10

    def test_trivial_sample_phase_is_message(self, lwe_key):
        ct = LweSample.trivial(12345, lwe_key.n)
        assert lwe_phase(ct, lwe_key) == 12345

    def test_addition_adds_messages(self, lwe_key, rng):
        mu = to_torus(1, 8)
        a = lwe_encrypt(mu, lwe_key, rng)
        b = lwe_encrypt(mu, lwe_key, rng)
        assert torus_distance(lwe_phase(a + b, lwe_key), to_torus(1, 4)) < TORUS_MOD // 64

    def test_subtraction_cancels(self, lwe_key, rng):
        mu = to_torus(1, 8)
        a = lwe_encrypt(mu, lwe_key, rng)
        b = lwe_encrypt(mu, lwe_key, rng)
        assert torus_distance(lwe_phase(a - b, lwe_key), 0) < TORUS_MOD // 64

    def test_negation(self, lwe_key, rng):
        mu = to_torus(1, 8)
        ct = lwe_encrypt(mu, lwe_key, rng)
        assert torus_distance(
            lwe_phase(-ct, lwe_key), (-mu) % TORUS_MOD
        ) < TORUS_MOD // 64

    def test_scale(self, lwe_key, rng):
        mu = to_torus(1, 16)
        ct = lwe_encrypt(mu, lwe_key, rng)
        assert torus_distance(
            lwe_phase(ct.scale(2), lwe_key), to_torus(1, 8)
        ) < TORUS_MOD // 32

    def test_add_constant(self, lwe_key, rng):
        ct = lwe_encrypt(0, lwe_key, rng)
        shifted = ct.add_constant(MU_BIT)
        assert torus_distance(lwe_phase(shifted, lwe_key), MU_BIT) < TORUS_MOD // 64

    def test_copy_is_independent(self, lwe_key, rng):
        ct = lwe_encrypt(0, lwe_key, rng)
        dup = ct.copy()
        dup.a[0] = (dup.a[0] + 1) % TORUS_MOD
        assert ct.a[0] != dup.a[0] or True  # original untouched
        assert lwe_phase(ct, lwe_key) != lwe_phase(dup, lwe_key) or ct.a[0] == dup.a[0] - 1

    def test_serialized_bytes(self, params, lwe_key, rng):
        ct = lwe_encrypt(0, lwe_key, rng)
        assert ct.serialized_bytes == 4 * (params.lwe_n + 1)
        assert ct.serialized_bytes == params.lwe_ciphertext_bytes

    @given(st.integers(min_value=0, max_value=7))
    @settings(max_examples=8, deadline=None)
    def test_many_messages_round_trip(self, eighths):
        params = TFHEParams.test_small()
        rng = np.random.default_rng(eighths)
        key = LweKey.generate(params, rng)
        mu = to_torus(eighths, 8)
        ct = lwe_encrypt(mu, key, rng)
        assert torus_distance(lwe_phase(ct, key), mu) < TORUS_MOD // 64


class TestTLwe:
    def test_zero_encryption_phase_small(self, tlwe_key, rng):
        ct = tlwe_encrypt_zero(tlwe_key, rng)
        phase = tlwe_phase(ct, tlwe_key)
        for c in phase:
            assert torus_distance(int(c), 0) < TORUS_MOD // 256

    def test_message_encryption(self, params, tlwe_key, rng):
        mu = np.zeros(params.tlwe_n, dtype=np.int64)
        mu[3] = to_torus(1, 8)
        ct = tlwe_encrypt(mu, tlwe_key, rng)
        phase = tlwe_phase(ct, tlwe_key)
        assert torus_distance(int(phase[3]), to_torus(1, 8)) < TORUS_MOD // 256

    def test_trivial_phase_exact(self, params, tlwe_key):
        mu = np.arange(params.tlwe_n, dtype=np.int64)
        ct = TLweSample.trivial(mu, params)
        assert np.array_equal(tlwe_phase(ct, tlwe_key), mu)

    def test_addition_homomorphic(self, params, tlwe_key, rng):
        mu = np.zeros(params.tlwe_n, dtype=np.int64)
        mu[0] = to_torus(1, 8)
        a = tlwe_encrypt(mu, tlwe_key, rng)
        b = tlwe_encrypt(mu, tlwe_key, rng)
        phase = tlwe_phase(a + b, tlwe_key)
        assert torus_distance(int(phase[0]), to_torus(1, 4)) < TORUS_MOD // 128

    def test_rotation_rotates_phase(self, params, tlwe_key, rng):
        mu = np.zeros(params.tlwe_n, dtype=np.int64)
        mu[0] = to_torus(1, 8)
        ct = tlwe_encrypt(mu, tlwe_key, rng)
        rotated = ct.rotate(5)
        phase = tlwe_phase(rotated, tlwe_key)
        assert torus_distance(int(phase[5]), to_torus(1, 8)) < TORUS_MOD // 128

    def test_rotation_by_n_negates_phase(self, params, tlwe_key, rng):
        mu = np.zeros(params.tlwe_n, dtype=np.int64)
        mu[0] = to_torus(1, 8)
        ct = tlwe_encrypt(mu, tlwe_key, rng)
        phase = tlwe_phase(ct.rotate(params.tlwe_n), tlwe_key)
        assert torus_distance(int(phase[0]), to_torus(-1, 8)) < TORUS_MOD // 128


class TestSampleExtraction:
    def test_extract_coefficient_zero(self, params, tlwe_key, rng):
        mu = np.zeros(params.tlwe_n, dtype=np.int64)
        mu[0] = to_torus(3, 8)
        ct = tlwe_encrypt(mu, tlwe_key, rng)
        extracted = ct.extract_lwe(0)
        ext_key = tlwe_key.extracted_lwe_key()
        assert torus_distance(
            lwe_phase(extracted, ext_key), to_torus(3, 8)
        ) < TORUS_MOD // 128

    def test_extract_nonzero_index(self, params, tlwe_key, rng):
        mu = np.zeros(params.tlwe_n, dtype=np.int64)
        target = params.tlwe_n // 2
        mu[target] = to_torus(1, 8)
        ct = tlwe_encrypt(mu, tlwe_key, rng)
        extracted = ct.extract_lwe(target)
        ext_key = tlwe_key.extracted_lwe_key()
        assert torus_distance(
            lwe_phase(extracted, ext_key), to_torus(1, 8)
        ) < TORUS_MOD // 128

    def test_extract_from_trivial(self, params, tlwe_key):
        mu = np.zeros(params.tlwe_n, dtype=np.int64)
        mu[0] = 999
        ct = TLweSample.trivial(mu, params)
        extracted = ct.extract_lwe(0)
        assert lwe_phase(extracted, tlwe_key.extracted_lwe_key()) == 999

    def test_extracted_dimension(self, params, tlwe_key, rng):
        ct = tlwe_encrypt_zero(tlwe_key, rng)
        assert ct.extract_lwe(0).n == params.extracted_lwe_n
