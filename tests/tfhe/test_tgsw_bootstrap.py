"""Unit tests for TGSW, the external product, CMux, blind rotation,
key switching and the full gate bootstrap."""

import numpy as np
import pytest

from repro.tfhe.bootstrap import (
    bootstrap,
    key_switch,
    make_bootstrapping_key,
    make_keyswitch_key,
)
from repro.tfhe.lwe import MU_BIT, LweKey, lwe_encrypt, lwe_phase
from repro.tfhe.params import TORUS_MOD, TFHEParams
from repro.tfhe.tgsw import TGswKey, cmux, external_product, tgsw_encrypt
from repro.tfhe.tlwe import TLweSample, tlwe_encrypt, tlwe_phase
from repro.tfhe.torus import from_torus, to_torus, torus_distance


@pytest.fixture(scope="module")
def params():
    return TFHEParams.test_small()


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(7)


@pytest.fixture(scope="module")
def tgsw_key(params, rng):
    return TGswKey.generate(params, rng)


def _message_poly(params, value, position=0):
    mu = np.zeros(params.tlwe_n, dtype=np.int64)
    mu[position] = value
    return mu


class TestExternalProduct:
    def test_times_zero_kills_message(self, params, tgsw_key, rng):
        zero = tgsw_encrypt(0, tgsw_key, rng)
        msg = tlwe_encrypt(_message_poly(params, to_torus(1, 8)), tgsw_key.tlwe_key, rng)
        out = external_product(zero, msg)
        phase = tlwe_phase(out, tgsw_key.tlwe_key)
        assert torus_distance(int(phase[0]), 0) < TORUS_MOD // 64

    def test_times_one_preserves_message(self, params, tgsw_key, rng):
        one = tgsw_encrypt(1, tgsw_key, rng)
        msg = tlwe_encrypt(_message_poly(params, to_torus(1, 8)), tgsw_key.tlwe_key, rng)
        out = external_product(one, msg)
        phase = tlwe_phase(out, tgsw_key.tlwe_key)
        assert torus_distance(int(phase[0]), to_torus(1, 8)) < TORUS_MOD // 64

    def test_small_integer_scales(self, params, tgsw_key, rng):
        three = tgsw_encrypt(3, tgsw_key, rng)
        msg = tlwe_encrypt(_message_poly(params, to_torus(1, 32)), tgsw_key.tlwe_key, rng)
        out = external_product(three, msg)
        phase = tlwe_phase(out, tgsw_key.tlwe_key)
        assert torus_distance(int(phase[0]), to_torus(3, 32)) < TORUS_MOD // 64

    def test_works_on_trivial_input(self, params, tgsw_key, rng):
        one = tgsw_encrypt(1, tgsw_key, rng)
        msg = TLweSample.trivial(_message_poly(params, to_torus(1, 8)), params)
        out = external_product(one, msg)
        phase = tlwe_phase(out, tgsw_key.tlwe_key)
        assert torus_distance(int(phase[0]), to_torus(1, 8)) < TORUS_MOD // 64


class TestCMux:
    @pytest.mark.parametrize("selector", [0, 1])
    def test_selects_branch(self, params, tgsw_key, rng, selector):
        sel = tgsw_encrypt(selector, tgsw_key, rng)
        d1 = TLweSample.trivial(_message_poly(params, to_torus(1, 8)), params)
        d0 = TLweSample.trivial(_message_poly(params, to_torus(-1, 8)), params)
        out = cmux(sel, d1, d0)
        phase = tlwe_phase(out, tgsw_key.tlwe_key)
        expected = to_torus(1, 8) if selector else to_torus(-1, 8)
        assert torus_distance(int(phase[0]), expected) < TORUS_MOD // 64

    def test_chained_cmux(self, params, tgsw_key, rng):
        """Two CMux stages — noise accumulates but stays decodable."""
        sel1 = tgsw_encrypt(1, tgsw_key, rng)
        sel0 = tgsw_encrypt(0, tgsw_key, rng)
        d1 = TLweSample.trivial(_message_poly(params, to_torus(1, 8)), params)
        d0 = TLweSample.trivial(_message_poly(params, to_torus(-1, 8)), params)
        stage1 = cmux(sel1, d1, d0)  # = d1
        stage2 = cmux(sel0, d0, stage1)  # = stage1 = d1
        phase = tlwe_phase(stage2, tgsw_key.tlwe_key)
        assert torus_distance(int(phase[0]), to_torus(1, 8)) < TORUS_MOD // 32


class TestKeySwitch:
    def test_round_trip(self, params, rng):
        in_key = LweKey(params, rng.integers(0, 2, 4 * params.tlwe_n, dtype=np.int64))
        out_key = LweKey.generate(params, rng)
        ksk = make_keyswitch_key(in_key, out_key, rng, params)
        mu = to_torus(1, 8)
        ct = lwe_encrypt(mu, in_key, rng, params.lwe_alpha)
        switched = key_switch(ct, ksk)
        assert switched.n == params.lwe_n
        assert torus_distance(lwe_phase(switched, out_key), mu) < TORUS_MOD // 32

    def test_preserves_sign_for_gate_messages(self, params, rng):
        in_key = LweKey(params, rng.integers(0, 2, params.tlwe_n, dtype=np.int64))
        out_key = LweKey.generate(params, rng)
        ksk = make_keyswitch_key(in_key, out_key, rng, params)
        for num in (1, -1):
            ct = lwe_encrypt(to_torus(num, 8), in_key, rng, params.lwe_alpha)
            switched = key_switch(ct, ksk)
            assert (from_torus(lwe_phase(switched, out_key)) > 0) == (num > 0)


class TestBootstrap:
    @pytest.fixture(scope="class")
    def keys(self, params):
        rng = np.random.default_rng(123)
        lwe_key = LweKey.generate(params, rng)
        tgsw_key = TGswKey.generate(params, rng)
        bsk = make_bootstrapping_key(lwe_key, tgsw_key, rng)
        return lwe_key, bsk, rng

    @pytest.mark.parametrize("sign", [1, -1])
    def test_bootstrap_preserves_sign(self, params, keys, sign):
        lwe_key, bsk, rng = keys
        mu_in = to_torus(sign, 8)
        ct = lwe_encrypt(mu_in, lwe_key, rng)
        out = bootstrap(ct, MU_BIT, bsk)
        phase = from_torus(lwe_phase(out, lwe_key))
        assert (phase > 0) == (sign > 0)
        assert abs(abs(phase) - 1 / 8) < 1 / 32

    def test_bootstrap_output_dimension(self, params, keys):
        lwe_key, bsk, rng = keys
        ct = lwe_encrypt(to_torus(1, 8), lwe_key, rng)
        assert bootstrap(ct, MU_BIT, bsk).n == params.lwe_n

    def test_bootstrap_refreshes_noise(self, params, keys):
        """Bootstrapping a noisy-but-decodable sample yields output
        noise bounded by the bootstrap's own noise floor, independent of
        the input's — the property that gives unlimited depth."""
        lwe_key, bsk, rng = keys
        mu = to_torus(1, 8)
        noisy = lwe_encrypt(mu, lwe_key, rng, alpha=2.0 ** -8)
        out = bootstrap(noisy, MU_BIT, bsk)
        out_err = torus_distance(lwe_phase(out, lwe_key), MU_BIT)
        assert out_err < TORUS_MOD // 64

    def test_bootstrapping_key_size_accounting(self, params, keys):
        _, bsk, _ = keys
        assert bsk.serialized_bytes > 0
        assert len(bsk.bk) == params.lwe_n
