"""Exhaustive truth-table tests for the bootstrapped gate set."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tfhe import TFHEContext, TFHEParams


@pytest.fixture(scope="module")
def ctx():
    return TFHEContext(TFHEParams.test_small(), seed=5)


BINARY_CASES = [(0, 0), (0, 1), (1, 0), (1, 1)]


class TestTruthTables:
    @pytest.mark.parametrize("a,b", BINARY_CASES)
    def test_nand(self, ctx, a, b):
        assert ctx.decrypt(ctx.nand(ctx.encrypt(a), ctx.encrypt(b))) == (1 - (a & b))

    @pytest.mark.parametrize("a,b", BINARY_CASES)
    def test_and(self, ctx, a, b):
        assert ctx.decrypt(ctx.and_(ctx.encrypt(a), ctx.encrypt(b))) == (a & b)

    @pytest.mark.parametrize("a,b", BINARY_CASES)
    def test_or(self, ctx, a, b):
        assert ctx.decrypt(ctx.or_(ctx.encrypt(a), ctx.encrypt(b))) == (a | b)

    @pytest.mark.parametrize("a,b", BINARY_CASES)
    def test_nor(self, ctx, a, b):
        assert ctx.decrypt(ctx.nor(ctx.encrypt(a), ctx.encrypt(b))) == (1 - (a | b))

    @pytest.mark.parametrize("a,b", BINARY_CASES)
    def test_xor(self, ctx, a, b):
        assert ctx.decrypt(ctx.xor(ctx.encrypt(a), ctx.encrypt(b))) == (a ^ b)

    @pytest.mark.parametrize("a,b", BINARY_CASES)
    def test_xnor(self, ctx, a, b):
        assert ctx.decrypt(ctx.xnor(ctx.encrypt(a), ctx.encrypt(b))) == (1 - (a ^ b))

    @pytest.mark.parametrize("a", [0, 1])
    def test_not(self, ctx, a):
        assert ctx.decrypt(ctx.not_(ctx.encrypt(a))) == 1 - a

    @pytest.mark.parametrize("sel,c,d", [(s, c, d) for s in (0, 1) for c in (0, 1) for d in (0, 1)])
    def test_mux(self, ctx, sel, c, d):
        out = ctx.mux(ctx.encrypt(sel), ctx.encrypt(c), ctx.encrypt(d))
        assert ctx.decrypt(out) == (c if sel else d)


class TestCircuits:
    def test_and_reduce_all_ones(self, ctx):
        bits = ctx.encrypt_bits([1] * 6)
        assert ctx.decrypt(ctx.and_reduce(bits)) == 1

    def test_and_reduce_one_zero(self, ctx):
        bits = ctx.encrypt_bits([1, 1, 0, 1, 1])
        assert ctx.decrypt(ctx.and_reduce(bits)) == 0

    def test_and_reduce_single(self, ctx):
        assert ctx.decrypt(ctx.and_reduce([ctx.encrypt(1)])) == 1

    def test_and_reduce_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.and_reduce([])

    def test_deep_gate_chain(self, ctx):
        """20 chained bootstrapped gates: noise never accumulates.

        This is the unlimited-depth property the paper's §2.2 credits
        the Boolean approach with — levelled BFV cannot do this.
        """
        acc = ctx.encrypt(1)
        for _ in range(20):
            acc = ctx.nand(acc, ctx.encrypt(0))  # NAND(x, 0) = 1 always
        assert ctx.decrypt(acc) == 1

    def test_equality_comparator(self, ctx):
        """4-bit equality via XNOR + AND-reduce, the Boolean string
        matching kernel."""
        a_bits = [1, 0, 1, 1]
        b_bits = [1, 0, 1, 1]
        xnors = [
            ctx.xnor(ctx.encrypt(x), ctx.encrypt(y))
            for x, y in zip(a_bits, b_bits)
        ]
        assert ctx.decrypt(ctx.and_reduce(xnors)) == 1

    def test_inequality_comparator(self, ctx):
        a_bits = [1, 0, 1, 1]
        b_bits = [1, 0, 0, 1]
        xnors = [
            ctx.xnor(ctx.encrypt(x), ctx.encrypt(y))
            for x, y in zip(a_bits, b_bits)
        ]
        assert ctx.decrypt(ctx.and_reduce(xnors)) == 0

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_and_reduce_matches_plain(self, bits):
        ctx = TFHEContext(TFHEParams.test_tiny(), seed=3)
        enc = ctx.encrypt_bits(bits)
        assert ctx.decrypt(ctx.and_reduce(enc)) == int(all(bits))


class TestBookkeeping:
    def test_gate_counts(self):
        ctx = TFHEContext(TFHEParams.test_tiny(), seed=9)
        ctx.nand(ctx.encrypt(0), ctx.encrypt(1))
        ctx.xor(ctx.encrypt(0), ctx.encrypt(1))
        ctx.not_(ctx.encrypt(1))
        assert ctx.gate_counts["nand"] == 1
        assert ctx.gate_counts["xor"] == 1
        assert ctx.gate_counts["not"] == 1
        assert ctx.total_gates() == 3

    def test_not_is_bootstrap_free(self):
        ctx = TFHEContext(TFHEParams.test_tiny(), seed=9)
        before = ctx.bootstrap_count
        ctx.not_(ctx.encrypt(1))
        assert ctx.bootstrap_count == before

    def test_binary_gates_bootstrap_once(self):
        ctx = TFHEContext(TFHEParams.test_tiny(), seed=9)
        ctx.and_(ctx.encrypt(1), ctx.encrypt(1))
        assert ctx.bootstrap_count == 1

    def test_reset(self):
        ctx = TFHEContext(TFHEParams.test_tiny(), seed=9)
        ctx.or_(ctx.encrypt(0), ctx.encrypt(0))
        ctx.reset_gate_counts()
        assert ctx.total_gates() == 0
        assert ctx.bootstrap_count == 0

    def test_encrypt_decrypt_vector(self):
        ctx = TFHEContext(TFHEParams.test_tiny(), seed=2)
        bits = [1, 0, 1, 1, 0]
        assert list(ctx.decrypt_bits(ctx.encrypt_bits(bits))) == bits


class TestParams:
    def test_tfhe_lib_preset_shape(self):
        p = TFHEParams.tfhe_lib()
        assert p.lwe_n == 630 and p.tlwe_n == 1024
        assert p.blind_rotate_external_products == 630

    def test_invalid_ring_dimension(self):
        with pytest.raises(ValueError):
            TFHEParams(lwe_n=4, tlwe_n=48)

    def test_gadget_overflow_rejected(self):
        with pytest.raises(ValueError):
            TFHEParams(lwe_n=4, tlwe_n=32, bg_bit=16, bg_levels=3)

    def test_ciphertext_bytes(self):
        p = TFHEParams.test_small()
        assert p.lwe_ciphertext_bytes == 4 * 17
