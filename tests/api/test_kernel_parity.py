"""Fused-vs-object search-kernel parity across the api engines.

The acceptance bar of the fused arena kernels: every registered engine
built on the core CIPHERMATCH matcher (the pipeline, the wire protocol
and the sharded serving engine) produces *identical*
``MatchCandidate``/match lists — and, at the flag level, byte-identical
decrypted flag vectors — whichever ``search_kernel`` executes the
search, including deterministic-seed (server-side index generation)
mode and merges that span shard boundaries.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api import DEFAULT_REGISTRY
from repro.baselines import find_all_matches
from repro.core import ClientConfig, IndexMode, SecureStringMatchPipeline
from repro.core.matcher import FusedResultSet
from repro.he import BFVParams

#: engines built on the core matcher, with kwargs mirroring
#: tests/api/test_parity.py (plus per-engine shard counts)
CORE_ENGINE_KWARGS = {
    "bfv": {"key_seed": 11},
    "bfv-sharded": {"key_seed": 13, "num_shards": 2},
}


@pytest.mark.parametrize("key", list(CORE_ENGINE_KWARGS))
@pytest.mark.parametrize("kernel", ["object", "fused"])
def test_kernel_matches_oracle_and_peer(key, kernel, master_fixture):
    caps = DEFAULT_REGISTRY.spec(key).capabilities
    db_view, query = master_fixture.view(caps)
    with repro.open_session(
        key, db_bits=db_view, search_kernel=kernel, **CORE_ENGINE_KWARGS[key]
    ) as session:
        result = session.search(query)
    expected = find_all_matches(db_view, query)
    assert list(result.matches) == expected
    # the fixture's third occurrence straddles the 2-shard boundary
    if key == "bfv-sharded":
        assert 1008 in result.matches


@pytest.mark.parametrize("key", list(CORE_ENGINE_KWARGS))
def test_hom_op_tally_identical_across_kernels(key, master_fixture):
    """HomOpTally must not change meaning between kernels."""
    caps = DEFAULT_REGISTRY.spec(key).capabilities
    db_view, query = master_fixture.view(caps)
    tallies = {}
    for kernel in ("object", "fused"):
        with repro.open_session(
            key,
            db_bits=db_view,
            search_kernel=kernel,
            **CORE_ENGINE_KWARGS[key],
        ) as session:
            tallies[kernel] = session.search(query).hom_ops
    assert tallies["object"] == tallies["fused"]
    assert tallies["fused"].additions > 0


@pytest.mark.parametrize(
    "index_mode", [IndexMode.CLIENT_DECRYPT, IndexMode.SERVER_DETERMINISTIC]
)
def test_pipeline_flags_byte_identical(index_mode, master_fixture):
    """At the flag level: the fused kernels produce byte-identical
    decrypted/compared flag vectors for every (variant, polynomial)
    result block, in both index-generation modes."""
    db_bits = master_fixture.db_bits
    query = master_fixture.query_bits
    pipes = {}
    for kernel in ("object", "fused"):
        pipe = SecureStringMatchPipeline(
            ClientConfig(
                BFVParams.test_small(64), key_seed=21, index_mode=index_mode
            ),
            search_kernel=kernel,
        )
        pipe.outsource_database(db_bits)
        pipes[kernel] = pipe

    def flags_of(pipe):
        prepared = pipe.client.prepare_query(query)
        blocks = pipe.server.search(
            prepared, lambda v, j: pipe.client.encrypt_variant(prepared, v, j)
        )
        if index_mode is IndexMode.SERVER_DETERMINISTIC:
            return prepared, pipe.server.generate_index(blocks)
        if isinstance(blocks, FusedResultSet):
            grid = blocks.flags_by_decryption(pipe.client.sk)
            return prepared, {
                (v, j): grid[v, j]
                for v in range(blocks.num_variants)
                for j in range(blocks.num_polynomials)
            }
        from repro.core.match_polynomial import flag_matches_by_decryption

        return prepared, {
            (b.variant_index, b.poly_index): flag_matches_by_decryption(
                pipe.client.ctx, b.ciphertext, pipe.client.sk, 16
            )
            for b in blocks
        }

    prep_o, flags_o = flags_of(pipes["object"])
    prep_f, flags_f = flags_of(pipes["fused"])
    assert pipes["fused"].server.uses_fused_kernel()
    assert not pipes["object"].server.uses_fused_kernel()
    assert flags_o.keys() == flags_f.keys()
    for key in flags_o:
        assert np.asarray(flags_o[key]).tobytes() == np.asarray(
            flags_f[key]
        ).tobytes(), f"flag vector diverged for block {key}"
    # and the decoded candidate lists agree in every field
    dec_o = pipes["object"].client.decode_server_flags(
        prep_o, flags_o, pipes["object"].db, verify=False
    )
    dec_f = pipes["fused"].client.decode_server_flags(
        prep_f, flags_f, pipes["fused"].db, verify=False
    )
    assert dec_o == dec_f


def test_candidate_lists_identical_with_and_without_verify(master_fixture):
    db_bits = master_fixture.db_bits
    query = master_fixture.query_bits
    for verify in (True, False):
        candidates = {}
        for kernel in ("object", "fused"):
            pipe = SecureStringMatchPipeline(
                ClientConfig(BFVParams.test_small(64), key_seed=23),
                search_kernel=kernel,
            )
            pipe.outsource_database(db_bits)
            candidates[kernel] = pipe.search(query, verify=verify).candidates
        assert candidates["object"] == candidates["fused"]


def test_sharded_cross_shard_merge_identical(master_fixture):
    """Sharded merges: every shard count produces the same matches under
    both kernels, including the occurrence straddling shard boundaries."""
    db_bits = master_fixture.db_bits
    query = master_fixture.query_bits
    results = {}
    for kernel in ("object", "fused"):
        for shards in (1, 2, 3):
            with repro.open_session(
                "bfv-sharded",
                db_bits=db_bits,
                key_seed=13,
                num_shards=shards,
                search_kernel=kernel,
            ) as session:
                results[(kernel, shards)] = list(session.search(query).matches)
    baseline = results[("object", 1)]
    assert 1008 in baseline
    for key, matches in results.items():
        assert matches == baseline, key


def test_env_var_selects_kernel(monkeypatch, master_fixture):
    """REPRO_SEARCH_KERNEL threads through to the server dispatch."""
    db_view = master_fixture.db_bits[:512]
    query = master_fixture.query_bits
    for env in ("object", "fused"):
        monkeypatch.setenv("REPRO_SEARCH_KERNEL", env)
        pipe = SecureStringMatchPipeline(
            ClientConfig(BFVParams.test_small(64), key_seed=29)
        )
        pipe.outsource_database(db_view)
        assert pipe.server.uses_fused_kernel() == (env == "fused")
        assert pipe.search(query).matches == find_all_matches(db_view, query)


def test_deterministic_seed_mode_sharded_parity(master_fixture):
    """Deterministic-seed (server-side index) mode through the sharded
    engine: both kernels, same matches, same hom-add accounting."""
    db_bits = master_fixture.db_bits
    query = master_fixture.query_bits
    from repro.serve import ShardedSearchEngine

    reports = {}
    for kernel in ("object", "fused"):
        engine = ShardedSearchEngine(
            ClientConfig(
                BFVParams.test_small(64),
                key_seed=31,
                index_mode=IndexMode.SERVER_DETERMINISTIC,
            ),
            num_shards=2,
            search_kernel=kernel,
        )
        engine.outsource(db_bits)
        reports[kernel] = engine.search(query)
    assert reports["object"].matches == reports["fused"].matches
    assert reports["object"].hom_additions == reports["fused"].hom_additions
    assert 1008 in reports["fused"].matches
