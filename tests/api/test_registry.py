"""Registry resolution, capability validation, and error taxonomy."""

import numpy as np
import pytest

import repro
from repro.api import (
    DEFAULT_REGISTRY,
    Capabilities,
    CapabilityError,
    EngineRegistry,
    ExactSearch,
    PlaintextEngine,
    UnknownEngineError,
    VerifyPolicy,
    WildcardSearch,
)

ALL_KEYS = (
    "bfv",
    "bfv-wire",
    "bfv-sharded",
    "plaintext",
    "boolean-bfv",
    "boolean-tfhe",
    "yasuda",
    "kim-homeq",
    "bonte",
    "remote",
)


class TestResolution:
    def test_default_registry_keys(self):
        assert set(DEFAULT_REGISTRY.keys()) == set(ALL_KEYS)

    def test_contains(self):
        assert "bfv-sharded" in DEFAULT_REGISTRY
        assert "enigma" not in DEFAULT_REGISTRY

    def test_unknown_key_raises_with_known_keys_listed(self):
        with pytest.raises(UnknownEngineError) as exc:
            DEFAULT_REGISTRY.spec("enigma")
        assert "enigma" in str(exc.value)
        assert "bfv-sharded" in str(exc.value)

    def test_unknown_key_is_a_keyerror(self):
        with pytest.raises(KeyError):
            DEFAULT_REGISTRY.create("enigma")

    def test_open_session_unknown_key(self):
        with pytest.raises(UnknownEngineError):
            repro.open_session("enigma")

    def test_cli_search_unknown_engine_exits_cleanly(self, capsys):
        from repro.__main__ import main

        assert main(["search", "--engine", "enigma", "--query", "x"]) == 2
        assert "no engine registered" in capsys.readouterr().out

    def test_unknown_engine_kwarg_fails_loudly(self):
        with pytest.raises(TypeError):
            DEFAULT_REGISTRY.create("plaintext", num_shards=4)

    def test_specs_carry_summaries_and_capabilities(self):
        for spec in DEFAULT_REGISTRY:
            assert spec.summary
            assert isinstance(spec.capabilities, Capabilities)

    def test_capability_matrix_lists_every_engine(self):
        matrix = DEFAULT_REGISTRY.capability_matrix()
        for key in ALL_KEYS:
            assert key in matrix


class TestCustomRegistration:
    def test_register_and_create(self):
        reg = EngineRegistry()
        reg.register_engine_class(PlaintextEngine, summary="oracle")
        engine = reg.create("plaintext")
        engine.outsource(np.array([1, 0, 1], dtype=np.uint8))
        assert engine.db_bit_length == 3

    def test_duplicate_key_rejected_without_overwrite(self):
        reg = EngineRegistry()
        reg.register_engine_class(PlaintextEngine, summary="oracle")
        with pytest.raises(ValueError, match="already registered"):
            reg.register_engine_class(PlaintextEngine, summary="again")
        reg.register_engine_class(
            PlaintextEngine, summary="again", overwrite=True
        )
        assert reg.spec("plaintext").summary == "again"

    def test_open_session_with_custom_registry(self):
        reg = EngineRegistry()
        reg.register_engine_class(PlaintextEngine, summary="oracle")
        db = np.array([1, 0, 1, 1, 0], dtype=np.uint8)
        with repro.open_session("plaintext", registry=reg, db_bits=db) as s:
            assert list(s.search(np.array([1, 1], dtype=np.uint8)).matches) == [2]


class TestCapabilityMismatch:
    def test_wildcard_to_non_wildcard_engine_raises(self):
        """The headline mismatch: a wildcard request routed to an engine
        without a wildcard path."""
        with repro.open_session("yasuda", seed=1) as session:
            session.outsource(np.zeros(64, dtype=np.uint8))
            with pytest.raises(CapabilityError, match="wildcard"):
                session.search(WildcardSearch.from_text("a?c"))

    def test_explicit_verify_on_unverifiable_engine_raises(self):
        with repro.open_session("kim-homeq", seed=1) as session:
            session.outsource(np.zeros(16, dtype=np.uint8))
            with pytest.raises(CapabilityError, match="verification"):
                session.search(
                    ExactSearch.from_bits([1, 0], verify=VerifyPolicy.VERIFY)
                )

    def test_query_over_engine_cap_raises(self):
        with repro.open_session("bonte", seed=1) as session:
            session.outsource(np.zeros(16, dtype=np.uint8))
            with pytest.raises(CapabilityError, match="caps queries"):
                session.search(np.ones(8, dtype=np.uint8))

    def test_submit_validates_before_queueing(self):
        """Async submission fails at submit time, not inside a future."""
        with repro.open_session("yasuda", seed=2) as session:
            session.outsource(np.zeros(64, dtype=np.uint8))
            with pytest.raises(CapabilityError):
                session.submit(WildcardSearch.from_text("a?c"))

    def test_auto_policy_skips_verification_gracefully(self):
        """AUTO on an engine without verification does not raise — it
        resolves to skip."""
        db = np.zeros(16, dtype=np.uint8)
        db[4:8] = 1
        with repro.open_session("kim-homeq", seed=3, db_bits=db) as session:
            result = session.search(np.array([1, 1, 1, 1], dtype=np.uint8))
        assert list(result.matches) == [4]
        assert result.verified is False
