"""Shared fixtures for the unified facade tests.

`master_fixture` is THE shared parity fixture: one database and one
planted 32-bit query.  Engines with scheme- or scale-limited
capabilities see deterministic *views* of the same fixture — the query
clamped to `Capabilities.query_bits_for_parity`, the database to
`Capabilities.db_bits_for_parity` — so every registered engine is
exercised against `baselines.plaintext.find_all_matches` on the same
underlying data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest


@dataclass(frozen=True)
class MasterFixture:
    db_bits: np.ndarray
    query_bits: np.ndarray

    def view(self, capabilities, query_request_bits: int = 32):
        """(db view, query view) clamped to one engine's capabilities."""
        qbits = capabilities.query_bits_for_parity(query_request_bits)
        dbits = capabilities.db_bits_for_parity(len(self.db_bits))
        return self.db_bits[:dbits].copy(), self.query_bits[:qbits].copy()


@pytest.fixture(scope="session")
def master_fixture() -> MasterFixture:
    rng = np.random.default_rng(20250728)
    db = rng.integers(0, 2, 2048).astype(np.uint8)
    query = rng.integers(0, 2, 32).astype(np.uint8)
    # Planted occurrences: one near the start (inside every clamped
    # database view — its prefix is a prefix-query occurrence), one
    # mid-database, one straddling the 2-shard polynomial boundary
    # (bit 1024 at n=64, w=16).
    db[8:40] = query
    db[608:640] = query
    db[1008:1040] = query
    return MasterFixture(db_bits=db, query_bits=query)
