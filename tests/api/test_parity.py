"""Cross-engine parity: every registered engine, one shared fixture.

The acceptance bar of the facade: every engine the registry knows —
core BFV pipeline, wire protocol, sharded serving, and all six
baselines — is constructible via ``repro.open_session(key, ...)`` and
returns a :class:`SearchResult` whose matches agree with
``baselines.plaintext.find_all_matches`` on (its capability-clamped
view of) the shared fixture.
"""

import numpy as np
import pytest

import repro
from repro.api import DEFAULT_REGISTRY, SearchResult
from repro.baselines import find_all_matches

#: engine-appropriate deterministic seeds / scale kwargs
ENGINE_KWARGS = {
    "bfv": {"key_seed": 11},
    "bfv-wire": {"key_seed": 12},
    "bfv-sharded": {"key_seed": 13, "num_shards": 2},
    "plaintext": {},
    "boolean-bfv": {"seed": 14},
    "boolean-tfhe": {"seed": 15},
    "yasuda": {"seed": 16},
    "kim-homeq": {"seed": 17},
    "bonte": {"seed": 18},
    # loopback TCP service around the default bfv-sharded engine: the
    # same parity bar, held across a real socket
    "remote": {"key_seed": 19, "num_shards": 2},
}


def test_every_registered_engine_has_kwargs():
    """Keep ENGINE_KWARGS in sync with the registry."""
    assert set(ENGINE_KWARGS) == set(DEFAULT_REGISTRY.keys())


@pytest.mark.parametrize("key", list(ENGINE_KWARGS))
def test_engine_matches_plaintext_oracle(key, master_fixture):
    caps = DEFAULT_REGISTRY.spec(key).capabilities
    db_view, query = master_fixture.view(caps)
    assert len(query) >= 1

    with repro.open_session(
        key, db_bits=db_view, **ENGINE_KWARGS[key]
    ) as session:
        result = session.search(query)

    assert isinstance(result, SearchResult)
    assert result.engine == key
    assert result.scheme == caps.scheme
    expected = find_all_matches(db_view, query)
    assert list(result.matches) == expected, (
        f"{key}: {list(result.matches)} != oracle {expected} "
        f"(db {len(db_view)} bits, query {len(query)} bits)"
    )
    # the fixture plants the query at bit 8, visible in every view
    assert 8 in result.matches
    assert result.elapsed_seconds >= 0.0
    if caps.scheme != "none":
        assert result.hom_ops.total > 0
        assert result.encrypted_db_bytes > 0


def test_sharded_engine_reports_shards(master_fixture):
    caps = DEFAULT_REGISTRY.spec("bfv-sharded").capabilities
    db_view, query = master_fixture.view(caps)
    with repro.open_session(
        "bfv-sharded", db_bits=db_view, **ENGINE_KWARGS["bfv-sharded"]
    ) as session:
        result = session.search(query)
    assert len(result.shards) == 2
    assert result.sharded
    # the fixture's third occurrence straddles the shard boundary
    assert 1008 in result.matches


def test_poly_backend_threads_through_baselines(master_fixture):
    """The registry kwarg reaches the matcher's HE context (PR-2
    vectorized backend vs reference), with identical matches."""
    caps = DEFAULT_REGISTRY.spec("yasuda").capabilities
    db_view, query = master_fixture.view(caps)
    results = {}
    for backend in ("vectorized", "reference"):
        with repro.open_session(
            "yasuda", db_bits=db_view, seed=16, poly_backend=backend
        ) as session:
            results[backend] = list(session.search(query).matches)
            assert session.engine.matcher.ctx.poly_backend == backend
    assert results["vectorized"] == results["reference"]
    assert results["vectorized"] == find_all_matches(db_view, query)
