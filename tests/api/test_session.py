"""Session lifecycle, sync/async execution, and future ordering."""

import numpy as np
import pytest

import repro
from repro.api import (
    BatchSearchResult,
    ExactSearch,
    SearchResult,
    Session,
    PlaintextEngine,
    WildcardSearch,
)
from repro.baselines import find_all_matches
from repro.he import BFVParams
from repro.utils.bits import random_bits

PARAMS = BFVParams.test_small(64)


@pytest.fixture(scope="module")
def served():
    """One sharded session + its database, shared by the module."""
    rng = np.random.default_rng(31)
    db = random_bits(2048, rng)
    queries = []
    for k in range(4):
        q = random_bits(32, rng)
        off = 16 * (2 + 27 * k)
        db[off : off + 32] = q
        queries.append(q)
    session = repro.open_session(
        "bfv-sharded", params=PARAMS, num_shards=2, key_seed=41, db_bits=db
    )
    yield session, db, queries
    session.close()


class TestSyncSearch:
    def test_search_accepts_raw_bits_and_requests(self, served):
        session, db, queries = served
        for q in queries:
            direct = session.search(q)
            typed = session.search(ExactSearch.from_bits(q))
            assert direct.matches == typed.matches
            assert list(direct.matches) == find_all_matches(db, q)

    def test_search_accepts_text_needle(self):
        text = "alpha beta gamma beta "
        db = np.array(
            [int(b) for b in "".join(f"{ord(c):08b}" for c in text)],
            dtype=np.uint8,
        )
        with repro.open_session(
            "bfv", params=PARAMS, key_seed=42, db_bits=db
        ) as s:
            result = s.search("beta")
        assert list(result.matches) == [8 * text.index("beta"), 8 * text.rindex("beta")]

    def test_search_before_outsource_raises(self):
        with repro.open_session("bfv", params=PARAMS, key_seed=43) as s:
            with pytest.raises(RuntimeError, match="outsource"):
                s.search(np.ones(32, dtype=np.uint8))

    def test_batch_verify_policy_applies_on_every_engine(self, served):
        """A batch-level verify=False reaches every sub-query on both
        the generic (sequential) and native batch paths."""
        session, db, queries = served
        native = session.search_batch(queries[:2], verify=False)
        assert [r.verified for r in native.results] == [False, False]
        with repro.open_session(
            "bfv", params=PARAMS, key_seed=47, db_bits=db
        ) as plain:
            generic = plain.search_batch(queries[:2], verify=False)
        assert [r.verified for r in generic.results] == [False, False]

    def test_search_batch_native(self, served):
        session, db, queries = served
        batch = session.search_batch(queries + queries[:2])
        assert isinstance(batch, BatchSearchResult)
        assert batch.num_queries == 6
        assert batch.deduplicated_hits == 2
        for q, matches in zip(queries + queries[:2], batch.matches_per_query()):
            assert matches == find_all_matches(db, q)


class TestAsyncSubmission:
    def test_future_ordering_under_batch_submit(self, served):
        """The i-th future always resolves to the i-th request's result,
        whatever coalescing/deduplication happened inside."""
        session, db, queries = served
        submitted = list(queries) + [queries[1], queries[0]]
        futures = session.submit_batch(submitted)
        results = [f.result(timeout=120) for f in futures]
        assert all(isinstance(r, SearchResult) for r in results)
        expected = [find_all_matches(db, q) for q in submitted]
        assert [list(r.matches) for r in results] == expected

    def test_mixed_request_types_preserve_pairing(self, served):
        session, db, queries = served
        f_exact = session.submit(queries[0])
        f_again = session.submit(ExactSearch.from_bits(queries[2]))
        assert list(f_exact.result(timeout=120).matches) == find_all_matches(
            db, queries[0]
        )
        assert list(f_again.result(timeout=120).matches) == find_all_matches(
            db, queries[2]
        )

    def test_drain_waits_for_everything(self, served):
        session, db, queries = served
        futures = session.submit_batch(queries)
        session.drain()
        assert all(f.done() for f in futures)

    def test_failed_request_resolves_future_with_exception(self):
        engine = PlaintextEngine()
        db = np.array([1, 0, 1, 1], dtype=np.uint8)
        with repro.open_session(engine, db_bits=db) as s:
            # empty-query ValueError surfaces through the future at
            # request build time, before queueing
            with pytest.raises(ValueError):
                s.submit(np.array([], dtype=np.uint8))


class TestLifecycle:
    def test_context_manager_closes(self):
        db = np.array([1, 0, 1, 1, 0], dtype=np.uint8)
        with repro.open_session("plaintext", db_bits=db) as s:
            assert list(s.search(np.array([1, 1], dtype=np.uint8)).matches) == [2]
        with pytest.raises(RuntimeError, match="closed"):
            s.search(np.array([1], dtype=np.uint8))
        with pytest.raises(RuntimeError, match="closed"):
            s.submit(np.array([1], dtype=np.uint8))

    def test_close_is_idempotent(self):
        s = repro.open_session("plaintext")
        s.close()
        s.close()

    def test_close_drains_pending_futures(self):
        db = np.array([1, 0, 1, 1, 0, 1, 1, 0], dtype=np.uint8)
        s = repro.open_session("plaintext", db_bits=db)
        futures = s.submit_batch([np.array([1, 1], dtype=np.uint8)] * 8)
        s.close()
        assert all(f.done() for f in futures)
        assert [list(f.result().matches) for f in futures] == [[2, 5]] * 8

    def test_open_session_rejects_kwargs_with_engine_instance(self):
        with pytest.raises(TypeError, match="registry key"):
            repro.open_session(PlaintextEngine(), num_shards=2)

    def test_session_exposes_capabilities(self, served):
        session, _, _ = served
        assert session.engine_key == "bfv-sharded"
        assert session.capabilities.sharded
        assert session.db_bit_length == 2048


class TestWildcardThroughSession:
    def test_wildcard_request(self):
        text = "user alice logged in; user bob logged out; "
        db = np.array(
            [int(b) for b in "".join(f"{ord(c):08b}" for c in text)],
            dtype=np.uint8,
        )
        import re

        with repro.open_session(
            "bfv", params=PARAMS, key_seed=44, db_bits=db
        ) as s:
            result = s.search(WildcardSearch.from_text("logged ??"))
        expected = [8 * m.start() for m in re.finditer(r"logged ..", text)]
        assert list(result.matches) == expected
