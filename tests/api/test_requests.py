"""Typed request/response contract: immutability, coercion, payloads."""

import dataclasses

import numpy as np
import pytest

from repro.api import (
    BatchSearch,
    ExactSearch,
    HomOpTally,
    SearchResult,
    VerifyPolicy,
    WildcardSearch,
)
from repro.utils.bits import text_to_bits


class TestExactSearch:
    def test_frozen_and_hashable(self):
        req = ExactSearch.from_bits([1, 0, 1])
        with pytest.raises(dataclasses.FrozenInstanceError):
            req.bits = (0,)
        assert req == ExactSearch.from_bits(np.array([1, 0, 1]))
        assert hash(req) == hash(ExactSearch.from_bits((1, 0, 1)))

    def test_from_text_matches_text_to_bits(self):
        req = ExactSearch.from_text("fox")
        assert req.bits == tuple(int(b) for b in text_to_bits("fox"))
        assert req.num_bits == 24

    def test_from_bytes(self):
        assert ExactSearch.from_bytes(b"\x80").bits == (1, 0, 0, 0, 0, 0, 0, 0)

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ExactSearch(())

    def test_non_bit_payload_rejected(self):
        with pytest.raises(ValueError, match="0/1"):
            ExactSearch((1, 2, 0))

    def test_bool_verify_coerces_to_policy(self):
        assert ExactSearch((1,), verify=True).verify is VerifyPolicy.VERIFY
        assert ExactSearch((1,), verify=False).verify is VerifyPolicy.SKIP
        assert ExactSearch((1,)).verify is VerifyPolicy.AUTO


class TestWildcardSearch:
    def test_from_text_layout(self):
        req = WildcardSearch.from_text("a?b")
        assert req.num_bits == 24
        assert req.mask[0:8] == (1,) * 8
        assert req.mask[8:16] == (0,) * 8
        assert req.literal_bits == 16

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            WildcardSearch((1, 0), (1,))

    def test_all_wildcard_rejected(self):
        with pytest.raises(ValueError, match="no literal"):
            WildcardSearch((0, 0), (0, 0))


class TestBatchSearch:
    def test_coerces_raw_bit_payloads(self):
        batch = BatchSearch((np.array([1, 0]), ExactSearch((1, 1))))
        assert all(isinstance(q, ExactSearch) for q in batch.queries)
        assert batch.num_queries == 2

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            BatchSearch(())


class TestVerifyPolicy:
    def test_coerce(self):
        assert VerifyPolicy.coerce(None) is VerifyPolicy.AUTO
        assert VerifyPolicy.coerce(True) is VerifyPolicy.VERIFY
        assert VerifyPolicy.coerce(False) is VerifyPolicy.SKIP
        assert VerifyPolicy.coerce(VerifyPolicy.SKIP) is VerifyPolicy.SKIP
        with pytest.raises(TypeError):
            VerifyPolicy.coerce("yes")

    def test_resolve_against_engine_support(self):
        assert VerifyPolicy.AUTO.resolve(True) is True
        assert VerifyPolicy.AUTO.resolve(False) is False
        assert VerifyPolicy.VERIFY.resolve(False) is True
        assert VerifyPolicy.SKIP.resolve(True) is False


class TestSearchResult:
    def test_tally_total(self):
        tally = HomOpTally(additions=3, multiplications=2, bootstraps=1)
        assert tally.total == 6

    def test_result_is_frozen(self):
        result = SearchResult(
            matches=(4,),
            engine="bfv",
            scheme="bfv",
            hom_ops=HomOpTally(additions=1),
            elapsed_seconds=0.1,
            verified=True,
        )
        assert result.num_matches == 1
        assert not result.sharded
        with pytest.raises(dataclasses.FrozenInstanceError):
            result.matches = ()
