"""Workload parity across search kernels and shard executors.

Every scenario stream in :mod:`repro.load` must produce identical
matches whichever ``search_kernel`` (fused / object) and ``executor``
(thread / process) configuration serves it — the fused kernels and the
shared-memory process pool are performance paths, never semantic ones.
The workload wrappers' ``search_kernel=`` knob gets the same treatment
directly.
"""

import itertools

import pytest

import repro
from repro.core import ClientConfig
from repro.he import BFVParams
from repro.load import SCENARIO_REGISTRY
from repro.workloads.biometric import (
    BiometricWorkloadGenerator,
    SecureBiometricMatcher,
)
from repro.workloads.dna import DnaWorkloadGenerator
from repro.workloads.readmapper import SecureReadMapper

PARAMS = BFVParams.test_small(64)
MATRIX = list(itertools.product(["fused", "object"], ["thread", "process"]))


def _scenario_results(key, kernel, executor, n):
    scenario = SCENARIO_REGISTRY.create(key, seed=13)
    with repro.open_session(
        "bfv-sharded",
        params=PARAMS,
        num_shards=2,
        key_seed=13,
        search_kernel=kernel,
        executor=executor,
        db_bits=scenario.db_bits(),
    ) as session:
        out = []
        for item in itertools.islice(scenario.requests(), n):
            result = session.search(item.request)
            if hasattr(result, "results"):  # batch
                out.append(tuple(tuple(r.matches) for r in result.results))
            else:
                out.append(tuple(result.matches))
        return out


class TestScenarioParityMatrix:
    """Same scenario stream, every kernel x executor cell, same matches."""

    @pytest.mark.parametrize("kernel,executor", MATRIX)
    def test_database_matches_oracle(self, kernel, executor):
        scenario = SCENARIO_REGISTRY.create("database", seed=13)
        expected = [
            item.expected
            for item in itertools.islice(scenario.requests(), 4)
        ]
        got = _scenario_results("database", kernel, executor, 4)
        assert got == expected

    @pytest.mark.parametrize("kernel,executor", MATRIX)
    def test_readmapper_batches_and_wildcards(self, kernel, executor):
        # requests 1-4 cover three seed batches plus one wildcard read
        scenario = SCENARIO_REGISTRY.create("readmapper", seed=13)
        expected = [
            item.expected
            for item in itertools.islice(scenario.requests(), 4)
        ]
        got = _scenario_results("readmapper", kernel, executor, 4)
        assert got == expected

    def test_dna_parity_across_kernels(self):
        runs = {
            kernel: _scenario_results("dna", kernel, "thread", 5)
            for kernel in ("fused", "object")
        }
        assert runs["fused"] == runs["object"]


class TestWorkloadWrapperKernelKnob:
    """The search_kernel= kwarg on the workload wrappers is semantics-free."""

    def test_read_mapper_parity(self):
        workload = DnaWorkloadGenerator(seed=5).generate(
            num_bases=320, read_length_bases=16, num_reads=3,
            chunk_aligned=True,
        )
        verdicts = {}
        for kernel in ("fused", "object"):
            mapper = SecureReadMapper(
                workload.genome,
                ClientConfig(PARAMS),
                seed_bases=8,
                search_kernel=kernel,
            )
            verdicts[kernel] = [
                mapper.verify(mapper.map_read(read.sequence))
                for read in workload.reads
            ]
        assert verdicts["fused"] == verdicts["object"]
        assert verdicts["fused"] == [
            read.position_bases for read in workload.reads
        ]

    def test_biometric_matcher_parity(self):
        gallery = BiometricWorkloadGenerator(seed=5).generate(
            num_subjects=4, template_bits=64
        )
        outcomes = {}
        for kernel in ("fused", "object"):
            matcher = SecureBiometricMatcher(
                gallery, ClientConfig(PARAMS), search_kernel=kernel
            )
            outcomes[kernel] = [
                (
                    matcher.authenticate(e.template).accepted,
                    matcher.authenticate(e.template).subject_id,
                )
                for e in gallery.enrollees
            ]
        assert outcomes["fused"] == outcomes["object"]
        assert all(accepted for accepted, _ in outcomes["fused"])
