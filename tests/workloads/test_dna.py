"""Unit tests for the DNA case-study workload."""

import numpy as np
import pytest

from repro.workloads import (
    BITS_PER_BASE,
    DnaWorkloadGenerator,
    PaperDnaScale,
    bits_to_sequence,
    random_genome,
    sequence_to_bits,
)


class TestEncoding:
    def test_roundtrip(self):
        seq = "ACGTACGT"
        assert bits_to_sequence(sequence_to_bits(seq)) == seq

    def test_two_bits_per_base(self):
        assert len(sequence_to_bits("ACGT")) == 4 * BITS_PER_BASE

    def test_fixed_encoding(self):
        assert list(sequence_to_bits("A")) == [0, 0]
        assert list(sequence_to_bits("C")) == [0, 1]
        assert list(sequence_to_bits("G")) == [1, 0]
        assert list(sequence_to_bits("T")) == [1, 1]

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            sequence_to_bits("ACGN")

    def test_odd_bits_rejected(self):
        with pytest.raises(ValueError):
            bits_to_sequence(np.array([1, 0, 1], dtype=np.uint8))


class TestRandomGenome:
    def test_length_and_alphabet(self, rng):
        g = random_genome(500, rng)
        assert len(g) == 500
        assert set(g).issubset(set("ACGT"))

    def test_roughly_uniform(self, rng):
        g = random_genome(8000, rng)
        for base in "ACGT":
            assert 0.2 < g.count(base) / 8000 < 0.3


class TestWorkloadGenerator:
    def test_reads_planted_at_their_positions(self):
        gen = DnaWorkloadGenerator(seed=1)
        wl = gen.generate(num_bases=500, read_length_bases=20, num_reads=3)
        for read in wl.reads:
            start = read.position_bases
            assert wl.genome[start : start + 20] == read.sequence

    def test_chunk_alignment(self):
        gen = DnaWorkloadGenerator(seed=2)
        wl = gen.generate(num_bases=400, read_length_bases=16, num_reads=4)
        for read in wl.reads:
            assert read.position_bits % 16 == 0

    def test_unaligned_mode(self):
        gen = DnaWorkloadGenerator(seed=3)
        wl = gen.generate(
            num_bases=400, read_length_bases=16, num_reads=5, chunk_aligned=False
        )
        assert any(r.position_bits % 16 != 0 for r in wl.reads)

    def test_reads_do_not_overlap(self):
        gen = DnaWorkloadGenerator(seed=4)
        wl = gen.generate(num_bases=600, read_length_bases=24, num_reads=5)
        spans = sorted(
            (r.position_bases, r.position_bases + 24) for r in wl.reads
        )
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_read_bits_accessor(self):
        gen = DnaWorkloadGenerator(seed=5)
        wl = gen.generate(num_bases=200, read_length_bases=10, num_reads=1)
        bits = wl.read_bits(0)
        assert np.array_equal(bits, sequence_to_bits(wl.reads[0].sequence))

    def test_genome_bits_contains_read_bits(self):
        gen = DnaWorkloadGenerator(seed=6)
        wl = gen.generate(num_bases=300, read_length_bases=12, num_reads=2)
        genome_bits = wl.genome_bits
        for i, read in enumerate(wl.reads):
            off = read.position_bits
            assert np.array_equal(
                genome_bits[off : off + read.length_bits], wl.read_bits(i)
            )

    def test_read_longer_than_genome(self):
        with pytest.raises(ValueError):
            DnaWorkloadGenerator().generate(10, 20, 1)

    def test_impossible_packing(self):
        with pytest.raises(RuntimeError):
            DnaWorkloadGenerator(seed=7).generate(
                num_bases=50, read_length_bases=20, num_reads=10
            )


class TestPaperScale:
    def test_descriptor(self):
        scale = PaperDnaScale()
        assert scale.encrypted_bytes == 4 * scale.plaintext_bytes  # 4x packing
        assert scale.query_bits_range == (16, 32, 64, 128, 256)
        assert scale.num_bases == scale.plaintext_bytes * 4  # 2 bits/base
