"""Tests for the secure seed-and-vote DNA read mapper."""

import numpy as np
import pytest

from repro.core import ClientConfig
from repro.he import BFVParams
from repro.workloads.dna import DnaWorkloadGenerator, random_genome
from repro.workloads.readmapper import (
    MappingResult,
    SecureReadMapper,
    Seed,
    SeedExtractor,
)


class TestSeedExtractor:
    def test_exact_division(self):
        seeds = SeedExtractor(4).extract("ACGTACGTACGT")
        assert [s.sequence for s in seeds] == ["ACGT", "ACGT", "ACGT"]
        assert [s.read_offset_bases for s in seeds] == [0, 4, 8]

    def test_trailing_fragment_dropped(self):
        seeds = SeedExtractor(4).extract("ACGTACGTAC")
        assert len(seeds) == 2

    def test_read_shorter_than_seed_rejected(self):
        with pytest.raises(ValueError, match="shorter"):
            SeedExtractor(8).extract("ACGT")

    def test_invalid_seed_length(self):
        with pytest.raises(ValueError):
            SeedExtractor(0)

    def test_seed_bit_offsets(self):
        seed = Seed("ACGT", read_offset_bases=4)
        assert seed.read_offset_bits == 8
        assert seed.length_bases == 4


@pytest.fixture(scope="module")
def mapper():
    gen = DnaWorkloadGenerator(seed=7)
    workload = gen.generate(
        num_bases=320, read_length_bases=16, num_reads=3, chunk_aligned=True
    )
    m = SecureReadMapper(
        workload.genome, ClientConfig(BFVParams.test_small(64)), seed_bases=8
    )
    return m, workload


class TestMapping:
    def test_planted_reads_map_to_their_positions(self, mapper):
        m, workload = mapper
        for read in workload.reads:
            result = m.map_read(read.sequence)
            assert result.mapped
            positions = [c.position_bases for c in result.candidates]
            assert read.position_bases in positions
            top = result.best
            assert top.votes == result.seeds_searched or read.position_bases in positions

    def test_confident_mapping_is_correct(self, mapper):
        m, workload = mapper
        read = workload.reads[0]
        result = m.map_read(read.sequence)
        if result.confident:
            assert m.verify(result) is not None

    def test_foreign_read_does_not_map_confidently(self, mapper):
        m, _ = mapper
        rng = np.random.default_rng(999)
        foreign = random_genome(16, rng)
        result = m.map_read(foreign)
        # A random 16-base read almost surely has no full-vote candidate
        # in a 320-base genome; accept low-vote noise.
        assert not result.confident or m.verify(result) is not None

    def test_hom_additions_accumulate(self, mapper):
        m, workload = mapper
        result = m.map_read(workload.reads[0].sequence)
        assert result.hom_additions > 0

    def test_seeds_searched_counts(self, mapper):
        m, workload = mapper
        result = m.map_read(workload.reads[0].sequence)
        assert result.seeds_searched == 2  # 16 bases / 8-base seeds

    def test_map_reads_batch(self, mapper):
        m, workload = mapper
        results = m.map_reads([r.sequence for r in workload.reads[:2]])
        assert len(results) == 2
        assert m.reads_mapped >= 2

    def test_verify_rejects_wrong_candidates(self, mapper):
        m, _ = mapper
        fake = MappingResult(
            read="AAAA",
            candidates=[],
            seeds_searched=0,
            hom_additions=0,
        )
        assert m.verify(fake) is None
        assert fake.best is None
        assert not fake.mapped


class TestVoteSemantics:
    def test_votes_deduplicate_seed_indices(self):
        """A seed matching twice at offsets implying the same start
        position still counts one supporting seed entry per hit, but
        the supporting list is deduplicated."""
        reference = "ACGTACGTACGTACGTGGCC"
        m = SecureReadMapper(
            reference, ClientConfig(BFVParams.test_small(64)), seed_bases=8
        )
        result = m.map_read("ACGTACGTACGTACGT")
        for cand in result.candidates:
            assert cand.supporting_seeds == sorted(set(cand.supporting_seeds))

    def test_min_votes_filter(self):
        reference = "ACGTACGTGGTTACGTACGTACGTGGCCAAGG"
        m = SecureReadMapper(
            reference,
            ClientConfig(BFVParams.test_small(64)),
            seed_bases=8,
            min_votes=2,
        )
        result = m.map_read("GGTTACGTACGTACGT")
        assert all(c.votes >= 2 for c in result.candidates)
        assert result.best.position_bases == 8
