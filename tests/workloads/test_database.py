"""Unit tests for the encrypted-database-search workload."""

import numpy as np
import pytest

from repro.workloads import DatabaseWorkloadGenerator, PaperDatabaseScale


@pytest.fixture(scope="module")
def db():
    return DatabaseWorkloadGenerator(seed=9).generate(
        num_records=20, key_bytes=8, value_bytes=16
    )


class TestKeyValueDatabase:
    def test_unique_keys(self, db):
        keys = [r.key for r in db.records]
        assert len(set(keys)) == len(keys)

    def test_record_layout(self, db):
        bits = db.flatten_bits()
        assert len(bits) == 20 * db.record_bits
        assert db.record_bits == (8 + 16) * 8

    def test_key_at_expected_offset(self, db):
        bits = db.flatten_bits()
        for i in (0, 7, 19):
            off = db.key_offset_bits(i)
            key_bits = db.key_bits(db.records[i].key)
            assert np.array_equal(bits[off : off + len(key_bits)], key_bits)

    def test_key_offsets_chunk_aligned(self, db):
        # 24-byte records: every key offset is a multiple of 16 bits
        for i in range(len(db.records)):
            assert db.key_offset_bits(i) % 16 == 0

    def test_lookup(self, db):
        rec = db.records[3]
        assert db.lookup(rec.key) is rec
        assert db.lookup("nonexistent!") is None

    def test_key_bits_fixed_width(self, db):
        assert len(db.key_bits("a")) == 8 * 8
        assert len(db.key_bits("exactly8")) == 8 * 8


class TestQueryMix:
    def test_hit_fraction(self, db):
        gen = DatabaseWorkloadGenerator(seed=10)
        mix = gen.query_mix(db, num_queries=200, hit_fraction=0.5)
        assert len(mix.keys) == 200
        assert 60 < mix.num_hits < 140

    def test_ground_truth_consistency(self, db):
        gen = DatabaseWorkloadGenerator(seed=11)
        mix = gen.query_mix(db, num_queries=50)
        for key, expected in zip(mix.keys, mix.expected_record_indices):
            if expected is None:
                assert db.lookup(key) is None
            else:
                assert db.records[expected].key == key

    def test_all_misses(self, db):
        gen = DatabaseWorkloadGenerator(seed=12)
        mix = gen.query_mix(db, num_queries=20, hit_fraction=0.0)
        assert mix.num_hits == 0

    def test_all_hits(self, db):
        gen = DatabaseWorkloadGenerator(seed=13)
        mix = gen.query_mix(db, num_queries=20, hit_fraction=1.0)
        assert mix.num_hits == 20


class TestPaperScale:
    def test_descriptor(self):
        scale = PaperDatabaseScale()
        assert scale.num_queries == 1000
        assert scale.query_bits == 16
        for pt, enc in zip(scale.plaintext_sizes_bytes, scale.encrypted_sizes_bytes):
            assert enc == 4 * pt
