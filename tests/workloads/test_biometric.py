"""Tests for the secure biometric matching case study."""

import numpy as np
import pytest

from repro.core import ClientConfig
from repro.he import BFVParams
from repro.workloads.biometric import (
    BiometricWorkloadGenerator,
    SecureBiometricMatcher,
)


@pytest.fixture(scope="module")
def setup():
    gen = BiometricWorkloadGenerator(seed=7)
    gallery = gen.generate(num_subjects=5, template_bits=64)
    matcher = SecureBiometricMatcher(
        gallery, ClientConfig(BFVParams.test_small(64))
    )
    return gen, gallery, matcher


class TestGenerator:
    def test_gallery_shape(self, setup):
        _, gallery, _ = setup
        assert gallery.size == 5
        assert gallery.template_bits == 64
        assert len(gallery.concatenated_bits()) == 5 * 64

    def test_unique_subject_ids(self, setup):
        _, gallery, _ = setup
        ids = [e.subject_id for e in gallery.enrollees]
        assert len(set(ids)) == len(ids)

    def test_template_width_must_be_chunk_multiple(self):
        with pytest.raises(ValueError, match="multiple of 16"):
            BiometricWorkloadGenerator().generate(2, template_bits=40)

    def test_subject_at_offset(self, setup):
        _, gallery, _ = setup
        assert gallery.subject_at_offset(0) == "subject-0000"
        assert gallery.subject_at_offset(128) == "subject-0002"
        assert gallery.subject_at_offset(65) is None  # unaligned
        assert gallery.subject_at_offset(64 * 99) is None  # out of range

    def test_noisy_probe_flips_bits(self, setup):
        gen, gallery, _ = setup
        template = gallery.enrollees[0].template
        probe = gen.noisy_probe(template, flip_fraction=0.1)
        flipped = int(np.count_nonzero(probe != template))
        assert flipped == int(64 * 0.1)

    def test_noisy_probe_flips_at_least_one(self, setup):
        gen, gallery, _ = setup
        probe = gen.noisy_probe(gallery.enrollees[0].template, flip_fraction=0.0)
        assert np.count_nonzero(probe != gallery.enrollees[0].template) == 1


class TestAuthentication:
    def test_every_enrollee_authenticates(self, setup):
        _, gallery, matcher = setup
        for enrollee in gallery.enrollees:
            result = matcher.authenticate(enrollee.template)
            assert result.accepted
            assert result.subject_id == enrollee.subject_id

    def test_unenrolled_probe_rejected(self, setup):
        _, _, matcher = setup
        rng = np.random.default_rng(999)
        stranger = rng.integers(0, 2, 64).astype(np.uint8)
        result = matcher.authenticate(stranger)
        assert not result.accepted
        assert result.subject_id is None

    def test_noisy_probe_rejected_by_exact_matcher(self, setup):
        """Exact matching (the paper's setting) rejects degraded
        captures — the documented boundary with approximate matching."""
        gen, gallery, matcher = setup
        probe = gen.noisy_probe(gallery.enrollees[1].template, 0.05)
        assert not matcher.authenticate(probe).accepted

    def test_wrong_probe_width_rejected(self, setup):
        _, _, matcher = setup
        with pytest.raises(ValueError, match="64-bit"):
            matcher.authenticate(np.zeros(32, dtype=np.uint8))

    def test_hom_additions_counted(self, setup):
        _, gallery, matcher = setup
        result = matcher.authenticate(gallery.enrollees[0].template)
        assert result.hom_additions > 0

    def test_acceptance_requires_template_alignment(self, setup):
        """A probe equal to an interior window (straddling two
        templates) must not authenticate anyone."""
        _, gallery, matcher = setup
        bits = gallery.concatenated_bits()
        straddling = bits[32:96].copy()  # second half of t0 + first of t1
        result = matcher.authenticate(straddling)
        assert not result.accepted
