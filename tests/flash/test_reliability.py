"""Unit + failure-injection tests for the flash reliability model."""

import numpy as np
import pytest

from repro.flash import (
    BitSerialAdder,
    EspModel,
    FaultInjector,
    FlashArray,
    FlashGeometry,
    UnreliableBlock,
    WearTracker,
    adder_error_probability,
)


class TestEspModel:
    def test_esp_is_most_reliable(self):
        m = EspModel()
        assert m.rber(esp=True) < m.rber(esp=False) < m.rber(esp=False, bits_per_cell=3)

    def test_expected_errors(self):
        m = EspModel(rber_esp_slc=1e-6)
        assert m.expected_errors(reads=100, bits_per_read=1000, esp=True) == pytest.approx(0.1)

    def test_tlc_mode(self):
        m = EspModel()
        assert m.rber(esp=True, bits_per_cell=3) == m.rber_tlc


class TestWearTracker:
    def test_erase_counting(self):
        w = WearTracker()
        w.record_erase(1)
        w.record_erase(1)
        w.record_erase(2)
        assert w.cycles(1) == 2
        assert w.cycles(2) == 1
        assert w.max_wear() == 2

    def test_lifetime_fraction(self):
        w = WearTracker(endurance_cycles=100)
        for _ in range(25):
            w.record_erase(0)
        assert w.remaining_lifetime_fraction(0) == pytest.approx(0.75)

    def test_lifetime_floors_at_zero(self):
        w = WearTracker(endurance_cycles=2)
        for _ in range(5):
            w.record_erase(0)
        assert w.remaining_lifetime_fraction(0) == 0.0

    def test_imbalance(self):
        w = WearTracker()
        w.record_erase(0)
        w.record_erase(0)
        w.record_erase(1)
        # counts 2 and 1 -> max/mean = 2/1.5
        assert w.wear_imbalance() == pytest.approx(2 / 1.5)

    def test_imbalance_empty(self):
        assert WearTracker().wear_imbalance() == 1.0

    def test_searches_do_not_wear(self):
        """The §4.3.1 reliability claim: bop_add runs in latches only."""
        w = WearTracker()
        for _ in range(10_000):
            w.record_search()
        assert w.searches_executed == 10_000
        assert w.max_wear() == 0


class TestFaultInjector:
    def test_no_faults_by_default(self, rng):
        inj = FaultInjector()
        bits = rng.integers(0, 2, 64).astype(np.uint8)
        assert np.array_equal(inj.corrupt_read(0, bits), bits)

    def test_stuck_at_fault(self):
        inj = FaultInjector()
        inj.add_stuck_at(wordline=2, bitline=5, value=1)
        bits = np.zeros(16, dtype=np.uint8)
        out = inj.corrupt_read(2, bits)
        assert out[5] == 1
        assert inj.corrupt_read(3, bits)[5] == 0  # other wordlines clean

    def test_random_flips_at_high_rber(self, rng):
        inj = FaultInjector(rber=0.5, seed=1)
        bits = np.zeros(10_000, dtype=np.uint8)
        out = inj.corrupt_read(0, bits)
        assert 3000 < out.sum() < 7000
        assert inj.bits_flipped == out.sum()

    def test_original_untouched(self, rng):
        inj = FaultInjector(rber=1.0, seed=2)
        bits = np.zeros(8, dtype=np.uint8)
        inj.corrupt_read(0, bits)
        assert not bits.any()


class TestFaultyAdder:
    """Failure injection through the full bit-serial adder."""

    def _adder_with_injector(self, injector):
        geo = FlashGeometry.functional(num_bitlines=64, wordlines=64)
        plane = FlashArray(geo).plane(0)
        adder = BitSerialAdder(plane, word_bits=32)
        rng = np.random.default_rng(3)
        a = rng.integers(0, 1 << 32, 50).astype(np.int64)
        b = rng.integers(0, 1 << 32, 50).astype(np.int64)
        adder.store_words(0, a)
        plane._blocks[0] = UnreliableBlock(plane._blocks[0], injector)
        return adder, a, b

    def test_clean_injector_preserves_correctness(self):
        adder, a, b = self._adder_with_injector(FaultInjector(rber=0.0))
        assert np.array_equal(adder.add(0, b), (a + b) % (1 << 32))

    def test_stuck_at_corrupts_only_its_bitline(self):
        inj = FaultInjector()
        inj.add_stuck_at(wordline=0, bitline=7, value=1)  # LSB of word 7
        adder, a, b = self._adder_with_injector(inj)
        got = adder.add(0, b)
        expected = (a + b) % (1 << 32)
        mismatches = np.nonzero(got != expected)[0]
        # only word 7 may differ (and only if its true LSB was 0)
        assert set(mismatches).issubset({7})

    def test_high_rber_breaks_addition(self):
        adder, a, b = self._adder_with_injector(FaultInjector(rber=0.05, seed=4))
        got = adder.add(0, b)
        expected = (a + b) % (1 << 32)
        assert not np.array_equal(got, expected)

    def test_esp_scale_rber_is_harmless_in_practice(self):
        # at the ESP-scale error rate the expected flip count over this
        # whole operation is ~3e-9 — the run must be exact
        adder, a, b = self._adder_with_injector(
            FaultInjector(rber=1e-12, seed=5)
        )
        assert np.array_equal(adder.add(0, b), (a + b) % (1 << 32))


class TestErrorProbabilityModel:
    def test_zero_rber(self):
        assert adder_error_probability(32, 1000, 0.0) == 0.0

    def test_monotone_in_exposure(self):
        p1 = adder_error_probability(32, 100, 1e-9)
        p2 = adder_error_probability(32, 10_000, 1e-9)
        assert p2 > p1

    def test_small_rber_approximation(self):
        # P ~ word_bits * words * rber for tiny rates
        p = adder_error_probability(32, 1000, 1e-12)
        assert p == pytest.approx(32 * 1000 * 1e-12, rel=1e-3)

    def test_saturates_at_one(self):
        assert adder_error_probability(32, 10**9, 1e-3) == pytest.approx(1.0)
