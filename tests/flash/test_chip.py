"""Unit tests for the channel/die/plane hierarchy."""

import pytest

from repro.flash import FlashArray, FlashGeometry


@pytest.fixture(scope="module")
def array():
    return FlashArray(FlashGeometry.functional(num_bitlines=64, wordlines=16))


class TestHierarchy:
    def test_plane_count(self, array):
        g = array.geometry
        assert len(array.planes()) == g.channels * g.dies_per_channel * g.planes_per_die

    def test_planes_share_ledgers(self, array):
        planes = array.planes()
        assert planes[0].timing is planes[-1].timing
        assert planes[0].energy is planes[-1].energy

    def test_plane_indexing(self, array):
        assert array.plane(0) is array.planes()[0]
        assert array.plane(3) is array.planes()[3]

    def test_channel_iteration(self, array):
        for channel in array.channels:
            assert len(list(channel.planes())) == (
                array.geometry.dies_per_channel * array.geometry.planes_per_die
            )


class TestMakespan:
    def test_fits_in_one_wave(self, array):
        assert array.parallel_makespan(1e-3, array.num_planes) == pytest.approx(1e-3)

    def test_two_waves(self, array):
        assert array.parallel_makespan(1e-3, array.num_planes + 1) == pytest.approx(
            2e-3
        )

    def test_zero_planes(self, array):
        assert array.parallel_makespan(1e-3, 0) == 0.0

    def test_single_plane(self, array):
        assert array.parallel_makespan(5e-4, 1) == pytest.approx(5e-4)
