"""Unit tests for the Table-3 timing and energy models (Eqns 9-11)."""

import pytest

from repro.flash import (
    EnergyLedger,
    FlashEnergies,
    FlashGeometry,
    FlashTimings,
    PAPER_E_BIT_ADD,
    PAPER_T_BIT_ADD,
    TimingLedger,
)


class TestTimings:
    def test_table3_constants(self):
        t = FlashTimings()
        assert t.t_read_slc == 22.5e-6
        assert t.t_and_or == 20e-9
        assert t.t_latch_transfer == 20e-9
        assert t.t_xor == 30e-9
        assert t.t_dma == 3.3e-6

    def test_eqn10_bop_add(self):
        t = FlashTimings()
        expected = 22.5e-6 + 2 * 30e-9 + 5 * 20e-9 + 4 * 20e-9
        assert t.t_bop_add == pytest.approx(expected)

    def test_eqn9_bit_add(self):
        t = FlashTimings()
        assert t.t_bit_add == pytest.approx(t.t_bop_add + 2 * t.t_dma)

    def test_matches_paper_quoted_value(self):
        # Table 3 quotes 29.38 us; Eqn 9 gives 29.34 us (0.2% difference)
        assert FlashTimings().t_bit_add == pytest.approx(PAPER_T_BIT_ADD, rel=0.005)

    def test_32bit_word_add(self):
        t = FlashTimings()
        assert t.t_word_add(32) == pytest.approx(32 * t.t_bit_add)

    def test_page_transfer(self):
        t = FlashTimings()
        assert t.page_transfer_time() == pytest.approx(4096 / 1.2e9)


class TestEnergies:
    def test_table3_constants(self):
        e = FlashEnergies()
        assert e.e_read_slc == 20.5e-6
        assert e.e_dma == 7.656e-6
        assert e.e_index_gen_per_page == 0.18e-6

    def test_eqn11_structure(self):
        e = FlashEnergies()
        assert e.e_bit_add == pytest.approx(
            e.e_bop_add + 2 * e.e_dma + e.e_index_gen_per_page
        )

    def test_bop_add_dominated_by_read(self):
        e = FlashEnergies()
        assert e.e_read_slc / e.e_bop_add > 0.9

    def test_same_order_as_paper_quote(self):
        # the paper quotes 32.22 uJ; our Eqn-11 evaluation is within 15%
        assert FlashEnergies().e_bit_add == pytest.approx(PAPER_E_BIT_ADD, rel=0.15)


class TestLedgers:
    def test_timing_ledger_accumulates(self):
        ledger = TimingLedger()
        ledger.charge_read()
        ledger.charge_xor()
        ledger.charge_dma()
        t = ledger.timings
        assert ledger.total_seconds == pytest.approx(
            t.t_read_slc + t.t_xor + t.t_dma
        )
        assert ledger.counts == {"read": 1, "xor": 1, "dma": 1}

    def test_timing_ledger_reset(self):
        ledger = TimingLedger()
        ledger.charge_read()
        ledger.reset()
        assert ledger.total_seconds == 0.0 and ledger.counts == {}

    def test_energy_ledger_accumulates(self):
        ledger = EnergyLedger()
        ledger.charge_read()
        ledger.charge_index_gen()
        e = ledger.energies
        assert ledger.total_joules == pytest.approx(
            e.e_read_slc + e.e_index_gen_per_page
        )

    def test_energy_per_kb_ops_scale_with_page(self):
        ledger = EnergyLedger()
        ledger.charge_xor()
        e = ledger.energies
        assert ledger.total_joules == pytest.approx(e.e_xor_per_kb * 4.0)


class TestGeometryParallelism:
    def test_word_add_throughput(self):
        """The effective per-coefficient cost used by the CM-IFP model:
        a full 32-bit add wave across all bitlines of all planes."""
        g = FlashGeometry()
        t = FlashTimings()
        per_coeff = t.t_word_add(32) / g.parallel_bitlines
        assert per_coeff == pytest.approx(0.224e-9, rel=0.01)
