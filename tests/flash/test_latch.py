"""Unit tests for the NAND peripheral latch circuitry (Figure 4)."""

import numpy as np
import pytest

from repro.flash import NUM_D_LATCHES, PlaneLatches


@pytest.fixture()
def latches():
    return PlaneLatches(num_bitlines=8)


def bits(*values):
    return np.array(values, dtype=np.uint8)


class TestTransfers:
    def test_load_into_s_latch(self, latches):
        latches.load(bits(1, 0, 1, 0, 1, 0, 1, 0))
        assert list(latches.s_latch) == [1, 0, 1, 0, 1, 0, 1, 0]

    def test_sense_from_cells(self, latches):
        latches.sense(bits(0, 1, 1, 0, 0, 1, 1, 0))
        assert list(latches.s_latch) == [0, 1, 1, 0, 0, 1, 1, 0]

    def test_s_to_d_copies(self, latches):
        latches.load(bits(1, 1, 0, 0, 1, 1, 0, 0))
        latches.s_to_d(1)
        assert np.array_equal(latches.d_latches[1], latches.s_latch)

    def test_d_to_s_reverse_path(self, latches):
        latches.load(bits(1, 0, 0, 1, 1, 0, 0, 1))
        latches.s_to_d(0)
        latches.load(bits(0, 0, 0, 0, 0, 0, 0, 0))
        latches.d_to_s(0)
        assert list(latches.s_latch) == [1, 0, 0, 1, 1, 0, 0, 1]

    def test_s_to_d_is_a_copy_not_alias(self, latches):
        latches.load(bits(1, 1, 1, 1, 1, 1, 1, 1))
        latches.s_to_d(2)
        latches.load(bits(0, 0, 0, 0, 0, 0, 0, 0))
        assert latches.d_latches[2].all()

    def test_reset_d(self, latches):
        latches.load(bits(1, 1, 1, 1, 1, 1, 1, 1))
        latches.s_to_d(2)
        latches.reset_d(2)
        assert not latches.d_latches[2].any()

    def test_shape_validation(self, latches):
        with pytest.raises(ValueError):
            latches.load(np.zeros(4, dtype=np.uint8))


class TestBitwiseOps:
    def test_and_sd_truth_table(self, latches):
        latches.load(bits(0, 0, 1, 1, 0, 0, 1, 1))
        latches.s_to_d(0)
        latches.load(bits(0, 1, 0, 1, 0, 1, 0, 1))
        latches.and_sd(0)
        assert list(latches.s_latch) == [0, 0, 0, 1, 0, 0, 0, 1]

    def test_or_sd_truth_table(self, latches):
        latches.load(bits(0, 0, 1, 1, 0, 0, 1, 1))
        latches.s_to_d(0)
        latches.load(bits(0, 1, 0, 1, 0, 1, 0, 1))
        latches.or_sd(0)
        assert list(latches.d_latches[0]) == [0, 1, 1, 1, 0, 1, 1, 1]

    def test_or_result_stays_in_d_latch(self, latches):
        latches.load(bits(1, 0, 0, 0, 0, 0, 0, 0))
        latches.s_to_d(1)
        latches.load(bits(0, 1, 0, 0, 0, 0, 0, 0))
        s_before = latches.s_latch.copy()
        latches.or_sd(1)
        assert np.array_equal(latches.s_latch, s_before)

    def test_xor_dd_truth_table(self, latches):
        latches.load(bits(0, 0, 1, 1, 0, 0, 1, 1))
        latches.s_to_d(1)
        latches.load(bits(0, 1, 0, 1, 0, 1, 0, 1))
        latches.s_to_d(2)
        latches.xor_dd(1, 2)
        assert list(latches.d_latches[1]) == [0, 1, 1, 0, 0, 1, 1, 0]
        # second operand unchanged
        assert list(latches.d_latches[2]) == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_three_d_latches(self, latches):
        assert len(latches.d_latches) == NUM_D_LATCHES == 3


class TestLedgerCharging:
    def test_each_op_charges(self):
        latches = PlaneLatches(8)
        latches.load(bits(0, 0, 0, 0, 0, 0, 0, 0))
        latches.sense(bits(0, 0, 0, 0, 0, 0, 0, 0))
        latches.s_to_d(0)
        latches.d_to_s(0)
        latches.and_sd(0)
        latches.or_sd(0)
        latches.xor_dd(0, 1)
        counts = latches.timing.counts
        assert counts["dma"] == 1
        assert counts["read"] == 1
        assert counts["latch_transfer"] == 2
        assert counts["and_or"] == 3  # load-sense + and + or
        assert counts["xor"] == 1

    def test_time_accumulates(self):
        latches = PlaneLatches(8)
        latches.sense(bits(0, 0, 0, 0, 0, 0, 0, 0))
        assert latches.timing.total_seconds == pytest.approx(
            latches.timing.timings.t_read_slc
        )

    def test_trace_disabled_by_default(self, latches):
        latches.sense(bits(0, 0, 0, 0, 0, 0, 0, 0))
        assert latches.trace.ops == []

    def test_trace_records_when_enabled(self, latches):
        latches.trace.enabled = True
        latches.sense(bits(0, 0, 0, 0, 0, 0, 0, 0))
        latches.s_to_d(1)
        assert latches.trace.ops == ["sense", "s_to_d(1)"]
        assert latches.trace.counts() == {"sense": 1, "s_to_d": 1}
