"""Unit tests for the bop_add µ-program — the 13-step bit-serial
addition of Figure 5."""

import numpy as np
import pytest

from repro.flash import (
    BitSerialAdder,
    FlashArray,
    FlashGeometry,
    FlashTimings,
    PAPER_T_BIT_ADD,
    vertical_to_words,
    words_to_vertical,
)


@pytest.fixture()
def plane():
    geo = FlashGeometry.functional(num_bitlines=128, wordlines=96)
    return FlashArray(geo).plane(0)


class TestVerticalLayout:
    def test_roundtrip(self, rng):
        words = rng.integers(0, 1 << 32, 50).astype(np.int64)
        matrix = words_to_vertical(words, 32, 128)
        assert np.array_equal(vertical_to_words(matrix, 50), words)

    def test_lsb_on_first_row(self):
        matrix = words_to_vertical(np.array([1]), 32, 8)
        assert matrix[0, 0] == 1
        assert not matrix[1:, 0].any()

    def test_too_many_words_raises(self):
        with pytest.raises(ValueError):
            words_to_vertical(np.zeros(9), 8, 8)

    def test_unused_bitlines_zero(self):
        matrix = words_to_vertical(np.array([0xFFFF]), 16, 8)
        assert not matrix[:, 1:].any()


class TestBitSerialAddition:
    def test_addition_exact(self, plane, rng):
        adder = BitSerialAdder(plane, word_bits=32)
        a = rng.integers(0, 1 << 32, 100).astype(np.int64)
        b = rng.integers(0, 1 << 32, 100).astype(np.int64)
        adder.store_words(0, a)
        assert np.array_equal(adder.add(0, b), (a + b) % (1 << 32))

    def test_carry_chain_max_values(self, plane):
        adder = BitSerialAdder(plane, word_bits=32)
        a = np.array([(1 << 32) - 1, (1 << 32) - 1], dtype=np.int64)
        b = np.array([1, (1 << 32) - 1], dtype=np.int64)
        adder.store_words(0, a)
        got = adder.add(0, b)
        assert got[0] == 0  # wraps to zero
        assert got[1] == (1 << 32) - 2

    def test_zero_plus_zero(self, plane):
        adder = BitSerialAdder(plane, word_bits=32)
        adder.store_words(0, np.zeros(4, dtype=np.int64))
        assert not adder.add(0, np.zeros(4, dtype=np.int64)).any()

    def test_addition_is_mod_2_pow_w(self, plane):
        adder = BitSerialAdder(plane, word_bits=16)
        a = np.array([0xFFFF, 0x8000], dtype=np.int64)
        b = np.array([0x0001, 0x8000], dtype=np.int64)
        adder.store_words(1, a)
        got = adder.add(1, b, wl_offset=0)
        assert list(got) == [0, 0]

    def test_wordline_offset_slots(self, plane, rng):
        adder = BitSerialAdder(plane, word_bits=32)
        a1 = rng.integers(0, 1 << 32, 10).astype(np.int64)
        a2 = rng.integers(0, 1 << 32, 10).astype(np.int64)
        adder.store_words(0, a1, wl_offset=0)
        adder.store_words(0, a2, wl_offset=32)
        b = rng.integers(0, 1 << 32, 10).astype(np.int64)
        assert np.array_equal(adder.add(0, b, wl_offset=0), (a1 + b) % (1 << 32))
        assert np.array_equal(adder.add(0, b, wl_offset=32), (a2 + b) % (1 << 32))

    def test_double_program_raises(self, plane, rng):
        adder = BitSerialAdder(plane, word_bits=32)
        words = rng.integers(0, 1 << 32, 4).astype(np.int64)
        adder.store_words(0, words)
        with pytest.raises(RuntimeError):
            adder.store_words(0, words)

    def test_load_words_roundtrip(self, plane, rng):
        adder = BitSerialAdder(plane, word_bits=32)
        words = rng.integers(0, 1 << 32, 16).astype(np.int64)
        adder.store_words(2, words, wl_offset=32)
        assert np.array_equal(adder.load_words(2, 16, wl_offset=32), words)

    def test_stored_operand_unmodified_by_add(self, plane, rng):
        # bop_add computes entirely in latches: no program/erase cycles
        adder = BitSerialAdder(plane, word_bits=32)
        a = rng.integers(0, 1 << 32, 8).astype(np.int64)
        adder.store_words(0, a)
        erase_before = plane.block(0).erase_count
        adder.add(0, rng.integers(0, 1 << 32, 8).astype(np.int64))
        assert np.array_equal(adder.load_words(0, 8), a)
        assert plane.block(0).erase_count == erase_before


class TestOpCountsMatchEqn10:
    def test_per_word_counts(self, plane, rng):
        adder = BitSerialAdder(plane, word_bits=32)
        adder.store_words(0, rng.integers(0, 1 << 32, 4).astype(np.int64))
        plane.timing.reset()
        adder.add(0, rng.integers(0, 1 << 32, 4).astype(np.int64))
        counts = plane.timing.counts
        expected = adder.expected_op_counts()
        # the carry-reset adds one extra latch transfer
        assert counts["read"] == expected["read"]
        assert counts["xor"] == expected["xor"]
        assert counts["and_or"] == expected["and_or"]
        assert counts["dma"] == expected["dma"]
        assert counts["latch_transfer"] == expected["latch_transfer"] + 1

    def test_total_latency_matches_eqn9(self, plane, rng):
        adder = BitSerialAdder(plane, word_bits=32)
        adder.store_words(0, rng.integers(0, 1 << 32, 4).astype(np.int64))
        plane.timing.reset()
        adder.add(0, rng.integers(0, 1 << 32, 4).astype(np.int64))
        t = FlashTimings()
        expected = 32 * t.t_bit_add + t.t_latch_transfer
        assert plane.timing.total_seconds == pytest.approx(expected)

    def test_t_bit_add_matches_paper(self):
        # Eqn 9 with Table 3 constants reproduces the quoted 29.38 us
        assert FlashTimings().t_bit_add == pytest.approx(PAPER_T_BIT_ADD, rel=0.01)

    def test_ops_per_bit_budget(self):
        assert BitSerialAdder.OPS_PER_BIT == {
            "read": 1,
            "xor": 2,
            "latch_transfer": 5,
            "and_or": 4,
            "dma": 2,
        }
