"""Property-based tests: the in-flash adder is exactly integer addition
mod 2^W for arbitrary operands and word widths."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flash import BitSerialAdder, FlashArray, FlashGeometry
from repro.flash.microprogram import vertical_to_words, words_to_vertical


def fresh_adder(word_bits):
    geo = FlashGeometry.functional(num_bitlines=64, wordlines=2 * word_bits)
    return BitSerialAdder(FlashArray(geo).plane(0), word_bits=word_bits)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(0, (1 << 32) - 1), min_size=1, max_size=64),
    st.data(),
)
def test_add_equals_integer_add_mod_2_32(a_words, data):
    b_words = data.draw(
        st.lists(
            st.integers(0, (1 << 32) - 1),
            min_size=len(a_words),
            max_size=len(a_words),
        )
    )
    a = np.array(a_words, dtype=np.int64)
    b = np.array(b_words, dtype=np.int64)
    adder = fresh_adder(32)
    adder.store_words(0, a)
    assert np.array_equal(adder.add(0, b), (a + b) % (1 << 32))


@settings(max_examples=20, deadline=None)
@given(
    st.sampled_from([8, 16, 24]),
    st.data(),
)
def test_add_for_other_word_widths(word_bits, data):
    count = data.draw(st.integers(1, 32))
    a = np.array(
        data.draw(
            st.lists(st.integers(0, (1 << word_bits) - 1), min_size=count, max_size=count)
        ),
        dtype=np.int64,
    )
    b = np.array(
        data.draw(
            st.lists(st.integers(0, (1 << word_bits) - 1), min_size=count, max_size=count)
        ),
        dtype=np.int64,
    )
    adder = fresh_adder(word_bits)
    adder.store_words(0, a)
    assert np.array_equal(adder.add(0, b), (a + b) % (1 << word_bits))


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, (1 << 32) - 1), min_size=1, max_size=64))
def test_vertical_layout_roundtrip(words):
    arr = np.array(words, dtype=np.int64)
    matrix = words_to_vertical(arr, 32, 64)
    assert np.array_equal(vertical_to_words(matrix, len(arr)), arr)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, (1 << 16) - 1), min_size=1, max_size=32))
def test_add_zero_is_identity(words):
    a = np.array(words, dtype=np.int64)
    adder = fresh_adder(16)
    adder.store_words(0, a)
    assert np.array_equal(adder.add(0, np.zeros(len(a), dtype=np.int64)), a)
