"""Unit tests for the flash structural model: blocks, planes, geometry."""

import numpy as np
import pytest

from repro.flash import Block, CellMode, FlashGeometry, Plane
from repro.flash.timing import FlashTimings


class TestFlashGeometry:
    def test_paper_geometry_totals(self):
        g = FlashGeometry()
        assert g.total_planes == 8 * 8 * 2 == 128
        assert g.bitlines_per_plane == 4096 * 8

    def test_parallel_bitlines(self):
        g = FlashGeometry()
        assert g.parallel_bitlines == 128 * 32768

    def test_capacity_tlc_same_order_as_paper(self):
        # Table 3 labels the SSD "2 TB", but its own geometry numbers
        # (128 planes x 2048 blocks x 196 WLs x 4 KiB pages x 3 b/cell)
        # evaluate to ~0.63 TB; we implement the stated geometry.
        g = FlashGeometry()
        assert 0.5e12 < g.capacity_bytes(CellMode.TLC) < 4e12

    def test_slc_capacity_is_one_third(self):
        g = FlashGeometry()
        assert g.capacity_bytes(CellMode.SLC) * 3 == g.capacity_bytes(CellMode.TLC)

    def test_functional_geometry_is_small(self):
        g = FlashGeometry.functional(num_bitlines=256, wordlines=64)
        assert g.bitlines_per_plane == 256
        assert g.wordlines_per_block == 64


class TestBlock:
    def test_program_and_read(self, rng):
        block = Block(wordlines=8, bitlines=16)
        bits = rng.integers(0, 2, 16).astype(np.uint8)
        block.program_wordline(3, bits)
        assert np.array_equal(block.read_wordline(3), bits)

    def test_program_twice_requires_erase(self, rng):
        block = Block(wordlines=8, bitlines=16)
        bits = rng.integers(0, 2, 16).astype(np.uint8)
        block.program_wordline(0, bits)
        with pytest.raises(RuntimeError):
            block.program_wordline(0, bits)
        block.erase()
        block.program_wordline(0, bits)  # fine after erase

    def test_erase_clears_and_counts(self, rng):
        block = Block(wordlines=4, bitlines=8)
        block.program_wordline(1, np.ones(8, dtype=np.uint8))
        block.erase()
        assert not block.cells.any()
        assert block.erase_count == 1

    def test_shape_validation(self):
        block = Block(wordlines=4, bitlines=8)
        with pytest.raises(ValueError):
            block.program_wordline(0, np.ones(4, dtype=np.uint8))


class TestPlane:
    @pytest.fixture()
    def plane(self):
        return Plane(FlashGeometry.functional(num_bitlines=64, wordlines=16))

    def test_block_caching(self, plane):
        assert plane.block(0) is plane.block(0)
        assert plane.block(0) is not plane.block(1)

    def test_block_range_check(self, plane):
        with pytest.raises(IndexError):
            plane.block(10_000)

    def test_read_to_latch_charges_slc_latency(self, plane, rng):
        bits = rng.integers(0, 2, 64).astype(np.uint8)
        plane.block(0, CellMode.SLC).program_wordline(2, bits)
        plane.read_to_latch(0, 2)
        assert np.array_equal(plane.latches.s_latch, bits)
        assert plane.timing.total_seconds == pytest.approx(
            FlashTimings().t_read_slc
        )

    def test_tlc_read_slower(self):
        plane = Plane(FlashGeometry.functional(num_bitlines=64, wordlines=16))
        plane.block(0, CellMode.TLC).program_wordline(
            0, np.zeros(64, dtype=np.uint8)
        )
        plane.read_to_latch(0, 0)
        t = FlashTimings()
        assert plane.timing.total_seconds == pytest.approx(t.t_read_tlc)
        assert t.t_read_tlc > t.t_read_slc
