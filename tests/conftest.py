"""Shared fixtures.

Key generation and context construction are the expensive parts of the
suite, so everything reusable is session-scoped.  Fixtures come in
"small" (n=64) and "ring" (n=256) sizes; both use the paper's packing
semantics (t = 2**16, q = 2**32) unless a test needs multiplication
headroom.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.he import BFVContext, BFVParams, KeyGenerator


@pytest.fixture(scope="session")
def small_params() -> BFVParams:
    return BFVParams.test_small(64)


@pytest.fixture(scope="session")
def small_ctx(small_params) -> BFVContext:
    return BFVContext(small_params, seed=101)


@pytest.fixture(scope="session")
def small_keys(small_params):
    gen = KeyGenerator(small_params, seed=101)
    sk = gen.secret_key()
    pk = gen.public_key(sk)
    return sk, pk


@pytest.fixture(scope="session")
def mult_params() -> BFVParams:
    """Parameters with multiplication noise headroom (arithmetic baseline)."""
    return BFVParams.arithmetic_baseline(n=64, t=256)


@pytest.fixture(scope="session")
def mult_ctx(mult_params) -> BFVContext:
    return BFVContext(mult_params, seed=202)


@pytest.fixture(scope="session")
def mult_keys(mult_params):
    gen = KeyGenerator(mult_params, seed=202)
    sk = gen.secret_key()
    pk = gen.public_key(sk)
    rlk = gen.relin_key(sk)
    return sk, pk, rlk


@pytest.fixture(scope="session")
def bool_params() -> BFVParams:
    return BFVParams.boolean_baseline(n=128)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
