"""Tests for the hardware performance models (Figures 10 & 12) — these
assert the *shape* claims of the paper's evaluation."""

import pytest

from repro.eval.calibration import DATABASE_SIZES, GIB, QUERY_SIZES
from repro.ndp import (
    HardwarePerformanceModel,
    HardwareSystem,
    OverheadReport,
    WorkloadPoint,
)


@pytest.fixture(scope="module")
def model():
    return HardwarePerformanceModel()


class TestWorkloadPoint:
    def test_coefficient_count(self):
        w = WorkloadPoint(encrypted_bytes=128 * GIB, query_bits=16)
        assert w.num_coefficients == 128 * GIB / 4

    def test_variants_formula(self):
        assert WorkloadPoint(GIB, 16).variants == 16
        assert WorkloadPoint(GIB, 32).variants == 32
        assert WorkloadPoint(GIB, 256).variants == 256
        assert WorkloadPoint(GIB, 8).variants == 16  # minimum one chunk

    def test_coeff_adds(self):
        w = WorkloadPoint(4 * GIB, 16)
        assert w.coeff_adds_per_query == w.num_coefficients * 16


class TestFigure10Shape:
    def test_cm_ifp_fastest_at_small_queries(self, model):
        w = WorkloadPoint(128 * GIB, 16)
        s = model.speedups_over_sw(w)
        assert s[HardwareSystem.CM_IFP] > s[HardwareSystem.CM_PUM]
        assert s[HardwareSystem.CM_IFP] > s[HardwareSystem.CM_PUM_SSD]

    def test_cm_ifp_speedup_decreases_with_query_size(self, model):
        rows = model.figure10(list(QUERY_SIZES))
        ifp = [r["cm_ifp"] for r in rows]
        assert ifp == sorted(ifp, reverse=True)

    def test_cm_ifp_headline_range(self, model):
        """Paper: 76.6x - 216.0x over CM-SW."""
        rows = model.figure10(list(QUERY_SIZES))
        for r in rows:
            assert 60 < r["cm_ifp"] < 300

    def test_cm_pum_overtakes_ifp_at_large_queries(self, model):
        """Obs. 3: CM-PuM wins at 256-bit queries (paper: by 1.21x)."""
        w = WorkloadPoint(128 * GIB, 256)
        s = model.speedups_over_sw(w)
        assert s[HardwareSystem.CM_PUM] > s[HardwareSystem.CM_IFP]
        assert s[HardwareSystem.CM_PUM] / s[HardwareSystem.CM_IFP] < 2.0

    def test_ifp_over_pum_ssd_ratio(self, model):
        """Obs. 2: CM-IFP / CM-PuM-SSD between ~2.9x and ~4x."""
        for y in QUERY_SIZES:
            s = model.speedups_over_sw(WorkloadPoint(128 * GIB, y))
            ratio = s[HardwareSystem.CM_IFP] / s[HardwareSystem.CM_PUM_SSD]
            assert 2.5 < ratio < 4.5, y

    def test_pum_beats_pum_ssd_single_query(self, model):
        """Obs. 4: CM-PuM outperforms CM-PuM-SSD by 1.5-3.5x."""
        for y in QUERY_SIZES:
            s = model.speedups_over_sw(WorkloadPoint(128 * GIB, y))
            ratio = s[HardwareSystem.CM_PUM] / s[HardwareSystem.CM_PUM_SSD]
            assert 1.1 < ratio < 4.0, y

    def test_average_ifp_speedup_near_paper(self, model):
        """Abstract: CM-IFP improves over CM-SW by 136.9x on average."""
        rows = model.figure10(list(QUERY_SIZES))
        avg = sum(r["cm_ifp"] for r in rows) / len(rows)
        assert 100 < avg < 180


class TestFigure12Shape:
    def test_crossover_at_dram_capacity(self, model):
        """CM-PuM wins below 32 GB (fits DRAM), CM-IFP above."""
        rows = {r["db_gib"]: r for r in model.figure12(list(DATABASE_SIZES))}
        assert rows[8.0]["cm_pum"] > rows[8.0]["cm_ifp"]
        assert rows[128.0]["cm_ifp"] > rows[128.0]["cm_pum"]

    def test_ifp_advantage_grows_beyond_capacity(self, model):
        rows = {r["db_gib"]: r for r in model.figure12(list(DATABASE_SIZES))}
        assert rows[64.0]["cm_ifp"] > rows[32.0]["cm_ifp"]

    def test_flat_below_capacity(self, model):
        rows = {r["db_gib"]: r for r in model.figure12(list(DATABASE_SIZES))}
        assert rows[8.0]["cm_ifp"] == pytest.approx(rows[32.0]["cm_ifp"], rel=0.01)

    def test_ifp_wins_overall_average(self, model):
        rows = model.figure12(list(DATABASE_SIZES))
        avg_ifp = sum(r["cm_ifp"] for r in rows) / len(rows)
        avg_pum = sum(r["cm_pum"] for r in rows) / len(rows)
        assert avg_ifp > avg_pum


class TestModelInternals:
    def test_sw_rescans_beyond_dram(self, model):
        per_query_small = model.time_cm_sw(WorkloadPoint(8 * GIB, 16, 1000)) / 1000
        per_query_large = model.time_cm_sw(WorkloadPoint(64 * GIB, 16, 1000)) / 1000
        # >8x per-query cost growth: scan repeats per query beyond DRAM
        assert per_query_large > 8 * per_query_small

    def test_ifp_time_linear_in_queries(self, model):
        t1 = model.time_cm_ifp(WorkloadPoint(8 * GIB, 16, 1))
        t10 = model.time_cm_ifp(WorkloadPoint(8 * GIB, 16, 10))
        assert t10 == pytest.approx(10 * t1, rel=0.01)

    def test_c_ifp_derived_from_flash_sim(self, model):
        # per-coefficient in-flash cost: Eqn 9 over the bitline parallelism
        cal = model.cal
        expected = cal.timings.t_word_add(32) / cal.geometry.parallel_bitlines
        assert cal.c_ifp == pytest.approx(expected)

    def test_time_dispatch(self, model):
        w = WorkloadPoint(8 * GIB, 16)
        for system in HardwareSystem:
            assert model.time(system, w) > 0


class TestOverheadReport:
    @pytest.fixture(scope="class")
    def report(self):
        return OverheadReport()

    def test_result_buffer_half_mb(self, report):
        assert report.result_buffer_bytes() == 512 * 1024  # §6.3: 0.5 MB

    def test_microprogram_under_1kb(self, report):
        assert report.microprogram_bytes() < 1024

    def test_area_overhead(self, report):
        assert report.area_overhead_fraction() == pytest.approx(0.006)

    def test_capacity_loss(self, report):
        assert report.slc_capacity_loss_fraction(0.5) == pytest.approx(1 / 3)

    def test_hw_transposition(self, report):
        assert report.transposition_hw_latency() == pytest.approx(158e-9)
        assert report.transposition_hw_area_mm2() == pytest.approx(0.24)

    def test_aes_unit(self, report):
        assert report.aes_latency() == pytest.approx(12.6e-9)
        assert report.aes_area_mm2() == pytest.approx(0.13)
