"""Unit tests for the Figure 3 data-movement model."""

import pytest

from repro.eval.calibration import GIB, TRANSFER_SIZES
from repro.ndp import ComputeSite, TransferLatencyModel


@pytest.fixture(scope="module")
def model():
    return TransferLatencyModel()


class TestOrdering:
    @pytest.mark.parametrize("size_gib", [8, 32, 128, 256])
    def test_storage_fastest_cpu_slowest(self, model, size_gib):
        size = size_gib * GIB
        storage = model.latency(size, ComputeSite.STORAGE)
        dram = model.latency(size, ComputeSite.MAIN_MEMORY)
        cpu = model.latency(size, ComputeSite.CPU)
        assert storage < dram < cpu

    def test_latencies_scale_with_size(self, model):
        for site in ComputeSite:
            assert model.latency(16 * GIB, site) > model.latency(8 * GIB, site)


class TestPaperClaims:
    def test_storage_reduces_over_80_percent(self, model):
        """Key Takeaway 2: computation in the SSD controller reduces
        transfer latency by >80% for all database sizes."""
        for size in TRANSFER_SIZES:
            norm = model.normalized_to_cpu(size)
            assert norm[ComputeSite.STORAGE] < 20.0, size

    def test_main_memory_benefit_shrinks_beyond_dram(self, model):
        """Figure 3: DRAM's advantage diminishes once the database
        exceeds the 32 GB DRAM capacity."""
        small = model.normalized_to_cpu(8 * GIB)[ComputeSite.MAIN_MEMORY]
        large = model.normalized_to_cpu(256 * GIB)[ComputeSite.MAIN_MEMORY]
        assert large > small

    def test_main_memory_around_75_at_8gb(self, model):
        norm = model.normalized_to_cpu(8 * GIB)[ComputeSite.MAIN_MEMORY]
        assert 65.0 < norm < 85.0  # paper: ~75

    def test_cpu_is_reference(self, model):
        for size in (8 * GIB, 128 * GIB):
            assert model.normalized_to_cpu(size)[ComputeSite.CPU] == pytest.approx(
                100.0
            )


class TestSweep:
    def test_rows(self, model):
        rows = model.sweep(list(TRANSFER_SIZES))
        assert len(rows) == len(TRANSFER_SIZES)
        assert rows[0]["size_gib"] == 8.0
        assert set(rows[0]) == {"size_gib", "cpu", "main_memory", "storage"}

    def test_restage_only_beyond_capacity(self, model):
        # below DRAM capacity the main-memory path has no re-stage term
        per_gib_small = model.main_memory_latency(8 * GIB) / 8
        per_gib_mid = model.main_memory_latency(32 * GIB) / 32
        assert per_gib_small == pytest.approx(per_gib_mid)
        per_gib_large = model.main_memory_latency(64 * GIB) / 64
        assert per_gib_large > per_gib_small
