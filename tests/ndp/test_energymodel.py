"""Tests for the hardware energy model (Figure 11 shape claims)."""

import pytest

from repro.eval.calibration import GIB, QUERY_SIZES
from repro.ndp import HardwareEnergyModel, HardwareSystem, WorkloadPoint


@pytest.fixture(scope="module")
def model():
    return HardwareEnergyModel()


class TestFigure11Shape:
    def test_ifp_largest_savings_everywhere(self, model):
        for y in QUERY_SIZES:
            s = model.savings_over_sw(WorkloadPoint(128 * GIB, y))
            assert s[HardwareSystem.CM_IFP] > s[HardwareSystem.CM_PUM]
            assert s[HardwareSystem.CM_IFP] > s[HardwareSystem.CM_PUM_SSD]

    def test_ifp_savings_decrease_with_query_size(self, model):
        rows = model.figure11(list(QUERY_SIZES))
        vals = [r["cm_ifp"] for r in rows]
        assert vals == sorted(vals, reverse=True)

    def test_ifp_savings_range(self, model):
        """Paper: 156.2x - 454.5x."""
        rows = model.figure11(list(QUERY_SIZES))
        for r in rows:
            assert 120 < r["cm_ifp"] < 550

    def test_pum_ssd_slightly_better_than_pum(self, model):
        """Obs. 2: CM-PuM-SSD ~1.06x more energy efficient than CM-PuM
        (cheaper internal data movement)."""
        for y in QUERY_SIZES:
            s = model.savings_over_sw(WorkloadPoint(128 * GIB, y))
            ratio = s[HardwareSystem.CM_PUM_SSD] / s[HardwareSystem.CM_PUM]
            assert 1.0 < ratio < 1.3, y

    def test_average_ifp_savings_near_paper(self, model):
        """Abstract: 256.4x average energy reduction."""
        rows = model.figure11(list(QUERY_SIZES))
        avg = sum(r["cm_ifp"] for r in rows) / len(rows)
        assert 200 < avg < 320


class TestEnergyInternals:
    def test_sw_energy_is_power_times_time(self, model):
        w = WorkloadPoint(128 * GIB, 16)
        assert model.energy_cm_sw(w) == pytest.approx(
            model._perf.time_cm_sw(w) * model.cal.e_sw_watts
        )

    def test_pum_fetch_energy_scales_with_restaging(self, model):
        small = model.energy_cm_pum(WorkloadPoint(8 * GIB, 16, 1000))
        large = model.energy_cm_pum(WorkloadPoint(64 * GIB, 16, 1000))
        assert large > 8 * small / 8  # sanity
        # beyond capacity, fetch repeats per query: superlinear growth
        assert large / small > 64 / 8

    def test_ifp_energy_has_no_fetch_term(self, model):
        w1 = WorkloadPoint(8 * GIB, 16)
        w2 = WorkloadPoint(16 * GIB, 16)
        # exactly linear in data size: pure compute
        assert model.energy_cm_ifp(w2) == pytest.approx(2 * model.energy_cm_ifp(w1))

    def test_dispatch(self, model):
        w = WorkloadPoint(8 * GIB, 16)
        for system in HardwareSystem:
            assert model.energy(system, w) > 0
