"""Unit tests for the SIMDRAM PuM engine."""

import numpy as np
import pytest

from repro.ndp import SimdramEngine, SimdramSubarray, SimdramTimings, majority3


class TestMajority:
    @pytest.mark.parametrize(
        "a,b,c,expected",
        [
            (0, 0, 0, 0),
            (1, 0, 0, 0),
            (1, 1, 0, 1),
            (1, 1, 1, 1),
            (0, 1, 1, 1),
        ],
    )
    def test_truth_table(self, a, b, c, expected):
        arr = lambda v: np.array([v], dtype=np.uint8)
        assert majority3(arr(a), arr(b), arr(c))[0] == expected


class TestSubarrayAdd:
    def test_addition_exact(self, rng):
        sub = SimdramSubarray(num_columns=64, word_bits=32)
        a = rng.integers(0, 1 << 32, 40).astype(np.int64)
        b = rng.integers(0, 1 << 32, 40).astype(np.int64)
        sub.store_operand("a", a)
        sub.store_operand("b", b)
        sub.add("a", "b", "out")
        assert np.array_equal(sub.load_operand("out", 40), (a + b) % (1 << 32))

    def test_matches_flash_adder_semantics(self, rng):
        """PuM and IFP adders implement the same mod-2^32 addition."""
        from repro.flash import BitSerialAdder, FlashArray, FlashGeometry

        a = rng.integers(0, 1 << 32, 16).astype(np.int64)
        b = rng.integers(0, 1 << 32, 16).astype(np.int64)

        sub = SimdramSubarray(num_columns=32, word_bits=32)
        sub.store_operand("a", a)
        sub.store_operand("b", b)
        sub.add("a", "b", "out")
        pum = sub.load_operand("out", 16)

        plane = FlashArray(FlashGeometry.functional(num_bitlines=32, wordlines=64)).plane(0)
        adder = BitSerialAdder(plane, 32)
        adder.store_words(0, a)
        ifp = adder.add(0, b)
        assert np.array_equal(pum, ifp)

    def test_bulk_op_charging(self, rng):
        sub = SimdramSubarray(num_columns=16, word_bits=8)
        sub.store_operand("a", np.zeros(4, dtype=np.int64))
        sub.store_operand("b", np.zeros(4, dtype=np.int64))
        sub.add("a", "b", "out")
        assert sub.bulk_ops == 8 * 7  # word_bits * ops_per_bit
        assert sub.simulated_seconds == pytest.approx(56 * 49e-9)
        assert sub.simulated_joules == pytest.approx(56 * 0.864e-9)


class TestTimings:
    def test_word_add_latency(self):
        t = SimdramTimings()
        assert t.t_word_add(32) == pytest.approx(32 * 7 * 49e-9)

    def test_dram_add_faster_than_flash_add(self):
        """Obs. 3 of Fig 10: per-op, DRAM reads beat flash reads."""
        from repro.flash import FlashTimings

        assert SimdramTimings().t_word_add(32) < FlashTimings().t_word_add(32)


class TestEngine:
    def test_makespan_waves(self):
        engine = SimdramEngine(num_subarrays=2, word_bits=32)
        one_wave = engine.parallel_words
        t = engine.timings.t_word_add(32)
        assert engine.makespan(one_wave) == pytest.approx(t)
        assert engine.makespan(one_wave + 1) == pytest.approx(2 * t)

    def test_concurrency_limit(self):
        engine = SimdramEngine(num_subarrays=8, concurrent_subarrays=2)
        assert engine.parallel_words == 2 * engine.subarrays[0].num_columns

    def test_energy_amortized_per_column(self):
        engine = SimdramEngine(num_subarrays=1)
        cols = engine.subarrays[0].num_columns
        per_add = engine.energy(1)
        assert per_add == pytest.approx(engine.timings.e_word_add(32) / cols)
