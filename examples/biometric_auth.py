#!/usr/bin/env python3
"""Secure biometric authentication against an encrypted gallery —
the paper's third motivating application (§1: "biometric matching").

The server stores only encrypted templates and performs only
homomorphic additions; the client learns which enrolled identity (if
any) its probe matched, and the server learns nothing.

Run:  python examples/biometric_auth.py
"""

import numpy as np

from repro.core import ClientConfig
from repro.he import BFVParams
from repro.workloads.biometric import (
    BiometricWorkloadGenerator,
    SecureBiometricMatcher,
)


def main() -> None:
    gen = BiometricWorkloadGenerator(seed=11)
    gallery = gen.generate(num_subjects=8, template_bits=128)
    matcher = SecureBiometricMatcher(
        gallery, ClientConfig(BFVParams.test_small(128))
    )
    print(
        f"enrolled {gallery.size} subjects x {gallery.template_bits}-bit "
        f"templates ({matcher.pipeline.db.serialized_bytes} encrypted bytes "
        "on the server)\n"
    )

    # Genuine probes: every enrollee authenticates as themselves.
    for enrollee in gallery.enrollees[:3]:
        result = matcher.authenticate(enrollee.template)
        print(
            f"genuine probe for {enrollee.subject_id}: "
            f"{'ACCEPT as ' + result.subject_id if result.accepted else 'REJECT'} "
            f"({result.hom_additions} Hom-Adds)"
        )

    # An impostor probe: random template, not enrolled.
    rng = np.random.default_rng(99)
    impostor = rng.integers(0, 2, gallery.template_bits).astype(np.uint8)
    result = matcher.authenticate(impostor)
    print(f"impostor probe: {'ACCEPT?!' if result.accepted else 'REJECT'}")

    # A degraded capture: 5% bit flips — exact matching rejects it,
    # which is the boundary between this paper's exact matching and the
    # approximate-matching literature it cites.
    noisy = gen.noisy_probe(gallery.enrollees[0].template, flip_fraction=0.05)
    result = matcher.authenticate(noisy)
    print(
        f"noisy genuine probe (5% flips): "
        f"{'ACCEPT' if result.accepted else 'REJECT (exact matcher; see docstring)'}"
    )


if __name__ == "__main__":
    main()
