"""Regenerate every table and figure of the paper's evaluation as ASCII
tables (the same output the benchmark suite writes to benchmarks/out/).

Run:  python examples/paper_figures.py            # everything
      python examples/paper_figures.py figure10   # one figure
"""

import sys

from repro.eval.runner import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
