#!/usr/bin/env python3
"""Trace-driven load testing with ``repro.load``.

Three short acts over the scenario registry:

1. **Record** a seeded Poisson request trace for the ``database``
   scenario (32-bit encrypted key lookups) and replay it bit-for-bit
   from disk — the record/replay contract that makes load results
   reproducible across machines.
2. **Drive** the trace open-loop against an in-process ``bfv-sharded``
   session and read the per-scenario SLO report (p50/p95/p99,
   achieved vs offered q/s, exact shed accounting).
3. **Clamp**: the ``readmapper`` scenario needs batching + wildcards,
   so pointing it at the plain ``bfv`` engine is refused up front by
   the capability check instead of failing mid-run.

Run:  python examples/load_test.py
"""

import sys
import tempfile
from pathlib import Path

import repro
from repro.api import CapabilityError, DEFAULT_REGISTRY
from repro.he import BFVParams
from repro.load import (
    SCENARIO_REGISTRY,
    LoadReport,
    LoadTrace,
    PoissonArrivals,
    ScenarioSlo,
    SessionTarget,
    generate_trace,
    run_trace,
)

PARAMS = BFVParams.test_small(64)
SEED = 42


def record_and_replay(tmp: Path) -> LoadTrace:
    print("=== act 1: record a trace, replay it from disk ===")
    scenario = SCENARIO_REGISTRY.create("database", seed=SEED)
    trace = generate_trace(
        scenario, PoissonArrivals(), rate=25.0, max_requests=12
    )
    path = tmp / "database.jsonl"
    trace.save(path)
    reloaded = LoadTrace.load(path)
    same = [
        (a.at, a.request, a.expected) for a in trace.events
    ] == [(b.at, b.request, b.expected) for b in reloaded.events]
    print(
        f"recorded {trace.num_requests} requests "
        f"({trace.offered_qps:.1f} q/s offered) -> {path.name}; "
        f"reload identical: {same}"
    )
    if not same:
        raise SystemExit("trace replay diverged")
    return reloaded


def drive(trace: LoadTrace) -> LoadReport:
    print()
    print("=== act 2: open-loop run against an in-process session ===")
    scenario = SCENARIO_REGISTRY.create(trace.scenario, seed=trace.seed)
    session = repro.open_session(
        "bfv-sharded", params=PARAMS, num_shards=2, key_seed=SEED
    )
    target = SessionTarget(session, owns_session=True)
    try:
        scenario.check(target.capabilities, target.describe())
        target.outsource(scenario.db_bits())
        run = run_trace(trace, target)
        stats = target.stats()
    finally:
        target.close()
    report = LoadReport(
        target="in-process:bfv-sharded",
        arrival=trace.arrival,
        rate=trace.rate,
        seed=trace.seed,
        scenarios=[ScenarioSlo.from_run(trace, run)],
        executor=str(stats.get("executor", "")),
    )
    print(report.table())
    return report


def clamp() -> None:
    print()
    print("=== act 3: capability clamp before any ciphertext moves ===")
    scenario = SCENARIO_REGISTRY.create("readmapper", seed=SEED)
    caps = DEFAULT_REGISTRY.spec("bfv").capabilities
    try:
        scenario.check(caps, "bfv")
    except CapabilityError as exc:
        print(f"readmapper vs plain bfv refused as expected:\n  {exc}")
        return
    raise SystemExit("capability clamp did not fire")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        trace = record_and_replay(Path(tmp))
        report = drive(trace)
    clamp()
    ok = report.balanced and not report.failed and not report.mismatches
    print()
    print(
        f"accounting balanced: {report.balanced}; failures: "
        f"{report.failed}; oracle mismatches: {report.mismatches}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
