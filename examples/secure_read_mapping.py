#!/usr/bin/env python3
"""Secure DNA read mapping — the paper's seeding case study end to end.

A reference genome is packed, encrypted and outsourced once; reads are
cut into seeds, each seed runs one Hom-Add-only secure search, and seed
hits vote for mapping positions.  The server never sees the genome, the
reads, or which positions matched.

Run:  python examples/secure_read_mapping.py
"""

import numpy as np

from repro.core import ClientConfig
from repro.he import BFVParams
from repro.workloads import DnaWorkloadGenerator, SecureReadMapper


def main() -> None:
    rng_seed = 42
    generator = DnaWorkloadGenerator(seed=rng_seed)
    workload = generator.generate(
        num_bases=640, read_length_bases=24, num_reads=4, chunk_aligned=True
    )
    print(f"reference genome: {workload.num_bases} bases "
          f"({workload.num_bases * 2} bits before encryption)")

    mapper = SecureReadMapper(
        workload.genome,
        ClientConfig(BFVParams.test_small(128)),
        seed_bases=8,
    )
    print(f"outsourced encrypted reference "
          f"({mapper.pipeline.db.serialized_bytes} ciphertext bytes)\n")

    correct = 0
    for i, read in enumerate(workload.reads):
        result = mapper.map_read(read.sequence)
        verified = mapper.verify(result)
        status = "OK " if verified == read.position_bases else "MISS"
        correct += verified == read.position_bases
        best = result.best
        print(
            f"read {i}: planted@{read.position_bases:>4} -> "
            f"best candidate {best.position_bases if best else '-':>4} "
            f"({best.votes if best else 0}/{result.seeds_searched} seed votes, "
            f"{result.hom_additions} Hom-Adds) {status}"
        )

    # A read that does not come from the genome should not map.
    rng = np.random.default_rng(rng_seed + 1)
    from repro.workloads import random_genome

    foreign = random_genome(24, rng)
    result = mapper.map_read(foreign)
    print(f"\nforeign read: {'no confident mapping' if not result.confident else 'mapped?!'} "
          f"({len(result.candidates)} low-vote candidates)")

    print(f"\nmapped {correct}/{len(workload.reads)} planted reads correctly; "
          "the server performed additions on ciphertexts only.")


if __name__ == "__main__":
    main()
