"""Batched queries and wildcard patterns — the extension features.

* :class:`repro.core.BatchSearcher` runs the Figure-9/12-style query
  batches with query deduplication.
* :class:`repro.core.WildcardSearcher` matches patterns with don't-care
  bytes using only Hom-Add sweeps (one per literal segment).

Run:  python examples/batch_and_wildcards.py
"""

import numpy as np

from repro.core import (
    BatchSearcher,
    ClientConfig,
    SecureStringMatchPipeline,
    WildcardPattern,
    WildcardSearcher,
)
from repro.he import BFVParams
from repro.utils.bits import text_to_bits
from repro.workloads import DatabaseWorkloadGenerator


def batched_lookups() -> None:
    print("=== batched key lookups (case study 2 at batch scale) ===")
    gen = DatabaseWorkloadGenerator(seed=77)
    db = gen.generate(num_records=16, key_bytes=8, value_bytes=8)
    mix = gen.query_mix(db, num_queries=30, hit_fraction=0.7)

    searcher = BatchSearcher(
        SecureStringMatchPipeline(ClientConfig(BFVParams.test_small(64), key_seed=78))
    )
    searcher.outsource(db.flatten_bits())
    report = searcher.search_batch([db.key_bits(k) for k in mix.keys])
    print(
        f"{report.num_queries} queries ({len(set(mix.keys))} distinct, "
        f"{searcher.deduplicated_hits} served from the batch cache)"
    )
    print(
        f"total Hom-Adds: {report.total_hom_additions}; queries with hits: "
        f"{report.queries_with_matches}/{report.num_queries}"
    )


def wildcard_search() -> None:
    print("\n=== wildcard pattern search ===")
    text = (
        "log: user alice logged in; user bob logged in; "
        "user carol logged out; user dave logged in; "
    )
    db = text_to_bits(text)
    pipe = SecureStringMatchPipeline(
        ClientConfig(BFVParams.test_small(64), key_seed=79)
    )
    pipe.outsource_database(db)
    searcher = WildcardSearcher(pipe)

    pattern = WildcardPattern.from_text("logged ??")
    print(
        f"pattern 'logged ??': {pattern.num_segments} literal segment(s), "
        f"{pattern.wildcard_bits} wildcard bits, "
        f"{searcher.hom_additions_for(pattern)} Hom-Adds predicted"
    )
    matches = searcher.search(pattern)
    for off in matches:
        char = off // 8
        print(f"  match at char {char:3d}: ...{text[char:char+12]!r}...")
    import re

    expected = [8 * m.start() for m in re.finditer(r"logged ..", text)]
    assert matches == expected
    print("verified against regex.")


if __name__ == "__main__":
    batched_lookups()
    wildcard_search()
