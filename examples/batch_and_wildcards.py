"""Batched queries and wildcard patterns through the unified API.

* ``Session.submit_batch`` queues the Figure-9/12-style query batches
  asynchronously: futures resolve in submission order while the sharded
  serve layer deduplicates and caches variant ciphertexts underneath.
* A ``WildcardSearch`` request matches patterns with don't-care bytes
  using only Hom-Add sweeps (one per literal segment) — the join is
  shared by every wildcard-capable engine.

Run:  python examples/batch_and_wildcards.py
"""

import re

import repro
from repro.api import BatchSearch, WildcardSearch
from repro.he import BFVParams
from repro.utils.bits import text_to_bits
from repro.workloads import DatabaseWorkloadGenerator

PARAMS = BFVParams.test_small(64)


def batched_lookups() -> None:
    print("=== batched key lookups (case study 2 at batch scale) ===")
    gen = DatabaseWorkloadGenerator(seed=77)
    db = gen.generate(num_records=16, key_bytes=8, value_bytes=8)
    mix = gen.query_mix(db, num_queries=30, hit_fraction=0.7)

    with repro.open_session(
        "bfv-sharded",
        params=PARAMS,
        num_shards=2,
        key_seed=78,
        db_bits=db.flatten_bits(),
    ) as session:
        # One typed request for the whole batch -> native execution on
        # the serve worker pool, duplicates deduplicated.
        report = session.search(
            BatchSearch.from_bit_arrays([db.key_bits(k) for k in mix.keys])
        )
        print(
            f"{report.num_queries} queries ({len(set(mix.keys))} distinct, "
            f"{report.deduplicated_hits} deduplicated in the serve layer)"
        )
        hits = sum(1 for r in report.results if r.num_matches)
        print(
            f"total Hom-Adds: {report.total_hom_ops}; queries with hits: "
            f"{hits}/{report.num_queries}"
        )

        # The same batch, submitted asynchronously: one future per query,
        # resolving in submission order.
        futures = session.submit_batch([db.key_bits(k) for k in mix.keys[:5]])
        print("async resubmission of the first 5 keys:")
        for key, future in zip(mix.keys[:5], futures):
            result = future.result()
            print(f"  key {key!r}: {result.num_matches} match(es)")


def wildcard_search() -> None:
    print("\n=== wildcard pattern search ===")
    text = (
        "log: user alice logged in; user bob logged in; "
        "user carol logged out; user dave logged in; "
    )
    with repro.open_session(
        "bfv", params=PARAMS, key_seed=79, db_bits=text_to_bits(text)
    ) as session:
        pattern = WildcardSearch.from_text("logged ??")
        result = session.search(pattern)
        print(
            f"pattern 'logged ??': {pattern.literal_bits} literal bits, "
            f"{pattern.num_bits - pattern.literal_bits} wildcard bits, "
            f"{result.hom_ops.additions} Hom-Adds executed"
        )
        for off in result.matches:
            char = off // 8
            print(f"  match at char {char:3d}: ...{text[char:char+12]!r}...")

        expected = [8 * m.start() for m in re.finditer(r"logged ..", text)]
        assert list(result.matches) == expected
        print("verified against regex.")


if __name__ == "__main__":
    batched_lookups()
    wildcard_search()
