#!/usr/bin/env python3
"""Table 1, functionally: all five prior approaches plus CIPHERMATCH on
one small input, with per-approach operation counts.

Every matcher searches the same bit pattern; the printout shows the
qualitative trade-offs of Table 1 as *measured* quantities — gate
counts, Hom-Mult counts, ciphertext bytes, and query-size restrictions.

Run:  python examples/prior_work_zoo.py
"""

import numpy as np

from repro.baselines import (
    BonteMatcher,
    BooleanMatcher,
    KimHomEQMatcher,
    TfheBooleanMatcher,
    YasudaMatcher,
    find_all_matches,
)
from repro.core import ClientConfig, SecureStringMatchPipeline
from repro.he import BFVParams
from repro.he.keys import generate_keys
from repro.tfhe import TFHEParams


def main() -> None:
    rng = np.random.default_rng(11)
    db_bits = rng.integers(0, 2, 24).astype(np.uint8)
    query = np.array([1, 0, 1], dtype=np.uint8)
    db_bits[8:11] = query  # ensure at least one planted match
    expected = find_all_matches(db_bits, query)
    print(f"database: {''.join(map(str, db_bits))}")
    print(f"query   : {''.join(map(str, query))}  -> oracle matches {expected}\n")
    rows = []

    # [33]/[17] Boolean approach, BFV stand-in (per-bit gates).
    boolean = BooleanMatcher(seed=2)
    sk, pk, rlk, _ = generate_keys(boolean.params, seed=2, relin=True)
    enc_db = boolean.encrypt_database(db_bits, pk)
    matches = boolean.search(enc_db, query, pk, sk, rlk)
    rows.append(("Pradel/Aziz [33,17] (BFV stand-in)", matches,
                 f"{boolean.stats.total_gates} hom. gates, "
                 f"{enc_db.serialized_bytes:,} ct bytes"))

    # Boolean approach on real bootstrapped TFHE.
    tfhe = TfheBooleanMatcher(TFHEParams.test_tiny(), seed=2)
    tfhe_db = tfhe.encrypt_database(db_bits)
    matches = tfhe.search(tfhe_db, query)
    rows.append(("Boolean on real TFHE", matches,
                 f"{tfhe.stats.total_gates} gates / "
                 f"{tfhe.stats.bootstraps} bootstraps"))

    # [27] Yasuda et al.: Hamming distance with Hom-Mult.
    yasuda = YasudaMatcher(seed=2)
    y_sk, y_pk, y_rlk, _ = generate_keys(yasuda.params, seed=2, relin=True)
    y_db = yasuda.encrypt_database(db_bits, y_pk)
    matches = yasuda.search(y_db, query, y_pk, y_sk, y_rlk)
    mult = yasuda.ctx.counter.multiplications
    rows.append(("Yasuda et al. [27]", matches, f"{mult} Hom-Mults"))

    # [34] Kim et al.: HomEQ over an F_5 alphabet, compressed result.
    kim = KimHomEQMatcher(seed=2)
    chars = [int(b) for b in db_bits[:12]]  # reuse the bits as F_5 chars
    kim_db = kim.encrypt_database(chars)
    kim_matches = kim.search(kim_db, [1, 0, 1])
    rows.append(("Kim et al. [34] HomEQ", kim_matches,
                 f"{kim.stats.multiplications} Hom-Mults -> 1 result ct"))

    # [29] Bonte & Iliashenko: batched constant-depth equality.
    bonte = BonteMatcher(seed=2)
    b_db = bonte.encrypt_database(db_bits, window_bits=3)
    matches = bonte.search(b_db, query)
    rows.append(("Bonte & Iliashenko [29]", matches,
                 f"{bonte.stats.multiplications} Hom-Mults "
                 f"({len(b_db.ciphertexts)} batched cts, depth 4 always)"))

    # CIPHERMATCH: Hom-Add only.  The packing scheme detects matches at
    # chunk granularity, so the paper evaluates queries of >= 16 bits;
    # we search for the first 16 database bits (guaranteed hit at 0).
    pipe = SecureStringMatchPipeline(ClientConfig(BFVParams.test_small(64)))
    pipe.outsource_database(db_bits)
    report = pipe.search(db_bits[:16])
    rows.append(("CIPHERMATCH (this paper, 16b query)", report.matches,
                 f"{report.hom_additions} Hom-Adds, 0 Hom-Mults"))

    width = max(len(r[0]) for r in rows)
    for name, matches, note in rows:
        print(f"{name.ljust(width)} : {matches}  [{note}]")

    print("\nquery-size restrictions (Table 1, 'flexible query size'):")
    print("  Boolean / TFHE : any length (bootstrapped gates)")
    print(f"  Kim HomEQ      : < t = {kim.params.t} characters per query")
    print(f"  Bonte          : <= {bonte.max_window_bits} bits (one F_t slot)")
    print("  CIPHERMATCH    : any length (chunks + shifted variants)")


if __name__ == "__main__":
    main()
