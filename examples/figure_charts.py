#!/usr/bin/env python3
"""Render the paper's key figures as ASCII charts so their *shape* —
who wins, by how much, where the crossovers fall — is visible at a
glance (the tables in `python -m repro figures` carry the exact
numbers).

Run:  python examples/figure_charts.py
"""

from repro.eval.calibration import GIB, QUERY_SIZES
from repro.eval.models import SoftwareCostModel
from repro.eval.plotting import (
    crossover_points,
    grouped_bar_chart,
    line_chart,
    sparkline,
)
from repro.ndp.perfmodel import HardwarePerformanceModel


def figure7_chart() -> None:
    sw = SoftwareCostModel()
    rows = sw.figure7(list(QUERY_SIZES))
    print(
        grouped_bar_chart(
            "Figure 7 shape: speedup over Boolean (log scale)",
            [f"{r['query_bits']}b" for r in rows],
            {
                "arithmetic": [r["arithmetic"] for r in rows],
                "CM-SW": [r["cm_sw"] for r in rows],
            },
            log_scale=True,
            value_format="{:.0f}",
        )
    )
    ratio = [r["cm_sw"] / r["arithmetic"] for r in rows]
    print(f"\nCM-SW / arithmetic ratio by query size: {sparkline(ratio)} "
          f"({ratio[0]:.1f}x -> {ratio[-1]:.1f}x; paper 20.7x -> 62.2x)\n")


def figure10_chart() -> None:
    hw = HardwarePerformanceModel()
    rows = hw.figure10(list(QUERY_SIZES))
    print(
        grouped_bar_chart(
            "Figure 10 shape: hardware speedup over CM-SW",
            [f"{r['query_bits']}b" for r in rows],
            {
                "CM-PuM": [r["cm_pum"] for r in rows],
                "CM-PuM-SSD": [r["cm_pum_ssd"] for r in rows],
                "CM-IFP": [r["cm_ifp"] for r in rows],
            },
            value_format="{:.0f}",
        )
    )
    print()


def figure12_chart() -> None:
    hw = HardwarePerformanceModel()
    sizes = [8 * GIB, 16 * GIB, 32 * GIB, 64 * GIB, 128 * GIB]
    rows = hw.figure12(sizes)
    gib = [r["db_gib"] for r in rows]
    pum = [r["cm_pum"] for r in rows]
    ifp = [r["cm_ifp"] for r in rows]
    print(
        line_chart(
            "Figure 12 shape: speedup vs encrypted DB size",
            gib,
            {"CM-PuM": pum, "CM-IFP": ifp},
            x_label="encrypted DB (GiB)",
            y_label="speedup over CM-SW",
        )
    )
    crossings = crossover_points(gib, pum, ifp)
    if crossings:
        print(
            f"\nCM-PuM/CM-IFP crossover at ~{crossings[0]:.0f} GiB "
            "(paper: between 32 GB — the external DRAM capacity — and 64 GB)"
        )


def main() -> None:
    figure7_chart()
    figure10_chart()
    figure12_chart()


if __name__ == "__main__":
    main()
