"""Concurrent sharded query serving — the production-scale layer,
driven through the unified API.

The encrypted database is split across four shards, each with its own
addition backend, and a worker pool executes a deduplicated query batch
across all shards concurrently.  Results are merged with global offsets
(one planted occurrence deliberately straddles a shard boundary) and
cross-checked against the plaintext oracle — which is just another
registered engine behind the same facade.

Run:  python examples/sharded_serving.py
"""

import numpy as np

import repro
from repro.api import BatchSearch
from repro.he import BFVParams
from repro.utils.bits import random_bits

PARAMS = BFVParams.test_small(64)
BITS_PER_POLY = PARAMS.n * 16


def main() -> None:
    rng = np.random.default_rng(21)
    db = random_bits(8 * BITS_PER_POLY, rng)

    queries = []
    for k in range(4):
        q = random_bits(32, rng)
        off = 16 * (13 + 97 * k)
        db[off : off + 32] = q
        queries.append(q)
    # an occurrence straddling the shard-1/shard-2 boundary
    boundary = 4 * BITS_PER_POLY
    straddle = random_bits(32, rng)
    db[boundary - 16 : boundary + 16] = straddle
    queries.append(straddle)
    queries += queries[:2]  # repeated keys exercise deduplication

    print("=== sharded concurrent serving (4 shards) ===")
    with repro.open_session(
        "bfv-sharded",
        params=PARAMS,
        num_shards=4,
        key_seed=22,
        cache_capacity=128,
        db_bits=db,
    ) as session:
        batch = session.search(BatchSearch.from_bit_arrays(queries))
        serve_report = session.engine.last_serve_report
        print(serve_report.summary_table())
        print()
        print(serve_report.shard_table())

    print("\n=== cross-checks ===")
    with repro.open_session("plaintext", db_bits=db) as oracle:
        for q, result in zip(queries, batch.results):
            assert list(result.matches) == list(oracle.search(q).matches)
    print("sharded engine == plaintext oracle for "
          f"{batch.num_queries} queries ({batch.deduplicated_hits} deduplicated)")
    straddle_offsets = list(batch.results[4].matches)
    print(f"boundary-straddling occurrence found at bit offset {straddle_offsets}")


if __name__ == "__main__":
    main()
