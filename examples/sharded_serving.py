"""Concurrent sharded query serving — the production-scale layer.

The encrypted database is split across four shards, each with its own
addition backend, and a worker pool executes a deduplicated query batch
across all shards concurrently.  Results are merged with global offsets
(one planted occurrence deliberately straddles a shard boundary) and
cross-checked against the sequential pipeline and the plaintext oracle.

Run:  python examples/sharded_serving.py
"""

import numpy as np

from repro.baselines import find_all_matches
from repro.core import ClientConfig, SecureStringMatchPipeline
from repro.he import BFVParams
from repro.serve import ShardedSearchEngine
from repro.utils.bits import random_bits

PARAMS = BFVParams.test_small(64)
BITS_PER_POLY = PARAMS.n * 16


def main() -> None:
    rng = np.random.default_rng(21)
    db = random_bits(8 * BITS_PER_POLY, rng)

    queries = []
    for k in range(4):
        q = random_bits(32, rng)
        off = 16 * (13 + 97 * k)
        db[off : off + 32] = q
        queries.append(q)
    # an occurrence straddling the shard-1/shard-2 boundary
    boundary = 4 * BITS_PER_POLY
    straddle = random_bits(32, rng)
    db[boundary - 16 : boundary + 16] = straddle
    queries.append(straddle)
    queries += queries[:2]  # repeated keys exercise deduplication

    print("=== sharded concurrent serving (4 shards) ===")
    engine = ShardedSearchEngine(
        ClientConfig(PARAMS, key_seed=22), num_shards=4, cache_capacity=128
    )
    engine.outsource(db)
    report = engine.search_batch(queries)
    print(report.summary_table())
    print()
    print(report.shard_table())

    print("\n=== cross-checks ===")
    pipe = SecureStringMatchPipeline(ClientConfig(PARAMS, key_seed=22))
    pipe.outsource_database(db)
    for q, matches in zip(queries, report.matches_per_query()):
        assert matches == pipe.search(q).matches
        assert matches == find_all_matches(db, q)
    print("sharded == sequential pipeline == plaintext oracle for "
          f"{report.num_queries} queries ({report.deduplicated_hits} deduplicated)")
    straddle_offsets = report.matches_per_query()[4]
    print(f"boundary-straddling occurrence found at bit offset {straddle_offsets}")


if __name__ == "__main__":
    main()
