"""Case study 2: encrypted database (key-value) search (paper §5.3).

A client outsources an encrypted key-value store and issues a batch of
key lookups; the server answers them with Hom-Add-only searches and,
in SERVER_DETERMINISTIC mode, generates the match indices itself —
the in-SSD index-generation flow of Figure 6.

Run:  python examples/encrypted_database.py
"""

from repro.core import ClientConfig, IndexMode, SecureStringMatchPipeline
from repro.he import BFVParams
from repro.workloads import DatabaseWorkloadGenerator


def main() -> None:
    gen = DatabaseWorkloadGenerator(seed=21)
    db = gen.generate(num_records=24, key_bytes=8, value_bytes=24)
    mix = gen.query_mix(db, num_queries=12, hit_fraction=0.5)
    print(
        f"key-value store: {len(db.records)} records x {db.record_bytes} B "
        f"({db.record_bits} bits/record); query batch: {len(mix.keys)} keys, "
        f"{mix.num_hits} expected hits"
    )

    pipeline = SecureStringMatchPipeline(
        ClientConfig(
            BFVParams.test_small(64),
            key_seed=31,
            index_mode=IndexMode.SERVER_DETERMINISTIC,
        )
    )
    enc = pipeline.outsource_database(db.flatten_bits())
    print(
        f"encrypted store: {enc.num_polynomials} ciphertexts, server-side "
        f"index generation armed (deterministic masking)"
    )

    hits = misses = 0
    for key, expected_idx in zip(mix.keys, mix.expected_record_indices):
        report = pipeline.search(db.key_bits(key))
        record_hits = [
            off // db.record_bits
            for off in report.matches
            if off % db.record_bits == 0
        ]
        if expected_idx is not None:
            assert expected_idx in record_hits, key
            value = db.records[expected_idx].value.strip()
            print(f"  lookup {key!r}: HIT  -> record {expected_idx} ({value})")
            hits += 1
        else:
            assert expected_idx not in record_hits
            print(f"  lookup {key!r}: MISS")
            misses += 1
    print(f"batch done: {hits} hits / {misses} misses, all verified.")


if __name__ == "__main__":
    main()
