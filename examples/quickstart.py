"""Quickstart: secure exact string matching through the unified API.

One ``repro.open_session`` call owns key generation, database packing +
encryption, and outsourcing; the session then answers typed search
requests.  Swap the engine key ("bfv" -> "bfv-sharded" -> "yasuda" ->
"plaintext") to run the identical workload on any registered matcher.

Run:  python examples/quickstart.py
"""

import re

import repro
from repro.api import ExactSearch
from repro.he import BFVParams
from repro.utils.bits import text_to_bits


def main() -> None:
    # Small ring for a snappy demo; swap in BFVParams.paper() for the
    # paper's n=1024 set.
    params = BFVParams.test_small(64)
    print(f"BFV parameters: {params.name} (n={params.n}, log q={params.log_q}, "
          f"log t={params.plaintext_bits_per_coeff})")

    # The database: some text the client owns.
    text = (
        "the quick brown fox jumps over the lazy dog -- "
        "pack sixteen bits per coefficient and add away! "
    ) * 4
    db_bits = text_to_bits(text)
    print(f"database: {len(text)} chars = {len(db_bits)} bits")

    with repro.open_session(
        "bfv", params=params, key_seed=2024, db_bits=db_bits
    ) as session:
        print(
            f"engine {session.engine_key!r} "
            f"(scheme {session.capabilities.scheme}), database outsourced: "
            f"{session.db_bit_length} encrypted bits"
        )

        # Search for words.  ASCII occurrences sit at byte offsets, i.e.
        # bit phases 0/8 — well inside the detectable range for a
        # 4-byte+ pattern.
        for needle in ("fox", "lazy dog", "sixteen bits", "not present"):
            result = session.search(ExactSearch.from_text(needle))
            positions = [off // 8 for off in result.matches]
            print(
                f"search {needle!r:18s} -> {result.num_matches} match(es) at "
                f"char offsets {positions[:6]}"
                f"{'...' if len(positions) > 6 else ''} "
                f"[{result.hom_ops.additions} Hom-Adds, "
                f"{result.hom_ops.multiplications} Hom-Mults, "
                f"{result.elapsed_seconds * 1e3:.0f} ms]"
            )

        # Verify against plain Python as a sanity check.
        secure = [
            off // 8 for off in session.search(ExactSearch.from_text("fox")).matches
        ]
        assert [m.start() for m in re.finditer("fox", text)] == secure
        print("verified against plaintext search.")


if __name__ == "__main__":
    main()
