"""Quickstart: secure exact string matching with CIPHERMATCH.

A client packs and encrypts a small database with the memory-efficient
packing scheme, outsources it, and searches for a pattern using only
homomorphic additions.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import ClientConfig, SecureStringMatchPipeline
from repro.he import BFVParams
from repro.utils.bits import bytes_to_bits, text_to_bits


def main() -> None:
    # Small ring for a snappy demo; swap in BFVParams.paper() for the
    # paper's n=1024 set.
    params = BFVParams.test_small(64)
    print(f"BFV parameters: {params.name} (n={params.n}, log q={params.log_q}, "
          f"log t={params.plaintext_bits_per_coeff})")

    # The database: some text the client owns.
    text = (
        "the quick brown fox jumps over the lazy dog -- "
        "pack sixteen bits per coefficient and add away! "
    ) * 4
    db_bits = text_to_bits(text)
    print(f"database: {len(text)} chars = {len(db_bits)} bits")

    pipeline = SecureStringMatchPipeline(ClientConfig(params, key_seed=2024))
    encrypted = pipeline.outsource_database(db_bits)
    print(
        f"encrypted database: {encrypted.num_polynomials} ciphertexts, "
        f"{encrypted.serialized_bytes} bytes "
        f"({encrypted.serialized_bytes / (len(db_bits) // 8):.1f}x expansion)"
    )

    # Search for a word.  ASCII occurrences sit at byte offsets, i.e.
    # bit phases 0/8 — well inside the detectable range for a 4-byte+
    # pattern.
    for needle in ("fox", "lazy dog", "sixteen bits", "not present"):
        query_bits = bytes_to_bits(needle.encode("ascii"))
        report = pipeline.search(query_bits)
        positions = [off // 8 for off in report.matches]
        print(
            f"search {needle!r:18s} -> {report.num_matches} match(es) at char "
            f"offsets {positions[:6]}{'...' if len(positions) > 6 else ''} "
            f"[{report.hom_additions} Hom-Adds, 0 Hom-Mults]"
        )

    # Verify against plain Python as a sanity check.
    assert [m.start() for m in __import__("re").finditer("fox", text)] == [
        off // 8
        for off in pipeline.search(bytes_to_bits(b"fox")).matches
    ]
    print("verified against plaintext search.")


if __name__ == "__main__":
    main()
