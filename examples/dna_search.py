"""Case study 1: exact DNA string matching (paper §5.3).

Generates a synthetic reference genome with planted reads (the seeding
workload of read mapping), outsources the encrypted genome, and maps
each read with CIPHERMATCH — comparing the operation counts against the
arithmetic baseline run on the same genome.

Run:  python examples/dna_search.py
"""

import numpy as np

from repro.baselines import YasudaMatcher, find_all_matches
from repro.core import ClientConfig, SecureStringMatchPipeline
from repro.he import BFVParams, generate_keys
from repro.workloads import DnaWorkloadGenerator


def main() -> None:
    gen = DnaWorkloadGenerator(seed=7)
    workload = gen.generate(num_bases=4000, read_length_bases=24, num_reads=5)
    genome_bits = workload.genome_bits
    print(
        f"reference genome: {workload.num_bases} bases "
        f"({len(genome_bits)} bits); {len(workload.reads)} planted reads "
        f"of 24 bases (48-bit queries)"
    )

    # --- CIPHERMATCH ---------------------------------------------------
    pipeline = SecureStringMatchPipeline(
        ClientConfig(BFVParams.test_small(64), key_seed=11)
    )
    enc = pipeline.outsource_database(genome_bits)
    print(
        f"encrypted genome: {enc.num_polynomials} ciphertexts "
        f"({enc.serialized_bytes / 1024:.1f} KiB)"
    )

    total_adds = 0
    for i, read in enumerate(workload.reads):
        bits = workload.read_bits(i)
        report = pipeline.search(bits)
        total_adds += report.hom_additions
        found = "FOUND" if read.position_bits in report.matches else "MISSED"
        print(
            f"  read {i}: {read.sequence[:12]}... planted at base "
            f"{read.position_bases:5d} -> {found} "
            f"(matches at bit offsets {report.matches})"
        )
        assert report.matches == find_all_matches(genome_bits, bits)
    print(f"CIPHERMATCH total: {total_adds} Hom-Adds, 0 Hom-Mults")

    # --- arithmetic baseline on a slice of the genome -------------------
    params = BFVParams.arithmetic_baseline(n=256, t=1024)
    yasuda = YasudaMatcher(params, max_query_bits=48, seed=12)
    sk, pk, rlk, _ = generate_keys(params, seed=12, relin=True)
    slice_bits = genome_bits[:1000]
    enc_db = yasuda.encrypt_database(slice_bits, pk)
    read0 = slice_bits[200:248].copy()  # a 24-base read from the slice
    matches = yasuda.search(enc_db, read0, pk, sk, rlk)
    print(
        f"arithmetic baseline (1000-bit slice): "
        f"{yasuda.ops.multiplications} Hom-Mults + {yasuda.ops.additions} "
        f"Hom-Adds for one read -> matches {matches}"
    )
    print(
        "CIPHERMATCH replaces every Hom-Mult with plain additions — the "
        "operation the in-flash architecture executes natively."
    )


if __name__ == "__main__":
    main()
