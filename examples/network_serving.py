"""Networked secure search: TCP service, client SDK, remote engine.

Boots the asyncio search service on a loopback socket around a 4-shard
``bfv-sharded`` engine, then exercises every client surface against it:

1. the sync :class:`repro.net.Client` (search, future-based submit,
   native batch, the STATS frame);
2. the asyncio :class:`repro.net.AsyncClient`;
3. the ``"remote"`` engine through ``repro.open_session`` — the same
   facade call that runs in-process engines, now crossing real TCP.

Every result is cross-checked against the plaintext oracle; the script
exits non-zero on any mismatch (CI runs it as a smoke test).

Run:  PYTHONPATH=src python examples/network_serving.py
"""

import asyncio
import sys

import numpy as np

import repro
from repro.baselines import find_all_matches
from repro.he import BFVParams
from repro.net import AsyncClient, Client, ServiceThread
from repro.utils.bits import random_bits


def main() -> int:
    rng = np.random.default_rng(42)
    params = BFVParams.test_small(64)
    db = random_bits(8 * 64 * 16, rng)
    queries = []
    for k in range(4):
        q = random_bits(32, rng)
        off = 16 * (7 + 31 * k)
        db[off : off + 32] = q
        queries.append(q)
    oracle = [find_all_matches(db, q) for q in queries]
    failures = 0

    def check(label: str, got, want) -> None:
        nonlocal failures
        ok = list(got) == list(want)
        failures += not ok
        print(f"  {label}: {list(got)} {'OK' if ok else f'!= oracle {want}'}")

    with ServiceThread(
        "bfv-sharded", params=params, num_shards=4, key_seed=42
    ) as service:
        host, port = service.address
        print(f"service up on {host}:{port} (4-shard bfv-sharded engine)\n")

        # -- sync client SDK --------------------------------------------
        print("sync Client: outsource + search / submit / batch")
        with Client(service.address, pool_size=2) as client:
            outsourced = client.outsource(db)
            print(f"  outsourced {outsourced} db bits over the wire")
            check("search", client.search(queries[0]).matches, oracle[0])
            futures = [client.submit(q) for q in queries]
            for k, future in enumerate(futures):
                check(f"submit[{k}]", future.result().matches, oracle[k])
            batch = client.search_batch(queries + queries[:2])
            check(
                "batch",
                [m for r in batch.results for m in r.matches],
                [m for ms in oracle + oracle[:2] for m in ms],
            )
            stats = client.stats()
            print(
                f"  service stats: {stats.completed} completed, "
                f"{stats.shed} shed, batch p50 {stats.wall_p50 * 1e3:.2f} ms, "
                f"{stats.throughput_qps:.1f} q/s"
            )

        # -- async client -----------------------------------------------
        print("\nAsyncClient: concurrent submits on an event loop")

        async def async_lane():
            client = await AsyncClient.connect(service.address)
            try:
                futures = [await client.submit(q) for q in queries]
                return await asyncio.gather(*futures)
            finally:
                await client.aclose()

        for k, result in enumerate(asyncio.run(async_lane())):
            check(f"async[{k}]", result.matches, oracle[k])

        # -- the facade, one word away ----------------------------------
        print('\nrepro.open_session("remote", address=...): same facade')
        with repro.open_session(
            "remote", address=service.address
        ) as session:
            result = session.search(queries[0])
            check("session.search", result.matches, oracle[0])
            print(
                f"  engine={result.engine!r} scheme={result.scheme!r} "
                f"{result.hom_ops.additions} Hom-Adds, "
                f"{len(result.shards)} shards"
            )

    print(f"\nnetworked serving demo: {'OK' if not failures else 'FAIL'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
