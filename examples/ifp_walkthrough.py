"""In-flash processing walkthrough: watch the bop_add µ-program run.

Traces the 13-step bit-serial addition (Figure 5) at the latch level
inside one simulated NAND plane, then runs a complete secure search
with the Hom-Adds executed by the in-flash backend instead of the CPU,
reporting the simulated time/energy the Table-3 model charges.

Run:  python examples/ifp_walkthrough.py
"""

import numpy as np

from repro.core import ClientConfig, SecureStringMatchPipeline
from repro.flash import BitSerialAdder, FlashArray, FlashGeometry, FlashTimings
from repro.he import BFVParams
from repro.ssd import IFPAdditionBackend
from repro.utils.bits import random_bits


def trace_one_word_add() -> None:
    print("=== bop_add micro-op trace (one 8-bit addition) ===")
    geo = FlashGeometry.functional(num_bitlines=8, wordlines=16)
    plane = FlashArray(geo).plane(0)
    adder = BitSerialAdder(plane, word_bits=8)
    a = np.array([0b10110101], dtype=np.int64)
    b = np.array([0b01001011], dtype=np.int64)
    adder.store_words(0, a)
    plane.latches.trace.enabled = True
    result = adder.add(0, b)
    print(f"A = {int(a[0]):#010b}, B = {int(b[0]):#010b}")
    print(f"A + B = {int(result[0]):#010b} (expected {int((a[0]+b[0]) % 256):#010b})")
    counts = plane.latches.trace.counts()
    print(f"micro-ops for 8 bit positions: {counts}")
    per_bit = {k: v / 8 for k, v in counts.items() if k != "reset_d"}
    print(f"per bit position: {per_bit}")
    print(
        "  -> 1 read + 2 XOR + 5 latch transfers + 4 AND/OR-class + 2 DMA "
        "per bit: exactly Eqn (10)"
    )
    t = FlashTimings()
    print(
        f"modelled latency: t_bit_add = {t.t_bit_add*1e6:.2f} us "
        f"(paper Table 3: 29.38 us); 32-bit add = {t.t_word_add(32)*1e3:.3f} ms\n"
    )


def search_in_flash() -> None:
    print("=== full secure search executed inside the flash simulator ===")
    rng = np.random.default_rng(5)
    db = random_bits(2400, rng)
    query = random_bits(32, rng)
    db[640:672] = query
    db[1203:1235] = query  # non-aligned occurrence (phase 3)

    pipeline = SecureStringMatchPipeline(
        ClientConfig(BFVParams.test_small(64), key_seed=55)
    )
    backend = IFPAdditionBackend(pipeline.client.ctx)
    pipeline.server.engine.backend = backend

    pipeline.outsource_database(db)
    report = pipeline.search(query)
    print(f"matches found in-flash: {report.matches} (planted: [640, 1203])")
    print(f"homomorphic additions executed by bop_add: {backend.hom_add_count}")
    geo = backend.ssd.flash.geometry
    print(
        f"simulated device: {geo.channels} channels x {geo.dies_per_channel} "
        f"dies x {geo.planes_per_die} planes, {geo.bitlines_per_plane} "
        f"bitlines/plane"
    )
    print(
        f"simulated flash time: {backend.ssd.simulated_seconds*1e3:.2f} ms, "
        f"energy: {backend.ssd.simulated_joules*1e3:.2f} mJ "
        f"(Table-3 constants, serial charge; real device runs planes in "
        f"parallel)"
    )


if __name__ == "__main__":
    trace_one_word_add()
    search_in_flash()
