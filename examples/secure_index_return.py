"""Secure index return (paper §7.2): the full flow where the SSD
encrypts match indices with its hardware AES engine before they cross
the vulnerable channel back to the client.

Run:  python examples/secure_index_return.py
"""

import numpy as np

from repro.core import ClientConfig, IndexMode, SecureStringMatchPipeline
from repro.he import BFVParams
from repro.ssd import SecureIndexChannel
from repro.utils.bits import random_bits


def main() -> None:
    rng = np.random.default_rng(17)
    db = random_bits(3000, rng)
    query = random_bits(32, rng)
    for off in (320, 1280, 2240):
        db[off : off + 32] = query

    # Offline step: the SSD establishes an AES-256 channel with the
    # client (key wrapped under public-key encryption in deployment).
    channel = SecureIndexChannel.establish(seed=99)
    print(f"AES-256 channel established (key fingerprint {channel.key[:4].hex()}...)")

    # Secure search with server-side index generation (Figure 6 flow).
    pipeline = SecureStringMatchPipeline(
        ClientConfig(
            BFVParams.test_small(64),
            key_seed=100,
            index_mode=IndexMode.SERVER_DETERMINISTIC,
        )
    )
    pipeline.outsource_database(db)
    report = pipeline.search(query)
    print(f"server found {report.num_matches} matches: {report.matches}")

    # SSD side: encrypt the index list before transmission.
    nonce, ciphertext = channel.encrypt_indices(report.matches)
    print(
        f"encrypted index payload: {len(ciphertext)} bytes, nonce {nonce.hex()}, "
        f"hardware AES latency {channel.hardware_latency(report.matches)*1e9:.1f} ns"
    )

    # Client side: decrypt and use.
    recovered = channel.decrypt_indices(nonce, ciphertext)
    assert recovered == report.matches
    print(f"client decrypted match offsets: {recovered}")
    print("indices never crossed the channel in the clear.")


if __name__ == "__main__":
    main()
