#!/usr/bin/env python3
"""Real TFHE gate bootstrapping — the Boolean baseline without stand-ins.

The paper's Boolean prior works [17, 33] run on TFHE; this repo includes
a from-scratch TFHE implementation (repro.tfhe) with true blind-rotation
bootstrapping.  This example shows:

1. bootstrapped gates evaluating correctly at every depth (the
   "flexible query size" property of Table 1),
2. the per-bit ciphertext blow-up that makes the Boolean approach's
   memory footprint explode (§3.1), and
3. the same XNOR+AND string-matching circuit running on real TFHE and
   on the BFV stand-in, producing identical matches and gate counts.

Run:  python examples/tfhe_bootstrapping.py
"""

import time

import numpy as np

from repro.baselines import BooleanMatcher, TfheBooleanMatcher, find_all_matches
from repro.he import GateCostModel
from repro.he.keys import generate_keys
from repro.tfhe import TFHEContext, TFHEParams


def gate_depth_demo() -> None:
    print("-- unlimited depth via bootstrapping --")
    ctx = TFHEContext(TFHEParams.test_small(), seed=1)
    acc = ctx.encrypt(1)
    t0 = time.perf_counter()
    depth = 30
    for _ in range(depth):
        acc = ctx.and_(acc, ctx.encrypt(1))  # stays 1 forever
    elapsed = time.perf_counter() - t0
    print(f"{depth} chained AND gates -> decrypts to {ctx.decrypt(acc)} "
          f"(no noise ceiling; {1e3 * elapsed / depth:.1f} ms/gate at test scale)")
    print(f"bootstraps performed: {ctx.bootstrap_count}\n")


def footprint_demo() -> None:
    print("-- per-bit footprint blow-up --")
    params = TFHEParams.tfhe_lib()
    bits = 32 * 8  # a 32-byte database, as in §3.1
    encrypted = bits * params.lwe_ciphertext_bytes
    print(f"32-byte database -> {encrypted / 1024:.0f} KiB of LWE ciphertexts "
          f"({encrypted / 32:.0f}x blow-up at TFHE-lib parameters)\n")


def matcher_comparison() -> None:
    print("-- same circuit: real TFHE vs BFV stand-in --")
    rng = np.random.default_rng(3)
    db_bits = rng.integers(0, 2, 16).astype(np.uint8)
    query = np.array([1, 0, 1], dtype=np.uint8)
    db_bits[5:8] = query  # plant a guaranteed hit
    expected = find_all_matches(db_bits, query)

    tfhe_matcher = TfheBooleanMatcher(TFHEParams.test_tiny(), seed=7)
    tfhe_db = tfhe_matcher.encrypt_database(db_bits)
    tfhe_matches = tfhe_matcher.search(tfhe_db, query)

    standin = BooleanMatcher(seed=7)
    sk, pk, rlk, _ = generate_keys(standin.params, seed=7, relin=True)
    bfv_db = standin.encrypt_database(db_bits, pk)
    bfv_matches = standin.search(bfv_db, query, pk, sk, rlk)

    print(f"plaintext oracle : {expected}")
    print(f"real TFHE        : {tfhe_matches} "
          f"({tfhe_matcher.stats.total_gates} gates, "
          f"{tfhe_matcher.stats.bootstraps} bootstraps)")
    print(f"BFV stand-in     : {bfv_matches} "
          f"({standin.stats.total_gates} gates, 0 bootstraps)")
    assert tfhe_matches == bfv_matches == expected

    cost = GateCostModel()
    gates = TfheBooleanMatcher.gates_for(len(db_bits) * 1024, len(query))
    print(f"\ncost model: the same search over a {len(db_bits)} KiB database "
          f"would run {gates:,} gates = "
          f"{cost.time_for_gates(gates):,.0f} s single-threaded — "
          "the latency wall of Figure 2b.")


def main() -> None:
    gate_depth_demo()
    footprint_demo()
    matcher_comparison()


if __name__ == "__main__":
    main()
