"""Engine adapters: one uniform execution surface over every matcher.

The repo grew six-plus parallel entry points to the same secure-search
capability — the core packing pipeline, the wire-protocol session, the
sharded serve engine and the prior-work baseline matchers — each with
its own constructor, outsourcing step and result shape.  This module
wraps each of them in an :class:`Engine` with declared
:class:`~repro.api.capabilities.Capabilities`, a single ``outsource``
step and a single ``execute(request) -> SearchResult`` path, so callers
(and the :class:`~repro.api.session.Session` layer) can swap
BFV <-> TFHE <-> baseline or single-shard <-> sharded without rewriting
anything.

Wildcard execution is generic where an engine declares it: each literal
segment of the pattern runs as an ordinary exact search and the offsets
are joined by set intersection client-side — precisely the
:mod:`repro.core.wildcard` construction, now shared by every capable
engine.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

import numpy as np

from ..baselines import (
    BonteMatcher,
    BooleanMatcher,
    KimHomEQMatcher,
    TfheBooleanMatcher,
    YasudaMatcher,
    find_all_matches,
)
from ..core.client import CipherMatchClient, ClientConfig
from ..core.match_polynomial import IndexMode
from ..core.pipeline import SecureStringMatchPipeline
from ..core.protocol import WireProtocolSession
from ..core.wildcard import WildcardPattern
from ..he.params import BFVParams
from ..he.keys import generate_keys
from ..tfhe import TFHEParams
from ..verify import VerifyPolicy
from .capabilities import Capabilities, CapabilityError
from .requests import (
    BatchSearch,
    BatchSearchResult,
    ExactSearch,
    HomOpTally,
    SearchRequest,
    SearchResult,
    ShardBreakdown,
    WildcardSearch,
)


@dataclass
class _Outcome:
    """What one engine-internal execution hands back to the wrapper."""

    matches: List[int]
    hom_ops: HomOpTally = field(default_factory=HomOpTally)
    verified: bool = False
    num_variants: int = 0
    encrypted_db_bytes: int = 0
    shards: tuple = ()
    degraded_shards: tuple = ()


class Engine(abc.ABC):
    """One secure-search implementation behind the uniform facade.

    Subclasses declare class-level default :attr:`CAPS` (what the
    registry's capability matrix shows) and may override the
    ``capabilities`` property when an instance is configured more or
    less capable than the default.
    """

    #: registry key / display name; set per subclass
    key: str = "abstract"
    CAPS: Capabilities = Capabilities(scheme="none")

    @property
    def capabilities(self) -> Capabilities:
        return self.CAPS

    # -- lifecycle -------------------------------------------------------

    @abc.abstractmethod
    def outsource(self, db_bits: np.ndarray) -> None:
        """Encrypt (as the scheme requires) and store the database."""

    @property
    @abc.abstractmethod
    def db_bit_length(self) -> Optional[int]:
        """Bit length of the outsourced database, or None before
        :meth:`outsource`."""

    def close(self) -> None:
        """Release engine resources (default: nothing to release)."""

    # -- execution -------------------------------------------------------

    def execute(self, request: SearchRequest):
        """Validate against capabilities, dispatch, time, and wrap."""
        caps = self.capabilities
        caps.check(request, self.key)
        if self.db_bit_length is None:
            raise RuntimeError("outsource a database first")
        if isinstance(request, BatchSearch):
            return self._execute_batch(request)
        start = time.perf_counter()
        if isinstance(request, WildcardSearch):
            outcome = self._wildcard(request)
        elif isinstance(request, ExactSearch):
            outcome = self._exact(
                request.bit_array(), request.verify.resolve(caps.verify)
            )
        else:  # pragma: no cover - future request types
            raise CapabilityError(
                f"engine {self.key!r} does not handle {type(request).__name__}"
            )
        return self._wrap(outcome, time.perf_counter() - start)

    def _wrap(self, outcome: _Outcome, elapsed: float) -> SearchResult:
        return SearchResult(
            matches=tuple(outcome.matches),
            engine=self.key,
            scheme=self.capabilities.scheme,
            hom_ops=outcome.hom_ops,
            elapsed_seconds=elapsed,
            verified=outcome.verified,
            num_variants=outcome.num_variants,
            encrypted_db_bytes=outcome.encrypted_db_bytes,
            shards=tuple(outcome.shards),
            degraded_shards=tuple(outcome.degraded_shards),
        )

    @abc.abstractmethod
    def _exact(self, bits: np.ndarray, verify: bool) -> _Outcome:
        """Run one exact search; ``verify`` is already policy-resolved."""

    def _wildcard(self, request: WildcardSearch) -> _Outcome:
        """Generic wildcard join: one exact sweep per literal segment,
        set intersection on displacement-shifted offsets."""
        pattern = WildcardPattern.from_bits(request.bits, request.mask)
        verify = request.verify.resolve(self.capabilities.verify)
        candidate_sets = []
        tally = HomOpTally()
        verified = verify
        for segment in pattern.segments:
            outcome = self._exact(segment.bit_array(), verify)
            tally = _merge_tallies(tally, outcome.hom_ops)
            verified = verified and outcome.verified
            candidate_sets.append(
                {m - segment.offset_bits for m in outcome.matches}
            )
        common = set.intersection(*candidate_sets)
        db_bits = self.db_bit_length or 0
        matches = sorted(
            p for p in common if 0 <= p and p + pattern.total_bits <= db_bits
        )
        return _Outcome(
            matches=matches,
            hom_ops=tally,
            verified=verified,
            num_variants=pattern.num_segments,
        )

    @staticmethod
    def _batch_queries(request: BatchSearch) -> tuple:
        """Sub-queries with the batch-level verify policy applied: a
        non-AUTO policy on the batch wrapper overrides each sub-request
        (so ``search_batch(qs, verify=False)`` means what it says on
        every engine); AUTO defers to the sub-requests' own policies."""
        if request.verify is VerifyPolicy.AUTO:
            return request.queries
        import dataclasses

        return tuple(
            dataclasses.replace(q, verify=request.verify)
            for q in request.queries
        )

    def _execute_batch(self, request: BatchSearch) -> BatchSearchResult:
        """Default batch path: sequential execution, one result each.
        Engines with a native batch executor override this."""
        start = time.perf_counter()
        results = tuple(self.execute(q) for q in self._batch_queries(request))
        return BatchSearchResult(
            results=results,
            engine=self.key,
            elapsed_seconds=time.perf_counter() - start,
        )


def _merge_tallies(a: HomOpTally, b: HomOpTally) -> HomOpTally:
    return HomOpTally(
        additions=a.additions + b.additions,
        multiplications=a.multiplications + b.multiplications,
        plain_multiplications=a.plain_multiplications + b.plain_multiplications,
        automorphisms=a.automorphisms + b.automorphisms,
        bootstraps=a.bootstraps + b.bootstraps,
    )


def _default_params() -> BFVParams:
    """Functional-scale default for the facade (swap in
    ``BFVParams.paper()`` for paper-scale runs)."""
    return BFVParams.test_small(64)


# ---------------------------------------------------------------------------
# Core pipeline family
# ---------------------------------------------------------------------------


class PipelineEngine(Engine):
    """The paper's contribution behind the facade:
    :class:`~repro.core.pipeline.SecureStringMatchPipeline`."""

    key = "bfv"
    CAPS = Capabilities(
        scheme="bfv",
        wildcard=True,
        verify=True,
        exact_query_bits=31,  # 2w - 1 at the default 16-bit chunk width
    )

    def __init__(
        self,
        params: Optional[BFVParams] = None,
        *,
        key_seed: Optional[int] = None,
        chunk_width: Optional[int] = None,
        index_mode: IndexMode = IndexMode.CLIENT_DECRYPT,
        deterministic_seed: Optional[int] = None,
        poly_backend: Optional[str] = None,
        search_kernel: Optional[str] = None,
        addition_backend=None,
        pipeline: Optional[SecureStringMatchPipeline] = None,
    ):
        if pipeline is not None:
            self.pipeline = pipeline
        else:
            config = ClientConfig(
                params or _default_params(),
                chunk_width=chunk_width,
                index_mode=index_mode,
                deterministic_seed=deterministic_seed,
                key_seed=key_seed,
                poly_backend=poly_backend,
            )
            self.pipeline = SecureStringMatchPipeline(
                config, search_kernel=search_kernel
            )
        if addition_backend is not None:
            if callable(addition_backend):
                addition_backend = addition_backend(self.pipeline.client.ctx)
            self.pipeline.server.engine.backend = addition_backend

    def outsource(self, db_bits: np.ndarray) -> None:
        self.pipeline.outsource_database(np.asarray(db_bits, dtype=np.uint8))

    @property
    def db_bit_length(self) -> Optional[int]:
        return None if self.pipeline.db is None else self.pipeline.db.bit_length

    def _exact(self, bits: np.ndarray, verify: bool) -> _Outcome:
        report = self.pipeline.search(bits, verify=verify)
        return _Outcome(
            matches=list(report.matches),
            hom_ops=HomOpTally(additions=report.hom_additions),
            verified=verify,
            num_variants=report.num_variants,
            encrypted_db_bytes=report.encrypted_db_bytes,
        )


class WireEngine(Engine):
    """The byte-boundary two-round protocol
    (:class:`~repro.core.protocol.WireProtocolSession`)."""

    key = "bfv-wire"
    CAPS = Capabilities(scheme="bfv", verify=True, exact_query_bits=31)

    def __init__(
        self,
        params: Optional[BFVParams] = None,
        *,
        key_seed: Optional[int] = None,
        chunk_width: Optional[int] = None,
        poly_backend: Optional[str] = None,
    ):
        self.session = WireProtocolSession(
            ClientConfig(
                params or _default_params(),
                chunk_width=chunk_width,
                key_seed=key_seed,
                poly_backend=poly_backend,
            )
        )
        self._db_bits: Optional[int] = None

    def outsource(self, db_bits: np.ndarray) -> None:
        db_bits = np.asarray(db_bits, dtype=np.uint8)
        self.session.outsource(db_bits)
        self._db_bits = len(db_bits)

    @property
    def db_bit_length(self) -> Optional[int]:
        return self._db_bits

    def _exact(self, bits: np.ndarray, verify: bool) -> _Outcome:
        adds_before = self.session.server.hom_add_count
        matches = self.session.search(bits, verify=verify)
        return _Outcome(
            matches=list(matches),
            hom_ops=HomOpTally(
                additions=self.session.server.hom_add_count - adds_before
            ),
            verified=verify,
            encrypted_db_bytes=self.session.stats.database_upload,
        )


class ShardedEngine(Engine):
    """The production serving layer
    (:class:`~repro.serve.ShardedSearchEngine`) behind the facade."""

    key = "bfv-sharded"
    CAPS = Capabilities(
        scheme="bfv",
        wildcard=True,
        batching=True,
        sharded=True,
        verify=True,
        exact_query_bits=31,
    )

    def __init__(
        self,
        params: Optional[BFVParams] = None,
        *,
        num_shards: int = 4,
        key_seed: Optional[int] = None,
        chunk_width: Optional[int] = None,
        index_mode: IndexMode = IndexMode.CLIENT_DECRYPT,
        poly_backend: Optional[str] = None,
        search_kernel: Optional[str] = None,
        executor: Optional[str] = None,
        cache_capacity: int = 256,
        max_workers: Optional[int] = None,
        backend_factory: Optional[Callable] = None,
        client: Optional[CipherMatchClient] = None,
        degraded_mode: str = "fail",
        breaker_threshold: int = 3,
        breaker_cooldown: float = 5.0,
        cache=None,
        tenant: str = "",
    ):
        # Imported here: repro.serve sits above repro.core in the layer
        # stack and pulling it at module import would be circular-ish
        # during package init.
        from ..serve import ShardedSearchEngine

        config = None
        if client is None:
            config = ClientConfig(
                params or _default_params(),
                chunk_width=chunk_width,
                index_mode=index_mode,
                key_seed=key_seed,
                poly_backend=poly_backend,
            )
        self.engine = ShardedSearchEngine(
            config,
            client=client,
            num_shards=num_shards,
            backend_factory=backend_factory,
            max_workers=max_workers,
            cache_capacity=cache_capacity,
            search_kernel=search_kernel,
            executor=executor,
            degraded_mode=degraded_mode,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown,
            cache=cache,
            tenant=tenant,
        )
        #: full :class:`~repro.serve.report.ServeReport` of the most
        #: recent batch (wall/modeled latency percentiles, cache stats).
        self.last_serve_report = None

    def outsource(self, db_bits: np.ndarray) -> None:
        self.engine.outsource(np.asarray(db_bits, dtype=np.uint8))

    def close(self) -> None:
        """Shut down shard worker processes (no-op under threads)."""
        self.engine.close()

    def adopt_database(self, db) -> None:
        """Shard a database some pipeline already encrypted."""
        self.engine.adopt_database(db)

    @property
    def db_bit_length(self) -> Optional[int]:
        return None if self.engine.db is None else self.engine.db.bit_length

    def _shard_breakdown(self) -> tuple:
        return tuple(
            ShardBreakdown(
                shard_id=s.shard_id,
                num_polynomials=s.num_polynomials,
                hom_adds=s.hom_adds,
                tasks_executed=s.tasks_executed,
            )
            for s in self.engine.shards
        )

    def _exact(self, bits: np.ndarray, verify: bool) -> _Outcome:
        serve = self.engine.search_batch([bits], verify=verify)
        self.last_serve_report = serve
        report = serve.reports[0]
        return _Outcome(
            matches=list(report.matches),
            hom_ops=HomOpTally(additions=report.hom_additions),
            verified=verify,
            num_variants=report.num_variants,
            encrypted_db_bytes=report.encrypted_db_bytes,
            shards=self._shard_breakdown(),
            degraded_shards=tuple(report.degraded_shards),
        )

    def _execute_batch(self, request: BatchSearch) -> BatchSearchResult:
        """Native batch path: the whole batch goes through the serve
        worker pool in one deduplicated submission."""
        if self.db_bit_length is None:
            raise RuntimeError("outsource a database first")
        queries = self._batch_queries(request)
        policies = {q.verify for q in queries}
        if len(policies) > 1:
            # Mixed per-query policies cannot share one serve submission;
            # fall back to the sequential path.
            return super()._execute_batch(request)
        verify = policies.pop().resolve(self.capabilities.verify)
        start = time.perf_counter()
        serve = self.engine.search_batch(
            [q.bit_array() for q in queries], verify=verify
        )
        self.last_serve_report = serve
        elapsed = time.perf_counter() - start
        shards = self._shard_breakdown()
        results = tuple(
            SearchResult(
                matches=tuple(r.matches),
                engine=self.key,
                scheme=self.capabilities.scheme,
                hom_ops=HomOpTally(additions=r.hom_additions),
                elapsed_seconds=serve.latencies[i],
                verified=verify,
                num_variants=r.num_variants,
                encrypted_db_bytes=r.encrypted_db_bytes,
                shards=shards,
                degraded_shards=tuple(r.degraded_shards),
            )
            for i, r in enumerate(serve.reports)
        )
        return BatchSearchResult(
            results=results,
            engine=self.key,
            elapsed_seconds=elapsed,
            deduplicated_hits=serve.deduplicated_hits,
        )


# ---------------------------------------------------------------------------
# Baselines
# ---------------------------------------------------------------------------


class PlaintextEngine(Engine):
    """The unencrypted oracle, addressable like any other engine."""

    key = "plaintext"
    CAPS = Capabilities(
        scheme="none", wildcard=True, batching=True, verify=True
    )

    def __init__(self):
        self._db: Optional[np.ndarray] = None

    def outsource(self, db_bits: np.ndarray) -> None:
        self._db = np.asarray(db_bits, dtype=np.uint8).copy()

    @property
    def db_bit_length(self) -> Optional[int]:
        return None if self._db is None else len(self._db)

    def _exact(self, bits: np.ndarray, verify: bool) -> _Outcome:
        return _Outcome(
            matches=find_all_matches(self._db, bits), verified=True
        )


class BooleanEngine(Engine):
    """Per-bit XNOR/AND Boolean baseline on the BFV stand-in
    (:class:`~repro.baselines.BooleanMatcher`)."""

    key = "boolean-bfv"
    CAPS = Capabilities(
        scheme="bfv-boolean",
        max_query_bits=16,  # AND-reduce depth vs the levelled budget
        practical_query_bits=8,
        practical_db_bits=48,
    )

    def __init__(
        self,
        params: Optional[BFVParams] = None,
        *,
        seed: Optional[int] = None,
        poly_backend: Optional[str] = None,
    ):
        params = params or BFVParams.boolean_baseline(n=128)
        self.matcher = BooleanMatcher(params, seed, poly_backend=poly_backend)
        self.sk, self.pk, self.rlk, _ = generate_keys(
            params, seed, relin=True, backend=poly_backend
        )
        self._db = None
        self._db_bits: Optional[int] = None

    def outsource(self, db_bits: np.ndarray) -> None:
        db_bits = np.asarray(db_bits, dtype=np.uint8)
        self._db = self.matcher.encrypt_database(db_bits, self.pk)
        self._db_bits = len(db_bits)

    @property
    def db_bit_length(self) -> Optional[int]:
        return self._db_bits

    def _exact(self, bits: np.ndarray, verify: bool) -> _Outcome:
        xnor0 = self.matcher.stats.xnor_gates
        and0 = self.matcher.stats.and_gates
        matches = self.matcher.search(self._db, bits, self.pk, self.sk, self.rlk)
        return _Outcome(
            matches=list(matches),
            hom_ops=HomOpTally(
                additions=self.matcher.stats.xnor_gates - xnor0,
                multiplications=self.matcher.stats.and_gates - and0,
            ),
            encrypted_db_bytes=self._db.serialized_bytes,
        )


class TfheBooleanEngine(Engine):
    """The identical Boolean circuit over real bootstrapped TFHE gates
    (:class:`~repro.baselines.TfheBooleanMatcher`)."""

    key = "boolean-tfhe"
    CAPS = Capabilities(
        scheme="tfhe",
        practical_query_bits=4,
        practical_db_bits=24,
    )

    def __init__(
        self, params: Optional[TFHEParams] = None, *, seed: Optional[int] = None
    ):
        self.matcher = TfheBooleanMatcher(params or TFHEParams.test_tiny(), seed)
        self._db = None
        self._db_bits: Optional[int] = None

    def outsource(self, db_bits: np.ndarray) -> None:
        db_bits = np.asarray(db_bits, dtype=np.uint8)
        self._db = self.matcher.encrypt_database(db_bits)
        self._db_bits = len(db_bits)

    @property
    def db_bit_length(self) -> Optional[int]:
        return self._db_bits

    def _exact(self, bits: np.ndarray, verify: bool) -> _Outcome:
        boots0 = self.matcher.stats.bootstraps
        matches = self.matcher.search(self._db, bits)
        return _Outcome(
            matches=list(matches),
            hom_ops=HomOpTally(
                bootstraps=self.matcher.stats.bootstraps - boots0
            ),
            encrypted_db_bytes=self._db.serialized_bytes,
        )


class YasudaEngine(Engine):
    """Arithmetic baseline [27]: packed Hamming-distance correlation
    (:class:`~repro.baselines.YasudaMatcher`)."""

    key = "yasuda"
    CAPS = Capabilities(
        scheme="bfv-arith",
        max_query_bits=32,
        practical_db_bits=512,
    )

    def __init__(
        self,
        params: Optional[BFVParams] = None,
        *,
        max_query_bits: int = 32,
        seed: Optional[int] = None,
        poly_backend: Optional[str] = None,
    ):
        params = params or BFVParams.arithmetic_baseline(n=128, t=512)
        self.matcher = YasudaMatcher(
            params,
            max_query_bits=max_query_bits,
            seed=seed,
            poly_backend=poly_backend,
        )
        self.sk, self.pk, self.rlk, _ = generate_keys(
            params, seed, relin=True, backend=poly_backend
        )
        self._db = None
        self._db_bits: Optional[int] = None

    @property
    def capabilities(self) -> Capabilities:
        return replace(self.CAPS, max_query_bits=self.matcher.max_query_bits)

    def outsource(self, db_bits: np.ndarray) -> None:
        db_bits = np.asarray(db_bits, dtype=np.uint8)
        self._db = self.matcher.encrypt_database(db_bits, self.pk)
        self._db_bits = len(db_bits)

    @property
    def db_bit_length(self) -> Optional[int]:
        return self._db_bits

    def _exact(self, bits: np.ndarray, verify: bool) -> _Outcome:
        mult0 = self.matcher.ops.multiplications
        add0 = self.matcher.ops.additions
        matches = self.matcher.search(self._db, bits, self.pk, self.sk, self.rlk)
        return _Outcome(
            matches=list(matches),
            hom_ops=HomOpTally(
                additions=self.matcher.ops.additions - add0,
                multiplications=self.matcher.ops.multiplications - mult0,
            ),
            encrypted_db_bytes=self._db.serialized_bytes,
        )


class KimHomEQEngine(Engine):
    """Kim et al. [34] HomEQ equality-circuit baseline, with database
    bits embedded as ``F_t`` characters."""

    key = "kim-homeq"
    CAPS = Capabilities(
        scheme="bfv-arith",
        max_query_bits=4,  # query length must stay below t = 5
        practical_db_bits=24,
    )

    def __init__(
        self,
        params: Optional[BFVParams] = None,
        *,
        seed: Optional[int] = None,
        poly_backend: Optional[str] = None,
    ):
        self.matcher = KimHomEQMatcher(params, seed, poly_backend=poly_backend)
        self._db = None
        self._db_bits: Optional[int] = None

    @property
    def capabilities(self) -> Capabilities:
        return replace(self.CAPS, max_query_bits=self.matcher.params.t - 1)

    def outsource(self, db_bits: np.ndarray) -> None:
        db_bits = np.asarray(db_bits, dtype=np.uint8)
        self._db = self.matcher.encrypt_database([int(b) for b in db_bits])
        self._db_bits = len(db_bits)

    @property
    def db_bit_length(self) -> Optional[int]:
        return self._db_bits

    def _exact(self, bits: np.ndarray, verify: bool) -> _Outcome:
        stats = self.matcher.stats
        mult0, pmult0, add0 = (
            stats.multiplications,
            stats.plain_multiplications,
            stats.additions,
        )
        matches = self.matcher.search(self._db, [int(b) for b in bits])
        return _Outcome(
            matches=list(matches),
            hom_ops=HomOpTally(
                additions=stats.additions - add0,
                multiplications=stats.multiplications - mult0,
                plain_multiplications=stats.plain_multiplications - pmult0,
            ),
            encrypted_db_bytes=self._db.serialized_bytes,
        )


class BonteEngine(Engine):
    """Bonte & Iliashenko [29] constant-depth batched window equality.

    The construction windows the database at the *query* length, so the
    adapter keeps the plaintext bits and lazily encrypts one windowed
    database per distinct query size (cached).
    """

    key = "bonte"
    CAPS = Capabilities(
        scheme="bfv-arith",
        max_query_bits=4,  # window value must fit one F_17 slot
        practical_db_bits=32,
    )

    def __init__(
        self,
        params: Optional[BFVParams] = None,
        *,
        seed: Optional[int] = None,
        poly_backend: Optional[str] = None,
    ):
        self.matcher = BonteMatcher(params, seed, poly_backend=poly_backend)
        self._db_plain: Optional[np.ndarray] = None
        self._windowed: dict[int, object] = {}

    @property
    def capabilities(self) -> Capabilities:
        return replace(self.CAPS, max_query_bits=self.matcher.max_window_bits)

    def outsource(self, db_bits: np.ndarray) -> None:
        self._db_plain = np.asarray(db_bits, dtype=np.uint8).copy()
        self._windowed.clear()

    @property
    def db_bit_length(self) -> Optional[int]:
        return None if self._db_plain is None else len(self._db_plain)

    def _exact(self, bits: np.ndarray, verify: bool) -> _Outcome:
        window = len(bits)
        if window not in self._windowed:
            self._windowed[window] = self.matcher.encrypt_database(
                self._db_plain, window_bits=window
            )
        db = self._windowed[window]
        stats = self.matcher.stats
        mult0, add0, auto0 = (
            stats.multiplications,
            stats.additions,
            stats.automorphisms,
        )
        matches = self.matcher.search(db, bits)
        return _Outcome(
            matches=list(matches),
            hom_ops=HomOpTally(
                additions=stats.additions - add0,
                multiplications=stats.multiplications - mult0,
                automorphisms=stats.automorphisms - auto0,
            ),
            encrypted_db_bytes=db.serialized_bytes,
        )
