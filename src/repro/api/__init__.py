"""Unified search facade: typed requests, an engine registry, and a
session layer over every matcher in the reproduction.

One call gets a ready-to-search session on any registered engine —
the core BFV packing pipeline, the wire protocol, the concurrent
sharded serving engine, or any of the prior-work baselines — and every
engine consumes the same frozen request types and returns the same
:class:`SearchResult`:

>>> import numpy as np, repro
>>> db = np.zeros(4096, dtype=np.uint8); db[160:192] = 1
>>> with repro.open_session("bfv", key_seed=7, db_bits=db) as s:
...     s.search(np.ones(32, dtype=np.uint8)).matches
(160,)

Swapping engines is a one-word change (``"bfv"`` -> ``"bfv-sharded"``
-> ``"yasuda"`` -> ``"plaintext"``); requests an engine cannot serve
fail fast with :class:`CapabilityError`.  ``Session.submit`` gives
future-based asynchronous submission with native batch coalescing on
engines that declare it.  See ``docs/api.md`` for the full contract,
the capability matrix and the old-call -> new-call migration table.
"""

from .capabilities import Capabilities, CapabilityError, UnknownEngineError
from .engines import (
    BonteEngine,
    BooleanEngine,
    Engine,
    KimHomEQEngine,
    PipelineEngine,
    PlaintextEngine,
    ShardedEngine,
    TfheBooleanEngine,
    WireEngine,
    YasudaEngine,
)
from .registry import DEFAULT_REGISTRY, EngineRegistry, EngineSpec
from .requests import (
    BatchSearch,
    BatchSearchResult,
    ExactSearch,
    HomOpTally,
    SearchRequest,
    SearchResult,
    ShardBreakdown,
    WildcardSearch,
)
from .session import Session, open_session
from ..verify import VerifyLike, VerifyPolicy

__all__ = [
    "BatchSearch",
    "BatchSearchResult",
    "BonteEngine",
    "BooleanEngine",
    "Capabilities",
    "CapabilityError",
    "DEFAULT_REGISTRY",
    "Engine",
    "EngineRegistry",
    "EngineSpec",
    "ExactSearch",
    "HomOpTally",
    "KimHomEQEngine",
    "PipelineEngine",
    "PlaintextEngine",
    "SearchRequest",
    "SearchResult",
    "Session",
    "ShardBreakdown",
    "ShardedEngine",
    "TfheBooleanEngine",
    "UnknownEngineError",
    "VerifyLike",
    "VerifyPolicy",
    "WildcardSearch",
    "WireEngine",
    "YasudaEngine",
    "open_session",
]
