"""Typed request and response contracts of the unified search facade.

Every engine adapter in :mod:`repro.api.engines` consumes the frozen
request dataclasses defined here and returns a :class:`SearchResult`,
regardless of which scheme (BFV packing, Boolean circuits, TFHE gates,
arithmetic baselines, plaintext) executes underneath.  Requests are
immutable and hashable on purpose: the session layer deduplicates and
caches on them, and they survive being queued across threads.

Bit payloads are stored as ``tuple[int, ...]`` rather than numpy arrays
so the dataclasses stay frozen/hashable; the ``from_*`` constructors
accept the convenient spellings (numpy arrays, ASCII text, raw bytes —
the workload-level payloads of the case studies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence, Tuple

import numpy as np

from ..utils.bits import bytes_to_bits, text_to_bits
from ..verify import VerifyPolicy


def _as_bit_tuple(bits: Iterable[int]) -> Tuple[int, ...]:
    out = tuple(int(b) for b in np.asarray(bits, dtype=np.int64).ravel())
    if any(b not in (0, 1) for b in out):
        raise ValueError("bit payloads must contain only 0/1 values")
    return out


@dataclass(frozen=True)
class SearchRequest:
    """Base class of every request the facade accepts."""

    verify: VerifyPolicy = field(default=VerifyPolicy.AUTO, kw_only=True)

    def __post_init__(self) -> None:
        # Accept the legacy bool spelling anywhere a policy is expected.
        object.__setattr__(self, "verify", VerifyPolicy.coerce(self.verify))


@dataclass(frozen=True)
class ExactSearch(SearchRequest):
    """Find every bit offset where ``bits`` occurs in the database."""

    bits: Tuple[int, ...]

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "bits", _as_bit_tuple(self.bits))
        if not self.bits:
            raise ValueError("empty query")

    @property
    def num_bits(self) -> int:
        return len(self.bits)

    def bit_array(self) -> np.ndarray:
        return np.array(self.bits, dtype=np.uint8)

    # -- workload-level constructors ------------------------------------

    @classmethod
    def from_bits(cls, bits, *, verify: VerifyPolicy = VerifyPolicy.AUTO) -> "ExactSearch":
        return cls(_as_bit_tuple(bits), verify=verify)

    @classmethod
    def from_bytes(cls, payload: bytes, *, verify: VerifyPolicy = VerifyPolicy.AUTO) -> "ExactSearch":
        return cls(tuple(int(b) for b in bytes_to_bits(payload)), verify=verify)

    @classmethod
    def from_text(cls, text: str, *, verify: VerifyPolicy = VerifyPolicy.AUTO) -> "ExactSearch":
        """ASCII payload — the encrypted-database / DNA case-study form."""
        return cls(tuple(int(b) for b in text_to_bits(text)), verify=verify)


@dataclass(frozen=True)
class WildcardSearch(SearchRequest):
    """Find every offset where a pattern with don't-care bits occurs.

    ``mask[i] == 1`` marks a literal bit, ``0`` a wildcard.
    """

    bits: Tuple[int, ...]
    mask: Tuple[int, ...]

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "bits", _as_bit_tuple(self.bits))
        object.__setattr__(self, "mask", _as_bit_tuple(self.mask))
        if len(self.bits) != len(self.mask):
            raise ValueError("bits and mask must have the same length")
        if not any(self.mask):
            raise ValueError("pattern has no literal bits")

    @property
    def num_bits(self) -> int:
        return len(self.bits)

    @property
    def literal_bits(self) -> int:
        return sum(self.mask)

    @classmethod
    def from_text(
        cls,
        pattern: str,
        wildcard: str = "?",
        *,
        verify: VerifyPolicy = VerifyPolicy.AUTO,
    ) -> "WildcardSearch":
        """Byte-level wildcards over an ASCII pattern (``AB??CD``)."""
        # The canonical parser lives with the pattern type (lazy import:
        # repro.core loads after repro.verify but this module is a leaf).
        from ..core.wildcard import WildcardPattern

        bits, mask = WildcardPattern.from_text(pattern, wildcard).to_bits_and_mask()
        return cls(tuple(int(b) for b in bits), tuple(int(m) for m in mask),
                   verify=verify)


@dataclass(frozen=True)
class BatchSearch(SearchRequest):
    """A batch of exact queries executed as one unit (Figure 9/12)."""

    queries: Tuple[ExactSearch, ...]

    def __post_init__(self) -> None:
        super().__post_init__()
        queries = tuple(
            q if isinstance(q, ExactSearch) else ExactSearch.from_bits(q)
            for q in self.queries
        )
        if not queries:
            raise ValueError("empty batch")
        object.__setattr__(self, "queries", queries)

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    @classmethod
    def from_bit_arrays(
        cls, arrays: Sequence, *, verify: VerifyPolicy = VerifyPolicy.AUTO
    ) -> "BatchSearch":
        return cls(tuple(ExactSearch.from_bits(a) for a in arrays), verify=verify)


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HomOpTally:
    """Homomorphic-operation counts attributed to one request."""

    additions: int = 0
    multiplications: int = 0
    plain_multiplications: int = 0
    automorphisms: int = 0
    bootstraps: int = 0

    @property
    def total(self) -> int:
        return (
            self.additions
            + self.multiplications
            + self.plain_multiplications
            + self.automorphisms
            + self.bootstraps
        )


@dataclass(frozen=True)
class ShardBreakdown:
    """Per-shard execution share for sharded engines."""

    shard_id: int
    num_polynomials: int
    hom_adds: int
    tasks_executed: int


@dataclass(frozen=True)
class SearchResult:
    """What every engine returns, whatever runs underneath."""

    matches: Tuple[int, ...]
    engine: str
    scheme: str
    hom_ops: HomOpTally
    elapsed_seconds: float
    verified: bool
    num_variants: int = 0
    encrypted_db_bytes: int = 0
    shards: Tuple[ShardBreakdown, ...] = ()
    #: shards whose results are missing (partial-results degradation);
    #: empty means the matches cover the whole database
    degraded_shards: Tuple[int, ...] = ()

    @property
    def num_matches(self) -> int:
        return len(self.matches)

    @property
    def degraded(self) -> bool:
        return bool(self.degraded_shards)

    @property
    def sharded(self) -> bool:
        return len(self.shards) > 1


@dataclass(frozen=True)
class BatchSearchResult:
    """Per-query results of a :class:`BatchSearch`, submission order."""

    results: Tuple[SearchResult, ...]
    engine: str
    elapsed_seconds: float
    deduplicated_hits: int = 0

    @property
    def num_queries(self) -> int:
        return len(self.results)

    @property
    def total_matches(self) -> int:
        return sum(r.num_matches for r in self.results)

    @property
    def total_hom_ops(self) -> int:
        return sum(r.hom_ops.total for r in self.results)

    def matches_per_query(self) -> list[list[int]]:
        return [list(r.matches) for r in self.results]
