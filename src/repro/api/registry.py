"""String-keyed registry of every search engine in the reproduction.

The registry is what makes engines swappable from call sites: a caller
names an engine (``"bfv-sharded"``, ``"yasuda"``, ...) and gets back a
fully-constructed adapter without importing any scheme-specific module.
``repro.open_session`` resolves through the default registry; custom
engines can be registered at runtime (e.g. an experimental matcher in a
notebook) and immediately gain the session/batching machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Tuple, Type

from .capabilities import Capabilities, UnknownEngineError
from .engines import (
    BonteEngine,
    BooleanEngine,
    Engine,
    KimHomEQEngine,
    PipelineEngine,
    PlaintextEngine,
    ShardedEngine,
    TfheBooleanEngine,
    WireEngine,
    YasudaEngine,
)


@dataclass(frozen=True)
class EngineSpec:
    """One registry entry: how to build an engine and what it claims."""

    key: str
    factory: Callable[..., Engine]
    summary: str
    capabilities: Capabilities


class EngineRegistry:
    """Mutable mapping from string keys to engine factories."""

    def __init__(self) -> None:
        self._specs: Dict[str, EngineSpec] = {}

    # -- registration ----------------------------------------------------

    def register(
        self,
        key: str,
        factory: Callable[..., Engine],
        *,
        summary: str,
        capabilities: Capabilities,
        overwrite: bool = False,
    ) -> None:
        if not overwrite and key in self._specs:
            raise ValueError(f"engine key {key!r} already registered")
        self._specs[key] = EngineSpec(key, factory, summary, capabilities)

    def register_engine_class(
        self, cls: Type[Engine], *, summary: str, overwrite: bool = False
    ) -> None:
        """Register an :class:`Engine` subclass under its ``key``."""
        self.register(
            cls.key,
            cls,
            summary=summary,
            capabilities=cls.CAPS,
            overwrite=overwrite,
        )

    # -- lookup ----------------------------------------------------------

    def spec(self, key: str) -> EngineSpec:
        try:
            return self._specs[key]
        except KeyError:
            raise UnknownEngineError(key, self.keys()) from None

    def create(self, key: str, **kwargs) -> Engine:
        """Construct the engine registered under ``key``.

        Keyword arguments flow straight into the engine constructor
        (``params=``, ``poly_backend=``, ``num_shards=``, ...), so an
        argument an engine does not take fails loudly with the engine's
        own ``TypeError`` rather than being dropped.
        """
        return self.spec(key).factory(**kwargs)

    def keys(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    def __contains__(self, key: str) -> bool:
        return key in self._specs

    def __iter__(self) -> Iterator[EngineSpec]:
        return iter(self._specs.values())

    # -- reporting -------------------------------------------------------

    def capability_matrix(self) -> str:
        """Engine x capability table (rendered like the eval tables)."""
        from ..eval.tables import format_table

        def mark(flag: bool) -> str:
            return "yes" if flag else "-"

        rows = []
        for spec in self:
            caps = spec.capabilities
            rows.append(
                [
                    spec.key,
                    caps.scheme,
                    mark(caps.wildcard),
                    mark(caps.batching),
                    mark(caps.sharded),
                    mark(caps.verify),
                    "-" if caps.max_query_bits is None else str(caps.max_query_bits),
                ]
            )
        return format_table(
            "registered engines",
            ["engine", "scheme", "wildcard", "batch", "shard", "verify",
             "max query bits"],
            rows,
        )


def _build_default_registry() -> EngineRegistry:
    reg = EngineRegistry()
    reg.register_engine_class(
        PipelineEngine,
        summary="CIPHERMATCH packing pipeline (Hom-Add only, in-process)",
    )
    reg.register_engine_class(
        WireEngine,
        summary="CIPHERMATCH over the serialized two-round wire protocol",
    )
    reg.register_engine_class(
        ShardedEngine,
        summary="concurrent sharded serving engine with variant cache",
    )
    reg.register_engine_class(
        PlaintextEngine, summary="unencrypted oracle (reference results)"
    )
    reg.register_engine_class(
        BooleanEngine,
        summary="Boolean per-bit XNOR/AND baseline on the BFV stand-in",
    )
    reg.register_engine_class(
        TfheBooleanEngine,
        summary="Boolean baseline over real bootstrapped TFHE gates",
    )
    reg.register_engine_class(
        YasudaEngine,
        summary="arithmetic baseline: packed Hamming distance (Yasuda)",
    )
    reg.register_engine_class(
        KimHomEQEngine,
        summary="arithmetic baseline: HomEQ equality circuit (Kim)",
    )
    reg.register_engine_class(
        BonteEngine,
        summary="arithmetic baseline: batched window equality (Bonte)",
    )
    return reg


#: The process-wide registry ``repro.open_session`` resolves against.
DEFAULT_REGISTRY = _build_default_registry()
