"""The session layer: lifecycle + sync/async execution over one engine.

A :class:`Session` owns exactly one engine (and therefore one key set
and one outsourced database) and exposes:

* ``search(request)`` — synchronous execution of any request type;
* ``submit(request)`` — asynchronous submission returning a
  :class:`concurrent.futures.Future`; a background dispatcher drains
  the submission queue, and consecutive exact requests are coalesced
  into one native batch when the engine declares ``batching`` (the
  sharded engine's worker pool then executes them concurrently with
  variant-cache sharing and deduplication);
* context-manager lifecycle (``with repro.open_session(...) as s:``) —
  exit drains pending futures and releases the dispatcher thread.

Futures resolve in submission order *per request* — the i-th submitted
request always receives the result of its own query, whatever internal
coalescing happened.
"""

from __future__ import annotations

import queue as queue_mod
import threading
from concurrent.futures import Future
from typing import List, Optional, Sequence, Union

import numpy as np

from ..verify import VerifyLike, VerifyPolicy
from .capabilities import Capabilities
from .engines import Engine
from .requests import (
    BatchSearch,
    BatchSearchResult,
    ExactSearch,
    SearchRequest,
    SearchResult,
)

RequestLike = Union[SearchRequest, np.ndarray, Sequence[int], str]


def _as_request(request: RequestLike, verify: VerifyLike = None) -> SearchRequest:
    """Accept the convenient spellings: a request object, raw query
    bits, or an ASCII needle."""
    policy = VerifyPolicy.coerce(verify)
    if isinstance(request, SearchRequest):
        if verify is None or request.verify is policy:
            return request
        # dataclasses.replace on the concrete type keeps the subclass
        import dataclasses

        return dataclasses.replace(request, verify=policy)
    if isinstance(request, str):
        return ExactSearch.from_text(request, verify=policy)
    return ExactSearch.from_bits(request, verify=policy)


class Session:
    """One open engine: database, keys, caches, and a dispatch loop."""

    def __init__(self, engine: Engine, tenant: Optional[str] = None):
        self.engine = engine
        #: tenant id this session serves under ("" = single-tenant)
        self.tenant = tenant or ""
        self._queue: "queue_mod.Queue" = queue_mod.Queue()
        self._dispatcher: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._closed = False
        self._pending: List[Future] = []

    # -- introspection ---------------------------------------------------

    @property
    def capabilities(self) -> Capabilities:
        return self.engine.capabilities

    @property
    def engine_key(self) -> str:
        return self.engine.key

    @property
    def db_bit_length(self) -> Optional[int]:
        return self.engine.db_bit_length

    # -- lifecycle -------------------------------------------------------

    def outsource(self, db_bits) -> "Session":
        """Pack/encrypt + store the database; returns ``self`` so
        ``open_session(...).outsource(db)`` chains."""
        self._check_open()
        self.engine.outsource(np.asarray(db_bits, dtype=np.uint8))
        return self

    def close(self) -> None:
        """Drain pending async work and stop the dispatcher."""
        if self._closed:
            return
        self.drain()
        self._closed = True
        with self._lock:
            dispatcher = self._dispatcher
            self._dispatcher = None
        if dispatcher is not None:
            self._queue.put(None)  # wake + stop
            dispatcher.join()
        self.engine.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    # -- synchronous execution -------------------------------------------

    def search(
        self, request: RequestLike, *, verify: VerifyLike = None
    ) -> Union[SearchResult, BatchSearchResult]:
        """Execute one request synchronously.

        Accepts a typed request, raw query bits (array/sequence) or an
        ASCII string; ``verify`` overrides the request's policy.
        """
        self._check_open()
        return self.engine.execute(_as_request(request, verify))

    def search_batch(
        self, queries: Sequence, *, verify: VerifyLike = None
    ) -> BatchSearchResult:
        """Execute many exact queries as one (possibly native) batch."""
        self._check_open()
        policy = VerifyPolicy.coerce(verify)
        batch = BatchSearch(
            tuple(
                q if isinstance(q, ExactSearch) else ExactSearch.from_bits(q)
                for q in queries
            ),
            verify=policy,
        )
        return self.engine.execute(batch)

    # -- asynchronous execution ------------------------------------------

    def submit(
        self, request: RequestLike, *, verify: VerifyLike = None
    ) -> "Future":
        """Queue one request; returns a future of its result.

        Capability validation happens *now* (submit raises on a request
        the engine cannot serve — no dead futures), execution happens on
        the dispatcher thread.
        """
        self._check_open()
        req = _as_request(request, verify)
        self.engine.capabilities.check(req, self.engine.key)
        future: Future = Future()
        # Prune resolved futures so a long-lived session that never
        # calls drain() does not accumulate every past result.
        self._pending = [f for f in self._pending if not f.done()]
        self._pending.append(future)
        self._queue.put((req, future))
        self._ensure_dispatcher()
        return future

    def submit_batch(
        self, queries: Sequence, *, verify: VerifyLike = None
    ) -> List["Future"]:
        """Submit many exact queries; one future per query, in order."""
        return [self.submit(q, verify=verify) for q in queries]

    def drain(self) -> None:
        """Block until every submitted future has resolved."""
        import concurrent.futures

        pending, self._pending = self._pending, []
        for future in pending:
            if not future.done():
                try:
                    future.exception()  # waits; caller re-raises via result()
                except concurrent.futures.CancelledError:
                    pass  # cancelled while queued (e.g. shed): nothing to wait
        # keep unfinished ones (exception() waited, so none remain)

    def _ensure_dispatcher(self) -> None:
        with self._lock:
            if self._dispatcher is None or not self._dispatcher.is_alive():
                self._dispatcher = threading.Thread(
                    target=self._dispatch_loop,
                    name=f"session-{self.engine.key}",
                    daemon=True,
                )
                self._dispatcher.start()

    # -- dispatcher ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            batch = [item]
            # Coalesce whatever else is already queued: consecutive
            # exact requests with one policy become a native batch.
            while True:
                try:
                    nxt = self._queue.get_nowait()
                except queue_mod.Empty:
                    break
                if nxt is None:
                    self._run(batch)
                    return
                batch.append(nxt)
            self._run(batch)

    def _run(self, items) -> None:
        """Execute a coalesced run, preserving per-future pairing."""
        i = 0
        while i < len(items):
            req, _ = items[i]
            group = [items[i]]
            if isinstance(req, ExactSearch) and self.engine.capabilities.batching:
                while (
                    i + len(group) < len(items)
                    and isinstance(items[i + len(group)][0], ExactSearch)
                    and items[i + len(group)][0].verify is req.verify
                ):
                    group.append(items[i + len(group)])
            if len(group) > 1:
                self._run_native_batch(group)
            else:
                self._run_single(req, items[i][1])
            i += len(group)

    def _run_single(self, req: SearchRequest, future: "Future") -> None:
        # A future cancelled while queued (e.g. shed by the network
        # front end's admission control) must neither execute nor be
        # resolved — set_result on a cancelled future raises and would
        # kill the dispatcher thread.
        if not future.set_running_or_notify_cancel():
            return
        try:
            result = self.engine.execute(req)
        except BaseException as exc:
            future.set_exception(exc)
        else:
            future.set_result(result)

    def _run_native_batch(self, group) -> None:
        group = [
            (req, future)
            for req, future in group
            if future.set_running_or_notify_cancel()
        ]
        if not group:
            return
        requests = tuple(req for req, _ in group)
        try:
            batch_result = self.engine.execute(
                BatchSearch(requests, verify=requests[0].verify)
            )
        except BaseException as exc:
            for _, future in group:
                future.set_exception(exc)
            return
        for (_, future), result in zip(group, batch_result.results):
            future.set_result(result)


def open_session(
    engine: Union[str, Engine],
    *,
    db_bits=None,
    registry=None,
    tenant=None,
    **engine_kwargs,
) -> Session:
    """One call from engine name to ready-to-search session.

    ``engine`` is a registry key (``"bfv"``, ``"bfv-sharded"``,
    ``"yasuda"``, ...) or an already-built :class:`Engine`.  Keyword
    arguments flow to the engine constructor (``params=``,
    ``poly_backend=``, ``search_kernel=``, ``num_shards=``,
    ``cache_capacity=``, ...), which owns key generation and cache
    wiring.  Passing ``db_bits`` also
    outsources the database immediately:

    >>> import numpy as np, repro
    >>> db = np.zeros(4096, dtype=np.uint8); db[160:192] = 1
    >>> with repro.open_session("bfv-sharded", num_shards=2,
    ...                         key_seed=1, db_bits=db) as s:
    ...     s.search(np.ones(32, dtype=np.uint8)).matches
    (160,)
    """
    if isinstance(engine, Engine):
        if engine_kwargs:
            raise TypeError(
                "engine kwargs only apply when opening by registry key"
            )
        built = engine
    else:
        from .registry import DEFAULT_REGISTRY

        reg = registry or DEFAULT_REGISTRY
        if tenant:
            # Engines that declare a ``tenant`` parameter (the remote
            # client binds it at HELLO; the sharded engine stamps its
            # serve reports) receive the session's tenant identity.
            import inspect

            try:
                factory_params = inspect.signature(
                    reg.spec(engine).factory
                ).parameters
            except (TypeError, ValueError):
                factory_params = {}
            if "tenant" in factory_params:
                engine_kwargs.setdefault("tenant", tenant)
        built = reg.create(engine, **engine_kwargs)
    session = Session(built, tenant=tenant)
    if db_bits is not None:
        session.outsource(db_bits)
    return session
