"""Engine capability declarations and the errors the facade raises.

Every engine adapter declares what it can actually do — which scheme it
runs, whether it supports wildcard joins, native batching, sharding and
result verification, and the query/database sizes it handles.  The
session layer validates requests against these declarations *before*
any ciphertext work happens, so a wildcard request against an engine
without a wildcard path fails fast with :class:`CapabilityError`
instead of deep inside a matcher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..verify import VerifyPolicy
from .requests import BatchSearch, ExactSearch, SearchRequest, WildcardSearch


class CapabilityError(ValueError):
    """A request asks for something the target engine cannot do."""


class UnknownEngineError(KeyError):
    """A registry lookup used a key no engine is registered under."""

    def __init__(self, key: str, known: tuple[str, ...]):
        super().__init__(key)
        self.key = key
        self.known = known

    def __str__(self) -> str:
        return (
            f"no engine registered under {self.key!r}; "
            f"known engines: {', '.join(self.known)}"
        )


@dataclass(frozen=True)
class Capabilities:
    """What one engine supports, as validated by the session layer.

    ``max_query_bits`` is a *scheme* limit (e.g. Bonte's window must fit
    one plaintext slot); ``practical_query_bits``/``practical_db_bits``
    are functional-scale guidance for pure-Python runs (what the parity
    tests and demos size their fixtures to).  ``exact_query_bits`` is
    the minimum query length at which the engine detects occurrences at
    *every* bit phase without relying on verification-filtered
    candidates (2w - 1 for the packing pipeline).
    """

    scheme: str
    wildcard: bool = False
    batching: bool = False
    sharded: bool = False
    verify: bool = False
    max_query_bits: Optional[int] = None
    practical_query_bits: Optional[int] = None
    practical_db_bits: Optional[int] = None
    exact_query_bits: int = 1

    def query_bits_for_parity(self, requested: int) -> int:
        """Clamp a fixture query length to what this engine supports."""
        limit = requested
        for cap in (self.max_query_bits, self.practical_query_bits):
            if cap is not None:
                limit = min(limit, cap)
        return limit

    def db_bits_for_parity(self, requested: int) -> int:
        """Clamp a fixture database length to a practical size."""
        if self.practical_db_bits is None:
            return requested
        return min(requested, self.practical_db_bits)

    # -- request validation ---------------------------------------------

    def check(self, request: SearchRequest, engine_key: str) -> None:
        """Raise :class:`CapabilityError` if this engine cannot serve
        ``request``; return silently otherwise."""
        if isinstance(request, WildcardSearch) and not self.wildcard:
            raise CapabilityError(
                f"engine {engine_key!r} has no wildcard path "
                f"(capabilities: scheme={self.scheme!r}, wildcard=False)"
            )
        if request.verify is VerifyPolicy.VERIFY and not self.verify:
            raise CapabilityError(
                f"engine {engine_key!r} has no verification step; use "
                f"VerifyPolicy.AUTO (skips it) or VerifyPolicy.SKIP"
            )
        if isinstance(request, BatchSearch):
            for sub in request.queries:
                self.check(sub, engine_key)
            return
        if isinstance(request, (ExactSearch, WildcardSearch)):
            bits = request.num_bits
            if self.max_query_bits is not None and bits > self.max_query_bits:
                raise CapabilityError(
                    f"engine {engine_key!r} caps queries at "
                    f"{self.max_query_bits} bits, got {bits}"
                )
