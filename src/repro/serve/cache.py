"""Bounded, thread-safe LRU cache for encrypted query variants.

A query batch re-encrypts the same (query, variant, residue-class)
polynomial once per shard touch unless something caches it.  The old
:class:`repro.core.batch.BatchSearcher` kept an *unbounded* per-batch
dict; a serving process that stays up for millions of queries cannot do
that.  :class:`VariantCipherCache` keeps the most recently used variant
ciphertexts under a hard entry bound and reports hit/miss/eviction
statistics so the serving report can surface cache effectiveness.

The cache also doubles as the encryption serialization point: BFV
encryption draws from the client's (non-thread-safe) RNG, so the miss
path runs the factory under the cache lock.  Hom-Adds dominate the
serving cost, so serializing encryption costs little and guarantees each
key is encrypted at most once per residency.

Values are whatever the serving path caches per (query, variant,
residue-class): the object search kernel stores
:class:`~repro.he.bfv.Ciphertext` objects, the fused kernel stores the
stacked ``(2, n)`` int64 arena rows directly (keyed under a ``"rows"``
tag so the kernels never collide), which is the form the broadcast
Hom-Add consumes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, TypeVar

V = TypeVar("V")


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time snapshot of cache effectiveness counters."""

    capacity: int
    size: int
    hits: int
    misses: int
    evictions: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class VariantCipherCache:
    """LRU-bounded map from cache keys to encrypted query variants."""

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_create(self, key: Hashable, factory: Callable[[], V]) -> V:
        """Return the cached value for ``key``, creating it on miss.

        The factory runs under the cache lock (see module docstring), so
        it must not re-enter the cache.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]  # type: ignore[return-value]
            self.misses += 1
            value = factory()
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return value

    def clear(self) -> None:
        """Drop all entries (new database outsourced); counters persist
        so long-running serving stats survive re-outsourcing."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                capacity=self.capacity,
                size=len(self._entries),
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
            )
