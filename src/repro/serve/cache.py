"""Bounded, thread-safe LRU cache for encrypted query variants.

A query batch re-encrypts the same (query, variant, residue-class)
polynomial once per shard touch unless something caches it.  The old
:class:`repro.core.batch.BatchSearcher` kept an *unbounded* per-batch
dict; a serving process that stays up for millions of queries cannot do
that.  :class:`VariantCipherCache` keeps the most recently used variant
ciphertexts under a hard entry bound and reports hit/miss/eviction
statistics so the serving report can surface cache effectiveness.

The cache also doubles as the encryption serialization point: BFV
encryption draws from the client's (non-thread-safe) RNG, so the miss
path runs the factory under the cache lock.  Hom-Adds dominate the
serving cost, so serializing encryption costs little and guarantees each
key is encrypted at most once per residency.

Values are whatever the serving path caches per (query, variant,
residue-class): the object search kernel stores
:class:`~repro.he.bfv.Ciphertext` objects, the fused kernel stores the
stacked ``(2, n)`` int64 arena rows directly (keyed under a ``"rows"``
tag so the kernels never collide), which is the form the broadcast
Hom-Add consumes.

Byte accounting (multi-tenant serving)
--------------------------------------
Every entry is sized on insert (:func:`entry_nbytes`) and the cache
tracks its resident byte total.  A ``max_bytes`` bound adds byte-based
LRU eviction on top of the entry bound, and a shared ``clock`` — a
callable returning a monotonically increasing tick, one counter across
all of a fleet's tenant caches — stamps every touch so the
:class:`~repro.tenancy.TenantCacheBroker` can find the globally
coldest resident row when cross-tenant pressure forces an eviction.
"""

from __future__ import annotations

import itertools
import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Tuple, TypeVar

V = TypeVar("V")


def entry_nbytes(value: object) -> int:
    """Best-effort resident size of one cached value, in bytes.

    ndarrays (and anything else exposing an integer ``nbytes``) report
    their buffer size; tuples/lists sum their elements (the fused
    kernel caches stacked ``(2, n)`` row pairs); everything else falls
    back to :func:`sys.getsizeof`.  The figure feeds quota accounting,
    not allocation — a consistent estimate is all that is required.
    """
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    if nbytes is not None:
        try:
            return int(nbytes)
        except (TypeError, ValueError):
            pass
    if isinstance(value, (tuple, list)):
        return sum(entry_nbytes(v) for v in value)
    # Ciphertext-like objects carry their wire size; prefer it over the
    # shallow getsizeof of the wrapper object.
    serialized = getattr(value, "serialized_bytes", None)
    if isinstance(serialized, int):
        return serialized
    return sys.getsizeof(value)


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time snapshot of cache effectiveness counters."""

    capacity: int
    size: int
    hits: int
    misses: int
    evictions: int
    #: resident value bytes (0 for legacy snapshots)
    current_bytes: int = 0
    #: byte bound, when one is set (None -> entry bound only)
    max_bytes: Optional[int] = None

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class _Entry:
    """One resident value with its size and last-touch tick."""

    __slots__ = ("value", "nbytes", "last_touch")

    def __init__(self, value: object, nbytes: int, last_touch: int):
        self.value = value
        self.nbytes = nbytes
        self.last_touch = last_touch


class VariantCipherCache:
    """LRU-bounded map from cache keys to encrypted query variants.

    Parameters
    ----------
    capacity:
        Hard entry bound (the historical knob).
    max_bytes:
        Optional resident-byte bound; exceeding it evicts LRU entries
        until the total fits (at least one entry always stays — a
        single oversized value must remain usable).
    clock:
        Callable yielding monotonically increasing integer ticks for
        last-touch stamps.  Pass one shared counter across many caches
        (see :class:`~repro.tenancy.TenantCacheBroker`) to make
        "coldest entry across tenants" a meaningful comparison;
        defaults to a private counter.
    on_insert:
        Called with this cache *after* a miss inserts a value (outside
        the cache lock) — the broker's hook to apply cross-tenant
        pressure without entangling locks.
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        max_bytes: Optional[int] = None,
        clock: Optional[Callable[[], int]] = None,
        on_insert: Optional[Callable[["VariantCipherCache"], None]] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._clock = clock or itertools.count(1).__next__
        self._on_insert = on_insert
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.current_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def values(self) -> list:
        """Cached values, LRU-first (tests and diagnostics)."""
        with self._lock:
            return [entry.value for entry in self._entries.values()]

    def get_or_create(self, key: Hashable, factory: Callable[[], V]) -> V:
        """Return the cached value for ``key``, creating it on miss.

        The factory runs under the cache lock (see module docstring), so
        it must not re-enter the cache.
        """
        inserted = False
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                entry.last_touch = self._clock()
                self.hits += 1
                value = entry.value
            else:
                self.misses += 1
                value = factory()
                self._entries[key] = _Entry(
                    value, entry_nbytes(value), self._clock()
                )
                self.current_bytes += self._entries[key].nbytes
                self._evict_over_bounds_locked()
                inserted = True
        if inserted and self._on_insert is not None:
            self._on_insert(self)
        return value  # type: ignore[return-value]

    def _evict_over_bounds_locked(self) -> None:
        while len(self._entries) > self.capacity:
            self._evict_oldest_locked()
        if self.max_bytes is not None:
            while (
                self.current_bytes > self.max_bytes and len(self._entries) > 1
            ):
                self._evict_oldest_locked()

    def _evict_oldest_locked(self) -> int:
        if not self._entries:
            return 0
        _, entry = self._entries.popitem(last=False)
        self.current_bytes -= entry.nbytes
        self.evictions += 1
        return entry.nbytes

    # -- cross-tenant pressure surface (TenantCacheBroker) ---------------

    def oldest_entry(self) -> Optional[Tuple[int, int]]:
        """(last_touch tick, nbytes) of the LRU entry, or None if empty.

        The broker compares these ticks *across* tenant caches sharing
        one clock to locate the globally coldest resident row.
        """
        with self._lock:
            for entry in self._entries.values():
                return entry.last_touch, entry.nbytes
            return None

    def evict_oldest(self) -> int:
        """Evict the LRU entry; returns the bytes freed (0 if empty)."""
        with self._lock:
            return self._evict_oldest_locked()

    def clear(self) -> None:
        """Drop all entries (new database outsourced); counters persist
        so long-running serving stats survive re-outsourcing."""
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                capacity=self.capacity,
                size=len(self._entries),
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                current_bytes=self.current_bytes,
                max_bytes=self.max_bytes,
            )
