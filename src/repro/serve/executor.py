"""Pluggable shard executors: GIL-bound threads vs worker processes.

The sharded engine's original workers are ``threading.Thread``s — fully
concurrent for the simulated in-flash backend (which waits, not
computes) but serialized by the GIL for the CPU kernels, which is why
``benchmarks/out/serving_scaling.txt`` was flat from 1 to 8 shards.
The ``process`` executor gives every shard a real OS process holding a
zero-copy :mod:`multiprocessing.shared_memory` view of the database
arena (see :meth:`repro.he.arena.CiphertextArena.share`), so shard
kernels run on separate cores with no shared interpreter lock.

Selection mirrors the ``search_kernel`` / ``poly_backend`` plumbing:
an explicit ``executor=`` argument wins, else
:func:`set_default_serve_executor`, else the ``REPRO_SERVE_EXECUTOR``
environment variable, else ``"thread"`` (the parity oracle and the
right choice for stateful/IFP backends, which the process executor
cannot host).

The start method is pinned to ``spawn`` — deterministic, fork-safe
(no inherited locks mid-acquire) and the only portable choice across
macOS/Windows; a regression test constructs a process-executor engine
from a clean interpreter to keep it that way.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..he.arena import SharedArenaHandle
from .worker import ShardWorkerSpec, shard_worker_main

# ---------------------------------------------------------------------------
# Executor selection (mirrors repro.he.arena's kernel plumbing)
# ---------------------------------------------------------------------------

#: the two shard-executor implementations
SERVE_EXECUTORS = ("thread", "process")

#: environment override consulted when no explicit choice was made.
EXECUTOR_ENV_VAR = "REPRO_SERVE_EXECUTOR"

_default_executor: str | None = None


def set_default_serve_executor(name: str | None) -> None:
    """Install a process-wide default (``None`` restores env/built-in)."""
    global _default_executor
    if name is not None and name not in SERVE_EXECUTORS:
        raise ValueError(
            f"unknown serve executor {name!r}; available: {sorted(SERVE_EXECUTORS)}"
        )
    _default_executor = name


def get_default_serve_executor() -> str:
    if _default_executor is not None:
        return _default_executor
    env = os.environ.get(EXECUTOR_ENV_VAR)
    if env:
        if env not in SERVE_EXECUTORS:
            raise ValueError(
                f"{EXECUTOR_ENV_VAR}={env!r} is not a serve executor; "
                f"available: {sorted(SERVE_EXECUTORS)}"
            )
        return env
    return "thread"


def resolve_serve_executor(spec: str | None) -> str:
    """Turn an executor name or ``None`` (process default) into a name."""
    if spec is None:
        return get_default_serve_executor()
    if spec not in SERVE_EXECUTORS:
        raise ValueError(
            f"unknown serve executor {spec!r}; available: {sorted(SERVE_EXECUTORS)}"
        )
    return spec


def spawn_context():
    """The pinned ``spawn`` multiprocessing context all serve workers
    use (never the platform default, which is ``fork`` on Linux)."""
    return multiprocessing.get_context("spawn")


# ---------------------------------------------------------------------------
# Process executor
# ---------------------------------------------------------------------------


class WorkerCrashError(RuntimeError):
    """A shard worker process died (crash or kill) mid-conversation."""


def _close_handles(handles: Sequence["_WorkerHandle"]) -> None:
    """GC-finalizer cleanup; must not reference the executor itself."""
    for handle in handles:
        try:
            handle.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass


class _WorkerHandle:
    """Parent-side lifecycle of one shard worker process."""

    def __init__(self, mp_ctx, spec: ShardWorkerSpec):
        self._mp = mp_ctx
        self.spec = spec
        self.process = None
        self.conn = None
        self.arena_handle: Optional[SharedArenaHandle] = None
        #: whether the last attach asked the worker to pre-warm caches
        self.warm = False
        #: times this shard's worker was respawned after a crash
        self.restarts = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def spawn(self, arena_handle: SharedArenaHandle, warm: bool = False) -> None:
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=shard_worker_main,
            args=(child_conn, self.spec),
            name=f"repro-shard-{self.spec.shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.process = process
        self.conn = parent_conn
        self.attach(arena_handle, warm)

    def respawn(self) -> None:
        self.restarts += 1
        self.close(graceful=False)
        self.spawn(self.arena_handle, self.warm)

    def attach(self, arena_handle: SharedArenaHandle, warm: bool = False) -> None:
        self.arena_handle = arena_handle
        self.warm = warm
        self.send(("attach", arena_handle, warm))

    def send(self, msg: tuple) -> None:
        if self.conn is None or self.process is None:
            raise WorkerCrashError(f"shard {self.spec.shard_id} worker not running")
        try:
            self.conn.send(msg)
        except (BrokenPipeError, OSError, ValueError) as exc:
            raise WorkerCrashError(
                f"shard {self.spec.shard_id} worker pipe closed"
            ) from exc

    def recv(self, poll_interval: float) -> tuple:
        """Next reply, or :class:`WorkerCrashError` once the process is
        observed dead with nothing left in the pipe."""
        while True:
            try:
                if self.conn.poll(poll_interval):
                    return self.conn.recv()
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise WorkerCrashError(
                    f"shard {self.spec.shard_id} worker hung up"
                ) from exc
            if not self.process.is_alive():
                # Drain once more: the reply may have been buffered
                # before the process exited.
                try:
                    if self.conn.poll(0):
                        return self.conn.recv()
                except (EOFError, BrokenPipeError, OSError):
                    pass
                raise WorkerCrashError(
                    f"shard {self.spec.shard_id} worker died "
                    f"(exit code {self.process.exitcode})"
                )

    def close(self, graceful: bool = True) -> None:
        conn, self.conn = self.conn, None
        process, self.process = self.process, None
        if conn is not None:
            if graceful:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError, ValueError):
                    pass
            conn.close()
        if process is not None:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5.0)


class ProcessShardExecutor:
    """One spawn-context worker process per shard, warm across batches.

    Tasks go out over per-shard pipes (query rows + row maps, never
    ciphertext objects) and come back as flag-grid slices.  A worker
    observed dead is respawned once and the task retried, so a single
    crash degrades one task's latency instead of hanging the batch;
    the respawn re-attaches the current arena handle, so recovery works
    mid-batch even after ``invalidate_caches``.
    """

    kind = "process"

    def __init__(
        self,
        specs: Sequence[ShardWorkerSpec],
        arena_handle: SharedArenaHandle,
        *,
        poll_interval: float = 0.05,
        warm: bool = False,
    ):
        mp_ctx = spawn_context()
        self._poll_interval = poll_interval
        self._task_ids = itertools.count()
        self._lock = threading.Lock()
        #: (shard_id, task) retries that followed a worker crash
        self.degraded_tasks = 0
        self._handles: Dict[int, _WorkerHandle] = {
            spec.shard_id: _WorkerHandle(mp_ctx, spec) for spec in specs
        }
        # Spawn everything first, then the interpreters boot in
        # parallel; the attach messages wait in each pipe.
        for handle in self._handles.values():
            handle.spawn(arena_handle, warm)
        self._finalizer = weakref.finalize(
            self, _close_handles, list(self._handles.values())
        )

    # -- arena lifecycle --------------------------------------------------

    def reattach(
        self, arena_handle: SharedArenaHandle, warm: bool = False
    ) -> None:
        """Point every worker at a re-shared arena (after
        ``invalidate_caches`` / ``adopt_database`` rebuilt it).
        ``warm`` asks each worker to precompute its shard's phase view
        at attach time (the eager arena-build mode)."""
        for handle in self._handles.values():
            try:
                handle.attach(arena_handle, warm)
            except WorkerCrashError:
                handle.arena_handle = arena_handle
                handle.warm = warm
                handle.respawn()

    # -- tasks ------------------------------------------------------------

    def run_task(
        self,
        shard_id: int,
        kernel: str,
        query_stack: np.ndarray,
        row_map: np.ndarray,
        row_residue: np.ndarray,
    ) -> Tuple[np.ndarray, int]:
        """Execute one (query, shard) unit; returns ``(flags, crashes)``
        where ``crashes`` counts worker deaths survived on the way.

        The caller holds the shard's lock, so each worker converses
        with one parent thread at a time.
        """
        handle = self._handles[shard_id]
        with self._lock:
            task_id = next(self._task_ids)
        crashes = 0
        for attempt in (0, 1):
            try:
                handle.send(("task", task_id, kernel, query_stack, row_map, row_residue))
                while True:
                    reply = handle.recv(self._poll_interval)
                    if reply[0] in ("ok", "err") and reply[1] == task_id:
                        break
                    # reply to a task abandoned by an earlier crash-retry
            except WorkerCrashError:
                crashes += 1
                with self._lock:
                    self.degraded_tasks += 1
                if attempt == 1:
                    raise
                handle.respawn()
                continue
            if reply[0] == "err":
                raise RuntimeError(
                    f"shard {shard_id} worker failed: {reply[2]}"
                )
            return reply[2], crashes
        raise AssertionError("unreachable")  # pragma: no cover

    # -- health / accounting ---------------------------------------------

    @property
    def restart_count(self) -> int:
        return sum(h.restarts for h in self._handles.values())

    def shard_restarts(self, shard_id: int) -> int:
        return self._handles[shard_id].restarts

    def shard_alive(self, shard_id: int) -> bool:
        return self._handles[shard_id].alive

    # -- fault injection (repro.faults hook API) ---------------------------

    def crash_worker(self, shard_id: int) -> None:
        """Kill one worker the hard way (``os._exit`` in the child) and
        wait for the corpse, so the next task deterministically observes
        a dead shard mid-batch.  This is the executor side of the
        shared :func:`repro.faults.crash_shard_worker` hook."""
        handle = self._handles[shard_id]
        try:
            handle.send(("crash",))
        except WorkerCrashError:
            return
        if handle.process is not None:
            handle.process.join(timeout=5.0)

    def inject_crash(self, shard_id: int) -> None:
        """Deprecated alias for :meth:`crash_worker` (the pre-
        ``repro.faults`` ad-hoc test hook)."""
        import warnings

        warnings.warn(
            "ProcessShardExecutor.inject_crash is deprecated; use "
            "crash_worker (or repro.faults.crash_shard_worker)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.crash_worker(shard_id)

    # -- shutdown ---------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every worker; idempotent, also runs at GC and on the
        serving layer's SIGTERM drain path (via engine ``close()``).

        ``detach()`` doubles as the atomic claim: only the caller that
        actually detaches the finalizer runs ``_close_handles``, so a
        racing second ``shutdown()`` (engine close + drain + GC can all
        arrive) never double-releases the workers' pipes or re-joins
        already-reaped processes."""
        claimed = self._finalizer.detach()
        if claimed is None:
            return
        _obj, func, args, kwargs = claimed
        func(*args, **kwargs)
