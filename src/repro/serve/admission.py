"""Adaptive admission control: per-class p99 budgets with an AIMD target.

The oldest-deadline shedder (:mod:`repro.net.server`) protects the
*queue* — it evicts the most doomed request once the bounded in-flight
window is full.  The :class:`AdmissionController` protects the
*latency budget*: it tracks a sliding window of completed-request wall
latencies per request class (``exact`` / ``wildcard`` / ``batch``) and
adapts a per-class concurrent-admission target the AIMD way — additive
increase while the window's p99 sits inside the class budget,
multiplicative decrease the moment it overruns.  A request arriving
when its class is at target is rejected *fail-fast* (``ERR_ADMIT``)
before it consumes a queue slot: under sustained overload it is
strictly better to tell the client "not now" in microseconds than to
queue work that will blow its deadline anyway.

The controller is deliberately front-end-agnostic (plain
``try_admit``/``release`` with a monotonic duration), so the asyncio
service, tests, and future front ends share one implementation.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Mapping, Optional, Union

from ..eval.tables import percentile

#: request classes the controller budgets separately
ADMISSION_CLASSES = ("exact", "wildcard", "batch")

BudgetLike = Union[float, Mapping[str, float]]


def classify_request(request: object) -> str:
    """Scenario class of one facade request (used as the budget key)."""
    name = type(request).__name__
    if name == "BatchSearch":
        return "batch"
    if name == "WildcardSearch":
        return "wildcard"
    return "exact"


@dataclass
class _ClassState:
    """Mutable AIMD state for one request class."""

    budget: float
    target: float
    in_flight: int = 0
    rejected: int = 0
    admitted: int = 0
    decreases: int = 0
    samples: Deque[float] = field(default_factory=deque)
    completions_since_adjust: int = 0


class AdmissionController:
    """AIMD admission targets keyed on sliding-window p99 vs budget.

    Parameters
    ----------
    budgets:
        p99 wall-latency budget in seconds — one float for every class,
        or a ``{class: seconds}`` mapping (missing classes fall back to
        the ``"*"`` entry, else admission for them is unlimited).
    initial_target / min_target / max_target:
        Concurrent-admission target bounds per class.
    increase / decrease:
        AIMD knobs: ``target += increase`` per adjustment while p99 is
        within budget, ``target *= decrease`` on overrun.
    window:
        Latency samples kept per class; adjustments happen every
        ``max(4, window // 4)`` completions once at least
        ``min_samples`` samples exist.
    """

    def __init__(
        self,
        budgets: BudgetLike,
        *,
        initial_target: int = 16,
        min_target: int = 2,
        max_target: int = 256,
        increase: float = 1.0,
        decrease: float = 0.5,
        window: int = 64,
        min_samples: int = 8,
    ):
        if min_target < 1 or max_target < min_target:
            raise ValueError("need 1 <= min_target <= max_target")
        if not (0.0 < decrease < 1.0):
            raise ValueError("decrease must be in (0, 1)")
        if increase <= 0:
            raise ValueError("increase must be > 0")
        self._budgets = self._normalize(budgets)
        self.initial_target = initial_target
        self.min_target = min_target
        self.max_target = max_target
        self.increase = increase
        self.decrease = decrease
        self.window = window
        self.min_samples = min_samples
        self._adjust_every = max(4, window // 4)
        self._lock = threading.Lock()
        self._classes: Dict[str, _ClassState] = {}
        #: total fail-fast rejections across classes
        self.admit_rejected = 0

    @staticmethod
    def _normalize(budgets: BudgetLike) -> Dict[str, float]:
        if isinstance(budgets, (int, float)):
            return {"*": float(budgets)}
        out = {}
        for key, value in budgets.items():
            if key != "*" and key not in ADMISSION_CLASSES:
                raise ValueError(
                    f"unknown admission class {key!r}; "
                    f"known: {ADMISSION_CLASSES} and '*'"
                )
            out[key] = float(value)
        return out

    def budget_for(self, cls: str) -> Optional[float]:
        budget = self._budgets.get(cls, self._budgets.get("*"))
        return budget

    def _state(self, cls: str) -> Optional[_ClassState]:
        # caller holds the lock
        state = self._classes.get(cls)
        if state is None:
            budget = self.budget_for(cls)
            if budget is None:
                return None  # unbudgeted class: never gated
            state = _ClassState(
                budget=budget,
                target=float(
                    min(self.max_target, max(self.min_target, self.initial_target))
                ),
            )
            self._classes[cls] = state
        return state

    # -- admission -------------------------------------------------------

    def try_admit(self, cls: str) -> bool:
        """Admit one ``cls`` request, or reject fail-fast when the class
        is at its AIMD target.  Every admit must be paired with exactly
        one :meth:`release`."""
        with self._lock:
            state = self._state(cls)
            if state is None:
                return True
            if state.in_flight >= int(state.target):
                state.rejected += 1
                self.admit_rejected += 1
                return False
            state.in_flight += 1
            state.admitted += 1
            return True

    def release(
        self, cls: str, latency: Optional[float] = None, *, ok: bool = True
    ) -> None:
        """Finish one admitted ``cls`` request.  ``latency`` (seconds,
        admission to response) feeds the p99 window; pass ``None`` for
        requests that never produced a meaningful latency (shed from
        the queue, connection lost)."""
        with self._lock:
            state = self._classes.get(cls)
            if state is None:
                return
            if state.in_flight > 0:
                state.in_flight -= 1
            if latency is None or not ok:
                return
            state.samples.append(latency)
            while len(state.samples) > self.window:
                state.samples.popleft()
            state.completions_since_adjust += 1
            if (
                len(state.samples) >= self.min_samples
                and state.completions_since_adjust >= self._adjust_every
            ):
                state.completions_since_adjust = 0
                p99 = percentile(list(state.samples), 99)
                if p99 > state.budget:
                    state.target = max(
                        float(self.min_target), state.target * self.decrease
                    )
                    state.decreases += 1
                else:
                    state.target = min(
                        float(self.max_target), state.target + self.increase
                    )

    # -- observability ---------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-class targets and counters (the STATS/report surface)."""
        with self._lock:
            return {
                cls: {
                    "budget_s": state.budget,
                    "target": int(state.target),
                    "in_flight": state.in_flight,
                    "admitted": state.admitted,
                    "rejected": state.rejected,
                    "decreases": state.decreases,
                    "window_p99_s": (
                        percentile(list(state.samples), 99)
                        if state.samples
                        else 0.0
                    ),
                }
                for cls, state in self._classes.items()
            }

    def target_for(self, cls: str) -> Optional[int]:
        with self._lock:
            state = self._classes.get(cls)
            return int(state.target) if state is not None else None


def coerce_admission(
    value: Union[None, BudgetLike, AdmissionController],
) -> Optional[AdmissionController]:
    """``None`` → disabled, a controller → itself, a float/mapping →
    a controller with default AIMD knobs over those budgets."""
    if value is None or isinstance(value, AdmissionController):
        return value
    return AdmissionController(value)
