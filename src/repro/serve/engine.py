"""Concurrent sharded execution of the Hom-Add secure search.

:class:`ShardedSearchEngine` splits an :class:`EncryptedDatabase` into
contiguous per-shard polynomial slices, gives every shard its own
:class:`AdditionBackend` instance (CPU reference or simulated in-flash),
and drives a worker pool over a task queue of (query, shard) units.
Per-shard :class:`ResultBlock` lists carry *global* polynomial indices,
so merging them reproduces exactly the block set the single-pipeline
:class:`~repro.core.pipeline.SecureStringMatchPipeline` emits — decode
is byte-identical, including matches that span shard boundaries (the
run-detection in :class:`~repro.core.matcher.ResultDecoder` operates on
the globally concatenated flag vector).

Concurrency model
-----------------
* A shard executes one task at a time (its lock models the physical
  die-group and protects stateful backends such as
  :class:`~repro.ssd.device.IFPAdditionBackend`).
* Variant encryption is serialized through the shared bounded LRU
  :class:`~repro.serve.cache.VariantCipherCache` (the client RNG is not
  thread-safe); Hom-Adds — the dominant cost — run concurrently across
  shards.
* The worker completing a query's last shard task finalizes it (index
  generation + decode + verification), so decode of one query overlaps
  the Hom-Adds of the next.
* Under the fused search kernel (the default — see
  :mod:`repro.he.arena`) each shard holds a zero-copy slice of the
  database's ciphertext arena and a shard task reduces to a few
  broadcast kernels producing that shard's slice of the boolean flag
  grid; finalize stitches the slices in global polynomial order, so
  decode — including cross-shard runs — stays byte-identical to the
  object path.
* The shard *executor* is pluggable (see :mod:`repro.serve.executor`):
  ``"thread"`` runs shard tasks on the worker threads themselves (the
  parity oracle, GIL-bound for CPU kernels), ``"process"`` dispatches
  each task to a per-shard worker process attached zero-copy to the
  shared-memory ciphertext arena, so shard kernels scale across cores.
  Worker processes warm-start when a database is adopted, re-attach
  when the arena is rebuilt, and are respawned (task retried once) if
  they crash; the thread pool, dedup, cache, scheduling and finalize
  paths are identical either way.
"""

from __future__ import annotations

import queue as queue_mod
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..he.arena import (
    CiphertextArena,
    QueryArena,
    fused_decrypt_flags,
    resolve_arena_build,
    resolve_search_kernel,
    stack_ciphertext,
)
from ..he.bfv import BFVContext, Ciphertext
from ..verify import VerifyLike
from ..core.client import CipherMatchClient, ClientConfig
from ..core.match_polynomial import DeterministicComparator, IndexMode
from ..core.matcher import (
    AdditionBackend,
    CPUAdditionBackend,
    ResultBlock,
    comparator_flag_grid,
)
from ..core.packing import EncryptedDatabase
from ..core.pipeline import SearchReport
from ..core.query import PreparedQuery, variant_cache_key
from ..faults import (
    SLOW_SHARD,
    SITE_SHARD_TASK,
    WORKER_CRASH,
    CircuitBreaker,
    FaultInjector,
    crash_shard_worker,
)
from .cache import VariantCipherCache
from .executor import ProcessShardExecutor, WorkerCrashError, resolve_serve_executor
from .report import ServeReport, ShardStats
from .scheduler import ServeScheduler, ShardTaskTrace
from .worker import ShardWorkerSpec

#: builds the addition backend for one shard: ``factory(ctx, shard_id)``
BackendFactory = Callable[[BFVContext, int], AdditionBackend]


@dataclass
class DbShard:
    """A contiguous slice of the encrypted database bound to one backend."""

    shard_id: int
    base_poly: int
    ciphertexts: List[Ciphertext]
    backend: AdditionBackend
    #: zero-copy view into the database's ciphertext arena (fused kernel)
    arena: Optional[CiphertextArena] = None
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    hom_adds: int = 0
    tasks_executed: int = 0
    busy_seconds: float = 0.0

    @property
    def num_polynomials(self) -> int:
        return len(self.ciphertexts)


class _QueryJob:
    """One distinct query in flight across all shards."""

    def __init__(self, index: int, query_bits: np.ndarray, key: bytes,
                 prepared: PreparedQuery, num_shards: int, fused: bool = False):
        self.index = index
        self.query_bits = query_bits
        self.key = key
        self.prepared = prepared
        self.fused = fused
        self.blocks: List[ResultBlock] = []
        #: shard_id -> (V, shard_polys, n) flag grid slice (fused kernel)
        self.flag_parts: Dict[int, np.ndarray] = {}
        #: shards whose task was skipped/lost under partial-results mode
        self.degraded: set = set()
        self.query_arena: Optional[QueryArena] = None
        self.remaining = num_shards
        self.lock = threading.Lock()
        self.prep_lock = threading.Lock()
        self.finished_at: float = 0.0
        self.report: Optional[SearchReport] = None


class ShardedSearchEngine:
    """Serves query batches over a sharded encrypted database.

    Parameters
    ----------
    config:
        Client configuration; ignored when ``client`` is given.
    client:
        An existing :class:`CipherMatchClient` to reuse (lets the engine
        adopt a database a pipeline already outsourced).
    num_shards:
        Requested shard count; clamped to the number of database
        polynomials at :meth:`outsource` time.
    backend_factory:
        Builds one backend per shard; defaults to fresh
        :class:`CPUAdditionBackend` instances.
    max_workers:
        Worker-pool size; defaults to the shard count (more workers than
        shards cannot help — shards serialize their own tasks).
    cache_capacity:
        Bound on the shared variant-ciphertext LRU cache.
    poly_backend:
        Polynomial-arithmetic backend for the HE layer ("vectorized" /
        "reference"); applied when the engine builds its own client from
        ``config``.  The vectorized backend is what lets decode — one
        ``c1 * s`` negacyclic multiply per result block — keep up with
        the concurrent Hom-Add stage (see ``docs/backends.md``).
    search_kernel:
        Search execution strategy ("fused" / "object"; None defers to
        the ``REPRO_SEARCH_KERNEL`` process default).  Under the fused
        kernel every shard holds a zero-copy slice of the database's
        ciphertext arena and a shard task is a handful of broadcast
        kernels — no per-pair ciphertext objects, no per-block decrypt
        multiplies (see ``docs/perf.md``).  Shards whose backends do
        their own addition (the simulated in-flash IFP backend) force
        the object path regardless.
    executor:
        Shard execution vehicle ("thread" / "process"; None defers to
        the ``REPRO_SERVE_EXECUTOR`` process default).  "process" runs
        each shard task in a per-shard worker process holding a
        zero-copy shared-memory view of the ciphertext arena — the
        GIL-free path (see ``docs/scaling.md``).  Engines with custom
        backends the workers can't replicate (anything without
        ``supports_fused``, e.g. the simulated IFP device) fall back to
        threads regardless.
    arena_build:
        When to materialize the database arena's rows / RNS-limb /
        phase views ("lazy" / "eager"; None defers to the
        ``REPRO_ARENA_BUILD`` process default, which defaults to lazy).
        "lazy" builds per tile on first touch, so ``adopt_database``
        returns without paying the full arena build and each shard's
        first query builds only that shard's rows.  "eager" restores
        the old build-everything-at-adopt behavior (and pre-warms
        worker phase caches under the process executor) for serving
        fleets that prefer the cost up front.
    degraded_mode:
        What a batch does when a shard is unserveable (terminal worker
        crash, circuit breaker open).  ``"fail"`` (default) propagates
        the failure — the historical behavior.  ``"partial"`` zero-fills
        the dead shard's flag slice and returns matches from the live
        shards, marking the report's ``degraded_shards`` so callers know
        the result may be incomplete.
    breaker_threshold / breaker_cooldown:
        Per-shard :class:`repro.faults.CircuitBreaker` tuning: the
        breaker opens after ``breaker_threshold`` consecutive crash-ful
        tasks and half-opens (one probe task) after ``breaker_cooldown``
        seconds.
    fault_injector:
        Optional :class:`repro.faults.FaultInjector`; when set, every
        shard task steps the ``shard.task`` site (worker crashes, slow
        shards) before executing.  Settable after construction too — the
        net service wires it through this attribute.
    """

    def __init__(
        self,
        config: Optional[ClientConfig] = None,
        *,
        client: Optional[CipherMatchClient] = None,
        num_shards: int = 1,
        backend_factory: Optional[BackendFactory] = None,
        max_workers: Optional[int] = None,
        cache_capacity: int = 256,
        scheduler: Optional[ServeScheduler] = None,
        poly_backend: Optional[str] = None,
        search_kernel: Optional[str] = None,
        executor: Optional[str] = None,
        arena_build: Optional[str] = None,
        degraded_mode: str = "fail",
        breaker_threshold: int = 3,
        breaker_cooldown: float = 5.0,
        fault_injector: Optional[FaultInjector] = None,
        cache: Optional[VariantCipherCache] = None,
        tenant: str = "",
    ):
        if client is None:
            if config is None:
                raise ValueError("provide a ClientConfig or a client")
            if poly_backend is not None and config.poly_backend != poly_backend:
                config = replace(config, poly_backend=poly_backend)
            client = CipherMatchClient(config)
        elif poly_backend is not None and client.ctx.poly_backend != poly_backend:
            raise ValueError(
                "poly_backend conflicts with the supplied client's backend "
                f"({client.ctx.poly_backend!r} != {poly_backend!r})"
            )
        self.client = client
        self.config = client.config
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self.backend_factory: BackendFactory = backend_factory or (
            lambda ctx, shard_id: CPUAdditionBackend(ctx)
        )
        self.max_workers = max_workers
        self.cache = cache if cache is not None else VariantCipherCache(
            cache_capacity
        )
        #: tenant label stamped into every ServeReport ("" = single-tenant)
        self.tenant = tenant
        self.scheduler = scheduler or ServeScheduler(
            word_bits=self._word_bits(client.ctx)
        )
        if search_kernel is not None:
            resolve_search_kernel(search_kernel)  # validate eagerly
        self.search_kernel = search_kernel
        if executor is not None:
            resolve_serve_executor(executor)  # validate eagerly
        self.executor = executor
        if arena_build is not None:
            resolve_arena_build(arena_build)  # validate eagerly
        self.arena_build = arena_build
        if degraded_mode not in ("fail", "partial"):
            raise ValueError(
                f"degraded_mode must be 'fail' or 'partial', got {degraded_mode!r}"
            )
        self.degraded_mode = degraded_mode
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.fault_injector = fault_injector
        self._breakers: Dict[int, CircuitBreaker] = {}
        self.shards: List[DbShard] = []
        self.db: Optional[EncryptedDatabase] = None
        self._comparator: Optional[DeterministicComparator] = None
        self._arena_lock = threading.Lock()
        self._worker_lock = threading.Lock()
        self._process_executor: Optional[ProcessShardExecutor] = None
        self._shared_handle = None

    @staticmethod
    def _word_bits(ctx: BFVContext) -> int:
        q = ctx.params.q
        bits = (q - 1).bit_length()
        return bits if q == 1 << bits else 32

    # -- database placement ---------------------------------------------

    def outsource(self, db_bits: np.ndarray) -> EncryptedDatabase:
        """Pack + encrypt the database, then split it across shards."""
        db = self.client.outsource(np.asarray(db_bits, dtype=np.uint8))
        self.adopt_database(db)
        return db

    def adopt_database(self, db: EncryptedDatabase) -> None:
        """Shard an already-encrypted database (e.g. one a pipeline
        outsourced) without re-encrypting."""
        self.db = db
        self.cache.clear()
        effective = max(1, min(self.num_shards, db.num_polynomials))
        bounds = np.linspace(0, db.num_polynomials, effective + 1).astype(int)
        self.shards = [
            DbShard(
                shard_id=i,
                base_poly=int(bounds[i]),
                ciphertexts=db.ciphertexts[int(bounds[i]) : int(bounds[i + 1])],
                backend=self.backend_factory(self.client.ctx, i),
            )
            for i in range(effective)
        ]
        self._breakers = {
            shard.shard_id: CircuitBreaker(
                failure_threshold=self.breaker_threshold,
                cooldown=self.breaker_cooldown,
            )
            for shard in self.shards
        }
        self._comparator = None
        if self.config.index_mode is IndexMode.SERVER_DETERMINISTIC:
            self._comparator = DeterministicComparator(
                self.client.ctx,
                self.client.pk,
                self.config.deterministic_seed,
                self.client.chunk_width,
            )
        # Eager build mode: pay the full arena build (rows + limb view +
        # phase cache) here, before serving starts, instead of on the
        # first query.  Must precede _ensure_workers so share() finds a
        # complete limb view to publish to the worker processes.
        if self._arena_build_active() == "eager" and self._fused_active():
            ctx = self.client.ctx
            arena = db.fused_arena(ctx.ring, ctx.params)
            arena.ensure_built()
            if self._comparator is None:
                arena.c1_limbs()
                arena.phases(self.client.sk)
        # Shard boundaries changed: retire the old worker fleet and warm
        # start a new one so the first batch doesn't pay the spawns.
        self._shutdown_workers()
        if self._executor_active() == "process":
            self._ensure_workers()

    def close(self) -> None:
        """Release serving resources (worker processes, shared arena
        segments).  Idempotent; wired into ``Session.close`` and hence
        the net server's SIGTERM drain path."""
        self._shutdown_workers()

    def __enter__(self) -> "ShardedSearchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- queries ---------------------------------------------------------

    def search(
        self, query_bits: np.ndarray, *, verify: VerifyLike = True
    ) -> SearchReport:
        """Single-query convenience wrapper around :meth:`search_batch`."""
        return self.search_batch([query_bits], verify=verify).reports[0]

    def search_batch(
        self, queries: Sequence[np.ndarray], *, verify: VerifyLike = True
    ) -> ServeReport:
        """Execute a query batch across all shards concurrently.
        ``verify`` accepts a bool or :class:`repro.verify.VerifyPolicy`
        and is resolved once, in the client decode step."""
        if self.db is None or not self.shards:
            raise RuntimeError("outsource or adopt a database first")
        fused = self._fused_active()
        exec_kind = self._executor_active()
        workers: Optional[ProcessShardExecutor] = None
        if exec_kind == "process":
            workers = self._ensure_workers()
        elif fused:
            self._ensure_shard_arenas()

        # Deduplicate identical queries; duplicates share one job/report.
        jobs: List[_QueryJob] = []
        by_key: Dict[bytes, _QueryJob] = {}
        order: List[_QueryJob] = []
        dedup_hits = 0
        for q in queries:
            bits = np.asarray(q, dtype=np.uint8)
            key = bits.tobytes()
            job = by_key.get(key)
            if job is None:
                job = _QueryJob(
                    index=len(jobs),
                    query_bits=bits,
                    key=key,
                    prepared=self.client.prepare_query(bits),
                    num_shards=len(self.shards),
                    # process workers always return flag grids, so the
                    # stitched-flags finalize applies under both kernels
                    fused=fused or workers is not None,
                )
                by_key[key] = job
                jobs.append(job)
            else:
                dedup_hits += 1
            order.append(job)

        tasks: "queue_mod.Queue" = queue_mod.Queue()
        for job in jobs:
            for shard in self.shards:
                tasks.put((job, shard))

        depth_samples: List[int] = []
        traces: List[ShardTaskTrace] = []
        trace_lock = threading.Lock()
        errors: List[BaseException] = []
        batch_crashes = [0]
        start = time.perf_counter()

        def worker() -> None:
            while True:
                try:
                    job, shard = tasks.get_nowait()
                except queue_mod.Empty:
                    return
                breaker = self._breakers.get(shard.shard_id)
                injector = self.fault_injector
                try:
                    blocks: Optional[List[ResultBlock]] = None
                    flags_part: Optional[np.ndarray] = None
                    hom_adds = 0
                    crashes = 0
                    degraded = False
                    events = (
                        injector.step(SITE_SHARD_TASK, shard.shard_id)
                        if injector is not None
                        else ()
                    )
                    for ev in events:
                        if ev.kind == SLOW_SHARD and ev.delay > 0:
                            time.sleep(ev.delay)
                    crash_injected = any(
                        ev.kind == WORKER_CRASH for ev in events
                    )
                    if breaker is not None and not breaker.allow():
                        degraded = True
                    else:
                        try:
                            if crash_injected and workers is not None:
                                # Real kill: dispatch below observes the
                                # corpse, respawns, retries — the
                                # survivable crash path.
                                crash_shard_worker(workers, shard.shard_id)
                            with shard.lock:
                                depth_samples.append(tasks.qsize())
                                if crash_injected and workers is None:
                                    raise WorkerCrashError(
                                        f"shard {shard.shard_id}: injected "
                                        "worker crash"
                                    )
                                if workers is not None:
                                    flags_part, hom_adds, crashes = (
                                        self._run_shard_task_process(
                                            shard, job, workers
                                        )
                                    )
                                    if crashes:
                                        with trace_lock:
                                            batch_crashes[0] += crashes
                                elif job.fused:
                                    flags_part, hom_adds = (
                                        self._run_shard_task_fused(shard, job)
                                    )
                                else:
                                    blocks = self._run_shard_task(shard, job)
                                    hom_adds = len(blocks)
                            if breaker is not None:
                                if crashes:
                                    breaker.record_failure()
                                else:
                                    breaker.record_success()
                        except WorkerCrashError:
                            if breaker is not None:
                                breaker.record_failure()
                            if self.degraded_mode != "partial":
                                raise
                            degraded = True
                    if degraded:
                        with job.lock:
                            job.degraded.add(shard.shard_id)
                            job.remaining -= 1
                            last = job.remaining == 0
                    else:
                        with trace_lock:
                            traces.append(
                                # Every batch task enters the queue at t=0;
                                # the device model must not inherit the
                                # Python driver's pacing.
                                ShardTaskTrace(
                                    query_index=job.index,
                                    shard_id=shard.shard_id,
                                    hom_adds=hom_adds,
                                )
                            )
                        with job.lock:
                            if flags_part is not None:
                                job.flag_parts[shard.shard_id] = flags_part
                            elif blocks is not None:
                                job.blocks.extend(blocks)
                            job.remaining -= 1
                            last = job.remaining == 0
                    if last:
                        # This worker finalizes the query so decode
                        # overlaps other queries' Hom-Adds.
                        job.report = self._finalize(job, verify=verify)
                        job.finished_at = time.perf_counter() - start
                except BaseException as exc:  # pragma: no cover - propagated
                    errors.append(exc)
                    return

        num_workers = min(
            self.max_workers or len(self.shards),
            max(1, len(jobs) * len(self.shards)),
        )
        threads = [
            threading.Thread(target=worker, name=f"serve-worker-{i}")
            for i in range(num_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        wall = time.perf_counter() - start

        sim = self.scheduler.simulate(
            traces, self.db.ciphertexts[0].serialized_bytes if self.db.ciphertexts else 0
        )
        # Expand per distinct job -> per input query (duplicates share a
        # job), so wall and modeled percentiles weight queries equally.
        job_modeled = self.scheduler.per_query_latency(sim)
        modeled_latencies = {
            i: job_modeled.get(job.index, 0.0) for i, job in enumerate(order)
        }
        shard_stats = []
        for shard in self.shards:
            channel, die = self.scheduler.placement(shard.shard_id)
            shard_stats.append(
                ShardStats(
                    shard_id=shard.shard_id,
                    channel=channel,
                    die=die,
                    num_polynomials=shard.num_polynomials,
                    hom_adds=shard.hom_adds,
                    tasks_executed=shard.tasks_executed,
                    busy_seconds=shard.busy_seconds,
                    modeled_utilization=sim.die_utilization(channel, die),
                    restarts=(
                        workers.shard_restarts(shard.shard_id) if workers else 0
                    ),
                    alive=(
                        workers.shard_alive(shard.shard_id) if workers else True
                    ),
                    breaker=(
                        self._breakers[shard.shard_id].state
                        if shard.shard_id in self._breakers
                        else "closed"
                    ),
                )
            )

        batch_degraded = sorted({sid for job in jobs for sid in job.degraded})
        return ServeReport(
            reports=[job.report for job in order],
            num_shards=len(self.shards),
            num_workers=num_workers,
            wall_seconds=wall,
            latencies=[job.finished_at for job in order],
            deduplicated_hits=dedup_hits,
            cache=self.cache.stats(),
            shards=shard_stats,
            queue_depth_max=max(depth_samples, default=0),
            queue_depth_mean=(
                sum(depth_samples) / len(depth_samples) if depth_samples else 0.0
            ),
            modeled_makespan=sim.makespan,
            modeled_latencies=modeled_latencies,
            encrypted_db_bytes=self.db.serialized_bytes,
            executor=exec_kind,
            worker_restarts=batch_crashes[0],
            sheds=self.scheduler.sheds,
            admit_rejected=self.scheduler.admit_rejected,
            degraded_shards=batch_degraded,
            tenant=self.tenant,
        )

    # -- executor machinery ----------------------------------------------

    def _arena_build_active(self) -> str:
        """The resolved arena build mode for this engine."""
        return resolve_arena_build(self.arena_build)

    def _executor_active(self) -> str:
        """The executor this batch actually uses.  Custom backends the
        spawn-fresh workers cannot replicate (anything without
        ``supports_fused`` — notably the stateful simulated IFP device)
        silently fall back to threads, mirroring the fused-kernel gate,
        so a process-wide ``REPRO_SERVE_EXECUTOR=process`` default never
        changes what those backends compute."""
        kind = resolve_serve_executor(self.executor)
        if kind == "process" and not all(
            getattr(shard.backend, "supports_fused", False)
            for shard in self.shards
        ):
            return "thread"
        return kind

    @property
    def executor_kind(self) -> str:
        """Resolved executor for the current configuration/shards."""
        return self._executor_active()

    @property
    def worker_restarts(self) -> int:
        """Cumulative worker-process restarts over the engine's life."""
        workers = self._process_executor
        return workers.restart_count if workers is not None else 0

    @property
    def degraded_tasks(self) -> int:
        """Cumulative shard tasks that survived a worker crash (each one
        completed on a respawned worker — degraded latency, not data)."""
        workers = self._process_executor
        return workers.degraded_tasks if workers is not None else 0

    @property
    def degraded_shards(self) -> List[int]:
        """Shards whose circuit breaker is currently not closed (the
        service surfaces the count in the STATS frame)."""
        return sorted(
            shard_id
            for shard_id, breaker in self._breakers.items()
            if breaker.state != "closed"
        )

    def breaker_for(self, shard_id: int) -> Optional[CircuitBreaker]:
        return self._breakers.get(shard_id)

    def _worker_specs(self) -> List[ShardWorkerSpec]:
        det_seed = None
        pk0 = pk1 = None
        if self.config.index_mode is IndexMode.SERVER_DETERMINISTIC:
            det_seed = self.config.deterministic_seed
            pk0 = np.asarray(self.client.pk.pk0.coeffs)
            pk1 = np.asarray(self.client.pk.pk1.coeffs)
        return [
            ShardWorkerSpec(
                shard_id=shard.shard_id,
                start=shard.base_poly,
                stop=shard.base_poly + shard.num_polynomials,
                params=self.config.params,
                poly_backend=self.client.ctx.poly_backend,
                chunk_width=self.client.chunk_width,
                sk_coeffs=np.asarray(self.client.sk.s.coeffs),
                comparator_seed=det_seed,
                pk0_coeffs=pk0,
                pk1_coeffs=pk1,
            )
            for shard in self.shards
        ]

    def _ensure_workers(self) -> ProcessShardExecutor:
        """Spawn (or refresh) the per-shard worker processes against the
        database arena's shared-memory backing.

        ``share()`` rebinds the parent arena's stack to the shared pages
        and is idempotent, so the handle only changes when the database
        rebuilt its arena (``invalidate_caches`` / ``adopt_database``) —
        exactly when workers must re-attach and parent-side shard slices
        must be re-cut.
        """
        ctx = self.client.ctx
        arena = self.db.fused_arena(ctx.ring, ctx.params)
        # Eager build mode: workers precompute their shard's phase view
        # at attach time (decryption-path engines only — the
        # deterministic comparator never decrypts).
        warm = (
            self._arena_build_active() == "eager"
            and self._comparator is None
        )
        with self._worker_lock:
            handle = arena.share()
            refreshed = handle != self._shared_handle
            workers = self._process_executor
            if workers is None:
                workers = ProcessShardExecutor(
                    self._worker_specs(), handle, warm=warm
                )
                self._process_executor = workers
            elif refreshed:
                workers.reattach(handle, warm=warm)
            self._shared_handle = handle
        # Parent-side slices stay maintained too: they now alias the
        # same shared pages the workers mapped, and the thread fallback
        # plus several serve tests read them directly.
        self._ensure_shard_arenas(force=refreshed)
        return workers

    def _shutdown_workers(self) -> None:
        with self._worker_lock:
            workers, self._process_executor = self._process_executor, None
            self._shared_handle = None
        if workers is not None:
            workers.shutdown()

    def _run_shard_task_process(
        self, shard: DbShard, job: _QueryJob, workers: ProcessShardExecutor
    ) -> tuple:
        """Ship one (query, shard) unit to the shard's worker process.

        Only arena-format arrays cross the pipe: the query stack, the
        shard-local row map and row residues out; the shard's
        ``(V, shard_polys, n)`` flag-grid slice back.  Hom-Adds are
        accounted exactly like the in-process paths.  Returns
        ``(flags, hom_adds, crashes)``.
        """
        t0 = time.perf_counter()
        query_arena = self._job_query_arena(job)
        polys = np.arange(
            shard.base_poly,
            shard.base_poly + shard.num_polynomials,
            dtype=np.int64,
        )
        row_map = query_arena.row_map(polys)
        flags, crashes = workers.run_task(
            shard.shard_id,
            resolve_search_kernel(self.search_kernel),
            query_arena.stack,
            row_map,
            query_arena.row_residue,
        )
        hom_adds = job.prepared.num_variants * shard.num_polynomials
        self.client.ctx.counter.additions += hom_adds
        shard.busy_seconds += time.perf_counter() - t0
        shard.hom_adds += hom_adds
        shard.tasks_executed += 1
        return flags, hom_adds, crashes

    # -- fused-kernel machinery ------------------------------------------

    def _fused_active(self) -> bool:
        """True when this batch runs the fused arena kernels: selected
        (explicitly or by process default) and every shard backend is a
        plain-CPU adder the broadcast kernels can stand in for."""
        return resolve_search_kernel(self.search_kernel) == "fused" and all(
            getattr(shard.backend, "supports_fused", False)
            for shard in self.shards
        )

    def _ensure_shard_arenas(self, force: bool = False) -> None:
        """Build the database arena once and hand every shard its
        zero-copy row slice.  Re-slices whenever the database rebuilt
        its arena (``EncryptedDatabase.invalidate_caches`` after an
        in-place mutation) — or on ``force``, when ``share()`` rebound
        the arena's stack — so shards never serve stale coefficients."""
        with self._arena_lock:
            if not self.shards:
                return
            ctx = self.client.ctx
            arena = self.db.fused_arena(ctx.ring, ctx.params)
            first = self.shards[0].arena
            if not force and first is not None and first._parent is arena:
                return
            for shard in self.shards:
                shard.arena = arena.slice(
                    shard.base_poly, shard.base_poly + shard.num_polynomials
                )

    def _job_query_arena(self, job: _QueryJob) -> QueryArena:
        """The job's stacked query-variant rows, built by the first
        shard task to need them.  Rows live in the shared
        :class:`VariantCipherCache` (as ``(2, n)`` int64 stacks — the
        fused path never holds ciphertext objects), so repeated queries
        across batches skip encryption entirely."""
        with job.prep_lock:
            if job.query_arena is None:
                det_seed = None
                if self.config.index_mode is IndexMode.SERVER_DETERMINISTIC:
                    det_seed = self.config.deterministic_seed
                ctx = self.client.ctx

                def rows_for(v_idx: int, residue: int, j: int) -> np.ndarray:
                    return self.cache.get_or_create(
                        ("rows", job.key, v_idx, residue),
                        lambda: stack_ciphertext(
                            self.client.preparer.encrypt_variant_value(
                                job.prepared, v_idx, residue, self.client.pk,
                                deterministic_seed=det_seed,
                            )
                        ),
                    )

                job.query_arena = QueryArena(
                    ctx.ring,
                    ctx.params,
                    job.prepared.variants,
                    self.db.num_polynomials,
                    rows_for,
                )
            return job.query_arena

    def _run_shard_task_fused(
        self, shard: DbShard, job: _QueryJob
    ) -> tuple:
        """Fused equivalent of :meth:`_run_shard_task`: the shard's
        whole db x variant product — Hom-Add, index generation and flag
        extraction — as broadcast kernels over the shard's arena slice.

        Returns ``(flags, hom_adds)`` where ``flags`` is the shard's
        ``(V, shard_polys, n)`` boolean slice of the global flag grid
        and ``hom_adds`` the logical Hom-Add count (identical to the
        object path's block count for this shard).
        """
        t0 = time.perf_counter()
        ctx = self.client.ctx
        query_arena = self._job_query_arena(job)
        polys = np.arange(
            shard.base_poly,
            shard.base_poly + shard.num_polynomials,
            dtype=np.int64,
        )
        row_map = query_arena.row_map(polys)
        if self._comparator is not None:
            flags = comparator_flag_grid(
                self._comparator, shard.arena, query_arena, row_map, polys
            )
        else:
            flags = fused_decrypt_flags(
                shard.arena.phases(self.client.sk),
                query_arena.phases(self.client.sk),
                row_map,
                ctx.params,
                self.client.chunk_width,
            )
        hom_adds = job.prepared.num_variants * shard.num_polynomials
        ctx.counter.additions += hom_adds
        shard.busy_seconds += time.perf_counter() - t0
        shard.hom_adds += hom_adds
        shard.tasks_executed += 1
        return flags, hom_adds

    # -- shard execution -------------------------------------------------

    def _run_shard_task(self, shard: DbShard, job: _QueryJob) -> List[ResultBlock]:
        """Hom-Add every query variant against this shard's slice.

        Emits blocks with *global* polynomial indices so the merged set
        is indistinguishable from a sequential single-engine run.
        """
        det_seed = None
        if self.config.index_mode is IndexMode.SERVER_DETERMINISTIC:
            det_seed = self.config.deterministic_seed
        n = self.db.n
        prepared = job.prepared
        blocks: List[ResultBlock] = []
        t0 = time.perf_counter()
        for v_idx, variant in enumerate(prepared.variants):
            for local_j, db_ct in enumerate(shard.ciphertexts):
                j = shard.base_poly + local_j
                residue = (j * n) % variant.span
                query_ct = self.cache.get_or_create(
                    (job.key, v_idx, residue),
                    lambda: self.client.preparer.encrypt_variant_value(
                        prepared, v_idx, residue, self.client.pk,
                        deterministic_seed=det_seed,
                    ),
                )
                blocks.append(
                    ResultBlock(
                        poly_index=j,
                        variant_index=v_idx,
                        variant_cache_key=variant_cache_key(v_idx, residue),
                        ciphertext=shard.backend.hom_add(db_ct, query_ct),
                    )
                )
        shard.busy_seconds += time.perf_counter() - t0
        shard.hom_adds += len(blocks)
        shard.tasks_executed += 1
        return blocks

    # -- result merge + decode -------------------------------------------

    def _finalize(self, job: _QueryJob, *, verify: bool) -> SearchReport:
        """Merge per-shard results and decode exactly like the pipeline.
        Shards in ``job.degraded`` contributed nothing; the missing
        blocks decode as all-zero flags (no candidates) and the report
        carries their ids so callers see the result is partial."""
        if job.fused:
            return self._finalize_fused(job, verify=verify)
        blocks = sorted(job.blocks, key=lambda b: (b.variant_index, b.poly_index))
        if self._comparator is not None:
            flags = {
                (b.variant_index, b.poly_index): self._comparator.flag_matches(
                    b.ciphertext, b.poly_index, b.variant_cache_key
                )
                for b in blocks
            }
            candidates = self.client.decode_server_flags(
                job.prepared, flags, self.db, verify=verify
            )
        else:
            candidates = self.client.decode_results(
                job.prepared, blocks, self.db, verify=verify
            )
        return SearchReport(
            matches=[c.offset for c in candidates],
            candidates=candidates,
            hom_additions=len(blocks),
            num_variants=job.prepared.num_variants,
            encrypted_db_bytes=self.db.serialized_bytes,
            degraded_shards=tuple(sorted(job.degraded)),
        )

    def _finalize_fused(self, job: _QueryJob, *, verify: bool) -> SearchReport:
        """Stitch the per-shard flag slices back into the global
        ``(V, P, n)`` grid (global polynomial order, so cross-shard runs
        decode exactly like a single-engine pass) and decode.  Degraded
        shards left no slice; their span stays all-False, so live-shard
        matches decode normally and dead-shard offsets simply cannot
        match."""
        num_variants = job.prepared.num_variants
        num_polys = self.db.num_polynomials
        live_polys = num_polys
        if job.degraded:
            flags = np.zeros((num_variants, num_polys, self.db.n), dtype=bool)
        else:
            flags = np.empty((num_variants, num_polys, self.db.n), dtype=bool)
        for shard in self.shards:
            part = job.flag_parts.get(shard.shard_id)
            if part is None:
                live_polys -= shard.num_polynomials
                continue
            flags[
                :, shard.base_poly : shard.base_poly + shard.num_polynomials
            ] = part
        if self._comparator is None:
            # same logical decrypt count as the per-block object decode
            self.client.ctx.counter.decryptions += num_variants * live_polys
        candidates = self.client.decode_flags_matrix(
            job.prepared, flags, self.db, verify=verify
        )
        return SearchReport(
            matches=[c.offset for c in candidates],
            candidates=candidates,
            hom_additions=num_variants * live_polys,
            num_variants=num_variants,
            encrypted_db_bytes=self.db.serialized_bytes,
            degraded_shards=tuple(sorted(job.degraded)),
        )
