"""Concurrent sharded execution of the Hom-Add secure search.

:class:`ShardedSearchEngine` splits an :class:`EncryptedDatabase` into
contiguous per-shard polynomial slices, gives every shard its own
:class:`AdditionBackend` instance (CPU reference or simulated in-flash),
and drives a worker pool over a task queue of (query, shard) units.
Per-shard :class:`ResultBlock` lists carry *global* polynomial indices,
so merging them reproduces exactly the block set the single-pipeline
:class:`~repro.core.pipeline.SecureStringMatchPipeline` emits — decode
is byte-identical, including matches that span shard boundaries (the
run-detection in :class:`~repro.core.matcher.ResultDecoder` operates on
the globally concatenated flag vector).

Concurrency model
-----------------
* A shard executes one task at a time (its lock models the physical
  die-group and protects stateful backends such as
  :class:`~repro.ssd.device.IFPAdditionBackend`).
* Variant encryption is serialized through the shared bounded LRU
  :class:`~repro.serve.cache.VariantCipherCache` (the client RNG is not
  thread-safe); Hom-Adds — the dominant cost — run concurrently across
  shards.
* The worker completing a query's last shard task finalizes it (index
  generation + decode + verification), so decode of one query overlaps
  the Hom-Adds of the next.
"""

from __future__ import annotations

import queue as queue_mod
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..he.bfv import BFVContext, Ciphertext
from ..verify import VerifyLike
from ..core.client import CipherMatchClient, ClientConfig
from ..core.match_polynomial import DeterministicComparator, IndexMode
from ..core.matcher import AdditionBackend, CPUAdditionBackend, ResultBlock
from ..core.packing import EncryptedDatabase
from ..core.pipeline import SearchReport
from ..core.query import PreparedQuery, variant_cache_key
from .cache import VariantCipherCache
from .report import ServeReport, ShardStats
from .scheduler import ServeScheduler, ShardTaskTrace

#: builds the addition backend for one shard: ``factory(ctx, shard_id)``
BackendFactory = Callable[[BFVContext, int], AdditionBackend]


@dataclass
class DbShard:
    """A contiguous slice of the encrypted database bound to one backend."""

    shard_id: int
    base_poly: int
    ciphertexts: List[Ciphertext]
    backend: AdditionBackend
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    hom_adds: int = 0
    tasks_executed: int = 0
    busy_seconds: float = 0.0

    @property
    def num_polynomials(self) -> int:
        return len(self.ciphertexts)


class _QueryJob:
    """One distinct query in flight across all shards."""

    def __init__(self, index: int, query_bits: np.ndarray, key: bytes,
                 prepared: PreparedQuery, num_shards: int):
        self.index = index
        self.query_bits = query_bits
        self.key = key
        self.prepared = prepared
        self.blocks: List[ResultBlock] = []
        self.remaining = num_shards
        self.lock = threading.Lock()
        self.finished_at: float = 0.0
        self.report: Optional[SearchReport] = None


class ShardedSearchEngine:
    """Serves query batches over a sharded encrypted database.

    Parameters
    ----------
    config:
        Client configuration; ignored when ``client`` is given.
    client:
        An existing :class:`CipherMatchClient` to reuse (lets the engine
        adopt a database a pipeline already outsourced).
    num_shards:
        Requested shard count; clamped to the number of database
        polynomials at :meth:`outsource` time.
    backend_factory:
        Builds one backend per shard; defaults to fresh
        :class:`CPUAdditionBackend` instances.
    max_workers:
        Worker-pool size; defaults to the shard count (more workers than
        shards cannot help — shards serialize their own tasks).
    cache_capacity:
        Bound on the shared variant-ciphertext LRU cache.
    poly_backend:
        Polynomial-arithmetic backend for the HE layer ("vectorized" /
        "reference"); applied when the engine builds its own client from
        ``config``.  The vectorized backend is what lets decode — one
        ``c1 * s`` negacyclic multiply per result block — keep up with
        the concurrent Hom-Add stage (see ``docs/backends.md``).
    """

    def __init__(
        self,
        config: Optional[ClientConfig] = None,
        *,
        client: Optional[CipherMatchClient] = None,
        num_shards: int = 1,
        backend_factory: Optional[BackendFactory] = None,
        max_workers: Optional[int] = None,
        cache_capacity: int = 256,
        scheduler: Optional[ServeScheduler] = None,
        poly_backend: Optional[str] = None,
    ):
        if client is None:
            if config is None:
                raise ValueError("provide a ClientConfig or a client")
            if poly_backend is not None and config.poly_backend != poly_backend:
                config = replace(config, poly_backend=poly_backend)
            client = CipherMatchClient(config)
        elif poly_backend is not None and client.ctx.poly_backend != poly_backend:
            raise ValueError(
                "poly_backend conflicts with the supplied client's backend "
                f"({client.ctx.poly_backend!r} != {poly_backend!r})"
            )
        self.client = client
        self.config = client.config
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self.backend_factory: BackendFactory = backend_factory or (
            lambda ctx, shard_id: CPUAdditionBackend(ctx)
        )
        self.max_workers = max_workers
        self.cache = VariantCipherCache(cache_capacity)
        self.scheduler = scheduler or ServeScheduler(
            word_bits=self._word_bits(client.ctx)
        )
        self.shards: List[DbShard] = []
        self.db: Optional[EncryptedDatabase] = None
        self._comparator: Optional[DeterministicComparator] = None

    @staticmethod
    def _word_bits(ctx: BFVContext) -> int:
        q = ctx.params.q
        bits = (q - 1).bit_length()
        return bits if q == 1 << bits else 32

    # -- database placement ---------------------------------------------

    def outsource(self, db_bits: np.ndarray) -> EncryptedDatabase:
        """Pack + encrypt the database, then split it across shards."""
        db = self.client.outsource(np.asarray(db_bits, dtype=np.uint8))
        self.adopt_database(db)
        return db

    def adopt_database(self, db: EncryptedDatabase) -> None:
        """Shard an already-encrypted database (e.g. one a pipeline
        outsourced) without re-encrypting."""
        self.db = db
        self.cache.clear()
        effective = max(1, min(self.num_shards, db.num_polynomials))
        bounds = np.linspace(0, db.num_polynomials, effective + 1).astype(int)
        self.shards = [
            DbShard(
                shard_id=i,
                base_poly=int(bounds[i]),
                ciphertexts=db.ciphertexts[int(bounds[i]) : int(bounds[i + 1])],
                backend=self.backend_factory(self.client.ctx, i),
            )
            for i in range(effective)
        ]
        self._comparator = None
        if self.config.index_mode is IndexMode.SERVER_DETERMINISTIC:
            self._comparator = DeterministicComparator(
                self.client.ctx,
                self.client.pk,
                self.config.deterministic_seed,
                self.client.chunk_width,
            )

    # -- queries ---------------------------------------------------------

    def search(
        self, query_bits: np.ndarray, *, verify: VerifyLike = True
    ) -> SearchReport:
        """Single-query convenience wrapper around :meth:`search_batch`."""
        return self.search_batch([query_bits], verify=verify).reports[0]

    def search_batch(
        self, queries: Sequence[np.ndarray], *, verify: VerifyLike = True
    ) -> ServeReport:
        """Execute a query batch across all shards concurrently.
        ``verify`` accepts a bool or :class:`repro.verify.VerifyPolicy`
        and is resolved once, in the client decode step."""
        if self.db is None or not self.shards:
            raise RuntimeError("outsource or adopt a database first")

        # Deduplicate identical queries; duplicates share one job/report.
        jobs: List[_QueryJob] = []
        by_key: Dict[bytes, _QueryJob] = {}
        order: List[_QueryJob] = []
        dedup_hits = 0
        for q in queries:
            bits = np.asarray(q, dtype=np.uint8)
            key = bits.tobytes()
            job = by_key.get(key)
            if job is None:
                job = _QueryJob(
                    index=len(jobs),
                    query_bits=bits,
                    key=key,
                    prepared=self.client.prepare_query(bits),
                    num_shards=len(self.shards),
                )
                by_key[key] = job
                jobs.append(job)
            else:
                dedup_hits += 1
            order.append(job)

        tasks: "queue_mod.Queue" = queue_mod.Queue()
        for job in jobs:
            for shard in self.shards:
                tasks.put((job, shard))

        depth_samples: List[int] = []
        traces: List[ShardTaskTrace] = []
        trace_lock = threading.Lock()
        errors: List[BaseException] = []
        start = time.perf_counter()

        def worker() -> None:
            while True:
                try:
                    job, shard = tasks.get_nowait()
                except queue_mod.Empty:
                    return
                try:
                    with shard.lock:
                        depth_samples.append(tasks.qsize())
                        blocks = self._run_shard_task(shard, job)
                    with trace_lock:
                        traces.append(
                            # Every batch task enters the queue at t=0;
                            # the device model must not inherit the
                            # Python driver's pacing.
                            ShardTaskTrace(
                                query_index=job.index,
                                shard_id=shard.shard_id,
                                hom_adds=len(blocks),
                            )
                        )
                    with job.lock:
                        job.blocks.extend(blocks)
                        job.remaining -= 1
                        last = job.remaining == 0
                    if last:
                        # This worker finalizes the query so decode
                        # overlaps other queries' Hom-Adds.
                        job.report = self._finalize(job, verify=verify)
                        job.finished_at = time.perf_counter() - start
                except BaseException as exc:  # pragma: no cover - propagated
                    errors.append(exc)
                    return

        num_workers = min(
            self.max_workers or len(self.shards),
            max(1, len(jobs) * len(self.shards)),
        )
        threads = [
            threading.Thread(target=worker, name=f"serve-worker-{i}")
            for i in range(num_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        wall = time.perf_counter() - start

        sim = self.scheduler.simulate(
            traces, self.db.ciphertexts[0].serialized_bytes if self.db.ciphertexts else 0
        )
        # Expand per distinct job -> per input query (duplicates share a
        # job), so wall and modeled percentiles weight queries equally.
        job_modeled = self.scheduler.per_query_latency(sim)
        modeled_latencies = {
            i: job_modeled.get(job.index, 0.0) for i, job in enumerate(order)
        }
        shard_stats = []
        for shard in self.shards:
            channel, die = self.scheduler.placement(shard.shard_id)
            shard_stats.append(
                ShardStats(
                    shard_id=shard.shard_id,
                    channel=channel,
                    die=die,
                    num_polynomials=shard.num_polynomials,
                    hom_adds=shard.hom_adds,
                    tasks_executed=shard.tasks_executed,
                    busy_seconds=shard.busy_seconds,
                    modeled_utilization=sim.die_utilization(channel, die),
                )
            )

        return ServeReport(
            reports=[job.report for job in order],
            num_shards=len(self.shards),
            num_workers=num_workers,
            wall_seconds=wall,
            latencies=[job.finished_at for job in order],
            deduplicated_hits=dedup_hits,
            cache=self.cache.stats(),
            shards=shard_stats,
            queue_depth_max=max(depth_samples, default=0),
            queue_depth_mean=(
                sum(depth_samples) / len(depth_samples) if depth_samples else 0.0
            ),
            modeled_makespan=sim.makespan,
            modeled_latencies=modeled_latencies,
            encrypted_db_bytes=self.db.serialized_bytes,
        )

    # -- shard execution -------------------------------------------------

    def _run_shard_task(self, shard: DbShard, job: _QueryJob) -> List[ResultBlock]:
        """Hom-Add every query variant against this shard's slice.

        Emits blocks with *global* polynomial indices so the merged set
        is indistinguishable from a sequential single-engine run.
        """
        det_seed = None
        if self.config.index_mode is IndexMode.SERVER_DETERMINISTIC:
            det_seed = self.config.deterministic_seed
        n = self.db.n
        prepared = job.prepared
        blocks: List[ResultBlock] = []
        t0 = time.perf_counter()
        for v_idx, variant in enumerate(prepared.variants):
            for local_j, db_ct in enumerate(shard.ciphertexts):
                j = shard.base_poly + local_j
                residue = (j * n) % variant.span
                query_ct = self.cache.get_or_create(
                    (job.key, v_idx, residue),
                    lambda: self.client.preparer.encrypt_variant_value(
                        prepared, v_idx, residue, self.client.pk,
                        deterministic_seed=det_seed,
                    ),
                )
                blocks.append(
                    ResultBlock(
                        poly_index=j,
                        variant_index=v_idx,
                        variant_cache_key=variant_cache_key(v_idx, residue),
                        ciphertext=shard.backend.hom_add(db_ct, query_ct),
                    )
                )
        shard.busy_seconds += time.perf_counter() - t0
        shard.hom_adds += len(blocks)
        shard.tasks_executed += 1
        return blocks

    # -- result merge + decode -------------------------------------------

    def _finalize(self, job: _QueryJob, *, verify: bool) -> SearchReport:
        """Merge per-shard blocks and decode exactly like the pipeline."""
        blocks = sorted(job.blocks, key=lambda b: (b.variant_index, b.poly_index))
        if self._comparator is not None:
            flags = {
                (b.variant_index, b.poly_index): self._comparator.flag_matches(
                    b.ciphertext, b.poly_index, b.variant_cache_key
                )
                for b in blocks
            }
            candidates = self.client.decode_server_flags(
                job.prepared, flags, self.db, verify=verify
            )
        else:
            candidates = self.client.decode_results(
                job.prepared, blocks, self.db, verify=verify
            )
        return SearchReport(
            matches=[c.offset for c in candidates],
            candidates=candidates,
            hom_additions=len(blocks),
            num_variants=job.prepared.num_variants,
            encrypted_db_bytes=self.db.serialized_bytes,
        )
