"""Spawn-safe shard worker process for the ``process`` serve executor.

A worker owns one shard's rows ``[start, stop)`` of the shared
ciphertext arena.  It is launched by
:class:`repro.serve.executor.ProcessShardExecutor` with a picklable
:class:`ShardWorkerSpec` — parameters, backend name and key/comparator
material only, never coefficient data — and attaches the database by
:class:`~repro.he.arena.SharedArenaHandle` (shm name + shape), so
outsourcing a 100 MB database costs each worker a page-table mapping,
not a pickle.

Wire protocol (one duplex pipe per worker, parent -> child):

``("attach", handle, warm)``
    (Re-)attach the database arena.  No reply; pipe FIFO ordering
    guarantees the attach lands before any task that needs it.  With
    ``warm`` (the eager arena-build mode) the worker precomputes its
    shard's phase view immediately instead of on the first task.
``("task", task_id, kernel, query_stack, row_map, row_residue)``
    Run one (query, shard) unit.  ``query_stack`` is the query arena's
    ``(R, 2, n)`` rows, ``row_map`` the ``(V, shard_polys)`` local row
    map, ``row_residue`` the per-row residues.  Replies
    ``("ok", task_id, flags)`` with the shard's ``(V, shard_polys, n)``
    bool flag-grid slice, or ``("err", task_id, message)``.
``("ping",)``
    Liveness probe; replies ``("pong", shard_id)``.
``("crash",)``
    Fault injection for the crash-recovery tests: the worker dies
    immediately via ``os._exit`` (no cleanup, like a real crash).
``("stop",)``
    Clean shutdown.  EOF on the pipe means the same thing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..he.arena import (
    CiphertextArena,
    SharedArenaHandle,
    add_mod_q,
    fused_decrypt_flags,
    mul_rows_by_poly,
)
from ..he.bfv import BFVContext, Ciphertext
from ..he.keys import PublicKey, SecretKey
from ..he.params import BFVParams
from ..he.poly import RingPoly
from ..core.match_polynomial import DeterministicComparator, match_value
from ..core.matcher import CPUAdditionBackend, comparator_flag_grid
from ..core.query import variant_cache_key


@dataclass(frozen=True)
class ShardWorkerSpec:
    """Everything a worker needs to rebuild its shard state after spawn.

    Key material travels as raw coefficient arrays (the dataclasses in
    :mod:`repro.he.keys` hold ring-bound polynomials, which the child
    re-wraps in its own :class:`~repro.he.poly.RingContext`).  The
    public key / comparator seed are only present in
    ``SERVER_DETERMINISTIC`` mode.
    """

    shard_id: int
    start: int
    stop: int
    params: BFVParams
    poly_backend: Optional[str]
    chunk_width: int
    sk_coeffs: np.ndarray
    comparator_seed: Optional[int] = None
    pk0_coeffs: Optional[np.ndarray] = None
    pk1_coeffs: Optional[np.ndarray] = None

    @property
    def num_polynomials(self) -> int:
        return self.stop - self.start


class _QueryRows:
    """Duck-typed stand-in for :class:`~repro.he.arena.QueryArena` over
    the wire format — just the fields the shard kernels touch."""

    def __init__(self, stack: np.ndarray, row_residue: np.ndarray):
        self.stack = stack
        self.row_residue = row_residue

    @property
    def c0(self) -> np.ndarray:
        return self.stack[:, 0]

    @property
    def c1(self) -> np.ndarray:
        return self.stack[:, 1]


class _WorkerState:
    """Per-process shard state: HE context, keys, attached arena."""

    def __init__(self, spec: ShardWorkerSpec):
        self.spec = spec
        self.ctx = BFVContext(spec.params, backend=spec.poly_backend)
        ring = self.ctx.ring
        self.sk = SecretKey(
            spec.params, RingPoly(ring, np.asarray(spec.sk_coeffs, dtype=np.int64))
        )
        self.backend = CPUAdditionBackend(self.ctx)
        self.comparator: Optional[DeterministicComparator] = None
        if spec.comparator_seed is not None:
            pk = PublicKey(
                spec.params,
                RingPoly(ring, np.asarray(spec.pk0_coeffs, dtype=np.int64)),
                RingPoly(ring, np.asarray(spec.pk1_coeffs, dtype=np.int64)),
            )
            self.comparator = DeterministicComparator(
                self.ctx, pk, spec.comparator_seed, spec.chunk_width
            )
        self.arena: Optional[CiphertextArena] = None
        #: every arena ever attached — the mappings must outlive any
        #: in-flight task that might still read them
        self._attached = []

    def attach(self, handle: SharedArenaHandle, warm: bool = False) -> None:
        arena = CiphertextArena.attach_shared(
            self.ctx.ring, self.spec.params, handle, self.spec.start, self.spec.stop
        )
        self._attached.append(arena)
        self.arena = arena
        if warm and self.comparator is None:
            # Eager build: pay the shard's limb transforms + phase rows
            # now so the first task doesn't.  (The deterministic
            # comparator path never decrypts, so nothing to warm.)
            arena.phases(self.sk)

    def run(
        self,
        kernel: str,
        query_stack: np.ndarray,
        row_map: np.ndarray,
        row_residue: np.ndarray,
    ) -> np.ndarray:
        if self.arena is None:
            raise RuntimeError("no arena attached")
        query = _QueryRows(
            np.asarray(query_stack, dtype=np.int64),
            np.asarray(row_residue, dtype=np.intp),
        )
        row_map = np.asarray(row_map, dtype=np.intp)
        if kernel == "object":
            return self._run_object(query, row_map)
        return self._run_fused(query, row_map)

    def _run_fused(self, query: _QueryRows, row_map: np.ndarray) -> np.ndarray:
        """The same broadcast kernels the thread executor's fused path
        runs — shard phases against query phases, or the batched
        deterministic comparator."""
        spec = self.spec
        if self.comparator is not None:
            polys = np.arange(spec.start, spec.stop, dtype=np.int64)
            return comparator_flag_grid(
                self.comparator, self.arena, query, row_map, polys
            )
        q = spec.params.q
        query_phases = add_mod_q(
            query.c0, mul_rows_by_poly(self.ctx.ring, query.c1, self.sk.s), q
        )
        return fused_decrypt_flags(
            self.arena.phases(self.sk),
            query_phases,
            row_map,
            spec.params,
            spec.chunk_width,
        )

    def _run_object(self, query: _QueryRows, row_map: np.ndarray) -> np.ndarray:
        """Parity oracle inside the worker: one genuine per-pair
        ``hom_add`` + per-block flag extraction, like the thread
        executor's object path, reduced to the flag grid the wire
        protocol carries."""
        spec = self.spec
        ring = self.ctx.ring
        num_variants, num_polys = row_map.shape
        flags = np.empty((num_variants, num_polys, ring.n), dtype=bool)
        match = match_value(spec.chunk_width)
        for v_idx in range(num_variants):
            for local_j in range(num_polys):
                row = row_map[v_idx, local_j]
                query_ct = Ciphertext(
                    spec.params,
                    RingPoly(ring, np.array(query.stack[row, 0])),
                    RingPoly(ring, np.array(query.stack[row, 1])),
                )
                result = self.backend.hom_add(
                    self.arena.ciphertext(local_j), query_ct
                )
                if self.comparator is not None:
                    flags[v_idx, local_j] = self.comparator.flag_matches(
                        result,
                        spec.start + local_j,
                        variant_cache_key(v_idx, int(query.row_residue[row])),
                    )
                else:
                    pt = self.ctx.decrypt(result, self.sk)
                    flags[v_idx, local_j] = pt.poly.coeffs == match
        return flags


def shard_worker_main(conn, spec: ShardWorkerSpec) -> None:
    """Child-process entry point: serve tasks until stop/EOF."""
    state = _WorkerState(spec)
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            op = msg[0]
            if op == "stop":
                return
            if op == "attach":
                state.attach(msg[1], msg[2] if len(msg) > 2 else False)
            elif op == "ping":
                conn.send(("pong", spec.shard_id))
            elif op == "crash":
                os._exit(17)
            elif op == "task":
                task_id, kernel, query_stack, row_map, row_residue = msg[1:]
                try:
                    flags = state.run(kernel, query_stack, row_map, row_residue)
                except BaseException as exc:
                    conn.send(("err", task_id, f"{type(exc).__name__}: {exc}"))
                else:
                    conn.send(("ok", task_id, flags))
            else:
                conn.send(("err", None, f"unknown op {op!r}"))
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
