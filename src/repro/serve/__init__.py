"""Production-style serving layer for the CIPHERMATCH secure search.

The paper's Figure 9/12 evaluation issues 1000-query batches against
one encrypted database; the seed reproduction executed them strictly
sequentially over a single pipeline.  This package turns that into a
concurrent, sharded serving engine:

:class:`ShardedSearchEngine`
    Splits an :class:`~repro.core.packing.EncryptedDatabase` into
    contiguous per-shard polynomial slices, places each shard on its own
    :class:`~repro.core.matcher.AdditionBackend` (CPU reference or the
    simulated in-flash backend from :mod:`repro.ssd.device`), and runs a
    worker pool over queued (query, shard) tasks.  Per-shard result
    blocks carry global polynomial indices, so merged results — match
    offsets included — are identical to the sequential pipeline's, even
    for occurrences spanning shard boundaries.

:class:`VariantCipherCache`
    A bounded, thread-safe LRU cache of encrypted query variants shared
    across the batch, replacing the old unbounded per-batch dict.
    Hit/miss/eviction counters feed the serving report.

:class:`ServeScheduler`
    Pins shards to SSD (channel, die) pairs and replays the executed
    task trace through :mod:`repro.ssd.queueing`'s discrete-event model,
    yielding the modeled makespan and per-shard utilization a CM-IFP
    deployment of the same batch would see.

:class:`ServeReport`
    Per-query :class:`~repro.core.pipeline.SearchReport` list plus
    throughput, wall/modeled latency percentiles, queue depth, cache and
    shard statistics, rendered with the :mod:`repro.eval.tables`
    helpers.

:mod:`repro.serve.executor`
    Pluggable shard executors: ``"thread"`` (the GIL-bound parity
    oracle) or ``"process"`` — per-shard worker processes attached
    zero-copy to the database's shared-memory ciphertext arena, the
    path that actually scales across cores (``docs/scaling.md``).
    Select per engine (``executor=``), per process
    (:func:`set_default_serve_executor`), or via the
    ``REPRO_SERVE_EXECUTOR`` environment variable.

Quickstart
----------
>>> import numpy as np
>>> from repro.he import BFVParams
>>> from repro.core import ClientConfig
>>> from repro.serve import ShardedSearchEngine
>>> engine = ShardedSearchEngine(
...     ClientConfig(BFVParams.test_small(64), key_seed=1), num_shards=4
... )
>>> db = np.zeros(4096, dtype=np.uint8); db[160:192] = 1
>>> _ = engine.outsource(db)
>>> engine.search(np.ones(32, dtype=np.uint8)).matches
[160]

``python -m repro serve`` runs a complete demo, and
``benchmarks/bench_serving.py`` measures batch throughput scaling from
one to eight shards.
"""

from .admission import AdmissionController, classify_request, coerce_admission
from .cache import CacheStats, VariantCipherCache
from .engine import BackendFactory, DbShard, ShardedSearchEngine
from .executor import (
    EXECUTOR_ENV_VAR,
    SERVE_EXECUTORS,
    ProcessShardExecutor,
    WorkerCrashError,
    get_default_serve_executor,
    resolve_serve_executor,
    set_default_serve_executor,
)
from .report import ServeReport, ShardStats
from .scheduler import ServeScheduler, ShardTaskTrace
from .worker import ShardWorkerSpec

__all__ = [
    "AdmissionController",
    "BackendFactory",
    "CacheStats",
    "DbShard",
    "EXECUTOR_ENV_VAR",
    "ProcessShardExecutor",
    "SERVE_EXECUTORS",
    "ServeReport",
    "ServeScheduler",
    "ShardStats",
    "ShardTaskTrace",
    "ShardWorkerSpec",
    "ShardedSearchEngine",
    "VariantCipherCache",
    "WorkerCrashError",
    "classify_request",
    "coerce_admission",
    "get_default_serve_executor",
    "resolve_serve_executor",
    "set_default_serve_executor",
]
