"""Production-style serving layer for the CIPHERMATCH secure search.

The paper's Figure 9/12 evaluation issues 1000-query batches against
one encrypted database; the seed reproduction executed them strictly
sequentially over a single pipeline.  This package turns that into a
concurrent, sharded serving engine:

:class:`ShardedSearchEngine`
    Splits an :class:`~repro.core.packing.EncryptedDatabase` into
    contiguous per-shard polynomial slices, places each shard on its own
    :class:`~repro.core.matcher.AdditionBackend` (CPU reference or the
    simulated in-flash backend from :mod:`repro.ssd.device`), and runs a
    worker pool over queued (query, shard) tasks.  Per-shard result
    blocks carry global polynomial indices, so merged results — match
    offsets included — are identical to the sequential pipeline's, even
    for occurrences spanning shard boundaries.

:class:`VariantCipherCache`
    A bounded, thread-safe LRU cache of encrypted query variants shared
    across the batch, replacing the old unbounded per-batch dict.
    Hit/miss/eviction counters feed the serving report.

:class:`ServeScheduler`
    Pins shards to SSD (channel, die) pairs and replays the executed
    task trace through :mod:`repro.ssd.queueing`'s discrete-event model,
    yielding the modeled makespan and per-shard utilization a CM-IFP
    deployment of the same batch would see.

:class:`ServeReport`
    Per-query :class:`~repro.core.pipeline.SearchReport` list plus
    throughput, wall/modeled latency percentiles, queue depth, cache and
    shard statistics, rendered with the :mod:`repro.eval.tables`
    helpers.

Quickstart
----------
>>> import numpy as np
>>> from repro.he import BFVParams
>>> from repro.core import ClientConfig
>>> from repro.serve import ShardedSearchEngine
>>> engine = ShardedSearchEngine(
...     ClientConfig(BFVParams.test_small(64), key_seed=1), num_shards=4
... )
>>> db = np.zeros(4096, dtype=np.uint8); db[160:192] = 1
>>> _ = engine.outsource(db)
>>> engine.search(np.ones(32, dtype=np.uint8)).matches
[160]

``python -m repro serve`` runs a complete demo, and
``benchmarks/bench_serving.py`` measures batch throughput scaling from
one to eight shards.
"""

from .cache import CacheStats, VariantCipherCache
from .engine import BackendFactory, DbShard, ShardedSearchEngine
from .report import ServeReport, ShardStats
from .scheduler import ServeScheduler, ShardTaskTrace

__all__ = [
    "BackendFactory",
    "CacheStats",
    "DbShard",
    "ServeReport",
    "ServeScheduler",
    "ShardStats",
    "ShardTaskTrace",
    "ShardedSearchEngine",
    "VariantCipherCache",
]
