"""Serving metrics: throughput, latency percentiles, shard utilization.

:class:`ServeReport` is what :meth:`ShardedSearchEngine.search_batch`
returns — the per-query :class:`~repro.core.pipeline.SearchReport` list
(so correctness consumers see exactly what the sequential pipeline would
produce) plus the operational metrics a serving deployment watches.  The
tables render through :mod:`repro.eval.tables` so serving output matches
the paper-figure reproductions.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from ..core.matcher import MatchCandidate
from ..core.pipeline import SearchReport
from ..eval.tables import format_bytes, format_table, percentile
from .cache import CacheStats

#: schema guard for the machine-readable serialization
SERVE_REPORT_VERSION = 1


@dataclass
class ShardStats:
    """Work and occupancy accounting for one shard."""

    shard_id: int
    channel: int
    die: int
    num_polynomials: int
    hom_adds: int
    tasks_executed: int
    busy_seconds: float
    #: fraction of the modeled makespan the shard's die was busy
    modeled_utilization: float
    #: worker-process restarts for this shard (0 under the thread
    #: executor, which has no per-shard process to lose)
    restarts: int = 0
    #: worker liveness at batch end (always True for threads)
    alive: bool = True
    #: circuit-breaker state at batch end ("closed" / "open" / "half-open")
    breaker: str = "closed"

    def wall_utilization(self, wall_seconds: float) -> float:
        return self.busy_seconds / wall_seconds if wall_seconds > 0 else 0.0


@dataclass
class ServeReport:
    """Outcome + operational metrics of one served query batch."""

    #: per-input-query search reports (duplicates share one object)
    reports: List[SearchReport]
    num_shards: int
    num_workers: int
    wall_seconds: float
    #: per-query wall latency: batch start -> all shard work merged
    latencies: List[float]
    deduplicated_hits: int
    cache: CacheStats
    shards: List[ShardStats] = field(default_factory=list)
    queue_depth_max: int = 0
    queue_depth_mean: float = 0.0
    #: discrete-event queueing model of the same batch on CM-IFP shards
    modeled_makespan: float = 0.0
    #: modeled latency per input query (keyed by batch position, so the
    #: population matches :attr:`latencies` duplicate-for-duplicate)
    modeled_latencies: Dict[int, float] = field(default_factory=dict)
    encrypted_db_bytes: int = 0
    #: shard executor that served the batch ("thread" / "process")
    executor: str = "thread"
    #: worker crashes survived during this batch (each one a single-shard
    #: restart + task retry; the batch still completed)
    worker_restarts: int = 0
    #: admission-control sheds in the scheduler's accounting at batch
    #: end (cumulative over the engine's life; recorded by the network
    #: front end's oldest-deadline policy, 0 for purely in-process use)
    sheds: int = 0
    #: fail-fast rejects by the adaptive admission controller at batch
    #: end (cumulative, like :attr:`sheds`; 0 without a controller)
    admit_rejected: int = 0
    #: shards that contributed nothing to this batch (circuit breaker
    #: open / terminal worker crash under partial-results mode)
    degraded_shards: List[int] = field(default_factory=list)
    #: tenant id the serving engine ran under ("" = single-tenant)
    tenant: str = ""

    @property
    def dead_shards(self) -> int:
        """Shards whose worker was dead at batch end."""
        return sum(1 for s in self.shards if not s.alive)

    # -- aggregate correctness counters (BatchReport parity) -----------

    @property
    def num_queries(self) -> int:
        return len(self.reports)

    @property
    def total_hom_additions(self) -> int:
        return sum(r.hom_additions for r in self.reports)

    @property
    def total_matches(self) -> int:
        return sum(r.num_matches for r in self.reports)

    def matches_per_query(self) -> List[List[int]]:
        return [r.matches for r in self.reports]

    # -- throughput / latency ------------------------------------------

    @property
    def throughput_qps(self) -> float:
        return self.num_queries / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def modeled_throughput_qps(self) -> float:
        if self.modeled_makespan <= 0:
            return 0.0
        return self.num_queries / self.modeled_makespan

    def latency_percentile(self, pct: float) -> float:
        return percentile(self.latencies, pct)

    def modeled_latency_percentile(self, pct: float) -> float:
        return percentile(list(self.modeled_latencies.values()), pct)

    # -- rendering ------------------------------------------------------

    def summary_table(self) -> str:
        rows = [
            *([("tenant", self.tenant)] if self.tenant else []),
            ("queries", self.num_queries),
            ("matches", self.total_matches),
            ("Hom-Adds", self.total_hom_additions),
            ("deduplicated", self.deduplicated_hits),
            ("shards x workers", f"{self.num_shards} x {self.num_workers}"),
            ("executor", self.executor),
            ("worker restarts", self.worker_restarts),
            ("sheds (admission)", self.sheds),
            ("admit rejected", self.admit_rejected),
            (
                "degraded shards",
                ",".join(map(str, self.degraded_shards)) or "none",
            ),
            ("encrypted DB", format_bytes(self.encrypted_db_bytes)),
            ("wall time", f"{self.wall_seconds * 1e3:.1f} ms"),
            ("throughput", f"{self.throughput_qps:.1f} q/s"),
            ("p50 / p95 / p99 latency", self._latency_cell(self.latency_percentile)),
            ("modeled makespan", f"{self.modeled_makespan * 1e3:.2f} ms"),
            ("modeled throughput", f"{self.modeled_throughput_qps:.1f} q/s"),
            (
                "modeled p50 / p95 / p99",
                self._latency_cell(self.modeled_latency_percentile),
            ),
            ("cache hit rate", f"{self.cache.hit_rate * 100:.1f}%"),
            (
                "cache size",
                f"{self.cache.size}/{self.cache.capacity} "
                f"({self.cache.evictions} evicted)",
            ),
            ("queue depth max/mean", f"{self.queue_depth_max}/{self.queue_depth_mean:.1f}"),
        ]
        return format_table(
            "serving batch report",
            ("metric", "value"),
            [list(r) for r in rows],
            paper_note="Fig. 9/12 batch workloads served by sharded CM backends",
        )

    def _latency_cell(self, pctl) -> str:
        return (
            f"{pctl(50) * 1e3:.2f} / {pctl(95) * 1e3:.2f} / "
            f"{pctl(99) * 1e3:.2f} ms"
        )

    # -- machine-readable artifact ---------------------------------------

    def to_dict(self) -> Dict:
        """Plain-JSON-types dict: the full report, executor/sheds/
        restarts and per-shard stats included (bench artifacts + the
        STATS frame's ``report_json`` field)."""
        return {
            "version": SERVE_REPORT_VERSION,
            "reports": [
                {
                    "matches": list(r.matches),
                    "candidates": [asdict(c) for c in r.candidates],
                    "hom_additions": r.hom_additions,
                    "num_variants": r.num_variants,
                    "encrypted_db_bytes": r.encrypted_db_bytes,
                    "degraded_shards": list(r.degraded_shards),
                }
                for r in self.reports
            ],
            "num_shards": self.num_shards,
            "num_workers": self.num_workers,
            "wall_seconds": self.wall_seconds,
            "latencies": list(self.latencies),
            "deduplicated_hits": self.deduplicated_hits,
            "cache": {
                "capacity": self.cache.capacity,
                "size": self.cache.size,
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "current_bytes": self.cache.current_bytes,
                "max_bytes": self.cache.max_bytes,
            },
            "shards": [asdict(s) for s in self.shards],
            "queue_depth_max": self.queue_depth_max,
            "queue_depth_mean": self.queue_depth_mean,
            "modeled_makespan": self.modeled_makespan,
            "modeled_latencies": {
                str(k): v for k, v in self.modeled_latencies.items()
            },
            "encrypted_db_bytes": self.encrypted_db_bytes,
            "executor": self.executor,
            "worker_restarts": self.worker_restarts,
            "sheds": self.sheds,
            "admit_rejected": self.admit_rejected,
            "degraded_shards": list(self.degraded_shards),
            "tenant": self.tenant,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, obj: Dict) -> "ServeReport":
        version = int(obj.get("version", -1))
        if version != SERVE_REPORT_VERSION:
            raise ValueError(
                f"serve report version {version} unsupported "
                f"(this build reads {SERVE_REPORT_VERSION})"
            )
        reports = [
            SearchReport(
                matches=list(r["matches"]),
                candidates=[
                    MatchCandidate(**c) for c in r.get("candidates", [])
                ],
                hom_additions=int(r["hom_additions"]),
                num_variants=int(r["num_variants"]),
                encrypted_db_bytes=int(r["encrypted_db_bytes"]),
                degraded_shards=tuple(
                    int(s) for s in r.get("degraded_shards", ())
                ),
            )
            for r in obj["reports"]
        ]
        cache = obj["cache"]
        return cls(
            reports=reports,
            num_shards=int(obj["num_shards"]),
            num_workers=int(obj["num_workers"]),
            wall_seconds=float(obj["wall_seconds"]),
            latencies=[float(v) for v in obj["latencies"]],
            deduplicated_hits=int(obj["deduplicated_hits"]),
            cache=CacheStats(
                capacity=int(cache["capacity"]),
                size=int(cache["size"]),
                hits=int(cache["hits"]),
                misses=int(cache["misses"]),
                evictions=int(cache["evictions"]),
                current_bytes=int(cache.get("current_bytes", 0)),
                max_bytes=(
                    int(cache["max_bytes"])
                    if cache.get("max_bytes") is not None
                    else None
                ),
            ),
            shards=[ShardStats(**s) for s in obj.get("shards", [])],
            queue_depth_max=int(obj["queue_depth_max"]),
            queue_depth_mean=float(obj["queue_depth_mean"]),
            modeled_makespan=float(obj["modeled_makespan"]),
            modeled_latencies={
                int(k): float(v)
                for k, v in obj.get("modeled_latencies", {}).items()
            },
            encrypted_db_bytes=int(obj["encrypted_db_bytes"]),
            executor=obj.get("executor", "thread"),
            worker_restarts=int(obj.get("worker_restarts", 0)),
            sheds=int(obj.get("sheds", 0)),
            admit_rejected=int(obj.get("admit_rejected", 0)),
            degraded_shards=[
                int(s) for s in obj.get("degraded_shards", [])
            ],
            tenant=obj.get("tenant", ""),
        )

    @classmethod
    def from_json(cls, text: str) -> "ServeReport":
        return cls.from_dict(json.loads(text))

    def shard_table(self) -> str:
        rows = []
        for s in self.shards:
            rows.append(
                [
                    s.shard_id,
                    f"ch{s.channel}/die{s.die}",
                    s.num_polynomials,
                    s.tasks_executed,
                    s.hom_adds,
                    f"{s.wall_utilization(self.wall_seconds) * 100:.0f}%",
                    f"{s.modeled_utilization * 100:.0f}%",
                    s.restarts,
                    "up" if s.alive else "DOWN",
                    s.breaker,
                ]
            )
        return format_table(
            "per-shard utilization",
            (
                "shard",
                "placement",
                "polys",
                "tasks",
                "hom-adds",
                "wall util",
                "modeled util",
                "restarts",
                "worker",
                "breaker",
            ),
            rows,
        )
