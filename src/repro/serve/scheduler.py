"""Maps executed serving work onto the SSD queueing model.

The sharded engine's worker pool gives *functional* concurrency; this
module supplies the *performance* view.  Every (query, shard) task the
engine executed is replayed as a stream of ``CM_SEARCH`` requests — one
per Hom-Add, exactly the traffic the paper's CM-IFP device would see —
through :class:`repro.ssd.queueing.SsdQueueingSimulator`, with each
shard pinned to its own (channel, die) pair the way the FTL stripes the
CIPHERMATCH region.  The resulting :class:`SimulationResult` yields the
modeled batch makespan, per-shard utilization, and per-query modeled
latency that :class:`repro.serve.report.ServeReport` surfaces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..flash.cell_array import FlashGeometry
from ..flash.timing import FlashTimings
from ..ssd.queueing import (
    IoRequest,
    RequestKind,
    SimulationResult,
    SsdQueueingSimulator,
)


@dataclass(frozen=True)
class ShardTaskTrace:
    """Record of one executed (query, shard) task."""

    query_index: int
    shard_id: int
    hom_adds: int
    #: submission time relative to batch start (wall clock, seconds);
    #: used as the request arrival so bursty submission shows up as
    #: queueing delay in the model.
    submitted_at: float = 0.0


class ServeScheduler:
    """Places shards on SSD resources and replays task traces."""

    def __init__(
        self,
        geometry: Optional[FlashGeometry] = None,
        timings: Optional[FlashTimings] = None,
        word_bits: int = 32,
    ):
        self.geometry = geometry or FlashGeometry()
        self.timings = timings or FlashTimings()
        self.word_bits = word_bits
        #: queries dropped by a serving front end's admission control
        #: (e.g. repro.net oldest-deadline shedding) — work the device
        #: model never saw, accounted here so capacity planning can
        #: compare executed vs offered load.
        self.sheds = 0
        #: queries rejected fail-fast by the adaptive admission
        #: controller (ERR_ADMIT) — distinct from queue-pressure sheds:
        #: these were never admitted, so no queue slot or deadline was
        #: ever consumed on their behalf.
        self.admit_rejected = 0
        #: per-tenant breakdown of the two counters above, keyed by
        #: tenant id ("" when the front end is single-tenant).  Summing
        #: a column across tenants always reproduces the global counter.
        self.tenant_counters: Dict[str, Dict[str, int]] = {}

    def _tenant_row(self, tenant: str) -> Dict[str, int]:
        return self.tenant_counters.setdefault(
            tenant, {"sheds": 0, "admit_rejected": 0}
        )

    def record_shed(self, count: int = 1, tenant: Optional[str] = None) -> None:
        """Account ``count`` admission-control rejections."""
        self.sheds += count
        if tenant is not None:
            self._tenant_row(tenant)["sheds"] += count

    def record_admit_rejected(
        self, count: int = 1, tenant: Optional[str] = None
    ) -> None:
        """Account ``count`` fail-fast admission rejections."""
        self.admit_rejected += count
        if tenant is not None:
            self._tenant_row(tenant)["admit_rejected"] += count

    def placement(self, shard_id: int) -> Tuple[int, int]:
        """(channel, die) for a shard: distinct channels first, so shards
        contend on the shared buses only once channels are exhausted."""
        pairs = self.geometry.channels * self.geometry.dies_per_channel
        slot = shard_id % pairs
        return slot % self.geometry.channels, slot // self.geometry.channels

    def _pages_per_hom_add(self, ciphertext_bytes: int) -> int:
        return max(1, -(-ciphertext_bytes // self.timings.page_bytes))

    def simulate(
        self, traces: List[ShardTaskTrace], ciphertext_bytes: int
    ) -> SimulationResult:
        """Replay executed tasks through the discrete-event simulator.

        ``ciphertext_bytes`` is the serialized size of one result
        ciphertext (sets the page count streamed per Hom-Add).
        """
        sim = SsdQueueingSimulator(self.geometry, self.timings, self.word_bits)
        pages = self._pages_per_hom_add(ciphertext_bytes)
        for trace in traces:
            channel, die = self.placement(trace.shard_id)
            for _ in range(trace.hom_adds):
                sim.submit(
                    IoRequest(
                        kind=RequestKind.CM_SEARCH,
                        channel=channel,
                        die=die,
                        arrival=trace.submitted_at,
                        pages=pages,
                        tag=f"q{trace.query_index}",
                    )
                )
        return sim.run()

    @staticmethod
    def per_query_latency(result: SimulationResult) -> Dict[int, float]:
        """Modeled latency per query: last request completion minus first
        arrival, keyed by the query index encoded in the request tag."""
        finish: Dict[int, float] = {}
        arrival: Dict[int, float] = {}
        for req in result.requests:
            if not req.tag or not req.tag.startswith("q"):
                continue
            q = int(req.tag[1:])
            finish[q] = max(finish.get(q, 0.0), req.finish)
            arrival[q] = min(arrival.get(q, req.arrival), req.arrival)
        return {q: finish[q] - arrival[q] for q in finish}
