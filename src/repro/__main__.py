"""Command-line entry point.

    python -m repro demo       # quick end-to-end secure-search demo
    python -m repro figures    # print every paper figure/table
    python -m repro figures figure10
    python -m repro selftest   # fast functional self-check
    python -m repro readmap    # secure DNA read-mapping demo
    python -m repro tfhe       # bootstrapped-gate demo (real TFHE)
    python -m repro queueing   # SSD queueing-model cross-check
    python -m repro serve      # sharded concurrent query-serving demo
"""

from __future__ import annotations

import sys

import numpy as np


def _demo() -> int:
    from repro.core import ClientConfig, SecureStringMatchPipeline
    from repro.he import BFVParams
    from repro.utils.bits import random_bits

    rng = np.random.default_rng(0)
    db = random_bits(4000, rng)
    query = random_bits(32, rng)
    db[1600:1632] = query
    pipe = SecureStringMatchPipeline(ClientConfig(BFVParams.test_small(64)))
    pipe.outsource_database(db)
    report = pipe.search(query)
    print(
        f"secure search over {len(db)} encrypted bits: "
        f"{report.num_matches} match at {report.matches} "
        f"({report.hom_additions} Hom-Adds, 0 Hom-Mults)"
    )
    return 0


def _selftest() -> int:
    from repro.baselines import find_all_matches
    from repro.core import ClientConfig, SecureStringMatchPipeline
    from repro.he import BFVParams
    from repro.ssd import IFPAdditionBackend
    from repro.utils.bits import random_bits

    rng = np.random.default_rng(1)
    db = random_bits(2000, rng)
    q = random_bits(32, rng)
    db[480:512] = q
    pipe = SecureStringMatchPipeline(ClientConfig(BFVParams.test_small(64)))
    backend = IFPAdditionBackend(pipe.client.ctx)
    pipe.server.engine.backend = backend
    pipe.outsource_database(db)
    got = pipe.search(q).matches
    expected = find_all_matches(db, q)
    ok = got == expected
    print(f"in-flash secure search selftest: {'OK' if ok else 'FAIL'} "
          f"(found {got}, expected {expected})")
    return 0 if ok else 1


def _readmap() -> int:
    from repro.core import ClientConfig
    from repro.he import BFVParams
    from repro.workloads import DnaWorkloadGenerator, SecureReadMapper

    workload = DnaWorkloadGenerator(seed=3).generate(
        num_bases=320, read_length_bases=16, num_reads=3
    )
    mapper = SecureReadMapper(
        workload.genome, ClientConfig(BFVParams.test_small(64)), seed_bases=8
    )
    ok = 0
    for read in workload.reads:
        result = mapper.map_read(read.sequence)
        verified = mapper.verify(result)
        ok += verified == read.position_bases
        print(
            f"read planted@{read.position_bases}: mapped to {verified} "
            f"({result.best.votes if result.best else 0}/"
            f"{result.seeds_searched} votes)"
        )
    print(f"{ok}/{len(workload.reads)} reads mapped correctly")
    return 0 if ok == len(workload.reads) else 1


def _tfhe() -> int:
    from repro.tfhe import TFHEContext, TFHEParams
    from repro.tfhe.circuits import TfheArithmetic

    ctx = TFHEContext(TFHEParams.test_small(), seed=1)
    arith = TfheArithmetic(ctx)
    a, b = 11, 7
    total = arith.decrypt_word(
        arith.add(arith.encrypt_word(a, 5), arith.encrypt_word(b, 5))
    )
    print(
        f"bootstrapped 5-bit adder: {a} + {b} = {total} "
        f"({ctx.bootstrap_count} bootstraps)"
    )
    return 0 if total == a + b else 1


def _queueing() -> int:
    from repro.flash.cell_array import FlashGeometry
    from repro.flash.timing import FlashTimings
    from repro.ssd.queueing import simulate_cm_search

    geometry, timings = FlashGeometry(), FlashTimings()
    pairs = geometry.channels * geometry.dies_per_channel
    for slots in (1, pairs, 4 * pairs):
        result = simulate_cm_search(slots, geometry, timings)
        print(
            f"{slots:>3} CM-search slots: makespan {result.makespan * 1e3:.3f} ms, "
            f"mean latency {result.mean_latency * 1e3:.3f} ms"
        )
    return 0


def _serve() -> int:
    from repro.core import ClientConfig, SecureStringMatchPipeline
    from repro.he import BFVParams
    from repro.serve import ShardedSearchEngine
    from repro.utils.bits import random_bits

    rng = np.random.default_rng(7)
    params = BFVParams.test_small(64)
    bits_per_poly = 64 * 16
    db = random_bits(8 * bits_per_poly, rng)
    queries = []
    for k in range(5):
        q = random_bits(32, rng)
        off = 16 * (3 + 29 * k)
        db[off : off + 32] = q
        queries.append(q)
    # one occurrence straddling the boundary between shards 1 and 2
    straddle = random_bits(32, rng)
    boundary = 2 * 2 * bits_per_poly  # shard size = 2 polys at 4 shards
    db[boundary - 16 : boundary + 16] = straddle
    queries.append(straddle)
    queries += queries[:2]  # repeats exercise deduplication

    engine = ShardedSearchEngine(
        ClientConfig(params, key_seed=11), num_shards=4, cache_capacity=128
    )
    engine.outsource(db)
    report = engine.search_batch(queries)

    pipe = SecureStringMatchPipeline(ClientConfig(params, key_seed=11))
    pipe.outsource_database(db)
    sequential = [pipe.search(q).matches for q in queries]
    identical = report.matches_per_query() == sequential

    print(report.summary_table())
    print()
    print(report.shard_table())
    print()
    print(
        f"sharded results identical to sequential pipeline: "
        f"{'OK' if identical else 'FAIL'}"
    )
    return 0 if identical else 1


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    command = argv[0] if argv else "demo"
    if command == "demo":
        return _demo()
    if command == "selftest":
        return _selftest()
    if command == "readmap":
        return _readmap()
    if command == "tfhe":
        return _tfhe()
    if command == "queueing":
        return _queueing()
    if command == "serve":
        return _serve()
    if command == "figures":
        from repro.eval.runner import main as figures_main

        return figures_main(argv[1:])
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
