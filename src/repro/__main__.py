"""Command-line entry point (argparse subcommands).

    python -m repro demo               # quick end-to-end secure-search demo
    python -m repro search --engine bfv-sharded --db-text "..." --query fox
    python -m repro figures [NAME]     # print paper figures/tables
    python -m repro selftest           # fast functional self-check
    python -m repro readmap            # secure DNA read-mapping demo
    python -m repro tfhe               # bootstrapped-gate demo (real TFHE)
    python -m repro queueing           # SSD queueing-model cross-check
    python -m repro serve              # sharded concurrent serving demo
    python -m repro serve-net          # TCP search service (SIGTERM drains)
    python -m repro search --remote host:port --query fox
    python -m repro load --scenario database --arrival poisson --rate 20
    python -m repro load --trace trace.jsonl --remote host:port

Every subcommand has ``--help``; ``search`` talks to the unified
:mod:`repro.api` facade, so ``--engine``/``--shards``/``--poly-backend``/
``--search-kernel`` map directly onto registry keys and engine kwargs,
and ``--remote host:port`` routes the same request through the
:mod:`repro.net` client SDK to a running ``serve-net`` service.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

import numpy as np


def _demo(args: argparse.Namespace) -> int:
    import repro
    from repro.utils.bits import random_bits

    rng = np.random.default_rng(0)
    db = random_bits(4000, rng)
    query = random_bits(32, rng)
    db[1600:1632] = query
    with repro.open_session(
        "bfv", poly_backend=args.poly_backend, db_bits=db
    ) as session:
        result = session.search(query)
    print(
        f"secure search over {len(db)} encrypted bits: "
        f"{result.num_matches} match at {list(result.matches)} "
        f"({result.hom_ops.additions} Hom-Adds, "
        f"{result.hom_ops.multiplications} Hom-Mults)"
    )
    return 0


def _search(args: argparse.Namespace) -> int:
    import repro
    from repro.api import (
        DEFAULT_REGISTRY,
        CapabilityError,
        ExactSearch,
        UnknownEngineError,
    )
    from repro.utils.bits import text_to_bits

    if args.list_engines:
        print(DEFAULT_REGISTRY.capability_matrix())
        return 0
    if args.query is None:
        print("error: --query is required (or use --list-engines)")
        return 2

    engine_kwargs = {}
    if args.remote is not None:
        if args.engine is not None and args.engine != "remote":
            print(
                f"error: --engine {args.engine!r} selects a local engine "
                f"and cannot be combined with --remote (the server owns "
                f"the engine)"
            )
            return 2
        args.engine = "remote"
        engine_kwargs["address"] = args.remote
        if args.tenant:
            engine_kwargs["tenant"] = args.tenant
    elif args.tenant:
        print("error: --tenant requires --remote (a multi-tenant serve-net "
              "service routes by tenant id)")
        return 2
    elif args.engine is None:
        args.engine = "bfv"
    try:
        spec = DEFAULT_REGISTRY.spec(args.engine)
    except UnknownEngineError as exc:
        print(f"error: {exc}")
        return 2
    if args.remote is not None:
        # the server side owns shard/backend/kernel/key configuration
        for name in (
            "shards", "poly_backend", "search_kernel", "executor", "key_seed"
        ):
            if getattr(args, name, None) is not None:
                print(
                    f"error: --{name.replace('_', '-')} configures a local "
                    f"engine and cannot be combined with --remote"
                )
                return 2
    else:
        if args.shards is not None:
            if not spec.capabilities.sharded:
                print(f"error: engine {args.engine!r} is not sharded")
                return 2
            engine_kwargs["num_shards"] = args.shards
        if args.poly_backend is not None:
            engine_kwargs["poly_backend"] = args.poly_backend
        if getattr(args, "search_kernel", None) is not None:
            if args.engine not in ("bfv", "bfv-sharded"):
                print(
                    f"error: engine {args.engine!r} has no search-kernel choice"
                )
                return 2
            engine_kwargs["search_kernel"] = args.search_kernel
        if getattr(args, "executor", None) is not None:
            if args.engine != "bfv-sharded":
                print(
                    f"error: engine {args.engine!r} has no executor choice"
                )
                return 2
            engine_kwargs["executor"] = args.executor
        if args.key_seed is not None and args.engine != "plaintext":
            # every HE engine takes a seed under one of these names
            engine_kwargs[
                "key_seed" if args.engine.startswith("bfv") else "seed"
            ] = args.key_seed

    db_bits = text_to_bits(args.db_text)
    request = ExactSearch.from_text(
        args.query,
        verify=repro.VerifyPolicy.SKIP if args.no_verify else repro.VerifyPolicy.AUTO,
    )
    try:
        with repro.open_session(
            args.engine, db_bits=db_bits, **engine_kwargs
        ) as session:
            result = session.search(request)
    except (CapabilityError, TypeError, ValueError, OSError) as exc:
        print(f"error: {exc}")
        return 2
    chars = [off // 8 for off in result.matches if off % 8 == 0]
    print(
        f"engine {result.engine!r} (scheme {result.scheme}): "
        f"{result.num_matches} match(es) at bit offsets "
        f"{list(result.matches)} (char offsets {chars})"
    )
    print(
        f"hom ops: {result.hom_ops.additions} add, "
        f"{result.hom_ops.multiplications} mult, "
        f"{result.hom_ops.bootstraps} bootstrap; "
        f"{result.elapsed_seconds * 1e3:.1f} ms"
        + (f"; {len(result.shards)} shards" if result.shards else "")
    )
    return 0


def _selftest(args: argparse.Namespace) -> int:
    import repro
    from repro.api import PipelineEngine
    from repro.baselines import find_all_matches
    from repro.ssd import IFPAdditionBackend
    from repro.utils.bits import random_bits

    rng = np.random.default_rng(1)
    db = random_bits(2000, rng)
    q = random_bits(32, rng)
    db[480:512] = q
    engine = PipelineEngine(addition_backend=lambda ctx: IFPAdditionBackend(ctx))
    with repro.open_session(engine, db_bits=db) as session:
        got = list(session.search(q).matches)
    expected = find_all_matches(db, q)
    ok = got == expected
    print(f"in-flash secure search selftest: {'OK' if ok else 'FAIL'} "
          f"(found {got}, expected {expected})")
    return 0 if ok else 1


def _readmap(args: argparse.Namespace) -> int:
    from repro.core import ClientConfig
    from repro.he import BFVParams
    from repro.workloads import DnaWorkloadGenerator, SecureReadMapper

    workload = DnaWorkloadGenerator(seed=3).generate(
        num_bases=320, read_length_bases=16, num_reads=3
    )
    mapper = SecureReadMapper(
        workload.genome, ClientConfig(BFVParams.test_small(64)), seed_bases=8
    )
    ok = 0
    for read in workload.reads:
        result = mapper.map_read(read.sequence)
        verified = mapper.verify(result)
        ok += verified == read.position_bases
        print(
            f"read planted@{read.position_bases}: mapped to {verified} "
            f"({result.best.votes if result.best else 0}/"
            f"{result.seeds_searched} votes)"
        )
    print(f"{ok}/{len(workload.reads)} reads mapped correctly")
    return 0 if ok == len(workload.reads) else 1


def _tfhe(args: argparse.Namespace) -> int:
    from repro.tfhe import TFHEContext, TFHEParams
    from repro.tfhe.circuits import TfheArithmetic

    ctx = TFHEContext(TFHEParams.test_small(), seed=1)
    arith = TfheArithmetic(ctx)
    a, b = 11, 7
    total = arith.decrypt_word(
        arith.add(arith.encrypt_word(a, 5), arith.encrypt_word(b, 5))
    )
    print(
        f"bootstrapped 5-bit adder: {a} + {b} = {total} "
        f"({ctx.bootstrap_count} bootstraps)"
    )
    return 0 if total == a + b else 1


def _queueing(args: argparse.Namespace) -> int:
    from repro.flash.cell_array import FlashGeometry
    from repro.flash.timing import FlashTimings
    from repro.ssd.queueing import simulate_cm_search

    geometry, timings = FlashGeometry(), FlashTimings()
    pairs = geometry.channels * geometry.dies_per_channel
    for slots in (1, pairs, 4 * pairs):
        result = simulate_cm_search(slots, geometry, timings)
        print(
            f"{slots:>3} CM-search slots: makespan {result.makespan * 1e3:.3f} ms, "
            f"mean latency {result.mean_latency * 1e3:.3f} ms"
        )
    return 0


def _serve(args: argparse.Namespace) -> int:
    import repro
    from repro.core import ClientConfig, SecureStringMatchPipeline
    from repro.he import BFVParams
    from repro.utils.bits import random_bits

    rng = np.random.default_rng(7)
    params = BFVParams.test_small(64)
    bits_per_poly = 64 * 16
    db = random_bits(8 * bits_per_poly, rng)
    queries = []
    for k in range(5):
        q = random_bits(32, rng)
        off = 16 * (3 + 29 * k)
        db[off : off + 32] = q
        queries.append(q)
    # one occurrence straddling the middle of the database — a shard
    # boundary for every even shard count dividing the 8 polynomials
    straddle = random_bits(32, rng)
    boundary = 4 * bits_per_poly
    db[boundary - 16 : boundary + 16] = straddle
    queries.append(straddle)
    queries += queries[:2]  # repeats exercise deduplication

    with repro.open_session(
        "bfv-sharded",
        params=params,
        num_shards=args.shards,
        key_seed=11,
        cache_capacity=128,
        poly_backend=args.poly_backend,
        executor=args.executor,
        db_bits=db,
    ) as session:
        session.search_batch(queries)
        report = session.engine.last_serve_report

    pipe = SecureStringMatchPipeline(ClientConfig(params, key_seed=11))
    pipe.outsource_database(db)
    sequential = [pipe.search(q).matches for q in queries]
    identical = report.matches_per_query() == sequential

    print(report.summary_table())
    print()
    print(report.shard_table())
    print()
    print(
        f"sharded results identical to sequential pipeline: "
        f"{'OK' if identical else 'FAIL'}"
    )
    return 0 if identical else 1


def _serve_net(args: argparse.Namespace) -> int:
    """Run the asyncio TCP search service until SIGTERM/SIGINT drains it."""
    import asyncio
    import signal
    import sys

    from repro.net import AsyncSearchService
    from repro.utils.bits import text_to_bits

    engine_kwargs = {"num_shards": args.shards}
    if args.poly_backend is not None:
        engine_kwargs["poly_backend"] = args.poly_backend
    if args.search_kernel is not None:
        engine_kwargs["search_kernel"] = args.search_kernel
    if args.executor is not None:
        engine_kwargs["executor"] = args.executor
    if args.key_seed is not None:
        engine_kwargs["key_seed"] = args.key_seed
    if args.degraded_mode is not None:
        engine_kwargs["degraded_mode"] = args.degraded_mode

    registry = None
    if args.tenants:
        from dataclasses import replace

        from repro.tenancy import TenantRegistry, TenantSpec

        # one engine stack per tenant, all sharing the CLI's engine
        # configuration; each spec carries its own key seed + weight
        tenant_kwargs = dict(engine_kwargs)
        tenant_kwargs.pop("key_seed", None)  # per-spec, never shared
        try:
            specs = [
                TenantSpec.parse(text)
                for text in args.tenants.split(",")
                if text.strip()
            ]
            if not specs:
                raise ValueError("--tenants needs at least one spec")
            if args.p99_budget is not None:
                specs = [
                    replace(
                        s, quota=replace(s.quota, p99_budget=args.p99_budget)
                    )
                    for s in specs
                ]
            registry = TenantRegistry(
                specs,
                global_cache_bytes=args.tenant_cache_budget,
                default_engine=args.engine,
                **tenant_kwargs,
            )
        except (TypeError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    async def main() -> int:
        if registry is not None:
            service = AsyncSearchService(
                host=args.host,
                port=args.port,
                max_in_flight=args.max_in_flight,
                admission=args.p99_budget,
                fault_plan=args.fault_plan or None,
                tenants=registry,
            )
            if args.db_text:
                bits = text_to_bits(args.db_text)
                for tenant_id in registry.ids():
                    registry.outsource(tenant_id, bits)
            host, port = await service.start()
            db_bits = registry.tenants()[0].session.db_bit_length or 0
            print(
                f"serving engine {args.engine!r} "
                f"({args.shards} shards) on {host}:{port} "
                f"({len(registry)} tenants: {', '.join(registry.ids())}; "
                f"db: {db_bits} bits outsourced per tenant; "
                f"SIGTERM drains gracefully)",
                flush=True,
            )
        else:
            service = AsyncSearchService(
                args.engine,
                host=args.host,
                port=args.port,
                max_in_flight=args.max_in_flight,
                admission=args.p99_budget,
                fault_plan=args.fault_plan or None,
                **engine_kwargs,
            )
            if args.db_text:
                service.session.outsource(text_to_bits(args.db_text))
            host, port = await service.start()
            print(
                f"serving engine {args.engine!r} "
                f"({args.shards} shards) on {host}:{port} "
                f"(db: {service.session.db_bit_length or 0} bits outsourced; "
                f"SIGTERM drains gracefully)",
                flush=True,
            )
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, service.begin_drain)
        await service.serve_forever()
        await service.shutdown_connections()
        print("drained; all in-flight requests completed", flush=True)
        return 0

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:  # signal handler not yet installed
        return 0
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if registry is not None:
            registry.close_all()  # idempotent; covers bind failures


def _load(args: argparse.Namespace) -> int:
    """Open-loop load harness: scenarios x arrivals -> SLO report."""
    import repro
    from repro.api import CapabilityError, DEFAULT_REGISTRY, UnknownEngineError
    from repro.load import (
        SCENARIO_REGISTRY,
        LoadReport,
        LoadTrace,
        RemoteTarget,
        ScenarioSlo,
        SessionTarget,
        UnknownScenarioError,
        generate_trace,
        resolve_arrival,
        run_trace,
    )
    from repro.net import Client

    if args.list_scenarios:
        print(SCENARIO_REGISTRY.scenario_matrix())
        return 0

    # -- resolve the trace(s) to replay ----------------------------------
    if args.trace is not None:
        try:
            trace = LoadTrace.load(args.trace)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}")
            return 2
        if args.scenario not in (None, "all", trace.scenario):
            print(
                f"error: --scenario {args.scenario!r} conflicts with the "
                f"trace's scenario {trace.scenario!r}"
            )
            return 2
        seed = trace.seed
        scenario_keys = [trace.scenario]
        arrival_name = trace.arrival
        rate = trace.rate
        traces = {trace.scenario: trace}
    else:
        seed = args.seed
        scenario_keys = (
            list(SCENARIO_REGISTRY.keys())
            if args.scenario in (None, "all")
            else [args.scenario]
        )
        arrival_name = args.arrival
        rate = args.rate
        traces = {}

    if args.record is not None and len(scenario_keys) != 1:
        print("error: --record needs a single --scenario (not 'all')")
        return 2
    if args.tenant and args.remote is None:
        print("error: --tenant requires --remote (a multi-tenant "
              "serve-net service routes by tenant id)")
        return 2

    # -- build scenarios + traces ----------------------------------------
    scenarios = {}
    for key in scenario_keys:
        try:
            scenarios[key] = SCENARIO_REGISTRY.create(key, seed=seed)
        except UnknownScenarioError as exc:
            print(f"error: {exc}")
            return 2
        if key not in traces:
            try:
                arrival = resolve_arrival(arrival_name)
            except ValueError as exc:
                print(f"error: {exc}")
                return 2
            if args.duration is None and args.requests is None:
                print("error: need --duration and/or --requests "
                      "(or --trace to replay a recorded trace)")
                return 2
            traces[key] = generate_trace(
                scenarios[key],
                arrival,
                rate,
                duration=args.duration,
                max_requests=args.requests,
                deadline=args.deadline,
            )
    if args.record is not None:
        traces[scenario_keys[0]].save(args.record)
        print(f"recorded {traces[scenario_keys[0]].num_requests} requests "
              f"to {args.record}")

    # -- fault schedule + retry policy -----------------------------------
    from repro.faults import FaultInjector, FaultPlan, RetryPolicy

    fault_plan = None
    if args.fault_plan:
        try:
            fault_plan = FaultPlan.load(args.fault_plan)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}")
            return 2
    retry_policy = (
        RetryPolicy(max_attempts=args.retry, seed=seed)
        if args.retry and args.retry > 1
        else None
    )

    # -- drive each scenario against its own target ----------------------
    def make_target(scenario):
        if args.remote is not None:
            client = Client(
                args.remote, pool_size=args.pool_size, tenant=args.tenant
            )
            return RemoteTarget(
                client, owns_client=True, retry=retry_policy
            )
        engine_kwargs = {}
        spec = DEFAULT_REGISTRY.spec(args.engine)
        if spec.capabilities.sharded:
            engine_kwargs["num_shards"] = args.shards
        if args.executor is not None:
            engine_kwargs["executor"] = args.executor
        if args.search_kernel is not None:
            engine_kwargs["search_kernel"] = args.search_kernel
        if args.poly_backend is not None:
            engine_kwargs["poly_backend"] = args.poly_backend
        if args.key_seed is not None and args.engine != "plaintext":
            engine_kwargs[
                "key_seed" if args.engine.startswith("bfv") else "seed"
            ] = args.key_seed
        session = repro.open_session(args.engine, **engine_kwargs)
        return SessionTarget(session, owns_session=True)

    slos, stats = [], {}
    for key in scenario_keys:
        scenario, trace = scenarios[key], traces[key]
        try:
            target = make_target(scenario)
        except (UnknownEngineError, TypeError, ValueError, OSError) as exc:
            print(f"error: {exc}")
            return 2
        try:
            try:
                scenario.check(target.capabilities, target.describe())
            except CapabilityError as exc:
                print(f"error: {exc}")
                return 2
            target.outsource(scenario.db_bits())
            injector = None
            if fault_plan is not None:
                # Fresh injector per scenario: ordinals restart with
                # each trace, keeping the schedule deterministic.
                injector = FaultInjector(fault_plan)
                if args.remote is None:
                    from repro.faults import install_engine_injector

                    install_engine_injector(
                        target.session.engine, injector
                    )
            run = run_trace(trace, target, injector=injector)
            slo = ScenarioSlo.from_run(trace, run)
            slos.append(slo)
            stats = target.stats()
        finally:
            target.close()

    report = LoadReport(
        target=(
            f"remote:{args.remote}" if args.remote is not None
            else f"in-process:{args.engine}"
        ),
        arrival=arrival_name,
        rate=rate,
        seed=seed,
        scenarios=slos,
        executor=str(stats.get("executor", "")),
        worker_restarts=int(stats.get("worker_restarts", 0) or 0),
        scheduler_sheds=int(stats.get("scheduler_sheds", 0) or 0),
        tenants=dict(stats.get("tenants", {}) or {}),
    )
    print(report.table())
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
        print(f"wrote SLO report to {args.json}")
    if not report.balanced:
        print("FAIL: shed accounting does not balance "
              "(offered != completed + shed + admit_rejected + failed)")
        return 1
    if report.failed:
        print(f"FAIL: {report.failed} request(s) failed")
        return 1
    if report.mismatches:
        print(f"FAIL: {report.mismatches} completed request(s) diverged "
              f"from plaintext ground truth")
        return 1
    return 0


def _figures(args: argparse.Namespace) -> int:
    from repro.eval.runner import main as figures_main

    return figures_main(args.names)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="CIPHERMATCH reproduction — secure exact string "
        "matching over homomorphic encryption.",
    )
    sub = parser.add_subparsers(dest="command")

    p_demo = sub.add_parser("demo", help="quick end-to-end secure-search demo")
    p_demo.add_argument(
        "--poly-backend",
        choices=["vectorized", "reference"],
        help="polynomial-arithmetic backend (default: process default)",
    )
    p_demo.set_defaults(func=_demo)

    p_search = sub.add_parser(
        "search",
        help="search an ASCII database with any registered engine",
        description="Run one secure search through the unified repro.api "
        "facade. --engine selects a registry key; use --list-engines for "
        "the capability matrix.",
    )
    p_search.add_argument(
        "--engine",
        help="engine registry key (default: bfv; see --list-engines); "
        "mutually exclusive with --remote",
    )
    p_search.add_argument(
        "--db-text",
        default=(
            "the quick brown fox jumps over the lazy dog -- "
            "pack sixteen bits per coefficient and add away! "
        ),
        help="ASCII database contents",
    )
    p_search.add_argument("--query", help="ASCII needle to search for")
    p_search.add_argument(
        "--shards", type=int, help="shard count (sharded engines only)"
    )
    p_search.add_argument(
        "--poly-backend", choices=["vectorized", "reference"],
        help="polynomial-arithmetic backend",
    )
    p_search.add_argument(
        "--search-kernel", choices=["fused", "object"],
        help="search execution kernel (bfv / bfv-sharded engines)",
    )
    p_search.add_argument(
        "--executor", choices=["thread", "process"],
        help="shard executor (bfv-sharded engine only): thread workers "
        "or spawn-pinned worker processes over a shared-memory arena",
    )
    p_search.add_argument(
        "--key-seed", type=int, help="deterministic key generation seed"
    )
    p_search.add_argument(
        "--no-verify", action="store_true",
        help="skip the client-side verification step",
    )
    p_search.add_argument(
        "--list-engines", action="store_true",
        help="print the engine capability matrix and exit",
    )
    p_search.add_argument(
        "--remote", metavar="HOST:PORT",
        help="run the search against a `python -m repro serve-net` "
        "service instead of a local engine (outsources --db-text over "
        "the wire first)",
    )
    p_search.add_argument(
        "--tenant", default="",
        help="tenant id to bind the connection to (multi-tenant "
        "serve-net services only; requires --remote)",
    )
    p_search.set_defaults(func=_search)

    p_figures = sub.add_parser(
        "figures", help="print reproduced paper figures/tables"
    )
    p_figures.add_argument(
        "names", nargs="*", help="figure names (default: all)"
    )
    p_figures.set_defaults(func=_figures)

    p_selftest = sub.add_parser(
        "selftest", help="fast functional self-check (simulated in-flash)"
    )
    p_selftest.set_defaults(func=_selftest)

    p_readmap = sub.add_parser(
        "readmap", help="secure DNA read-mapping demo"
    )
    p_readmap.set_defaults(func=_readmap)

    p_tfhe = sub.add_parser(
        "tfhe", help="bootstrapped-gate demo (real TFHE)"
    )
    p_tfhe.set_defaults(func=_tfhe)

    p_queueing = sub.add_parser(
        "queueing", help="SSD queueing-model cross-check"
    )
    p_queueing.set_defaults(func=_queueing)

    p_serve = sub.add_parser(
        "serve", help="sharded concurrent query-serving demo"
    )
    p_serve.add_argument(
        "--shards", type=int, default=4, help="shard count (default: 4)"
    )
    p_serve.add_argument(
        "--poly-backend", choices=["vectorized", "reference"],
        help="polynomial-arithmetic backend",
    )
    p_serve.add_argument(
        "--executor", choices=["thread", "process"],
        help="shard executor: thread workers or spawn-pinned worker "
        "processes over a shared-memory arena",
    )
    p_serve.set_defaults(func=_serve)

    p_serve_net = sub.add_parser(
        "serve-net",
        help="TCP search service over the facade (repro.net)",
        description="Boot an asyncio TCP service exposing a registered "
        "engine over CMN1 frames. Query it with `python -m repro search "
        "--remote host:port` or the repro.net client SDK. SIGTERM "
        "drains in-flight work and exits 0.",
    )
    p_serve_net.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    p_serve_net.add_argument(
        "--port", type=int, default=9137,
        help="bind port (default: 9137; 0 picks an ephemeral port)",
    )
    p_serve_net.add_argument(
        "--engine", default="bfv-sharded",
        help="backing engine registry key (default: bfv-sharded)",
    )
    p_serve_net.add_argument(
        "--shards", type=int, default=4, help="shard count (default: 4)"
    )
    p_serve_net.add_argument(
        "--poly-backend", choices=["vectorized", "reference"],
        help="polynomial-arithmetic backend",
    )
    p_serve_net.add_argument(
        "--search-kernel", choices=["fused", "object"],
        help="search execution kernel",
    )
    p_serve_net.add_argument(
        "--executor", choices=["thread", "process"],
        help="shard executor: thread workers or spawn-pinned worker "
        "processes over a shared-memory arena",
    )
    p_serve_net.add_argument(
        "--key-seed", type=int, help="deterministic key generation seed"
    )
    p_serve_net.add_argument(
        "--db-text", default="",
        help="ASCII database to outsource at boot (clients can also "
        "outsource over the wire)",
    )
    p_serve_net.add_argument(
        "--fault-plan", default="",
        help="deterministic fault schedule: a spec string like "
        "'worker_crash@5:shard=1;shed_storm@40:count=6' or '@plan.json' "
        "(see docs/resilience.md; default: no injection)",
    )
    p_serve_net.add_argument(
        "--p99-budget", type=float, default=None,
        help="enable adaptive AIMD admission control with this p99 "
        "wall-latency budget in seconds (default: disabled)",
    )
    p_serve_net.add_argument(
        "--degraded-mode", choices=["fail", "partial"], default=None,
        help="sharded-engine behavior when a shard is down: 'fail' the "
        "batch or serve 'partial' results with a degraded_shards marker "
        "(default: fail)",
    )
    p_serve_net.add_argument(
        "--max-in-flight", type=int, default=64,
        help="per-connection in-flight bound before oldest-deadline "
        "shedding (default: 64)",
    )
    p_serve_net.add_argument(
        "--tenants", default="",
        help="serve multiple tenants from one service: comma-separated "
        "'id:key_seed[:weight]' specs (e.g. 'alice:11,bob:22:2.0'). "
        "Each tenant gets its own keypair, database and cache; "
        "requests dispatch through a weighted fair queue, and "
        "--p99-budget becomes a per-tenant admission budget",
    )
    p_serve_net.add_argument(
        "--tenant-cache-budget", type=int, default=None,
        help="fleet-wide variant-cache byte budget shared across "
        "tenants (cross-tenant LRU pressure; default: no shared bound)",
    )
    p_serve_net.set_defaults(func=_serve_net)

    p_load = sub.add_parser(
        "load",
        help="trace-driven open-loop load harness (repro.load)",
        description="Drive typed scenario request streams (DNA, "
        "biometric, database, read-mapper) through an in-process "
        "session or a running serve-net service under Poisson, bursty "
        "or constant-rate arrivals, and print per-scenario SLO "
        "percentiles with exact shed accounting. Traces can be "
        "recorded with --record and replayed bit-for-bit with --trace.",
    )
    p_load.add_argument(
        "--scenario", default=None,
        help="scenario registry key, or 'all' (default: all; see "
        "--list-scenarios)",
    )
    p_load.add_argument(
        "--arrival", default="poisson",
        choices=["constant", "poisson", "bursty"],
        help="arrival process (default: poisson)",
    )
    p_load.add_argument(
        "--rate", type=float, default=20.0,
        help="offered rate in requests/second (default: 20)",
    )
    p_load.add_argument(
        "--duration", type=float,
        help="trace duration in seconds (and/or --requests)",
    )
    p_load.add_argument(
        "--requests", type=int,
        help="cap on the number of requests in the trace",
    )
    p_load.add_argument(
        "--seed", type=int, default=0,
        help="scenario + arrival seed (default: 0)",
    )
    p_load.add_argument(
        "--deadline", type=float,
        help="per-request deadline in seconds (remote targets enforce "
        "it via oldest-deadline shedding)",
    )
    p_load.add_argument(
        "--trace", metavar="PATH",
        help="replay a recorded JSONL trace instead of generating one "
        "(scenario/arrival/rate/seed come from the trace header)",
    )
    p_load.add_argument(
        "--record", metavar="PATH",
        help="save the generated trace to a JSONL file before running",
    )
    p_load.add_argument(
        "--remote", metavar="HOST:PORT",
        help="drive a running `python -m repro serve-net` service over "
        "the client SDK instead of an in-process session",
    )
    p_load.add_argument(
        "--pool-size", type=int, default=2,
        help="client connection-pool size for --remote (default: 2)",
    )
    p_load.add_argument(
        "--tenant", default="",
        help="tenant id to bind --remote connections to (multi-tenant "
        "serve-net services only)",
    )
    p_load.add_argument(
        "--fault-plan", default="",
        help="client-side fault schedule replayed alongside the trace: "
        "a spec string like 'conn_drop@20:side=client' or '@plan.json' "
        "(in-process targets also honor shard-site events; default: "
        "no injection)",
    )
    p_load.add_argument(
        "--retry", type=int, default=0,
        help="bounded retry attempts with decorrelated-jitter backoff "
        "for shed/admission-rejected/lost requests (default: 0 = off)",
    )
    p_load.add_argument(
        "--engine", default="bfv-sharded",
        help="in-process engine registry key (default: bfv-sharded)",
    )
    p_load.add_argument(
        "--shards", type=int, default=4,
        help="shard count for sharded engines (default: 4)",
    )
    p_load.add_argument(
        "--executor", choices=["thread", "process"],
        help="shard executor (bfv-sharded engine only)",
    )
    p_load.add_argument(
        "--search-kernel", choices=["fused", "object"],
        help="search execution kernel (bfv / bfv-sharded engines)",
    )
    p_load.add_argument(
        "--poly-backend", choices=["vectorized", "reference"],
        help="polynomial-arithmetic backend",
    )
    p_load.add_argument(
        "--key-seed", type=int, help="deterministic key generation seed"
    )
    p_load.add_argument(
        "--json", metavar="PATH",
        help="also write the SLO report as machine-readable JSON",
    )
    p_load.add_argument(
        "--list-scenarios", action="store_true",
        help="print the scenario matrix and exit",
    )
    p_load.set_defaults(func=_load)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits on --help / unknown commands; callers (and the
        # CLI tests) expect an exit code back instead.
        return int(exc.code or 0)
    if args.command is None:
        args = parser.parse_args(["demo"])
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
