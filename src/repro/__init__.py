"""CIPHERMATCH reproduction — homomorphic-encryption-based secure exact
string matching with memory-efficient data packing and in-flash
processing (Kabra et al., ASPLOS 2025).

Subpackages
-----------
``repro.he``
    From-scratch BFV homomorphic encryption (Ring-LWE, NTT backend),
    packing encoders, SIMD batching, Boolean mode, noise diagnostics.
``repro.tfhe``
    From-scratch TFHE with real gate bootstrapping (the Boolean
    baseline's native scheme) plus word-level homomorphic circuits.
``repro.core``
    The paper's contribution: the memory-efficient packing scheme and
    the Hom-Add-only secure string matching pipeline.
``repro.baselines``
    Plaintext oracle plus the Boolean [17] and arithmetic [27] prior
    approaches.
``repro.flash`` / ``repro.ssd``
    Functional NAND-flash simulator (latch-level ``bop_add``
    µ-program) and the CM-IFP SSD system model.
``repro.ndp`` / ``repro.eval``
    Performance/energy models of the four evaluated systems and the
    per-figure reproduction harness.
``repro.serve``
    Production-style serving: the sharded concurrent query engine with
    per-shard addition backends, a bounded LRU variant-ciphertext cache,
    and queueing-model throughput/latency reporting.
``repro.workloads``
    DNA string matching and encrypted database search case studies.

Quickstart
----------
>>> import numpy as np
>>> from repro.he import BFVParams
>>> from repro.core import ClientConfig, SecureStringMatchPipeline
>>> pipe = SecureStringMatchPipeline(ClientConfig(BFVParams.test_small(64)))
>>> db = np.zeros(640, dtype=np.uint8); db[160:168] = 1
>>> _ = pipe.outsource_database(db)
>>> pipe.search(np.ones(8, dtype=np.uint8)).matches
[160]
"""

__version__ = "1.2.0"

from . import baselines, core, eval, flash, he, ndp, ssd, tfhe, workloads  # noqa: F401

__all__ = [
    "baselines",
    "core",
    "eval",
    "flash",
    "he",
    "ndp",
    "ssd",
    "tfhe",
    "workloads",
    "__version__",
]
