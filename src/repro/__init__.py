"""CIPHERMATCH reproduction — homomorphic-encryption-based secure exact
string matching with memory-efficient data packing and in-flash
processing (Kabra et al., ASPLOS 2025).

Subpackages
-----------
``repro.he``
    From-scratch BFV homomorphic encryption (Ring-LWE, NTT backend),
    packing encoders, SIMD batching, Boolean mode, noise diagnostics.
``repro.tfhe``
    From-scratch TFHE with real gate bootstrapping (the Boolean
    baseline's native scheme) plus word-level homomorphic circuits.
``repro.core``
    The paper's contribution: the memory-efficient packing scheme and
    the Hom-Add-only secure string matching pipeline.
``repro.baselines``
    Plaintext oracle plus the Boolean [17] and arithmetic [27] prior
    approaches.
``repro.flash`` / ``repro.ssd``
    Functional NAND-flash simulator (latch-level ``bop_add``
    µ-program) and the CM-IFP SSD system model.
``repro.ndp`` / ``repro.eval``
    Performance/energy models of the four evaluated systems and the
    per-figure reproduction harness.
``repro.serve``
    Production-style serving: the sharded concurrent query engine with
    per-shard addition backends, a bounded LRU variant-ciphertext cache,
    and queueing-model throughput/latency reporting.
``repro.workloads``
    DNA string matching and encrypted database search case studies.
``repro.load``
    Trace-driven open-loop load harness: scenario request streams over
    the workloads, Poisson/bursty/constant arrivals, record/replay
    traces and per-scenario SLO reporting.

``repro.api``
    The unified facade over all of the above: typed search requests,
    an engine registry (core BFV, sharded serving, every baseline) and
    a session layer with sync + future-based async execution.
``repro.net``
    The networked serving layer: an asyncio TCP service over the
    facade (length-prefixed binary frames, backpressure with
    oldest-deadline shedding, graceful drain) and the sync/async
    client SDK, registered as the ``"remote"`` engine.

Quickstart
----------
>>> import numpy as np, repro
>>> db = np.zeros(640, dtype=np.uint8); db[160:192] = 1
>>> with repro.open_session("bfv", db_bits=db) as session:
...     session.search(np.ones(32, dtype=np.uint8)).matches
(160,)
"""

__version__ = "1.9.0"

from . import baselines, core, eval, flash, he, ndp, ssd, tfhe, workloads  # noqa: F401
from . import api  # noqa: F401  (depends on the subpackages above)
from . import net  # noqa: F401  (registers the "remote" engine)
from . import load  # noqa: F401  (scenarios over api + workloads + net)
from .api import open_session  # noqa: F401
from .verify import VerifyPolicy  # noqa: F401

__all__ = [
    "api",
    "net",
    "load",
    "baselines",
    "core",
    "eval",
    "flash",
    "he",
    "ndp",
    "ssd",
    "tfhe",
    "workloads",
    "open_session",
    "VerifyPolicy",
    "__version__",
]
