"""Client-side query preparation (Algorithm 1, lines 4-9).

The query is negated, chunked with the memory-efficient packing scheme,
replicated across polynomial coefficients and shifted to cover every
possible alignment of the query against the packed database.

Alignment model
---------------
A query of ``y`` bits can occur in the database at bit offset
``p = w*k + s`` (``w`` = chunk width, ``s`` = bit phase, ``k`` = chunk
index).  A database chunk becomes all-ones after Hom-Add with the
negated query only when *every* bit of that chunk is a known query bit,
so detection works on the *interior* chunks of an occurrence:

* phase ``s = 0``: the occurrence covers ``floor(y/w)`` full chunks.
* phase ``s > 0``: the first ``o = w - s`` query bits live in a partial
  chunk; the interior covers ``floor((y - o)/w)`` full chunks starting
  at query bit ``o``.

When the interior is empty (short queries at non-zero phase) the paper's
replicated-pattern form is used: the chunk pattern is a ``w``-bit window
of the query's periodic extension.  Such variants only *candidate*-match
(the surrounding bits are unchecked), so they are flagged
``requires_verification`` and the pipeline's verification step filters
them; `guaranteed_phases` tells callers which phases detect exactly.

For interior spans longer than one chunk, the pattern repeats with
period ``span`` across coefficients; ``span`` rotational variants make a
run starting at any chunk index detectable.  The total Hom-Add count per
database polynomial is ``sum over phases of max(span_s, 1)`` — for the
paper's headline case (y = w = 16) this is exactly ``w`` = 16 variants,
matching §4.2.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..he.bfv import BFVContext, Ciphertext, Plaintext
from ..he.keys import PublicKey
from ..utils.bits import chunk_bits, negate_bits
from .packing import derive_masking_poly


@dataclass
class QueryVariant:
    """One shifted/rotated alignment of the negated query."""

    phase: int  # bit phase s in [0, w)
    rotation: int  # chunk rotation r in [0, span)
    span: int  # number of interior chunks (>= 1 once padded)
    pattern_chunks: np.ndarray  # negated interior chunk values, len == span
    query_bit_offset: int  # o: first query bit covered by the interior
    requires_verification: bool

    def coefficient_pattern(self, n: int, poly_chunk_base: int) -> np.ndarray:
        """Negated pattern laid out over the ``n`` coefficients of the
        database polynomial whose first chunk has global index
        ``poly_chunk_base``."""
        idx = (poly_chunk_base + np.arange(n) - self.rotation) % self.span
        return self.pattern_chunks[idx]


@dataclass
class PreparedQuery:
    """All variants of a query, plus encryption caching."""

    query_bits: np.ndarray
    chunk_width: int
    variants: List[QueryVariant]
    _cipher_cache: Dict[tuple, Ciphertext] = field(default_factory=dict)

    @property
    def bit_length(self) -> int:
        return len(self.query_bits)

    @property
    def num_variants(self) -> int:
        return len(self.variants)

    def homomorphic_additions_per_polynomial(self) -> int:
        return len(self.variants)


def variant_cache_key(variant_index: int, residue: int) -> int:
    """Cache key for one (variant, residue-class) encrypted query
    polynomial.  The encrypted variant depends on the database polynomial
    index ``j`` only through ``residue = (j * n) mod span``, so this key
    identifies the ciphertext everywhere it is cached or predicted (the
    deterministic comparator derives its masking polynomial from it)."""
    return variant_index * 1009 + residue


def variant_cache_keys(variant_index: int, residues: np.ndarray) -> np.ndarray:
    """Vectorized :func:`variant_cache_key` over a residue array (the
    fused kernels key whole result rows at once)."""
    return variant_index * 1009 + np.asarray(residues)


def guaranteed_phases(query_bits: int, chunk_width: int) -> List[int]:
    """Bit phases at which a query of this length is detected exactly
    (i.e., has at least one fully-covered interior chunk)."""
    phases = []
    for s in range(chunk_width):
        o = (chunk_width - s) % chunk_width
        if (query_bits - o) // chunk_width >= 1:
            phases.append(s)
    return phases


class QueryPreparer:
    """Builds, replicates and encrypts query variants (lines 4-9)."""

    def __init__(self, ctx: BFVContext, chunk_width: int):
        self.ctx = ctx
        self.chunk_width = chunk_width

    def prepare(self, query_bits: np.ndarray) -> PreparedQuery:
        query_bits = np.asarray(query_bits, dtype=np.uint8)
        if len(query_bits) == 0:
            raise ValueError("empty query")
        w = self.chunk_width
        variants = []
        for s in range(w):
            variants.extend(self._variants_for_phase(query_bits, s))
        return PreparedQuery(query_bits, w, variants)

    def _variants_for_phase(
        self, query_bits: np.ndarray, phase: int
    ) -> List[QueryVariant]:
        w = self.chunk_width
        y = len(query_bits)
        o = (w - phase) % w
        interior = (y - o) // w if y > o else 0
        if interior >= 1:
            segment = query_bits[o : o + interior * w]
            pattern = chunk_bits(negate_bits(segment), w)
            return [
                QueryVariant(
                    phase=phase,
                    rotation=r,
                    span=interior,
                    pattern_chunks=pattern,
                    query_bit_offset=o,
                    requires_verification=(o > 0 or o + interior * w < y),
                )
                for r in range(interior)
            ]
        # Short-query fallback: periodic-extension window (paper's
        # replicated form).  Candidate-only.
        window = _periodic_window(query_bits, o % max(y, 1), w)
        pattern = chunk_bits(negate_bits(window), w)
        return [
            QueryVariant(
                phase=phase,
                rotation=0,
                span=1,
                pattern_chunks=pattern,
                query_bit_offset=o,
                requires_verification=True,
            )
        ]

    # ------------------------------------------------------------------
    # Encryption
    # ------------------------------------------------------------------

    def variant_plaintext(
        self, variant: QueryVariant, poly_chunk_base: int
    ) -> Plaintext:
        n = self.ctx.params.n
        coeffs = variant.coefficient_pattern(n, poly_chunk_base)
        return self.ctx.plaintext(coeffs)

    def encrypt_variant(
        self,
        prepared: PreparedQuery,
        variant_index: int,
        poly_index: int,
        pk: PublicKey,
        *,
        deterministic_seed: int | None = None,
    ) -> Ciphertext:
        """Encrypted query polynomial for one (variant, db-polynomial).

        The coefficient layout depends on the database polynomial only
        through ``(poly_index * n) mod span``, so ciphertexts are cached
        per residue class — a query is encrypted O(variants) times, not
        O(variants * polynomials).
        """
        variant = prepared.variants[variant_index]
        residue = poly_index * self.ctx.params.n % variant.span
        key = (variant_index, residue)
        if key not in prepared._cipher_cache:
            prepared._cipher_cache[key] = self.encrypt_variant_value(
                prepared,
                variant_index,
                residue,
                pk,
                deterministic_seed=deterministic_seed,
            )
        return prepared._cipher_cache[key]

    def encrypt_variant_value(
        self,
        prepared: PreparedQuery,
        variant_index: int,
        residue: int,
        pk: PublicKey,
        *,
        deterministic_seed: int | None = None,
    ) -> Ciphertext:
        """Encrypt the (variant, residue-class) query polynomial without
        consulting or populating ``prepared``'s per-query cache.

        The serving layer (:mod:`repro.serve`) calls this directly so its
        *bounded* LRU cache is the only place variant ciphertexts are
        retained.  ``residue`` stands in for the polynomial base index:
        the coefficient layout only depends on ``poly_index * n`` modulo
        the variant's span.
        """
        variant = prepared.variants[variant_index]
        pt = self.variant_plaintext(variant, residue)
        if deterministic_seed is None:
            return self.ctx.encrypt(pt, pk)
        u = derive_masking_poly(
            self.ctx,
            deterministic_seed,
            "qv",
            variant_cache_key(variant_index, residue),
        )
        return self.ctx.encrypt(pt, pk, noiseless=True, u=u)


def _periodic_window(query_bits: np.ndarray, start: int, width: int) -> np.ndarray:
    """``width`` bits of the infinite periodic extension of the query,
    starting at query-bit ``start``."""
    y = len(query_bits)
    idx = (start + np.arange(width)) % y
    return query_bits[idx]
