"""The client (user) side of the CIPHERMATCH protocol.

The client owns the data and the keys: it packs and encrypts the
database before outsourcing it, prepares encrypted queries, and decodes
(and under ``CLIENT_DECRYPT`` mode, decrypts) the search results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..he.bfv import BFVContext
from ..he.keys import KeyGenerator, PublicKey, SecretKey
from ..he.params import BFVParams
from ..verify import VerifyLike, want_verify
from ..baselines.plaintext import matches_at
from .match_polynomial import IndexMode, flag_matches_by_decryption
from .matcher import (
    FusedResultSet,
    MatchCandidate,
    ResultBlock,
    ResultDecoder,
    verify_candidates,
)
from .packing import DataPacker, EncryptedDatabase, PackedDatabase
from .query import PreparedQuery, QueryPreparer


@dataclass
class ClientConfig:
    params: BFVParams
    chunk_width: Optional[int] = None
    index_mode: IndexMode = IndexMode.CLIENT_DECRYPT
    deterministic_seed: Optional[int] = None
    key_seed: Optional[int] = None
    #: polynomial-arithmetic backend ("vectorized" / "reference"); None
    #: defers to the process default (see repro.he.backend).
    poly_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.index_mode is IndexMode.SERVER_DETERMINISTIC and (
            self.deterministic_seed is None
        ):
            self.deterministic_seed = 0xC1F0


class CipherMatchClient:
    """Client endpoint: key owner, data owner, query issuer."""

    def __init__(self, config: ClientConfig):
        self.config = config
        self.ctx = BFVContext(
            config.params, seed=config.key_seed, backend=config.poly_backend
        )
        keygen = KeyGenerator(
            config.params, seed=config.key_seed, backend=config.poly_backend
        )
        self.sk: SecretKey = keygen.secret_key()
        self.pk: PublicKey = keygen.public_key(self.sk)
        self.packer = DataPacker(self.ctx, config.chunk_width)
        self.preparer = QueryPreparer(self.ctx, self.packer.chunk_width)
        self._db_bits: Optional[np.ndarray] = None

    @property
    def chunk_width(self) -> int:
        return self.packer.chunk_width

    # -- database preparation (Algorithm 1, lines 1-3) -----------------

    def pack_database(self, bits: np.ndarray) -> PackedDatabase:
        self._db_bits = np.asarray(bits, dtype=np.uint8)
        return self.packer.pack(self._db_bits)

    def encrypt_database(self, packed: PackedDatabase) -> EncryptedDatabase:
        seed = None
        if self.config.index_mode is IndexMode.SERVER_DETERMINISTIC:
            seed = self.config.deterministic_seed
        return self.packer.encrypt(packed, self.pk, deterministic_seed=seed)

    def outsource(self, bits: np.ndarray) -> EncryptedDatabase:
        """Pack + encrypt in one call (what a deployment would do)."""
        return self.encrypt_database(self.pack_database(bits))

    # -- query preparation (lines 4-9) ----------------------------------

    def prepare_query(self, query_bits: np.ndarray) -> PreparedQuery:
        return self.preparer.prepare(query_bits)

    def encrypt_variant(self, prepared: PreparedQuery, variant_index: int, poly_index: int):
        seed = None
        if self.config.index_mode is IndexMode.SERVER_DETERMINISTIC:
            seed = self.config.deterministic_seed
        return self.preparer.encrypt_variant(
            prepared, variant_index, poly_index, self.pk, deterministic_seed=seed
        )

    # -- result handling (line 12 and the verification step) -----------

    def decode_results(
        self,
        prepared: PreparedQuery,
        blocks: List[ResultBlock],
        db: EncryptedDatabase,
        *,
        verify: VerifyLike = True,
    ) -> List[MatchCandidate]:
        """Flag all-ones coefficients (decrypting under CLIENT_DECRYPT),
        map them to bit offsets, optionally verify against the client's
        own plaintext copy.

        ``verify`` accepts a bool or a :class:`repro.verify.VerifyPolicy`
        — this is the single place the whole pipeline family resolves
        the policy to a decision.
        """
        if isinstance(blocks, FusedResultSet):
            return self.decode_flags_matrix(
                prepared, blocks.flags_by_decryption(self.sk), db, verify=verify
            )
        flags: Dict[tuple, np.ndarray] = {}
        for block in blocks:
            flags[(block.variant_index, block.poly_index)] = (
                flag_matches_by_decryption(
                    self.ctx, block.ciphertext, self.sk, self.chunk_width
                )
            )
        decoder = ResultDecoder(self.chunk_width, db.n, db.bit_length)
        candidates = decoder.decode(prepared, flags, db.num_polynomials)
        return self._maybe_verify(candidates, prepared, verify)

    def decode_flags_matrix(
        self,
        prepared: PreparedQuery,
        flags: np.ndarray,
        db: EncryptedDatabase,
        *,
        verify: VerifyLike = True,
    ) -> List[MatchCandidate]:
        """Decode a stacked ``(num_variants, num_polys, n)`` flag grid —
        the fused kernels' native output — with the same offset mapping
        and verification policy as :meth:`decode_results`."""
        decoder = ResultDecoder(self.chunk_width, db.n, db.bit_length)
        candidates = decoder.decode_stacked(prepared, flags)
        return self._maybe_verify(candidates, prepared, verify)

    def _maybe_verify(
        self,
        candidates: List[MatchCandidate],
        prepared: PreparedQuery,
        verify: VerifyLike,
    ) -> List[MatchCandidate]:
        if want_verify(verify) and self._db_bits is not None:
            return verify_candidates(
                candidates,
                lambda off: matches_at(self._db_bits, prepared.query_bits, off),
            )
        return candidates

    def decode_server_flags(
        self,
        prepared: PreparedQuery,
        flags: Dict[tuple, np.ndarray],
        db: EncryptedDatabase,
        *,
        verify: VerifyLike = True,
    ) -> List[MatchCandidate]:
        """Decode match flags the server produced (deterministic mode)."""
        decoder = ResultDecoder(self.chunk_width, db.n, db.bit_length)
        candidates = decoder.decode(prepared, flags, db.num_polynomials)
        return self._maybe_verify(candidates, prepared, verify)
