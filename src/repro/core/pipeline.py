"""End-to-end CIPHERMATCH pipeline: the six-step flow of Figure 6.

1. the client prepares the encrypted query (and match polynomial),
2. sends them to the server,
3. the server runs the Hom-Add search (CPU backend or simulated
   in-flash backend),
4. index generation happens client-side (decrypt) or server-side
   (deterministic comparison),
5. candidates are verified, and
6. match offsets are returned.

This is the API the examples and the case-study workloads use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..verify import VerifyLike
from .client import CipherMatchClient, ClientConfig
from .match_polynomial import IndexMode
from .matcher import AdditionBackend, MatchCandidate
from .packing import EncryptedDatabase
from .server import CipherMatchServer


@dataclass
class SearchReport:
    """Outcome of one secure search."""

    matches: List[int]
    candidates: List[MatchCandidate]
    hom_additions: int
    num_variants: int
    encrypted_db_bytes: int
    #: shards whose results are missing from this report (circuit
    #: breaker open / terminal worker crash under partial-results mode);
    #: empty means the report covers the whole database
    degraded_shards: Tuple[int, ...] = ()

    @property
    def num_matches(self) -> int:
        return len(self.matches)


class SecureStringMatchPipeline:
    """Client + server wired together for in-process experiments.

    ``search_kernel`` selects the server's execution strategy
    (``"fused"`` arena kernels / ``"object"`` per-pair path / ``None``
    for the process default) — see :mod:`repro.he.arena`.  Both kernels
    produce bit-identical matches; the object path survives as the
    parity oracle and for stateful addition backends.
    """

    def __init__(
        self,
        config: ClientConfig,
        backend: Optional[AdditionBackend] = None,
        *,
        search_kernel: Optional[str] = None,
    ):
        self.config = config
        self.client = CipherMatchClient(config)
        self.server = CipherMatchServer(
            self.client.ctx, backend, search_kernel=search_kernel
        )
        self.db: Optional[EncryptedDatabase] = None

    # -- setup -----------------------------------------------------------

    def outsource_database(self, bits: np.ndarray) -> EncryptedDatabase:
        """Client packs + encrypts, server stores."""
        self.db = self.client.outsource(bits)
        self.server.store_database(self.db)
        if self.config.index_mode is IndexMode.SERVER_DETERMINISTIC:
            self.server.enable_deterministic_index(
                self.client.pk,
                self.config.deterministic_seed,
                self.client.chunk_width,
            )
        return self.db

    # -- query -----------------------------------------------------------

    def search(
        self, query_bits: np.ndarray, *, verify: VerifyLike = True
    ) -> SearchReport:
        """Run one secure search.  ``verify`` accepts a bool or a
        :class:`repro.verify.VerifyPolicy`; resolution happens in the
        client's decode step."""
        if self.db is None:
            raise RuntimeError("outsource a database first")
        prepared = self.client.prepare_query(np.asarray(query_bits, dtype=np.uint8))
        adds_before = self.server.hom_add_count

        blocks = self.server.search(
            prepared,
            lambda v_idx, j: self.client.encrypt_variant(prepared, v_idx, j),
        )

        if self.config.index_mode is IndexMode.SERVER_DETERMINISTIC:
            flags = self.server.generate_index(blocks)
            candidates = self.client.decode_server_flags(
                prepared, flags, self.db, verify=verify
            )
        else:
            candidates = self.client.decode_results(
                prepared, blocks, self.db, verify=verify
            )

        return SearchReport(
            matches=[c.offset for c in candidates],
            candidates=candidates,
            hom_additions=self.server.hom_add_count - adds_before,
            num_variants=prepared.num_variants,
            encrypted_db_bytes=self.db.serialized_bytes,
        )
