"""Wildcard pattern matching — an extension the paper's related work
motivates (compound wildcard queries [34], wildcard pattern matching
[30]) built purely from CIPHERMATCH primitives.

A wildcard pattern is a sequence of literal segments separated by
fixed-width don't-care gaps (``AB??CD`` = "AB", 2-wildcard gap, "CD").
Each literal segment runs through the ordinary Hom-Add search; a
pattern occurrence is an offset where *every* segment matches at its
required displacement.  The join is plain set intersection on the
(already decoded) per-segment offsets, so the server still executes
nothing but homomorphic additions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .pipeline import SecureStringMatchPipeline


@dataclass(frozen=True)
class PatternSegment:
    """A literal run inside a wildcard pattern."""

    bits: tuple  # immutable bit tuple
    offset_bits: int  # displacement from the pattern start

    @property
    def length(self) -> int:
        return len(self.bits)

    def bit_array(self) -> np.ndarray:
        return np.array(self.bits, dtype=np.uint8)


@dataclass
class WildcardPattern:
    """A parsed wildcard pattern: literal segments + total span."""

    segments: List[PatternSegment]
    total_bits: int

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def literal_bits(self) -> int:
        return sum(s.length for s in self.segments)

    @property
    def wildcard_bits(self) -> int:
        return self.total_bits - self.literal_bits

    @staticmethod
    def from_bits(
        bits: Sequence[int], mask: Sequence[int]
    ) -> "WildcardPattern":
        """Build from a bit vector and a 0/1 mask (1 = literal bit,
        0 = wildcard)."""
        bits = np.asarray(bits, dtype=np.uint8)
        mask = np.asarray(mask, dtype=np.uint8)
        if bits.shape != mask.shape:
            raise ValueError("bits and mask must have the same length")
        if len(bits) == 0:
            raise ValueError("empty pattern")
        segments: List[PatternSegment] = []
        start: Optional[int] = None
        for i, flag in enumerate(mask):
            if flag and start is None:
                start = i
            elif not flag and start is not None:
                segments.append(
                    PatternSegment(tuple(int(b) for b in bits[start:i]), start)
                )
                start = None
        if start is not None:
            segments.append(
                PatternSegment(tuple(int(b) for b in bits[start:]), start)
            )
        if not segments:
            raise ValueError("pattern has no literal bits")
        return WildcardPattern(segments, len(bits))

    def to_bits_and_mask(self) -> tuple:
        """Inverse of :meth:`from_bits`: the pattern as (bits, mask)
        arrays (wildcard positions carry bit 0, mask 0)."""
        bits = np.zeros(self.total_bits, dtype=np.uint8)
        mask = np.zeros(self.total_bits, dtype=np.uint8)
        for seg in self.segments:
            bits[seg.offset_bits : seg.offset_bits + seg.length] = seg.bits
            mask[seg.offset_bits : seg.offset_bits + seg.length] = 1
        return bits, mask

    @staticmethod
    def from_text(pattern: str, wildcard: str = "?") -> "WildcardPattern":
        """Byte-level wildcards over an ASCII pattern: each ``?`` is a
        fully-wild byte."""
        bits = []
        mask = []
        for ch in pattern:
            if ch == wildcard:
                bits.extend([0] * 8)
                mask.extend([0] * 8)
            else:
                value = ord(ch)
                bits.extend((value >> (7 - k)) & 1 for k in range(8))
                mask.extend([1] * 8)
        return WildcardPattern.from_bits(bits, mask)


class WildcardSearcher:
    """Wildcard search on top of a standard CIPHERMATCH pipeline.

    .. deprecated:: 1.3
        Thin shim over the unified facade: the segment-sweep +
        intersection join now lives in :class:`repro.api.Engine` and is
        shared by every wildcard-capable engine.  New code::

            session = repro.open_session("bfv", ..., db_bits=db)
            result = session.search(WildcardSearch.from_text("AB??CD"))
    """

    def __init__(self, pipeline: SecureStringMatchPipeline):
        import warnings

        warnings.warn(
            "WildcardSearcher is a deprecated shim; use "
            "repro.open_session(...).search(repro.api.WildcardSearch...)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.pipeline = pipeline

    def search(self, pattern: WildcardPattern, *, verify=True) -> List[int]:
        """Offsets where the full wildcard pattern occurs.

        Each literal segment is searched independently (one Hom-Add
        sweep per segment); candidate pattern offsets are the
        intersection of the per-segment offsets shifted by their
        displacement.  Executed by the :mod:`repro.api` facade's shared
        wildcard join.
        """
        # Imported here: repro.api sits above repro.core in the stack.
        from ..api import PipelineEngine, WildcardSearch
        from ..verify import VerifyPolicy

        if self.pipeline.db is None:
            raise RuntimeError("outsource a database first")
        bits, mask = pattern.to_bits_and_mask()
        engine = PipelineEngine(pipeline=self.pipeline)
        result = engine.execute(
            WildcardSearch(
                tuple(int(b) for b in bits),
                tuple(int(m) for m in mask),
                verify=VerifyPolicy.coerce(verify),
            )
        )
        return list(result.matches)

    def hom_additions_for(self, pattern: WildcardPattern) -> int:
        """Predicted Hom-Add count: one sweep per literal segment."""
        total = 0
        if self.pipeline.db is None:
            raise RuntimeError("outsource a database first")
        polys = self.pipeline.db.num_polynomials
        for segment in pattern.segments:
            prepared = self.pipeline.client.prepare_query(segment.bit_array())
            total += prepared.num_variants * polys
        return total
