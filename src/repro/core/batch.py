"""Batched query execution.

The Figure 9/12 workloads issue 1000 queries against one encrypted
database.  :class:`BatchSearcher` keeps the historical batch API but now
executes on top of :class:`repro.serve.ShardedSearchEngine`: queries are
deduplicated, variant ciphertexts flow through the serving layer's
bounded LRU cache (the old unbounded per-batch dict is gone), and the
full serving metrics of the last batch are available as
:attr:`BatchSearcher.last_serve_report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .pipeline import SearchReport, SecureStringMatchPipeline


@dataclass
class BatchReport:
    """Aggregate outcome of a query batch."""

    reports: List[SearchReport] = field(default_factory=list)

    @property
    def num_queries(self) -> int:
        return len(self.reports)

    @property
    def total_hom_additions(self) -> int:
        return sum(r.hom_additions for r in self.reports)

    @property
    def total_matches(self) -> int:
        return sum(r.num_matches for r in self.reports)

    @property
    def queries_with_matches(self) -> int:
        return sum(1 for r in self.reports if r.num_matches)

    def matches_per_query(self) -> List[List[int]]:
        return [r.matches for r in self.reports]

    def hom_additions_per_query(self) -> List[int]:
        return [r.hom_additions for r in self.reports]


class BatchSearcher:
    """Runs batches of queries against one outsourced database.

    Identical queries within a batch are deduplicated: the search runs
    once and the report object is shared (real query streams — e.g. the
    database case study's key lookups — repeat keys).  Deduplication is
    per batch by design: the old cross-batch report memo was unbounded,
    which a long-lived serving process cannot afford; across batches the
    bounded LRU variant cache still saves re-encryption.

    With ``num_shards=1`` (the default) the batch executes on the
    pipeline's own addition backend, so an IFP-backed pipeline still
    exercises the simulated flash.  Larger shard counts split the
    encrypted database across fresh per-shard backends built by
    ``backend_factory`` (default: CPU reference backends).
    """

    def __init__(
        self,
        pipeline: SecureStringMatchPipeline,
        *,
        num_shards: int = 1,
        max_workers: Optional[int] = None,
        cache_capacity: int = 256,
        backend_factory=None,
    ):
        # Imported here: repro.serve depends on repro.core submodules.
        from ..serve import ShardedSearchEngine

        self.pipeline = pipeline
        if num_shards == 1 and backend_factory is None:
            backend_factory = lambda ctx, shard_id: pipeline.server.engine.backend
        self._engine = ShardedSearchEngine(
            client=pipeline.client,
            num_shards=num_shards,
            backend_factory=backend_factory,
            max_workers=max_workers,
            cache_capacity=cache_capacity,
        )
        self.deduplicated_hits = 0
        self.last_serve_report = None

    @property
    def engine(self):
        """The underlying :class:`repro.serve.ShardedSearchEngine`."""
        return self._engine

    def outsource(self, db_bits: np.ndarray):
        """Outsource through the pipeline (so ``pipeline.search`` stays
        usable) and shard the resulting encrypted database."""
        db = self.pipeline.outsource_database(db_bits)
        self._engine.adopt_database(db)
        return db

    def search_batch(
        self, queries: Sequence[np.ndarray], *, verify: bool = True
    ) -> BatchReport:
        # The pipeline may have been outsourced directly (legacy usage);
        # pick up whatever database it currently holds.
        if self.pipeline.db is not None and self._engine.db is not self.pipeline.db:
            self._engine.adopt_database(self.pipeline.db)
        serve = self._engine.search_batch(queries, verify=verify)
        self.deduplicated_hits += serve.deduplicated_hits
        self.last_serve_report = serve
        return BatchReport(reports=list(serve.reports))
