"""Batched query execution.

The Figure 9/12 workloads issue 1000 queries against one encrypted
database.  :class:`BatchSearcher` runs a query batch over one pipeline:
the encrypted database is packed/encrypted once, per-query variant
ciphertexts are cached, and the report aggregates Hom-Add counts so the
amortization the evaluation models assume is observable in code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from .pipeline import SearchReport, SecureStringMatchPipeline


@dataclass
class BatchReport:
    """Aggregate outcome of a query batch."""

    reports: List[SearchReport] = field(default_factory=list)

    @property
    def num_queries(self) -> int:
        return len(self.reports)

    @property
    def total_hom_additions(self) -> int:
        return sum(r.hom_additions for r in self.reports)

    @property
    def total_matches(self) -> int:
        return sum(r.num_matches for r in self.reports)

    @property
    def queries_with_matches(self) -> int:
        return sum(1 for r in self.reports if r.num_matches)

    def matches_per_query(self) -> List[List[int]]:
        return [r.matches for r in self.reports]

    def hom_additions_per_query(self) -> List[int]:
        return [r.hom_additions for r in self.reports]


class BatchSearcher:
    """Runs batches of queries against one outsourced database.

    Identical queries within a batch are deduplicated: the search runs
    once and the report is shared (real query streams — e.g. the
    database case study's key lookups — repeat keys).
    """

    def __init__(self, pipeline: SecureStringMatchPipeline):
        self.pipeline = pipeline
        self._memo: Dict[bytes, SearchReport] = {}
        self.deduplicated_hits = 0

    def outsource(self, db_bits: np.ndarray):
        self._memo.clear()
        return self.pipeline.outsource_database(db_bits)

    def search_batch(
        self, queries: Sequence[np.ndarray], *, verify: bool = True
    ) -> BatchReport:
        report = BatchReport()
        for query in queries:
            key = np.asarray(query, dtype=np.uint8).tobytes()
            if key in self._memo:
                self.deduplicated_hits += 1
                report.reports.append(self._memo[key])
                continue
            result = self.pipeline.search(query, verify=verify)
            self._memo[key] = result
            report.reports.append(result)
        return report
