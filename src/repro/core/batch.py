"""Batched query execution (deprecated shim).

The Figure 9/12 workloads issue 1000 queries against one encrypted
database.  :class:`BatchSearcher` keeps the historical batch API but is
now a thin shim over the unified :mod:`repro.api` facade: batches are
submitted as one :class:`repro.api.BatchSearch` to a
:class:`repro.api.ShardedEngine` session, which routes them through the
serve worker pool, the bounded LRU variant cache and deduplication.
New code should open the facade directly::

    session = repro.open_session("bfv-sharded", params=..., db_bits=db)
    results = session.search_batch(queries)
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..verify import VerifyLike
from .pipeline import SearchReport, SecureStringMatchPipeline


@dataclass
class BatchReport:
    """Aggregate outcome of a query batch."""

    reports: List[SearchReport] = field(default_factory=list)

    @property
    def num_queries(self) -> int:
        return len(self.reports)

    @property
    def total_hom_additions(self) -> int:
        return sum(r.hom_additions for r in self.reports)

    @property
    def total_matches(self) -> int:
        return sum(r.num_matches for r in self.reports)

    @property
    def queries_with_matches(self) -> int:
        return sum(1 for r in self.reports if r.num_matches)

    def matches_per_query(self) -> List[List[int]]:
        return [r.matches for r in self.reports]

    def hom_additions_per_query(self) -> List[int]:
        return [r.hom_additions for r in self.reports]


class BatchSearcher:
    """Runs batches of queries against one outsourced database.

    .. deprecated:: 1.3
        Thin shim over :func:`repro.open_session`; use the facade for
        new code.  Everything still works: identical queries are
        deduplicated inside the serve layer (duplicates share one report
        object), and the full serving metrics of the last batch are on
        :attr:`last_serve_report`.

    With ``num_shards=1`` (the default) the batch executes on the
    pipeline's own addition backend, so an IFP-backed pipeline still
    exercises the simulated flash.  Larger shard counts split the
    encrypted database across fresh per-shard backends built by
    ``backend_factory`` (default: CPU reference backends).
    """

    def __init__(
        self,
        pipeline: SecureStringMatchPipeline,
        *,
        num_shards: int = 1,
        max_workers: Optional[int] = None,
        cache_capacity: int = 256,
        backend_factory=None,
    ):
        # Imported here: repro.api sits above repro.core in the stack.
        from ..api import Session, ShardedEngine

        warnings.warn(
            "BatchSearcher is a deprecated shim; use "
            "repro.open_session('bfv-sharded', ...).search_batch(...)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.pipeline = pipeline
        if num_shards == 1 and backend_factory is None:
            backend_factory = lambda ctx, shard_id: pipeline.server.engine.backend
        self._adapter = ShardedEngine(
            client=pipeline.client,
            num_shards=num_shards,
            backend_factory=backend_factory,
            max_workers=max_workers,
            cache_capacity=cache_capacity,
        )
        self._session = Session(self._adapter)
        self.deduplicated_hits = 0

    @property
    def engine(self):
        """The underlying :class:`repro.serve.ShardedSearchEngine`."""
        return self._adapter.engine

    @property
    def last_serve_report(self):
        """Full :class:`repro.serve.ServeReport` of the last batch."""
        return self._adapter.last_serve_report

    def outsource(self, db_bits: np.ndarray):
        """Outsource through the pipeline (so ``pipeline.search`` stays
        usable) and shard the resulting encrypted database."""
        db = self.pipeline.outsource_database(db_bits)
        self._adapter.adopt_database(db)
        return db

    def search_batch(
        self, queries: Sequence[np.ndarray], *, verify: VerifyLike = True
    ) -> BatchReport:
        # The pipeline may have been outsourced directly (legacy usage);
        # pick up whatever database it currently holds.
        if (
            self.pipeline.db is not None
            and self._adapter.engine.db is not self.pipeline.db
        ):
            self._adapter.adopt_database(self.pipeline.db)
        self._session.search_batch(list(queries), verify=verify)
        serve = self._adapter.last_serve_report
        self.deduplicated_hits += serve.deduplicated_hits
        return BatchReport(reports=list(serve.reports))
